//===- bench/ablation_contention.cpp ------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The paper's Sec. IX argument against contention managers: "CMs clearly
// compromise one thread over another which only leads to higher
// variance", whereas guided execution biases the *system path*, not a
// thread. This bench runs one benchmark default, under Polite / Karma /
// Greedy, and guided, and reports aborts, non-determinism (distinct TTS)
// and per-thread execution-time spread — the dimensions on which the
// approaches differ.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "core/GuidedPolicy.h"
#include "core/Runner.h"
#include "stm/Contention.h"

#include <cstdio>
#include <unordered_set>

using namespace gstm;

namespace {

struct SideStats {
  double MeanThreadStddev = 0;
  size_t DistinctStates = 0;
  uint64_t Aborts = 0;
  double MeanWall = 0;
};

SideStats measure(TlWorkload &Workload, unsigned Threads, unsigned Runs,
                  ContentionManager *Cm, const GuidedPolicy *Policy) {
  RunnerConfig RC;
  RC.Threads = Threads;
  RC.Stm.PreemptShift = 5;
  RC.Cm = Cm;

  SideStats Out;
  std::vector<RunningStat> ThreadTimes(Threads);
  std::unordered_set<StateTuple, StateTupleHash> Distinct;
  double WallSum = 0;
  runWorkloadOnce(Workload, RC, 42, Policy); // warm-up
  for (unsigned Run = 0; Run < Runs; ++Run) {
    RunResult R = runWorkloadOnce(Workload, RC, 42, Policy);
    for (unsigned T = 0; T < Threads; ++T)
      ThreadTimes[T].add(R.ThreadSeconds[T]);
    for (const StateTuple &S : R.Tuples)
      Distinct.insert(S);
    Out.Aborts += R.Aborts;
    WallSum += R.WallSeconds;
  }
  Out.DistinctStates = Distinct.size();
  Out.MeanWall = WallSum / Runs;
  for (const RunningStat &S : ThreadTimes)
    Out.MeanThreadStddev += S.stddev() / Threads;
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Options Raw = Options::parse(Argc, Argv);
  std::string Name = Raw.getString("workload", "kmeans");
  unsigned Threads = Opts.ThreadCounts.front();
  unsigned Runs = Opts.MeasureRuns;
  printBanner("Ablation: guided execution vs contention managers",
              "paper Sec. IX (CMs bias threads; guidance biases paths)",
              Opts);
  std::printf("workload=%s threads=%u runs=%u\n\n", Name.c_str(), Threads,
              Runs);
  std::printf("%-8s  %10s  %12s  %15s  %9s\n", "policy", "aborts",
              "distinct-TTS", "thread-sd(avg)", "wall(s)");

  auto Train = createStampWorkload(Name, Opts.TrainSize);
  auto Test = createStampWorkload(Name, Opts.MeasureSize);
  if (!Train || !Test)
    return 1;

  // Model for the guided row.
  RunnerConfig ProfileRC;
  ProfileRC.Threads = Threads;
  ProfileRC.Stm.PreemptShift = 5;
  Tsa Model;
  for (unsigned Run = 0; Run < Opts.ProfileRuns; ++Run)
    Model.addRun(
        runWorkloadOnce(*Train, ProfileRC, 1000 + Run, nullptr).Tuples);
  GuidedPolicy Policy(std::move(Model), Opts.Tfactor);

  auto PrintRow = [](const char *Label, const SideStats &S) {
    std::printf("%-8s  %10lu  %12zu  %13.6fs  %8.3fs\n", Label, S.Aborts,
                S.DistinctStates, S.MeanThreadStddev, S.MeanWall);
    std::fflush(stdout);
  };

  PrintRow("default",
           measure(*Test, Threads, Runs, nullptr, nullptr));
  for (const char *CmName : {"polite", "karma", "greedy"}) {
    auto Cm = createContentionManager(CmName);
    PrintRow(CmName, measure(*Test, Threads, Runs, Cm.get(), nullptr));
  }
  PrintRow("guided",
           measure(*Test, Threads, Runs, nullptr, &Policy));
  return 0;
}
