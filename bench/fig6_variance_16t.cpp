//===- bench/fig6_variance_16t.cpp -------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 6: per-thread execution-time variance improvement at
// 16 threads (paper: up to 74%).
//
//===----------------------------------------------------------------------===//

#include "bench/Figures.h"

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  printBanner("Figure 6: per-thread execution-time variance improvement, "
              "16 threads",
              "paper Fig. 6 (up to 74% reduction)", Opts);
  printVarianceFigure(Opts, /*Threads=*/16);
  return 0;
}
