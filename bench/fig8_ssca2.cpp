//===- bench/fig8_ssca2.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 8: ssca2 under *forced* guidance. The paper's point:
// ssca2 has innately near-zero aborts, so the model carries no guidance
// signal; guiding it anyway is pure overhead — variance degrades
// (negative improvement) and the abort distribution is unchanged. The
// analyzer verdict (which would have prevented this) is printed first.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Opts.Workloads = {"ssca2"};
  Opts.ForceGuided = true;
  printBanner("Figure 8: ssca2 guided anyway (degrades; aborts unchanged)",
              "paper Fig. 8 (negative improvement, unchanged abort tail)",
              Opts);

  for (unsigned T : Opts.ThreadCounts) {
    ExperimentResult R = runStampExperiment("ssca2", Opts, T);
    std::printf("%u threads: analyzer verdict = %s (states=%zu, "
                "metric=%.0f%%)\n",
                T, R.Report.Optimizable ? "guide" : "reject",
                R.Report.NumStates, R.Report.GuidanceMetricPercent);
    std::printf("  per-thread %% variance improvement:");
    for (double V : R.varianceImprovementPercent())
      std::printf(" %+5.1f", V);
    std::printf("\n");
    std::printf("  abort totals: default=%lu guided=%lu (near zero and "
                "unchanged)\n",
                R.Default.TotalAborts, R.Guided.TotalAborts);
    std::printf("  slowdown: %.2fx\n\n", R.slowdownFactor());
    std::fflush(stdout);
  }
  return 0;
}
