//===- bench/ShardBench.h - Sharded-tier group-affinity benchmark ---------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded tier's benchmark workload: a grid of workload-level
/// *groups* (contiguous TVar ranges, the placeable unit of
/// shard/Steering.h) hammered by threads that mostly stay inside one
/// group per transaction and occasionally reach into a second one. Under
/// the scatter hash a multi-cell intra-group transaction usually spans
/// shards anyway; with the learned placement each group is single-homed,
/// so only the deliberate cross-group reaches pay the 2PC path. The
/// steered-vs-unsteered cross-shard commit ratio is therefore the
/// headline number (EXPERIMENTS.md `shards` axis), next to the plain
/// ns/op medians that bench_regress gates.
///
/// Every operation's shape (group, cells, cross-group reach) is
/// precomputed outside the transaction bodies, which makes the expected
/// final cell-sum exact: the harness refuses to report a result whose
/// cells do not add up.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_BENCH_SHARDBENCH_H
#define GSTM_BENCH_SHARDBENCH_H

#include <cstdint>
#include <string>

namespace gstm {

/// Configuration of one sharded-tier bench run.
struct ShardBenchConfig {
  unsigned Threads = 8;
  unsigned ShardCount = 4;
  /// Workload-level placeable units; each owns CellsPerGroup TVars.
  unsigned Groups = 32;
  unsigned CellsPerGroup = 32;
  /// Measured transactions per thread.
  uint64_t OpsPerThread = 40000;
  /// Steered mode only: learning-window transactions per thread, run
  /// before the placement is built and the measured window starts.
  uint64_t WarmupOpsPerThread = 8000;
  /// Probability (per mille) that a transaction also writes one cell in
  /// a second, different group — irreducibly cross-shard traffic.
  unsigned CrossPerMille = 0;
  /// Learn a placement from a warmup window and install it before
  /// measuring; false measures the pure scatter hash.
  bool Steering = false;
  uint64_t Seed = 1;
};

/// Outcome of one run; Ok=false (with Error) when the final cell sum
/// disagrees with the precomputed op shapes.
struct ShardBenchResult {
  bool Ok = true;
  std::string Error;
  double WallSeconds = 0;
  uint64_t Operations = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t CrossShardCommits = 0;
  uint64_t PrepareRetries = 0;

  double nsPerOp() const {
    return Operations ? WallSeconds * 1e9 / static_cast<double>(Operations)
                      : 0;
  }
  /// Fraction of commits that ran the cross-shard 2PC path.
  double crossShardRatio() const {
    return Commits ? static_cast<double>(CrossShardCommits) /
                         static_cast<double>(Commits)
                   : 0;
  }
};

ShardBenchResult runShardBench(const ShardBenchConfig &Cfg);

} // namespace gstm

#endif // GSTM_BENCH_SHARDBENCH_H
