//===- bench/table4_tail_improvement.cpp -------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table IV: the average percentage improvement in the tail of
// the abort distribution (metric: sum of squared distinct abort counts,
// averaged over threads) of guided versus default execution. The paper
// reports large positive improvements everywhere except ssca2, whose
// abort count is inherently near zero (0% change).
//
// Ablation: --grouping=causal builds the model from causally attributed
// abort/commit tuples (via the STM's commit ring) instead of the default
// sequence grouping, quantifying how much precise attribution changes the
// model (DESIGN.md Sec. 5.1).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Options Raw = Options::parse(Argc, Argv);
  bool Causal = Raw.getString("grouping", "sequence") == "causal";
  printBanner("Table IV: avg % improvement in abort-distribution tail",
              "paper Table IV (positive everywhere, 0 for ssca2)", Opts);
  if (Causal)
    std::printf("   (ablation: causal abort attribution)\n\n");

  std::printf("%-10s", "benchmark");
  for (unsigned T : Opts.ThreadCounts)
    std::printf("  %6u threads", T);
  std::printf("\n");

  for (const std::string &Name : Opts.Workloads) {
    std::printf("%-10s", Name.c_str());
    for (unsigned T : Opts.ThreadCounts) {
      auto Train = createStampWorkload(Name, Opts.TrainSize);
      auto Test = createStampWorkload(Name, Opts.MeasureSize);
      ExperimentConfig Cfg;
      Cfg.Threads = T;
      Cfg.ProfileRuns = Opts.ProfileRuns;
      Cfg.MeasureRuns = Opts.MeasureRuns;
      Cfg.Tfactor = Opts.Tfactor;
      Cfg.ForceGuided = true;
      Cfg.GroupMode = Causal ? Grouping::Causal : Grouping::Sequence;
      Cfg.ProfileSeedBase = Opts.Seed * 1000 + 1;
      Cfg.MeasureSeedBase = Opts.Seed * 1000 + 500;
      ExperimentResult R = runExperiment(*Train, *Test, Cfg);
      std::printf("  %13.0f%%", R.meanTailImprovementPercent());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
