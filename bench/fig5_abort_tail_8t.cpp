//===- bench/fig5_abort_tail_8t.cpp ------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 5: the tail of the per-thread abort distribution,
// default versus guided, with serially picked threads (0..6) at 8
// threads. The paper's claim: guided execution cuts the tail (high abort
// counts with non-zero frequency disappear).
//
//===----------------------------------------------------------------------===//

#include "bench/Figures.h"

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  printBanner("Figure 5: abort-distribution tails (default D vs guided G), "
              "8 threads",
              "paper Fig. 5 (guided tail visibly shorter)", Opts);
  printAbortTailFigure(Opts, /*Threads=*/8, /*FirstThread=*/0);
  return 0;
}
