//===- bench/fig7_abort_tail_16t.cpp -----------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 7: abort-distribution tails with serially picked
// threads (8..14) at 16 threads.
//
//===----------------------------------------------------------------------===//

#include "bench/Figures.h"

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  printBanner("Figure 7: abort-distribution tails (default D vs guided G), "
              "16 threads",
              "paper Fig. 7 (guided tail visibly shorter)", Opts);
  printAbortTailFigure(Opts, /*Threads=*/16, /*FirstThread=*/8);
  return 0;
}
