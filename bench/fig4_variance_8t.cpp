//===- bench/fig4_variance_8t.cpp --------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 4: percentage reduction of execution-time standard
// deviation for each of 8 threads, per STAMP benchmark (paper: 1-53%
// improvements across all threads of every benchmark except ssca2).
//
//===----------------------------------------------------------------------===//

#include "bench/Figures.h"

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  printBanner("Figure 4: per-thread execution-time variance improvement, "
              "8 threads",
              "paper Fig. 4 (positive for every thread, all benchmarks "
              "except ssca2)",
              Opts);
  printVarianceFigure(Opts, /*Threads=*/8);
  return 0;
}
