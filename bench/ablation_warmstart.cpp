//===- bench/ablation_warmstart.cpp -------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Ablation of the model lifecycle (DESIGN.md Sec. 4f): the paper's
// deployment trains offline and reuses the model, while a naive
// reproduction re-profiles at every invocation. This bench quantifies
// what the persistent store buys: for each workload it runs
//
//   inline  - profile + measure in one process (runExperiment), the cost
//             every invocation pays without a store
//   warm    - train once, round-trip the model through a ModelStore on
//             disk, then measure from the loaded model with *zero*
//             profiling transactions (runExperimentWithModel)
//
// and reports the profiling transactions eliminated, the wall-time spent
// per phase, and the guided-side quality (distinct-TTS reduction) of
// both paths — which must agree, since the loaded model is byte-exact.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "model/Store.h"
#include "support/Timer.h"

#include <cstdio>
#include <filesystem>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  unsigned Threads = Opts.ThreadCounts.front();
  printBanner("Ablation: warm-started vs inline-profiled guidance",
              "DESIGN.md Sec. 4f (model lifecycle)", Opts);

  std::string StoreDir =
      (std::filesystem::temp_directory_path() / "gstm_warmstart_store")
          .string();
  ModelStore Store(StoreDir);
  std::printf("store: %s\n\n", StoreDir.c_str());
  std::printf("%-10s  %13s  %13s  %11s  %11s  %9s\n", "benchmark",
              "inline prof-tx", "warm prof-tx", "inline ndet%",
              "warm ndet%", "warm save");

  for (const std::string &Name : Opts.Workloads) {
    ExperimentConfig EC;
    EC.Threads = Threads;
    EC.ProfileRuns = Opts.ProfileRuns;
    EC.MeasureRuns = Opts.MeasureRuns;
    EC.Tfactor = Opts.Tfactor;
    EC.ForceGuided = Opts.ForceGuided;

    // Inline path: the whole pipeline, profiling included.
    auto TrainW = createStampWorkload(Name, Opts.TrainSize);
    auto MeasureW = createStampWorkload(Name, Opts.MeasureSize);
    if (!TrainW || !MeasureW)
      continue;
    Timer InlineTimer;
    ExperimentResult Inline = runExperiment(*TrainW, *MeasureW, EC);
    double InlineSecs = InlineTimer.elapsedSeconds();

    // Warm path: persist the trained model, reload it under its key and
    // measure without any profiling phase.
    ModelKey Key;
    Key.Workload = Name;
    Key.Threads = Threads;
    Key.ConfigHash = hashConfigString("ablation-warmstart");
    std::string Detail;
    if (Store.save(Key, Inline.Model, &Detail) != ModelIoStatus::Ok) {
      std::fprintf(stderr, "store save failed for %s: %s\n", Name.c_str(),
                   Detail.c_str());
      continue;
    }
    ModelLoadResult Loaded = Store.load(Key);
    if (!Loaded.ok()) {
      std::fprintf(stderr, "store load failed for %s: %s\n", Name.c_str(),
                   Loaded.Detail.c_str());
      continue;
    }
    Timer WarmTimer;
    ExperimentResult Warm =
        runExperimentWithModel(*MeasureW, EC, std::move(*Loaded.Model));
    double WarmSecs = WarmTimer.elapsedSeconds();

    std::printf("%-10s  %14lu  %13lu  %10.1f%%  %10.1f%%  %8.1f%%\n",
                Name.c_str(),
                static_cast<unsigned long>(Inline.ProfileCommits),
                static_cast<unsigned long>(Warm.ProfileCommits),
                Inline.nondeterminismReductionPercent(),
                Warm.nondeterminismReductionPercent(),
                InlineSecs > 0.0
                    ? 100.0 * (InlineSecs - WarmSecs) / InlineSecs
                    : 0.0);
    std::fflush(stdout);
  }
  std::printf("\nwarm prof-tx is zero by construction: the measurement "
              "process never profiles.\nndet%% columns differ only by "
              "run noise — the stored model is byte-exact.\n");
  return 0;
}
