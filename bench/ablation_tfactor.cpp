//===- bench/ablation_tfactor.cpp ---------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Ablation of the paper's Sec. VI claim: "By experimenting with Tfactor
// values of between 1 to 10, we found that Tfactor value of 4 strikes a
// balance." A low Tfactor admits too few transitions (over-restriction,
// more forced releases and slowdown); a high one admits low-probability
// paths (less variance/tail benefit). Sweeps Tfactor on one benchmark.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Options Raw = Options::parse(Argc, Argv);
  std::string Name = Raw.getString("workload", "kmeans");
  unsigned Threads = Opts.ThreadCounts.front();
  printBanner("Ablation: Tfactor sweep (paper Sec. VI: 4 balances)",
              "paper Sec. VI", Opts);
  std::printf("workload=%s threads=%u\n\n", Name.c_str(), Threads);
  std::printf("tfactor  ND-cut   tail-cut  slowdown  holds  forced  "
              "allowed-out-degree\n");

  for (double Tfactor : {1.0, 2.0, 4.0, 6.0, 10.0}) {
    BenchOptions Sweep = Opts;
    Sweep.Tfactor = Tfactor;
    ExperimentResult R = runStampExperiment(Name, Sweep, Threads);
    std::printf("%7.1f  %5.1f%%  %7.1f%%  %7.2fx  %5lu  %6lu  %18.2f\n",
                Tfactor, R.nondeterminismReductionPercent(),
                R.meanTailImprovementPercent(), R.slowdownFactor(),
                R.Guided.Guide.Holds, R.Guided.Guide.ForcedReleases,
                R.Report.MeanGuidedOutDegree);
    std::fflush(stdout);
  }
  return 0;
}
