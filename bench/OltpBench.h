//===- bench/OltpBench.h - Open-loop YCSB-style OLTP benchmark -----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OLTP workload tier: YCSB-style read/update/insert/scan mixes with
/// scrambled-Zipfian hot-key skew driven against the transactional
/// skiplist/B-tree (src/tmds) on either STM runtime, recording per-
/// operation commit latency into support/LatencyHistogram.h.
///
/// Load generation is open-loop when an arrival rate is set: operation i
/// is *scheduled* at T0 + i/rate, and its latency is measured from that
/// scheduled arrival to transaction completion, so queueing delay from a
/// stalled server shows up in the tail instead of silently stretching the
/// run (closed-loop coordinated omission). With rate 0 the loop is closed
/// and latency is pure service time.
///
/// All randomness (key draws, op selection) happens outside transaction
/// bodies: bodies must be replay-deterministic under retry (stm-lint R3),
/// and clock reads inside a body would charge timer cost to the STM.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_BENCH_OLTPBENCH_H
#define GSTM_BENCH_OLTPBENCH_H

#include "support/LatencyHistogram.h"

#include <cstdint>
#include <string>

namespace gstm {

/// Operation mix in percent; must sum to 100.
struct OltpMix {
  unsigned ReadPct = 50;
  unsigned UpdatePct = 50;
  unsigned InsertPct = 0;
  unsigned ScanPct = 0;

  unsigned total() const {
    return ReadPct + UpdatePct + InsertPct + ScanPct;
  }
};

/// YCSB workload presets: a = 50/50 read/update, b = 95/5 read/update,
/// c = read-only, e = 95/5 scan/insert.
bool oltpMixFromName(const std::string &Name, OltpMix &Out);

struct OltpConfig {
  std::string Structure = "skiplist"; ///< skiplist | btree
  std::string Backend = "tl2";        ///< tl2 | libtm | sharded
  unsigned Threads = 4;
  /// Keys preloaded before the timed run (keyspace is [1, Records];
  /// inserts append fresh keys above it).
  uint64_t Records = 1u << 20;
  /// Total operations across all threads.
  uint64_t Operations = 1u << 18;
  OltpMix Mix;
  /// Zipfian skew of the key popularity distribution (YCSB default 0.99);
  /// 0 degenerates to uniform.
  double ZipfTheta = 0.99;
  unsigned ScanLength = 16;
  /// Open-loop arrival rate in ops/sec across all threads; 0 = closed
  /// loop (back-to-back issue, latency = service time).
  double ArrivalRate = 0;
  /// Commit-ring size override (log2 slots) for the abort-attribution
  /// ring; 0 keeps the runtime default.
  unsigned RingBits = 0;
  /// Shard count for the sharded backend; non-zero forces
  /// Backend = "sharded" semantics (0 leaves the flat backends alone).
  unsigned Shards = 0;
  uint64_t Seed = 1;
};

struct OltpResult {
  bool Ok = false;
  std::string Error;
  /// Per-operation commit latency in nanoseconds, merged across threads.
  LatencyHistogram Latency;
  double WallSeconds = 0;
  uint64_t Operations = 0;
  /// STM counters for the timed phase only (prepopulation excluded).
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t CommitRingLookups = 0;
  uint64_t CommitRingMisses = 0;
  /// Sharded backend only: commits that ran the cross-shard 2PC path
  /// (zero on the flat backends).
  uint64_t CrossShardCommits = 0;

  double opsPerSecond() const {
    return WallSeconds > 0 ? static_cast<double>(Operations) / WallSeconds
                           : 0;
  }
  double commitRingMissRatio() const {
    return CommitRingLookups
               ? static_cast<double>(CommitRingMisses) /
                     static_cast<double>(CommitRingLookups)
               : 0;
  }
};

/// Runs one configured OLTP benchmark; verification (structure invariants
/// plus exact element accounting) is part of the run — a result with a
/// broken structure comes back Ok = false.
OltpResult runOltp(const OltpConfig &Cfg);

} // namespace gstm

#endif // GSTM_BENCH_OLTPBENCH_H
