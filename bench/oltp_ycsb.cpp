//===- bench/oltp_ycsb.cpp - OLTP workload tier CLI -----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Drives the YCSB-style OLTP tier (bench/OltpBench.h) from the command
// line:
//
//   oltp_ycsb --mix=a --records=1000000 --ops=500000 --threads=4
//   oltp_ycsb --structure=btree --backend=libtm --mix=e
//   oltp_ycsb --rate=200000            # open-loop at 200k ops/s
//   oltp_ycsb --ring-bits=4            # shrink the abort-attribution ring
//
// Prints throughput plus real per-operation latency percentiles
// (p50/p99/p999 from a log-bucketed histogram, not repeat maxima), the
// abort rate, and the commit-ring miss ratio; --json emits the same as a
// JSON object on stdout.
//
//===----------------------------------------------------------------------===//

#include "bench/OltpBench.h"
#include "support/Json.h"
#include "support/Options.h"

#include <cstdio>
#include <cstdlib>

using namespace gstm;

int main(int Argc, char **Argv) {
  OptionSet Cli(
      "oltp_ycsb",
      "YCSB-style OLTP benchmark over the transactional skiplist/B-tree",
      {
          {"structure", "S", "skiplist or btree (default skiplist)"},
          {"backend", "B", "tl2, libtm or sharded (default tl2)"},
          {"shards", "N", "shard count; implies --backend=sharded "
                          "(default 0 = flat backend)"},
          {"threads", "T", "worker threads (default 4)"},
          {"records", "N", "preloaded keys (default 1048576)"},
          {"ops", "N", "total operations (default 262144)"},
          {"mix", "M", "YCSB preset: a (50/50 read/update), b (95/5), "
                       "c (read-only), e (95/5 scan/insert); default a"},
          {"read", "P", "custom mix: read percent (overrides --mix)"},
          {"update", "P", "custom mix: update percent"},
          {"insert", "P", "custom mix: insert percent"},
          {"scan", "P", "custom mix: scan percent"},
          {"theta", "F", "Zipfian skew (default 0.99; 0 = uniform)"},
          {"scan-len", "N", "entries per scan (default 16)"},
          {"rate", "R", "open-loop arrival rate in ops/s across all "
                        "threads (default 0 = closed loop)"},
          {"ring-bits", "N",
           "commit-ring size override (log2 slots; default: runtime "
           "config)"},
          {"seed", "S", "rng seed (default 1)"},
          {"json", "", "emit the result as JSON on stdout"},
      });
  Options Opts = Cli.parseOrExit(Argc, Argv);

  OltpConfig Cfg;
  Cfg.Structure = Opts.getString("structure", Cfg.Structure);
  Cfg.Backend = Opts.getString("backend", Cfg.Backend);
  Cfg.Threads = static_cast<unsigned>(Opts.getInt("threads", Cfg.Threads));
  Cfg.Records =
      static_cast<uint64_t>(Opts.getInt("records", 1 << 20));
  Cfg.Operations = static_cast<uint64_t>(Opts.getInt("ops", 1 << 18));
  const std::string MixName = Opts.getString("mix", "a");
  if (!oltpMixFromName(MixName, Cfg.Mix)) {
    std::fprintf(stderr, "oltp_ycsb: unknown --mix=%s (want a, b, c or e)\n",
                 MixName.c_str());
    return 2;
  }
  if (Opts.has("read") || Opts.has("update") || Opts.has("insert") ||
      Opts.has("scan")) {
    Cfg.Mix.ReadPct = static_cast<unsigned>(Opts.getInt("read", 0));
    Cfg.Mix.UpdatePct = static_cast<unsigned>(Opts.getInt("update", 0));
    Cfg.Mix.InsertPct = static_cast<unsigned>(Opts.getInt("insert", 0));
    Cfg.Mix.ScanPct = static_cast<unsigned>(Opts.getInt("scan", 0));
  }
  Cfg.ZipfTheta =
      std::strtod(Opts.getString("theta", "0.99").c_str(), nullptr);
  Cfg.ScanLength =
      static_cast<unsigned>(Opts.getInt("scan-len", Cfg.ScanLength));
  Cfg.ArrivalRate =
      std::strtod(Opts.getString("rate", "0").c_str(), nullptr);
  Cfg.RingBits =
      static_cast<unsigned>(Opts.getInt("ring-bits", Cfg.RingBits));
  Cfg.Shards = static_cast<unsigned>(Opts.getInt("shards", Cfg.Shards));
  if (Cfg.Shards && Cfg.Backend == "tl2")
    Cfg.Backend = "sharded";
  Cfg.Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));

  OltpResult R = runOltp(Cfg);
  if (!R.Ok) {
    std::fprintf(stderr, "oltp_ycsb: %s\n", R.Error.c_str());
    return 2;
  }

  if (Opts.getBool("json", false)) {
    JsonWriter W;
    W.beginObject();
    W.key("structure").value(Cfg.Structure);
    W.key("backend").value(Cfg.Backend);
    W.key("threads").value(uint64_t{Cfg.Threads});
    W.key("records").value(Cfg.Records);
    W.key("operations").value(R.Operations);
    W.key("wall_seconds").value(R.WallSeconds);
    W.key("ops_per_second").value(R.opsPerSecond());
    W.key("latency_ns").beginObject();
    W.key("p50").value(R.Latency.p50());
    W.key("p99").value(R.Latency.p99());
    W.key("p999").value(R.Latency.p999());
    W.key("min").value(R.Latency.min());
    W.key("max").value(R.Latency.max());
    W.key("samples").value(R.Latency.count());
    W.endObject();
    W.key("commits").value(R.Commits);
    W.key("aborts").value(R.Aborts);
    W.key("commit_ring_lookups").value(R.CommitRingLookups);
    W.key("commit_ring_misses").value(R.CommitRingMisses);
    W.key("commit_ring_miss_ratio").value(R.commitRingMissRatio());
    if (Cfg.Shards) {
      W.key("shards").value(uint64_t{Cfg.Shards});
      W.key("cross_shard_commits").value(R.CrossShardCommits);
    }
    W.endObject();
    std::printf("%s\n", W.str().c_str());
    return 0;
  }

  std::printf("oltp_ycsb: %s on %s, %u thread(s), %llu records, mix "
              "r%u/u%u/i%u/s%u, theta %.2f%s\n",
              Cfg.Structure.c_str(), Cfg.Backend.c_str(), Cfg.Threads,
              static_cast<unsigned long long>(Cfg.Records),
              Cfg.Mix.ReadPct, Cfg.Mix.UpdatePct, Cfg.Mix.InsertPct,
              Cfg.Mix.ScanPct, Cfg.ZipfTheta,
              Cfg.ArrivalRate > 0 ? " (open loop)" : "");
  std::printf("  %llu ops in %.3f s = %.0f ops/s\n",
              static_cast<unsigned long long>(R.Operations),
              R.WallSeconds, R.opsPerSecond());
  std::printf("  latency ns: p50 %llu  p99 %llu  p999 %llu  max %llu "
              "(%llu samples)\n",
              static_cast<unsigned long long>(R.Latency.p50()),
              static_cast<unsigned long long>(R.Latency.p99()),
              static_cast<unsigned long long>(R.Latency.p999()),
              static_cast<unsigned long long>(R.Latency.max()),
              static_cast<unsigned long long>(R.Latency.count()));
  std::printf("  commits %llu, aborts %llu (%.1f%% abort rate), "
              "ring miss ratio %.4f\n",
              static_cast<unsigned long long>(R.Commits),
              static_cast<unsigned long long>(R.Aborts),
              R.Commits + R.Aborts
                  ? 100.0 * static_cast<double>(R.Aborts) /
                        static_cast<double>(R.Commits + R.Aborts)
                  : 0.0,
              R.commitRingMissRatio());
  if (Cfg.Shards)
    std::printf("  %u shard(s), %llu cross-shard commits (%.1f%% of "
                "commits)\n",
                Cfg.Shards,
                static_cast<unsigned long long>(R.CrossShardCommits),
                R.Commits ? 100.0 * static_cast<double>(R.CrossShardCommits) /
                                static_cast<double>(R.Commits)
                          : 0.0);
  return 0;
}
