//===- bench/fig10_slowdown.cpp -----------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 10: slowdown of guided versus default execution
// (paper: average 3.5% at 8 threads, 19.2% at 16, with ~1.5x outliers on
// genome/kmeans at 16 threads). Note for this reproduction: on a host
// where threads time-share cores, withholding threads cannot sacrifice
// parallelism — it can only save aborted work — so guided runs here can
// come out *faster* than default; the paper's SynQuake results show the
// same effect (35% speedup at 8 threads).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  printBanner("Figure 10: slowdown of guided vs default execution",
              "paper Fig. 10 (avg 3.5% @8t, 19.2% @16t)", Opts);

  std::printf("%-10s", "benchmark");
  for (unsigned T : Opts.ThreadCounts)
    std::printf("  %8u thr", T);
  std::printf("\n");

  std::vector<double> Sums(Opts.ThreadCounts.size(), 0.0);
  unsigned Rows = 0;
  for (const std::string &Name : Opts.Workloads) {
    std::printf("%-10s", Name.c_str());
    for (size_t I = 0; I < Opts.ThreadCounts.size(); ++I) {
      ExperimentResult R =
          runStampExperiment(Name, Opts, Opts.ThreadCounts[I]);
      double Slowdown = R.slowdownFactor();
      Sums[I] += Slowdown;
      std::printf("  %9.2fx", Slowdown);
      std::fflush(stdout);
    }
    ++Rows;
    std::printf("\n");
  }
  if (Rows > 0) {
    std::printf("%-10s", "average");
    for (double Sum : Sums)
      std::printf("  %9.2fx", Sum / Rows);
    std::printf("\n");
  }
  return 0;
}
