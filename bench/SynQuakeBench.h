//===- bench/SynQuakeBench.h - Shared SynQuake bench plumbing -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared configuration for the SynQuake benches (Table V, Figures 11 and
/// 12). Paper setup: 1000 players on a 1024x1024 map, trained on
/// 4worst_case and 4moving, tested on 4quadrants and 4center_spread6.
/// Defaults are scaled down (players/frames) to finish quickly; raise
/// --players / --frames toward the paper's numbers as time allows.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_BENCH_SYNQUAKEBENCH_H
#define GSTM_BENCH_SYNQUAKEBENCH_H

#include "support/Options.h"
#include "synquake/Experiment.h"

#include <cstdio>
#include <vector>

namespace gstm {

struct SynQuakeBenchOptions {
  std::vector<unsigned> ThreadCounts = {8, 16};
  uint32_t Players = 1000;
  uint32_t Frames = 64;
  uint32_t TrainFrames = 24;
  unsigned ProfileRunsPerQuest = 2;
  unsigned MeasureRuns = 6;
  double Tfactor = 4.0;
  uint64_t Seed = 1;

  static SynQuakeBenchOptions parse(int Argc, char **Argv) {
    Options Opts = Options::parse(Argc, Argv);
    SynQuakeBenchOptions B;
    B.ThreadCounts.clear();
    std::string Threads = Opts.getString("threads", "8,16");
    size_t Start = 0;
    while (Start < Threads.size()) {
      size_t Comma = Threads.find(',', Start);
      std::string Tok = Threads.substr(
          Start, Comma == std::string::npos ? std::string::npos
                                            : Comma - Start);
      long V = std::strtol(Tok.c_str(), nullptr, 10);
      if (V > 0 && V <= 64)
        B.ThreadCounts.push_back(static_cast<unsigned>(V));
      if (Comma == std::string::npos)
        break;
      Start = Comma + 1;
    }
    if (B.ThreadCounts.empty())
      B.ThreadCounts = {8, 16};
    B.Players = static_cast<uint32_t>(Opts.getInt("players", B.Players));
    B.Frames = static_cast<uint32_t>(Opts.getInt("frames", B.Frames));
    B.TrainFrames =
        static_cast<uint32_t>(Opts.getInt("train-frames", B.TrainFrames));
    B.MeasureRuns = static_cast<unsigned>(Opts.getInt("runs", B.MeasureRuns));
    B.ProfileRunsPerQuest = static_cast<unsigned>(
        Opts.getInt("profile-runs", B.ProfileRunsPerQuest));
    B.Tfactor = Opts.getDouble("tfactor", B.Tfactor);
    B.Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));
    return B;
  }
};

inline SynQuakeExperimentResult
runSynQuakeBench(const SynQuakeBenchOptions &Opts, unsigned Threads,
                 QuestPattern TestQuest) {
  SynQuakeExperimentConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.Game.NumPlayers = Opts.Players;
  Cfg.Game.Frames = Opts.Frames;
  Cfg.Game.Quest = TestQuest;
  Cfg.TrainFrames = Opts.TrainFrames;
  Cfg.ProfileRunsPerQuest = Opts.ProfileRunsPerQuest;
  Cfg.MeasureRuns = Opts.MeasureRuns;
  Cfg.Tfactor = Opts.Tfactor;
  Cfg.ProfileSeedBase = Opts.Seed * 1000 + 11;
  Cfg.MeasureSeedBase = Opts.Seed * 1000 + 611;
  return runSynQuakeExperiment(Cfg);
}

/// Figures 11/12: one row per thread count with the three panels.
inline void printSynQuakeFigure(const SynQuakeBenchOptions &Opts,
                                QuestPattern Quest) {
  std::printf("quest: %s, %u players, %u frames, trained on "
              "4worst_case+4moving\n\n",
              questPatternName(Quest), Opts.Players, Opts.Frames);
  std::printf("threads  frame-var improve  abort-ratio cut  slowdown  "
              "(frame stddev default -> guided, ms)\n");
  for (unsigned T : Opts.ThreadCounts) {
    SynQuakeExperimentResult R = runSynQuakeBench(Opts, T, Quest);
    std::printf("%7u  %16.1f%%  %14.1f%%  %7.2fx  (%.3f -> %.3f)%s\n", T,
                R.frameVarianceImprovementPercent(),
                R.abortRatioReductionPercent(), R.slowdownFactor(),
                R.Default.FrameStddev.mean() * 1e3,
                R.Guided.FrameStddev.mean() * 1e3,
                R.Default.AllVerified && R.Guided.AllVerified
                    ? ""
                    : "  [VERIFY FAILED]");
    std::fflush(stdout);
  }
}

} // namespace gstm

#endif // GSTM_BENCH_SYNQUAKEBENCH_H
