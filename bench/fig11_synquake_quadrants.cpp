//===- bench/fig11_synquake_quadrants.cpp -------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 11: SynQuake on the 4quadrants test quest — frame-
// rate variance improvement, abort-ratio reduction and slowdown at 8 and
// 16 threads (paper: up to ~65% variance cut, up to ~58% abort cut, and a
// ~35% *speedup* at 8 threads).
//
//===----------------------------------------------------------------------===//

#include "bench/SynQuakeBench.h"

using namespace gstm;

int main(int Argc, char **Argv) {
  SynQuakeBenchOptions Opts = SynQuakeBenchOptions::parse(Argc, Argv);
  std::printf("== Figure 11: SynQuake quest 4quadrants ==\n");
  std::printf("   reproduces: paper Fig. 11 (variance cut, abort cut, "
              "speedup at 8t)\n\n");
  printSynQuakeFigure(Opts, QuestPattern::Quadrants4);
  return 0;
}
