//===- bench/OltpBench.cpp -------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "bench/OltpBench.h"

#include "shard/ShardBackend.h"
#include "support/SplitMix64.h"
#include "tmds/TmBTree.h"
#include "tmds/TmSkipList.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

using namespace gstm;

bool gstm::oltpMixFromName(const std::string &Name, OltpMix &Out) {
  if (Name == "a") {
    Out = OltpMix{50, 50, 0, 0};
    return true;
  }
  if (Name == "b") {
    Out = OltpMix{95, 5, 0, 0};
    return true;
  }
  if (Name == "c") {
    Out = OltpMix{100, 0, 0, 0};
    return true;
  }
  if (Name == "e") {
    Out = OltpMix{0, 0, 5, 95};
    return true;
  }
  return false;
}

namespace {

using Clock = std::chrono::steady_clock;

/// YCSB Zipfian rank generator over [0, N) with the standard rejection-
/// free closed form (Gray et al.); theta 0 degenerates to uniform.
class ZipfianGen {
public:
  ZipfianGen(uint64_t N, double Theta) : N(N), Theta(Theta) {
    if (Theta <= 0)
      return;
    Zetan = zeta(N, Theta);
    const double Zeta2 = zeta(2, Theta);
    Alpha = 1.0 / (1.0 - Theta);
    Eta = (1.0 - std::pow(2.0 / static_cast<double>(N), 1.0 - Theta)) /
          (1.0 - Zeta2 / Zetan);
  }

  uint64_t next(SplitMix64 &Rng) const {
    if (Theta <= 0)
      return Rng.nextBounded(N);
    const double U =
        static_cast<double>(Rng.next() >> 11) * 0x1.0p-53; // [0, 1)
    const double Uz = U * Zetan;
    if (Uz < 1.0)
      return 0;
    if (Uz < 1.0 + std::pow(0.5, Theta))
      return 1;
    uint64_t Rank = static_cast<uint64_t>(
        static_cast<double>(N) * std::pow(Eta * U - Eta + 1.0, Alpha));
    return Rank >= N ? N - 1 : Rank;
  }

private:
  static double zeta(uint64_t N, double Theta) {
    double Sum = 0;
    for (uint64_t I = 1; I <= N; ++I)
      Sum += 1.0 / std::pow(static_cast<double>(I), Theta);
    return Sum;
  }

  uint64_t N;
  double Theta;
  double Zetan = 0, Alpha = 0, Eta = 0;
};

/// Scrambled-Zipfian key in [1, Records]: popular ranks hash to keys
/// spread across the whole keyspace, so hot keys do not cluster in one
/// region of the structure (YCSB's scrambled_zipfian).
uint64_t scrambleToKey(uint64_t Rank, uint64_t Records) {
  return 1 + tmdsMix64(Rank) % Records;
}

/// Deterministic record payload.
uint64_t valueFor(uint64_t Key, uint64_t Salt) {
  return tmdsMix64(Key ^ (Salt * 0x9e3779b97f4a7c15ULL));
}

enum class OpKind : uint8_t { Read, Update, Insert, Scan };

/// Node budget: the preload plus every possible insert with headroom for
/// nodes leaked by aborted speculative inserts and for B-tree splits.
uint32_t poolCapacity(const OltpConfig &Cfg) {
  const uint64_t InsertOps =
      Cfg.Operations * Cfg.Mix.InsertPct / 100 + Cfg.Threads;
  return static_cast<uint32_t>(Cfg.Records + InsertOps * 8 + 4096);
}

template <typename B, template <typename> class DSTmpl>
OltpResult runWith(const OltpConfig &Cfg, typename B::Stm &Stm) {
  using DS = DSTmpl<B>;
  OltpResult R;

  typename DS::Pool Nodes(poolCapacity(Cfg));
  DS Ds(Nodes);

  // Preload [1, Records] in batches (one huge transaction would work but
  // commits O(batch) stripes at once; batches keep it boring).
  {
    typename B::Txn Tx0(Stm, 0);
    uint64_t Next = 1;
    uint16_t Id = 0;
    while (Next <= Cfg.Records) {
      const uint64_t Lo = Next;
      const uint64_t Hi = std::min(Cfg.Records, Lo + 511);
      Tx0.run(static_cast<TxId>(Id++), [&](typename B::Txn &Tx) {
        for (uint64_t K = Lo; K <= Hi; ++K)
          Ds.insert(Tx, K, valueFor(K, 0));
      });
      Next = Hi + 1;
    }
  }

  const StatsSnapshot Before = Stm.stats().aggregate();
  ZipfianGen Zipf(Cfg.Records, Cfg.ZipfTheta);

  std::vector<LatencyHistogram> Hists(Cfg.Threads);
  std::vector<uint64_t> Inserted(Cfg.Threads, 0);

  const Clock::time_point T0 = Clock::now();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(Cfg.Seed * 0x9e3779b97f4a7c15ULL + T + 1);
      typename B::Txn Txn(Stm, static_cast<ThreadId>(T));
      LatencyHistogram &H = Hists[T];
      // Fresh insert keys above the preloaded keyspace, striped by
      // thread so inserts never collide on the key itself.
      uint64_t NextFresh = Cfg.Records + 1 + T;

      for (uint64_t I = T; I < Cfg.Operations; I += Cfg.Threads) {
        // All nondeterminism drawn before the transaction: bodies must
        // be replay-deterministic under retry.
        const uint64_t Roll = Rng.nextBounded(100);
        OpKind Kind;
        if (Roll < Cfg.Mix.ReadPct)
          Kind = OpKind::Read;
        else if (Roll < Cfg.Mix.ReadPct + Cfg.Mix.UpdatePct)
          Kind = OpKind::Update;
        else if (Roll <
                 Cfg.Mix.ReadPct + Cfg.Mix.UpdatePct + Cfg.Mix.InsertPct)
          Kind = OpKind::Insert;
        else
          Kind = OpKind::Scan;
        const uint64_t Key = Kind == OpKind::Insert
                                 ? NextFresh
                                 : scrambleToKey(Zipf.next(Rng),
                                                 Cfg.Records);
        const uint64_t Value = valueFor(Key, I + 1);

        // Open loop: latency is measured from the operation's scheduled
        // arrival, so time spent queued behind a slow commit counts.
        Clock::time_point Start;
        if (Cfg.ArrivalRate > 0) {
          Start = T0 + std::chrono::nanoseconds(static_cast<uint64_t>(
                           static_cast<double>(I) * 1e9 / Cfg.ArrivalRate));
          while (Clock::now() < Start)
            std::this_thread::yield();
        } else {
          Start = Clock::now();
        }

        bool InsertOk = false;
        Txn.run(static_cast<TxId>(I), [&](typename B::Txn &Tx) {
          switch (Kind) {
          case OpKind::Read:
            Ds.find(Tx, Key);
            break;
          case OpKind::Update:
            Ds.update(Tx, Key, Value);
            break;
          case OpKind::Insert:
            InsertOk = Ds.insert(Tx, Key, Value);
            break;
          case OpKind::Scan: {
            uint64_t Sum = 0;
            Ds.scan(Tx, Key, Cfg.ScanLength, Sum);
            break;
          }
          }
        });
        const Clock::time_point End = Clock::now();
        H.record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(End -
                                                                 Start)
                .count()));
        if (InsertOk) {
          ++Inserted[T];
          NextFresh += Cfg.Threads;
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  R.WallSeconds =
      std::chrono::duration<double>(Clock::now() - T0).count();

  for (const LatencyHistogram &H : Hists)
    R.Latency.merge(H);
  R.Operations = R.Latency.count();

  const StatsSnapshot After = Stm.stats().aggregate();
  R.Commits = After.Commits - Before.Commits;
  R.Aborts = After.Aborts - Before.Aborts;
  R.CommitRingLookups = After.CommitRingLookups - Before.CommitRingLookups;
  R.CommitRingMisses = After.CommitRingMisses - Before.CommitRingMisses;
  R.CrossShardCommits = After.CrossShardCommits - Before.CrossShardCommits;

  uint64_t TotalInserted = 0;
  for (uint64_t N : Inserted)
    TotalInserted += N;
  if (!Ds.validateDirect())
    R.Error = "structure validation failed after the run";
  else if (Ds.sizeDirect() != Cfg.Records + TotalInserted)
    R.Error = "element accounting mismatch after the run";
  R.Ok = R.Error.empty();
  return R;
}

template <typename B>
OltpResult runOnBackend(const OltpConfig &Cfg, typename B::Stm &Stm) {
  if (Cfg.Structure == "skiplist")
    return runWith<B, TmSkipList>(Cfg, Stm);
  return runWith<B, TmBTree>(Cfg, Stm);
}

} // namespace

OltpResult gstm::runOltp(const OltpConfig &Cfg) {
  OltpResult R;
  if (Cfg.Structure != "skiplist" && Cfg.Structure != "btree") {
    R.Error = "unknown structure '" + Cfg.Structure +
              "' (want skiplist or btree)";
    return R;
  }
  const bool Sharded = Cfg.Backend == "sharded" || Cfg.Shards > 0;
  if (!Sharded && Cfg.Backend != "tl2" && Cfg.Backend != "libtm") {
    R.Error =
        "unknown backend '" + Cfg.Backend + "' (want tl2, libtm or sharded)";
    return R;
  }
  if (Sharded && Cfg.Backend != "sharded" && Cfg.Backend != "tl2") {
    R.Error = "--shards only applies to the sharded backend";
    return R;
  }
  if (Cfg.Mix.total() != 100) {
    R.Error = "operation mix must sum to 100 percent";
    return R;
  }
  if (Cfg.Threads == 0 || Cfg.Records == 0) {
    R.Error = "threads and records must be positive";
    return R;
  }

  if (Sharded) {
    ShardConfig C;
    if (Cfg.Shards)
      C.ShardCount = Cfg.Shards;
    if (C.ShardCount == 0 || C.ShardCount > MaxShardCount) {
      R.Error = "shard count must be in [1, " +
                std::to_string(MaxShardCount) + "]";
      return R;
    }
    if (Cfg.RingBits)
      C.CommitRingBits = Cfg.RingBits;
    ShardedStm Stm(C);
    return runOnBackend<ShardBackend>(Cfg, Stm);
  }
  if (Cfg.Backend == "tl2") {
    Tl2Config C;
    if (Cfg.RingBits)
      C.CommitRingBits = Cfg.RingBits;
    Tl2Stm Stm(C);
    return runOnBackend<Tl2Backend>(Cfg, Stm);
  }
  LibTmConfig C;
  if (Cfg.RingBits)
    C.CommitRingBits = Cfg.RingBits;
  LibTm Tm(C);
  return runOnBackend<LibTmBackend>(Cfg, Tm);
}
