//===- bench/Common.h - Shared bench-harness plumbing ---------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared configuration and execution helpers for the per-table/figure
/// bench binaries. Every binary accepts:
///   --threads=8,16      thread counts to evaluate (paper: 8 and 16)
///   --profile-runs=N    training runs (paper: 20)
///   --runs=N            measurement runs per side (paper: 20)
///   --tfactor=F         the Ph/Tfactor threshold knob (paper: 4)
///   --train-size=medium --size=large   input classes (paper Fig. 1:
///                       train on medium, guide on large)
///   --workloads=a,b,c   subset of the STAMP ports
///   --seed=N            base seed
///   --json-dir=DIR      also write per-experiment JSON exports there
///
/// Defaults are scaled so each binary completes in about a minute on a
/// small machine; raise --runs/--profile-runs toward the paper's 20 for
/// tighter statistics.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_BENCH_COMMON_H
#define GSTM_BENCH_COMMON_H

#include "core/Experiment.h"
#include "stamp/Registry.h"
#include "support/Options.h"

#include <string>
#include <vector>

namespace gstm {

/// Parsed common bench options.
struct BenchOptions {
  std::vector<unsigned> ThreadCounts = {8, 16};
  unsigned ProfileRuns = 6;
  unsigned MeasureRuns = 8;
  double Tfactor = 4.0;
  SizeClass TrainSize = SizeClass::Medium;
  SizeClass MeasureSize = SizeClass::Large;
  std::vector<std::string> Workloads;
  uint64_t Seed = 1;
  /// Run the guided side even when the analyzer rejects the model (the
  /// figures need guided data for every benchmark; Fig. 8 specifically
  /// shows the rejected ssca2 degrading).
  bool ForceGuided = true;
  /// When non-empty, runStampExperiment also writes the full experiment
  /// JSON (metrics + telemetry, see core/JsonExport.h) to
  /// <dir>/<workload>_t<threads>.json for model_inspect --stats and
  /// offline analysis. The directory must exist.
  std::string JsonDir;

  static BenchOptions parse(int Argc, char **Argv);
};

/// Runs the full experiment pipeline for \p Workload at \p Threads.
ExperimentResult runStampExperiment(const std::string &Workload,
                                    const BenchOptions &Opts,
                                    unsigned Threads);

/// Prints the standard bench banner (paper reference + configuration).
void printBanner(const char *Title, const char *PaperRef,
                 const BenchOptions &Opts);

} // namespace gstm

#endif // GSTM_BENCH_COMMON_H
