//===- bench/fig12_synquake_spread.cpp ----------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 12: SynQuake on the 4center_spread6 test quest
// (paper: up to 64.7% frame-rate variance reduction at 16 threads).
//
//===----------------------------------------------------------------------===//

#include "bench/SynQuakeBench.h"

using namespace gstm;

int main(int Argc, char **Argv) {
  SynQuakeBenchOptions Opts = SynQuakeBenchOptions::parse(Argc, Argv);
  std::printf("== Figure 12: SynQuake quest 4center_spread6 ==\n");
  std::printf("   reproduces: paper Fig. 12 (max 64.7%% variance cut at "
              "16t)\n\n");
  printSynQuakeFigure(Opts, QuestPattern::CenterSpread6);
  return 0;
}
