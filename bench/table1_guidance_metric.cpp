//===- bench/table1_guidance_metric.cpp ------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table I: the model-analyzer guidance metric (percentage of
// transition states reachable under guidance relative to unguided; lower
// is better) for every STAMP benchmark at 8 and 16 threads. The paper's
// headline: every benchmark is guidable except ssca2 (72% / 57%), which
// the analyzer rejects. In this reproduction ssca2's rejection manifests
// primarily through its degenerate state count (a handful of
// singleton-commit tuples), which the analyzer's minimum-states rule
// catches; the metric column shows the probability-skew picture.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Opts.MeasureRuns = 0; // Table I needs the model + analyzer only
  printBanner("Table I: model analyzer guidance metric (lower is better)",
              "paper Table I (ssca2 rejected; all others guidable)", Opts);

  std::printf("%-10s", "benchmark");
  for (unsigned T : Opts.ThreadCounts)
    std::printf("  %8u thr  states  verdict", T);
  std::printf("\n");

  for (const std::string &Name : Opts.Workloads) {
    std::printf("%-10s", Name.c_str());
    for (unsigned T : Opts.ThreadCounts) {
      ExperimentResult R = runStampExperiment(Name, Opts, T);
      std::printf("  %11.0f%%  %6zu  %7s", R.Report.GuidanceMetricPercent,
                  R.Report.NumStates,
                  R.Report.Optimizable ? "guide" : "reject");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
