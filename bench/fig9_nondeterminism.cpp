//===- bench/fig9_nondeterminism.cpp ----------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 9: percentage reduction in non-determinism — the
// number of distinct thread transactional states exercised — of guided
// versus default execution at 8 and 16 threads (paper: up to 44% at 8
// threads, up to 24% at 16).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  printBanner("Figure 9: % reduction in non-determinism (distinct TTS "
              "count)",
              "paper Fig. 9 (positive reduction everywhere)", Opts);

  std::printf("%-10s", "benchmark");
  for (unsigned T : Opts.ThreadCounts)
    std::printf("   %2u-thr: default -> guided (reduction)", T);
  std::printf("\n");

  for (const std::string &Name : Opts.Workloads) {
    if (Name == "ssca2")
      continue; // rejected by the analyzer; see Figure 8
    std::printf("%-10s", Name.c_str());
    for (unsigned T : Opts.ThreadCounts) {
      ExperimentResult R = runStampExperiment(Name, Opts, T);
      std::printf("   %8zu -> %6zu  (%5.1f%%)     ",
                  R.Default.DistinctStates, R.Guided.DistinctStates,
                  R.nondeterminismReductionPercent());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
