//===- bench/ablation_eager.cpp -----------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The paper argues (Sec. II) that lazy conflict detection minimizes
// retries, so demonstrating guided execution on lazy detection subsumes
// the eager case. This bench checks that claim empirically: it runs the
// full profile/model/guide pipeline under both detection modes and
// compares abort counts, non-determinism reduction and tail improvement.
// The expected shape: eager detection aborts more (conflicts surface at
// first touch), and guidance still cuts non-determinism and tails there.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Options Raw = Options::parse(Argc, Argv);
  std::string Name = Raw.getString("workload", "kmeans");
  unsigned Threads = Opts.ThreadCounts.front();
  printBanner("Ablation: lazy vs eager conflict detection",
              "paper Sec. II (lazy demonstration implies eager)", Opts);
  std::printf("workload=%s threads=%u\n\n", Name.c_str(), Threads);
  std::printf("%-6s  %12s  %12s  %8s  %9s  %9s\n", "mode",
              "def-aborts", "gui-aborts", "ND-cut", "tail-cut",
              "slowdown");

  for (ConflictDetection Mode :
       {ConflictDetection::Lazy, ConflictDetection::Eager}) {
    auto Train = createStampWorkload(Name, Opts.TrainSize);
    auto Test = createStampWorkload(Name, Opts.MeasureSize);
    ExperimentConfig Cfg;
    Cfg.Threads = Threads;
    Cfg.ProfileRuns = Opts.ProfileRuns;
    Cfg.MeasureRuns = Opts.MeasureRuns;
    Cfg.Tfactor = Opts.Tfactor;
    Cfg.ForceGuided = true;
    Cfg.Runner.Stm.Detection = Mode;
    Cfg.ProfileSeedBase = Opts.Seed * 1000 + 1;
    Cfg.MeasureSeedBase = Opts.Seed * 1000 + 500;
    ExperimentResult R = runExperiment(*Train, *Test, Cfg);
    std::printf("%-6s  %12lu  %12lu  %7.1f%%  %8.1f%%  %8.2fx\n",
                Mode == ConflictDetection::Lazy ? "lazy" : "eager",
                R.Default.TotalAborts, R.Guided.TotalAborts,
                R.nondeterminismReductionPercent(),
                R.meanTailImprovementPercent(), R.slowdownFactor());
    std::fflush(stdout);
  }
  return 0;
}
