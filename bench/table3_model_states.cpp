//===- bench/table3_model_states.cpp ----------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table III: the number of states in each benchmark's model at
// 8 and 16 threads, plus the serialized model size (the paper quotes
// ~118KB average at 8 cores, 1.3MB at 16). Absolute counts depend on run
// length; the *ordering* is the reproducible shape: ssca2 has by far the
// fewest states, intruder/yada the most, and state counts grow with the
// thread count.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Opts.MeasureRuns = 0; // model generation only
  printBanner("Table III: number of states in each model",
              "paper Table III (ssca2 fewest, intruder/yada most; "
              "more threads => more states)",
              Opts);

  std::printf("%-10s", "benchmark");
  for (unsigned T : Opts.ThreadCounts)
    std::printf("  %5u-thr states  model-bytes", T);
  std::printf("\n");

  for (const std::string &Name : Opts.Workloads) {
    std::printf("%-10s", Name.c_str());
    for (unsigned T : Opts.ThreadCounts) {
      ExperimentResult R = runStampExperiment(Name, Opts, T);
      std::printf("  %15zu  %11zu", R.Model.numStates(),
                  R.Model.approxSizeBytes());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
