//===- bench/fig3_kmeans_states.cpp -------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 3: an excerpt of the kmeans thread state automaton at
// 8 threads — one hot state with its outbound transition probabilities
// (the paper shows {<a6>, <b7>} fanning out to singleton-commit states
// with probabilities 0.188 ... 0.008). The exact state identities depend
// on scheduling; the *shape* — a contended tuple whose likely successors
// are the per-thread commit states, with a steep probability skew — is
// the reproducible part.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <algorithm>
#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  Opts.MeasureRuns = 0;
  printBanner("Figure 3: kmeans thread-state-automaton excerpt",
              "paper Fig. 3 (hot state with skewed successor "
              "probabilities)",
              Opts);

  ExperimentResult R = runStampExperiment("kmeans", Opts, /*Threads=*/8);
  const Tsa &Model = R.Model;

  // Pick the hottest state that actually has aborts in its tuple, like
  // the paper's {<a6>, <b7>}.
  StateId Hot = UnknownState;
  uint64_t HotTraffic = 0;
  for (StateId S = 0; S < Model.numStates(); ++S)
    if (!Model.state(S).Aborts.empty() &&
        Model.outFrequency(S) > HotTraffic) {
      Hot = S;
      HotTraffic = Model.outFrequency(S);
    }
  if (Hot == UnknownState) {
    std::printf("no contended state found; raise --profile-runs\n");
    return 0;
  }

  std::printf("current state: %s   (observed %lu times)\n\n",
              Model.state(Hot).format().c_str(), HotTraffic);
  std::printf("%-30s %s\n", "destination", "probability");
  unsigned Shown = 0;
  for (const TsaEdge &E : Model.successors(Hot)) {
    if (++Shown > 10)
      break;
    std::printf("%-30s %.3f\n", Model.state(E.Dest).format().c_str(),
                E.Probability);
  }
  auto Kept = highProbabilitySuccessors(Model, Hot, Opts.Tfactor);
  std::printf("\nwith Tfactor=%.1f guided execution keeps the top %zu of "
              "%zu destinations\n",
              Opts.Tfactor, Kept.size(), Model.successors(Hot).size());
  return 0;
}
