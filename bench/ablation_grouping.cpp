//===- bench/ablation_grouping.cpp --------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Ablation of the abort-attribution design decision (DESIGN.md Sec. 5.1):
// the paper parses its transaction sequence by grouping each commit with
// the aborts logged before it (Sequence mode); our STM also records the
// *causal* committer of every abort (lock-owner identity / commit-ring
// version), enabling exact attribution (Causal mode). This bench builds
// both models from identical profiling traffic and compares state counts
// and guidance metrics.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "core/Runner.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  unsigned Threads = Opts.ThreadCounts.front();
  printBanner("Ablation: sequence vs causal abort attribution",
              "DESIGN.md Sec. 5.1 (model sensitivity to attribution)",
              Opts);
  std::printf("%-10s  %18s  %18s\n", "benchmark", "sequence st/metric",
              "causal st/metric");

  for (const std::string &Name : Opts.Workloads) {
    auto Workload = createStampWorkload(Name, Opts.TrainSize);
    Tsa SequenceModel, CausalModel;

    for (unsigned Run = 0; Run < Opts.ProfileRuns; ++Run) {
      // One trace, parsed under both grouping modes: same traffic, so
      // the difference is purely attributional.
      RunnerConfig RC;
      RC.Threads = Threads;
      RC.GroupMode = Grouping::Sequence;
      RunResult R1 = runWorkloadOnce(*Workload, RC,
                                     Opts.Seed * 100 + Run, nullptr);
      SequenceModel.addRun(R1.Tuples);
      RC.GroupMode = Grouping::Causal;
      RunResult R2 = runWorkloadOnce(*Workload, RC,
                                     Opts.Seed * 100 + Run, nullptr);
      CausalModel.addRun(R2.Tuples);
    }

    AnalyzerConfig AC;
    AC.Tfactor = Opts.Tfactor;
    AnalyzerReport Seq = analyzeModel(SequenceModel, AC);
    AnalyzerReport Cau = analyzeModel(CausalModel, AC);
    std::printf("%-10s  %9zu / %4.0f%%  %9zu / %4.0f%%\n", Name.c_str(),
                Seq.NumStates, Seq.GuidanceMetricPercent, Cau.NumStates,
                Cau.GuidanceMetricPercent);
    std::fflush(stdout);
  }
  std::printf("\nNote: the two parses see different runs of the same "
              "seeds (profiling is destructive), so small count\n"
              "differences are run noise; large ones are attributional.\n");
  return 0;
}
