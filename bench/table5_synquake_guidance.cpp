//===- bench/table5_synquake_guidance.cpp -------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table V: the SynQuake guidance metric at 8 and 16 threads
// (paper: 22 and 19 — far below the 50% rejection threshold, i.e. large
// scope for guidance, unlike the uniform STAMP workloads).
//
//===----------------------------------------------------------------------===//

#include "bench/SynQuakeBench.h"

using namespace gstm;

int main(int Argc, char **Argv) {
  SynQuakeBenchOptions Opts = SynQuakeBenchOptions::parse(Argc, Argv);
  std::printf("== Table V: SynQuake guidance metric (lower is better) ==\n");
  std::printf("   reproduces: paper Table V (22%% @8t, 19%% @16t)\n\n");
  std::printf("threads  metric  states  verdict\n");
  for (unsigned T : Opts.ThreadCounts) {
    SynQuakeBenchOptions ModelOnly = Opts;
    ModelOnly.MeasureRuns = 1; // the metric needs the model; keep one
                               // measure run to exercise the pipeline
    SynQuakeExperimentResult R =
        runSynQuakeBench(ModelOnly, T, QuestPattern::Quadrants4);
    std::printf("%7u  %5.0f%%  %6zu  %s\n", T,
                R.Report.GuidanceMetricPercent, R.Report.NumStates,
                R.Report.GuidanceMetricPercent < 50 ? "guide" : "reject");
    std::fflush(stdout);
  }
  return 0;
}
