//===- bench/micro_stm_ops.cpp ------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Micro-benchmarks of the STM primitives (google-benchmark). Not a paper
// figure; supports the overhead analysis: the paper's guided-execution
// slowdowns bottom out in the per-transaction costs measured here (txn
// begin/commit, transactional load/store, model lookup in the gate).
//
//===----------------------------------------------------------------------===//

#include "core/GuideController.h"
#include "core/GuidedPolicy.h"
#include "engine/Engines.h"
#include "libtm/LibTm.h"
#include "model/OnlineLearner.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

using namespace gstm;

static void BM_Tl2ReadOnlyTxn(benchmark::State &State) {
  Tl2Stm Stm;
  TVar<uint64_t> X{42};
  Tl2Txn Txn(Stm, 0);
  for (auto _ : State) {
    uint64_t V = 0;
    Txn.run(0, [&](Tl2Txn &Tx) { V = Tx.load(X); });
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Tl2ReadOnlyTxn);

static void BM_Tl2WriteTxn(benchmark::State &State) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);
  for (auto _ : State)
    Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });
}
BENCHMARK(BM_Tl2WriteTxn);

static void BM_Tl2TxnBySize(benchmark::State &State) {
  Tl2Stm Stm;
  const size_t N = static_cast<size_t>(State.range(0));
  std::vector<std::unique_ptr<TVar<uint64_t>>> Vars;
  for (size_t I = 0; I < N; ++I)
    Vars.push_back(std::make_unique<TVar<uint64_t>>(I));
  Tl2Txn Txn(Stm, 0);
  for (auto _ : State)
    Txn.run(0, [&](Tl2Txn &Tx) {
      for (auto &V : Vars)
        Tx.store(*V, Tx.load(*V) + 1);
    });
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_Tl2TxnBySize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

static void BM_LibTmObjectTxn(benchmark::State &State) {
  LibTm Tm;
  struct Vec3 {
    double X = 0, Y = 0, Z = 0;
  };
  TObj<Vec3> Obj;
  LibTxn Txn(Tm, 0);
  for (auto _ : State)
    Txn.run(0, [&](LibTxn &Tx) {
      Vec3 V = Tx.read(Obj);
      V.X += 1;
      Tx.write(Obj, V);
    });
}
BENCHMARK(BM_LibTmObjectTxn);

namespace {

/// Shared runtime for the multi-threaded counter-contention benchmarks.
/// Each worker gets its own TVar, padded far apart, so transactions never
/// conflict: with disjoint data the only cross-thread writes the seed
/// runtime performed were the two global commit/abort atomics, which is
/// exactly the contention the sharded stats remove. Thread t maps to
/// stats shard t.
struct DisjointBenchState {
  static constexpr size_t MaxThreads = 64;
  Tl2Stm Stm;
  struct alignas(256) PaddedVar {
    TVar<uint64_t> Var;
  };
  std::vector<PaddedVar> Vars;
  DisjointBenchState() : Vars(MaxThreads) {}
};

} // namespace

static void BM_Tl2DisjointWriteTxn(benchmark::State &State) {
  static DisjointBenchState G; // magic static: thread-safe construction
  auto Thread = static_cast<ThreadId>(State.thread_index());
  Tl2Txn Txn(G.Stm, Thread);
  TVar<uint64_t> &Mine = G.Vars[State.thread_index()].Var;
  for (auto _ : State)
    Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(Mine, Tx.load(Mine) + 1); });
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Tl2DisjointWriteTxn)
    ->Threads(1)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

static void BM_Tl2DisjointReadOnlyTxn(benchmark::State &State) {
  static DisjointBenchState G;
  auto Thread = static_cast<ThreadId>(State.thread_index());
  Tl2Txn Txn(G.Stm, Thread);
  TVar<uint64_t> &Mine = G.Vars[State.thread_index()].Var;
  for (auto _ : State) {
    uint64_t V = 0;
    Txn.run(0, [&](Tl2Txn &Tx) { V = Tx.load(Mine); });
    benchmark::DoNotOptimize(V);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Tl2DisjointReadOnlyTxn)
    ->Threads(1)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

namespace {

/// Minimal attached sink for the access-observer overhead pair below:
/// counts events and nothing else, so the pair isolates the hook cost.
struct CountingAccessObserver final : TxAccessObserver {
  uint64_t Begins = 0, Loads = 0, Stores = 0, Locks = 0;
  void onTxBegin(ThreadId, TxId, uint64_t) override { ++Begins; }
  void onTxLoad(ThreadId, const void *, uint64_t, uint64_t,
                bool) override {
    ++Loads;
  }
  void onTxStore(ThreadId, const void *, uint64_t) override { ++Stores; }
  void onLockAcquire(ThreadId, uint64_t) override { ++Locks; }
};

/// Fixture for the observer pair: a 16-location read-modify-write
/// transaction, sized to exercise the inline-capacity read/write logs and
/// the open-addressed write index without spilling to the heap.
struct ObserverPairBench {
  static constexpr size_t Vars = 16;
  Tl2Stm Stm;
  std::vector<std::unique_ptr<TVar<uint64_t>>> Locations;
  ObserverPairBench() {
    for (size_t I = 0; I < Vars; ++I)
      Locations.push_back(std::make_unique<TVar<uint64_t>>(I));
  }
  void runOnce(Tl2Txn &Txn) {
    Txn.run(0, [&](Tl2Txn &Tx) {
      for (auto &V : Locations)
        Tx.store(*V, Tx.load(*V) + 1);
    });
  }
};

} // namespace

// Attached-vs-detached cost of the per-access observer hook over the
// inline-capacity transaction logs: detached must stay at one null test
// per access, attached adds only the virtual dispatch + counter. A gap
// beyond that means the container rework re-introduced per-access
// overhead on the observer path.
static void BM_Tl2RwAccessObserverDetached(benchmark::State &State) {
  ObserverPairBench G;
  Tl2Txn Txn(G.Stm, 0);
  for (auto _ : State)
    G.runOnce(Txn);
  State.SetItemsProcessed(State.iterations() * ObserverPairBench::Vars);
}
BENCHMARK(BM_Tl2RwAccessObserverDetached);

static void BM_Tl2RwAccessObserverAttached(benchmark::State &State) {
  ObserverPairBench G;
  CountingAccessObserver Obs;
  G.Stm.setAccessObserver(&Obs);
  Tl2Txn Txn(G.Stm, 0);
  for (auto _ : State)
    G.runOnce(Txn);
  G.Stm.setAccessObserver(nullptr);
  benchmark::DoNotOptimize(Obs.Loads);
  State.SetItemsProcessed(State.iterations() * ObserverPairBench::Vars);
}
BENCHMARK(BM_Tl2RwAccessObserverAttached);

namespace {

/// Templated bodies for the policy-engine family (src/engine): the same
/// three shapes for every policy — read-only txn, single-location RMW,
/// and disjoint contended RMW — so the snapshot records one median per
/// engine per shape and the engines stay comparable against the TL2
/// rows above. Per-engine wrapper functions (not BENCHMARK_TEMPLATE)
/// keep the reported names free of template syntax, which is what the
/// bench_runner ingestion flattens into snapshot keys.
template <typename Policy>
void engineReadOnlyTxn(benchmark::State &State) {
  EngineStm<Policy> Stm;
  TVar<uint64_t> X{42};
  EngineTxn<Policy> Txn(Stm, 0);
  for (auto _ : State) {
    uint64_t V = 0;
    Txn.run(1, [&](EngineTxn<Policy> &Tx) { V = Tx.load(X); });
    benchmark::DoNotOptimize(V);
  }
}

template <typename Policy>
void engineWriteTxn(benchmark::State &State) {
  EngineStm<Policy> Stm;
  TVar<uint64_t> X{0};
  EngineTxn<Policy> Txn(Stm, 0);
  for (auto _ : State)
    Txn.run(1, [&](EngineTxn<Policy> &Tx) {
      Tx.store(X, Tx.load(X) + 1);
    });
}

/// Engine twin of DisjointBenchState: per-thread padded TVars on one
/// shared engine instance, so the multi-threaded rows measure lock-table
/// and clock traffic, not data conflicts.
template <typename Policy> struct EngineDisjointState {
  static constexpr size_t MaxThreads = 64;
  EngineStm<Policy> Stm;
  struct alignas(256) PaddedVar {
    TVar<uint64_t> Var;
  };
  std::vector<PaddedVar> Vars;
  EngineDisjointState() : Vars(MaxThreads) {}
};

template <typename Policy>
void engineDisjointWriteTxn(benchmark::State &State) {
  static EngineDisjointState<Policy> G; // magic static, see above
  auto Thread = static_cast<ThreadId>(State.thread_index());
  EngineTxn<Policy> Txn(G.Stm, Thread);
  TVar<uint64_t> &Mine = G.Vars[State.thread_index()].Var;
  for (auto _ : State)
    Txn.run(1, [&](EngineTxn<Policy> &Tx) {
      Tx.store(Mine, Tx.load(Mine) + 1);
    });
  State.SetItemsProcessed(State.iterations());
}

} // namespace

static void BM_OrecEagerReadOnlyTxn(benchmark::State &State) {
  engineReadOnlyTxn<OrecEagerPolicy>(State);
}
BENCHMARK(BM_OrecEagerReadOnlyTxn);
static void BM_OrecEagerWriteTxn(benchmark::State &State) {
  engineWriteTxn<OrecEagerPolicy>(State);
}
BENCHMARK(BM_OrecEagerWriteTxn);
static void BM_OrecEagerDisjointWriteTxn(benchmark::State &State) {
  engineDisjointWriteTxn<OrecEagerPolicy>(State);
}
BENCHMARK(BM_OrecEagerDisjointWriteTxn)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

static void BM_TlrwReadOnlyTxn(benchmark::State &State) {
  engineReadOnlyTxn<TlrwPolicy>(State);
}
BENCHMARK(BM_TlrwReadOnlyTxn);
static void BM_TlrwWriteTxn(benchmark::State &State) {
  engineWriteTxn<TlrwPolicy>(State);
}
BENCHMARK(BM_TlrwWriteTxn);
static void BM_TlrwDisjointWriteTxn(benchmark::State &State) {
  engineDisjointWriteTxn<TlrwPolicy>(State);
}
BENCHMARK(BM_TlrwDisjointWriteTxn)->Threads(1)->Threads(8)->UseRealTime();

static void BM_TwoPlReadOnlyTxn(benchmark::State &State) {
  engineReadOnlyTxn<TwoPlPolicy>(State);
}
BENCHMARK(BM_TwoPlReadOnlyTxn);
static void BM_TwoPlWriteTxn(benchmark::State &State) {
  engineWriteTxn<TwoPlPolicy>(State);
}
BENCHMARK(BM_TwoPlWriteTxn);
static void BM_TwoPlDisjointWriteTxn(benchmark::State &State) {
  engineDisjointWriteTxn<TwoPlPolicy>(State);
}
BENCHMARK(BM_TwoPlDisjointWriteTxn)->Threads(1)->Threads(8)->UseRealTime();

static void BM_GatePolicyLookup(benchmark::State &State) {
  // Cost of one gate check against a compiled policy (the hot-path add-on
  // of guided execution).
  Tsa Model;
  std::vector<StateTuple> Run;
  for (int I = 0; I < 64; ++I) {
    StateTuple S;
    S.Commit = packPair(static_cast<TxId>(I % 4),
                        static_cast<ThreadId>(I % 8));
    if (I % 3 == 0)
      S.Aborts.push_back(packPair(1, static_cast<ThreadId>((I + 1) % 8)));
    S.canonicalize();
    Run.push_back(S);
  }
  Model.addRun(Run);
  GuidedPolicy Policy(std::move(Model), 4.0);

  StateId S = 0;
  for (auto _ : State) {
    bool Allowed = Policy.allows(S, packPair(1, 3));
    benchmark::DoNotOptimize(Allowed);
    S = (S + 1) % Policy.model().numStates();
  }
}
BENCHMARK(BM_GatePolicyLookup);

namespace {

/// Small trained policy + controller plumbed into a TL2 instance, the
/// guided-commit fixture shared by the sink-overhead benchmarks.
struct GuidedCommitBench {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  std::shared_ptr<const GuidedPolicy> Policy;
  GuideController Controller;

  static std::shared_ptr<const GuidedPolicy> makePolicy() {
    Tsa Model;
    std::vector<StateTuple> Run;
    for (int I = 0; I < 64; ++I) {
      StateTuple S;
      S.Commit = packPair(static_cast<TxId>(I % 4),
                          static_cast<ThreadId>(I % 8));
      S.canonicalize();
      Run.push_back(S);
    }
    Model.addRun(Run);
    return std::make_shared<const GuidedPolicy>(std::move(Model), 4.0);
  }

  GuidedCommitBench()
      : Policy(makePolicy()), Controller(Policy, GuideConfig{}) {
    Stm.setObserver(&Controller);
    Stm.setGate(&Controller);
  }
};

} // namespace

// The pair below is the learner's hot-path budget check (same discipline
// as the access-observer surface): attached vs detached must coincide
// within noise, because a detached sink costs one predictable branch and
// an attached one a bounded SPSC append.
static void BM_GuidedCommitSinkDetached(benchmark::State &State) {
  GuidedCommitBench G;
  Tl2Txn Txn(G.Stm, 0);
  for (auto _ : State)
    Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(G.X, Tx.load(G.X) + 1); });
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_GuidedCommitSinkDetached);

static void BM_GuidedCommitSinkAttached(benchmark::State &State) {
  GuidedCommitBench G;
  LearnerConfig LC;
  LC.RingCapacity = 1 << 14;
  OnlineLearner Learner(1, LC);
  G.Controller.setTtsSink(&Learner);
  Tl2Txn Txn(G.Stm, 0);
  uint64_t Since = 0;
  for (auto _ : State) {
    Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(G.X, Tx.load(G.X) + 1); });
    // Drain off the measured thread's critical path often enough that
    // the ring never fills (a full ring would measure the drop path
    // instead of the append path).
    if (++Since == (LC.RingCapacity >> 1)) {
      Since = 0;
      Learner.drain();
    }
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_GuidedCommitSinkAttached);

static void BM_LearnerObserveTuple(benchmark::State &State) {
  // Bare cost of the TtsSink append (the only work added to onCommit
  // when a learner is attached).
  LearnerConfig LC;
  LC.RingCapacity = 1 << 14;
  OnlineLearner Learner(1, LC);
  StateTuple Tuple;
  Tuple.Commit = packPair(2, 0);
  Tuple.Aborts.push_back(packPair(1, 1));
  Tuple.canonicalize();
  uint64_t Seq = 0;
  for (auto _ : State) {
    Learner.observeTuple(0, Seq++, Tuple);
    if ((Seq & ((LC.RingCapacity >> 1) - 1)) == 0)
      Learner.drain();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_LearnerObserveTuple);

static void BM_StateTupleIntern(benchmark::State &State) {
  // Cost of resolving an observed tuple to a model state (per commit in
  // guided runs).
  Tsa Model;
  std::vector<StateTuple> Run;
  for (int I = 0; I < 256; ++I) {
    StateTuple S;
    S.Commit = packPair(static_cast<TxId>(I % 8),
                        static_cast<ThreadId>(I % 16));
    S.canonicalize();
    Run.push_back(S);
  }
  Model.addRun(Run);
  GuidedPolicy Policy(std::move(Model), 4.0);

  StateTuple Probe;
  Probe.Commit = packPair(3, 7);
  Probe.canonicalize();
  for (auto _ : State) {
    StateId Id = Policy.resolve(Probe);
    benchmark::DoNotOptimize(Id);
  }
}
BENCHMARK(BM_StateTupleIntern);

// Custom main instead of BENCHMARK_MAIN(): `--json-dir=DIR` additionally
// routes the full google-benchmark JSON report (one row per op kind and
// thread count) to DIR/micro_stm_ops.json, which is the ingestion format
// of tools/bench_runner. All other flags pass through to the library.
int main(int Argc, char **Argv) {
  std::string JsonDir;
  std::vector<char *> Passthrough;
  Passthrough.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg.rfind("--json-dir=", 0) == 0)
      JsonDir = Arg.substr(std::string_view("--json-dir=").size());
    else
      Passthrough.push_back(Argv[I]);
  }
  int PassArgc = static_cast<int>(Passthrough.size());
  benchmark::Initialize(&PassArgc, Passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(PassArgc,
                                             Passthrough.data()))
    return 1;
  if (!JsonDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(JsonDir, Ec);
    std::string Path = JsonDir + "/micro_stm_ops.json";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "micro_stm_ops: cannot write %s\n",
                   Path.c_str());
      return 1;
    }
    benchmark::JSONReporter Json;
    Json.SetOutputStream(&Out);
    benchmark::RunSpecifiedBenchmarks(&Json);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
