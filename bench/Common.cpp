//===- bench/Common.cpp ----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "core/JsonExport.h"

#include <cstdio>
#include <cstdlib>

using namespace gstm;

static std::vector<std::string> splitList(const std::string &Csv) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Csv.size()) {
    size_t Comma = Csv.find(',', Start);
    if (Comma == std::string::npos) {
      if (Start < Csv.size())
        Out.push_back(Csv.substr(Start));
      break;
    }
    if (Comma > Start)
      Out.push_back(Csv.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

BenchOptions BenchOptions::parse(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  BenchOptions B;

  std::string Threads = Opts.getString("threads", "8,16");
  B.ThreadCounts.clear();
  for (const std::string &T : splitList(Threads)) {
    long V = std::strtol(T.c_str(), nullptr, 10);
    if (V > 0 && V <= 64)
      B.ThreadCounts.push_back(static_cast<unsigned>(V));
  }
  if (B.ThreadCounts.empty())
    B.ThreadCounts = {8, 16};

  B.ProfileRuns =
      static_cast<unsigned>(Opts.getInt("profile-runs", B.ProfileRuns));
  B.MeasureRuns = static_cast<unsigned>(Opts.getInt("runs", B.MeasureRuns));
  B.Tfactor = Opts.getDouble("tfactor", B.Tfactor);
  B.TrainSize = parseSizeClass(Opts.getString("train-size", "medium"));
  B.MeasureSize = parseSizeClass(Opts.getString("size", "large"));
  B.Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));
  B.ForceGuided = Opts.getBool("force-guided", B.ForceGuided);
  B.JsonDir = Opts.getString("json-dir", "");

  std::string Names = Opts.getString("workloads", "");
  B.Workloads = Names.empty() ? stampWorkloadNames() : splitList(Names);
  return B;
}

ExperimentResult gstm::runStampExperiment(const std::string &Workload,
                                          const BenchOptions &Opts,
                                          unsigned Threads) {
  auto Train = createStampWorkload(Workload, Opts.TrainSize);
  auto Test = createStampWorkload(Workload, Opts.MeasureSize);
  if (!Train || !Test) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 Workload.c_str());
    std::exit(1);
  }

  ExperimentConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.ProfileRuns = Opts.ProfileRuns;
  Cfg.MeasureRuns = Opts.MeasureRuns;
  Cfg.Tfactor = Opts.Tfactor;
  Cfg.ForceGuided = Opts.ForceGuided;
  Cfg.ProfileSeedBase = Opts.Seed * 1000 + 1;
  Cfg.MeasureSeedBase = Opts.Seed * 1000 + 500;
  ExperimentResult Result = runExperiment(*Train, *Test, Cfg);

  if (!Opts.JsonDir.empty()) {
    std::string Path = Opts.JsonDir + "/" + Workload + "_t" +
                       std::to_string(Threads) + ".json";
    if (!writeTextFile(Path, experimentJson(Result)))
      std::fprintf(stderr, "warning: cannot write '%s'\n", Path.c_str());
  }
  return Result;
}

void gstm::printBanner(const char *Title, const char *PaperRef,
                       const BenchOptions &Opts) {
  std::printf("== %s ==\n", Title);
  std::printf("   reproduces: %s\n", PaperRef);
  std::printf("   config: profile-runs=%u runs=%u tfactor=%.1f "
              "train=%s measure=%s\n\n",
              Opts.ProfileRuns, Opts.MeasureRuns, Opts.Tfactor,
              sizeClassName(Opts.TrainSize),
              sizeClassName(Opts.MeasureSize));
}
