//===- bench/ShardBench.cpp - Sharded-tier group-affinity benchmark -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "bench/ShardBench.h"

#include "shard/ShardConfig.h"
#include "shard/Sharded.h"
#include "shard/Steering.h"
#include "stm/TVar.h"
#include "support/SplitMix64.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

using namespace gstm;

namespace {

/// One precomputed transaction shape: two increments inside Group, plus
/// (when CrossGroup >= 0) one increment in a second group. Drawing every
/// shape before the run keeps the transaction bodies replay-deterministic
/// and makes the final cell sum exactly predictable.
struct Op {
  uint32_t Group;
  uint32_t CellA;
  uint32_t CellB;
  int32_t CrossGroup; ///< -1: intra-group transaction
  uint32_t CrossCell;
};

/// Builds thread \p T's plan for one window; adds the plan's total
/// increment count (2 or 3 per op) to \p Increments.
std::vector<Op> makePlan(const ShardBenchConfig &Cfg, unsigned T,
                         uint64_t Count, uint64_t Salt,
                         uint64_t &Increments) {
  SplitMix64 Rng((Cfg.Seed + Salt) * 0x9e3779b97f4a7c15ULL + T + 1);
  std::vector<Op> Plan;
  Plan.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I) {
    Op O;
    O.Group = static_cast<uint32_t>(Rng.nextBounded(Cfg.Groups));
    O.CellA = static_cast<uint32_t>(Rng.nextBounded(Cfg.CellsPerGroup));
    do
      O.CellB = static_cast<uint32_t>(Rng.nextBounded(Cfg.CellsPerGroup));
    while (O.CellB == O.CellA);
    O.CrossGroup = -1;
    O.CrossCell = 0;
    if (Cfg.CrossPerMille && Rng.nextBounded(1000) < Cfg.CrossPerMille) {
      uint32_t H;
      do
        H = static_cast<uint32_t>(Rng.nextBounded(Cfg.Groups));
      while (H == O.Group);
      O.CrossGroup = static_cast<int32_t>(H);
      O.CrossCell = static_cast<uint32_t>(Rng.nextBounded(Cfg.CellsPerGroup));
    }
    Increments += O.CrossGroup >= 0 ? 3 : 2;
    Plan.push_back(O);
  }
  return Plan;
}

/// Executes one thread's plan on its own descriptor. \p Listener is only
/// attached during steering learning windows.
void runWindow(ShardedStm &Stm, TVar<uint64_t> *Cells,
               const ShardBenchConfig &Cfg, unsigned T,
               const std::vector<Op> &Plan,
               ShardedTxn::CommitListener *Listener) {
  ShardedTxn Txn(Stm, T);
  if (Listener)
    Txn.setCommitListener(Listener);
  for (const Op &O : Plan) {
    TVar<uint64_t> *Base = Cells + size_t{O.Group} * Cfg.CellsPerGroup;
    TVar<uint64_t> &A = Base[O.CellA];
    TVar<uint64_t> &B = Base[O.CellB];
    TVar<uint64_t> *X =
        O.CrossGroup >= 0
            ? Cells + size_t(O.CrossGroup) * Cfg.CellsPerGroup + O.CrossCell
            : nullptr;
    Txn.setAffinityGroup(O.Group);
    Txn.run(0, [&](ShardedTxn &Tx) {
      Tx.store(A, Tx.load(A) + 1);
      Tx.store(B, Tx.load(B) + 1);
      if (X)
        Tx.store(*X, Tx.load(*X) + 1);
    });
  }
}

void runAllThreads(ShardedStm &Stm, TVar<uint64_t> *Cells,
                   const ShardBenchConfig &Cfg,
                   const std::vector<std::vector<Op>> &Plans,
                   ShardedTxn::CommitListener *Listener) {
  std::vector<std::thread> Workers;
  Workers.reserve(Cfg.Threads);
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    Workers.emplace_back([&, T] {
      runWindow(Stm, Cells, Cfg, T, Plans[T], Listener);
    });
  for (std::thread &W : Workers)
    W.join();
}

} // namespace

ShardBenchResult gstm::runShardBench(const ShardBenchConfig &Cfg) {
  ShardBenchResult R;
  if (!Cfg.Threads || !Cfg.Groups || Cfg.CellsPerGroup < 2 ||
      !Cfg.ShardCount || Cfg.ShardCount > MaxShardCount) {
    R.Ok = false;
    R.Error = "invalid shard bench configuration";
    return R;
  }
  if (Cfg.CrossPerMille && Cfg.Groups < 2) {
    R.Ok = false;
    R.Error = "cross-group traffic needs at least two groups";
    return R;
  }

  ShardConfig SC;
  SC.ShardCount = Cfg.ShardCount;
  ShardedStm Stm(SC);

  const size_t CellCount = size_t{Cfg.Groups} * Cfg.CellsPerGroup;
  std::unique_ptr<TVar<uint64_t>[]> Cells(new TVar<uint64_t>[CellCount]);

  uint64_t ExpectedIncrements = 0;
  std::vector<std::vector<Op>> MeasurePlans;
  MeasurePlans.reserve(Cfg.Threads);
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    MeasurePlans.push_back(
        makePlan(Cfg, T, Cfg.OpsPerThread, /*Salt=*/2, ExpectedIncrements));

  // Steered mode: run a learning window with the listener attached, then
  // drain the commit stream, compile the greedy placement, and install it
  // at this (quiescent) point. The telemetry is reset so the measured
  // window reports only post-placement behavior.
  ShardSteering Steering(Cfg.Threads, Cfg.ShardCount);
  ShardPlacement Learned;
  if (Cfg.Steering) {
    for (unsigned G = 0; G < Cfg.Groups; ++G) {
      TVar<uint64_t> *Base = Cells.get() + size_t{G} * Cfg.CellsPerGroup;
      Steering.registerGroup(G, Base, Base + Cfg.CellsPerGroup);
    }
    std::vector<std::vector<Op>> WarmPlans;
    WarmPlans.reserve(Cfg.Threads);
    for (unsigned T = 0; T < Cfg.Threads; ++T)
      WarmPlans.push_back(makePlan(Cfg, T, Cfg.WarmupOpsPerThread,
                                   /*Salt=*/1, ExpectedIncrements));
    runAllThreads(Stm, Cells.get(), Cfg, WarmPlans, &Steering);
    Steering.drain();
    Learned = Steering.buildPlacement();
    Stm.setPlacement(&Learned);
    Stm.stats().reset();
  }

  auto Start = std::chrono::steady_clock::now();
  runAllThreads(Stm, Cells.get(), Cfg, MeasurePlans, nullptr);
  auto End = std::chrono::steady_clock::now();
  R.WallSeconds = std::chrono::duration<double>(End - Start).count();
  R.Operations = uint64_t{Cfg.Threads} * Cfg.OpsPerThread;

  StatsSnapshot Agg = Stm.stats().aggregate();
  R.Commits = Agg.Commits;
  R.Aborts = Agg.Aborts;
  R.CrossShardCommits = Agg.CrossShardCommits;
  R.PrepareRetries = Agg.PrepareRetries;

  // Honest-accounting gate: every increment the plans promised must be in
  // the cells, or the timing numbers describe a broken run.
  uint64_t Sum = 0;
  for (size_t I = 0; I < CellCount; ++I)
    Sum += Cells[I].loadDirect();
  if (Sum != ExpectedIncrements) {
    R.Ok = false;
    R.Error = "cell sum " + std::to_string(Sum) + " != expected " +
              std::to_string(ExpectedIncrements);
  }
  return R;
}
