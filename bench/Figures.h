//===- bench/Figures.h - Shared figure-rendering helpers ------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread variance figures (4 and 6) and abort-tail figures
/// (5 and 7) differ only in their thread count, so the rendering lives
/// here and each figure binary sets its default thread count.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_BENCH_FIGURES_H
#define GSTM_BENCH_FIGURES_H

#include "bench/Common.h"

#include <cstdio>

namespace gstm {

/// Figures 4/6: per-thread % execution-time variance improvement of
/// guided over default execution, one row per benchmark.
inline void printVarianceFigure(const BenchOptions &Opts, unsigned Threads) {
  std::printf("benchmark   per-thread %% stddev(exec time) improvement "
              "(t0..t%u)\n",
              Threads - 1);
  for (const std::string &Name : Opts.Workloads) {
    if (Name == "ssca2")
      continue; // shown separately in Figure 8
    ExperimentResult R = runStampExperiment(Name, Opts, Threads);
    std::printf("%-10s", Name.c_str());
    for (double V : R.varianceImprovementPercent())
      std::printf(" %+6.1f", V);
    std::printf("   (ND -%.0f%%, slowdown %.2fx)\n",
                R.nondeterminismReductionPercent(), R.slowdownFactor());
    std::fflush(stdout);
  }
}

/// Figures 5/7: the tail of the abort distribution, default (D) versus
/// guided (G), for one representative thread per benchmark. Buckets list
/// `aborts:frequency`; the guided tail should be visibly shorter.
inline void printAbortTailFigure(const BenchOptions &Opts, unsigned Threads,
                                 unsigned FirstThread) {
  unsigned Pick = FirstThread;
  for (const std::string &Name : Opts.Workloads) {
    if (Name == "ssca2")
      continue; // shown separately in Figure 8
    ExperimentResult R = runStampExperiment(Name, Opts, Threads);
    unsigned Thread = Pick % Threads;
    Pick = (Pick + 1) % Threads;

    const AbortHistogram &Def = R.Default.ThreadHists[Thread];
    const AbortHistogram &Gui = R.Guided.ThreadHists[Thread];
    std::printf("%s thread %u  (tail metric: default %.0f, guided %.0f, "
                "max aborts: %lu -> %lu)\n",
                Name.c_str(), Thread, Def.tailMetric(), Gui.tailMetric(),
                Def.maxAborts(), Gui.maxAborts());
    std::printf("  D:");
    for (const auto &[Aborts, Freq] : Def.buckets())
      std::printf(" %lu:%lu", Aborts, Freq);
    std::printf("\n  G:");
    for (const auto &[Aborts, Freq] : Gui.buckets())
      std::printf(" %lu:%lu", Aborts, Freq);
    std::printf("\n");
    std::fflush(stdout);
  }
}

} // namespace gstm

#endif // GSTM_BENCH_FIGURES_H
