//===- examples/reservation_system.cpp - vacation-style booking demo -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// A travel-booking service on the transactional containers: red-black
// tree tables for cars/flights/rooms, per-customer reservation lists, and
// concurrent clients issuing composite booking transactions — the
// workload shape that motivates vacation in the paper's evaluation. The
// demo runs the service default and guided and reports the variance of
// per-client latency tails.
//
//   $ ./reservation_system [--threads=6] [--ops=300] [--size=small]
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "stamp/SizeClass.h"
#include "stamp/Vacation.h"
#include "support/Options.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  unsigned Threads = static_cast<unsigned>(Opts.getInt("threads", 6));
  SizeClass Size = parseSizeClass(Opts.getString("size", "small"));

  VacationParams Params = VacationParams::forSize(Size);
  if (Opts.has("ops"))
    Params.OpsPerThread =
        static_cast<uint32_t>(Opts.getInt("ops", Params.OpsPerThread));

  std::printf("reservation system: %u tables x %u assets, %u customers, "
              "%u clients x %u ops\n\n",
              3u, Params.NumRelations, Params.NumCustomers, Threads,
              Params.OpsPerThread);

  VacationWorkload Service(Params);
  ExperimentConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.ProfileRuns = 4;
  Cfg.MeasureRuns = 6;
  Cfg.ForceGuided = true;
  ExperimentResult R = runExperiment(Service, Cfg);

  std::printf("model: %zu states, guidance metric %.0f%% (%s)\n",
              R.Model.numStates(), R.Report.GuidanceMetricPercent,
              R.Report.Optimizable ? "guidable" : "weak model");
  std::printf("correctness: default %s, guided %s (seat conservation + "
              "red-black invariants)\n",
              R.Default.AllVerified ? "ok" : "FAILED",
              R.Guided.AllVerified ? "ok" : "FAILED");
  std::printf("aborts:     %lu -> %lu (ratio %.2f -> %.2f)\n",
              R.Default.TotalAborts, R.Guided.TotalAborts,
              R.defaultAbortRatio(), R.guidedAbortRatio());
  std::printf("distinct transactional states: %zu -> %zu (-%.0f%%)\n",
              R.Default.DistinctStates, R.Guided.DistinctStates,
              R.nondeterminismReductionPercent());
  std::printf("abort-tail metric improvement: %+.0f%% (mean over "
              "clients)\n",
              R.meanTailImprovementPercent());
  std::printf("service time: %.3fs -> %.3fs (%.2fx)\n",
              R.Default.MeanWallSeconds, R.Guided.MeanWallSeconds,
              R.slowdownFactor());
  return 0;
}
