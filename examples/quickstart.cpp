//===- examples/quickstart.cpp - First steps with the GSTM library ---------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The full pipeline on twenty lines of application code: a tiny bank of
// transactional accounts, profiled to build a thread-state-automaton
// model, analyzed, and re-run under guided execution.
//
//   $ ./quickstart [--threads=4] [--transfers=400]
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/GuideController.h"
#include "core/GuidedPolicy.h"
#include "core/Trace.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"
#include "support/Options.h"
#include "support/SplitMix64.h"

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

using namespace gstm;

namespace {

constexpr unsigned NumAccounts = 24;

/// The application: random transfers between accounts. Each transfer is
/// one transaction at site 0; an audit summing all balances is site 1.
void runBank(Tl2Stm &Stm, unsigned Threads, unsigned TransfersPerThread,
             std::vector<std::unique_ptr<TVar<int64_t>>> &Accounts) {
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      SplitMix64 Rng(T + 1);
      for (unsigned I = 0; I < TransfersPerThread; ++I) {
        unsigned From = Rng.nextBounded(NumAccounts);
        unsigned To = Rng.nextBounded(NumAccounts);
        int64_t Amount = static_cast<int64_t>(Rng.nextBounded(25));
        Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) {
          Tx.store(*Accounts[From], Tx.load(*Accounts[From]) - Amount);
          Tx.store(*Accounts[To], Tx.load(*Accounts[To]) + Amount);
        });
        if (I % 64 == 0) {
          int64_t Total = 0;
          Txn.run(/*Tx=*/1, [&](Tl2Txn &Tx) {
            Total = 0;
            for (auto &A : Accounts)
              Total += Tx.load(*A);
          });
          (void)Total;
        }
      }
    });
  for (auto &W : Workers)
    W.join();
}

std::vector<std::unique_ptr<TVar<int64_t>>> makeAccounts() {
  std::vector<std::unique_ptr<TVar<int64_t>>> Accounts;
  for (unsigned I = 0; I < NumAccounts; ++I)
    Accounts.push_back(std::make_unique<TVar<int64_t>>(1000));
  return Accounts;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  unsigned Threads = static_cast<unsigned>(Opts.getInt("threads", 4));
  unsigned Transfers =
      static_cast<unsigned>(Opts.getInt("transfers", 400));

  Tl2Config StmCfg;
  StmCfg.PreemptShift = 5; // interleave transactions on few cores

  // ------------------------------------------------------------------
  // Phase 1: profile. The TraceCollector observes every commit/abort.
  // ------------------------------------------------------------------
  std::printf("[1/4] profiling %u runs...\n", 4u);
  Tsa Model;
  for (unsigned Run = 0; Run < 4; ++Run) {
    Tl2Stm Stm(StmCfg);
    TraceCollector Collector(Threads);
    Stm.setObserver(&Collector);
    auto Accounts = makeAccounts();
    runBank(Stm, Threads, Transfers, Accounts);
    Model.addRun(groupTuples(Collector.takeTrace(), Grouping::Sequence));
  }
  std::printf("      model: %zu states, %lu transitions\n",
              Model.numStates(), Model.numTransitions());

  // ------------------------------------------------------------------
  // Phase 2: analyze (paper Sec. IV).
  // ------------------------------------------------------------------
  AnalyzerReport Report = analyzeModel(Model);
  std::printf("[2/4] analyzer: guidance metric %.0f%% -> %s\n",
              Report.GuidanceMetricPercent,
              Report.Optimizable ? "worth guiding" : "not worth guiding");

  // ------------------------------------------------------------------
  // Phase 3: default run for comparison.
  // ------------------------------------------------------------------
  uint64_t DefaultAborts;
  {
    Tl2Stm Stm(StmCfg);
    auto Accounts = makeAccounts();
    runBank(Stm, Threads, Transfers, Accounts);
    DefaultAborts = Stm.stats().aborts();
    std::printf("[3/4] default run: %lu commits, %lu aborts\n",
                Stm.stats().commits(), DefaultAborts);
  }

  // ------------------------------------------------------------------
  // Phase 4: guided run (paper Sec. V).
  // ------------------------------------------------------------------
  {
    GuidedPolicy Policy(std::move(Model), /*Tfactor=*/4.0);
    GuideController Controller(Policy, GuideConfig{});
    Tl2Stm Stm(StmCfg);
    Stm.setObserver(&Controller);
    Stm.setGate(&Controller);
    auto Accounts = makeAccounts();
    runBank(Stm, Threads, Transfers, Accounts);

    int64_t Total = 0;
    for (auto &A : Accounts)
      Total += A->loadDirect();
    GuideStats GS = Controller.stats();
    std::printf("[4/4] guided run:  %lu commits, %lu aborts "
                "(gate held %lu starts)\n",
                Stm.stats().commits(), Stm.stats().aborts(),
                GS.Holds);
    std::printf("      money conserved: %s (total %ld)\n",
                Total == int64_t{NumAccounts} * 1000 ? "yes" : "NO BUG",
                Total);
    std::printf("      abort change: %lu -> %lu\n", DefaultAborts,
                Stm.stats().aborts());
  }
  return 0;
}
