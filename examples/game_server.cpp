//===- examples/game_server.cpp - SynQuake game-server demo ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating application: a multiplayer game server whose
// frame times must stay predictable. Runs the SynQuake simulation on the
// LibTM object-based STM, trains the model on the attract-everyone
// quests, then shows per-frame timing for a test quest with and without
// guidance.
//
//   $ ./game_server [--threads=4] [--players=300] [--frames=48]
//                   [--quest=4quadrants]
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "synquake/Experiment.h"

#include <cstdio>

using namespace gstm;

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);

  SynQuakeExperimentConfig Cfg;
  Cfg.Threads = static_cast<unsigned>(Opts.getInt("threads", 4));
  Cfg.Game.NumPlayers =
      static_cast<uint32_t>(Opts.getInt("players", 300));
  Cfg.Game.Frames = static_cast<uint32_t>(Opts.getInt("frames", 48));
  Cfg.Game.Quest =
      parseQuestPattern(Opts.getString("quest", "4quadrants"));
  Cfg.TrainFrames = 24;
  Cfg.ProfileRunsPerQuest = 2;
  Cfg.MeasureRuns = 4;

  std::printf("game server: %u players, %u frames, quest %s, %u server "
              "threads\n",
              Cfg.Game.NumPlayers, Cfg.Game.Frames,
              questPatternName(Cfg.Game.Quest), Cfg.Threads);
  std::printf("training the commit model on 4worst_case + 4moving...\n\n");

  SynQuakeExperimentResult R = runSynQuakeExperiment(Cfg);

  std::printf("model: %zu states, guidance metric %.0f%%\n",
              R.Model.numStates(), R.Report.GuidanceMetricPercent);
  std::printf("world consistency: default %s, guided %s\n",
              R.Default.AllVerified ? "ok" : "FAILED",
              R.Guided.AllVerified ? "ok" : "FAILED");
  std::printf("\n                 default     guided\n");
  std::printf("frame time      %7.3fms  %7.3fms\n",
              R.Default.FrameMean.mean() * 1e3,
              R.Guided.FrameMean.mean() * 1e3);
  std::printf("frame jitter    %7.3fms  %7.3fms  (%+.1f%%)\n",
              R.Default.FrameStddev.mean() * 1e3,
              R.Guided.FrameStddev.mean() * 1e3,
              R.frameVarianceImprovementPercent());
  std::printf("abort ratio     %7.2f    %7.2f    (cut %.1f%%)\n",
              R.Default.abortRatio(), R.Guided.abortRatio(),
              R.abortRatioReductionPercent());
  std::printf("total time      %7.3fs   %7.3fs   (%.2fx)\n",
              R.Default.TotalSeconds.mean(), R.Guided.TotalSeconds.mean(),
              R.slowdownFactor());
  return 0;
}
