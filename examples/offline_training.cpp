//===- examples/offline_training.cpp - train once, guide forever ------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The paper's deployment model is offline: the artifact's `mcmc_data`
// option writes a `state_data` model file that later `model` runs load.
// This example mirrors that workflow across process "stages":
//
//   $ ./offline_training --stage=train --model=/tmp/kmeans.tsa
//   $ ./offline_training --stage=guide --model=/tmp/kmeans.tsa
//
// Without --stage both stages run back to back. Inspect the produced
// file with tools/model_inspect.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/GuidedPolicy.h"
#include "core/Runner.h"
#include "model/Serialize.h"
#include "stamp/Registry.h"
#include "support/Options.h"

#include <cstdio>

using namespace gstm;

static int train(const std::string &Workload, const std::string &Path,
                 unsigned Threads, unsigned Runs) {
  auto W = createStampWorkload(Workload, SizeClass::Medium);
  if (!W)
    return 1;
  std::printf("training %s on medium input, %u runs x %u threads...\n",
              Workload.c_str(), Runs, Threads);

  RunnerConfig RC;
  RC.Threads = Threads;
  Tsa Model;
  for (unsigned Run = 0; Run < Runs; ++Run)
    Model.addRun(runWorkloadOnce(*W, RC, 100 + Run, nullptr).Tuples);

  AnalyzerReport Report = analyzeModel(Model);
  std::printf("model: %zu states, guidance metric %.0f%% (%s)\n",
              Model.numStates(), Report.GuidanceMetricPercent,
              Report.Optimizable ? "guidable" : "weak");
  std::string Detail;
  if (saveModel(Model, Path, &Detail) != ModelIoStatus::Ok) {
    std::fprintf(stderr, "error: cannot write '%s': %s\n", Path.c_str(),
                 Detail.c_str());
    return 1;
  }
  std::printf("saved to %s (%zu bytes in memory)\n", Path.c_str(),
              Model.approxSizeBytes());
  return 0;
}

static int guide(const std::string &Workload, const std::string &Path,
                 unsigned Threads, unsigned Runs) {
  ModelLoadResult Loaded = loadModel(Path);
  if (!Loaded.ok()) {
    std::fprintf(stderr,
                 "error: cannot load '%s' (%s) — run --stage=train "
                 "first\n",
                 Path.c_str(), modelIoStatusName(Loaded.Status));
    return 1;
  }
  std::optional<Tsa> &Model = Loaded.Model;
  auto W = createStampWorkload(Workload, SizeClass::Large);
  if (!W)
    return 1;
  std::printf("loaded model with %zu states; guiding %s on large "
              "input...\n",
              Model->numStates(), Workload.c_str());

  GuidedPolicy Policy(std::move(*Model), /*Tfactor=*/4.0);
  RunnerConfig RC;
  RC.Threads = Threads;

  uint64_t DefaultAborts = 0, GuidedAborts = 0;
  for (unsigned Run = 0; Run < Runs; ++Run) {
    DefaultAborts += runWorkloadOnce(*W, RC, 42, nullptr).Aborts;
    GuidedAborts += runWorkloadOnce(*W, RC, 42, &Policy).Aborts;
  }
  std::printf("aborts over %u runs: default %lu, guided %lu\n", Runs,
              DefaultAborts, GuidedAborts);
  return 0;
}

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  std::string Stage = Opts.getString("stage", "both");
  std::string Workload = Opts.getString("workload", "kmeans");
  std::string Path = Opts.getString("model", "/tmp/gstm_model.tsa");
  unsigned Threads = static_cast<unsigned>(Opts.getInt("threads", 8));
  unsigned Runs = static_cast<unsigned>(Opts.getInt("runs", 5));

  if (Stage == "train")
    return train(Workload, Path, Threads, Runs);
  if (Stage == "guide")
    return guide(Workload, Path, Threads, Runs);
  int Rc = train(Workload, Path, Threads, Runs);
  if (Rc != 0)
    return Rc;
  std::printf("\n");
  return guide(Workload, Path, Threads, Runs);
}
