//===- examples/variance_lab.cpp - explore STM non-determinism -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// An interactive-ish lab for the paper's *quantification* side: run any
// STAMP port repeatedly, print the thread-transactional-state census
// (the non-determinism measure), the per-thread abort histograms, and a
// render of the hottest states with their transition probabilities —
// i.e. what the model generation phase actually sees.
//
//   $ ./variance_lab [--workload=kmeans] [--threads=4] [--runs=5]
//                    [--size=small] [--states=8]
//
//===----------------------------------------------------------------------===//

#include "core/Runner.h"
#include "core/Tsa.h"
#include "stamp/Registry.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

using namespace gstm;

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  std::string Name = Opts.getString("workload", "kmeans");
  unsigned Threads = static_cast<unsigned>(Opts.getInt("threads", 4));
  unsigned Runs = static_cast<unsigned>(Opts.getInt("runs", 5));
  unsigned ShowStates = static_cast<unsigned>(Opts.getInt("states", 8));
  SizeClass Size = parseSizeClass(Opts.getString("size", "small"));

  auto Workload = createStampWorkload(Name, Size);
  if (!Workload) {
    std::fprintf(stderr, "unknown workload '%s'; choose from:", Name.c_str());
    for (const std::string &N : stampWorkloadNames())
      std::fprintf(stderr, " %s", N.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("variance lab: %s (%s), %u threads, %u runs of the same "
              "input\n\n",
              Name.c_str(), sizeClassName(Size), Threads, Runs);

  Tsa Model;
  std::unordered_set<StateTuple, StateTupleHash> Distinct;
  std::vector<AbortHistogram> Hists(Threads);
  RunnerConfig Cfg;
  Cfg.Threads = Threads;

  for (unsigned Run = 0; Run < Runs; ++Run) {
    RunResult R = runWorkloadOnce(*Workload, Cfg, /*Seed=*/7, nullptr);
    for (const StateTuple &S : R.Tuples)
      Distinct.insert(S);
    Model.addRun(R.Tuples);
    for (unsigned T = 0; T < Threads; ++T)
      Hists[T].merge(R.ThreadHists[T]);
    std::printf("run %u: %lu commits, %lu aborts, %zu tuples, verified=%s\n",
                Run, R.Commits, R.Aborts, R.Tuples.size(),
                R.Verified ? "yes" : "NO");
  }

  std::printf("\nnon-determinism: %zu distinct thread transactional "
              "states across %u identical-input runs\n",
              Distinct.size(), Runs);

  std::printf("\nper-thread abort histograms (aborts:frequency):\n");
  for (unsigned T = 0; T < Threads; ++T) {
    std::printf("  t%u:", T);
    for (const auto &[Aborts, Freq] : Hists[T].buckets())
      std::printf(" %lu:%lu", Aborts, Freq);
    std::printf("   (tail metric %.0f)\n", Hists[T].tailMetric());
  }

  // The hottest states, rendered in the paper's notation with their most
  // probable successors — a textual version of the paper's Figure 3.
  std::printf("\nhottest states (paper notation, like Fig. 3):\n");
  std::vector<std::pair<uint64_t, StateId>> ByTraffic;
  for (StateId S = 0; S < Model.numStates(); ++S)
    ByTraffic.push_back({Model.outFrequency(S), S});
  std::sort(ByTraffic.rbegin(), ByTraffic.rend());
  for (unsigned I = 0; I < ShowStates && I < ByTraffic.size(); ++I) {
    StateId S = ByTraffic[I].second;
    std::printf("  %s  (seen %lu times)\n", Model.state(S).format().c_str(),
                Model.outFrequency(S));
    unsigned Shown = 0;
    for (const TsaEdge &E : Model.successors(S)) {
      if (++Shown > 3)
        break;
      std::printf("     -%.3f-> %s\n", E.Probability,
                  Model.state(E.Dest).format().c_str());
    }
  }
  return 0;
}
