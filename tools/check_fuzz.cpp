//===- tools/check_fuzz.cpp - STM correctness fuzzer ----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Schedule-perturbation fuzzer over the STM backends (src/check/):
//
//   check_fuzz [--iters=N] [--seed-base=S] [--backend=all|tl2-lazy|
//              tl2-eager|libtm|ref] [--threads=T] [--txns=K] [--vars=V]
//   check_fuzz --seed=S [--backend=B]       # reproduce one seed
//   check_fuzz --smoke                      # CI preset: 1024 iterations
//
// Each iteration expands a seed into a randomized transactional workload,
// runs it under the selected backend(s) with seeded schedule perturbation,
// records the full history, and fails if the opacity/serializability
// checkers object, the final state deviates from the analytic expectation,
// backends diverge from each other, or lock residue survives quiescence.
//
// Every failure prints the exact reproduction command; exit status is the
// number of failing seeds (capped at 125).
//
//===----------------------------------------------------------------------===//

#include "check/Fuzz.h"
#include "check/ShardFuzz.h"
#include "check/TmdsFuzz.h"
#include "support/Options.h"

#include <cstdio>
#include <string>

using namespace gstm;

int main(int Argc, char **Argv) {
  OptionSet Cli(
      "check_fuzz",
      "schedule-perturbation correctness fuzzer over the STM backends",
      {
          {"iters", "N", "seeds to run (default 256; 1024 with --smoke)"},
          {"seed-base", "S", "first seed of the range (default 1)"},
          {"seed", "S", "reproduce exactly one seed"},
          {"backend", "B",
           "all, tl2-lazy, tl2-eager, libtm, orec-eager, tlrw, 2pl-undo "
           "or ref (default all)"},
          {"workload", "W",
           "rmw (flat read-modify-write vars), skiplist or btree "
           "(transactional map over src/tmds), or sharded (key-partitioned "
           "rmw spanning shard contexts; default rmw)"},
          {"threads", "T", "worker threads per iteration"},
          {"txns", "K", "transactions per thread"},
          {"vars", "V", "shared variables in the workload (rmw/sharded)"},
          {"keys", "K", "keyspace size (skiplist/btree; default 32)"},
          {"shards", "N", "shard contexts (sharded workload; default 4)"},
          {"ops", "N", "max operations per transaction"},
          {"preempt-shift", "N", "preemption-point density (power of two)"},
          {"perturb-shift", "N", "schedule-perturbation density"},
          {"smoke", "", "CI preset: 1024 seeds per backend, both commit "
                        "orderings"},
          {"commit-order", "O",
           "single-fence, standard or both (default single-fence; both "
           "with --smoke)"},
          {"verbose", "", "print every iteration, not just failures"},
          {"inject-skip-validation", "",
           "fault injection: skip read validation, TL2 + orec-eager "
           "(checkers must object)"},
          {"inject-torn-publish", "",
           "fault injection: publish torn versions (checkers must object)"},
          {"inject-skip-undo", "",
           "fault injection: skip undo replay on abort, orec-eager + "
           "2pl-undo (checkers must object)"},
          {"inject-skip-drain", "",
           "fault injection: skip the tlrw writer's reader-byte drain "
           "(checkers must object)"},
          {"inject-torn-coordinated", "",
           "fault injection: tear the coordinated cross-shard publish "
           "(sharded workload; checkers must object)"},
      });
  Options Opts = Cli.parseOrExit(Argc, Argv);

  const bool Smoke = Opts.getBool("smoke", false);
  const uint64_t SeedBase =
      static_cast<uint64_t>(Opts.getInt("seed-base", 1));
  const uint64_t Iters = static_cast<uint64_t>(
      Opts.getInt("iters", Smoke ? 1024 : 256));
  const std::string BackendName = Opts.getString("backend", "all");
  const bool Verbose = Opts.getBool("verbose", false);

  FuzzConfig Cfg;
  Cfg.Threads = static_cast<unsigned>(Opts.getInt("threads", Cfg.Threads));
  Cfg.TxnsPerThread =
      static_cast<unsigned>(Opts.getInt("txns", Cfg.TxnsPerThread));
  Cfg.Vars = static_cast<unsigned>(Opts.getInt("vars", Cfg.Vars));
  Cfg.MaxOpsPerTxn =
      static_cast<unsigned>(Opts.getInt("ops", Cfg.MaxOpsPerTxn));
  Cfg.PreemptShift =
      static_cast<unsigned>(Opts.getInt("preempt-shift", Cfg.PreemptShift));
  Cfg.PerturbShift =
      static_cast<unsigned>(Opts.getInt("perturb-shift", Cfg.PerturbShift));
  // Fault injection, for watching the checkers catch a broken STM by hand
  // (the mutation self-test in tests/check_test.cpp automates this).
  Cfg.Fault.SkipReadValidation = Opts.getBool("inject-skip-validation", false);
  Cfg.Fault.TornVersionPublish = Opts.getBool("inject-torn-publish", false);
  // The engine-family knobs: skip-validation maps onto orec-eager's
  // commit validation too; the other two target engine-specific safety
  // mechanisms (undo replay, reader-byte drain).
  Cfg.EngineFault.SkipReadValidation = Cfg.Fault.SkipReadValidation;
  Cfg.EngineFault.SkipUndoReplay = Opts.getBool("inject-skip-undo", false);
  Cfg.EngineFault.SkipReaderDrain = Opts.getBool("inject-skip-drain", false);

  FuzzBackend Only = FuzzBackend::Tl2Lazy;
  const bool All = BackendName == "all";
  if (!All && !fuzzBackendFromName(BackendName, Only)) {
    std::fprintf(stderr,
                 "check_fuzz: unknown --backend=%s (want all, tl2-lazy, "
                 "tl2-eager, libtm, orec-eager, tlrw, 2pl-undo or ref)\n",
                 BackendName.c_str());
    return 2;
  }

  // Structure workloads drive the tmds containers through the same
  // backends/checkers; the sharded workload drives the partitioned-orec
  // tier (check/ShardFuzz.h); the flat rmw workload stays the default.
  const std::string WorkloadName = Opts.getString("workload", "rmw");
  const bool ShardWorkload = WorkloadName == "sharded";
  const bool TmdsWorkload = WorkloadName != "rmw" && !ShardWorkload;
  TmdsFuzzConfig TCfg;
  if (TmdsWorkload &&
      !tmdsStructureFromName(WorkloadName, TCfg.Structure)) {
    std::fprintf(stderr,
                 "check_fuzz: unknown --workload=%s (want rmw, skiplist, "
                 "btree or sharded)\n",
                 WorkloadName.c_str());
    return 2;
  }
  if (WorkloadName != "rmw" &&
      (Cfg.Fault.SkipReadValidation || Cfg.Fault.TornVersionPublish ||
       Cfg.EngineFault.SkipUndoReplay || Cfg.EngineFault.SkipReaderDrain)) {
    std::fprintf(stderr,
                 "check_fuzz: this fault injection only applies to "
                 "--workload=rmw\n");
    return 2;
  }
  ShardFuzzConfig SCfg;
  SCfg.Fault.TornCoordinatedPublish =
      Opts.getBool("inject-torn-coordinated", false);
  if (SCfg.Fault.TornCoordinatedPublish && !ShardWorkload) {
    std::fprintf(stderr,
                 "check_fuzz: --inject-torn-coordinated only applies to "
                 "--workload=sharded\n");
    return 2;
  }
  if (ShardWorkload && !All) {
    std::fprintf(stderr,
                 "check_fuzz: --workload=sharded runs its own variant set "
                 "(sharded, sharded-1, ref); --backend is not applicable\n");
    return 2;
  }
  SCfg.Threads = static_cast<unsigned>(Opts.getInt("threads", SCfg.Threads));
  SCfg.TxnsPerThread =
      static_cast<unsigned>(Opts.getInt("txns", SCfg.TxnsPerThread));
  SCfg.Vars = static_cast<unsigned>(Opts.getInt("vars", SCfg.Vars));
  SCfg.MaxOpsPerTxn =
      static_cast<unsigned>(Opts.getInt("ops", SCfg.MaxOpsPerTxn));
  SCfg.ShardCount =
      static_cast<unsigned>(Opts.getInt("shards", SCfg.ShardCount));
  SCfg.PreemptShift =
      static_cast<unsigned>(Opts.getInt("preempt-shift", SCfg.PreemptShift));
  SCfg.PerturbShift =
      static_cast<unsigned>(Opts.getInt("perturb-shift", SCfg.PerturbShift));
  TCfg.Threads =
      static_cast<unsigned>(Opts.getInt("threads", TCfg.Threads));
  TCfg.TxnsPerThread =
      static_cast<unsigned>(Opts.getInt("txns", TCfg.TxnsPerThread));
  TCfg.OpsPerTxn =
      static_cast<unsigned>(Opts.getInt("ops", TCfg.OpsPerTxn));
  TCfg.Keys = static_cast<unsigned>(Opts.getInt("keys", TCfg.Keys));
  TCfg.PreemptShift =
      static_cast<unsigned>(Opts.getInt("preempt-shift", TCfg.PreemptShift));
  TCfg.PerturbShift =
      static_cast<unsigned>(Opts.getInt("perturb-shift", TCfg.PerturbShift));

  // Which commit orderings to sweep. The single-fence writeback path is
  // the runtime default; --smoke covers the standard ordering too so the
  // legacy path keeps its correctness coverage.
  const std::string OrderName =
      Opts.getString("commit-order", Smoke ? "both" : "single-fence");
  std::vector<bool> Orders;
  if (OrderName == "single-fence")
    Orders = {true};
  else if (OrderName == "standard")
    Orders = {false};
  else if (OrderName == "both")
    Orders = {true, false};
  else {
    std::fprintf(stderr,
                 "check_fuzz: unknown --commit-order=%s (want "
                 "single-fence, standard or both)\n",
                 OrderName.c_str());
    return 2;
  }

  uint64_t First = SeedBase, Count = Iters;
  if (Opts.has("seed")) {
    First = static_cast<uint64_t>(Opts.getInt("seed", 1));
    Count = 1;
  }

  uint64_t Failures = 0, Attempts = 0, Commits = 0, Yields = 0;
  uint64_t CrossCommits = 0;
  for (bool SingleFence : Orders) {
  Cfg.SingleFenceCommit = SingleFence;
  for (uint64_t I = 0; I < Count; ++I) {
    const uint64_t Seed = First + I;
    if (ShardWorkload) {
      SCfg.SingleFenceCommit = SingleFence;
      ShardDifferentialResult D = runShardDifferential(Seed, SCfg);
      for (const auto &[Variant, R] : D.PerVariant) {
        Attempts += R.Attempts;
        Commits += R.Committed;
        Yields += R.PerturbYields;
        CrossCommits += R.CrossShardCommits;
        if (Verbose || !R.passed())
          std::printf("seed %llu %-9s %s%s%s\n",
                      static_cast<unsigned long long>(Seed),
                      Variant.c_str(), R.passed() ? "ok" : "FAIL: ",
                      R.passed() ? "" : R.Error.c_str(),
                      R.Check.ok() ? "" : " [checker non-Ok]");
      }
      if (!D.passed()) {
        ++Failures;
        std::printf(
            "FAIL seed %llu: %s\n"
            "  repro: check_fuzz --workload=sharded --shards=%u "
            "--seed=%llu --commit-order=%s\n",
            static_cast<unsigned long long>(Seed), D.Error.c_str(),
            SCfg.ShardCount, static_cast<unsigned long long>(Seed),
            SingleFence ? "single-fence" : "standard");
      }
      continue;
    }
    if (TmdsWorkload) {
      TCfg.SingleFenceCommit = SingleFence;
      if (All) {
        TmdsDifferentialResult D = runTmdsDifferential(Seed, TCfg);
        for (const auto &[B, R] : D.PerBackend) {
          Attempts += R.Attempts;
          Commits += R.Committed;
          Yields += R.PerturbYields;
          if (Verbose || !R.passed())
            std::printf("seed %llu %-9s %s%s%s\n",
                        static_cast<unsigned long long>(Seed),
                        fuzzBackendName(B), R.passed() ? "ok" : "FAIL: ",
                        R.passed() ? "" : R.Error.c_str(),
                        R.Check.ok() ? "" : " [checker non-Ok]");
        }
        if (!D.passed()) {
          ++Failures;
          std::printf(
              "FAIL seed %llu: %s\n"
              "  repro: check_fuzz --workload=%s --seed=%llu "
              "--commit-order=%s\n",
              static_cast<unsigned long long>(Seed), D.Error.c_str(),
              WorkloadName.c_str(), static_cast<unsigned long long>(Seed),
              SingleFence ? "single-fence" : "standard");
        }
      } else {
        TmdsRunResult R = runTmdsFuzzIteration(Seed, Only, TCfg);
        Attempts += R.Attempts;
        Commits += R.Committed;
        Yields += R.PerturbYields;
        if (!R.passed()) {
          ++Failures;
          std::printf(
              "FAIL seed %llu (%s): %s\n"
              "  repro: check_fuzz --workload=%s --seed=%llu "
              "--backend=%s --commit-order=%s\n",
              static_cast<unsigned long long>(Seed),
              fuzzBackendName(Only), R.Error.c_str(),
              WorkloadName.c_str(), static_cast<unsigned long long>(Seed),
              fuzzBackendName(Only),
              SingleFence ? "single-fence" : "standard");
        } else if (Verbose) {
          std::printf("seed %llu %s ok (%zu attempts, %zu commits)\n",
                      static_cast<unsigned long long>(Seed),
                      fuzzBackendName(Only), R.Attempts, R.Committed);
        }
      }
      continue;
    }
    if (All) {
      DifferentialResult D = runDifferential(Seed, Cfg);
      for (const auto &[B, R] : D.PerBackend) {
        Attempts += R.Attempts;
        Commits += R.Committed;
        Yields += R.PerturbYields;
        if (Verbose || !R.passed())
          std::printf("seed %llu %-9s %s%s%s\n",
                      static_cast<unsigned long long>(Seed),
                      fuzzBackendName(B), R.passed() ? "ok" : "FAIL: ",
                      R.passed() ? "" : R.Error.c_str(),
                      R.Check.ok() ? "" : " [checker non-Ok]");
      }
      if (!D.passed()) {
        ++Failures;
        std::printf("FAIL seed %llu: %s\n"
                    "  repro: check_fuzz --seed=%llu --commit-order=%s\n",
                    static_cast<unsigned long long>(Seed), D.Error.c_str(),
                    static_cast<unsigned long long>(Seed),
                    SingleFence ? "single-fence" : "standard");
      }
    } else {
      FuzzRunResult R = runFuzzIteration(Seed, Only, Cfg);
      Attempts += R.Attempts;
      Commits += R.Committed;
      Yields += R.PerturbYields;
      if (!R.passed()) {
        ++Failures;
        std::printf(
            "FAIL seed %llu (%s): %s\n"
            "  repro: check_fuzz --seed=%llu --backend=%s "
            "--commit-order=%s\n",
            static_cast<unsigned long long>(Seed), fuzzBackendName(Only),
            R.Error.c_str(), static_cast<unsigned long long>(Seed),
            fuzzBackendName(Only),
            SingleFence ? "single-fence" : "standard");
      } else if (Verbose) {
        std::printf("seed %llu %s ok (%zu attempts, %zu commits)\n",
                    static_cast<unsigned long long>(Seed),
                    fuzzBackendName(Only), R.Attempts, R.Committed);
      }
    }
  }
  }

  if (ShardWorkload)
    std::printf("check_fuzz: %llu cross-shard commit(s) across the sweep\n",
                static_cast<unsigned long long>(CrossCommits));
  std::printf("check_fuzz: %llu seed(s) x %zu ordering(s), workload %s, "
              "backend %s: %llu failure(s); "
              "%llu attempts / %llu commits, %llu injected yields\n",
              static_cast<unsigned long long>(Count), Orders.size(),
              WorkloadName.c_str(), BackendName.c_str(),
              static_cast<unsigned long long>(Failures),
              static_cast<unsigned long long>(Attempts),
              static_cast<unsigned long long>(Commits),
              static_cast<unsigned long long>(Yields));
  return Failures > 125 ? 125 : static_cast<int>(Failures);
}
