//===- tools/bench_runner.cpp - Perf trajectory snapshot runner -----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Executes the repo's benchmark battery and persists one schema-versioned
// perf snapshot:
//
//   * micro  — spawns bench/micro_stm_ops with --json-dir and ingests its
//              google-benchmark JSON (one row per op kind / thread count),
//   * engines — the same micro binary filtered to the policy-templated
//              engine family (orec-eager, TLRW, 2PL-undo): read-only,
//              single-location RMW and disjoint contended RMW per engine;
//              --engine=<name> restricts the axis to one engine,
//   * stamp  — kmeans, ssca2, vacation through core/Runner at a fixed
//              thread count (wall seconds per run; full mode runs at
//              least the tail sample floor so the published p99 is a
//              ranked per-run time, not a repeat max),
//   * synquake — the LibTm game bench (seconds per frame, percentiles
//              from the pooled per-frame histogram),
//   * oltp   — YCSB-style mixes over the transactional skiplist/B-tree
//              (bench/OltpBench.h), percentiles from per-operation
//              commit-latency histograms.
//
// Every metric is aggregated as median / min / max, and written to
// BENCH_<n>.json in --out-dir, where <n> continues the highest snapshot
// already present — the committed BENCH_*.json sequence at the repo root
// is the project's perf trajectory, gated by tools/bench_regress. Tail
// fields (p99/p999) are only emitted when at least ~100 samples back
// them: a "p99" computed from a handful of repeats is just the max
// wearing a costume, so low-sample suites write null instead and
// bench_regress falls back to its fixed tolerance.
//
//   bench_runner --smoke                  # CI preset: small repeats/inputs
//   bench_runner --out-dir=. --repeats=5  # full snapshot at the repo root
//
//===----------------------------------------------------------------------===//

#include "bench/OltpBench.h"
#include "bench/ShardBench.h"
#include "core/Runner.h"
#include "stamp/Registry.h"
#include "stamp/SizeClass.h"
#include "support/Json.h"
#include "support/LatencyHistogram.h"
#include "support/Options.h"
#include "synquake/Game.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace gstm;
namespace fs = std::filesystem;

namespace {

/// Below this many samples a nearest-rank p99 is just the max; the
/// snapshot writes null instead of a fake tail.
constexpr size_t TailSampleFloor = 100;

/// Aggregate of one metric's samples. HasTail gates the p99/p999 fields:
/// they are only meaningful when enough samples back them.
struct Aggregate {
  double Median = 0, P99 = 0, P999 = 0, Min = 0, Max = 0;
  size_t Repeats = 0;
  size_t Samples = 0;
  bool HasTail = false;
};

Aggregate aggregate(std::vector<double> Samples) {
  Aggregate A;
  if (Samples.empty())
    return A;
  std::sort(Samples.begin(), Samples.end());
  const size_t N = Samples.size();
  A.Repeats = N;
  A.Samples = N;
  A.Min = Samples.front();
  A.Max = Samples.back();
  A.Median = N % 2 ? Samples[N / 2]
                   : (Samples[N / 2 - 1] + Samples[N / 2]) / 2.0;
  A.HasTail = N >= TailSampleFloor;
  if (A.HasTail) {
    auto NearestRank = [&](double Q) {
      size_t Rank = static_cast<size_t>(
          std::ceil(Q * static_cast<double>(N)));
      Rank = std::max<size_t>(Rank, 1);
      return Samples[std::min(Rank - 1, N - 1)];
    };
    A.P99 = NearestRank(0.99);
    A.P999 = NearestRank(0.999);
  }
  return A;
}

/// Aggregate from a per-operation latency histogram (values in ns);
/// \p Scale converts ns to the entry's unit (1e-9 for seconds). The
/// histogram's own bucketed quantiles are the percentiles — no repeat-
/// maximum stands in for the tail.
Aggregate aggregateHistogram(const LatencyHistogram &H, double Scale,
                             size_t Repeats) {
  Aggregate A;
  A.Repeats = Repeats;
  A.Samples = static_cast<size_t>(H.count());
  if (!A.Samples)
    return A;
  A.Min = static_cast<double>(H.min()) * Scale;
  A.Max = static_cast<double>(H.max()) * Scale;
  A.Median = static_cast<double>(H.p50()) * Scale;
  A.HasTail = A.Samples >= TailSampleFloor;
  if (A.HasTail) {
    A.P99 = static_cast<double>(H.p99()) * Scale;
    A.P999 = static_cast<double>(H.p999()) * Scale;
  }
  return A;
}

/// One snapshot row.
struct Entry {
  std::string Suite;
  std::string Name;
  unsigned Threads = 1;
  std::string Unit;
  Aggregate Agg;
};

/// Highest <n> among existing Dir/BENCH_<n>.json, or 0.
unsigned highestSnapshot(const fs::path &Dir) {
  unsigned Best = 0;
  std::error_code Ec;
  for (const auto &DirEntry : fs::directory_iterator(Dir, Ec)) {
    const std::string File = DirEntry.path().filename().string();
    unsigned N = 0;
    if (std::sscanf(File.c_str(), "BENCH_%u.json", &N) == 1)
      Best = std::max(Best, N);
  }
  return Best;
}

/// Thread count embedded in a google-benchmark name ("/threads:8"), 1 if
/// absent.
unsigned threadsFromBenchName(const std::string &Name) {
  size_t Pos = Name.find("/threads:");
  if (Pos == std::string::npos)
    return 1;
  return static_cast<unsigned>(
      std::strtoul(Name.c_str() + Pos + 9, nullptr, 10));
}

/// "BM_Tl2WriteTxn/threads:8/real_time" -> "tl2_write_txn_t8"-style flat
/// key: stable across benchmark-library formatting details.
std::string flatBenchName(const std::string &Name) {
  std::string Base = Name.substr(0, Name.find('/'));
  if (Base.rfind("BM_", 0) == 0)
    Base = Base.substr(3);
  std::string Flat;
  for (size_t I = 0; I < Base.size(); ++I) {
    char C = Base[I];
    if (C >= 'A' && C <= 'Z') {
      if (I && !Flat.empty() && Flat.back() != '_')
        Flat.push_back('_');
      Flat.push_back(static_cast<char>(C - 'A' + 'a'));
    } else {
      Flat.push_back(C);
    }
  }
  // Sub-benchmark arg ("/64") distinguishes sized variants.
  size_t Slash = Name.find('/');
  while (Slash != std::string::npos) {
    size_t End = Name.find('/', Slash + 1);
    std::string Part = Name.substr(
        Slash + 1, End == std::string::npos ? std::string::npos
                                            : End - Slash - 1);
    if (!Part.empty() && Part.find(':') == std::string::npos &&
        Part != "real_time")
      Flat += "_" + Part;
    Slash = End;
  }
  return Flat;
}

/// Runs micro_stm_ops with --json-dir and \p Filter, folding its
/// repetition rows into Entries under \p SuiteLabel. Returns false (with
/// a message) when the binary is missing or its output cannot be parsed.
bool runMicroSuite(const std::string &MicroBin, const fs::path &TmpDir,
                   const std::string &Filter, const char *SuiteLabel,
                   unsigned Repetitions, double MinTime,
                   std::vector<Entry> &Entries, std::string &Error) {
  std::error_code Ec;
  fs::create_directories(TmpDir, Ec);
  std::ostringstream Cmd;
  Cmd << MicroBin << " '--benchmark_filter=" << Filter << "'"
      << " --benchmark_repetitions=" << Repetitions
      << " --benchmark_min_time=" << MinTime << " --json-dir="
      << TmpDir.string() << " > " << (TmpDir / "micro_stm_ops.log").string()
      << " 2>&1";
  if (std::system(Cmd.str().c_str()) != 0) {
    Error = "micro_stm_ops failed (see " +
            (TmpDir / "micro_stm_ops.log").string() + ")";
    return false;
  }
  std::ifstream In(TmpDir / "micro_stm_ops.json");
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::optional<JsonValue> Doc = parseJson(Buf.str());
  if (!Doc || !Doc->isObject()) {
    Error = "cannot parse micro_stm_ops.json";
    return false;
  }
  const JsonValue *Rows = Doc->find("benchmarks");
  if (!Rows || !Rows->isArray()) {
    Error = "micro_stm_ops.json has no benchmarks array";
    return false;
  }
  // Group repetition rows (run_type "iteration") by benchmark name.
  std::vector<std::pair<std::string, std::vector<double>>> Groups;
  for (const JsonValue &Row : Rows->Items) {
    const JsonValue *RunType = Row.find("run_type");
    if (RunType && RunType->Str == "aggregate")
      continue;
    const JsonValue *Name = Row.find("name");
    const JsonValue *RealTime = Row.find("real_time");
    if (!Name || !RealTime)
      continue;
    auto It = std::find_if(Groups.begin(), Groups.end(), [&](auto &G) {
      return G.first == Name->Str;
    });
    if (It == Groups.end()) {
      Groups.push_back({Name->Str, {}});
      It = Groups.end() - 1;
    }
    It->second.push_back(RealTime->asDouble());
  }
  for (auto &[Name, Samples] : Groups) {
    Entry E;
    E.Suite = SuiteLabel;
    E.Name = flatBenchName(Name);
    E.Threads = threadsFromBenchName(Name);
    if (E.Threads > 1)
      E.Name += "_t" + std::to_string(E.Threads);
    E.Unit = "ns/op";
    E.Agg = aggregate(std::move(Samples));
    Entries.push_back(std::move(E));
  }
  return true;
}

void runStampSuite(unsigned Threads, unsigned Repeats, uint64_t Seed,
                   bool Smoke, std::vector<Entry> &Entries) {
  // The STAMP Small runs are sub-millisecond and oversubscribed
  // (8 threads on the single-core CI box), so per-run wall time is
  // scheduler-dominated: medians drift by tens of percent between
  // container days and a handful of repeats says nothing about the
  // spread. Full mode therefore runs at least the tail sample floor
  // (a run costs well under a millisecond) so the snapshot publishes
  // a real p99 and the regress gate widens its tolerance by the
  // observed noise instead of false-alarming at the fixed base.
  const unsigned Runs =
      Smoke ? Repeats
            : std::max<unsigned>(Repeats,
                                 static_cast<unsigned>(TailSampleFloor));
  for (const char *Name : {"kmeans", "ssca2", "vacation"}) {
    std::vector<double> Wall;
    for (unsigned R = 0; R < Runs; ++R) {
      std::unique_ptr<TlWorkload> W =
          createStampWorkload(Name, SizeClass::Small);
      if (!W) {
        std::fprintf(stderr, "bench_runner: unknown STAMP workload %s\n",
                     Name);
        std::exit(2);
      }
      RunnerConfig RC;
      RC.Threads = Threads;
      RC.CollectTrace = false;
      RC.Stm = Tl2Config(); // bare STM timing: no perturbation/latency
      RunResult Res = runWorkloadOnce(*W, RC, Seed, nullptr);
      if (!Res.Verified) {
        std::fprintf(stderr,
                     "bench_runner: %s failed verification — refusing to "
                     "record a perf number for a broken run\n",
                     Name);
        std::exit(2);
      }
      Wall.push_back(Res.WallSeconds);
    }
    Entry E;
    E.Suite = "stamp";
    E.Name = Name;
    E.Threads = Threads;
    E.Unit = "s";
    E.Agg = aggregate(std::move(Wall));
    Entries.push_back(std::move(E));
  }
}

void runSynQuakeSuite(unsigned Threads, unsigned Repeats, uint64_t Seed,
                      bool Smoke, std::vector<Entry> &Entries) {
  SynQuakeParams P;
  P.NumPlayers = Smoke ? 96 : 256;
  P.Frames = Smoke ? 8 : 24;
  P.PhysicsIterations = Smoke ? 200 : 1000;
  // Per-frame times pooled across repeats into one histogram, so the
  // published percentiles rank individual frames (24 x 5 = 120 samples
  // in full mode clears the tail floor) instead of repeat maxima.
  LatencyHistogram FrameNs;
  for (unsigned R = 0; R < Repeats; ++R) {
    LibTm Tm;
    SynQuakeGame Game(P);
    Game.setup(Tm, Threads, Seed);
    std::vector<double> Frames = Game.run(Tm, Threads);
    if (!Game.verify()) {
      std::fprintf(stderr, "bench_runner: synquake failed verification — "
                           "refusing to record a perf number\n");
      std::exit(2);
    }
    for (double Sec : Frames)
      FrameNs.record(static_cast<uint64_t>(Sec * 1e9));
  }
  Entry E;
  E.Suite = "synquake";
  E.Name = "quadrants4";
  E.Threads = Threads;
  E.Unit = "s/frame";
  E.Agg = aggregateHistogram(FrameNs, 1e-9, Repeats);
  Entries.push_back(std::move(E));
}

/// YCSB-style OLTP tier: skiplist and B-tree, one update-heavy and one
/// scan/insert mix each; the published metric is per-operation commit
/// latency in ns with histogram-backed percentiles.
void runOltpSuite(unsigned Threads, uint64_t Seed, bool Smoke,
                  std::vector<Entry> &Entries) {
  struct OltpCase {
    const char *Structure;
    const char *MixName;
  };
  for (const OltpCase &C : {OltpCase{"skiplist", "a"},
                            OltpCase{"skiplist", "e"},
                            OltpCase{"btree", "a"},
                            OltpCase{"btree", "e"}}) {
    OltpConfig Cfg;
    Cfg.Structure = C.Structure;
    Cfg.Threads = Threads;
    Cfg.Records = Smoke ? (uint64_t{1} << 12) : (uint64_t{1} << 20);
    Cfg.Operations = Smoke ? (uint64_t{1} << 14) : (uint64_t{1} << 17);
    Cfg.Seed = Seed;
    if (!oltpMixFromName(C.MixName, Cfg.Mix)) {
      std::fprintf(stderr, "bench_runner: bad oltp mix %s\n", C.MixName);
      std::exit(2);
    }
    OltpResult R = runOltp(Cfg);
    if (!R.Ok) {
      std::fprintf(stderr,
                   "bench_runner: oltp %s/%s failed verification (%s) — "
                   "refusing to record a perf number\n",
                   C.Structure, C.MixName, R.Error.c_str());
      std::exit(2);
    }
    Entry E;
    E.Suite = "oltp";
    E.Name = std::string(C.Structure) + "_ycsb_" + C.MixName;
    E.Threads = Threads;
    E.Unit = "ns/op";
    E.Agg = aggregateHistogram(R.Latency, 1.0, /*Repeats=*/1);
    Entries.push_back(std::move(E));
  }
}

/// Sharded tier: a group-local mix and a deliberately cross-shard-heavy
/// mix at shard counts 1/4/8, unsteered and (above one shard) steered.
/// Each case publishes ns/op plus the cross-shard commit ratio — the
/// metric the steering pass exists to reduce, so a steered ratio
/// regression fails bench_regress just like a latency one.
void runShardSuite(unsigned Threads, unsigned Repeats, uint64_t Seed,
                   bool Smoke, std::vector<Entry> &Entries) {
  struct ShardCase {
    const char *MixName;
    unsigned CrossPerMille;
  };
  for (unsigned Shards : {1u, 4u, 8u}) {
    for (const ShardCase &C :
         {ShardCase{"local", 0}, ShardCase{"xshard", 500}}) {
      // Steering a single shard is a no-op; skip the redundant axis.
      for (unsigned Steer = 0; Steer < (Shards > 1 ? 2u : 1u); ++Steer) {
        std::vector<double> NsPerOp, Ratio;
        for (unsigned R = 0; R < Repeats; ++R) {
          ShardBenchConfig Cfg;
          Cfg.Threads = Threads;
          Cfg.ShardCount = Shards;
          Cfg.Groups = Smoke ? 16 : 32;
          Cfg.CellsPerGroup = Smoke ? 16 : 32;
          Cfg.OpsPerThread = Smoke ? 2000 : 40000;
          Cfg.WarmupOpsPerThread = Smoke ? 1000 : 8000;
          Cfg.CrossPerMille = C.CrossPerMille;
          Cfg.Steering = Steer != 0;
          Cfg.Seed = Seed + R;
          ShardBenchResult Res = runShardBench(Cfg);
          if (!Res.Ok) {
            std::fprintf(stderr,
                         "bench_runner: shard %s s%u failed verification "
                         "(%s) — refusing to record a perf number\n",
                         C.MixName, Shards, Res.Error.c_str());
            std::exit(2);
          }
          NsPerOp.push_back(Res.nsPerOp());
          Ratio.push_back(Res.crossShardRatio());
        }
        const std::string Name = std::string(C.MixName) + "_s" +
                                 std::to_string(Shards) +
                                 (Steer ? "_steer" : "");
        Entry E;
        E.Suite = "shard";
        E.Name = Name;
        E.Threads = Threads;
        E.Unit = "ns/op";
        E.Agg = aggregate(std::move(NsPerOp));
        Entries.push_back(std::move(E));
        Entry X;
        X.Suite = "shard";
        X.Name = Name + "_xratio";
        X.Threads = Threads;
        X.Unit = "ratio";
        X.Agg = aggregate(std::move(Ratio));
        Entries.push_back(std::move(X));
      }
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Cli(
      "bench_runner",
      "runs the benchmark battery and writes one BENCH_<n>.json snapshot",
      {
          {"smoke", "", "CI preset: small repeats and inputs"},
          {"out-dir", "DIR",
           "where snapshots live and the new one is written (default .)"},
          {"micro-bin", "PATH",
           "micro_stm_ops binary (default <exe>/../../bench/micro_stm_ops)"},
          {"suite", "S",
           "all, micro, engines, stamp, synquake, oltp or shard "
           "(default all)"},
          {"engine", "E",
           "restrict the engines suite to one policy engine: orec-eager, "
           "tlrw or 2pl-undo (default: all three)"},
          {"threads", "T", "fixed thread count for stamp/synquake/micro "
                           "contended ops (default 8)"},
          {"repeats", "N", "repeats per metric (default 5; 2 with --smoke)"},
          {"seed", "S", "workload input seed (default 1)"},
      });
  Options Opts = Cli.parseOrExit(Argc, Argv);

  const bool Smoke = Opts.getBool("smoke", false);
  const std::string Suite = Opts.getString("suite", "all");
  const unsigned Threads =
      static_cast<unsigned>(Opts.getInt("threads", 8));
  const unsigned Repeats = static_cast<unsigned>(
      Opts.getInt("repeats", Smoke ? 2 : 5));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 1));
  const fs::path OutDir = Opts.getString("out-dir", ".");

  std::string MicroBin = Opts.getString("micro-bin", "");
  if (MicroBin.empty()) {
    fs::path Exe = fs::path(Argv[0]);
    MicroBin = (Exe.parent_path().parent_path() / "bench" /
                "micro_stm_ops")
                   .string();
  }

  std::vector<Entry> Entries;
  const bool All = Suite == "all";
  if (All || Suite == "micro") {
    std::string Error;
    if (!runMicroSuite(MicroBin, OutDir / ".bench_tmp",
                       "(Tl2ReadOnlyTxn|Tl2WriteTxn|Tl2TxnBySize/64|"
                       "LibTmObjectTxn|Tl2Disjoint.*/threads:(1|8)$|"
                       "Tl2RwAccessObserver)",
                       "micro", /*Repetitions=*/Repeats,
                       /*MinTime=*/Smoke ? 0.02 : 0.1, Entries, Error)) {
      std::fprintf(stderr, "bench_runner: %s\n", Error.c_str());
      return 2;
    }
  }
  if (All || Suite == "engines") {
    // One regex alternative per engine family prefix; --engine narrows
    // the axis to a single policy so a dev loop can re-measure just the
    // engine being touched.
    std::string Family = "(OrecEager|Tlrw|TwoPl)";
    const std::string Engine = Opts.getString("engine", "");
    if (Engine == "orec-eager")
      Family = "OrecEager";
    else if (Engine == "tlrw")
      Family = "Tlrw";
    else if (Engine == "2pl-undo")
      Family = "TwoPl";
    else if (!Engine.empty()) {
      std::fprintf(stderr,
                   "bench_runner: unknown --engine=%s (expected "
                   "orec-eager, tlrw or 2pl-undo)\n",
                   Engine.c_str());
      return 2;
    }
    std::string Error;
    if (!runMicroSuite(MicroBin, OutDir / ".bench_tmp",
                       "BM_" + Family +
                           "(ReadOnlyTxn|WriteTxn|DisjointWriteTxn)",
                       "engines", /*Repetitions=*/Repeats,
                       /*MinTime=*/Smoke ? 0.02 : 0.1, Entries, Error)) {
      std::fprintf(stderr, "bench_runner: %s\n", Error.c_str());
      return 2;
    }
  }
  if (All || Suite == "stamp")
    runStampSuite(Threads, Repeats, Seed, Smoke, Entries);
  if (All || Suite == "synquake")
    runSynQuakeSuite(Threads, Repeats, Seed, Smoke, Entries);
  if (All || Suite == "oltp")
    runOltpSuite(Threads, Seed, Smoke, Entries);
  if (All || Suite == "shard")
    runShardSuite(Threads, Repeats, Seed, Smoke, Entries);

  if (Entries.empty()) {
    std::fprintf(stderr, "bench_runner: unknown --suite=%s\n",
                 Suite.c_str());
    return 2;
  }

  const unsigned Snapshot = highestSnapshot(OutDir) + 1;
  JsonWriter W;
  W.beginObject();
  W.key("schema").value("gstm.bench.v1");
  W.key("snapshot").value(uint64_t{Snapshot});
  W.key("mode").value(Smoke ? "smoke" : "full");
  W.key("threads").value(uint64_t{Threads});
  W.key("repeats").value(uint64_t{Repeats});
  W.key("entries").beginArray();
  for (const Entry &E : Entries) {
    W.beginObject();
    W.key("suite").value(E.Suite);
    W.key("name").value(E.Name);
    W.key("threads").value(uint64_t{E.Threads});
    W.key("unit").value(E.Unit);
    W.key("repeats").value(static_cast<uint64_t>(E.Agg.Repeats));
    W.key("samples").value(static_cast<uint64_t>(E.Agg.Samples));
    W.key("median").value(E.Agg.Median);
    // Tail fields are null below the sample floor: a p99 over a handful
    // of repeats would just republish the max.
    if (E.Agg.HasTail) {
      W.key("p99").value(E.Agg.P99);
      W.key("p999").value(E.Agg.P999);
    } else {
      W.key("p99").null();
      W.key("p999").null();
    }
    W.key("min").value(E.Agg.Min);
    W.key("max").value(E.Agg.Max);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  const fs::path OutFile =
      OutDir / ("BENCH_" + std::to_string(Snapshot) + ".json");
  std::ofstream Out(OutFile);
  if (!Out) {
    std::fprintf(stderr, "bench_runner: cannot write %s\n",
                 OutFile.string().c_str());
    return 2;
  }
  Out << W.str() << "\n";
  Out.close();

  std::printf("%-10s %-38s %8s %12s %12s\n", "suite", "name", "threads",
              "median", "p99");
  for (const Entry &E : Entries) {
    if (E.Agg.HasTail)
      std::printf("%-10s %-38s %8u %12.4g %12.4g  %s\n", E.Suite.c_str(),
                  E.Name.c_str(), E.Threads, E.Agg.Median, E.Agg.P99,
                  E.Unit.c_str());
    else
      std::printf("%-10s %-38s %8u %12.4g %12s  %s\n", E.Suite.c_str(),
                  E.Name.c_str(), E.Threads, E.Agg.Median, "-",
                  E.Unit.c_str());
  }
  std::printf("bench_runner: wrote %s (%zu entries)\n",
              OutFile.string().c_str(), Entries.size());
  return 0;
}
