//===- tools/bench_regress.cpp - Perf trajectory regression gate ----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Compares the two newest BENCH_<n>.json snapshots in --dir (the perf
// trajectory written by tools/bench_runner): for every entry present in
// both, the newer median must not exceed the older by more than the noise
// tolerance. The per-entry tolerance is the base --tolerance widened by
// each snapshot's own observed spread ((p99 - median) / median), so noisy
// metrics do not produce false alarms and quiet metrics stay tight.
//
// Tail fields are nullable: low-sample suites publish p99/p999 as null
// (a nearest-rank p99 over a handful of repeats is just the max). When
// p99 is absent on either side the median gate falls back to the fixed
// base tolerance; when it is present on both sides (histogram-backed
// suites: oltp, synquake), the p99 itself is gated exactly like the
// median, so tail-latency regressions fail CI too.
//
// Exit status: 0 = no regression (trivially so with fewer than two
// snapshots — the first snapshot of a trajectory has no predecessor),
// 1 = at least one regression, 2 = usage/parse errors.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace gstm;
namespace fs = std::filesystem;

namespace {

struct Entry {
  std::string Key; // suite/name/threads
  std::string Unit;
  double Median = 0;
  /// Histogram-backed tails; absent (null in the snapshot) below the
  /// sample floor.
  std::optional<double> P99, P999;
};

struct Snapshot {
  unsigned Number = 0;
  fs::path File;
  std::vector<Entry> Entries;
};

bool loadSnapshot(Snapshot &S) {
  std::ifstream In(S.File);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::optional<JsonValue> Doc = parseJson(Buf.str());
  if (!Doc || !Doc->isObject())
    return false;
  const JsonValue *Schema = Doc->find("schema");
  if (!Schema || Schema->Str != "gstm.bench.v1")
    return false;
  const JsonValue *Rows = Doc->find("entries");
  if (!Rows || !Rows->isArray())
    return false;
  for (const JsonValue &Row : Rows->Items) {
    const JsonValue *Suite = Row.find("suite");
    const JsonValue *Name = Row.find("name");
    const JsonValue *Threads = Row.find("threads");
    const JsonValue *Unit = Row.find("unit");
    const JsonValue *Median = Row.find("median");
    if (!Suite || !Name || !Threads || !Median)
      continue;
    Entry E;
    E.Key = Suite->Str + "/" + Name->Str + "/t" +
            std::to_string(Threads->asU64());
    E.Unit = Unit ? Unit->Str : "";
    E.Median = Median->asDouble();
    // p99/p999 may be missing entirely (old snapshots) or null (below
    // the sample floor); both read back as "absent".
    const JsonValue *P99 = Row.find("p99");
    if (P99 && P99->K == JsonValue::Kind::Number)
      E.P99 = P99->asDouble();
    const JsonValue *P999 = Row.find("p999");
    if (P999 && P999->K == JsonValue::Kind::Number)
      E.P999 = P999->asDouble();
    S.Entries.push_back(std::move(E));
  }
  return true;
}

/// Relative spread of one measurement: how far its own tail sits above
/// its median. Used to widen the tolerance for inherently noisy metrics;
/// 0 (no widening — fixed tolerance) when the tail is absent.
double spreadOf(const Entry &E) {
  if (!E.P99 || E.Median <= 0)
    return 0;
  return std::max(0.0, (*E.P99 - E.Median) / E.Median);
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Cli("bench_regress",
                "gates the newest perf snapshot against its predecessor",
                {
                    {"dir", "DIR",
                     "directory holding BENCH_<n>.json (default .)"},
                    {"tolerance", "F",
                     "base relative tolerance (default 0.30 — single-core "
                     "CI medians are noisy)"},
                });
  Options Opts = Cli.parseOrExit(Argc, Argv);
  const fs::path Dir = Opts.getString("dir", ".");
  const double BaseTol =
      std::strtod(Opts.getString("tolerance", "0.30").c_str(), nullptr);

  std::vector<Snapshot> Snaps;
  std::error_code Ec;
  for (const auto &DirEntry : fs::directory_iterator(Dir, Ec)) {
    unsigned N = 0;
    int Consumed = 0;
    const std::string File = DirEntry.path().filename().string();
    // %n anchors the match: "BENCH_2.json.bak" parses but leaves a tail,
    // so only exact BENCH_<n>.json names count as snapshots.
    if (std::sscanf(File.c_str(), "BENCH_%u.json%n", &N, &Consumed) == 1 &&
        N > 0 && static_cast<size_t>(Consumed) == File.size())
      Snaps.push_back(Snapshot{N, DirEntry.path(), {}});
  }
  if (Snaps.size() < 2) {
    std::printf("bench_regress: %zu snapshot(s) in %s — nothing to "
                "compare, trivially passing\n",
                Snaps.size(), Dir.string().c_str());
    return 0;
  }
  std::sort(Snaps.begin(), Snaps.end(),
            [](const Snapshot &A, const Snapshot &B) {
              return A.Number < B.Number;
            });
  Snapshot &Old = Snaps[Snaps.size() - 2];
  Snapshot &New = Snaps[Snaps.size() - 1];
  if (!loadSnapshot(Old) || !loadSnapshot(New)) {
    std::fprintf(stderr, "bench_regress: cannot parse %s or %s\n",
                 Old.File.string().c_str(), New.File.string().c_str());
    return 2;
  }

  unsigned Regressions = 0, Compared = 0;
  for (const Entry &N : New.Entries) {
    auto It = std::find_if(
        Old.Entries.begin(), Old.Entries.end(),
        [&](const Entry &O) { return O.Key == N.Key; });
    if (It == Old.Entries.end() || It->Median <= 0)
      continue; // new metric (or degenerate baseline): nothing to gate
    ++Compared;
    const double Tol = std::max({BaseTol, spreadOf(*It), spreadOf(N)});
    auto Gate = [&](const char *Metric, double OldV, double NewV) {
      const double Rel = NewV / OldV - 1.0;
      const char *Verdict = Rel > Tol            ? "REGRESSION"
                            : Rel < -BaseTol / 2 ? "improved"
                                                 : "ok";
      if (Rel > Tol)
        ++Regressions;
      std::printf(
          "%-11s %-44s %-6s %12.4g -> %12.4g %s (%+.1f%%, tol %.0f%%)\n",
          Verdict, N.Key.c_str(), Metric, OldV, NewV, N.Unit.c_str(),
          Rel * 100, Tol * 100);
    };
    Gate("median", It->Median, N.Median);
    // Histogram-backed tails gate too — but only when both sides have
    // one, so introducing tails (or dropping below the sample floor)
    // never trips the gate by itself.
    if (It->P99 && N.P99 && *It->P99 > 0)
      Gate("p99", *It->P99, *N.P99);
  }
  std::printf("bench_regress: %s (#%u) vs %s (#%u): %u compared, "
              "%u regression(s)\n",
              New.File.filename().string().c_str(), New.Number,
              Old.File.filename().string().c_str(), Old.Number, Compared,
              Regressions);
  return Regressions ? 1 : 0;
}
