//===- tools/model_ctl.cpp - model lifecycle control ------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Command-line front end of the model lifecycle subsystem (src/model):
//
//   model_ctl save --workload=NAME --out=FILE [--store=DIR]
//       profile the workload and persist the trained TSA (binary file
//       and/or key-stamped store entry)
//   model_ctl info FILE [--json]
//       census + analyzer verdict; --json dumps the interchange document
//   model_ctl diff A B
//       structural comparison; exits 0 identical / 1 different / 2 error
//       (GNU diff convention)
//   model_ctl load FILE [--run --workload=NAME]
//       validate a container; with --run, warm-start guided measurement
//       from it — zero profiling transactions in this process
//   model_ctl list --store=DIR
//       print the store manifest
//
// Every failure path reports the typed ModelIoStatus, so a truncated or
// tampered file names its defect instead of "cannot load".
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "model/Serialize.h"
#include "model/Store.h"
#include "shard/ShardConfig.h"
#include "stamp/Registry.h"
#include "support/Options.h"

#include <cstdio>
#include <string>

using namespace gstm;

namespace {

void reportLoadFailure(const std::string &Path, const ModelLoadResult &R) {
  std::fprintf(stderr, "error: %s: %s (%s)\n", Path.c_str(),
               modelIoStatusName(R.Status), R.Detail.c_str());
}

/// Key under which `save --store` publishes: the workload/thread
/// coordinates plus a hash of the knobs that shape the trained state
/// space. The shard layout is part of that space — conflict structure
/// under 4 shards is not the structure under 1 — so the canonical shard
/// rendering is folded in and models trained under different shard
/// configurations land under distinct keys.
ModelKey keyFor(const std::string &Workload, unsigned Threads,
                SizeClass Size, const ShardConfig &Shards) {
  ModelKey Key;
  Key.Workload = Workload;
  Key.Threads = Threads;
  Key.ConfigHash = hashConfigString(std::string("grouping=sequence;") +
                                    "size=" + sizeClassName(Size) +
                                    ";preempt=5;" +
                                    shardConfigCanonical(Shards));
  return Key;
}

/// Shard coordinates from the command line; shards=1 (the unsharded
/// tier) is the default and keeps its own stable key.
ShardConfig shardConfigFor(const Options &Opts, bool &Ok) {
  ShardConfig SC;
  SC.ShardCount = static_cast<unsigned>(Opts.getInt("shards", 1));
  SC.Steering = Opts.getBool("steer", false);
  std::string HashName = Opts.getString("shard-hash", "mix");
  Ok = shardHashFromName(HashName, SC.ShardHash);
  if (!Ok)
    std::fprintf(stderr, "error: unknown shard hash '%s' (mix|fib)\n",
                 HashName.c_str());
  return SC;
}

int cmdSave(const Options &Opts) {
  std::string Workload = Opts.getString("workload", "");
  std::string Out = Opts.getString("out", "");
  std::string StoreDir = Opts.getString("store", "");
  if (Workload.empty() || (Out.empty() && StoreDir.empty())) {
    std::fputs("error: save needs --workload and --out and/or --store\n",
               stderr);
    return 2;
  }
  unsigned Threads = static_cast<unsigned>(Opts.getInt("threads", 8));
  unsigned Runs = static_cast<unsigned>(Opts.getInt("runs", 5));
  SizeClass Size = parseSizeClass(Opts.getString("size", "medium"));
  bool ShardsOk = false;
  ShardConfig Shards = shardConfigFor(Opts, ShardsOk);
  if (!ShardsOk)
    return 2;

  auto W = createStampWorkload(Workload, Size);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 Workload.c_str());
    return 2;
  }

  std::printf("profiling %s (%s input), %u runs x %u threads...\n",
              Workload.c_str(), sizeClassName(Size), Runs, Threads);
  RunnerConfig RC;
  RC.Threads = Threads;
  Tsa Model;
  for (unsigned Run = 0; Run < Runs; ++Run)
    Model.addRun(runWorkloadOnce(*W, RC, 1000 + Run, nullptr).Tuples);
  std::printf("trained: %zu states, %lu transitions\n", Model.numStates(),
              static_cast<unsigned long>(Model.numTransitions()));

  if (!Out.empty()) {
    std::string Detail;
    if (saveModel(Model, Out, &Detail) != ModelIoStatus::Ok) {
      std::fprintf(stderr, "error: %s\n", Detail.c_str());
      return 2;
    }
    std::printf("wrote %s\n", Out.c_str());
  }
  if (!StoreDir.empty()) {
    ModelStore Store(StoreDir);
    ModelKey Key = keyFor(Workload, Threads, Size, Shards);
    std::string Detail;
    if (Store.save(Key, Model, &Detail) != ModelIoStatus::Ok) {
      std::fprintf(stderr, "error: %s\n", Detail.c_str());
      return 2;
    }
    std::printf("published %s -> %s\n", Key.id().c_str(),
                Store.pathFor(Key).c_str());
  }
  return 0;
}

int cmdInfo(const Options &Opts) {
  if (Opts.positionals().size() < 2) {
    std::fputs("error: info needs a model file operand\n", stderr);
    return 2;
  }
  const std::string &Path = Opts.positionals()[1];
  ModelLoadResult R = loadModel(Path);
  if (!R.ok()) {
    reportLoadFailure(Path, R);
    return 2;
  }
  const Tsa &Model = *R.Model;
  if (Opts.getBool("json", false)) {
    std::fputs(modelToJson(Model).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  AnalyzerConfig AC;
  AC.Tfactor = Opts.getDouble("tfactor", 4.0);
  AnalyzerReport Report = analyzeModel(Model, AC);
  std::printf("file:             %s\n", Path.c_str());
  std::printf("states:           %zu\n", Model.numStates());
  std::printf("transitions:      %lu\n",
              static_cast<unsigned long>(Model.numTransitions()));
  std::printf("approx size:      %zu bytes\n", Model.approxSizeBytes());
  std::printf("guidance metric:  %.1f%% (Tfactor %.1f) -> %s\n",
              Report.GuidanceMetricPercent, AC.Tfactor,
              Report.Optimizable ? "guidable" : "not worth guiding");
  return 0;
}

int cmdDiff(const Options &Opts) {
  if (Opts.positionals().size() < 3) {
    std::fputs("error: diff needs two model file operands\n", stderr);
    return 2;
  }
  const std::string &PathA = Opts.positionals()[1];
  const std::string &PathB = Opts.positionals()[2];
  ModelLoadResult A = loadModel(PathA);
  if (!A.ok()) {
    reportLoadFailure(PathA, A);
    return 2;
  }
  ModelLoadResult B = loadModel(PathB);
  if (!B.ok()) {
    reportLoadFailure(PathB, B);
    return 2;
  }

  // The serialized form is canonical (deterministic state and edge
  // order), so byte equality of the re-encodings is model equality.
  if (serializeModel(*A.Model) == serializeModel(*B.Model)) {
    std::printf("models identical: %zu states, %lu transitions\n",
                A.Model->numStates(),
                static_cast<unsigned long>(A.Model->numTransitions()));
    return 0;
  }

  size_t Shared = 0;
  for (StateId S = 0; S < A.Model->numStates(); ++S)
    if (B.Model->lookup(A.Model->state(S)))
      ++Shared;
  std::printf("models differ\n");
  std::printf("  A: %zu states, %lu transitions\n", A.Model->numStates(),
              static_cast<unsigned long>(A.Model->numTransitions()));
  std::printf("  B: %zu states, %lu transitions\n", B.Model->numStates(),
              static_cast<unsigned long>(B.Model->numTransitions()));
  std::printf("  shared states: %zu\n", Shared);
  return 1;
}

int cmdLoad(const Options &Opts) {
  if (Opts.positionals().size() < 2) {
    std::fputs("error: load needs a model file operand\n", stderr);
    return 2;
  }
  const std::string &Path = Opts.positionals()[1];
  ModelLoadResult R = loadModel(Path);
  if (!R.ok()) {
    reportLoadFailure(Path, R);
    return 1;
  }
  std::printf("ok: %zu states, %lu transitions\n", R.Model->numStates(),
              static_cast<unsigned long>(R.Model->numTransitions()));
  if (!Opts.getBool("run", false))
    return 0;

  std::string Workload = Opts.getString("workload", "");
  auto W = createStampWorkload(
      Workload, parseSizeClass(Opts.getString("size", "medium")));
  if (!W) {
    std::fprintf(stderr, "error: --run needs a valid --workload\n");
    return 2;
  }
  ExperimentConfig EC;
  EC.Threads = static_cast<unsigned>(Opts.getInt("threads", 8));
  EC.MeasureRuns = static_cast<unsigned>(Opts.getInt("runs", 3));
  EC.ForceGuided = true;
  ExperimentResult Res =
      runExperimentWithModel(*W, EC, std::move(*R.Model));
  std::printf("warm-start run: %u profiling runs, %lu profiling commits "
              "(must be 0)\n",
              Res.ProfileRunsExecuted,
              static_cast<unsigned long>(Res.ProfileCommits));
  std::printf("guided: %lu commits, %lu known-state resolutions, "
              "%lu holds\n",
              static_cast<unsigned long>(Res.Guided.TotalCommits),
              static_cast<unsigned long>(Res.Guided.Guide.KnownStates),
              static_cast<unsigned long>(Res.Guided.Guide.Holds));
  return Res.Default.AllVerified && Res.Guided.AllVerified ? 0 : 1;
}

int cmdList(const Options &Opts) {
  std::string StoreDir = Opts.getString("store", "");
  if (StoreDir.empty()) {
    std::fputs("error: list needs --store=DIR\n", stderr);
    return 2;
  }
  ModelStore Store(StoreDir);
  std::vector<StoreEntry> Entries = Store.list();
  if (Entries.empty()) {
    std::printf("store %s is empty\n", StoreDir.c_str());
    return 0;
  }
  for (const StoreEntry &E : Entries)
    std::printf("%-40s workload=%s threads=%u states=%lu transitions=%lu\n",
                E.File.c_str(), E.Key.Workload.c_str(), E.Key.Threads,
                static_cast<unsigned long>(E.NumStates),
                static_cast<unsigned long>(E.NumTransitions));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Cli(
      "model_ctl", "train, persist, inspect and compare TSA models",
      {
          {"workload", "NAME", "STAMP workload to profile (save/load)"},
          {"threads", "N", "worker threads (default 8)"},
          {"runs", "N", "profiling or measurement runs (default 5/3)"},
          {"size", "CLASS", "input size: small|medium|large"},
          {"out", "FILE", "write the trained model here (save)"},
          {"store", "DIR", "model store directory (save/list)"},
          {"shards", "N", "shard contexts the model is keyed for "
                          "(default 1 = unsharded)"},
          {"shard-hash", "KIND", "address->shard hash: mix|fib"},
          {"steer", "", "key the model for steered placement"},
          {"tfactor", "X", "analyzer threshold factor (info)"},
          {"json", "", "info: dump the JSON interchange document"},
          {"run", "", "load: warm-start a guided measurement"},
      },
      "<save|info|diff|load|list> [FILE...]");
  Options Opts = Cli.parseOrExit(Argc, Argv);

  if (Opts.positionals().empty()) {
    std::fputs(Cli.usage().c_str(), stderr);
    return 2;
  }
  const std::string &Cmd = Opts.positionals()[0];
  if (Cmd == "save")
    return cmdSave(Opts);
  if (Cmd == "info")
    return cmdInfo(Opts);
  if (Cmd == "diff")
    return cmdDiff(Opts);
  if (Cmd == "load")
    return cmdLoad(Opts);
  if (Cmd == "list")
    return cmdList(Opts);
  std::fprintf(stderr, "error: unknown command '%s'\n%s", Cmd.c_str(),
               Cli.usage().c_str());
  return 2;
}
