//===- tools/model_inspect.cpp - TSA model file inspector -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Inspects serialized thread-state-automaton models (the analogue of the
// paper artifact's `state_data` files):
//
//   model_inspect --model=FILE [--tfactor=4] [--top=10]
//   model_inspect --model=FILE --diff=OTHER
//   model_inspect --stats=FILE
//
// Prints the state census, the analyzer verdict, the hottest states in
// the paper's notation with their high-probability destinations, and —
// with --diff — the state overlap between two models (useful for judging
// how well training inputs cover testing behaviour).
//
// --stats reads a telemetry JSON document (a runResultJson /
// experimentJson export, or a bare telemetry object), prints the abort
// breakdown by cause and site plus the retries-before-commit histogram,
// and re-verifies the breakdown invariants: each breakdown must sum
// *exactly* to the aggregate commit/abort counters. Exits non-zero on a
// mismatch, so it doubles as a consistency checker in scripts.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/JsonExport.h"
#include "core/Tsa.h"
#include "model/Serialize.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

using namespace gstm;

static int inspect(const Tsa &Model, double Tfactor, unsigned Top) {
  AnalyzerConfig AC;
  AC.Tfactor = Tfactor;
  AnalyzerReport Report = analyzeModel(Model, AC);

  std::printf("states:           %zu\n", Model.numStates());
  std::printf("transitions:      %lu\n", Model.numTransitions());
  std::printf("approx size:      %zu bytes\n", Model.approxSizeBytes());
  std::printf("guidance metric:  %.1f%% (Tfactor %.1f) -> %s\n",
              Report.GuidanceMetricPercent, Tfactor,
              Report.Optimizable ? "guidable" : "not worth guiding");
  std::printf("mean out-degree:  %.2f (guided: %.2f)\n\n",
              Report.MeanOutDegree, Report.MeanGuidedOutDegree);

  std::vector<std::pair<uint64_t, StateId>> ByTraffic;
  for (StateId S = 0; S < Model.numStates(); ++S)
    ByTraffic.push_back({Model.outFrequency(S), S});
  std::sort(ByTraffic.rbegin(), ByTraffic.rend());

  std::printf("top %u states by outbound traffic:\n", Top);
  for (unsigned I = 0; I < Top && I < ByTraffic.size(); ++I) {
    StateId S = ByTraffic[I].second;
    std::printf("  %-28s seen %lu\n", Model.state(S).format().c_str(),
                ByTraffic[I].first);
    for (const TsaEdge &E : highProbabilitySuccessors(Model, S, Tfactor))
      std::printf("      -%.3f-> %s\n", E.Probability,
                  Model.state(E.Dest).format().c_str());
  }
  return 0;
}

static int diff(const Tsa &A, const Tsa &B) {
  size_t Shared = 0;
  for (StateId S = 0; S < A.numStates(); ++S)
    if (B.lookup(A.state(S)))
      ++Shared;
  std::printf("model A: %zu states\n", A.numStates());
  std::printf("model B: %zu states\n", B.numStates());
  std::printf("shared:  %zu (%.1f%% of A, %.1f%% of B)\n", Shared,
              A.numStates() ? 100.0 * Shared / A.numStates() : 0.0,
              B.numStates() ? 100.0 * Shared / B.numStates() : 0.0);
  std::printf("\nA guided execution driven by model A would treat %.1f%% "
              "of B's states as unknown\n(unknown states pass threads "
              "through unguided).\n",
              B.numStates()
                  ? 100.0 * (B.numStates() - Shared) / B.numStates()
                  : 0.0);
  return 0;
}

/// Finds the telemetry object in \p Doc: the document itself (bare
/// telemetry), its "telemetry" member (run export), or nullptr.
static const JsonValue *findTelemetry(const JsonValue &Doc) {
  if (Doc.find("commits") && Doc.find("abort_causes"))
    return &Doc;
  if (const JsonValue *T = Doc.find("telemetry"))
    return T;
  return nullptr;
}

static bool printAndVerifySnapshot(const char *Label,
                                   const JsonValue &Telemetry) {
  std::optional<StatsSnapshot> Snap = snapshotFromJson(Telemetry);
  if (!Snap) {
    std::fprintf(stderr, "error: '%s' is not a telemetry object\n", Label);
    return false;
  }

  std::printf("[%s]\n", Label);
  std::printf("  commits:   %lu (%lu read-only)\n", Snap->Commits,
              Snap->ReadOnlyCommits);
  std::printf("  aborts:    %lu\n", Snap->Aborts);
  std::printf("  by cause:\n");
  for (size_t C = 0; C < NumAbortCauses; ++C)
    std::printf("    %-18s %lu\n",
                abortCauseName(static_cast<AbortCauseKind>(C)),
                Snap->AbortsByCause[C]);
  std::printf("  by site:\n");
  for (size_t S = 0; S < NumAbortSites; ++S)
    std::printf("    %-18s %lu\n", abortSiteName(static_cast<AbortSite>(S)),
                Snap->AbortsBySite[S]);
  std::printf("  retries-before-commit:");
  for (size_t B = 0; B < RetryHistogramBuckets; ++B)
    std::printf(" %lu", Snap->RetryHistogram[B]);
  std::printf("\n");
  if (Snap->Attempts)
    std::printf("  attempts:  %lu (mean latency %.0f ns)\n", Snap->Attempts,
                Snap->meanAttemptNanos());
  if (Snap->CrossShardCommits || Snap->CrossShardAborts ||
      Snap->PrepareRetries)
    std::printf("  sharding:  %lu cross-shard commits, %lu cross-shard "
                "aborts, %lu prepare retries\n",
                Snap->CrossShardCommits, Snap->CrossShardAborts,
                Snap->PrepareRetries);

  bool Ok = true;
  if (Snap->causeTotal() != Snap->Aborts) {
    std::fprintf(stderr,
                 "MISMATCH: abort causes sum to %lu, aborts counter is "
                 "%lu\n",
                 Snap->causeTotal(), Snap->Aborts);
    Ok = false;
  }
  if (Snap->siteTotal() != Snap->Aborts) {
    std::fprintf(stderr,
                 "MISMATCH: abort sites sum to %lu, aborts counter is %lu\n",
                 Snap->siteTotal(), Snap->Aborts);
    Ok = false;
  }
  if (Snap->retryTotal() != Snap->Commits) {
    std::fprintf(stderr,
                 "MISMATCH: retry histogram sums to %lu, commits counter "
                 "is %lu\n",
                 Snap->retryTotal(), Snap->Commits);
    Ok = false;
  }
  if (Snap->ReadOnlyCommits > Snap->Commits) {
    std::fprintf(stderr,
                 "MISMATCH: %lu read-only commits exceed %lu commits\n",
                 Snap->ReadOnlyCommits, Snap->Commits);
    Ok = false;
  }
  if (Snap->CrossShardCommits > Snap->Commits) {
    std::fprintf(stderr,
                 "MISMATCH: %lu cross-shard commits exceed %lu commits\n",
                 Snap->CrossShardCommits, Snap->Commits);
    Ok = false;
  }
  if (Snap->CrossShardAborts > Snap->Aborts) {
    std::fprintf(stderr,
                 "MISMATCH: %lu cross-shard aborts exceed %lu aborts\n",
                 Snap->CrossShardAborts, Snap->Aborts);
    Ok = false;
  }
  std::printf("  invariants: %s\n\n", Ok ? "ok" : "VIOLATED");
  return Ok;
}

static int inspectStats(const std::string &Path) {
  std::optional<std::string> Text = readTextFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return 1;
  }
  std::optional<JsonValue> Doc = parseJson(*Text);
  if (!Doc) {
    std::fprintf(stderr, "error: '%s' is not valid JSON\n", Path.c_str());
    return 1;
  }

  bool Ok = true;
  bool Found = false;
  if (const JsonValue *T = findTelemetry(*Doc)) {
    Found = true;
    Ok = printAndVerifySnapshot("telemetry", *T) && Ok;
    // Per-thread shards of a run export must themselves be consistent
    // and sum back to the aggregate.
    if (const JsonValue *PerThread = T->find("per_thread")) {
      StatsSnapshot Sum;
      for (const JsonValue &Shard : PerThread->Items)
        if (std::optional<StatsSnapshot> S = snapshotFromJson(Shard))
          Sum.merge(*S);
      std::optional<StatsSnapshot> Agg = snapshotFromJson(*T);
      if (Agg && (Sum.Commits != Agg->Commits || Sum.Aborts != Agg->Aborts)) {
        std::fprintf(stderr,
                     "MISMATCH: per-thread shards sum to %lu/%lu "
                     "commits/aborts, aggregate says %lu/%lu\n",
                     Sum.Commits, Sum.Aborts, Agg->Commits, Agg->Aborts);
        Ok = false;
      }
    }
  }
  // Experiment exports carry one telemetry object per side.
  for (const char *Side : {"default", "guided"})
    if (const JsonValue *S = Doc->find(Side))
      if (const JsonValue *T = S->find("telemetry")) {
        Found = true;
        Ok = printAndVerifySnapshot(Side, *T) && Ok;
      }

  if (!Found) {
    std::fprintf(stderr, "error: no telemetry object in '%s'\n",
                 Path.c_str());
    return 1;
  }
  return Ok ? 0 : 1;
}

int main(int Argc, char **Argv) {
  OptionSet Cli(
      "model_inspect",
      "inspect serialized TSA models and telemetry JSON exports",
      {
          {"model", "FILE", "serialized TSA model to inspect"},
          {"diff", "OTHER", "second model: report the state overlap"},
          {"tfactor", "X", "analyzer threshold factor (default 4.0)"},
          {"top", "N", "hottest states to print (default 10)"},
          {"stats", "FILE",
           "telemetry JSON: print breakdowns, verify invariants"},
      });
  Options Opts = Cli.parseOrExit(Argc, Argv);

  std::string StatsPath = Opts.getString("stats", "");
  if (!StatsPath.empty())
    return inspectStats(StatsPath);

  std::string Path = Opts.getString("model", "");
  if (Path.empty()) {
    std::fputs(Cli.usage().c_str(), stderr);
    return 1;
  }
  ModelLoadResult Model = loadModel(Path);
  if (!Model.ok()) {
    std::fprintf(stderr, "error: cannot load model '%s': %s (%s)\n",
                 Path.c_str(), modelIoStatusName(Model.Status),
                 Model.Detail.c_str());
    return 1;
  }

  std::string Other = Opts.getString("diff", "");
  if (!Other.empty()) {
    ModelLoadResult OtherModel = loadModel(Other);
    if (!OtherModel.ok()) {
      std::fprintf(stderr, "error: cannot load model '%s': %s (%s)\n",
                   Other.c_str(), modelIoStatusName(OtherModel.Status),
                   OtherModel.Detail.c_str());
      return 1;
    }
    return diff(*Model.Model, *OtherModel.Model);
  }
  return inspect(*Model.Model, Opts.getDouble("tfactor", 4.0),
                 static_cast<unsigned>(Opts.getInt("top", 10)));
}
