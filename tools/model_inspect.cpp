//===- tools/model_inspect.cpp - TSA model file inspector -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Inspects serialized thread-state-automaton models (the analogue of the
// paper artifact's `state_data` files):
//
//   model_inspect --model=FILE [--tfactor=4] [--top=10]
//   model_inspect --model=FILE --diff=OTHER
//
// Prints the state census, the analyzer verdict, the hottest states in
// the paper's notation with their high-probability destinations, and —
// with --diff — the state overlap between two models (useful for judging
// how well training inputs cover testing behaviour).
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Tsa.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

using namespace gstm;

static int inspect(const Tsa &Model, double Tfactor, unsigned Top) {
  AnalyzerConfig AC;
  AC.Tfactor = Tfactor;
  AnalyzerReport Report = analyzeModel(Model, AC);

  std::printf("states:           %zu\n", Model.numStates());
  std::printf("transitions:      %lu\n", Model.numTransitions());
  std::printf("approx size:      %zu bytes\n", Model.approxSizeBytes());
  std::printf("guidance metric:  %.1f%% (Tfactor %.1f) -> %s\n",
              Report.GuidanceMetricPercent, Tfactor,
              Report.Optimizable ? "guidable" : "not worth guiding");
  std::printf("mean out-degree:  %.2f (guided: %.2f)\n\n",
              Report.MeanOutDegree, Report.MeanGuidedOutDegree);

  std::vector<std::pair<uint64_t, StateId>> ByTraffic;
  for (StateId S = 0; S < Model.numStates(); ++S)
    ByTraffic.push_back({Model.outFrequency(S), S});
  std::sort(ByTraffic.rbegin(), ByTraffic.rend());

  std::printf("top %u states by outbound traffic:\n", Top);
  for (unsigned I = 0; I < Top && I < ByTraffic.size(); ++I) {
    StateId S = ByTraffic[I].second;
    std::printf("  %-28s seen %lu\n", Model.state(S).format().c_str(),
                ByTraffic[I].first);
    for (const TsaEdge &E : highProbabilitySuccessors(Model, S, Tfactor))
      std::printf("      -%.3f-> %s\n", E.Probability,
                  Model.state(E.Dest).format().c_str());
  }
  return 0;
}

static int diff(const Tsa &A, const Tsa &B) {
  size_t Shared = 0;
  for (StateId S = 0; S < A.numStates(); ++S)
    if (B.lookup(A.state(S)))
      ++Shared;
  std::printf("model A: %zu states\n", A.numStates());
  std::printf("model B: %zu states\n", B.numStates());
  std::printf("shared:  %zu (%.1f%% of A, %.1f%% of B)\n", Shared,
              A.numStates() ? 100.0 * Shared / A.numStates() : 0.0,
              B.numStates() ? 100.0 * Shared / B.numStates() : 0.0);
  std::printf("\nA guided execution driven by model A would treat %.1f%% "
              "of B's states as unknown\n(unknown states pass threads "
              "through unguided).\n",
              B.numStates()
                  ? 100.0 * (B.numStates() - Shared) / B.numStates()
                  : 0.0);
  return 0;
}

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  std::string Path = Opts.getString("model", "");
  if (Path.empty()) {
    std::fprintf(stderr,
                 "usage: model_inspect --model=FILE [--tfactor=4] "
                 "[--top=10] [--diff=OTHER]\n");
    return 1;
  }
  auto Model = Tsa::load(Path);
  if (!Model) {
    std::fprintf(stderr, "error: cannot load model '%s'\n", Path.c_str());
    return 1;
  }

  std::string Other = Opts.getString("diff", "");
  if (!Other.empty()) {
    auto OtherModel = Tsa::load(Other);
    if (!OtherModel) {
      std::fprintf(stderr, "error: cannot load model '%s'\n",
                   Other.c_str());
      return 1;
    }
    return diff(*Model, *OtherModel);
  }
  return inspect(*Model, Opts.getDouble("tfactor", 4.0),
                 static_cast<unsigned>(Opts.getInt("top", 10)));
}
