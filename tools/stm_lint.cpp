//===- tools/stm_lint.cpp - Transaction-safety static analyzer ------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Static lint of transaction bodies and memory-ordering discipline
// (src/lint/, DESIGN.md §4e):
//
//   stm_lint [--root=DIR] [--json] [paths...]   # lint sources (default:
//                                               # src tests tools bench
//                                               # examples under --root)
//   stm_lint --expect [paths...]                # fixture self-check:
//                                               # expect-diag annotations
//                                               # must match exactly
//   stm_lint --baseline=FILE [paths...]         # waive known findings;
//                                               # stale entries reported
//   stm_lint --baseline=FILE --write-baseline   # record current findings
//   stm_lint --sarif-dir=DIR [paths...]         # also write DIR/stm_lint
//                                               # .sarif (SARIF 2.1.0)
//   stm_lint --rules                            # print the rule table
//
// Exit status: 0 clean / all expectations matched, 1 diagnostics found or
// expectations mismatched, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "support/Options.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace gstm;
using namespace gstm::lint;

static int printRules() {
  std::printf("%-4s %s\n", "id", "rule");
  const struct {
    Rule R;
    const char *Summary;
  } Table[] = {
      {Rule::NakedAccess,
       "naked shared access (atomic/TVar/TObj bypassing the txn handle)"},
      {Rule::Irrevocable,
       "irrevocable operation (heap outside TmPool, I/O, sleep, mutex; "
       "undo-log engine profiles also flag throw-with-operand)"},
      {Rule::NonDeterminism,
       "non-determinism source (rand, random_device, clock reads)"},
      {Rule::HandleEscape,
       "transaction handle (or a reference alias of it) stored or "
       "captured beyond the body"},
      {Rule::UnsafeCallee,
       "call into a function that transitively trips R1-R4"},
      {Rule::UpgradeHazard,
       "write after validated read of the same location under a "
       "read-lock engine (tlrw): upgrade deadlock/abort hazard"},
      {Rule::BadSuppression,
       "stm-lint: allow(...) suppression without a rationale"},
      {Rule::TornPublish,
       "relaxed store to a publish(NAME) location with no dominating "
       "release fence"},
      {Rule::AcquireRelease,
       "pair(NAME) location loaded without acquire or stored without "
       "release (and no dominating release fence)"},
      {Rule::FenceContract,
       "fence(seq_cst) before(CALLEE) contract violated: anchor call "
       "not dominated by a seq_cst fence, or contract binds no call"},
  };
  for (const auto &E : Table)
    std::printf("%-4s %s\n       hint: %s\n", ruleId(E.R), E.Summary,
                ruleHint(E.R));
  return 0;
}

static bool readFileTo(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

static bool writeFileFrom(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Text;
  return Out.good();
}

int main(int Argc, char **Argv) {
  OptionSet Cli(
      "stm_lint",
      "transaction-safety static analyzer for STM transaction bodies",
      {
          {"root", "DIR", "resolve relative paths against DIR (default .)"},
          {"json", "", "emit the report as JSON instead of text"},
          {"expect", "",
           "fixture mode: match expect-diag(<rule>) annotations"},
          {"baseline", "FILE",
           "waive findings recorded in FILE (rule/file/message match)"},
          {"write-baseline", "",
           "rewrite --baseline FILE from the current findings and exit 0"},
          {"sarif-dir", "DIR", "also write DIR/stm_lint.sarif"},
          {"quiet", "", "print nothing on a clean run"},
          {"rules", "", "print the rule table and exit"},
      },
      "[paths...]");
  Options Opts = Cli.parseOrExit(Argc, Argv);

  if (Opts.getBool("rules", false))
    return printRules();

  const std::string Root = Opts.getString("root", ".");
  std::vector<std::string> Paths = Opts.positionals();
  if (Paths.empty())
    Paths = {"src", "tests", "tools", "bench", "examples"};

  std::vector<SourceFile> Files;
  std::string Error;
  if (!collectSources(Root, Paths, Files, Error)) {
    std::fprintf(stderr, "stm_lint: %s\n", Error.c_str());
    return 2;
  }
  if (Files.empty()) {
    std::fprintf(stderr, "stm_lint: no lintable sources found\n");
    return 2;
  }

  if (Opts.getBool("expect", false)) {
    ExpectOutcome E = checkExpectations(Files);
    for (const std::string &F : E.Failures)
      std::printf("FAIL: %s\n", F.c_str());
    std::printf("stm_lint --expect: %zu file(s), %zu expectation(s), "
                "%zu matched, %zu failure(s)\n",
                Files.size(), E.Expected, E.Matched, E.Failures.size());
    return E.ok() ? 0 : 1;
  }

  LintResult R = lintSources(Files);

  const std::string BaselinePath = Opts.getString("baseline", "");
  if (Opts.getBool("write-baseline", false)) {
    if (BaselinePath.empty()) {
      std::fprintf(stderr,
                   "stm_lint: --write-baseline requires --baseline=FILE\n");
      return 2;
    }
    if (!writeFileFrom(BaselinePath, baselineText(R))) {
      std::fprintf(stderr, "stm_lint: cannot write baseline '%s'\n",
                   BaselinePath.c_str());
      return 2;
    }
    std::printf("stm_lint: wrote %zu baseline entr%s to %s\n",
                R.Diags.size(), R.Diags.size() == 1 ? "y" : "ies",
                BaselinePath.c_str());
    return 0;
  }
  if (!BaselinePath.empty()) {
    std::string Text;
    if (!readFileTo(BaselinePath, Text)) {
      std::fprintf(stderr, "stm_lint: cannot read baseline '%s'\n",
                   BaselinePath.c_str());
      return 2;
    }
    std::vector<BaselineEntry> Stale;
    applyBaseline(R, parseBaseline(Text), Stale);
    for (const BaselineEntry &E : Stale)
      std::fprintf(stderr,
                   "stm_lint: stale baseline entry (fixed? remove it): "
                   "%s\t%s\t%s\n",
                   E.RuleId.c_str(), E.File.c_str(), E.Message.c_str());
  }

  const std::string SarifDir = Opts.getString("sarif-dir", "");
  if (!SarifDir.empty()) {
    const std::string SarifPath = SarifDir + "/stm_lint.sarif";
    if (!writeFileFrom(SarifPath, toSarif(R))) {
      std::fprintf(stderr, "stm_lint: cannot write SARIF '%s'\n",
                   SarifPath.c_str());
      return 2;
    }
  }

  if (Opts.getBool("json", false))
    std::printf("%s\n", toJson(R).c_str());
  else if (!R.clean() || !Opts.getBool("quiet", false))
    std::fputs(toText(R).c_str(), stdout);
  return R.clean() ? 0 : 1;
}
