//===- tools/stm_lint.cpp - Transaction-safety static analyzer ------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Static lint of transaction bodies (src/lint/, DESIGN.md §4e):
//
//   stm_lint [--root=DIR] [--json] [paths...]   # lint sources (default:
//                                               # src tests tools bench
//                                               # examples under --root)
//   stm_lint --expect [paths...]                # fixture self-check:
//                                               # expect-diag annotations
//                                               # must match exactly
//   stm_lint --rules                            # print the rule table
//
// Exit status: 0 clean / all expectations matched, 1 diagnostics found or
// expectations mismatched, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "support/Options.h"

#include <cstdio>

using namespace gstm;
using namespace gstm::lint;

static int printRules() {
  std::printf("%-4s %s\n", "id", "rule");
  const struct {
    Rule R;
    const char *Summary;
  } Table[] = {
      {Rule::NakedAccess,
       "naked shared access (atomic/TVar/TObj bypassing the txn handle)"},
      {Rule::Irrevocable,
       "irrevocable operation (heap outside TmPool, I/O, sleep, mutex)"},
      {Rule::NonDeterminism,
       "non-determinism source (rand, random_device, clock reads)"},
      {Rule::HandleEscape,
       "transaction handle stored or captured beyond the body"},
      {Rule::UnsafeCallee,
       "call into a function that transitively trips R1-R4"},
      {Rule::BadSuppression,
       "stm-lint: allow(...) suppression without a rationale"},
  };
  for (const auto &E : Table)
    std::printf("%-4s %s\n       hint: %s\n", ruleId(E.R), E.Summary,
                ruleHint(E.R));
  return 0;
}

int main(int Argc, char **Argv) {
  OptionSet Cli(
      "stm_lint",
      "transaction-safety static analyzer for STM transaction bodies",
      {
          {"root", "DIR", "resolve relative paths against DIR (default .)"},
          {"json", "", "emit the report as JSON instead of text"},
          {"expect", "",
           "fixture mode: match expect-diag(<rule>) annotations"},
          {"quiet", "", "print nothing on a clean run"},
          {"rules", "", "print the rule table and exit"},
      },
      "[paths...]");
  Options Opts = Cli.parseOrExit(Argc, Argv);

  if (Opts.getBool("rules", false))
    return printRules();

  const std::string Root = Opts.getString("root", ".");
  std::vector<std::string> Paths = Opts.positionals();
  if (Paths.empty())
    Paths = {"src", "tests", "tools", "bench", "examples"};

  std::vector<SourceFile> Files;
  std::string Error;
  if (!collectSources(Root, Paths, Files, Error)) {
    std::fprintf(stderr, "stm_lint: %s\n", Error.c_str());
    return 2;
  }
  if (Files.empty()) {
    std::fprintf(stderr, "stm_lint: no lintable sources found\n");
    return 2;
  }

  if (Opts.getBool("expect", false)) {
    ExpectOutcome E = checkExpectations(Files);
    for (const std::string &F : E.Failures)
      std::printf("FAIL: %s\n", F.c_str());
    std::printf("stm_lint --expect: %zu file(s), %zu expectation(s), "
                "%zu matched, %zu failure(s)\n",
                Files.size(), E.Expected, E.Matched, E.Failures.size());
    return E.ok() ? 0 : 1;
  }

  LintResult R = lintSources(Files);
  if (Opts.getBool("json", false))
    std::printf("%s\n", toJson(R).c_str());
  else if (!R.clean() || !Opts.getBool("quiet", false))
    std::fputs(toText(R).c_str(), stdout);
  return R.clean() ? 0 : 1;
}
