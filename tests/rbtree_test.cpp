//===- tests/rbtree_test.cpp - transactional red-black tree tests ----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/TmRbTree.h"

#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

using namespace gstm;

namespace {
struct RbFixture : ::testing::Test {
  Tl2Stm Stm;
  TmRbTree::Pool Pool{1 << 16};
  TmRbTree Tree{Pool};
  Tl2Txn Txn{Stm, 0};
};
} // namespace

TEST_F(RbFixture, InsertFindUpdateRemove) {
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_TRUE(Tree.insert(Tx, 10, 100));
    EXPECT_TRUE(Tree.insert(Tx, 5, 50));
    EXPECT_TRUE(Tree.insert(Tx, 15, 150));
    EXPECT_FALSE(Tree.insert(Tx, 10, 999)) << "duplicate key";
  });
  EXPECT_TRUE(Tree.validateDirect());
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(Tree.find(Tx, 5).value(), 50u);
    EXPECT_FALSE(Tree.find(Tx, 6).has_value());
    EXPECT_TRUE(Tree.update(Tx, 5, 55));
    EXPECT_FALSE(Tree.update(Tx, 6, 66));
    EXPECT_EQ(Tree.find(Tx, 5).value(), 55u);
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(Tree.remove(Tx, 10).value(), 100u);
    EXPECT_FALSE(Tree.remove(Tx, 10).has_value());
    EXPECT_EQ(Tree.size(Tx), 2u);
  });
  EXPECT_TRUE(Tree.validateDirect());
}

TEST_F(RbFixture, AscendingInsertStaysBalancedEnough) {
  // Ascending insertion is the classic BST worst case; the RB invariants
  // (checked by validateDirect) bound the height.
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 0; K < 512; ++K)
      EXPECT_TRUE(Tree.insert(Tx, K, K));
  });
  EXPECT_TRUE(Tree.validateDirect());
  EXPECT_EQ(Tree.sizeDirect(), 512u);

  uint64_t Prev = 0;
  bool First = true;
  size_t Count = 0;
  Tree.forEachDirect([&](uint64_t K, uint64_t V) {
    EXPECT_EQ(K, V);
    if (!First) {
      EXPECT_GT(K, Prev);
    }
    Prev = K;
    First = false;
    ++Count;
  });
  EXPECT_EQ(Count, 512u);
}

TEST_F(RbFixture, DescendingThenDrainFully) {
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 256; K > 0; --K)
      Tree.insert(Tx, K, K);
  });
  EXPECT_TRUE(Tree.validateDirect());
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 1; K <= 256; ++K)
      EXPECT_TRUE(Tree.remove(Tx, K).has_value());
  });
  EXPECT_TRUE(Tree.validateDirect());
  EXPECT_EQ(Tree.sizeDirect(), 0u);
}

TEST_F(RbFixture, RandomOpsMatchStdMap) {
  // Property test: a long random op sequence must stay equivalent to
  // std::map and preserve every red-black invariant throughout.
  std::map<uint64_t, uint64_t> Ref;
  SplitMix64 Rng(1234);

  for (int Op = 0; Op < 4000; ++Op) {
    uint64_t Key = Rng.nextBounded(300);
    uint64_t Choice = Rng.nextBounded(4);
    Txn.run(0, [&](Tl2Txn &Tx) {
      switch (Choice) {
      case 0: {
        bool Inserted = Tree.insert(Tx, Key, Op);
        EXPECT_EQ(Inserted, Ref.find(Key) == Ref.end());
        break;
      }
      case 1: {
        auto Removed = Tree.remove(Tx, Key);
        EXPECT_EQ(Removed.has_value(), Ref.count(Key) == 1);
        break;
      }
      case 2: {
        auto Found = Tree.find(Tx, Key);
        auto It = Ref.find(Key);
        ASSERT_EQ(Found.has_value(), It != Ref.end());
        if (Found) {
          EXPECT_EQ(*Found, It->second);
        }
        break;
      }
      default: {
        bool Updated = Tree.update(Tx, Key, Op + 7);
        EXPECT_EQ(Updated, Ref.find(Key) != Ref.end());
        break;
      }
      }
    });
    // Mirror committed effects.
    if (Choice == 0)
      Ref.emplace(Key, Op);
    else if (Choice == 1)
      Ref.erase(Key);
    else if (Choice == 3) {
      auto It = Ref.find(Key);
      if (It != Ref.end())
        It->second = Op + 7;
    }
    if (Op % 256 == 0) {
      ASSERT_TRUE(Tree.validateDirect()) << "after op " << Op;
    }
  }
  ASSERT_TRUE(Tree.validateDirect());
  EXPECT_EQ(Tree.sizeDirect(), Ref.size());

  auto It = Ref.begin();
  Tree.forEachDirect([&](uint64_t K, uint64_t V) {
    ASSERT_NE(It, Ref.end());
    EXPECT_EQ(K, It->first);
    EXPECT_EQ(V, It->second);
    ++It;
  });
  EXPECT_EQ(It, Ref.end());
}

TEST_F(RbFixture, AbortedOperationLeavesTreeUntouched) {
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 0; K < 32; ++K)
      Tree.insert(Tx, K * 2, K);
  });
  int Attempts = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    Tree.insert(Tx, 101, 1);
    Tree.remove(Tx, 0);
    if (++Attempts == 1)
      Tx.retryAbort();
  });
  // After the final (committed) attempt the effects appear exactly once.
  EXPECT_TRUE(Tree.validateDirect());
  EXPECT_EQ(Tree.sizeDirect(), 32u); // +1 insert, -1 remove
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_TRUE(Tree.find(Tx, 101).has_value());
    EXPECT_FALSE(Tree.find(Tx, 0).has_value());
  });
}

TEST(RbTreeConcurrency, ParallelDisjointInsertsValidate) {
  Tl2Stm Stm;
  TmRbTree::Pool Pool(1 << 15);
  TmRbTree Tree(Pool);
  constexpr unsigned Threads = 6;
  constexpr unsigned PerThread = 80;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < PerThread; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) {
          Tree.insert(Tx, T + I * Threads, T);
        });
    });
  for (auto &W : Workers)
    W.join();

  EXPECT_TRUE(Tree.validateDirect());
  EXPECT_EQ(Tree.sizeDirect(), uint64_t{Threads} * PerThread);
}

TEST(RbTreeConcurrency, MixedInsertRemoveStaysValid) {
  Tl2Stm Stm;
  TmRbTree::Pool Pool(1 << 16);
  TmRbTree Tree(Pool);
  {
    Tl2Txn Init(Stm, 0);
    Init.run(0, [&](Tl2Txn &Tx) {
      for (uint64_t K = 0; K < 128; ++K)
        Tree.insert(Tx, K, 0);
    });
  }

  constexpr unsigned Threads = 5;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      SplitMix64 Rng(T * 31 + 1);
      for (unsigned I = 0; I < 150; ++I) {
        uint64_t Key = Rng.nextBounded(192);
        if (Rng.nextBounded(2) == 0)
          Txn.run(0, [&](Tl2Txn &Tx) { Tree.insert(Tx, Key, T); });
        else
          Txn.run(0, [&](Tl2Txn &Tx) { Tree.remove(Tx, Key); });
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_TRUE(Tree.validateDirect());
}
