# Runs clang-tidy (config: .clang-tidy at the repo root) over the lint
# subsystem and the tool drivers, using the compile database exported by
# CMAKE_EXPORT_COMPILE_COMMANDS. Invoked by the lint_clang_tidy ctest:
#
#   cmake -DSOURCE_DIR=... -DBUILD_DIR=... -P LintClangTidy.cmake
#
# Printing LINT_CLANG_TIDY_SKIPPED makes ctest report the test as
# skipped (SKIP_REGULAR_EXPRESSION), not failed, so machines without
# clang-tidy stay green.

find_program(CLANG_TIDY NAMES clang-tidy clang-tidy-20 clang-tidy-19
                              clang-tidy-18 clang-tidy-17)
if(NOT CLANG_TIDY)
  message(STATUS "clang-tidy not on PATH")
  message(STATUS "LINT_CLANG_TIDY_SKIPPED")
  return()
endif()

if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(STATUS "no compile_commands.json in ${BUILD_DIR}")
  message(STATUS "LINT_CLANG_TIDY_SKIPPED")
  return()
endif()

# With a compile database present, a clang-tidy that cannot provide the
# load-bearing check groups is a FAILURE, not a skip: silently running
# without the concurrency checks would green-light exactly the bugs this
# gate exists for.
execute_process(
  COMMAND "${CLANG_TIDY}" --list-checks
          "--checks=concurrency-*,bugprone-spuriously-wake-up-functions,bugprone-unhandled-self-assignment"
  OUTPUT_VARIABLE AVAILABLE_CHECKS
  RESULT_VARIABLE LIST_RC)
if(NOT LIST_RC EQUAL 0)
  message(FATAL_ERROR "clang-tidy --list-checks failed (exit ${LIST_RC})")
endif()
foreach(REQUIRED_CHECK
        concurrency-mt-unsafe
        bugprone-spuriously-wake-up-functions
        bugprone-unhandled-self-assignment)
  string(FIND "${AVAILABLE_CHECKS}" "${REQUIRED_CHECK}" CHECK_AT)
  if(CHECK_AT EQUAL -1)
    message(FATAL_ERROR
      "${CLANG_TIDY} does not provide ${REQUIRED_CHECK}; the lint gate "
      "cannot run without its concurrency/self-assignment checks")
  endif()
endforeach()

file(GLOB TIDY_SOURCES
  "${SOURCE_DIR}/src/lint/*.cpp"
  "${SOURCE_DIR}/src/support/*.cpp"
  "${SOURCE_DIR}/tools/*.cpp")

execute_process(
  COMMAND "${CLANG_TIDY}" --quiet -p "${BUILD_DIR}" ${TIDY_SOURCES}
  RESULT_VARIABLE TIDY_RC)
if(NOT TIDY_RC EQUAL 0)
  message(FATAL_ERROR "clang-tidy reported diagnostics (exit ${TIDY_RC})")
endif()
message(STATUS "clang-tidy clean over ${SOURCE_DIR}")
