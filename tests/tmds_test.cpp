//===- tests/tmds_test.cpp - Transactional skiplist / B-tree tests -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Covers the tmds containers (src/tmds): map semantics against a std::map
// oracle, structural invariants via the direct validators, deterministic
// skiplist tower heights, backend-genericity (the same template body runs
// on TL2, LibTm, and the three policy-templated engines — orec-eager,
// TLRW, 2PL-undo), scan semantics, and concurrent per-thread-partitioned
// mutation with exact final contents.
//
//===----------------------------------------------------------------------===//

#include "tmds/TmBTree.h"
#include "tmds/TmSkipList.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <vector>

using namespace gstm;

namespace {

//===----------------------------------------------------------------------===//
// Typed harness: every test body runs for each (structure, backend) pair.
//===----------------------------------------------------------------------===//

template <typename B> struct SkipListCase {
  using Backend = B;
  using Structure = TmSkipList<B>;
  static constexpr const char *Kind = "skiplist";
};
template <typename B> struct BTreeCase {
  using Backend = B;
  using Structure = TmBTree<B>;
  static constexpr const char *Kind = "btree";
};

/// One structure + its pool + a runtime, wired for a test.
template <typename CaseT> struct Fixture {
  using B = typename CaseT::Backend;
  using Structure = typename CaseT::Structure;
  using Stm = typename B::Stm;
  using Txn = typename B::Txn;

  explicit Fixture(uint32_t PoolCap = 1 << 14)
      : Pool(PoolCap), Ds(Pool) {}

  typename Structure::Pool Pool;
  Stm S;
  Structure Ds;
};

using SkipTl2 = SkipListCase<Tl2Backend>;
using SkipLibTm = SkipListCase<LibTmBackend>;
using BTreeTl2 = BTreeCase<Tl2Backend>;
using BTreeLibTm = BTreeCase<LibTmBackend>;
// The policy-templated engines (src/engine) ride the same TmBackend
// trait, so every structure test doubles as a backend-conformance check
// for the whole family.
using SkipOrec = SkipListCase<OrecEagerBackend>;
using SkipTlrw = SkipListCase<TlrwBackend>;
using SkipTwoPl = SkipListCase<TwoPlBackend>;
using BTreeOrec = BTreeCase<OrecEagerBackend>;
using BTreeTlrw = BTreeCase<TlrwBackend>;
using BTreeTwoPl = BTreeCase<TwoPlBackend>;

template <typename CaseT> class TmdsTest : public ::testing::Test {};
using AllCases =
    ::testing::Types<SkipTl2, SkipLibTm, SkipOrec, SkipTlrw, SkipTwoPl,
                     BTreeTl2, BTreeLibTm, BTreeOrec, BTreeTlrw,
                     BTreeTwoPl>;
TYPED_TEST_SUITE(TmdsTest, AllCases);

//===----------------------------------------------------------------------===//
// Map semantics against a std::map oracle
//===----------------------------------------------------------------------===//

TYPED_TEST(TmdsTest, MatchesMapOracleThroughMixedOps) {
  Fixture<TypeParam> F;
  typename Fixture<TypeParam>::Txn Tx(F.S, 0);
  std::map<uint64_t, uint64_t> Oracle;
  std::mt19937_64 Rng(7);

  for (int Op = 0; Op < 4000; ++Op) {
    uint64_t Key = 1 + Rng() % 512; // small keyspace => plenty of hits
    uint64_t Value = Rng();
    switch (Rng() % 4) {
    case 0: {
      bool Inserted = false;
      Tx.run(0, [&](auto &T) { Inserted = F.Ds.insert(T, Key, Value); });
      EXPECT_EQ(Inserted, Oracle.emplace(Key, Value).second);
      break;
    }
    case 1: {
      bool Updated = false;
      Tx.run(1, [&](auto &T) { Updated = F.Ds.update(T, Key, Value); });
      auto It = Oracle.find(Key);
      EXPECT_EQ(Updated, It != Oracle.end());
      if (It != Oracle.end()) {
        It->second = Value;
      }
      break;
    }
    case 2: {
      std::optional<uint64_t> Removed;
      Tx.run(2, [&](auto &T) { Removed = F.Ds.remove(T, Key); });
      auto It = Oracle.find(Key);
      if (It != Oracle.end()) {
        ASSERT_TRUE(Removed.has_value());
        EXPECT_EQ(*Removed, It->second);
        Oracle.erase(It);
      } else {
        EXPECT_FALSE(Removed.has_value());
      }
      break;
    }
    default: {
      std::optional<uint64_t> Found;
      Tx.run(3, [&](auto &T) { Found = F.Ds.find(T, Key); });
      auto It = Oracle.find(Key);
      EXPECT_EQ(Found.has_value(), It != Oracle.end());
      if (It != Oracle.end())
        EXPECT_EQ(*Found, It->second);
      break;
    }
    }
  }

  EXPECT_TRUE(F.Ds.validateDirect());
  EXPECT_EQ(F.Ds.sizeDirect(), Oracle.size());
  auto It = Oracle.begin();
  F.Ds.forEachDirect([&](uint64_t K, uint64_t V) {
    ASSERT_NE(It, Oracle.end());
    EXPECT_EQ(K, It->first);
    EXPECT_EQ(V, It->second);
    ++It;
  });
  EXPECT_EQ(It, Oracle.end());
}

TYPED_TEST(TmdsTest, ValidatorHoldsThroughGrowthAndShrink) {
  // Drive through every structural transition: grow through node splits
  // / tower links, then shrink through borrows and merges back to empty.
  Fixture<TypeParam> F(1 << 15);
  typename Fixture<TypeParam>::Txn Tx(F.S, 0);
  constexpr uint64_t N = 600; // > MinDegree^2 levels of splits

  for (uint64_t K = 1; K <= N; ++K) {
    Tx.run(0, [&](auto &T) { F.Ds.insert(T, K * 7919, K); });
    if (K % 97 == 0) {
      ASSERT_TRUE(F.Ds.validateDirect()) << "after insert " << K;
    }
  }
  EXPECT_EQ(F.Ds.sizeDirect(), N);

  for (uint64_t K = 1; K <= N; ++K) {
    std::optional<uint64_t> Removed;
    Tx.run(1, [&](auto &T) { Removed = F.Ds.remove(T, K * 7919); });
    ASSERT_TRUE(Removed.has_value()) << K;
    EXPECT_EQ(*Removed, K);
    if (K % 59 == 0) {
      ASSERT_TRUE(F.Ds.validateDirect()) << "after remove " << K;
    }
  }
  EXPECT_EQ(F.Ds.sizeDirect(), 0u);
  EXPECT_TRUE(F.Ds.validateDirect());
}

TYPED_TEST(TmdsTest, ScanVisitsAscendingRangeFromStart) {
  Fixture<TypeParam> F;
  typename Fixture<TypeParam>::Txn Tx(F.S, 0);
  // Keys 10, 20, ..., 1000 with value = key.
  for (uint64_t K = 10; K <= 1000; K += 10)
    Tx.run(0, [&](auto &T) { F.Ds.insert(T, K, K); });

  uint64_t Sum = 0;
  size_t Taken = 0;
  // From 95 (absent): first visited is 100; 5 entries 100..140.
  Tx.run(1, [&](auto &T) {
    Sum = 0;
    Taken = F.Ds.scan(T, 95, 5, Sum);
  });
  EXPECT_EQ(Taken, 5u);
  EXPECT_EQ(Sum, uint64_t{100 + 110 + 120 + 130 + 140});

  // From an existing key: inclusive.
  Tx.run(2, [&](auto &T) {
    Sum = 0;
    Taken = F.Ds.scan(T, 990, 10, Sum);
  });
  EXPECT_EQ(Taken, 2u);
  EXPECT_EQ(Sum, uint64_t{990 + 1000});

  // Past the end: empty.
  Tx.run(3, [&](auto &T) {
    Sum = 0;
    Taken = F.Ds.scan(T, 1001, 4, Sum);
  });
  EXPECT_EQ(Taken, 0u);
  EXPECT_EQ(Sum, 0u);
}

TYPED_TEST(TmdsTest, TransactionalSizeAgreesWithDirect) {
  Fixture<TypeParam> F;
  typename Fixture<TypeParam>::Txn Tx(F.S, 0);
  for (uint64_t K = 1; K <= 40; ++K)
    Tx.run(0, [&](auto &T) { F.Ds.insert(T, K, K); });
  uint64_t TxnSize = 0;
  Tx.run(1, [&](auto &T) { TxnSize = F.Ds.size(T); });
  EXPECT_EQ(TxnSize, 40u);
  EXPECT_EQ(F.Ds.sizeDirect(), 40u);
}

//===----------------------------------------------------------------------===//
// Concurrency: per-thread key partitions make final contents exact
//===----------------------------------------------------------------------===//

TYPED_TEST(TmdsTest, ConcurrentPartitionedMutationIsExact) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 300;
  Fixture<TypeParam> F(1 << 16);

  // Every thread owns keys == T (mod Threads): inserts all of them, then
  // removes the odd multiples — final contents are schedule-independent.
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      typename Fixture<TypeParam>::Txn Tx(F.S,
                                          static_cast<ThreadId>(T));
      for (uint64_t I = 0; I < PerThread; ++I) {
        uint64_t Key = 1 + T + I * Threads;
        Tx.run(0, [&](auto &Body) { F.Ds.insert(Body, Key, Key * 3); });
      }
      for (uint64_t I = 1; I < PerThread; I += 2) {
        uint64_t Key = 1 + T + I * Threads;
        Tx.run(1, [&](auto &Body) { F.Ds.remove(Body, Key); });
      }
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_TRUE(F.Ds.validateDirect());
  EXPECT_EQ(F.Ds.sizeDirect(), uint64_t{Threads} * ((PerThread + 1) / 2));
  uint64_t Seen = 0;
  bool ValuesOk = true;
  F.Ds.forEachDirect([&](uint64_t K, uint64_t V) {
    ++Seen;
    // Only even multiples survive, each with value 3*key.
    ValuesOk &= (((K - 1) / Threads) % 2 == 0) && V == K * 3;
  });
  EXPECT_TRUE(ValuesOk);
  EXPECT_EQ(Seen, F.Ds.sizeDirect());
  EXPECT_FALSE(F.Ds.anyCellLockedDirect(F.S));
}

//===----------------------------------------------------------------------===//
// Structure-specific invariants
//===----------------------------------------------------------------------===//

TEST(TmSkipListTest, TowerHeightsAreDeterministicAndGeometric) {
  using List = TmSkipList<Tl2Backend>;
  uint64_t HeightCounts[List::MaxLevel + 1] = {};
  for (uint64_t K = 0; K < 100000; ++K) {
    uint32_t H = List::towerHeight(K);
    ASSERT_GE(H, 1u);
    ASSERT_LE(H, List::MaxLevel);
    EXPECT_EQ(H, List::towerHeight(K)) << "height must be a pure function";
    ++HeightCounts[H];
  }
  // Geometric with p = 1/2: each level holds roughly half the previous.
  EXPECT_GT(HeightCounts[1], 40000u);
  EXPECT_LT(HeightCounts[1], 60000u);
  EXPECT_GT(HeightCounts[2], 20000u);
  EXPECT_LT(HeightCounts[2], 30000u);
}

TEST(TmBTreeTest, NodesStayWithinOccupancyBounds) {
  // Sequential keys force maximum split pressure; the validator checks
  // occupancy at every probe.
  TmBTree<Tl2Backend>::Pool Pool(1 << 14);
  Tl2Stm S;
  TmBTree<Tl2Backend> Tree(Pool);
  Tl2Txn Tx(S, 0);
  for (uint64_t K = 1; K <= 2000; ++K) {
    Tx.run(0, [&](Tl2Txn &T) { Tree.insert(T, K, K); });
    if (K % 127 == 0) {
      ASSERT_TRUE(Tree.validateDirect()) << "after " << K;
    }
  }
  // Remove every third key: exercises borrow/merge against the bounds.
  for (uint64_t K = 3; K <= 2000; K += 3) {
    Tx.run(1, [&](Tl2Txn &T) { Tree.remove(T, K); });
    if (K % 123 == 0) {
      ASSERT_TRUE(Tree.validateDirect()) << "after removing " << K;
    }
  }
  EXPECT_TRUE(Tree.validateDirect());
}

TEST(TmdsBackendTest, CellEncodingsAgreeAcrossBackends) {
  // The fuzz differential relies on TVar's encoded word and TObj's
  // payload word 0 agreeing for word-sized values — pin that here.
  TVar<uint64_t> V64{0x1234567890abcdefULL};
  TObj<uint64_t> O64{0x1234567890abcdefULL};
  EXPECT_EQ(Tl2Backend::cellRaw(V64), LibTmBackend::cellRaw(O64));

  TVar<uint32_t> V32{0xdeadbeefu};
  TObj<uint32_t> O32{0xdeadbeefu};
  EXPECT_EQ(Tl2Backend::cellRaw(V32), LibTmBackend::cellRaw(O32));
}

} // namespace
