//===- tests/pool_test.cpp - TmPool and memory-discipline tests -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/TmPool.h"

#include "stamp/TmList.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace gstm;

namespace {
struct Node {
  int Payload = 0;
};
} // namespace

TEST(TmPoolTest, SequentialAllocationIsDense) {
  TmPool<Node> Pool(8);
  std::set<uint32_t> Seen;
  for (int I = 0; I < 8; ++I) {
    uint32_t Index = Pool.allocate();
    EXPECT_NE(Index, TmPool<Node>::Null);
    EXPECT_TRUE(Seen.insert(Index).second) << "duplicate index";
  }
  EXPECT_EQ(Pool.used(), 8u);
  EXPECT_EQ(Pool.capacity(), 8u);
}

TEST(TmPoolTest, ConcurrentAllocationsAreUnique) {
  constexpr unsigned Threads = 8, PerThread = 500;
  TmPool<Node> Pool(Threads * PerThread);
  std::vector<std::vector<uint32_t>> Got(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I)
        Got[T].push_back(Pool.allocate());
    });
  for (auto &W : Workers)
    W.join();

  std::set<uint32_t> All;
  for (const auto &V : Got)
    for (uint32_t Index : V)
      EXPECT_TRUE(All.insert(Index).second);
  EXPECT_EQ(All.size(), size_t{Threads} * PerThread);
}

TEST(TmPoolTest, NodesAreStableAcrossAllocations) {
  TmPool<Node> Pool(64);
  uint32_t First = Pool.allocate();
  Pool[First].Payload = 42;
  for (int I = 0; I < 63; ++I)
    Pool.allocate();
  EXPECT_EQ(Pool[First].Payload, 42) << "no reallocation may move nodes";
}

TEST(TmPoolDeathTest, ExhaustionAbortsLoudly) {
  // Exhaustion must terminate with a diagnostic rather than corrupt the
  // heap (speculative readers may hold neighbouring indices).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TmPool<Node> Pool(2);
  Pool.allocate();
  Pool.allocate();
  EXPECT_DEATH(Pool.allocate(), "TmPool exhausted");
}

TEST(TmPoolTest, ListNodesFromSharedPoolStayIndependent) {
  // Two lists on one arena must not interfere.
  Tl2Stm Stm;
  TmList::Pool Pool(256);
  TmList A, B;
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 0; K < 20; ++K) {
      A.insert(Tx, Pool, K, K);
      B.insert(Tx, Pool, K, K * 2);
    }
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 0; K < 20; ++K) {
      EXPECT_EQ(A.find(Tx, Pool, K).value(), K);
      EXPECT_EQ(B.find(Tx, Pool, K).value(), K * 2);
    }
  });
}
