//===- tests/stats_test.cpp - Sharded telemetry tests ----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Covers the sharded stats subsystem (stm/StatsShard.h): exact aggregation
// across concurrent threads, the abort breakdown by cause and site, the
// retries-before-commit histogram, attempt-latency gating, and the JSON
// telemetry export/parse path — plus regression tests for the eager-mode
// opens undercount and the read-only CommitEvent flag.
//
//===----------------------------------------------------------------------===//

#include "stm/StatsShard.h"

#include "core/JsonExport.h"
#include "stm/Contention.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>
#include <vector>

using namespace gstm;

//===----------------------------------------------------------------------===//
// Shard / snapshot unit behaviour
//===----------------------------------------------------------------------===//

TEST(StatsShardTest, RecordersFeedTheRightCounters) {
  ShardedStats S;
  StatsShard &Shard = S.shard(3);
  Shard.recordCommit(/*PriorAborts=*/0, /*ReadOnly=*/false);
  Shard.recordCommit(/*PriorAborts=*/2, /*ReadOnly=*/true);
  Shard.recordAbort(AbortCauseKind::KnownCommitter, AbortSite::Read);
  Shard.recordAbort(AbortCauseKind::UnknownCommitter,
                    AbortSite::CommitValidate);
  Shard.recordAttempt(1500);
  Shard.recordCommitRingLookup(/*Hit=*/true);
  Shard.recordCommitRingLookup(/*Hit=*/false);
  Shard.recordCrossShardCommit();
  Shard.recordCrossShardAbort();
  Shard.recordPrepareRetry();
  Shard.recordPrepareRetry();

  StatsSnapshot Snap = S.snapshotShard(3);
  EXPECT_EQ(Snap.Commits, 2u);
  EXPECT_EQ(Snap.ReadOnlyCommits, 1u);
  EXPECT_EQ(Snap.Aborts, 2u);
  EXPECT_EQ(Snap.AbortsByCause[size_t(AbortCauseKind::KnownCommitter)], 1u);
  EXPECT_EQ(Snap.AbortsByCause[size_t(AbortCauseKind::UnknownCommitter)], 1u);
  EXPECT_EQ(Snap.AbortsBySite[size_t(AbortSite::Read)], 1u);
  EXPECT_EQ(Snap.AbortsBySite[size_t(AbortSite::CommitValidate)], 1u);
  EXPECT_EQ(Snap.RetryHistogram[0], 1u);
  EXPECT_EQ(Snap.RetryHistogram[2], 1u);
  EXPECT_EQ(Snap.Attempts, 1u);
  EXPECT_EQ(Snap.AttemptNanos, 1500u);
  EXPECT_EQ(Snap.CommitRingLookups, 2u);
  EXPECT_EQ(Snap.CommitRingMisses, 1u);
  EXPECT_DOUBLE_EQ(Snap.commitRingMissRatio(), 0.5);
  EXPECT_EQ(Snap.CrossShardCommits, 1u);
  EXPECT_EQ(Snap.CrossShardAborts, 1u);
  EXPECT_EQ(Snap.PrepareRetries, 2u);
  EXPECT_TRUE(Snap.consistent());

  // Other shards are untouched.
  EXPECT_EQ(S.snapshotShard(4).Commits, 0u);
}

TEST(StatsShardTest, RetryHistogramLastBucketAbsorbsTail) {
  ShardedStats S;
  S.shard(0).recordCommit(RetryHistogramBuckets - 1, false);
  S.shard(0).recordCommit(100, false);
  StatsSnapshot Snap = S.aggregate();
  EXPECT_EQ(Snap.RetryHistogram[RetryHistogramBuckets - 1], 2u);
  EXPECT_EQ(Snap.retryTotal(), Snap.Commits);
}

TEST(StatsShardTest, SnapshotMergeSumsEveryField) {
  StatsSnapshot A, B;
  A.Commits = 3;
  A.Aborts = 1;
  A.AbortsByCause[0] = 1;
  A.AbortsBySite[1] = 1;
  A.RetryHistogram[0] = 3;
  A.Attempts = 4;
  A.AttemptNanos = 400;
  A.CommitRingLookups = 2;
  A.CommitRingMisses = 1;
  A.CrossShardCommits = 1;
  A.PrepareRetries = 5;
  B.Commits = 2;
  B.ReadOnlyCommits = 2;
  B.Aborts = 2;
  B.AbortsByCause[0] = 2;
  B.AbortsBySite[1] = 2;
  B.RetryHistogram[1] = 2;
  B.Attempts = 4;
  B.AttemptNanos = 200;
  B.CommitRingLookups = 3;
  B.CommitRingMisses = 3;
  B.CrossShardCommits = 1;
  B.CrossShardAborts = 2;
  B.PrepareRetries = 1;

  A.merge(B);
  EXPECT_EQ(A.Commits, 5u);
  EXPECT_EQ(A.ReadOnlyCommits, 2u);
  EXPECT_EQ(A.Aborts, 3u);
  EXPECT_EQ(A.AbortsByCause[0], 3u);
  EXPECT_EQ(A.AbortsBySite[1], 3u);
  EXPECT_EQ(A.RetryHistogram[0], 3u);
  EXPECT_EQ(A.RetryHistogram[1], 2u);
  EXPECT_EQ(A.Attempts, 8u);
  EXPECT_EQ(A.AttemptNanos, 600u);
  EXPECT_EQ(A.CommitRingLookups, 5u);
  EXPECT_EQ(A.CommitRingMisses, 4u);
  EXPECT_EQ(A.CrossShardCommits, 2u);
  EXPECT_EQ(A.CrossShardAborts, 2u);
  EXPECT_EQ(A.PrepareRetries, 6u);
  EXPECT_TRUE(A.consistent());
  EXPECT_DOUBLE_EQ(A.meanAttemptNanos(), 75.0);
}

TEST(StatsShardTest, NameTablesCoverEveryEnumerator) {
  EXPECT_STREQ(abortCauseName(AbortCauseKind::KnownCommitter),
               "known_committer");
  EXPECT_STREQ(abortCauseName(AbortCauseKind::UnknownCommitter),
               "unknown_committer");
  EXPECT_STREQ(abortCauseName(AbortCauseKind::Explicit), "explicit");
  EXPECT_STREQ(abortSiteName(AbortSite::Read), "read");
  EXPECT_STREQ(abortSiteName(AbortSite::LockAcquire), "lock_acquire");
  EXPECT_STREQ(abortSiteName(AbortSite::CommitValidate), "commit_validate");
  EXPECT_STREQ(abortSiteName(AbortSite::Explicit), "explicit");
}

//===----------------------------------------------------------------------===//
// Concurrent aggregation exactness
//===----------------------------------------------------------------------===//

TEST(StatsShardTest, ConcurrentThreadsSumExactly) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 500;

  Tl2Stm Stm;
  TVar<uint64_t> Counter{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (uint64_t I = 0; I < PerThread; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(Counter, Tx.load(Counter) + 1); });
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Counter.loadDirect(), uint64_t{Threads} * PerThread);

  // Totals are exact after quiesce even though every increment was a
  // relaxed RMW on a different shard.
  StatsSnapshot Agg = Stm.stats().aggregate();
  EXPECT_EQ(Agg.Commits, uint64_t{Threads} * PerThread);
  EXPECT_EQ(Stm.stats().commits(), Agg.Commits);
  EXPECT_EQ(Stm.stats().aborts(), Agg.Aborts);
  EXPECT_TRUE(Agg.consistent())
      << "cause/site/histogram breakdowns must sum to the totals";

  // Thread T mapped to shard T; per-shard commits are the per-thread ones.
  StatsSnapshot Manual;
  for (unsigned T = 0; T < Threads; ++T) {
    StatsSnapshot Shard = Stm.stats().snapshotShard(T);
    EXPECT_EQ(Shard.Commits, PerThread);
    Manual.merge(Shard);
  }
  EXPECT_EQ(Manual.Commits, Agg.Commits);
  EXPECT_EQ(Manual.Aborts, Agg.Aborts);
}

TEST(StatsShardTest, ResetZeroesEverything) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, 1); });
  ASSERT_EQ(Stm.stats().commits(), 1u);
  Stm.stats().reset();
  StatsSnapshot Agg = Stm.stats().aggregate();
  EXPECT_EQ(Agg.Commits, 0u);
  EXPECT_EQ(Agg.Aborts, 0u);
  EXPECT_EQ(Agg.Attempts, 0u);
  EXPECT_EQ(Agg.retryTotal(), 0u);
}

//===----------------------------------------------------------------------===//
// Abort cause / site attribution
//===----------------------------------------------------------------------===//

TEST(StatsAttributionTest, ReadTimeAbortTaggedReadSiteKnownCommitter) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Victim(Stm, 0);
  Tl2Txn Enemy(Stm, 1);

  bool Injected = false;
  Victim.run(7, [&](Tl2Txn &Tx) {
    if (!Injected) {
      Injected = true;
      // A commit lands between the victim's rv sample and its read of X,
      // so the read sees a too-new version and must abort at read time.
      // stm-lint: allow(R5) deliberate commit injection from a second
      // descriptor; single-threaded, so the nesting cannot deadlock.
      Enemy.run(9, [&](Tl2Txn &E) { E.store(X, E.load(X) + 1); });
    }
    (void)Tx.load(X);
  });

  StatsSnapshot Victim0 = Stm.stats().snapshotShard(0);
  EXPECT_EQ(Victim0.Aborts, 1u);
  EXPECT_EQ(Victim0.AbortsBySite[size_t(AbortSite::Read)], 1u);
  // The enemy registered its commit version in the ring, so the abort is
  // attributed, not anonymous.
  EXPECT_EQ(Victim0.AbortsByCause[size_t(AbortCauseKind::KnownCommitter)],
            1u);
  // The attribution probe itself is accounted: one ring lookup, no miss.
  EXPECT_EQ(Victim0.CommitRingLookups, 1u);
  EXPECT_EQ(Victim0.CommitRingMisses, 0u);
  EXPECT_TRUE(Victim0.consistent());
  // The retried commit recorded one prior abort.
  EXPECT_EQ(Victim0.RetryHistogram[1], 1u);
}

TEST(StatsAttributionTest, RingMissCountedWhenAttributionDecays) {
  // An undersized ring silently turns KnownCommitter attribution into
  // UnknownCommitter once the guilty version has been overwritten; the
  // lookup/miss counters are the visible trace of that decay. 1 ring bit
  // = 2 slots, so two further commits deterministically evict any entry.
  Tl2Config Cfg;
  Cfg.CommitRingBits = 1;
  Tl2Stm Stm(Cfg);
  TVar<uint64_t> X{0};
  TVar<uint64_t> Noise1{0};
  TVar<uint64_t> Noise2{0};
  TVar<uint64_t> Y{0};
  Tl2Txn Victim(Stm, 0);
  Tl2Txn Enemy(Stm, 1);

  bool Injected = false;
  Victim.run(7, [&](Tl2Txn &Tx) {
    uint64_t Seen = Tx.load(X);
    if (!Injected) {
      Injected = true;
      // The first commit invalidates the victim's logged read of X with
      // version V; the next two advance the clock to V+1 and V+2, and
      // V+2 lands in V's ring slot (same parity), evicting it.
      // stm-lint: allow(R5) deliberate commit injection from a second
      // descriptor; single-threaded, so the nesting cannot deadlock.
      Enemy.run(9, [&](Tl2Txn &E) { E.store(X, E.load(X) + 1); });
      // stm-lint: allow(R5) same deliberate injection: clock-advance.
      Enemy.run(9, [&](Tl2Txn &E) { E.store(Noise1, 1); });
      // stm-lint: allow(R5) same deliberate injection: slot eviction.
      Enemy.run(9, [&](Tl2Txn &E) { E.store(Noise2, 1); });
    }
    Tx.store(Y, Seen + 1);
  });

  StatsSnapshot Victim0 = Stm.stats().snapshotShard(0);
  EXPECT_EQ(Victim0.Aborts, 1u);
  EXPECT_EQ(Victim0.AbortsBySite[size_t(AbortSite::CommitValidate)], 1u);
  // Version V is gone from the ring: attribution degraded to anonymous,
  // and the counters say so.
  EXPECT_EQ(Victim0.AbortsByCause[size_t(AbortCauseKind::UnknownCommitter)],
            1u);
  EXPECT_EQ(Victim0.CommitRingLookups, 1u);
  EXPECT_EQ(Victim0.CommitRingMisses, 1u);
  EXPECT_DOUBLE_EQ(Victim0.commitRingMissRatio(), 1.0);
  EXPECT_TRUE(Victim0.consistent());
}

TEST(StatsAttributionTest, ValidationAbortTaggedCommitValidateSite) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  TVar<uint64_t> Y{0};
  Tl2Txn Victim(Stm, 0);
  Tl2Txn Enemy(Stm, 1);

  bool Injected = false;
  Victim.run(7, [&](Tl2Txn &Tx) {
    uint64_t Seen = Tx.load(X);
    if (!Injected) {
      Injected = true;
      // Invalidate the logged read of X after it happened but before the
      // victim (a writer, so it validates) commits.
      // stm-lint: allow(R5) deliberate commit injection from a second
      // descriptor; single-threaded, so the nesting cannot deadlock.
      Enemy.run(9, [&](Tl2Txn &E) { E.store(X, E.load(X) + 1); });
    }
    Tx.store(Y, Seen + 1);
  });

  StatsSnapshot Victim0 = Stm.stats().snapshotShard(0);
  EXPECT_EQ(Victim0.Aborts, 1u);
  EXPECT_EQ(Victim0.AbortsBySite[size_t(AbortSite::CommitValidate)], 1u);
  EXPECT_EQ(Victim0.AbortsByCause[size_t(AbortCauseKind::KnownCommitter)],
            1u);
  EXPECT_TRUE(Victim0.consistent());
}

TEST(StatsAttributionTest, LockedStripeAbortTaggedLockAcquireSite) {
  Tl2Stm Stm;
  TVar<uint64_t> Z{0};

  // Hold Z's stripe lock as a foreign transaction so the victim's commit
  // fails at lock acquisition (deterministically, without racing threads).
  std::atomic<uint64_t> &Stripe = Stm.lockTable().stripeFor(&Z.word());
  uint64_t Unlocked = Stripe.load();
  TxThreadPair Foreign = packPair(/*Tx=*/42, /*Thread=*/5);

  Tl2Txn Victim(Stm, 0);
  bool First = true;
  Victim.run(7, [&](Tl2Txn &Tx) {
    if (First) {
      First = false;
      // stm-lint: allow(R1) the test poisons the stripe with a foreign
      // owner on purpose to force a deterministic lock-acquire abort.
      Stripe.store(LockTable::encodeLocked(Foreign));
    } else {
      // stm-lint: allow(R1) restoring the pre-test stripe word so the
      // retry can acquire the lock.
      Stripe.store(Unlocked); // release for the retry
    }
    Tx.store(Z, 1);
  });

  StatsSnapshot Victim0 = Stm.stats().snapshotShard(0);
  EXPECT_EQ(Victim0.Aborts, 1u);
  EXPECT_EQ(Victim0.AbortsBySite[size_t(AbortSite::LockAcquire)], 1u);
  // The lock word names its owner: cause is the known committer.
  EXPECT_EQ(Victim0.AbortsByCause[size_t(AbortCauseKind::KnownCommitter)],
            1u);
  EXPECT_TRUE(Victim0.consistent());
  EXPECT_EQ(Z.loadDirect(), 1u);
}

TEST(StatsAttributionTest, RetryAbortTaggedExplicit) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);
  int Attempt = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    (void)Tx.load(X);
    if (Attempt++ == 0)
      Tx.retryAbort();
  });

  StatsSnapshot Snap = Stm.stats().aggregate();
  EXPECT_EQ(Snap.Aborts, 1u);
  EXPECT_EQ(Snap.AbortsByCause[size_t(AbortCauseKind::Explicit)], 1u);
  EXPECT_EQ(Snap.AbortsBySite[size_t(AbortSite::Explicit)], 1u);
  EXPECT_TRUE(Snap.consistent());
}

//===----------------------------------------------------------------------===//
// Read-only commit accounting
//===----------------------------------------------------------------------===//

TEST(StatsShardTest, ReadOnlyCommitsCountedSeparately) {
  Tl2Stm Stm;
  TVar<uint64_t> X{5};
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) { (void)Tx.load(X); });
  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });

  StatsSnapshot Snap = Stm.stats().aggregate();
  EXPECT_EQ(Snap.Commits, 2u);
  EXPECT_EQ(Snap.ReadOnlyCommits, 1u);
}

//===----------------------------------------------------------------------===//
// Regression: eager-mode opens undercount (contention-manager input)
//===----------------------------------------------------------------------===//

namespace {

/// Records the Opens values the STM reports, to pin down what contention
/// managers actually see.
struct RecordingCm : ContentionManager {
  std::string name() const override { return "recording"; }
  uint64_t onAbort(ThreadId, TxThreadPair, bool, uint32_t,
                   uint64_t Opens) override {
    AbortOpens.push_back(Opens);
    return 0;
  }
  void onCommit(ThreadId, uint64_t Opens) override {
    CommitOpens.push_back(Opens);
  }
  std::vector<uint64_t> AbortOpens;
  std::vector<uint64_t> CommitOpens;
};

} // namespace

TEST(EagerOpensRegressionTest, AbortAndCommitCountEagerWrites) {
  Tl2Config Cfg;
  Cfg.Detection = ConflictDetection::Eager;
  Tl2Stm Stm(Cfg);
  RecordingCm Cm;
  Stm.setContentionManager(&Cm);

  TVar<uint64_t> R{1};
  TVar<uint64_t> W1{0};
  TVar<uint64_t> W2{0};

  Tl2Txn Txn(Stm, 0);
  int Attempt = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    (void)Tx.load(R);   // 1 logged read
    Tx.store(W1, 10);   // eager writes land in the undo log,
    Tx.store(W2, 20);   // not the (lazy) write log
    if (Attempt++ == 0)
      Tx.retryAbort();
  });

  // 1 read + 2 eager writes. The seed counted ReadSet + WriteLog only,
  // reporting 1 and making Karma-style managers see eager writers as
  // having invested no write work.
  ASSERT_EQ(Cm.AbortOpens.size(), 1u);
  EXPECT_EQ(Cm.AbortOpens[0], 3u);
  ASSERT_EQ(Cm.CommitOpens.size(), 1u);
  EXPECT_EQ(Cm.CommitOpens[0], 3u);
  EXPECT_EQ(W1.loadDirect(), 10u);
  EXPECT_EQ(W2.loadDirect(), 20u);
}

TEST(EagerOpensRegressionTest, KarmaAccruesEagerWriteWork) {
  Tl2Config Cfg;
  Cfg.Detection = ConflictDetection::Eager;
  Tl2Stm Stm(Cfg);
  KarmaManager Karma;
  Stm.setContentionManager(&Karma);

  TVar<uint64_t> W1{0};
  TVar<uint64_t> W2{0};
  Tl2Txn Txn(Stm, 0);
  int Attempt = 0;
  uint64_t KarmaAfterAbort = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    if (Attempt > 0)
      // Karma resets on commit, so sample it on the retry, while the
      // aborted attempt's investment is still banked.
      // stm-lint: allow(R5) read-only observation of the contention
      // manager's karma counter; the test asserts on it, nothing more.
      KarmaAfterAbort = Karma.karmaOf(0);
    Tx.store(W1, 1);
    Tx.store(W2, 2);
    if (Attempt++ == 0)
      Tx.retryAbort();
  });
  // Karma accumulates the aborted attempt's opens; with the undo log
  // ignored it would stay 0 for a pure eager writer.
  EXPECT_GE(KarmaAfterAbort, 2u);
}

//===----------------------------------------------------------------------===//
// Attempt latency gating
//===----------------------------------------------------------------------===//

TEST(AttemptLatencyTest, DisabledByDefault) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, 1); });
  EXPECT_EQ(Stm.stats().aggregate().Attempts, 0u);
}

TEST(AttemptLatencyTest, CountsEveryAttemptWhenEnabled) {
  Tl2Config Cfg;
  Cfg.TrackAttemptLatency = true;
  Tl2Stm Stm(Cfg);
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);

  int Attempt = 0;
  for (int I = 0; I < 3; ++I)
    Txn.run(0, [&](Tl2Txn &Tx) {
      Tx.store(X, Tx.load(X) + 1);
      // stm-lint: allow(R2) the sleep inflates attempt latency so the
      // TrackAttemptLatency histogram has something to measure.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      if (I == 0 && Attempt++ == 0)
        Tx.retryAbort(); // aborted attempts count too
    });

  StatsSnapshot Snap = Stm.stats().aggregate();
  EXPECT_EQ(Snap.Commits, 3u);
  EXPECT_EQ(Snap.Aborts, 1u);
  EXPECT_EQ(Snap.Attempts, Snap.Commits + Snap.Aborts);
  // 4 attempts x 200us sleep; demand at least half of it to tolerate a
  // coarse clock.
  EXPECT_GE(Snap.AttemptNanos, 400000u);
  EXPECT_GT(Snap.meanAttemptNanos(), 0.0);
}

//===----------------------------------------------------------------------===//
// JSON writer / parser and telemetry export
//===----------------------------------------------------------------------===//

TEST(JsonTest, WriterParserRoundtrip) {
  JsonWriter W;
  W.beginObject();
  W.key("name").value("run \"7\"\n");
  W.key("count").value(uint64_t{18446744073709551615ull});
  W.key("small").value(uint64_t{42});
  W.key("ratio").value(0.25);
  W.key("ok").value(true);
  W.key("missing").null();
  W.key("items").beginArray().value(uint64_t{1}).value(uint64_t{2}).endArray();
  W.key("nested").beginObject().key("x").value(uint64_t{7}).endObject();
  W.endObject();

  std::optional<JsonValue> Doc = parseJson(W.str());
  ASSERT_TRUE(Doc.has_value());
  ASSERT_TRUE(Doc->isObject());
  EXPECT_EQ(Doc->find("name")->Str, "run \"7\"\n");
  EXPECT_EQ(Doc->find("small")->asU64(), 42u);
  EXPECT_DOUBLE_EQ(Doc->find("ratio")->asDouble(), 0.25);
  EXPECT_TRUE(Doc->find("ok")->B);
  EXPECT_EQ(Doc->find("missing")->K, JsonValue::Kind::Null);
  ASSERT_TRUE(Doc->find("items")->isArray());
  EXPECT_EQ(Doc->find("items")->Items.size(), 2u);
  EXPECT_EQ(Doc->find("nested")->find("x")->asU64(), 7u);
  EXPECT_EQ(Doc->find("absent"), nullptr);
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  JsonWriter W;
  W.beginArray();
  W.value(std::numeric_limits<double>::quiet_NaN());
  W.value(std::numeric_limits<double>::infinity());
  W.endArray();
  EXPECT_EQ(W.str(), "[null,null]");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("{\"a\":}").has_value());
  EXPECT_FALSE(parseJson("[1,2,]").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
  EXPECT_FALSE(parseJson("{} trailing").has_value());
  EXPECT_TRUE(parseJson(" {\"a\": [1, 2.5, null]} ").has_value());
}

TEST(JsonTest, TelemetryExportRoundtrip) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);
  int Attempt = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    (void)Tx.load(X);
    if (Attempt++ == 0)
      Tx.retryAbort();
  });
  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, 1); });

  std::vector<StatsSnapshot> PerThread{Stm.stats().snapshotShard(0)};
  JsonWriter W;
  writeTelemetryJson(W, Stm.stats().aggregate(), PerThread);

  std::optional<JsonValue> Doc = parseJson(W.str());
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("commits")->asU64(), 2u);
  EXPECT_EQ(Doc->find("read_only_commits")->asU64(), 1u);
  EXPECT_EQ(Doc->find("aborts")->asU64(), 1u);
  EXPECT_EQ(Doc->find("abort_causes")->find("explicit")->asU64(), 1u);
  EXPECT_EQ(Doc->find("abort_sites")->find("explicit")->asU64(), 1u);

  const JsonValue *Hist = Doc->find("retry_histogram");
  ASSERT_NE(Hist, nullptr);
  ASSERT_EQ(Hist->Items.size(), RetryHistogramBuckets);
  uint64_t HistTotal = 0;
  for (const JsonValue &B : Hist->Items)
    HistTotal += B.asU64();
  EXPECT_EQ(HistTotal, 2u) << "histogram must sum to commits";

  const JsonValue *Threads = Doc->find("per_thread");
  ASSERT_NE(Threads, nullptr);
  ASSERT_EQ(Threads->Items.size(), 1u);
  EXPECT_EQ(Threads->Items[0].find("thread")->asU64(), 0u);
  EXPECT_EQ(Threads->Items[0].find("commits")->asU64(), 2u);
}

TEST(JsonTest, RingCountersSurviveExportParseRoundtrip) {
  StatsSnapshot S;
  S.Commits = 1;
  S.RetryHistogram[0] = 1;
  S.CommitRingLookups = 7;
  S.CommitRingMisses = 5;

  JsonWriter W;
  writeTelemetryJson(W, S, {});
  std::optional<JsonValue> Doc = parseJson(W.str());
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("commit_ring_lookups")->asU64(), 7u);
  EXPECT_EQ(Doc->find("commit_ring_misses")->asU64(), 5u);

  std::optional<StatsSnapshot> Back = snapshotFromJson(*Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->CommitRingLookups, 7u);
  EXPECT_EQ(Back->CommitRingMisses, 5u);
  EXPECT_DOUBLE_EQ(Back->commitRingMissRatio(), 5.0 / 7.0);
}

TEST(JsonTest, ShardCountersSurviveExportParseRoundtrip) {
  StatsSnapshot S;
  S.Commits = 4;
  S.Aborts = 3;
  S.AbortsByCause[size_t(AbortCauseKind::Explicit)] = 3;
  S.AbortsBySite[size_t(AbortSite::Explicit)] = 3;
  S.RetryHistogram[0] = 4;
  S.CrossShardCommits = 2;
  S.CrossShardAborts = 1;
  S.PrepareRetries = 9;
  ASSERT_TRUE(S.consistent());

  JsonWriter W;
  writeTelemetryJson(W, S, {});
  std::optional<JsonValue> Doc = parseJson(W.str());
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("cross_shard_commits")->asU64(), 2u);
  EXPECT_EQ(Doc->find("cross_shard_aborts")->asU64(), 1u);
  EXPECT_EQ(Doc->find("prepare_retries")->asU64(), 9u);

  std::optional<StatsSnapshot> Back = snapshotFromJson(*Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->CrossShardCommits, 2u);
  EXPECT_EQ(Back->CrossShardAborts, 1u);
  EXPECT_EQ(Back->PrepareRetries, 9u);
  EXPECT_TRUE(Back->consistent());

  // A cross-shard total exceeding the commits counter is a torn export:
  // consistent() must reject it.
  Back->CrossShardCommits = Back->Commits + 1;
  EXPECT_FALSE(Back->consistent());
}
