//===- tests/check_test.cpp - Correctness-harness tests -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Tests of the src/check/ correctness harness itself, in three tiers:
// the HistoryRecorder against a live TL2 runtime, the checkers against
// hand-built histories with known verdicts, and the mutation self-test —
// the fuzzer must flag the two deliberately broken TL2 variants
// (Tl2FaultInjection) while passing all real backends.
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "check/Fuzz.h"
#include "check/History.h"
#include "check/Perturb.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"

#include "gtest/gtest.h"

using namespace gstm;

namespace {

//===----------------------------------------------------------------------===//
// Recorder against a live runtime
//===----------------------------------------------------------------------===//

TEST(HistoryRecorderTest, CapturesCommitsAbortsAndAccesses) {
  Tl2Stm Stm;
  TVar<uint64_t> A{1}, B{2};

  HistoryRecorder Rec(1);
  Rec.noteInitial(&A.word(), 1);
  Rec.noteInitial(&B.word(), 2);
  Stm.setAccessObserver(&Rec);
  Stm.setObserver(&Rec);

  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(A, Tx.load(A) + 10); });
  Txn.run(1, [&](Tl2Txn &Tx) { (void)Tx.load(B); });
  bool First = true;
  Txn.run(2, [&](Tl2Txn &Tx) {
    if (First) {
      First = false;
      Tx.retryAbort();
    }
    Tx.store(B, Tx.load(B) + 5);
  });

  History H = Rec.take();
  ASSERT_EQ(H.Attempts.size(), 4u); // 3 commits + 1 explicit abort
  EXPECT_EQ(H.committedCount(), 3u);

  const AttemptRecord &Update = H.Attempts[0];
  EXPECT_TRUE(Update.committed());
  EXPECT_FALSE(Update.ReadOnly);
  EXPECT_GE(Update.CommitVersion, 1u);
  auto Reads = Update.globalReads();
  ASSERT_EQ(Reads.size(), 1u);
  EXPECT_EQ(Reads[0].first, &A.word());
  EXPECT_EQ(Reads[0].second, 1u);
  auto Writes = Update.finalWrites();
  ASSERT_EQ(Writes.size(), 1u);
  EXPECT_EQ(Writes[0].second, 11u);
  // The commit also recorded its stripe lock acquisition.
  bool SawLock = false;
  for (const AccessRecord &Acc : Update.Accesses)
    SawLock |= Acc.K == AccessRecord::Kind::LockAcquire;
  EXPECT_TRUE(SawLock);

  EXPECT_TRUE(H.Attempts[1].committed());
  EXPECT_TRUE(H.Attempts[1].ReadOnly);
  EXPECT_EQ(H.Attempts[2].Outcome, AttemptOutcome::Aborted);
  EXPECT_TRUE(H.Attempts[3].committed());

  // Begin stamps are strictly ordered after the merge.
  for (size_t I = 1; I < H.Attempts.size(); ++I)
    EXPECT_LT(H.Attempts[I - 1].BeginSeq, H.Attempts[I].BeginSeq);

  EXPECT_TRUE(checkAll(H).ok()) << checkAll(H).Reason;
  EXPECT_TRUE(lockTableQuiescent(Stm.lockTable()));
}

TEST(HistoryRecorderTest, BufferedReadsDoNotBecomeGlobalReads) {
  Tl2Stm Stm;
  TVar<uint64_t> A{7};
  HistoryRecorder Rec(1);
  Rec.noteInitial(&A.word(), 7);
  Stm.setAccessObserver(&Rec);
  Stm.setObserver(&Rec);

  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    Tx.store(A, 100);
    EXPECT_EQ(Tx.load(A), 100u); // read-after-write: buffered
  });

  History H = Rec.take();
  ASSERT_EQ(H.Attempts.size(), 1u);
  EXPECT_TRUE(H.Attempts[0].globalReads().empty());
  bool SawBuffered = false;
  for (const AccessRecord &Acc : H.Attempts[0].Accesses)
    SawBuffered |= Acc.K == AccessRecord::Kind::Load && Acc.Buffered;
  EXPECT_TRUE(SawBuffered);
}

//===----------------------------------------------------------------------===//
// Checkers on hand-built histories
//===----------------------------------------------------------------------===//

// Locations for synthetic histories; only the addresses matter.
uint64_t SlotX, SlotY;

AttemptRecord mkAttempt(ThreadId Thread, uint64_t Begin, uint64_t End,
                        uint64_t Rv, AttemptOutcome Outcome,
                        uint64_t Cv = 0, bool ReadOnly = false) {
  AttemptRecord A;
  A.Thread = Thread;
  A.Tx = 0;
  A.ReadVersion = Rv;
  A.BeginSeq = Begin;
  A.EndSeq = End;
  A.Outcome = Outcome;
  A.CommitVersion = Cv;
  A.ReadOnly = ReadOnly;
  return A;
}

void addRead(AttemptRecord &A, const void *Addr, uint64_t Value,
             uint64_t Version) {
  AccessRecord R;
  R.K = AccessRecord::Kind::Load;
  R.Addr = Addr;
  R.Value = Value;
  R.Version = Version;
  A.Accesses.push_back(R);
}

void addWrite(AttemptRecord &A, const void *Addr, uint64_t Value) {
  AccessRecord W;
  W.K = AccessRecord::Kind::Store;
  W.Addr = Addr;
  W.Value = Value;
  A.Accesses.push_back(W);
}

TEST(CheckerTest, AcceptsSerialReadModifyWrites) {
  History H;
  H.Initial[&SlotX] = 100;

  AttemptRecord T1 =
      mkAttempt(0, 0, 1, 0, AttemptOutcome::Committed, /*Cv=*/1);
  addRead(T1, &SlotX, 100, 0);
  addWrite(T1, &SlotX, 150);
  AttemptRecord T2 =
      mkAttempt(1, 2, 3, 1, AttemptOutcome::Committed, /*Cv=*/2);
  addRead(T2, &SlotX, 150, 1);
  addWrite(T2, &SlotX, 180);
  H.Attempts = {T1, T2};

  CheckResult R = checkAll(H);
  EXPECT_TRUE(R.ok()) << R.Reason;
}

TEST(CheckerTest, FlagsDuplicateCommitVersion) {
  History H;
  H.Attempts.push_back(
      mkAttempt(0, 0, 1, 0, AttemptOutcome::Committed, /*Cv=*/5));
  H.Attempts.push_back(
      mkAttempt(1, 2, 3, 0, AttemptOutcome::Committed, /*Cv=*/5));
  EXPECT_TRUE(checkInvariants(H).violation());
}

TEST(CheckerTest, FlagsNonMonotonicPerThreadCommits) {
  History H;
  H.Attempts.push_back(
      mkAttempt(0, 0, 1, 0, AttemptOutcome::Committed, /*Cv=*/5));
  H.Attempts.push_back(
      mkAttempt(0, 2, 3, 0, AttemptOutcome::Committed, /*Cv=*/3));
  EXPECT_TRUE(checkInvariants(H).violation());
}

TEST(CheckerTest, FlagsReadValidatedBeyondSnapshot) {
  History H;
  H.Initial[&SlotX] = 100;
  AttemptRecord T =
      mkAttempt(0, 0, 1, /*Rv=*/2, AttemptOutcome::Committed, /*Cv=*/3);
  addRead(T, &SlotX, 100, /*Version=*/4); // validated past its own rv
  H.Attempts.push_back(T);
  EXPECT_TRUE(checkInvariants(H).violation());
}

TEST(CheckerTest, FlagsAbortedWriteVisible) {
  History H;
  H.Initial[&SlotX] = 100;
  AttemptRecord Doomed = mkAttempt(0, 0, 3, 0, AttemptOutcome::Aborted);
  addWrite(Doomed, &SlotX, 777);
  AttemptRecord Reader =
      mkAttempt(1, 1, 4, 0, AttemptOutcome::Committed, 0, /*ReadOnly=*/true);
  addRead(Reader, &SlotX, 777, 0);
  H.Attempts = {Doomed, Reader};
  CheckResult R = checkInvariants(H);
  EXPECT_TRUE(R.violation());
  EXPECT_NE(R.Reason.find("aborted"), std::string::npos) << R.Reason;
}

TEST(CheckerTest, FlagsInconsistentSnapshot) {
  History H;
  H.Initial[&SlotX] = 100;
  H.Initial[&SlotY] = 200;

  // Writer installs X=101, Y=201 at version 2.
  AttemptRecord W =
      mkAttempt(0, 1, 4, 0, AttemptOutcome::Committed, /*Cv=*/2);
  addWrite(W, &SlotX, 101);
  addWrite(W, &SlotY, 201);
  // Aborted reader saw old X next to new Y: no snapshot contains both.
  AttemptRecord R = mkAttempt(1, 2, 5, 2, AttemptOutcome::Aborted);
  addRead(R, &SlotX, 100, 0);
  addRead(R, &SlotY, 201, 2);
  H.Attempts = {W, R};

  CheckResult Res = checkOpacity(H);
  EXPECT_TRUE(Res.violation());
  EXPECT_NE(Res.Reason.find("snapshot"), std::string::npos) << Res.Reason;
}

TEST(CheckerTest, FlagsStaleValueUnderFresherVersion) {
  History H;
  H.Initial[&SlotX] = 100;
  AttemptRecord W =
      mkAttempt(0, 0, 1, 0, AttemptOutcome::Committed, /*Cv=*/2);
  addWrite(W, &SlotX, 101);
  // Torn-publish signature: old data validated against the new version.
  AttemptRecord R = mkAttempt(1, 2, 3, 2, AttemptOutcome::Aborted);
  addRead(R, &SlotX, 100, /*Version=*/2);
  H.Attempts = {W, R};

  CheckResult Res = checkOpacity(H);
  EXPECT_TRUE(Res.violation());
  EXPECT_NE(Res.Reason.find("stale"), std::string::npos) << Res.Reason;
}

TEST(CheckerTest, FlagsLostUpdateCycle) {
  History H;
  H.Initial[&SlotX] = 100;
  // Concurrent read-modify-writes that both read the initial value: no
  // serial order explains both commits.
  AttemptRecord T1 =
      mkAttempt(0, 0, 4, 0, AttemptOutcome::Committed, /*Cv=*/1);
  addRead(T1, &SlotX, 100, 0);
  addWrite(T1, &SlotX, 150);
  AttemptRecord T2 =
      mkAttempt(1, 1, 5, 0, AttemptOutcome::Committed, /*Cv=*/2);
  addRead(T2, &SlotX, 100, 0);
  addWrite(T2, &SlotX, 130);
  H.Attempts = {T1, T2};

  EXPECT_TRUE(checkCommittedSerializable(H).violation());
}

TEST(CheckerTest, AcceptsConcurrentDisjointWriters) {
  History H;
  H.Initial[&SlotX] = 100;
  H.Initial[&SlotY] = 200;
  AttemptRecord T1 =
      mkAttempt(0, 0, 4, 0, AttemptOutcome::Committed, /*Cv=*/1);
  addRead(T1, &SlotX, 100, 0);
  addWrite(T1, &SlotX, 150);
  AttemptRecord T2 =
      mkAttempt(1, 1, 5, 0, AttemptOutcome::Committed, /*Cv=*/2);
  addRead(T2, &SlotY, 200, 0);
  addWrite(T2, &SlotY, 230);
  H.Attempts = {T1, T2};

  CheckResult R = checkAll(H);
  EXPECT_TRUE(R.ok()) << R.Reason;
}

TEST(CheckerTest, LockTableResidueIsDetected) {
  LockTable Locks(4);
  EXPECT_TRUE(lockTableQuiescent(Locks));
  Locks.stripeAt(3).store(LockTable::encodeLocked(packPair(9, 1)),
                          std::memory_order_release);
  std::string Why;
  EXPECT_FALSE(lockTableQuiescent(Locks, &Why));
  EXPECT_NE(Why.find("stripe 3"), std::string::npos) << Why;
}

//===----------------------------------------------------------------------===//
// Perturber
//===----------------------------------------------------------------------===//

TEST(SchedulePerturberTest, ForwardsEventsAndIsSeedDeterministic) {
  HistoryRecorder Rec(1);
  SchedulePerturber P1(1, /*Seed=*/42, &Rec, /*YieldShift=*/1);
  SchedulePerturber P2(1, /*Seed=*/42, nullptr, /*YieldShift=*/1);

  P1.onTxBegin(0, 0, 0);
  P2.onTxBegin(0, 0, 0);
  for (uint64_t I = 0; I < 64; ++I) {
    P1.onTxLoad(0, &SlotX, I, 0, false);
    P2.onTxLoad(0, &SlotX, I, 0, false);
  }
  P1.onTxStore(0, &SlotX, 1);
  P2.onTxStore(0, &SlotX, 1);

  // Same seed, same event stream: identical yield decisions.
  EXPECT_EQ(P1.yieldCount(), P2.yieldCount());

  // Everything reached the downstream recorder.
  Rec.onCommit(CommitEvent{0, 0, 1, 0, false});
  History H = Rec.take();
  ASSERT_EQ(H.Attempts.size(), 1u);
  EXPECT_EQ(H.Attempts[0].Accesses.size(), 65u);
}

//===----------------------------------------------------------------------===//
// Fuzzer: real backends pass, broken variants are flagged
//===----------------------------------------------------------------------===//

TEST(FuzzTest, PlanIsDeterministicAndSumsAreScheduleIndependent) {
  FuzzConfig Cfg;
  FuzzPlan P1 = makeFuzzPlan(7, Cfg);
  FuzzPlan P2 = makeFuzzPlan(7, Cfg);
  ASSERT_EQ(P1.Initial, P2.Initial);
  ASSERT_EQ(P1.PerThread.size(), P2.PerThread.size());
  for (size_t T = 0; T < P1.PerThread.size(); ++T) {
    ASSERT_EQ(P1.PerThread[T].size(), P2.PerThread[T].size());
    for (size_t K = 0; K < P1.PerThread[T].size(); ++K) {
      const FuzzTxn &A = P1.PerThread[T][K], &B = P2.PerThread[T][K];
      ASSERT_EQ(A.Ops.size(), B.Ops.size());
      for (size_t O = 0; O < A.Ops.size(); ++O) {
        EXPECT_EQ(A.Ops[O].Var, B.Ops[O].Var);
        EXPECT_EQ(A.Ops[O].IsWrite, B.Ops[O].IsWrite);
        EXPECT_EQ(A.Ops[O].Delta, B.Ops[O].Delta);
      }
    }
  }
  EXPECT_EQ(P1.expectedFinal(), P2.expectedFinal());
}

TEST(FuzzTest, AllRealBackendsPassDifferentially) {
  size_t Attempts = 0, Commits = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    DifferentialResult D = runDifferential(Seed);
    EXPECT_TRUE(D.passed()) << "seed " << Seed << ": " << D.Error;
    for (const auto &[B, R] : D.PerBackend) {
      EXPECT_TRUE(R.Check.ok())
          << "seed " << Seed << " " << fuzzBackendName(B) << ": "
          << R.Check.Reason;
      Attempts += R.Attempts;
      Commits += R.Committed;
    }
  }
  // The perturbation must actually provoke conflicts, or the checkers
  // only ever see serial schedules.
  EXPECT_GT(Attempts, Commits);
}

TEST(FuzzTest, ReferenceBackendIsAlwaysCleanAndCheckerOk) {
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    FuzzRunResult R = runFuzzIteration(Seed, FuzzBackend::Reference);
    EXPECT_TRUE(R.passed()) << "seed " << Seed << ": " << R.Error;
    EXPECT_TRUE(R.Check.ok()) << "seed " << Seed << ": " << R.Check.Reason;
  }
}

// The mutation self-test: each deliberately broken TL2 variant must be
// flagged *by the history checkers* (not merely by the final-state sum)
// within a bounded number of seeds. The clean runs above prove the same
// seeds pass without the fault, so detection is attributable to the
// injected bug.
TEST(MutationSelfTest, SkippedReadValidationIsCaught) {
  FuzzConfig Cfg;
  Cfg.Fault.SkipReadValidation = true;
  unsigned Violations = 0;
  uint64_t FirstCaught = 0;
  for (uint64_t Seed = 1; Seed <= 60 && Violations < 3; ++Seed) {
    FuzzRunResult R = runFuzzIteration(Seed, FuzzBackend::Tl2Lazy, Cfg);
    if (R.Check.violation()) {
      if (!FirstCaught)
        FirstCaught = Seed;
      ++Violations;
    }
  }
  EXPECT_GE(Violations, 3u)
      << "checker failed to flag the skipped-validation mutant";
  EXPECT_NE(FirstCaught, 0u);
}

TEST(MutationSelfTest, TornVersionPublishIsCaught) {
  FuzzConfig Cfg;
  Cfg.Fault.TornVersionPublish = true;
  unsigned Violations = 0;
  for (uint64_t Seed = 1; Seed <= 60 && Violations < 3; ++Seed) {
    FuzzRunResult R = runFuzzIteration(Seed, FuzzBackend::Tl2Lazy, Cfg);
    if (R.Check.violation())
      ++Violations;
  }
  EXPECT_GE(Violations, 3u)
      << "checker failed to flag the torn-publish mutant";
}

} // namespace
