//===- tests/synquake_test.cpp - SynQuake game substrate tests --------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "synquake/Game.h"

#include <gtest/gtest.h>

using namespace gstm;

namespace {
SynQuakeParams smallParams(QuestPattern Quest) {
  SynQuakeParams P;
  P.NumPlayers = 48;
  P.Frames = 12;
  P.Quest = Quest;
  return P;
}
} // namespace

TEST(QuestPatternTest, NameRoundTrip) {
  for (QuestPattern Q :
       {QuestPattern::WorstCase4, QuestPattern::Moving4,
        QuestPattern::Quadrants4, QuestPattern::CenterSpread6})
    EXPECT_EQ(parseQuestPattern(questPatternName(Q)), Q);
}

TEST(SynQuakeTest, RunsAndConservesInvariants) {
  for (QuestPattern Q :
       {QuestPattern::WorstCase4, QuestPattern::Moving4,
        QuestPattern::Quadrants4, QuestPattern::CenterSpread6}) {
    LibTm Tm;
    SynQuakeGame Game(smallParams(Q));
    Game.setup(Tm, /*NumThreads=*/4, /*Seed=*/7);
    std::vector<double> Frames = Game.run(Tm, 4);
    EXPECT_EQ(Frames.size(), 12u);
    for (double F : Frames)
      EXPECT_GE(F, 0.0);
    EXPECT_TRUE(Game.verify()) << questPatternName(Q);
  }
}

TEST(SynQuakeTest, SingleThreadBaseline) {
  LibTm Tm;
  SynQuakeGame Game(smallParams(QuestPattern::Quadrants4));
  Game.setup(Tm, 1, 3);
  Game.run(Tm, 1);
  EXPECT_TRUE(Game.verify());
  EXPECT_EQ(Tm.stats().aborts(), 0u)
      << "one thread can never conflict";
}

TEST(SynQuakeTest, PlayersScoreNearQuests) {
  LibTm Tm;
  SynQuakeParams P = smallParams(QuestPattern::WorstCase4);
  P.Frames = 40; // enough frames for everyone to reach the quest
  SynQuakeGame Game(P);
  Game.setup(Tm, 2, 9);
  Game.run(Tm, 2);
  EXPECT_TRUE(Game.verify());
  EXPECT_GT(Game.totalScoreDirect(), 0u)
      << "players converging on a quest must pick up resources";
}

TEST(SynQuakeTest, WorstCaseQuestContendsMoreThanQuadrants) {
  // The quest patterns exist precisely to modulate contention: all
  // players on one point must conflict more than players split across
  // four quadrants.
  auto AbortsFor = [](QuestPattern Q) {
    LibTmConfig TmCfg;
    TmCfg.PreemptShift = 5; // force transaction overlap on few cores
    LibTm Tm(TmCfg);
    SynQuakeParams P;
    P.NumPlayers = 64;
    P.Frames = 30;
    P.Quest = Q;
    SynQuakeGame Game(P);
    Game.setup(Tm, 4, 5);
    Game.run(Tm, 4);
    EXPECT_TRUE(Game.verify());
    return Tm.stats().aborts();
  };
  uint64_t WorstCase = AbortsFor(QuestPattern::WorstCase4);
  uint64_t Quadrants = AbortsFor(QuestPattern::Quadrants4);
  EXPECT_GT(WorstCase, Quadrants / 2)
      << "worst-case quest should be at least comparably contended";
}

TEST(SynQuakeTest, GateHooksAreExercised) {
  struct CountingGate : StartGate {
    std::atomic<uint64_t> Calls{0};
    void onTxStart(ThreadId, TxId) override { Calls.fetch_add(1); }
  } Gate;

  LibTm Tm;
  Tm.setGate(&Gate);
  SynQuakeGame Game(smallParams(QuestPattern::Moving4));
  Game.setup(Tm, 2, 11);
  Game.run(Tm, 2);
  // Two transactions per player per frame, plus retries.
  EXPECT_GE(Gate.Calls.load(), uint64_t{48} * 12 * 2);
}
