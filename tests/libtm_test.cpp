//===- tests/libtm_test.cpp - object-based STM tests ------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "libtm/LibTm.h"

#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace gstm;

namespace {
struct Vec3 {
  double X = 0, Y = 0, Z = 0;
};
} // namespace

TEST(LibTmTest, SingleThreadReadWrite) {
  LibTm Tm;
  TObj<uint64_t> X{5};
  LibTxn Txn(Tm, 0);
  Txn.run(0, [&](LibTxn &Tx) {
    EXPECT_EQ(Tx.read(X), 5u);
    Tx.write(X, uint64_t{9});
    EXPECT_EQ(Tx.read(X), 9u) << "read-after-write sees the buffer";
  });
  EXPECT_EQ(X.loadDirect(), 9u);
}

TEST(LibTmTest, MultiWordObjectsAreAtomic) {
  LibTm Tm;
  TObj<Vec3> V{Vec3{1, 2, 3}};
  LibTxn Txn(Tm, 0);
  Txn.run(0, [&](LibTxn &Tx) {
    Vec3 Val = Tx.read(V);
    EXPECT_DOUBLE_EQ(Val.Y, 2.0);
    Val.X = 10;
    Val.Z = 30;
    Tx.write(V, Val);
  });
  Vec3 After = V.loadDirect();
  EXPECT_DOUBLE_EQ(After.X, 10.0);
  EXPECT_DOUBLE_EQ(After.Y, 2.0);
  EXPECT_DOUBLE_EQ(After.Z, 30.0);
}

TEST(LibTmTest, AbortDiscardsBufferedWrites) {
  LibTm Tm;
  TObj<uint64_t> X{1};
  LibTxn Txn(Tm, 0);
  int Attempts = 0;
  Txn.run(0, [&](LibTxn &Tx) {
    Tx.write(X, uint64_t{77});
    if (++Attempts == 1)
      Tx.retryAbort();
  });
  EXPECT_EQ(Attempts, 2);
  EXPECT_EQ(X.loadDirect(), 77u);
  EXPECT_EQ(Tm.stats().aborts(), 1u);
}

TEST(LibTmTest, ConcurrentCountersLoseNoUpdates) {
  LibTm Tm;
  TObj<uint64_t> Counter{0};
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 150;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      LibTxn Txn(Tm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < PerThread; ++I)
        Txn.run(0, [&](LibTxn &Tx) {
          Tx.write(Counter, Tx.read(Counter) + 1);
        });
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter.loadDirect(), uint64_t{Threads} * PerThread);
}

TEST(LibTmTest, SnapshotOfMultiWordObjectNeverTorn) {
  // A writer keeps all three components equal; readers must never see a
  // mixed vector even though the payload spans three words.
  LibTm Tm;
  TObj<Vec3> V{Vec3{0, 0, 0}};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    LibTxn Txn(Tm, 0);
    for (int I = 1; I <= 300; ++I)
      Txn.run(0, [&](LibTxn &Tx) {
        Tx.write(V, Vec3{double(I), double(I), double(I)});
      });
    Stop.store(true);
  });
  std::thread Reader([&] {
    LibTxn Txn(Tm, 1);
    while (!Stop.load()) {
      Vec3 Val;
      Txn.run(1, [&](LibTxn &Tx) { Val = Tx.read(V); });
      if (Val.X != Val.Y || Val.Y != Val.Z)
        Violations.fetch_add(1);
    }
  });
  Writer.join();
  Reader.join();
  EXPECT_EQ(Violations.load(), 0u);
}

TEST(LibTmTest, CrossObjectInvariantHolds) {
  // Transfers between two objects conserve the total.
  LibTm Tm;
  constexpr unsigned N = 16;
  std::vector<std::unique_ptr<TObj<int64_t>>> Accounts;
  for (unsigned I = 0; I < N; ++I)
    Accounts.push_back(std::make_unique<TObj<int64_t>>(100));

  constexpr unsigned Threads = 5;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      LibTxn Txn(Tm, static_cast<ThreadId>(T));
      SplitMix64 Rng(T + 3);
      for (int I = 0; I < 200; ++I) {
        unsigned From = Rng.nextBounded(N), To = Rng.nextBounded(N);
        int64_t Amt = static_cast<int64_t>(Rng.nextBounded(20));
        Txn.run(0, [&](LibTxn &Tx) {
          Tx.write(*Accounts[From], Tx.read(*Accounts[From]) - Amt);
          Tx.write(*Accounts[To], Tx.read(*Accounts[To]) + Amt);
        });
      }
    });
  for (auto &W : Workers)
    W.join();

  int64_t Total = 0;
  for (auto &A : Accounts)
    Total += A->loadDirect();
  EXPECT_EQ(Total, int64_t{N} * 100);
}

TEST(LibTmTest, ObserverSeesCommitsAndAborts) {
  LibTm Tm;
  TObj<uint64_t> X{0};
  struct Probe : TxEventObserver {
    std::atomic<uint64_t> Commits{0}, Aborts{0};
    void onCommit(const CommitEvent &) override { Commits.fetch_add(1); }
    void onAbort(const AbortEvent &) override { Aborts.fetch_add(1); }
  } Obs;
  Tm.setObserver(&Obs);

  constexpr unsigned Threads = 6;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      LibTxn Txn(Tm, static_cast<ThreadId>(T));
      for (int I = 0; I < 100; ++I)
        Txn.run(0,
                [&](LibTxn &Tx) { Tx.write(X, Tx.read(X) + 1); });
    });
  for (auto &W : Workers)
    W.join();

  EXPECT_EQ(Obs.Commits.load(), uint64_t{Threads} * 100);
  EXPECT_EQ(Obs.Aborts.load(), Tm.stats().aborts());
}
