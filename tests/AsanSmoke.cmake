# Configures, builds, and runs an Address+UndefinedBehaviorSanitizer smoke
# in a dedicated sub-build (-DGSTM_ENABLE_ASAN=ON). Invoked by ctest via
# the `asan_smoke` test registered in tests/CMakeLists.txt:
#
#   cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<build>/asan-smoke -P AsanSmoke.cmake
#
# The smoke focuses on the allocation-heavy paths: the TL2 read/write
# sets and lock table, and the check-subsystem fuzzer, which drives all
# four STM backends through randomized transaction mixes (so use-after-
# free or UB in any engine's hot path trips the sanitizer). Any report
# makes the instrumented binary exit non-zero and fails the test.

if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR
      "usage: cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<dir> -P AsanSmoke.cmake")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DGSTM_ENABLE_ASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE ConfigureRc)
if(NOT ConfigureRc EQUAL 0)
  message(FATAL_ERROR "asan sub-build configure failed (${ConfigureRc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR}
          --target tl2_test check_fuzz model_lifecycle_test minivector_test
                   latency_histogram_test tmds_test engine_test
  RESULT_VARIABLE BuildRc)
if(NOT BuildRc EQUAL 0)
  message(FATAL_ERROR "asan sub-build compile failed (${BuildRc})")
endif()

# Make the first finding fatal and UBSan reports hard errors, so the exit
# code reflects them even when the test logic would still pass.
set(ENV{ASAN_OPTIONS} "halt_on_error=1:detect_leaks=1")
set(ENV{UBSAN_OPTIONS} "halt_on_error=1:print_stacktrace=1")

execute_process(
  COMMAND ${BUILD_DIR}/tests/tl2_test
  RESULT_VARIABLE Tl2Rc)
if(NOT Tl2Rc EQUAL 0)
  message(FATAL_ERROR "tl2_test failed under asan (${Tl2Rc})")
endif()

# --commit-order=both sweeps the single-fence and standard commit
# publication orders, so the fence-path writeback is ASan-covered too.
# The backend matrix includes the policy-templated engines, whose
# in-place undo writes are a prime use-after-rollback candidate.
execute_process(
  COMMAND ${BUILD_DIR}/tools/check_fuzz --iters=64 --commit-order=both
  RESULT_VARIABLE FuzzRc)
if(NOT FuzzRc EQUAL 0)
  message(FATAL_ERROR "check_fuzz failed under asan (${FuzzRc})")
endif()

# Engine family unit+concurrency suite: ByteLock reader-byte indexing,
# epoch slots, and the per-policy undo/lock-release paths.
execute_process(
  COMMAND ${BUILD_DIR}/tests/engine_test
  RESULT_VARIABLE EngineRc)
if(NOT EngineRc EQUAL 0)
  message(FATAL_ERROR "engine_test failed under asan (${EngineRc})")
endif()

# Transaction-log containers: the grow/relocate/alias paths in
# MiniVector and PtrIndexMap are exactly where a lifetime bug would
# live, and the uninstrumented test can pass while reading freed memory.
execute_process(
  COMMAND ${BUILD_DIR}/tests/minivector_test
  RESULT_VARIABLE MiniRc)
if(NOT MiniRc EQUAL 0)
  message(FATAL_ERROR "minivector_test failed under asan (${MiniRc})")
endif()

# The transactional data structures allocate nodes from TmPool arenas
# and publish them via STM stores; aborted inserts leak their nodes by
# design. The structure tests plus a short differential fuzz run cover
# the node lifecycle (and the histogram's bucket math) under ASan/UBSan.
execute_process(
  COMMAND ${BUILD_DIR}/tests/latency_histogram_test
  RESULT_VARIABLE HistRc)
if(NOT HistRc EQUAL 0)
  message(FATAL_ERROR "latency_histogram_test failed under asan (${HistRc})")
endif()
execute_process(
  COMMAND ${BUILD_DIR}/tests/tmds_test
  RESULT_VARIABLE TmdsRc)
if(NOT TmdsRc EQUAL 0)
  message(FATAL_ERROR "tmds_test failed under asan (${TmdsRc})")
endif()
execute_process(
  COMMAND ${BUILD_DIR}/tools/check_fuzz --workload=skiplist --iters=32
  RESULT_VARIABLE SkipFuzzRc)
if(NOT SkipFuzzRc EQUAL 0)
  message(FATAL_ERROR "skiplist fuzz failed under asan (${SkipFuzzRc})")
endif()
execute_process(
  COMMAND ${BUILD_DIR}/tools/check_fuzz --workload=btree --iters=32
  RESULT_VARIABLE BtreeFuzzRc)
if(NOT BtreeFuzzRc EQUAL 0)
  message(FATAL_ERROR "btree fuzz failed under asan (${BtreeFuzzRc})")
endif()

# Sharded tier: the 2PC prepare/publish walk iterates per-shard lock
# tables and MiniVector-backed acquisition logs — exactly where an
# off-by-one over the combined (shard, stripe) keys would read out of
# bounds. Both commit orders sweep the grouped publish paths.
execute_process(
  COMMAND ${BUILD_DIR}/tools/check_fuzz --workload=sharded --iters=32
          --commit-order=both
  RESULT_VARIABLE ShardFuzzRc)
if(NOT ShardFuzzRc EQUAL 0)
  message(FATAL_ERROR "sharded fuzz failed under asan (${ShardFuzzRc})")
endif()

# Model-loader robustness: the serialization round-trip and corruption
# fuzz suites exercise every bounds check in the deserializer — a single
# out-of-range read on a mutated payload trips ASan/UBSan here even if
# the uninstrumented test would still "pass".
execute_process(
  COMMAND ${BUILD_DIR}/tests/model_lifecycle_test
          --gtest_filter=Serialize*
  RESULT_VARIABLE ModelRc)
if(NOT ModelRc EQUAL 0)
  message(FATAL_ERROR "model loader fuzz failed under asan (${ModelRc})")
endif()

message(STATUS "asan smoke passed")
