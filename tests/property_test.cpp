//===- tests/property_test.cpp - randomized property tests ------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Randomized (but seeded, hence reproducible) property tests over the
// model layer: trace grouping, automaton bookkeeping, serialization and
// policy compilation must hold structural invariants for *any* input
// stream, not just the hand-built cases in model_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/GuidedPolicy.h"
#include "core/Trace.h"
#include "core/Tsa.h"
#include "model/Serialize.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

using namespace gstm;

namespace {

/// Generates a random but well-formed trace: commits carry fresh
/// versions; aborts reference either a known past commit version, a
/// plausible future committer pair, or nothing.
std::vector<TraceEvent> randomTrace(SplitMix64 &Rng, size_t Events,
                                    unsigned Threads, unsigned Sites) {
  std::vector<TraceEvent> Trace;
  uint64_t Seq = 0;
  uint64_t Version = 10;
  std::vector<uint64_t> PastVersions;
  for (size_t I = 0; I < Events; ++I) {
    TraceEvent E;
    E.Seq = Seq++;
    E.Thread = static_cast<ThreadId>(Rng.nextBounded(Threads));
    E.Tx = static_cast<TxId>(Rng.nextBounded(Sites));
    E.IsCommit = Rng.nextBounded(3) != 0; // ~2/3 commits
    if (E.IsCommit) {
      E.Version = ++Version;
      PastVersions.push_back(E.Version);
      E.PriorAborts = static_cast<uint32_t>(Rng.nextBounded(4));
    } else {
      switch (Rng.nextBounded(3)) {
      case 0: // version-attributed abort
        if (!PastVersions.empty()) {
          E.Kind = AbortCauseKind::KnownCommitter;
          E.Version =
              PastVersions[Rng.nextBounded(PastVersions.size())];
          E.Cause = packPair(static_cast<TxId>(Rng.nextBounded(Sites)),
                             static_cast<ThreadId>(
                                 Rng.nextBounded(Threads)));
          break;
        }
        [[fallthrough]];
      case 1: // lock-owner-attributed abort
        E.Kind = AbortCauseKind::KnownCommitter;
        E.Version = 0;
        E.Cause = packPair(static_cast<TxId>(Rng.nextBounded(Sites)),
                           static_cast<ThreadId>(Rng.nextBounded(Threads)));
        break;
      default:
        E.Kind = AbortCauseKind::UnknownCommitter;
        E.Version = 0;
        E.Cause = 0;
      }
    }
    Trace.push_back(E);
  }
  return Trace;
}

size_t countCommits(const std::vector<TraceEvent> &Trace) {
  size_t N = 0;
  for (const TraceEvent &E : Trace)
    if (E.IsCommit)
      ++N;
  return N;
}

} // namespace

class GroupingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupingProperty, TupleCountEqualsCommitCount) {
  SplitMix64 Rng(GetParam());
  auto Trace = randomTrace(Rng, 400, 8, 4);
  size_t Commits = countCommits(Trace);
  EXPECT_EQ(groupTuples(Trace, Grouping::Sequence).size(), Commits);
  EXPECT_EQ(groupTuples(Trace, Grouping::Causal).size(), Commits);
}

TEST_P(GroupingProperty, CommitOrderPreservedInBothModes) {
  SplitMix64 Rng(GetParam() ^ 0xbeef);
  auto Trace = randomTrace(Rng, 300, 6, 3);
  auto Seq = groupTuples(Trace, Grouping::Sequence);
  auto Cau = groupTuples(Trace, Grouping::Causal);
  ASSERT_EQ(Seq.size(), Cau.size());
  for (size_t I = 0; I < Seq.size(); ++I)
    EXPECT_EQ(Seq[I].Commit, Cau[I].Commit)
        << "grouping modes may redistribute aborts, never commits";
}

TEST_P(GroupingProperty, NoAbortLostBeforeFinalCommit) {
  SplitMix64 Rng(GetParam() ^ 0xcafe);
  auto Trace = randomTrace(Rng, 300, 6, 3);
  // Count aborts occurring before the last commit: sequence grouping
  // must attach all of them (only trailing aborts may drop).
  size_t LastCommit = 0;
  for (size_t I = 0; I < Trace.size(); ++I)
    if (Trace[I].IsCommit)
      LastCommit = I;
  size_t AbortsBefore = 0;
  for (size_t I = 0; I < LastCommit; ++I)
    if (!Trace[I].IsCommit)
      ++AbortsBefore;

  size_t Attached = 0;
  for (const StateTuple &S : groupTuples(Trace, Grouping::Sequence))
    Attached += S.Aborts.size();
  // Canonicalization dedupes identical (tx,thread) pairs within one
  // tuple, so attached <= raw count; nothing may exceed it.
  EXPECT_LE(Attached, AbortsBefore);
  if (AbortsBefore > 0) {
    EXPECT_GT(Attached, 0u);
  }
}

TEST_P(GroupingProperty, TsaBookkeepingConsistent) {
  SplitMix64 Rng(GetParam() ^ 0xf00d);
  Tsa Model;
  size_t ExpectedTransitions = 0;
  for (int Run = 0; Run < 4; ++Run) {
    auto Tuples =
        groupTuples(randomTrace(Rng, 200, 5, 3), Grouping::Sequence);
    if (!Tuples.empty())
      ExpectedTransitions += Tuples.size() - 1;
    Model.addRun(Tuples);
  }
  EXPECT_EQ(Model.numTransitions(), ExpectedTransitions);

  // Per-state probability normalization.
  for (StateId S = 0; S < Model.numStates(); ++S) {
    auto Succ = Model.successors(S);
    if (Succ.empty())
      continue;
    double Sum = 0;
    uint64_t Count = 0;
    for (const TsaEdge &E : Succ) {
      Sum += E.Probability;
      Count += E.Count;
    }
    EXPECT_NEAR(Sum, 1.0, 1e-9);
    EXPECT_EQ(Count, Model.outFrequency(S));
  }
}

TEST_P(GroupingProperty, SaveLoadPreservesRandomModels) {
  SplitMix64 Rng(GetParam() ^ 0x5eed);
  Tsa Model;
  for (int Run = 0; Run < 3; ++Run)
    Model.addRun(
        groupTuples(randomTrace(Rng, 150, 6, 4), Grouping::Causal));

  std::string Path = ::testing::TempDir() + "/gstm_prop_" +
                     std::to_string(GetParam()) + ".tsa";
  ASSERT_EQ(saveModel(Model, Path), ModelIoStatus::Ok);
  ModelLoadResult Loaded = loadModel(Path);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;
  EXPECT_EQ(Loaded.Model->numStates(), Model.numStates());
  EXPECT_EQ(Loaded.Model->numTransitions(), Model.numTransitions());
  // Analyzer must agree on both.
  EXPECT_DOUBLE_EQ(analyzeModel(*Loaded.Model).GuidanceMetricPercent,
                   analyzeModel(Model).GuidanceMetricPercent);
  std::remove(Path.c_str());
}

TEST_P(GroupingProperty, PolicyAllowsExactlyHighProbabilityPairs) {
  SplitMix64 Rng(GetParam() ^ 0x9011c7);
  Tsa Model;
  for (int Run = 0; Run < 3; ++Run)
    Model.addRun(
        groupTuples(randomTrace(Rng, 250, 6, 3), Grouping::Sequence));

  const double Tfactor = 4.0;
  GuidedPolicy Policy(Model, Tfactor);
  for (StateId S = 0; S < Model.numStates(); ++S) {
    auto Kept = highProbabilitySuccessors(Model, S, Tfactor);
    if (Kept.empty())
      continue; // terminal states allow everything
    std::unordered_set<TxThreadPair> Expected;
    for (const TsaEdge &E : Kept) {
      const StateTuple &D = Model.state(E.Dest);
      Expected.insert(D.Commit);
      for (TxThreadPair P : D.Aborts)
        Expected.insert(P);
    }
    EXPECT_EQ(Policy.allowedPairCount(S), Expected.size());
    for (TxThreadPair P : Expected)
      EXPECT_TRUE(Policy.allows(S, P));
    // A pair definitely outside every tuple must be rejected.
    TxThreadPair Alien = packPair(999, 63);
    if (!Expected.count(Alien)) {
      EXPECT_FALSE(Policy.allows(S, Alien));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
