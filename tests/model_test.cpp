//===- tests/model_test.cpp - TTS / TSA / analyzer / policy tests ----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/GuidedPolicy.h"
#include "core/Trace.h"
#include "core/Tsa.h"
#include "core/Tts.h"
#include "model/Serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace gstm;

namespace {

StateTuple makeTuple(TxId CommitTx, ThreadId CommitThread,
                     std::initializer_list<std::pair<TxId, ThreadId>>
                         Aborts = {}) {
  StateTuple S;
  S.Commit = packPair(CommitTx, CommitThread);
  for (auto [Tx, T] : Aborts)
    S.Aborts.push_back(packPair(Tx, T));
  S.canonicalize();
  return S;
}

TraceEvent commitEvent(uint64_t Seq, ThreadId Thread, TxId Tx,
                       uint64_t Version = 0, uint32_t PriorAborts = 0) {
  TraceEvent E;
  E.Seq = Seq;
  E.Version = Version;
  E.Thread = Thread;
  E.Tx = Tx;
  E.IsCommit = true;
  E.PriorAborts = PriorAborts;
  return E;
}

TraceEvent abortEvent(uint64_t Seq, ThreadId Thread, TxId Tx,
                      AbortCauseKind Kind =
                          AbortCauseKind::UnknownCommitter,
                      TxThreadPair Cause = 0, uint64_t Version = 0) {
  TraceEvent E;
  E.Seq = Seq;
  E.Version = Version;
  E.Thread = Thread;
  E.Tx = Tx;
  E.IsCommit = false;
  E.Kind = Kind;
  E.Cause = Cause;
  return E;
}

} // namespace

TEST(StateTupleTest, CanonicalizeSortsAndDedupes) {
  StateTuple S;
  S.Commit = packPair(3, 0);
  S.Aborts = {packPair(2, 5), packPair(1, 1), packPair(2, 5)};
  S.canonicalize();
  EXPECT_EQ(S.Aborts.size(), 2u);
  EXPECT_LT(S.Aborts[0], S.Aborts[1]);
}

TEST(StateTupleTest, EqualityAndHashAgree) {
  StateTuple A = makeTuple(3, 7, {{0, 1}, {1, 2}});
  StateTuple B = makeTuple(3, 7, {{1, 2}, {0, 1}}); // different order
  StateTuple C = makeTuple(3, 7, {{0, 1}});
  EXPECT_EQ(A, B);
  EXPECT_EQ(StateTupleHash{}(A), StateTupleHash{}(B));
  EXPECT_FALSE(A == C);
}

TEST(StateTupleTest, FormatMatchesPaperNotation) {
  // Paper example: thread 4 commits d, aborting threads 1, 2, 3 running
  // a, b, c -> {<a1 b2 c3>, <d4>}.
  StateTuple S = makeTuple(3, 4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(S.format(), "{<a1 b2 c3>, <d4>}");
  StateTuple Solo = makeTuple(2, 3);
  EXPECT_EQ(Solo.format(), "{<c3>}");
}

TEST(TraceCollectorTest, CollectsAndOrders) {
  TraceCollector C(2);
  C.onCommit(CommitEvent{0, 1, 10, 0});
  C.onAbort(AbortEvent{1, 2, AbortCauseKind::UnknownCommitter, 0, 0});
  C.onCommit(CommitEvent{1, 2, 11, 1});
  auto Trace = C.takeTrace();
  ASSERT_EQ(Trace.size(), 3u);
  for (size_t I = 1; I < Trace.size(); ++I)
    EXPECT_LT(Trace[I - 1].Seq, Trace[I].Seq);
}

TEST(TraceCollectorTest, AbortHistogramsFromPriorAborts) {
  TraceCollector C(2);
  C.onCommit(CommitEvent{0, 0, 1, 0});
  C.onCommit(CommitEvent{0, 0, 2, 3});
  C.onCommit(CommitEvent{1, 0, 3, 3});
  auto Hists = C.abortHistograms();
  ASSERT_EQ(Hists.size(), 2u);
  EXPECT_EQ(Hists[0].frequency(0), 1u);
  EXPECT_EQ(Hists[0].frequency(3), 1u);
  EXPECT_EQ(Hists[1].frequency(3), 1u);
}

TEST(GroupingTest, SequenceModeAttachesPrecedingAborts) {
  std::vector<TraceEvent> Trace = {
      abortEvent(0, 1, 0), abortEvent(1, 2, 1), commitEvent(2, 0, 0),
      commitEvent(3, 3, 1), abortEvent(4, 0, 0), // trailing abort dropped
  };
  auto Tuples = groupTuples(Trace, Grouping::Sequence);
  ASSERT_EQ(Tuples.size(), 2u);
  EXPECT_EQ(Tuples[0], makeTuple(0, 0, {{0, 1}, {1, 2}}));
  EXPECT_EQ(Tuples[1], makeTuple(1, 3));
}

TEST(GroupingTest, CausalModeFollowsVersionAttribution) {
  // Commit v10 by thread 0; abort caused by v10 arrives *after* the next
  // commit. Sequence mode would charge thread 3's commit; causal mode
  // charges thread 0's.
  std::vector<TraceEvent> Trace = {
      commitEvent(0, 0, 0, /*Version=*/10),
      commitEvent(1, 3, 1, /*Version=*/11),
      abortEvent(2, 1, 2, AbortCauseKind::KnownCommitter, packPair(0, 0),
                 /*Version=*/10),
      commitEvent(3, 1, 2, /*Version=*/12),
  };
  auto Causal = groupTuples(Trace, Grouping::Causal);
  ASSERT_EQ(Causal.size(), 3u);
  EXPECT_EQ(Causal[0], makeTuple(0, 0, {{2, 1}}));
  EXPECT_EQ(Causal[1], makeTuple(1, 3));

  auto Sequence = groupTuples(Trace, Grouping::Sequence);
  EXPECT_EQ(Sequence[0], makeTuple(0, 0));
  EXPECT_EQ(Sequence[2], makeTuple(2, 1, {{2, 1}}));
}

TEST(GroupingTest, CausalLockOwnerChargesNextCommitOfOwner) {
  // Abort against a lock holder (no version): the holder commits later;
  // the abort must attach to that commit.
  std::vector<TraceEvent> Trace = {
      abortEvent(0, 1, 0, AbortCauseKind::KnownCommitter, packPair(5, 2),
                 /*Version=*/0),
      commitEvent(1, 3, 1, 20),
      commitEvent(2, 2, 5, 21), // the lock holder's commit
  };
  auto Causal = groupTuples(Trace, Grouping::Causal);
  ASSERT_EQ(Causal.size(), 2u);
  EXPECT_EQ(Causal[0], makeTuple(1, 3));
  EXPECT_EQ(Causal[1], makeTuple(5, 2, {{0, 1}}));
}

TEST(TsaTest, CountsStatesAndTransitions) {
  Tsa Model;
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 1), C = makeTuple(2, 2);
  Model.addRun({A, B, A, B, C});
  EXPECT_EQ(Model.numStates(), 3u);
  EXPECT_EQ(Model.numTransitions(), 4u);

  auto AId = Model.lookup(A);
  ASSERT_TRUE(AId.has_value());
  auto Succ = Model.successors(*AId);
  ASSERT_EQ(Succ.size(), 1u);
  EXPECT_DOUBLE_EQ(Succ[0].Probability, 1.0);
}

TEST(TsaTest, ProbabilitiesNormalizePerState) {
  Tsa Model;
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 1), C = makeTuple(2, 2);
  // A -> B three times, A -> C once.
  Model.addRun({A, B, A, B, A, B, A, C});
  auto AId = *Model.lookup(A);
  auto Succ = Model.successors(AId);
  ASSERT_EQ(Succ.size(), 2u);
  EXPECT_DOUBLE_EQ(Succ[0].Probability, 0.75);
  EXPECT_DOUBLE_EQ(Succ[1].Probability, 0.25);
  double Sum = 0;
  for (auto &E : Succ)
    Sum += E.Probability;
  EXPECT_DOUBLE_EQ(Sum, 1.0);
}

TEST(TsaTest, NoTransitionAcrossRuns) {
  Tsa Model;
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 1);
  Model.addRun({A});
  Model.addRun({B});
  EXPECT_EQ(Model.numStates(), 2u);
  EXPECT_EQ(Model.numTransitions(), 0u);
}

TEST(TsaTest, SaveLoadRoundTrip) {
  Tsa Model;
  StateTuple A = makeTuple(0, 0, {{1, 1}});
  StateTuple B = makeTuple(1, 1);
  StateTuple C = makeTuple(2, 5, {{0, 3}, {1, 4}});
  Model.addRun({A, B, C, A, B, A});

  std::string Path = ::testing::TempDir() + "/gstm_tsa_roundtrip.bin";
  ASSERT_EQ(saveModel(Model, Path), ModelIoStatus::Ok);
  ModelLoadResult Loaded = loadModel(Path);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;
  EXPECT_EQ(Loaded.Model->numStates(), Model.numStates());
  EXPECT_EQ(Loaded.Model->numTransitions(), Model.numTransitions());
  for (StateId S = 0; S < Model.numStates(); ++S) {
    auto Orig = Model.successors(S);
    auto Copy = Loaded.Model->successors(S);
    ASSERT_EQ(Orig.size(), Copy.size());
    for (size_t I = 0; I < Orig.size(); ++I) {
      EXPECT_EQ(Orig[I].Dest, Copy[I].Dest);
      EXPECT_EQ(Orig[I].Count, Copy[I].Count);
    }
  }
  std::remove(Path.c_str());
}

TEST(TsaTest, LoadRejectsGarbage) {
  std::string Path = ::testing::TempDir() + "/gstm_tsa_garbage.bin";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "not a model";
  }
  EXPECT_EQ(loadModel(Path).Status, ModelIoStatus::BadMagic);
  EXPECT_EQ(loadModel("/nonexistent/path/x.bin").Status,
            ModelIoStatus::FileNotFound);
  std::remove(Path.c_str());
}

TEST(AnalyzerTest, HighProbabilitySuccessorsThreshold) {
  Tsa Model;
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 1), C = makeTuple(2, 2),
             D = makeTuple(3, 3);
  // From A: B x8, C x2, D x1 -> Pmax = 8/11. With Tfactor=4 the
  // threshold is 2/11: keeps B and C, drops D.
  Model.addRun({A, B, A, B, A, B, A, B, A, B, A, B, A, B, A, B,
                A, C, A, C, A, D});
  auto AId = *Model.lookup(A);
  auto Kept = highProbabilitySuccessors(Model, AId, 4.0);
  ASSERT_EQ(Kept.size(), 2u);
  EXPECT_EQ(Kept[0].Dest, *Model.lookup(B));
  EXPECT_EQ(Kept[1].Dest, *Model.lookup(C));

  // Tfactor=1 keeps only the top edge; a huge Tfactor keeps all.
  EXPECT_EQ(highProbabilitySuccessors(Model, AId, 1.0).size(), 1u);
  EXPECT_EQ(highProbabilitySuccessors(Model, AId, 100.0).size(), 3u);
}

TEST(AnalyzerTest, SkewedModelAcceptedUniformRejected) {
  // Skewed: hub states bounce between each other almost always, with a
  // fringe of rarely reached terminal states that guidance would prune.
  Tsa Skewed;
  StateTuple H1 = makeTuple(0, 0), H2 = makeTuple(1, 1);
  std::vector<StateTuple> Main;
  for (int I = 0; I < 50; ++I) {
    Main.push_back(H1);
    Main.push_back(H2);
  }
  Skewed.addRun(Main);
  for (int I = 0; I < 8; ++I)
    Skewed.addRun({H1, makeTuple(static_cast<TxId>(2 + I), 2)});
  AnalyzerReport SkewReport = analyzeModel(Skewed);
  EXPECT_LT(SkewReport.GuidanceMetricPercent, 50.0);
  EXPECT_TRUE(SkewReport.Optimizable);

  // Uniform: all successors equally likely (the ssca2 situation).
  Tsa Uniform;
  StateTuple S[4] = {makeTuple(0, 0), makeTuple(1, 1), makeTuple(2, 2),
                     makeTuple(3, 3)};
  for (int I = 0; I < 4; ++I)
    for (int J = 0; J < 4; ++J)
      if (I != J)
        Uniform.addRun({S[I], S[J]});
  AnalyzerReport UniReport = analyzeModel(Uniform);
  EXPECT_DOUBLE_EQ(UniReport.GuidanceMetricPercent, 100.0);
  EXPECT_FALSE(UniReport.Optimizable);
}

TEST(AnalyzerTest, TinyModelRejected) {
  Tsa Model;
  Model.addRun({makeTuple(0, 0), makeTuple(1, 1)});
  AnalyzerConfig Cfg;
  Cfg.MinStates = 4;
  EXPECT_FALSE(analyzeModel(Model, Cfg).Optimizable);
}

TEST(GuidedPolicyTest, AllowsPairsOfHighProbabilityDestinations) {
  Tsa Model;
  StateTuple A = makeTuple(0, 0);
  StateTuple B = makeTuple(1, 1, {{2, 3}}); // commit b1, abort c3
  StateTuple D = makeTuple(3, 4);
  // A -> B dominant (x9), A -> D rare (x1).
  std::vector<StateTuple> Run;
  for (int I = 0; I < 9; ++I) {
    Run.push_back(A);
    Run.push_back(B);
  }
  Run.push_back(A);
  Run.push_back(D);
  Model.addRun(Run);

  GuidedPolicy Policy(Model, /*Tfactor=*/4.0);
  StateId AId = Policy.resolve(A);
  ASSERT_NE(AId, UnknownState);

  // Pairs in B (commit and abort) are allowed; D's commit pair is not.
  EXPECT_TRUE(Policy.allows(AId, packPair(1, 1)));
  EXPECT_TRUE(Policy.allows(AId, packPair(2, 3)));
  EXPECT_FALSE(Policy.allows(AId, packPair(3, 4)));
  // Unknown current state always allows.
  EXPECT_TRUE(Policy.allows(UnknownState, packPair(3, 4)));
}

TEST(GuidedPolicyTest, ResolveUnknownTuple) {
  Tsa Model;
  Model.addRun({makeTuple(0, 0), makeTuple(1, 1)});
  GuidedPolicy Policy(Model, 4.0);
  EXPECT_EQ(Policy.resolve(makeTuple(9, 9)), UnknownState);
}

TEST(GuidedPolicyTest, StateWithoutTransitionsAllowsEverything) {
  Tsa Model;
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 1);
  Model.addRun({A, B}); // B is terminal: no outbound edges
  GuidedPolicy Policy(Model, 4.0);
  StateId BId = Policy.resolve(B);
  EXPECT_TRUE(Policy.allows(BId, packPair(7, 7)));
}
