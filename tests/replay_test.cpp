//===- tests/replay_test.cpp - deterministic replay tests -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Replay.h"

#include "core/Trace.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

using namespace gstm;

namespace {

/// Small contended workload: each of \p Threads workers increments a
/// shared counter \p PerThread times at site = its thread id (distinct
/// sites make schedules thread-specific).
std::vector<TxThreadPair> runCounter(Tl2Stm &Stm, unsigned Threads,
                                     unsigned PerThread,
                                     TVar<uint64_t> &Counter,
                                     CommitRecorder *Recorder) {
  if (Recorder)
    Stm.setObserver(Recorder);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < PerThread; ++I)
        Txn.run(static_cast<TxId>(T),
                [&](Tl2Txn &Tx) { Tx.store(Counter, Tx.load(Counter) + 1); });
    });
  for (auto &W : Workers)
    W.join();
  return Recorder ? Recorder->takeSchedule() : std::vector<TxThreadPair>{};
}

} // namespace

TEST(ReplayTest, RecorderCapturesEveryCommitInOrder) {
  Tl2Stm Stm;
  TVar<uint64_t> Counter{0};
  CommitRecorder Recorder;
  auto Schedule = runCounter(Stm, 4, 50, Counter, &Recorder);
  EXPECT_EQ(Schedule.size(), 200u);
  // Each thread contributed exactly PerThread commits at its own site.
  std::vector<unsigned> PerThread(4, 0);
  for (TxThreadPair P : Schedule) {
    EXPECT_EQ(pairTx(P), pairThread(P)) << "site == thread id here";
    ++PerThread[pairThread(P)];
  }
  for (unsigned N : PerThread)
    EXPECT_EQ(N, 50u);
}

TEST(ReplayTest, ReplayReproducesCommitOrderExactly) {
  // Record one run, then replay it: the replayed commit order must match
  // the schedule with zero divergences.
  Tl2Config Cfg;
  Cfg.PreemptShift = 5; // plenty of interleaving in the recording
  std::vector<TxThreadPair> Schedule;
  {
    Tl2Stm Stm(Cfg);
    TVar<uint64_t> Counter{0};
    CommitRecorder Recorder;
    Schedule = runCounter(Stm, 4, 40, Counter, &Recorder);
  }

  Tl2Stm Stm(Cfg);
  TVar<uint64_t> Counter{0};
  ReplayGate Gate(Schedule);
  CommitRecorder Check;

  struct Tee : TxEventObserver {
    TxEventObserver *A, *B;
    void onCommit(const CommitEvent &E) override {
      A->onCommit(E);
      B->onCommit(E);
    }
    void onAbort(const AbortEvent &E) override {
      A->onAbort(E);
      B->onAbort(E);
    }
  } Observer;
  Observer.A = &Gate;
  Observer.B = &Check;

  Stm.setGate(&Gate);
  Stm.setObserver(&Observer);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 4; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < 40; ++I)
        Txn.run(static_cast<TxId>(T),
                [&](Tl2Txn &Tx) { Tx.store(Counter, Tx.load(Counter) + 1); });
    });
  for (auto &W : Workers)
    W.join();

  EXPECT_EQ(Counter.loadDirect(), 160u);
  EXPECT_EQ(Gate.divergences(), 0u);
  EXPECT_EQ(Gate.cursor(), Schedule.size());
  EXPECT_EQ(Check.takeSchedule(), Schedule)
      << "replay must pin the exact commit order";
}

TEST(ReplayTest, ReplayedRunIsFullyDeterministicTwice) {
  Tl2Config Cfg;
  Cfg.PreemptShift = 5;
  std::vector<TxThreadPair> Schedule;
  {
    Tl2Stm Stm(Cfg);
    TVar<uint64_t> Counter{0};
    CommitRecorder Recorder;
    Schedule = runCounter(Stm, 3, 30, Counter, &Recorder);
  }

  auto ReplayOnce = [&] {
    Tl2Stm Stm(Cfg);
    TVar<uint64_t> Counter{0};
    ReplayGate Gate(Schedule);
    CommitRecorder Check;
    struct Tee : TxEventObserver {
      TxEventObserver *A, *B;
      void onCommit(const CommitEvent &E) override {
        A->onCommit(E);
        B->onCommit(E);
      }
      void onAbort(const AbortEvent &E) override {
        A->onAbort(E);
        B->onAbort(E);
      }
    } Observer;
    Observer.A = &Gate;
    Observer.B = &Check;
    Stm.setGate(&Gate);
    Stm.setObserver(&Observer);
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < 3; ++T)
      Workers.emplace_back([&, T] {
        Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
        for (unsigned I = 0; I < 30; ++I)
          Txn.run(static_cast<TxId>(T), [&](Tl2Txn &Tx) {
            Tx.store(Counter, Tx.load(Counter) + 1);
          });
      });
    for (auto &W : Workers)
      W.join();
    return Check.takeSchedule();
  };

  EXPECT_EQ(ReplayOnce(), Schedule);
  EXPECT_EQ(ReplayOnce(), Schedule)
      << "two replays of one schedule must be identical";
}

TEST(ReplayTest, ScheduleLongerThanRunReleasesAllGatedThreads) {
  // Regression for the replay-divergence edge case: a schedule recorded
  // from a *longer* run than the one being replayed. After thread 0's 10
  // commits consume the first 10 schedule entries, the cursor points at
  // an entry ((0,0) again) that will never commit — threads 1 and 2 must
  // all be force-released after MaxGateRetries re-checks instead of
  // spinning at the gate forever.
  std::vector<TxThreadPair> Schedule;
  Schedule.insert(Schedule.end(), 20, packPair(0, 0));
  Schedule.insert(Schedule.end(), 10, packPair(1, 1));
  Schedule.insert(Schedule.end(), 10, packPair(2, 2));

  ReplayConfig RCfg;
  RCfg.MaxGateRetries = 3;
  Tl2Stm Stm;
  TVar<uint64_t> Counter{0};
  ReplayGate Gate(Schedule, RCfg);
  Stm.setGate(&Gate);
  Stm.setObserver(&Gate);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 3; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < 10; ++I)
        Txn.run(static_cast<TxId>(T),
                [&](Tl2Txn &Tx) { Tx.store(Counter, Tx.load(Counter) + 1); });
    });
  for (auto &W : Workers)
    W.join(); // joining at all is the point: nobody may hang at the gate

  EXPECT_EQ(Counter.loadDirect(), 30u);
  // Thread 0's commits are the only ones the schedule expects, so the
  // cursor stops exactly where the shorter run ran out of them; threads
  // 1 and 2 were released by divergence on every one of their starts
  // (aborted re-starts can add more).
  EXPECT_EQ(Gate.cursor(), 10u);
  EXPECT_GE(Gate.divergences(), 20u);
}

TEST(ReplayTest, ReplayProducesExactlyOneTtsSequence) {
  // The paper's framing of full determinism (DeSTM): a replayed run
  // exercises exactly one thread-transactional-state sequence. With zero
  // divergences the gate admits one transaction at a time, so a replay
  // has no aborts and its TTS sequence is the schedule itself, tuple for
  // tuple — and two replays of the same schedule agree exactly.
  Tl2Config Cfg;
  Cfg.PreemptShift = 5;
  std::vector<TxThreadPair> Schedule;
  {
    Tl2Stm Stm(Cfg);
    TVar<uint64_t> Counter{0};
    CommitRecorder Recorder;
    Schedule = runCounter(Stm, 3, 25, Counter, &Recorder);
  }

  auto ReplayTts = [&] {
    Tl2Stm Stm(Cfg);
    TVar<uint64_t> Counter{0};
    ReplayGate Gate(Schedule);
    TraceCollector Collector(3);
    struct Tee : TxEventObserver {
      TxEventObserver *A, *B;
      void onCommit(const CommitEvent &E) override {
        A->onCommit(E);
        B->onCommit(E);
      }
      void onAbort(const AbortEvent &E) override {
        A->onAbort(E);
        B->onAbort(E);
      }
    } Observer;
    Observer.A = &Gate;
    Observer.B = &Collector;
    Stm.setGate(&Gate);
    Stm.setObserver(&Observer);
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < 3; ++T)
      Workers.emplace_back([&, T] {
        Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
        for (unsigned I = 0; I < 25; ++I)
          Txn.run(static_cast<TxId>(T), [&](Tl2Txn &Tx) {
            Tx.store(Counter, Tx.load(Counter) + 1);
          });
      });
    for (auto &W : Workers)
      W.join();
    EXPECT_EQ(Gate.divergences(), 0u);
    return groupTuples(Collector.takeTrace(), Grouping::Sequence);
  };

  std::vector<StateTuple> First = ReplayTts();
  ASSERT_EQ(First.size(), Schedule.size());
  for (size_t I = 0; I < First.size(); ++I) {
    EXPECT_EQ(First[I].Commit, Schedule[I]);
    EXPECT_TRUE(First[I].Aborts.empty())
        << "a divergence-free replay is serial and cannot abort";
  }
  EXPECT_EQ(ReplayTts(), First)
      << "two replays must yield the one recorded TTS sequence";
}

TEST(ReplayTest, DivergentScheduleStillMakesProgress) {
  // A nonsense schedule (pairs that never run) must not deadlock: every
  // start is force-released after MaxGateRetries.
  std::vector<TxThreadPair> Bogus(50, packPair(99, 63));
  ReplayConfig Cfg;
  Cfg.MaxGateRetries = 3;
  Tl2Stm Stm;
  TVar<uint64_t> Counter{0};
  ReplayGate Gate(std::move(Bogus), Cfg);
  Stm.setGate(&Gate);
  Stm.setObserver(&Gate);

  Tl2Txn Txn(Stm, 0);
  for (unsigned I = 0; I < 20; ++I)
    Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(Counter, Tx.load(Counter) + 1); });
  EXPECT_EQ(Counter.loadDirect(), 20u);
  EXPECT_EQ(Gate.divergences(), 20u);
  EXPECT_EQ(Gate.cursor(), 0u) << "bogus schedule never advances";
}
