//===- tests/minivector_test.cpp - Hot-path container tests ---------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the per-transaction log containers (support/MiniVector.h,
// support/PtrIndexMap.h): the inline->heap boundary, aliasing writes
// across growth, self-assignment, pointer stability under reserve(), O(1)
// clear semantics, and the write-index's generation-stamped clear and
// rehash. These types carry the STM hot path, so they also run under the
// ASan/UBSan and TSan smoke sub-builds (tests/AsanSmoke.cmake,
// tests/TsanSmoke.cmake).
//
//===----------------------------------------------------------------------===//

#include "support/MiniVector.h"
#include "support/PtrIndexMap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

using namespace gstm;

namespace {

/// Instrumented payload: counts constructions/destructions so leak or
/// double-destroy bugs in the relocation paths surface as count skew.
struct Tracked {
  static int Live;
  int Value;
  explicit Tracked(int V = 0) : Value(V) { ++Live; }
  Tracked(const Tracked &O) : Value(O.Value) { ++Live; }
  Tracked(Tracked &&O) noexcept : Value(O.Value) { ++Live; }
  Tracked &operator=(const Tracked &O) = default;
  Tracked &operator=(Tracked &&O) noexcept = default;
  ~Tracked() { --Live; }
};
int Tracked::Live = 0;

} // namespace

TEST(MiniVectorTest, InlineToHeapBoundary) {
  MiniVector<uint64_t, 4> V;
  EXPECT_FALSE(V.onHeap());
  EXPECT_EQ(V.capacity(), 4u);
  for (uint64_t I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_FALSE(V.onHeap()) << "inline capacity must hold InlineN elements";
  V.push_back(4);
  EXPECT_TRUE(V.onHeap());
  ASSERT_EQ(V.size(), 5u);
  for (uint64_t I = 0; I < 5; ++I)
    EXPECT_EQ(V[I], I) << "growth must preserve contents";
}

TEST(MiniVectorTest, AliasingPushAcrossGrowth) {
  // v.push_back(v[0]) exactly at the full-buffer boundary: the source
  // element lives in the buffer being replaced, so a grow-then-copy
  // implementation reads freed memory. The element must be constructed
  // into the new buffer before the old one is released.
  MiniVector<std::string, 2> V;
  V.push_back(std::string(64, 'a')); // heap-backed payload: ASan-visible
  V.push_back(std::string(64, 'b'));
  ASSERT_EQ(V.size(), V.capacity());
  V.push_back(V[0]); // aliasing append across the inline->heap grow
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2], std::string(64, 'a'));
  // Again across a heap->heap grow.
  V.push_back(V[1]);
  ASSERT_EQ(V.size(), V.capacity());
  V.push_back(V[3]);
  EXPECT_EQ(V[4], std::string(64, 'b'));
}

TEST(MiniVectorTest, SelfAssignIsNoOp) {
  MiniVector<uint64_t, 2> V;
  for (uint64_t I = 0; I < 8; ++I)
    V.push_back(I);
  V = *&V; // deliberate self-assign; *& defeats -Wself-assign
  ASSERT_EQ(V.size(), 8u);
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(MiniVectorTest, PointerStabilityUnderReserve) {
  MiniVector<uint64_t, 4> V;
  V.reserve(64);
  EXPECT_TRUE(V.onHeap());
  V.push_back(1);
  uint64_t *P = &V[0];
  for (uint64_t I = 1; I < 64; ++I)
    V.push_back(I);
  EXPECT_EQ(P, &V[0])
      << "reserve()d capacity must give pointer stability until exceeded";
  EXPECT_EQ(V.capacity(), 64u);
}

TEST(MiniVectorTest, ClearRetainsCapacityAndStorage) {
  MiniVector<uint64_t, 4> V;
  for (uint64_t I = 0; I < 100; ++I)
    V.push_back(I);
  const size_t Cap = V.capacity();
  uint64_t *Buf = V.data();
  V.clear();
  EXPECT_EQ(V.size(), 0u);
  EXPECT_EQ(V.capacity(), Cap) << "clear() must not shrink";
  V.push_back(7);
  EXPECT_EQ(V.data(), Buf) << "retry loops must reuse the grown buffer";
}

TEST(MiniVectorTest, TruncateDropsTail) {
  MiniVector<uint64_t, 8> V;
  for (uint64_t I = 0; I < 6; ++I)
    V.push_back(I % 3); // 0 1 2 0 1 2
  std::sort(V.begin(), V.end());
  V.truncate(static_cast<size_t>(std::unique(V.begin(), V.end()) -
                                 V.begin()));
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 0u);
  EXPECT_EQ(V[1], 1u);
  EXPECT_EQ(V[2], 2u);
}

TEST(MiniVectorTest, NonTrivialLifetimesBalance) {
  ASSERT_EQ(Tracked::Live, 0);
  {
    MiniVector<Tracked, 2> V;
    for (int I = 0; I < 37; ++I)
      V.emplace_back(I);
    EXPECT_EQ(Tracked::Live, 37);
    V.pop_back();
    EXPECT_EQ(Tracked::Live, 36);
    V.truncate(10);
    EXPECT_EQ(Tracked::Live, 10);
    V.clear();
    EXPECT_EQ(Tracked::Live, 0);
    for (int I = 0; I < 5; ++I)
      V.emplace_back(I);
  }
  EXPECT_EQ(Tracked::Live, 0) << "destructor must destroy live elements";
}

TEST(MiniVectorTest, MoveStealsHeapBuffer) {
  MiniVector<uint64_t, 2> A;
  for (uint64_t I = 0; I < 32; ++I)
    A.push_back(I);
  const uint64_t *Buf = A.data();
  MiniVector<uint64_t, 2> B(std::move(A));
  EXPECT_EQ(B.data(), Buf) << "move must steal the heap block";
  EXPECT_EQ(B.size(), 32u);
  EXPECT_EQ(A.size(), 0u);
  EXPECT_FALSE(A.onHeap());
  A.push_back(9); // moved-from object stays usable
  EXPECT_EQ(A[0], 9u);
}

TEST(MiniVectorTest, ReverseIterationMatchesVector) {
  MiniVector<int, 4> V;
  std::vector<int> Ref;
  for (int I = 0; I < 20; ++I) {
    V.push_back(I);
    Ref.push_back(I);
  }
  std::vector<int> Got(V.rbegin(), V.rend());
  std::vector<int> Want(Ref.rbegin(), Ref.rend());
  EXPECT_EQ(Got, Want);
}

TEST(PtrIndexMapTest, InsertFindAcrossGrowth) {
  PtrIndexMap<uint32_t, 2> M; // 4 inline slots: grows almost immediately
  std::vector<uint64_t> Keys(100);
  for (size_t I = 0; I < Keys.size(); ++I) {
    M.insert(&Keys[I], static_cast<uint32_t>(I));
    // Every earlier key must survive each rehash.
    for (size_t J = 0; J <= I; ++J) {
      const uint32_t *V = M.find(&Keys[J]);
      ASSERT_NE(V, nullptr) << "lost key " << J << " after insert " << I;
      EXPECT_EQ(*V, J);
    }
  }
  EXPECT_EQ(M.size(), Keys.size());
  uint64_t Other = 0;
  EXPECT_EQ(M.find(&Other), nullptr);
}

TEST(PtrIndexMapTest, ClearIsGenerationalAndKeepsCapacity) {
  PtrIndexMap<uint32_t, 2> M;
  std::vector<uint64_t> Keys(50);
  for (size_t I = 0; I < Keys.size(); ++I)
    M.insert(&Keys[I], static_cast<uint32_t>(I));
  const size_t Cap = M.capacity();
  M.clear();
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.capacity(), Cap) << "clear() must not release the table";
  for (const uint64_t &K : Keys)
    EXPECT_EQ(M.find(&K), nullptr) << "stale entry visible after clear";
  // Old epoch's slots must not shadow fresh inserts.
  M.insert(&Keys[3], 77);
  const uint32_t *V = M.find(&Keys[3]);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, 77u);
  EXPECT_EQ(M.size(), 1u);
}

TEST(PtrIndexMapTest, ManyClearCyclesStayConsistent) {
  // The retry-loop usage pattern: insert a few, clear, repeat — across
  // enough cycles to cross the grown table's probe chains repeatedly.
  PtrIndexMap<uint32_t, 3> M;
  std::vector<uint64_t> Keys(16);
  for (int Cycle = 0; Cycle < 1000; ++Cycle) {
    M.clear();
    for (size_t I = 0; I < Keys.size(); ++I) {
      ASSERT_EQ(M.find(&Keys[I]), nullptr);
      M.insert(&Keys[I], static_cast<uint32_t>(Cycle + I));
      const uint32_t *V = M.find(&Keys[I]);
      ASSERT_NE(V, nullptr);
      ASSERT_EQ(*V, static_cast<uint32_t>(Cycle + I));
    }
  }
}

TEST(PtrIndexMapTest, LoadFactorStaysBounded) {
  PtrIndexMap<uint32_t, 2> M;
  std::vector<uint64_t> Keys(1000);
  for (size_t I = 0; I < Keys.size(); ++I)
    M.insert(&Keys[I], static_cast<uint32_t>(I));
  EXPECT_GE(M.capacity(), 2 * M.size())
      << "open addressing needs headroom to keep probes short";
}
