//===- tests/experiment_test.cpp - end-to-end pipeline tests ---------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Integration tests of the full paper pipeline: profile -> model ->
// analyze -> guided execution, on real workloads. These assert the
// *mechanics* (model non-empty, guidance engages, progress guaranteed,
// metrics computable) rather than specific performance numbers, which are
// inherently noisy.
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"

#include "core/Analyzer.h"
#include "core/Trace.h"
#include "core/Tsa.h"
#include "stamp/Kmeans.h"
#include "stamp/Registry.h"
#include "stamp/Ssca2.h"
#include "support/SplitMix64.h"
#include "synquake/Experiment.h"

#include <gtest/gtest.h>

using namespace gstm;

namespace {
ExperimentConfig quickConfig(unsigned Threads = 4) {
  ExperimentConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.ProfileRuns = 3;
  Cfg.MeasureRuns = 3;
  return Cfg;
}
} // namespace

TEST(ExperimentTest, KmeansPipelineEndToEnd) {
  KmeansWorkload W(KmeansParams::forSize(SizeClass::Small));
  ExperimentResult R = runExperiment(W, quickConfig());

  EXPECT_GT(R.Model.numStates(), 0u);
  EXPECT_GT(R.Model.numTransitions(), 0u);
  EXPECT_TRUE(R.Default.AllVerified);
  EXPECT_GT(R.Default.DistinctStates, 0u);
  ASSERT_EQ(R.Default.ThreadTimes.size(), 4u);
  for (const RunningStat &S : R.Default.ThreadTimes)
    EXPECT_EQ(S.count(), 3u);

  if (R.GuidedRan) {
    EXPECT_TRUE(R.Guided.AllVerified)
        << "guidance must never break workload correctness";
    EXPECT_EQ(R.varianceImprovementPercent().size(), 4u);
    EXPECT_GT(R.Guided.Guide.GateChecks, 0u);
  }
}

TEST(ExperimentTest, GuidedRunsRemainCorrectAcrossWorkloads) {
  // Force guidance on every workload (even analyzer-rejected ones) and
  // check correctness is preserved — guidance may only delay threads,
  // never change results.
  for (const char *Name : {"genome", "intruder", "vacation"}) {
    auto W = createStampWorkload(Name, SizeClass::Small);
    ExperimentConfig Cfg = quickConfig(4);
    Cfg.ProfileRuns = 2;
    Cfg.MeasureRuns = 2;
    Cfg.ForceGuided = true;
    ExperimentResult R = runExperiment(*W, Cfg);
    EXPECT_TRUE(R.GuidedRan);
    EXPECT_TRUE(R.Guided.AllVerified) << Name;
    EXPECT_TRUE(R.Default.AllVerified) << Name;
  }
}

TEST(ExperimentTest, Ssca2ModelRejectedByAnalyzer) {
  // The paper's analyzer rejects ssca2 (Table I / Figure 8): with
  // near-zero aborts its model degenerates to a handful of
  // singleton-commit states, "eliminating any scope for guidance". Only
  // the *verdict* is asserted on the live run: the state count itself
  // wobbles with host load (overload adds rare abort tuples — observed up
  // to ~37 at 8 threads), which made any live numeric bound flaky. The
  // tight state-count bound lives in Ssca2ShapedTraceStaysWithinStateBound
  // below, on a fixed-seed trace where it is deterministic.
  Ssca2Workload W(Ssca2Params::forSize(SizeClass::Small));
  ExperimentConfig Cfg = quickConfig(8);
  ExperimentResult R = runExperiment(W, Cfg);
  EXPECT_FALSE(R.Report.Optimizable);
  EXPECT_FALSE(R.GuidedRan);
}

TEST(ExperimentTest, Ssca2ShapedTraceStaysWithinStateBound) {
  // Deterministic re-statement of the 4 * Threads bound the live ssca2
  // test used to carry: a fixed-seed trace with ssca2's measured shape —
  // every thread committing at its one hot site with a conflict rate
  // under 0.5% (workloads_test measures ssca2-small at < 0.5%) — must
  // collapse to about one singleton tuple per thread. If groupTuples or
  // the Tsa ever start minting extra states from such a trace (e.g. by
  // splitting tuples on read-only commits), this catches it without any
  // scheduling noise.
  constexpr unsigned Threads = 8;
  constexpr unsigned CommitsPerThread = 500;
  SplitMix64 Rng(0x55ca2);
  std::vector<TraceEvent> Trace;
  uint64_t Seq = 0, Version = 0;
  for (unsigned Round = 0; Round < CommitsPerThread; ++Round)
    for (unsigned T = 0; T < Threads; ++T) {
      // ~0.3% of commits are preceded by a conflict abort on a
      // neighbouring thread, matching the measured near-zero abort rate.
      if (Rng.nextDouble() < 0.003) {
        TraceEvent A{};
        A.Seq = Seq++;
        A.Thread = static_cast<ThreadId>((T + 1) % Threads);
        A.Tx = 0;
        A.IsCommit = false;
        Trace.push_back(A);
      }
      TraceEvent C{};
      C.Seq = Seq++;
      C.Version = ++Version;
      C.Thread = static_cast<ThreadId>(T);
      C.Tx = 0;
      C.IsCommit = true;
      Trace.push_back(C);
    }

  Tsa Model;
  Model.addRun(groupTuples(Trace, Grouping::Sequence));
  EXPECT_LT(Model.numStates(), 4u * Threads)
      << "ssca2-shaped trace should be ~one singleton tuple per thread";

  // And the analyzer must reject it, as runExperiment does at this
  // thread count (Experiment.cpp defaults MinStates to 6 * Threads).
  AnalyzerConfig AC;
  AC.MinStates = 6 * Threads;
  EXPECT_FALSE(analyzeModel(Model, AC).Optimizable);
}

TEST(ExperimentTest, KmeansModelAcceptedByAnalyzer) {
  // kmeans is the paper's poster child for guidance (metric 26%/37%).
  KmeansWorkload W(KmeansParams::forSize(SizeClass::Small));
  ExperimentConfig Cfg = quickConfig(8);
  Cfg.ProfileRuns = 5;
  ExperimentResult R = runExperiment(W, Cfg);
  EXPECT_LT(R.Report.GuidanceMetricPercent, 60.0);
}

TEST(ExperimentTest, TrainOnMediumMeasureOnSmall) {
  // The paper trains on medium inputs and evaluates on others; the
  // two-workload overload supports exactly that.
  KmeansWorkload Train(KmeansParams::forSize(SizeClass::Medium));
  KmeansWorkload Test(KmeansParams::forSize(SizeClass::Small));
  ExperimentConfig Cfg = quickConfig(4);
  Cfg.ProfileRuns = 2;
  Cfg.MeasureRuns = 2;
  Cfg.ForceGuided = true;
  ExperimentResult R = runExperiment(Train, Test, Cfg);
  EXPECT_TRUE(R.Default.AllVerified);
  EXPECT_TRUE(R.Guided.AllVerified);
  // Cross-input states exist that training never saw; the controller
  // must have passed through unknown states without stalling.
  EXPECT_GT(R.Guided.Guide.UnknownStates + R.Guided.Guide.KnownStates, 0u);
}

TEST(ExperimentTest, MetricsComputeSaneValues) {
  KmeansWorkload W(KmeansParams::forSize(SizeClass::Small));
  ExperimentConfig Cfg = quickConfig(4);
  Cfg.ForceGuided = true;
  ExperimentResult R = runExperiment(W, Cfg);

  double Slowdown = R.slowdownFactor();
  EXPECT_GT(Slowdown, 0.0);
  EXPECT_LT(Slowdown, 100.0);
  double Nd = R.nondeterminismReductionPercent();
  EXPECT_LE(Nd, 100.0);
  EXPECT_EQ(R.tailImprovementPercent().size(), 4u);
  EXPECT_GE(R.defaultAbortRatio(), 0.0);
  EXPECT_LE(R.defaultAbortRatio(), 1.0);
}

TEST(SynQuakeExperimentTest, PipelineEndToEnd) {
  SynQuakeExperimentConfig Cfg;
  Cfg.Threads = 4;
  Cfg.Game.NumPlayers = 48;
  Cfg.Game.Frames = 10;
  Cfg.Game.Quest = QuestPattern::Quadrants4;
  Cfg.TrainFrames = 10;
  Cfg.ProfileRunsPerQuest = 1;
  Cfg.MeasureRuns = 2;

  SynQuakeExperimentResult R = runSynQuakeExperiment(Cfg);
  EXPECT_GT(R.Model.numStates(), 0u);
  EXPECT_TRUE(R.Default.AllVerified);
  EXPECT_TRUE(R.Guided.AllVerified);
  EXPECT_EQ(R.Default.FrameStddev.count(), 2u);
  EXPECT_GT(R.Guided.Guide.GateChecks, 0u);
  double Slowdown = R.slowdownFactor();
  EXPECT_GT(Slowdown, 0.0);
  EXPECT_LT(Slowdown, 100.0);
}
