//===- tests/lint_unit_test.cpp - stm_lint analyzer unit tests ------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// White-box coverage of the lint pipeline layers: lexer token/comment
// recovery, structural function/region extraction, rule scanning, call
// graph propagation, and suppression handling. The end-to-end behavior
// over realistic sources lives in tests/lint_fixtures/ (lint_test).
//
//===----------------------------------------------------------------------===//

#include "lint/Lexer.h"
#include "lint/Lint.h"
#include "lint/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace gstm::lint;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LintLexer, TokensCommentsAndLines) {
  TokenStream TS = lex("int x = 1; // trailing\n/* block */ y += 2;\n");
  ASSERT_FALSE(TS.Tokens.empty());
  EXPECT_EQ(TS.Tokens.front().Text, "int");
  EXPECT_EQ(TS.Tokens.front().Line, 1u);
  EXPECT_EQ(TS.Tokens.back().K, Token::Kind::End);

  ASSERT_EQ(TS.Comments.size(), 2u);
  EXPECT_EQ(TS.Comments[0].Line, 1u);
  EXPECT_EQ(TS.Comments[0].Text, " trailing");
  EXPECT_EQ(TS.Comments[1].Line, 2u);

  auto PlusEq = std::find_if(TS.Tokens.begin(), TS.Tokens.end(),
                             [](const Token &T) { return T.Text == "+="; });
  ASSERT_NE(PlusEq, TS.Tokens.end());
  EXPECT_EQ(PlusEq->Line, 2u);
}

TEST(LintLexer, DirectivesAndStringsAreOpaque) {
  TokenStream TS = lex("#include <new>\n"
                       "const char *S = \"malloc( rand(\";\n"
                       "auto R = R\"(delete X.load())\";\n");
  for (const Token &T : TS.Tokens) {
    EXPECT_NE(T.Text, "include");
    EXPECT_NE(T.Text, "malloc");
    EXPECT_NE(T.Text, "delete");
  }
  size_t Strings = 0;
  for (const Token &T : TS.Tokens)
    Strings += T.K == Token::Kind::String;
  EXPECT_EQ(Strings, 2u);
}

//===----------------------------------------------------------------------===//
// Structural parser
//===----------------------------------------------------------------------===//

TEST(LintParser, FindsFunctionsMethodsAndTxnParams) {
  TokenStream TS = lex("int add(int A, int B) { return A + B; }\n"
                       "struct Widget {\n"
                       "  void poke(Tl2Txn &Tx) { Tx.load(V); }\n"
                       "};\n"
                       "void Widget::other() {}\n");
  ParsedFile PF = parse(TS);
  ASSERT_EQ(PF.Functions.size(), 3u);

  EXPECT_EQ(PF.Functions[0].Qualified, "add");
  EXPECT_FALSE(PF.Functions[0].IsMethod);
  EXPECT_FALSE(PF.Functions[0].HasTxnParam);

  EXPECT_EQ(PF.Functions[1].Qualified, "Widget::poke");
  EXPECT_TRUE(PF.Functions[1].IsMethod);
  EXPECT_TRUE(PF.Functions[1].HasTxnParam);
  EXPECT_EQ(PF.Functions[1].Handle, "Tx");

  EXPECT_EQ(PF.Functions[2].Qualified, "Widget::other");
  EXPECT_TRUE(PF.Functions[2].IsMethod);
}

TEST(LintParser, FindsTxnLambdas) {
  TokenStream TS = lex("void f(Tl2Txn &Txn) {\n"
                       "  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, 1); });\n"
                       "  auto L = [](int V) { return V; };\n"
                       "}\n");
  ParsedFile PF = parse(TS);
  ASSERT_EQ(PF.TxnLambdas.size(), 1u);
  EXPECT_EQ(PF.TxnLambdas[0].Handle, "Tx");
  EXPECT_EQ(PF.TxnLambdas[0].Line, 2u);
  EXPECT_EQ(PF.TxnLambdas[0].EnclosingFunction, 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end pipeline on synthetic sources
//===----------------------------------------------------------------------===//

LintResult lintOne(std::string Text) {
  return lintSources({{"t.cpp", std::move(Text)}});
}

TEST(LintPipeline, DriverBodiesAreNotRegions) {
  LintResult R = lintOne("void drive(Tl2Txn &Txn) {\n"
                         "  printf(\"pre\\n\");\n" // driver: allowed
                         "  Txn.run(0, [&](Tl2Txn &Tx) { Tx.load(X); });\n"
                         "}\n");
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_EQ(R.Stats.Regions, 1u); // only the lambda
}

TEST(LintPipeline, R5PropagatesThroughCallChain) {
  LintResult R = lintOne("int leaf() { return rand(); }\n"
                         "int mid() { return leaf(); }\n"
                         "void body(Tl2Txn &Tx) { mid(); }\n");
  ASSERT_EQ(R.Diags.size(), 1u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::UnsafeCallee);
  EXPECT_EQ(R.Diags[0].Line, 3u);
  EXPECT_NE(R.Diags[0].Message.find("'mid'"), std::string::npos);
  EXPECT_NE(R.Diags[0].Message.find("rand"), std::string::npos);
}

TEST(LintPipeline, SameClassCallsShadowForeignNames) {
  // Both classes define step(); only Bad::step is unsafe. Good::tick's
  // unqualified call must bind to Good::step, not Bad::step.
  LintResult R = lintOne("struct Bad { int step() { return rand(); } };\n"
                         "struct Good {\n"
                         "  int step() { return 7; }\n"
                         "  int tick() { return step(); }\n"
                         "};\n"
                         "void body(Tl2Txn &Tx, Good &G) { G.tick(); }\n");
  EXPECT_TRUE(R.clean()) << toText(R);
}

TEST(LintPipeline, HandlePassedCalleesAreSanctioned) {
  LintResult R = lintOne("void helper(Tl2Txn &Tx) { Tx.load(X); }\n"
                         "void body(Tl2Txn &Tx) { helper(Tx); }\n");
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_EQ(R.Stats.Regions, 2u);
}

TEST(LintPipeline, SuppressionNeedsRationale) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) {\n"
                         "  // stm-lint: allow(R2) deliberate, test-only\n"
                         "  printf(\"x\\n\");\n"
                         "  // stm-lint: allow(R2)\n"
                         "  printf(\"y\\n\");\n"
                         "}\n");
  ASSERT_EQ(R.Diags.size(), 1u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::BadSuppression);
  EXPECT_EQ(R.Diags[0].Line, 4u);
  EXPECT_EQ(R.Stats.Suppressed, 2u);
}

TEST(LintPipeline, SuppressionRationaleMayWrap) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) {\n"
                         "  // stm-lint: allow(R2) a rationale long\n"
                         "  // enough to wrap onto a second line\n"
                         "  printf(\"x\\n\");\n"
                         "}\n");
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_EQ(R.Stats.Suppressed, 1u);
}

TEST(LintPipeline, JsonReportShape) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) { malloc(8); }\n");
  std::string J = toJson(R);
  EXPECT_NE(J.find("\"tool\":\"stm_lint\""), std::string::npos);
  EXPECT_NE(J.find("\"rule\":\"R2\""), std::string::npos);
  EXPECT_NE(J.find("\"line\":1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Engine rule profiles and the dataflow upgrade
//===----------------------------------------------------------------------===//

TEST(LintProfiles, HandleTypeSelectsProfile) {
  EXPECT_STREQ(profileForHandleType("Tl2Txn").Name, "tl2");
  EXPECT_STREQ(profileForHandleType("LibTxn").Name, "libtm");
  EXPECT_STREQ(profileForHandleType("OrecEagerTxn").Name, "orec-eager");
  EXPECT_STREQ(profileForHandleType("TlrwTxn").Name, "tlrw");
  EXPECT_STREQ(profileForHandleType("TwoPlTxn").Name, "2pl-undo");
  EXPECT_STREQ(profileForHandleType("").Name, "generic");
  // Template-parameter handle names mark engine plumbing: naked-access
  // and callee propagation off.
  const RuleProfile &P = profileForHandleType("TxnT");
  EXPECT_STREQ(P.Name, "engine-internal");
  EXPECT_FALSE(P.CheckNakedAccess);
  EXPECT_FALSE(P.CheckCallees);
  EXPECT_TRUE(profileForHandleType("TlrwTxn").UpgradeHazard);
  EXPECT_TRUE(profileForHandleType("TwoPlTxn").InPlaceUndo);
}

TEST(LintProfiles, AliasEscapeIsR4) {
  LintResult R = lintOne("Tl2Txn *Sink;\n"
                         "void body(Tl2Txn &Tx) {\n"
                         "  Tl2Txn &H = Tx;\n"
                         "  Sink = &H;\n"
                         "}\n");
  ASSERT_EQ(R.Diags.size(), 1u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::HandleEscape);
  EXPECT_EQ(R.Diags[0].Line, 4u);
}

TEST(LintProfiles, UpgradeHazardOnlyUnderTlrw) {
  const char *Body = "void body(%s &Tx) {\n"
                     "  auto V = Tx.load(&A);\n"
                     "  Tx.store(&A, V + 1);\n"
                     "}\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), Body, "TlrwTxn");
  LintResult Tlrw = lintOne(Buf);
  ASSERT_EQ(Tlrw.Diags.size(), 1u) << toText(Tlrw);
  EXPECT_EQ(Tlrw.Diags[0].R, Rule::UpgradeHazard);
  EXPECT_EQ(Tlrw.Diags[0].Line, 3u);

  std::snprintf(Buf, sizeof(Buf), Body, "Tl2Txn");
  LintResult Tl2 = lintOne(Buf);
  EXPECT_TRUE(Tl2.clean()) << toText(Tl2);
}

TEST(LintProfiles, ThrowIsIrrevocableUnderInPlaceUndo) {
  LintResult Orec = lintOne("struct Boom {};\n"
                            "void body(OrecEagerTxn &Tx) { throw Boom{}; }\n");
  ASSERT_EQ(Orec.Diags.size(), 1u) << toText(Orec);
  EXPECT_EQ(Orec.Diags[0].R, Rule::Irrevocable);

  // Bare rethrow only exists inside a catch; redo-log engines are exempt
  // entirely.
  LintResult Rethrow =
      lintOne("void body(OrecEagerTxn &Tx) { throw; }\n");
  EXPECT_TRUE(Rethrow.clean()) << toText(Rethrow);
  LintResult Tl2 = lintOne("struct Boom {};\n"
                           "void body(Tl2Txn &Tx) { throw Boom{}; }\n");
  EXPECT_TRUE(Tl2.clean()) << toText(Tl2);
}

TEST(LintParser, TemplateParamHandleAndRequiresClause) {
  TokenStream TS =
      lex("template <typename TxnT> static void apply(TxnT &Tx) {\n"
          "  Tx.store(W, 1);\n"
          "}\n"
          "template <template <typename> class PolicyT, typename TxnT>\n"
          "  requires(sizeof(TxnT) > 0 && !std::is_const_v<TxnT>)\n"
          "void constrained(TxnT &Tx) { Tx.load(W); }\n");
  ParsedFile PF = parse(TS);
  ASSERT_EQ(PF.Functions.size(), 2u);
  EXPECT_TRUE(PF.Functions[0].HasTxnParam);
  EXPECT_EQ(PF.Functions[0].Handle, "Tx");
  EXPECT_EQ(PF.Functions[0].HandleType, "TxnT");
  EXPECT_TRUE(PF.Functions[1].HasTxnParam);
  EXPECT_EQ(PF.Functions[1].HandleType, "TxnT");
}

//===----------------------------------------------------------------------===//
// Memory-ordering discipline pass
//===----------------------------------------------------------------------===//

TEST(LintOrder, TornPublishNeedsDominatingReleaseFence) {
  LintResult Bad =
      lintOne("// stm-order: publish(Meta) requires release-fence-before\n"
              "std::atomic<int> Meta;\n"
              "void pub() { Meta.store(1, std::memory_order_relaxed); }\n");
  ASSERT_EQ(Bad.Diags.size(), 1u) << toText(Bad);
  EXPECT_EQ(Bad.Diags[0].R, Rule::TornPublish);

  LintResult Fenced =
      lintOne("// stm-order: publish(Meta) requires release-fence-before\n"
              "std::atomic<int> Meta;\n"
              "void pub() {\n"
              "  std::atomic_thread_fence(std::memory_order_release);\n"
              "  Meta.store(1, std::memory_order_relaxed);\n"
              "}\n");
  EXPECT_TRUE(Fenced.clean()) << toText(Fenced);
}

TEST(LintOrder, FenceInsideBraceScopeDoesNotDominateAfterIt) {
  LintResult R =
      lintOne("// stm-order: publish(Meta) requires release-fence-before\n"
              "std::atomic<int> Meta;\n"
              "void pub(bool Fast) {\n"
              "  if (Fast) {\n"
              "    std::atomic_thread_fence(std::memory_order_release);\n"
              "  }\n"
              "  Meta.store(1, std::memory_order_relaxed);\n"
              "}\n");
  ASSERT_EQ(R.Diags.size(), 1u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::TornPublish);
  EXPECT_EQ(R.Diags[0].Line, 7u);
}

TEST(LintOrder, PairContractChecksBothSides) {
  LintResult R =
      lintOne("// stm-order: pair(Flag) acquire-load release-store\n"
              "std::atomic<int> Flag;\n"
              "int broken() {\n"
              "  Flag.store(1, std::memory_order_relaxed);\n"
              "  return Flag.load(std::memory_order_relaxed);\n"
              "}\n"
              "int paired() {\n"
              "  Flag.store(1, std::memory_order_release);\n"
              "  return Flag.load(std::memory_order_acquire);\n"
              "}\n"
              "int rmw() { return Flag.fetch_add(1, std::memory_order_relaxed); }\n");
  ASSERT_EQ(R.Diags.size(), 2u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::AcquireRelease);
  EXPECT_EQ(R.Diags[0].Line, 4u);
  EXPECT_EQ(R.Diags[1].Line, 5u);
  EXPECT_GE(R.Stats.AtomicOps, 5u);
  EXPECT_EQ(R.Stats.OrderContracts, 1u);
}

TEST(LintOrder, FenceContractBindsAndDetectsDrift) {
  LintResult Ok = lintOne(
      "void validate();\n"
      "void commit() {\n"
      "  // stm-order: fence(seq_cst) before(validate) label(test path)\n"
      "  std::atomic_thread_fence(std::memory_order_seq_cst);\n"
      "  validate();\n"
      "}\n");
  EXPECT_TRUE(Ok.clean()) << toText(Ok);

  LintResult Missing = lintOne(
      "void validate();\n"
      "void commit() {\n"
      "  // stm-order: fence(seq_cst) before(validate) label(test path)\n"
      "  validate();\n"
      "}\n");
  ASSERT_EQ(Missing.Diags.size(), 1u) << toText(Missing);
  EXPECT_EQ(Missing.Diags[0].R, Rule::FenceContract);
  EXPECT_NE(Missing.Diags[0].Message.find("test path"), std::string::npos);

  LintResult Drift = lintOne(
      "void validate();\n"
      "void commit() {\n"
      "  // stm-order: fence(seq_cst) before(validate) label(test path)\n"
      "  std::atomic_thread_fence(std::memory_order_seq_cst);\n"
      "}\n");
  ASSERT_EQ(Drift.Diags.size(), 1u) << toText(Drift);
  EXPECT_EQ(Drift.Diags[0].R, Rule::FenceContract);
  EXPECT_NE(Drift.Diags[0].Message.find("binds no call"), std::string::npos);
}

TEST(LintOrder, ContractNamesMatchReceiverChains) {
  // The contract name may be any identifier in the postfix chain left of
  // the store, so accessor-returned atomics are covered.
  LintResult R =
      lintOne("// stm-order: publish(stripe) requires release-fence-before\n"
              "struct T { std::atomic<int> &stripe(int); };\n"
              "void pub(T &S) {\n"
              "  S.stripe(3).store(1, std::memory_order_relaxed);\n"
              "}\n");
  ASSERT_EQ(R.Diags.size(), 1u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::TornPublish);
}

TEST(LintOrder, OrderFindingsFeedSuppressions) {
  LintResult R =
      lintOne("// stm-order: pair(Flag) acquire-load release-store\n"
              "std::atomic<int> Flag;\n"
              "int f() {\n"
              "  // stm-lint: allow(O2) read under an external lock\n"
              "  return Flag.load(std::memory_order_relaxed);\n"
              "}\n");
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_EQ(R.Stats.Suppressed, 1u);
}

//===----------------------------------------------------------------------===//
// SARIF and baseline rendering
//===----------------------------------------------------------------------===//

TEST(LintRender, SarifShape) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) { malloc(8); }\n");
  std::string S = toSarif(R);
  EXPECT_NE(S.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(S.find("\"name\":\"stm_lint\""), std::string::npos);
  EXPECT_NE(S.find("\"ruleId\":\"R2\""), std::string::npos);
  EXPECT_NE(S.find("\"startLine\":1"), std::string::npos);
  EXPECT_NE(S.find("\"uri\":\"t.cpp\""), std::string::npos);
  // The driver advertises the full rule table, O-rules included.
  EXPECT_NE(S.find("\"id\":\"O3\""), std::string::npos);
  EXPECT_NE(S.find("\"id\":\"R6\""), std::string::npos);
}

TEST(LintRender, BaselineRoundTripAndStaleness) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) { malloc(8); rand(); }\n");
  ASSERT_EQ(R.Diags.size(), 2u) << toText(R);

  Baseline B = parseBaseline(baselineText(R));
  ASSERT_EQ(B.Entries.size(), 2u);
  EXPECT_EQ(B.Entries[0].RuleId, "R2");
  EXPECT_EQ(B.Entries[0].File, "t.cpp");

  std::vector<BaselineEntry> Stale;
  applyBaseline(R, B, Stale);
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Stats.BaselineWaived, 2u);
  EXPECT_TRUE(Stale.empty());

  // A baseline entry whose finding was fixed must surface as stale, and
  // one entry may waive only one of two identical findings.
  LintResult R2 = lintOne("void body(Tl2Txn &Tx) { malloc(8); }\n");
  Baseline WithStale = parseBaseline(
      "# comment\nR3\tt.cpp\tgone finding\n" + baselineText(R2));
  std::vector<BaselineEntry> Stale2;
  applyBaseline(R2, WithStale, Stale2);
  EXPECT_TRUE(R2.clean());
  ASSERT_EQ(Stale2.size(), 1u);
  EXPECT_EQ(Stale2[0].RuleId, "R3");
}

#ifdef GSTM_LINT_SOURCE_DIR
//===----------------------------------------------------------------------===//
// Self-scan structural guarantees over the real tree
//===----------------------------------------------------------------------===//

TEST(LintSelfScan, EngineHeadersYieldRegions) {
  // The CRTP/template-template/requires-heavy engine headers must not
  // silently fall out of coverage: every policy's txn-handle members
  // parse into scannable regions.
  std::vector<SourceFile> Files;
  std::string Error;
  ASSERT_TRUE(
      collectSources(GSTM_LINT_SOURCE_DIR, {"src/engine"}, Files, Error))
      << Error;
  LintResult R = lintSources(Files);
  EXPECT_GE(R.Stats.Functions, 60u);
  EXPECT_GE(R.Stats.Regions, 12u)
      << "engine template members stopped parsing as regions";
  EXPECT_TRUE(R.clean()) << toText(R);
}

TEST(LintSelfScan, CommitPathContractsPresent) {
  // The store-buffering fence contracts (commit 5343567) must stay
  // pinned to all three single-fence commit paths.
  std::vector<SourceFile> Files;
  std::string Error;
  ASSERT_TRUE(collectSources(GSTM_LINT_SOURCE_DIR,
                             {"src/stm", "src/libtm", "src/engine"}, Files,
                             Error))
      << Error;
  LintResult R = lintSources(Files);
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_GE(R.Stats.OrderContracts, 8u);
  EXPECT_GE(R.Stats.Fences, 7u);
}
#endif // GSTM_LINT_SOURCE_DIR

TEST(LintPipeline, ExpectationsMatchBothWays) {
  ExpectOutcome Good = checkExpectations(
      {{"f.cpp", "void body(Tl2Txn &Tx) { malloc(8); } // expect-diag(R2)\n"}});
  EXPECT_TRUE(Good.ok());
  EXPECT_EQ(Good.Expected, 1u);
  EXPECT_EQ(Good.Matched, 1u);

  ExpectOutcome Missed = checkExpectations(
      {{"f.cpp", "void body(Tl2Txn &Tx) { Tx.load(X); } // expect-diag(R1)\n"}});
  ASSERT_EQ(Missed.Failures.size(), 1u);
  EXPECT_NE(Missed.Failures[0].find("missed expectation"), std::string::npos);

  ExpectOutcome Extra = checkExpectations(
      {{"f.cpp", "void body(Tl2Txn &Tx) { malloc(8); }\n"}});
  ASSERT_EQ(Extra.Failures.size(), 1u);
  EXPECT_NE(Extra.Failures[0].find("unexpected diagnostic"),
            std::string::npos);
}

} // namespace
