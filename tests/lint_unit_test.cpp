//===- tests/lint_unit_test.cpp - stm_lint analyzer unit tests ------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// White-box coverage of the lint pipeline layers: lexer token/comment
// recovery, structural function/region extraction, rule scanning, call
// graph propagation, and suppression handling. The end-to-end behavior
// over realistic sources lives in tests/lint_fixtures/ (lint_test).
//
//===----------------------------------------------------------------------===//

#include "lint/Lexer.h"
#include "lint/Lint.h"
#include "lint/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gstm::lint;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LintLexer, TokensCommentsAndLines) {
  TokenStream TS = lex("int x = 1; // trailing\n/* block */ y += 2;\n");
  ASSERT_FALSE(TS.Tokens.empty());
  EXPECT_EQ(TS.Tokens.front().Text, "int");
  EXPECT_EQ(TS.Tokens.front().Line, 1u);
  EXPECT_EQ(TS.Tokens.back().K, Token::Kind::End);

  ASSERT_EQ(TS.Comments.size(), 2u);
  EXPECT_EQ(TS.Comments[0].Line, 1u);
  EXPECT_EQ(TS.Comments[0].Text, " trailing");
  EXPECT_EQ(TS.Comments[1].Line, 2u);

  auto PlusEq = std::find_if(TS.Tokens.begin(), TS.Tokens.end(),
                             [](const Token &T) { return T.Text == "+="; });
  ASSERT_NE(PlusEq, TS.Tokens.end());
  EXPECT_EQ(PlusEq->Line, 2u);
}

TEST(LintLexer, DirectivesAndStringsAreOpaque) {
  TokenStream TS = lex("#include <new>\n"
                       "const char *S = \"malloc( rand(\";\n"
                       "auto R = R\"(delete X.load())\";\n");
  for (const Token &T : TS.Tokens) {
    EXPECT_NE(T.Text, "include");
    EXPECT_NE(T.Text, "malloc");
    EXPECT_NE(T.Text, "delete");
  }
  size_t Strings = 0;
  for (const Token &T : TS.Tokens)
    Strings += T.K == Token::Kind::String;
  EXPECT_EQ(Strings, 2u);
}

//===----------------------------------------------------------------------===//
// Structural parser
//===----------------------------------------------------------------------===//

TEST(LintParser, FindsFunctionsMethodsAndTxnParams) {
  TokenStream TS = lex("int add(int A, int B) { return A + B; }\n"
                       "struct Widget {\n"
                       "  void poke(Tl2Txn &Tx) { Tx.load(V); }\n"
                       "};\n"
                       "void Widget::other() {}\n");
  ParsedFile PF = parse(TS);
  ASSERT_EQ(PF.Functions.size(), 3u);

  EXPECT_EQ(PF.Functions[0].Qualified, "add");
  EXPECT_FALSE(PF.Functions[0].IsMethod);
  EXPECT_FALSE(PF.Functions[0].HasTxnParam);

  EXPECT_EQ(PF.Functions[1].Qualified, "Widget::poke");
  EXPECT_TRUE(PF.Functions[1].IsMethod);
  EXPECT_TRUE(PF.Functions[1].HasTxnParam);
  EXPECT_EQ(PF.Functions[1].Handle, "Tx");

  EXPECT_EQ(PF.Functions[2].Qualified, "Widget::other");
  EXPECT_TRUE(PF.Functions[2].IsMethod);
}

TEST(LintParser, FindsTxnLambdas) {
  TokenStream TS = lex("void f(Tl2Txn &Txn) {\n"
                       "  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, 1); });\n"
                       "  auto L = [](int V) { return V; };\n"
                       "}\n");
  ParsedFile PF = parse(TS);
  ASSERT_EQ(PF.TxnLambdas.size(), 1u);
  EXPECT_EQ(PF.TxnLambdas[0].Handle, "Tx");
  EXPECT_EQ(PF.TxnLambdas[0].Line, 2u);
  EXPECT_EQ(PF.TxnLambdas[0].EnclosingFunction, 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end pipeline on synthetic sources
//===----------------------------------------------------------------------===//

LintResult lintOne(std::string Text) {
  return lintSources({{"t.cpp", std::move(Text)}});
}

TEST(LintPipeline, DriverBodiesAreNotRegions) {
  LintResult R = lintOne("void drive(Tl2Txn &Txn) {\n"
                         "  printf(\"pre\\n\");\n" // driver: allowed
                         "  Txn.run(0, [&](Tl2Txn &Tx) { Tx.load(X); });\n"
                         "}\n");
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_EQ(R.Stats.Regions, 1u); // only the lambda
}

TEST(LintPipeline, R5PropagatesThroughCallChain) {
  LintResult R = lintOne("int leaf() { return rand(); }\n"
                         "int mid() { return leaf(); }\n"
                         "void body(Tl2Txn &Tx) { mid(); }\n");
  ASSERT_EQ(R.Diags.size(), 1u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::UnsafeCallee);
  EXPECT_EQ(R.Diags[0].Line, 3u);
  EXPECT_NE(R.Diags[0].Message.find("'mid'"), std::string::npos);
  EXPECT_NE(R.Diags[0].Message.find("rand"), std::string::npos);
}

TEST(LintPipeline, SameClassCallsShadowForeignNames) {
  // Both classes define step(); only Bad::step is unsafe. Good::tick's
  // unqualified call must bind to Good::step, not Bad::step.
  LintResult R = lintOne("struct Bad { int step() { return rand(); } };\n"
                         "struct Good {\n"
                         "  int step() { return 7; }\n"
                         "  int tick() { return step(); }\n"
                         "};\n"
                         "void body(Tl2Txn &Tx, Good &G) { G.tick(); }\n");
  EXPECT_TRUE(R.clean()) << toText(R);
}

TEST(LintPipeline, HandlePassedCalleesAreSanctioned) {
  LintResult R = lintOne("void helper(Tl2Txn &Tx) { Tx.load(X); }\n"
                         "void body(Tl2Txn &Tx) { helper(Tx); }\n");
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_EQ(R.Stats.Regions, 2u);
}

TEST(LintPipeline, SuppressionNeedsRationale) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) {\n"
                         "  // stm-lint: allow(R2) deliberate, test-only\n"
                         "  printf(\"x\\n\");\n"
                         "  // stm-lint: allow(R2)\n"
                         "  printf(\"y\\n\");\n"
                         "}\n");
  ASSERT_EQ(R.Diags.size(), 1u) << toText(R);
  EXPECT_EQ(R.Diags[0].R, Rule::BadSuppression);
  EXPECT_EQ(R.Diags[0].Line, 4u);
  EXPECT_EQ(R.Stats.Suppressed, 2u);
}

TEST(LintPipeline, SuppressionRationaleMayWrap) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) {\n"
                         "  // stm-lint: allow(R2) a rationale long\n"
                         "  // enough to wrap onto a second line\n"
                         "  printf(\"x\\n\");\n"
                         "}\n");
  EXPECT_TRUE(R.clean()) << toText(R);
  EXPECT_EQ(R.Stats.Suppressed, 1u);
}

TEST(LintPipeline, JsonReportShape) {
  LintResult R = lintOne("void body(Tl2Txn &Tx) { malloc(8); }\n");
  std::string J = toJson(R);
  EXPECT_NE(J.find("\"tool\":\"stm_lint\""), std::string::npos);
  EXPECT_NE(J.find("\"rule\":\"R2\""), std::string::npos);
  EXPECT_NE(J.find("\"line\":1"), std::string::npos);
}

TEST(LintPipeline, ExpectationsMatchBothWays) {
  ExpectOutcome Good = checkExpectations(
      {{"f.cpp", "void body(Tl2Txn &Tx) { malloc(8); } // expect-diag(R2)\n"}});
  EXPECT_TRUE(Good.ok());
  EXPECT_EQ(Good.Expected, 1u);
  EXPECT_EQ(Good.Matched, 1u);

  ExpectOutcome Missed = checkExpectations(
      {{"f.cpp", "void body(Tl2Txn &Tx) { Tx.load(X); } // expect-diag(R1)\n"}});
  ASSERT_EQ(Missed.Failures.size(), 1u);
  EXPECT_NE(Missed.Failures[0].find("missed expectation"), std::string::npos);

  ExpectOutcome Extra = checkExpectations(
      {{"f.cpp", "void body(Tl2Txn &Tx) { malloc(8); }\n"}});
  ASSERT_EQ(Extra.Failures.size(), 1u);
  EXPECT_NE(Extra.Failures[0].find("unexpected diagnostic"),
            std::string::npos);
}

} // namespace
