//===- tests/latency_histogram_test.cpp - LatencyHistogram unit tests ----===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "support/LatencyHistogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

using gstm::LatencyHistogram;

namespace {

TEST(LatencyHistogram, EmptyReportsZeroEverywhere) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.0), 0u);
  EXPECT_EQ(H.p50(), 0u);
  EXPECT_EQ(H.p99(), 0u);
  EXPECT_EQ(H.p999(), 0u);
}

TEST(LatencyHistogram, OneSampleIsExactAtEveryQuantile) {
  LatencyHistogram H;
  H.record(123456789);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.min(), 123456789u);
  EXPECT_EQ(H.max(), 123456789u);
  // With a single sample every quantile clamps into [min, max].
  EXPECT_EQ(H.quantile(0.0), 123456789u);
  EXPECT_EQ(H.p50(), 123456789u);
  EXPECT_EQ(H.p99(), 123456789u);
  EXPECT_EQ(H.quantile(1.0), 123456789u);
}

TEST(LatencyHistogram, BucketIndexRoundTripsUpperBound) {
  // Every bucket's inclusive upper bound must map back to that bucket,
  // and the next value must map to the following bucket — together this
  // pins the bucket boundaries exactly.
  for (size_t I = 0; I + 1 < LatencyHistogram::NumBuckets; ++I) {
    uint64_t Hi = LatencyHistogram::bucketUpperBound(I);
    EXPECT_EQ(LatencyHistogram::bucketIndex(Hi), I) << "bucket " << I;
    EXPECT_EQ(LatencyHistogram::bucketIndex(Hi + 1), I + 1)
        << "bucket " << I;
  }
}

TEST(LatencyHistogram, ExactUnitRegionHasZeroError) {
  // Values below 2^SubBucketBits sit in unit buckets: quantiles over a
  // distribution confined to that region are exact, not bucket-rounded.
  LatencyHistogram H;
  for (uint64_t V = 0; V < LatencyHistogram::SubBucketCount; ++V)
    for (int R = 0; R < 4; ++R)
      H.record(V);
  EXPECT_EQ(H.p50(), LatencyHistogram::SubBucketCount / 2 - 1);
  EXPECT_EQ(H.quantile(1.0), LatencyHistogram::SubBucketCount - 1);
}

TEST(LatencyHistogram, QuantileWithinBucketBoundsOfExactRank) {
  // Compare against exact nearest-rank quantiles over the raw samples:
  // the histogram answer must never be below the exact answer and never
  // above it by more than one sub-bucket width (2^-SubBucketBits
  // relative at the default 5 bits).
  std::mt19937_64 Rng(42);
  std::lognormal_distribution<double> Dist(10.0, 2.0); // ns-ish spread
  std::vector<uint64_t> Samples;
  LatencyHistogram H;
  for (int I = 0; I < 100000; ++I) {
    uint64_t V = static_cast<uint64_t>(Dist(Rng));
    Samples.push_back(V);
    H.record(V);
  }
  std::sort(Samples.begin(), Samples.end());
  for (double Q : {0.5, 0.9, 0.99, 0.999}) {
    size_t Rank = static_cast<size_t>(
        std::ceil(Q * static_cast<double>(Samples.size())));
    uint64_t Exact = Samples[Rank - 1];
    uint64_t Got = H.quantile(Q);
    EXPECT_GE(Got, Exact) << "q=" << Q;
    double RelErr = Exact ? (static_cast<double>(Got) - Exact) / Exact : 0;
    EXPECT_LE(RelErr, 1.0 / (1 << LatencyHistogram::SubBucketBits))
        << "q=" << Q;
  }
  EXPECT_EQ(H.min(), Samples.front());
  EXPECT_EQ(H.max(), Samples.back());
}

TEST(LatencyHistogram, P99IsNotTheMaxOnHeavyTailedData) {
  // The whole point of the histogram tier: with enough per-operation
  // samples, p99 sits strictly inside the distribution instead of
  // degenerating to the max the way 5-repeat nearest-rank does.
  LatencyHistogram H;
  for (int I = 0; I < 9900; ++I)
    H.record(1000);
  for (int I = 0; I < 99; ++I)
    H.record(50000);
  H.record(10000000); // one extreme outlier
  EXPECT_LT(H.p99(), H.max());
  EXPECT_GE(H.p99(), 1000u);
}

TEST(LatencyHistogram, OverflowBucketSaturatesAtRecordedMax) {
  LatencyHistogram H;
  uint64_t Huge = (uint64_t{1} << LatencyHistogram::MaxValueBits) + 12345;
  H.record(Huge);
  H.record(Huge + 7);
  EXPECT_EQ(H.overflowCount(), 2u);
  EXPECT_EQ(H.max(), Huge + 7);
  // The overflow bucket's nominal bound is UINT64_MAX; reported
  // quantiles clamp to the recorded max instead.
  EXPECT_EQ(H.quantile(1.0), Huge + 7);
  EXPECT_EQ(H.p50(), Huge + 7);
}

TEST(LatencyHistogram, MergeEqualsSingleWriterUnion) {
  // Cross-thread aggregation: T per-thread histograms merged must be
  // indistinguishable from one histogram fed all samples.
  constexpr int Threads = 4, PerThread = 20000;
  std::vector<LatencyHistogram> Shards(Threads);
  LatencyHistogram Reference;
  std::vector<std::vector<uint64_t>> Values(Threads);
  for (int T = 0; T < Threads; ++T) {
    std::mt19937_64 Rng(1000 + T);
    for (int I = 0; I < PerThread; ++I)
      Values[T].push_back(Rng() % 2000000);
  }
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      for (uint64_t V : Values[T])
        Shards[T].record(V);
    });
  for (std::thread &W : Workers)
    W.join();
  for (int T = 0; T < Threads; ++T)
    for (uint64_t V : Values[T])
      Reference.record(V);

  LatencyHistogram Merged;
  for (const LatencyHistogram &S : Shards)
    Merged.merge(S);
  EXPECT_EQ(Merged.count(), Reference.count());
  EXPECT_EQ(Merged.min(), Reference.min());
  EXPECT_EQ(Merged.max(), Reference.max());
  for (double Q : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(Merged.quantile(Q), Reference.quantile(Q)) << "q=" << Q;
}

TEST(LatencyHistogram, ResetReturnsToEmpty) {
  LatencyHistogram H;
  H.record(5);
  H.record(1u << 20);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.p99(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
}

} // namespace
