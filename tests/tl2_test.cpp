//===- tests/tl2_test.cpp - TL2 STM semantics tests ------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stm/Tl2.h"

#include "stm/TVar.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace gstm;

TEST(LockTableTest, EncodeDecodeVersion) {
  for (uint64_t V : {uint64_t{0}, uint64_t{1}, uint64_t{123456789},
                     (uint64_t{1} << 62) - 1}) {
    StripeState S = LockTable::decode(LockTable::encodeVersion(V));
    EXPECT_FALSE(S.Locked);
    EXPECT_EQ(S.Version, V);
  }
}

TEST(LockTableTest, EncodeDecodeLocked) {
  TxThreadPair P = packPair(12, 7);
  StripeState S = LockTable::decode(LockTable::encodeLocked(P));
  EXPECT_TRUE(S.Locked);
  EXPECT_EQ(S.Owner, P);
}

TEST(LockTableTest, IndexStableAndInRange) {
  LockTable T(10);
  int X[16];
  for (int &V : X) {
    size_t I = T.indexFor(&V);
    EXPECT_LT(I, T.size());
    EXPECT_EQ(I, T.indexFor(&V));
  }
}

TEST(CommitRingTest, RecordAndLookup) {
  CommitRing Ring(4);
  Ring.record(100, packPair(3, 1));
  TxThreadPair P = 0;
  ASSERT_TRUE(Ring.lookup(100, P));
  EXPECT_EQ(pairTx(P), 3);
  EXPECT_EQ(pairThread(P), 1);
}

TEST(CommitRingTest, OverwrittenEntryMisses) {
  CommitRing Ring(2); // 4 slots
  Ring.record(1, packPair(1, 1));
  Ring.record(5, packPair(2, 2)); // same slot as version 1
  TxThreadPair P = 0;
  EXPECT_FALSE(Ring.lookup(1, P));
  EXPECT_TRUE(Ring.lookup(5, P));
}

TEST(Tl2Test, SingleThreadReadWrite) {
  Tl2Stm Stm;
  TVar<uint64_t> X{5};
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(Tx.load(X), 5u);
    Tx.store(X, 9);
    EXPECT_EQ(Tx.load(X), 9u) << "read-after-write must see the buffer";
  });
  EXPECT_EQ(X.loadDirect(), 9u);
  EXPECT_EQ(Stm.stats().commits(), 1u);
  EXPECT_EQ(Stm.stats().aborts(), 0u);
}

TEST(Tl2Test, AbortedWritesNeverVisible) {
  Tl2Stm Stm;
  TVar<uint64_t> X{1};
  Tl2Txn Txn(Stm, 0);
  int Attempts = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    Tx.store(X, 99);
    if (++Attempts == 1)
      Tx.retryAbort();
  });
  EXPECT_EQ(Attempts, 2);
  EXPECT_EQ(X.loadDirect(), 99u);
  EXPECT_EQ(Stm.stats().aborts(), 1u);
}

TEST(Tl2Test, TypedVarsRoundTrip) {
  Tl2Stm Stm;
  TVar<double> D{1.5};
  TVar<int32_t> I{-7};
  TVar<float> F{2.25f};
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    Tx.store(D, Tx.load(D) * 2.0);
    Tx.store(I, Tx.load(I) - 1);
    Tx.store(F, Tx.load(F) + 0.5f);
  });
  EXPECT_DOUBLE_EQ(D.loadDirect(), 3.0);
  EXPECT_EQ(I.loadDirect(), -8);
  EXPECT_FLOAT_EQ(F.loadDirect(), 2.75f);
}

TEST(Tl2Test, ReadOnlyTransactionCommitsFlagged) {
  Tl2Stm Stm;
  TVar<uint64_t> X{3};

  struct Probe : TxEventObserver {
    uint64_t LastVersion = 1;
    bool LastReadOnly = false;
    void onCommit(const CommitEvent &E) override {
      LastVersion = E.Version;
      LastReadOnly = E.ReadOnly;
    }
    void onAbort(const AbortEvent &) override {}
  } Obs;
  Stm.setObserver(&Obs);

  Tl2Txn Txn(Stm, 0);
  uint64_t Seen = 0;
  Txn.run(0, [&](Tl2Txn &Tx) { Seen = Tx.load(X); });
  EXPECT_EQ(Seen, 3u);
  // Read-only commits are identified by the explicit flag; Version stays 0
  // only as a legacy convention that consumers must no longer rely on.
  EXPECT_TRUE(Obs.LastReadOnly);
  EXPECT_EQ(Obs.LastVersion, 0u);

  // A writer commit must not carry the flag.
  Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });
  EXPECT_FALSE(Obs.LastReadOnly);
  EXPECT_GT(Obs.LastVersion, 0u);
}

TEST(Tl2Test, WriteSetDedupesSameLocation) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t I = 1; I <= 100; ++I)
      Tx.store(X, I);
    EXPECT_EQ(Tx.writeSetSize(), 1u);
  });
  EXPECT_EQ(X.loadDirect(), 100u);
}

TEST(Tl2Test, ClockAdvancesPerWriterCommit) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};
  Tl2Txn Txn(Stm, 0);
  uint64_t Before = Stm.clock().sample();
  for (int I = 0; I < 5; ++I)
    Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });
  EXPECT_EQ(Stm.clock().sample(), Before + 5);
}

TEST(Tl2Test, ConcurrentCountersLoseNoUpdates) {
  Tl2Stm Stm;
  TVar<uint64_t> Counter{0};
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 200;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < PerThread; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) {
          Tx.store(Counter, Tx.load(Counter) + 1);
        });
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter.loadDirect(), uint64_t{Threads} * PerThread);
  EXPECT_EQ(Stm.stats().commits(), uint64_t{Threads} * PerThread);
}

TEST(Tl2Test, BankTransferConservesTotal) {
  // Classic serializability check: random transfers keep the total.
  Tl2Stm Stm;
  constexpr unsigned NumAccounts = 32;
  constexpr unsigned Threads = 6;
  constexpr unsigned Transfers = 300;
  std::vector<std::unique_ptr<TVar<int64_t>>> Accounts;
  for (unsigned I = 0; I < NumAccounts; ++I)
    Accounts.push_back(std::make_unique<TVar<int64_t>>(1000));

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      SplitMix64 Rng(T + 1);
      for (unsigned I = 0; I < Transfers; ++I) {
        unsigned From = Rng.nextBounded(NumAccounts);
        unsigned To = Rng.nextBounded(NumAccounts);
        int64_t Amount = static_cast<int64_t>(Rng.nextBounded(50));
        Txn.run(0, [&](Tl2Txn &Tx) {
          Tx.store(*Accounts[From], Tx.load(*Accounts[From]) - Amount);
          Tx.store(*Accounts[To], Tx.load(*Accounts[To]) + Amount);
        });
      }
    });
  for (auto &W : Workers)
    W.join();

  int64_t Total = 0;
  for (auto &A : Accounts)
    Total += A->loadDirect();
  EXPECT_EQ(Total, int64_t{NumAccounts} * 1000);
}

TEST(Tl2Test, SnapshotIsolationNeverSeesTornPairs) {
  // Writers keep X == Y; readers must never observe X != Y.
  Tl2Stm Stm;
  TVar<uint64_t> X{0}, Y{0};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    Tl2Txn Txn(Stm, 0);
    for (unsigned I = 1; I <= 400; ++I)
      Txn.run(0, [&](Tl2Txn &Tx) {
        Tx.store(X, I);
        Tx.store(Y, I);
      });
    Stop.store(true);
  });
  std::thread Reader([&] {
    Tl2Txn Txn(Stm, 1);
    while (!Stop.load()) {
      uint64_t A = 0, B = 0;
      Txn.run(1, [&](Tl2Txn &Tx) {
        A = Tx.load(X);
        B = Tx.load(Y);
      });
      if (A != B)
        Violations.fetch_add(1);
    }
  });
  Writer.join();
  Reader.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(X.loadDirect(), 400u);
}

TEST(Tl2Test, AbortEventsCarryCausalAttribution) {
  // Force a conflict and check that the victim's abort names the
  // committer.
  Tl2Stm Stm;
  TVar<uint64_t> X{0};

  struct Probe : TxEventObserver {
    std::atomic<uint64_t> KnownCause{0};
    std::atomic<uint64_t> TotalAborts{0};
    void onCommit(const CommitEvent &) override {}
    void onAbort(const AbortEvent &E) override {
      TotalAborts.fetch_add(1);
      if (E.Kind == AbortCauseKind::KnownCommitter)
        KnownCause.fetch_add(1);
    }
  } Obs;
  Stm.setObserver(&Obs);

  constexpr unsigned Threads = 8;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < 300; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) {
          Tx.store(X, Tx.load(X) + 1);
        });
    });
  for (auto &W : Workers)
    W.join();

  EXPECT_EQ(X.loadDirect(), 8u * 300u);
  if (Obs.TotalAborts.load() > 0) {
    // Nearly all aborts should resolve their cause through the lock
    // owner or the commit ring.
    EXPECT_GT(Obs.KnownCause.load() * 10, Obs.TotalAborts.load() * 9)
        << "known causes: " << Obs.KnownCause.load() << " of "
        << Obs.TotalAborts.load();
  }
}

TEST(Tl2Test, GateInvokedOncePerAttempt) {
  Tl2Stm Stm;
  TVar<uint64_t> X{0};

  struct CountingGate : StartGate {
    std::atomic<uint64_t> Calls{0};
    void onTxStart(ThreadId, TxId) override { Calls.fetch_add(1); }
  } Gate;
  Stm.setGate(&Gate);

  Tl2Txn Txn(Stm, 0);
  int Attempts = 0;
  Txn.run(3, [&](Tl2Txn &Tx) {
    Tx.store(X, 1);
    if (++Attempts < 3)
      Tx.retryAbort();
  });
  EXPECT_EQ(Gate.Calls.load(), 3u);
}

TEST(Tl2Test, LargeReadAndWriteSets) {
  Tl2Stm Stm;
  constexpr unsigned N = 512;
  std::vector<std::unique_ptr<TVar<uint64_t>>> Vars;
  for (unsigned I = 0; I < N; ++I)
    Vars.push_back(std::make_unique<TVar<uint64_t>>(I));

  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    uint64_t Sum = 0;
    for (auto &V : Vars)
      Sum += Tx.load(*V);
    for (auto &V : Vars)
      Tx.store(*V, Sum);
  });
  for (auto &V : Vars)
    EXPECT_EQ(V->loadDirect(), uint64_t{N} * (N - 1) / 2);
}

TEST(Tl2Test, BackoffModesAllMakeProgress) {
  for (BackoffKind Kind :
       {BackoffKind::None, BackoffKind::Yield, BackoffKind::Exponential}) {
    Tl2Config Cfg;
    Cfg.Backoff = Kind;
    Tl2Stm Stm(Cfg);
    TVar<uint64_t> X{0};
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < 4; ++T)
      Workers.emplace_back([&, T] {
        Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
        for (unsigned I = 0; I < 100; ++I)
          Txn.run(0,
                  [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });
      });
    for (auto &W : Workers)
      W.join();
    EXPECT_EQ(X.loadDirect(), 400u);
  }
}
