# End-to-end smoke of the model_ctl CLI (tools/model_ctl.cpp): profiles a
# tiny kmeans model, saves it, inspects it, validates it, and diffs it
# against itself — the diff of a model against its own file must exit 0
# (structural identity goes through the canonical serialized form, so this
# also smokes the byte-identical round trip on a real trained model).
# Invoked by ctest via the `model_ctl_smoke` test:
#
#   cmake -DMODEL_CTL=<path> -DWORK_DIR=<dir> -P ModelCtlSmoke.cmake

if(NOT MODEL_CTL OR NOT WORK_DIR)
  message(FATAL_ERROR
      "usage: cmake -DMODEL_CTL=<bin> -DWORK_DIR=<dir> -P ModelCtlSmoke.cmake")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(MODEL ${WORK_DIR}/smoke.tsa)

execute_process(
  COMMAND ${MODEL_CTL} save --workload=kmeans --size=small --threads=4
          --runs=2 --out=${MODEL} --store=${WORK_DIR}/store
  RESULT_VARIABLE SaveRc)
if(NOT SaveRc EQUAL 0)
  message(FATAL_ERROR "model_ctl save failed (${SaveRc})")
endif()
if(NOT EXISTS ${MODEL})
  message(FATAL_ERROR "model_ctl save produced no file at ${MODEL}")
endif()

execute_process(
  COMMAND ${MODEL_CTL} info ${MODEL}
  RESULT_VARIABLE InfoRc)
if(NOT InfoRc EQUAL 0)
  message(FATAL_ERROR "model_ctl info failed (${InfoRc})")
endif()

execute_process(
  COMMAND ${MODEL_CTL} load ${MODEL}
  RESULT_VARIABLE LoadRc)
if(NOT LoadRc EQUAL 0)
  message(FATAL_ERROR "model_ctl load (validate) failed (${LoadRc})")
endif()

execute_process(
  COMMAND ${MODEL_CTL} list --store=${WORK_DIR}/store
  RESULT_VARIABLE ListRc)
if(NOT ListRc EQUAL 0)
  message(FATAL_ERROR "model_ctl list failed (${ListRc})")
endif()

# A model trained for the sharded tier must publish under a different
# store key than the unsharded save above: equal keys would let a
# 4-shard model silently warm-start an unsharded run. The save output
# names the container path, so distinct keys show as distinct paths.
execute_process(
  COMMAND ${MODEL_CTL} save --workload=kmeans --size=small --threads=4
          --runs=1 --shards=4 --store=${WORK_DIR}/store
  OUTPUT_VARIABLE ShardSaveOut
  RESULT_VARIABLE ShardSaveRc)
if(NOT ShardSaveRc EQUAL 0)
  message(FATAL_ERROR "model_ctl save --shards=4 failed (${ShardSaveRc})")
endif()
string(REGEX MATCH "published [^ ]+ -> ([^\n]+)" _ "${ShardSaveOut}")
set(SHARD_PATH "${CMAKE_MATCH_1}")
execute_process(
  COMMAND ${MODEL_CTL} save --workload=kmeans --size=small --threads=4
          --runs=1 --store=${WORK_DIR}/store
  OUTPUT_VARIABLE PlainSaveOut
  RESULT_VARIABLE PlainSaveRc)
if(NOT PlainSaveRc EQUAL 0)
  message(FATAL_ERROR "model_ctl save (unsharded rekey) failed "
      "(${PlainSaveRc})")
endif()
string(REGEX MATCH "published [^ ]+ -> ([^\n]+)" _ "${PlainSaveOut}")
set(PLAIN_PATH "${CMAKE_MATCH_1}")
if(NOT SHARD_PATH OR NOT PLAIN_PATH)
  message(FATAL_ERROR "model_ctl save did not report published paths")
endif()
if(SHARD_PATH STREQUAL PLAIN_PATH)
  message(FATAL_ERROR "--shards=4 and the unsharded save published under "
      "the same store key: ${SHARD_PATH}")
endif()

# Acceptance check: a model diffed against itself reports identity.
execute_process(
  COMMAND ${MODEL_CTL} diff ${MODEL} ${MODEL}
  RESULT_VARIABLE DiffRc)
if(NOT DiffRc EQUAL 0)
  message(FATAL_ERROR "model_ctl diff of a model against itself "
      "must exit 0, got ${DiffRc}")
endif()

# And a corrupted copy must be refused with a typed error (exit 2), never
# accepted and never a crash.
file(READ ${MODEL} ModelHex HEX)
string(LENGTH "${ModelHex}" HexLen)
math(EXPR TruncLen "${HexLen} / 2")
# Keep an even number of hex digits (whole bytes).
math(EXPR TruncLen "${TruncLen} - (${TruncLen} % 2)")
string(SUBSTRING "${ModelHex}" 0 ${TruncLen} TruncHex)
set(BROKEN ${WORK_DIR}/broken.tsa)
file(WRITE ${BROKEN} "")
string(REGEX MATCHALL ".." Bytes "${TruncHex}")
foreach(Byte ${Bytes})
  string(APPEND BrokenAscii "\\x${Byte}")
endforeach()
# CMake cannot write raw bytes portably from hex; round-trip through
# configure-time printf instead.
execute_process(
  COMMAND printf "%b" "${BrokenAscii}"
  OUTPUT_FILE ${BROKEN}
  RESULT_VARIABLE PrintfRc)
if(PrintfRc EQUAL 0)
  execute_process(
    COMMAND ${MODEL_CTL} info ${BROKEN}
    RESULT_VARIABLE BrokenRc)
  if(BrokenRc EQUAL 0)
    message(FATAL_ERROR "model_ctl accepted a truncated model file")
  endif()
else()
  message(STATUS "printf unavailable; skipping truncated-file check")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
message(STATUS "model_ctl smoke passed")
