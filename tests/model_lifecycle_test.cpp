//===- tests/model_lifecycle_test.cpp - model lifecycle subsystem tests ----===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The model lifecycle subsystem (src/model) end to end: versioned
// serialization (byte-identical round trips, typed rejection of every
// corruption mode, JSON interchange), the key-stamped on-disk store,
// commit-stream online learning with EWMA forgetting, drift-driven gate
// disarm/re-arm, and the warm-start experiment pipeline that proves a
// persisted model guides with zero profiling transactions.
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "core/GuideController.h"
#include "core/ModelMath.h"
#include "model/Drift.h"
#include "model/OnlineLearner.h"
#include "model/Serialize.h"
#include "model/Store.h"
#include "shard/ShardConfig.h"
#include "stamp/Kmeans.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

using namespace gstm;

namespace {

StateTuple makeTuple(TxId CommitTx, ThreadId CommitThread,
                     std::initializer_list<std::pair<TxId, ThreadId>>
                         Aborts = {}) {
  StateTuple S;
  S.Commit = packPair(CommitTx, CommitThread);
  for (auto [Tx, T] : Aborts)
    S.Aborts.push_back(packPair(Tx, T));
  S.canonicalize();
  return S;
}

/// Random but canonical tuple stream, the raw material for randomized
/// serialization properties.
std::vector<StateTuple> randomTuples(SplitMix64 &Rng, size_t N,
                                     unsigned Threads, unsigned Sites) {
  std::vector<StateTuple> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    StateTuple S;
    S.Commit = packPair(static_cast<TxId>(Rng.nextBounded(Sites)),
                        static_cast<ThreadId>(Rng.nextBounded(Threads)));
    size_t Aborts = Rng.nextBounded(4);
    for (size_t A = 0; A < Aborts; ++A)
      S.Aborts.push_back(
          packPair(static_cast<TxId>(Rng.nextBounded(Sites)),
                   static_cast<ThreadId>(Rng.nextBounded(Threads))));
    S.canonicalize();
    Out.push_back(std::move(S));
  }
  return Out;
}

Tsa randomModel(uint64_t Seed, int Runs = 3, size_t TuplesPerRun = 120) {
  SplitMix64 Rng(Seed);
  Tsa Model;
  for (int R = 0; R < Runs; ++R)
    Model.addRun(randomTuples(Rng, TuplesPerRun, 6, 4));
  return Model;
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// Satellite: shared probability math (core/ModelMath.h)
//===----------------------------------------------------------------------===//

TEST(ModelMathTest, NormalizationMatchesDirectRatio) {
  // Pin the extraction: the shared helper must reproduce exactly what
  // Tsa::successors historically computed — Count / outFrequency, sorted
  // by descending probability.
  Tsa Model = randomModel(0x11a753);
  for (StateId S = 0; S < Model.numStates(); ++S) {
    auto Succ = Model.successors(S);
    for (size_t I = 0; I < Succ.size(); ++I) {
      EXPECT_DOUBLE_EQ(Succ[I].Probability,
                       static_cast<double>(Succ[I].Count) /
                           static_cast<double>(Model.outFrequency(S)));
      if (I > 0) {
        EXPECT_GE(Succ[I - 1].Probability, Succ[I].Probability);
      }
    }
  }
}

TEST(ModelMathTest, SelectionAgreesWithAnalyzerHelper) {
  Tsa Model = randomModel(0xabcde);
  for (StateId S = 0; S < Model.numStates(); ++S) {
    auto ViaAnalyzer = highProbabilitySuccessors(Model, S, 4.0);
    auto ViaShared = selectHighProbability(Model.successors(S), 4.0);
    ASSERT_EQ(ViaAnalyzer.size(), ViaShared.size());
    for (size_t I = 0; I < ViaAnalyzer.size(); ++I) {
      EXPECT_EQ(ViaAnalyzer[I].Dest, ViaShared[I].Dest);
      EXPECT_DOUBLE_EQ(ViaAnalyzer[I].Probability,
                       ViaShared[I].Probability);
    }
  }
}

TEST(ModelMathTest, PrefixRespectsThreshold) {
  std::vector<TsaEdge> Edges = {{0, 8, 0.0}, {1, 2, 0.0}, {2, 1, 0.0}};
  normalizeEdgeProbabilities(Edges);
  // Pmax = 8/11; with Tfactor 4 the cut is 2/11: keeps 8 and 2, drops 1.
  EXPECT_EQ(highProbabilityPrefix(Edges, 4.0), 2u);
  // Tfactor 1 keeps only the maximum.
  EXPECT_EQ(highProbabilityPrefix(Edges, 1.0), 1u);
}

//===----------------------------------------------------------------------===//
// Serialization: round trips
//===----------------------------------------------------------------------===//

TEST(SerializeTest, RoundTripIsByteIdentical) {
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    Tsa Model = randomModel(Seed * 0x9e3779b97f4a7c15ULL);
    std::string Bytes = serializeModel(Model);
    ModelLoadResult Loaded = deserializeModel(Bytes);
    ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;
    EXPECT_EQ(serializeModel(*Loaded.Model), Bytes)
        << "serialize -> load -> serialize must be byte-identical";
  }
}

TEST(SerializeTest, RoundTripPreservesProbabilitiesExactly) {
  Tsa Model = randomModel(0x5eed);
  ModelLoadResult Loaded = deserializeModel(serializeModel(Model));
  ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;
  ASSERT_EQ(Loaded.Model->numStates(), Model.numStates());
  EXPECT_EQ(Loaded.Model->numTransitions(), Model.numTransitions());
  for (StateId S = 0; S < Model.numStates(); ++S) {
    EXPECT_EQ(Model.state(S), Loaded.Model->state(S));
    auto A = Model.successors(S);
    auto B = Loaded.Model->successors(S);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I < A.size(); ++I) {
      EXPECT_EQ(A[I].Dest, B[I].Dest);
      EXPECT_EQ(A[I].Count, B[I].Count);
      // Probabilities are derived, never stored: equal frequencies must
      // reproduce them bit-exactly.
      EXPECT_DOUBLE_EQ(A[I].Probability, B[I].Probability);
    }
  }
}

TEST(SerializeTest, EmptyModelRoundTrips) {
  Tsa Empty;
  ModelLoadResult Loaded = deserializeModel(serializeModel(Empty));
  ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;
  EXPECT_EQ(Loaded.Model->numStates(), 0u);
  EXPECT_EQ(Loaded.Model->numTransitions(), 0u);
}

TEST(SerializeTest, JsonRoundTripPreservesModel) {
  Tsa Model = randomModel(0x7501);
  std::string Doc = modelToJson(Model);
  ModelLoadResult Loaded = modelFromJson(Doc);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;
  // Canonical binary form is the equality oracle.
  EXPECT_EQ(serializeModel(*Loaded.Model), serializeModel(Model));
}

//===----------------------------------------------------------------------===//
// Serialization: typed failure taxonomy
//===----------------------------------------------------------------------===//

TEST(SerializeTest, TypedErrorsPerFailureMode) {
  Tsa Model = randomModel(0xdead);
  std::string Bytes = serializeModel(Model);

  EXPECT_EQ(deserializeModel("").Status, ModelIoStatus::Truncated);
  EXPECT_EQ(deserializeModel("junk").Status, ModelIoStatus::Truncated);
  EXPECT_EQ(deserializeModel("twelve bytes!").Status,
            ModelIoStatus::BadMagic);

  std::string Wrong = Bytes;
  Wrong[0] ^= 0x01; // magic
  EXPECT_EQ(deserializeModel(Wrong).Status, ModelIoStatus::BadMagic);

  std::string Versioned = Bytes;
  Versioned[8] ^= 0x40; // version field
  EXPECT_EQ(deserializeModel(Versioned).Status, ModelIoStatus::BadVersion);

  std::string Flipped = Bytes;
  Flipped.back() ^= 0x10; // payload byte
  EXPECT_EQ(deserializeModel(Flipped).Status,
            ModelIoStatus::ChecksumMismatch);

  EXPECT_EQ(deserializeModel(Bytes.substr(0, Bytes.size() / 2)).Status,
            ModelIoStatus::Truncated);

  std::string Trailing = Bytes + "x";
  EXPECT_EQ(deserializeModel(Trailing).Status, ModelIoStatus::Corrupt);

  EXPECT_EQ(loadModel("/nonexistent/dir/model.bin").Status,
            ModelIoStatus::FileNotFound);
}

TEST(SerializeTest, JsonRejectsMalformedDocuments) {
  EXPECT_EQ(modelFromJson("not json").Status, ModelIoStatus::Corrupt);
  EXPECT_EQ(modelFromJson("{}").Status, ModelIoStatus::BadMagic);
  EXPECT_EQ(modelFromJson("{\"format\":\"gstm-tsa\",\"version\":99,"
                          "\"total_transitions\":0,\"states\":[],"
                          "\"edges\":[]}")
                .Status,
            ModelIoStatus::BadVersion);
  // Edge pointing outside the state set.
  EXPECT_EQ(modelFromJson("{\"format\":\"gstm-tsa\",\"version\":1,"
                          "\"total_transitions\":1,\"states\":"
                          "[{\"commit\":1,\"aborts\":[]}],\"edges\":"
                          "[[{\"dest\":7,\"count\":1}]]}")
                .Status,
            ModelIoStatus::Corrupt);
  // Declared transition total disagreeing with the edges.
  EXPECT_EQ(modelFromJson("{\"format\":\"gstm-tsa\",\"version\":1,"
                          "\"total_transitions\":5,\"states\":"
                          "[{\"commit\":1,\"aborts\":[]}],\"edges\":"
                          "[[{\"dest\":0,\"count\":1}]]}")
                .Status,
            ModelIoStatus::Corrupt);
}

TEST(SerializeFuzzTest, EveryMutationYieldsTypedErrorNeverUB) {
  // Seeded corruption fuzz (the ASan/UBSan smoke builds re-run this
  // suite): any single bit flip or truncation of a valid container must
  // come back as a clean typed error. The reference bytes cover states,
  // abort sets and edges, so every structural field gets mutated.
  Tsa Model = randomModel(0xf022);
  std::string Bytes = serializeModel(Model);
  SplitMix64 Rng(0xb17f11b5);

  for (int Trial = 0; Trial < 600; ++Trial) {
    std::string Mutated = Bytes;
    if (Rng.nextBounded(2) == 0) {
      size_t Byte = Rng.nextBounded(Mutated.size());
      Mutated[Byte] ^= static_cast<char>(1u << Rng.nextBounded(8));
    } else {
      Mutated.resize(Rng.nextBounded(Mutated.size()));
    }
    ModelLoadResult R = deserializeModel(Mutated);
    EXPECT_NE(R.Status, ModelIoStatus::Ok)
        << "mutation #" << Trial << " was accepted";
    EXPECT_FALSE(R.Model.has_value());
    EXPECT_FALSE(R.Detail.empty());
  }
}

TEST(SerializeFuzzTest, RandomGarbageNeverCrashesTheLoader) {
  SplitMix64 Rng(0x6a2ba6e);
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Garbage(Rng.nextBounded(512), '\0');
    for (char &C : Garbage)
      C = static_cast<char>(Rng.next());
    ModelLoadResult R = deserializeModel(Garbage);
    EXPECT_NE(R.Status, ModelIoStatus::Ok);
    (void)modelFromJson(Garbage); // must not crash either
  }
}

//===----------------------------------------------------------------------===//
// Store
//===----------------------------------------------------------------------===//

namespace {

ModelKey testKey(const std::string &Workload = "kmeans",
                 unsigned Threads = 8) {
  ModelKey K;
  K.Workload = Workload;
  K.Threads = Threads;
  K.ConfigHash = hashConfigString("unit-test-config");
  return K;
}

struct StoreFixture : ::testing::Test {
  void SetUp() override {
    Dir = tempPath("gstm_store_" +
                   std::to_string(
                       ::testing::UnitTest::GetInstance()->random_seed()) +
                   "_" + ::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name());
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }
  std::string Dir;
};

} // namespace

TEST_F(StoreFixture, SaveLoadRoundTripUnderKey) {
  ModelStore Store(Dir);
  Tsa Model = randomModel(0x570e);
  ModelKey Key = testKey();
  std::string Detail;
  ASSERT_EQ(Store.save(Key, Model, &Detail), ModelIoStatus::Ok) << Detail;

  EXPECT_TRUE(Store.contains(Key));
  ModelLoadResult Loaded = Store.load(Key);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;
  EXPECT_EQ(serializeModel(*Loaded.Model), serializeModel(Model));

  std::vector<StoreEntry> Entries = Store.list();
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Key.Workload, "kmeans");
  EXPECT_EQ(Entries[0].Key.Threads, 8u);
  EXPECT_EQ(Entries[0].Key.ConfigHash, Key.ConfigHash);
  EXPECT_EQ(Entries[0].NumStates, Model.numStates());
}

TEST_F(StoreFixture, MissingEntryIsFileNotFound) {
  ModelStore Store(Dir);
  EXPECT_EQ(Store.load(testKey()).Status, ModelIoStatus::FileNotFound);
  EXPECT_FALSE(Store.contains(testKey()));
  EXPECT_TRUE(Store.list().empty());
}

TEST_F(StoreFixture, RefusesKeyMismatch) {
  ModelStore Store(Dir);
  ModelKey Trained = testKey("kmeans", 8);
  ASSERT_EQ(Store.save(Trained, randomModel(0x6e75), nullptr),
            ModelIoStatus::Ok);

  // Simulate the classic operator mistake: hand-copy a container onto
  // the path of a different key. The embedded key must refuse it.
  ModelKey Wanted = testKey("kmeans", 16);
  std::filesystem::copy_file(Store.pathFor(Trained),
                             Store.pathFor(Wanted));
  ModelLoadResult R = Store.load(Wanted);
  EXPECT_EQ(R.Status, ModelIoStatus::KeyMismatch);
  EXPECT_FALSE(R.Model.has_value());
  EXPECT_FALSE(Store.contains(Wanted));

  // The genuine key still loads.
  EXPECT_TRUE(Store.load(Trained).ok());
}

TEST_F(StoreFixture, ShardConfigSelectsDistinctStoreKeys) {
  // Every knob in the canonical shard rendering must move the config
  // hash: a model trained under 4 shards (or a different address hash,
  // or steering) describes a different conflict structure and must not
  // collide with the unsharded entry.
  ShardConfig Base;
  Base.ShardCount = 1;
  ShardConfig Four = Base;
  Four.ShardCount = 4;
  ShardConfig Fib = Four;
  Fib.ShardHash = ShardHashKind::Fibonacci;
  ShardConfig Steered = Four;
  Steered.Steering = true;

  EXPECT_EQ(shardConfigCanonical(Base), "shards=1;shard-hash=mix;steer=0;");
  EXPECT_NE(shardConfigCanonical(Base), shardConfigCanonical(Four));
  EXPECT_NE(shardConfigCanonical(Four), shardConfigCanonical(Fib));
  EXPECT_NE(shardConfigCanonical(Four), shardConfigCanonical(Steered));

  auto KeyWith = [](const ShardConfig &SC) {
    ModelKey K;
    K.Workload = "kmeans";
    K.Threads = 8;
    K.ConfigHash =
        hashConfigString("grouping=sequence;" + shardConfigCanonical(SC));
    return K;
  };
  ModelKey Plain = KeyWith(Base);
  ModelKey Sharded = KeyWith(Four);
  EXPECT_NE(Plain.ConfigHash, Sharded.ConfigHash);
  EXPECT_NE(Plain.id(), Sharded.id());
  EXPECT_NE(KeyWith(Fib).ConfigHash, Sharded.ConfigHash);
  EXPECT_NE(KeyWith(Steered).ConfigHash, Sharded.ConfigHash);

  // Both live side by side in one store and load back independently.
  ModelStore Store(Dir);
  Tsa PlainModel = randomModel(0x51a4);
  Tsa ShardModel = randomModel(0x51a5);
  ASSERT_EQ(Store.save(Plain, PlainModel, nullptr), ModelIoStatus::Ok);
  ASSERT_EQ(Store.save(Sharded, ShardModel, nullptr), ModelIoStatus::Ok);
  EXPECT_EQ(Store.list().size(), 2u);
  ModelLoadResult A = Store.load(Plain);
  ModelLoadResult B = Store.load(Sharded);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(serializeModel(*A.Model), serializeModel(PlainModel));
  EXPECT_EQ(serializeModel(*B.Model), serializeModel(ShardModel));
}

TEST_F(StoreFixture, OverwriteReplacesEntryWithoutTempDebris) {
  ModelStore Store(Dir);
  ModelKey Key = testKey();
  Tsa First = randomModel(1);
  Tsa Second = randomModel(2);
  ASSERT_EQ(Store.save(Key, First, nullptr), ModelIoStatus::Ok);
  ASSERT_EQ(Store.save(Key, Second, nullptr), ModelIoStatus::Ok);

  ModelLoadResult Loaded = Store.load(Key);
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(serializeModel(*Loaded.Model), serializeModel(Second));
  EXPECT_EQ(Store.list().size(), 1u) << "overwrite must not duplicate";

  // Atomic publication: only final files in the store directory.
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    EXPECT_EQ(Entry.path().string().find(".tmp."), std::string::npos)
        << "stale temporary: " << Entry.path();
}

TEST_F(StoreFixture, CorruptContainerReportsTypedError) {
  ModelStore Store(Dir);
  ModelKey Key = testKey();
  ASSERT_EQ(Store.save(Key, randomModel(3), nullptr), ModelIoStatus::Ok);

  // Truncate the container mid-model.
  std::string Path = Store.pathFor(Key);
  std::error_code Ec;
  auto Size = std::filesystem::file_size(Path, Ec);
  ASSERT_FALSE(Ec);
  std::filesystem::resize_file(Path, Size / 2, Ec);
  ASSERT_FALSE(Ec);
  ModelLoadResult R = Store.load(Key);
  EXPECT_NE(R.Status, ModelIoStatus::Ok);
  EXPECT_FALSE(R.Model.has_value());
}

//===----------------------------------------------------------------------===//
// Online learner
//===----------------------------------------------------------------------===//

TEST(OnlineLearnerTest, DrainReplaysFormationOrderAcrossLanes) {
  // Observations arrive on per-thread lanes in arbitrary interleaving;
  // the drain must rebuild the exact global chain Seq encodes.
  OnlineLearner Learner(3);
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 1), C = makeTuple(2, 2);
  // Global chain: A(0) B(1) C(2) A(3) C(4). Lane order is scrambled.
  Learner.observeTuple(2, 4, C);
  Learner.observeTuple(1, 1, B);
  Learner.observeTuple(0, 0, A);
  Learner.observeTuple(0, 3, A);
  Learner.observeTuple(1, 2, C);
  EXPECT_EQ(Learner.drain(), 5u);

  Tsa Snapshot = Learner.snapshotModel();
  // Expected transitions: A->B, B->C, C->A, A->C, each once.
  Tsa Expected;
  StateId Ia = Expected.internState(A);
  StateId Ib = Expected.internState(B);
  StateId Ic = Expected.internState(C);
  LearnerConfig Cfg;
  auto Unit = static_cast<uint64_t>(Cfg.CountScale);
  Expected.addTransition(Ia, Ib, Unit);
  Expected.addTransition(Ib, Ic, Unit);
  Expected.addTransition(Ic, Ia, Unit);
  Expected.addTransition(Ia, Ic, Unit);
  EXPECT_EQ(serializeModel(Snapshot), serializeModel(Expected));
}

TEST(OnlineLearnerTest, ChainSpansDrainBatches) {
  OnlineLearner Learner(1);
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 0);
  Learner.observeTuple(0, 0, A);
  EXPECT_EQ(Learner.drain(), 1u);
  Learner.observeTuple(0, 1, B);
  EXPECT_EQ(Learner.drain(), 1u);
  // The A->B transition crosses the two drains and must still count.
  Tsa Snapshot = Learner.snapshotModel();
  EXPECT_EQ(Snapshot.numStates(), 2u);
  EXPECT_GT(Snapshot.numTransitions(), 0u);
}

TEST(OnlineLearnerTest, FullLaneDropsAndCounts) {
  LearnerConfig Cfg;
  Cfg.RingCapacity = 4;
  OnlineLearner Learner(1, Cfg);
  StateTuple A = makeTuple(0, 0);
  for (uint64_t I = 0; I < 10; ++I)
    Learner.observeTuple(0, I, A);
  LearnerStats S = Learner.stats();
  EXPECT_EQ(S.Observed, 10u);
  EXPECT_EQ(S.Dropped, 6u);
  EXPECT_EQ(Learner.drain(), 4u);
}

TEST(OnlineLearnerTest, DecayForgetsOldBehavior) {
  LearnerConfig Cfg;
  Cfg.DecayFactor = 0.5;
  OnlineLearner Learner(1, Cfg);
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 0), C = makeTuple(2, 0);

  // Old regime: A <-> B, 8 transitions into B.
  uint64_t Seq = 0;
  for (int I = 0; I < 8; ++I) {
    Learner.observeTuple(0, Seq++, A);
    Learner.observeTuple(0, Seq++, B);
  }
  Learner.drain();
  // Four half-life epochs: old edges keep 1/16 of their weight.
  for (int I = 0; I < 4; ++I)
    Learner.decay();
  // New regime: A <-> C, 8 transitions into C.
  for (int I = 0; I < 8; ++I) {
    Learner.observeTuple(0, Seq++, A);
    Learner.observeTuple(0, Seq++, C);
  }
  Learner.drain();

  Tsa Snapshot = Learner.snapshotModel();
  auto IdA = Snapshot.lookup(A);
  ASSERT_TRUE(IdA.has_value());
  auto Succ = Snapshot.successors(*IdA);
  ASSERT_FALSE(Succ.empty());
  // The fresh A->C edge must dominate the decayed A->B edge.
  auto IdC = Snapshot.lookup(C);
  ASSERT_TRUE(IdC.has_value());
  EXPECT_EQ(Succ.front().Dest, *IdC)
      << "EWMA must favor the recent regime";
  EXPECT_GT(Succ.front().Probability, 0.8);
  EXPECT_EQ(Learner.stats().DecayEpochs, 4u);
}

TEST(OnlineLearnerTest, ConcurrentProducersSingleConsumer) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 2000;
  LearnerConfig Cfg;
  Cfg.RingCapacity = 1 << 14;
  OnlineLearner Learner(Threads, Cfg);

  // Distinct Seq per observation, interleaved across threads the way
  // the controller hands them out.
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      StateTuple S = makeTuple(static_cast<TxId>(T),
                               static_cast<ThreadId>(T));
      for (uint64_t I = 0; I < PerThread; ++I)
        Learner.observeTuple(static_cast<ThreadId>(T),
                             I * Threads + T, S);
    });
  for (auto &W : Workers)
    W.join();

  size_t Drained = Learner.drain();
  LearnerStats S = Learner.stats();
  EXPECT_EQ(S.Observed, uint64_t{Threads} * PerThread);
  EXPECT_EQ(Drained + S.Dropped, uint64_t{Threads} * PerThread);
  Tsa Snapshot = Learner.snapshotModel();
  EXPECT_EQ(Snapshot.numStates(), Threads);
}

//===----------------------------------------------------------------------===//
// Controller integration: policy swap, gating control
//===----------------------------------------------------------------------===//

namespace {

/// Policy over a two-state model where only pair <0,0> is ever allowed
/// from state 0 — lets a test force holds deterministically.
std::shared_ptr<const GuidedPolicy> restrictivePolicy() {
  Tsa Model;
  StateTuple A = makeTuple(0, 0), B = makeTuple(0, 0, {{1, 1}});
  // A -> A dominates; B is a rare destination pruned by Tfactor 1.
  Model.addRun({A, A, A, A, A, A, A, A, B, A});
  return std::make_shared<const GuidedPolicy>(std::move(Model), 1.0);
}

CommitEvent commitEventFor(ThreadId Thread, TxId Tx) {
  CommitEvent E{};
  E.Thread = Thread;
  E.Tx = Tx;
  return E;
}

} // namespace

TEST(GuideControllerLifecycleTest, PublishPolicySwapsSnapshotAtomically) {
  auto P1 = restrictivePolicy();
  GuideConfig GC;
  GuideController Controller(P1, GC);
  EXPECT_EQ(Controller.activePolicy(), P1.get());

  // Move to a known state, then swap: the stale state id must not
  // survive into the new snapshot's id space.
  Controller.onCommit(commitEventFor(0, 0));
  EXPECT_NE(Controller.currentState(), UnknownState);

  OnlineLearner Learner(1);
  StateTuple A = makeTuple(0, 0), B = makeTuple(1, 0);
  Learner.observeTuple(0, 0, A);
  Learner.observeTuple(0, 1, B);
  Learner.drain();
  auto P2 = Learner.compilePolicy(4.0);
  Controller.publishPolicy(P2);

  EXPECT_EQ(Controller.activePolicy(), P2.get());
  EXPECT_EQ(Controller.currentState(), UnknownState)
      << "policy swap must reset the tracked state";
  EXPECT_EQ(Controller.stats().PolicySwaps, 1u);

  // Old snapshot stays alive (retained) even after the caller drops it.
  P1.reset();
  Controller.onCommit(commitEventFor(0, 1));
  EXPECT_EQ(Controller.stats().KnownStates, 2u);
}

TEST(GuideControllerLifecycleTest, DisarmedGateHoldsNothing) {
  auto Policy = restrictivePolicy();
  GuideConfig GC;
  GC.GateSleepMicros = 0;
  GC.MaxGateRetries = 2;
  GuideController Controller(Policy, GC);

  // Enter state 0 (the restrictive one).
  Controller.onCommit(commitEventFor(0, 0));
  ASSERT_NE(Controller.currentState(), UnknownState);

  // A disallowed pair holds while armed...
  Controller.onTxStart(/*Thread=*/5, /*Tx=*/3);
  EXPECT_EQ(Controller.stats().Holds, 1u);

  // ...and sails through disarmed.
  Controller.setGatingEnabled(false);
  EXPECT_FALSE(Controller.gatingEnabled());
  Controller.onTxStart(5, 3);
  EXPECT_EQ(Controller.stats().Holds, 1u)
      << "disarmed gate must not hold";

  Controller.setGatingEnabled(true);
  Controller.onTxStart(5, 3);
  EXPECT_EQ(Controller.stats().Holds, 2u) << "re-armed gate holds again";
}

TEST(GuideControllerLifecycleTest, SinkReceivesTuplesInFormationOrder) {
  struct RecordingSink : TtsSink {
    std::vector<uint64_t> Seqs;
    void observeTuple(ThreadId, uint64_t Seq, const StateTuple &) override {
      Seqs.push_back(Seq);
    }
  } Sink;
  auto Policy = restrictivePolicy();
  GuideConfig GC;
  GuideController Controller(Policy, GC);
  Controller.setTtsSink(&Sink);
  for (int I = 0; I < 5; ++I)
    Controller.onCommit(commitEventFor(0, 0));
  ASSERT_EQ(Sink.Seqs.size(), 5u);
  for (uint64_t I = 0; I < 5; ++I)
    EXPECT_EQ(Sink.Seqs[I], I) << "dense formation sequence expected";

  Controller.setTtsSink(nullptr);
  Controller.onCommit(commitEventFor(0, 0));
  EXPECT_EQ(Sink.Seqs.size(), 5u) << "detached sink must see nothing";
}

//===----------------------------------------------------------------------===//
// Drift detection
//===----------------------------------------------------------------------===//

namespace {

/// Six fully-connected states. With \p DominantCount >> 1, each state has
/// one high-probability successor and five rare ones the Tfactor
/// threshold prunes — |D(s)| = 1 of 5, a low (discriminating) metric.
/// With DominantCount == 1 every edge is equiprobable, |D(s)| =
/// |successors(s)| and the metric is 100 (the ssca2 shape).
Tsa denseModel(uint64_t DominantCount) {
  Tsa Model;
  std::vector<StateId> Ids;
  for (int S = 0; S < 6; ++S)
    Ids.push_back(Model.internState(makeTuple(static_cast<TxId>(S),
                                              static_cast<ThreadId>(S))));
  for (int S = 0; S < 6; ++S)
    for (int O = 0; O < 6; ++O) {
      if (O == S)
        continue;
      Model.addTransition(Ids[S], Ids[O],
                          O == (S + 1) % 6 ? DominantCount : 1);
    }
  return Model;
}

Tsa biasedModel() { return denseModel(200); }
Tsa uniformModel() { return denseModel(1); }

} // namespace

TEST(DriftTest, MetricSeparatesBiasedFromUniform) {
  AnalyzerConfig AC;
  double Biased = analyzeModel(biasedModel(), AC).GuidanceMetricPercent;
  double Uniform = analyzeModel(uniformModel(), AC).GuidanceMetricPercent;
  EXPECT_LT(Biased, 40.0);
  EXPECT_GT(Uniform, 50.0);
}

TEST(DriftTest, ShiftDisablesRestoreReenables) {
  DriftConfig DC;
  DC.Window = 3;
  DriftDetector Drift(DC);
  EXPECT_TRUE(Drift.guidanceEnabled());

  Tsa Biased = biasedModel();
  Tsa Uniform = uniformModel();

  // Healthy phase: discriminating snapshots keep guidance armed.
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Drift.observe(Biased));

  // Workload shift: the model stops discriminating (the ssca2 >= ~50%
  // shape); once the window fills with bad scores, the gate disarms.
  bool Armed = true;
  for (int I = 0; I < 4; ++I)
    Armed = Drift.observe(Uniform);
  EXPECT_FALSE(Armed);
  EXPECT_FALSE(Drift.guidanceEnabled());
  EXPECT_EQ(Drift.flips(), 1u);

  // Shift back: bias returns, the window drains, guidance re-arms.
  for (int I = 0; I < 4; ++I)
    Armed = Drift.observe(Biased);
  EXPECT_TRUE(Armed);
  EXPECT_TRUE(Drift.guidanceEnabled());
  EXPECT_EQ(Drift.flips(), 2u);
}

TEST(DriftTest, DegenerateSnapshotsScoreWorst) {
  DriftConfig DC;
  DC.Window = 2;
  DriftDetector Drift(DC);
  Tsa Empty;
  EXPECT_FALSE(Drift.observe(Empty));
  EXPECT_DOUBLE_EQ(Drift.lastMetric(), 100.0);
  EXPECT_FALSE(Drift.guidanceEnabled())
      << "an empty model must never keep the gate armed";
}

TEST(DriftTest, HysteresisPreventsFlapping) {
  // A metric wandering inside the (EnableBelow, DisableAbove] band must
  // not flip the decision in either direction.
  DriftConfig DC;
  DC.Window = 1; // decision tracks each observation directly
  Tsa Biased = biasedModel();
  Tsa Uniform = uniformModel();
  double BandMetric =
      analyzeModel(Uniform, AnalyzerConfig{}).GuidanceMetricPercent;
  ASSERT_GT(BandMetric, DC.DisableAbove); // sanity: uniform disarms

  // Tune thresholds so the uniform metric sits inside the band.
  DC.DisableAbove = BandMetric + 5.0;
  DC.EnableBelow = 10.0;
  DriftDetector Banded(DC);
  Banded.observe(Biased);
  uint64_t Before = Banded.flips();
  for (int I = 0; I < 6; ++I)
    EXPECT_TRUE(Banded.observe(Uniform));
  EXPECT_EQ(Banded.flips(), Before)
      << "in-band metric must not flip the gate";
}

//===----------------------------------------------------------------------===//
// End-to-end lifecycle: profile -> persist -> warm-start guided run
//===----------------------------------------------------------------------===//

TEST(WarmStartTest, PersistedModelGuidesWithZeroProfiling) {
  // Stage 1: a "training process" profiles and publishes to the store.
  std::string Dir = tempPath("gstm_warmstart_e2e");
  std::filesystem::remove_all(Dir);
  ModelKey Key;
  Key.Workload = "kmeans";
  Key.Threads = 4;
  Key.ConfigHash = hashConfigString("e2e");
  {
    KmeansWorkload Train(KmeansParams::forSize(SizeClass::Small));
    ExperimentConfig EC;
    EC.Threads = 4;
    EC.ProfileRuns = 3;
    EC.MeasureRuns = 0; // train only
    ExperimentResult Trained = runExperiment(Train, EC);
    EXPECT_GT(Trained.ProfileCommits, 0u);
    EXPECT_EQ(Trained.ProfileRunsExecuted, 3u);
    ASSERT_GT(Trained.Model.numStates(), 0u);
    ModelStore Store(Dir);
    std::string Detail;
    ASSERT_EQ(Store.save(Key, Trained.Model, &Detail), ModelIoStatus::Ok)
        << Detail;
  }

  // Stage 2: a fresh "deployment process" loads and guides cold.
  ModelStore Store(Dir);
  ModelLoadResult Loaded = Store.load(Key);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Detail;

  KmeansWorkload Measure(KmeansParams::forSize(SizeClass::Small));
  ExperimentConfig EC;
  EC.Threads = 4;
  EC.MeasureRuns = 3;
  EC.ForceGuided = true;
  ExperimentResult R =
      runExperimentWithModel(Measure, EC, std::move(*Loaded.Model));

  // The acceptance signal: guided execution ran from the persisted
  // model with zero profiling transactions in this "process".
  EXPECT_EQ(R.ProfileCommits, 0u);
  EXPECT_EQ(R.ProfileRunsExecuted, 0u);
  EXPECT_TRUE(R.GuidedRan);
  EXPECT_TRUE(R.Default.AllVerified);
  EXPECT_TRUE(R.Guided.AllVerified);
  EXPECT_GT(R.Model.numStates(), 0u);
  // The loaded model matches live behavior: commits resolve to known
  // states (an alien model would resolve none).
  EXPECT_GT(R.Guided.Guide.KnownStates, 0u);
  EXPECT_GT(R.Guided.DistinctStates, 0u);
  std::filesystem::remove_all(Dir);
}

TEST(WarmStartTest, LearnerAttachedToGuidedRunIngestsCommits) {
  // Live loop closure: a guided run with a learner attached streams its
  // commit tuples into the learner, whose drained snapshot then
  // resembles the live behavior (and could be published back).
  KmeansWorkload W(KmeansParams::forSize(SizeClass::Small));
  Tsa Model;
  RunnerConfig RC;
  RC.Threads = 4;
  for (unsigned Run = 0; Run < 2; ++Run)
    Model.addRun(runWorkloadOnce(W, RC, 42 + Run, nullptr).Tuples);
  ASSERT_GT(Model.numStates(), 0u);
  GuidedPolicy Policy(Model, 4.0);

  OnlineLearner Learner(4);
  RC.Learner = &Learner;
  RunResult R = runWorkloadOnce(W, RC, 99, &Policy);
  ASSERT_TRUE(R.Verified);
  EXPECT_GT(R.Commits, 0u);

  size_t Drained = Learner.drain();
  LearnerStats S = Learner.stats();
  EXPECT_EQ(S.Observed, R.Commits)
      << "every commit's tuple must reach the sink";
  EXPECT_EQ(Drained + S.Dropped, S.Observed);
  Tsa Snapshot = Learner.snapshotModel();
  EXPECT_GT(Snapshot.numStates(), 0u);
  auto P2 = Learner.compilePolicy(4.0);
  ASSERT_NE(P2, nullptr);
  EXPECT_GT(P2->model().numStates(), 0u);
}
