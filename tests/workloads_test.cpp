//===- tests/workloads_test.cpp - STAMP workload correctness tests ---------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// Every STAMP port must pass its own verify() — the workload-specific
// conservation/consistency invariant — under several thread counts and
// seeds. The parameterized sweep is the property-test backbone of the
// suite: any lost transactional update, torn structure or double-pop
// breaks a verify().
//
//===----------------------------------------------------------------------===//

#include "core/Runner.h"
#include "stamp/Kmeans.h"
#include "stamp/Labyrinth.h"
#include "stamp/Registry.h"
#include "stamp/Ssca2.h"
#include "stamp/Yada.h"

#include <gtest/gtest.h>

using namespace gstm;

namespace {

struct SweepParam {
  std::string Workload;
  unsigned Threads;
  uint64_t Seed;
};

std::string paramName(const ::testing::TestParamInfo<SweepParam> &Info) {
  return Info.param.Workload + "_t" + std::to_string(Info.param.Threads) +
         "_s" + std::to_string(Info.param.Seed);
}

class WorkloadSweep : public ::testing::TestWithParam<SweepParam> {};

} // namespace

TEST_P(WorkloadSweep, RunsAndVerifies) {
  const SweepParam &P = GetParam();
  auto Workload = createStampWorkload(P.Workload, SizeClass::Small);
  ASSERT_NE(Workload, nullptr);

  RunnerConfig Cfg;
  Cfg.Threads = P.Threads;
  RunResult R = runWorkloadOnce(*Workload, Cfg, P.Seed, nullptr);

  EXPECT_TRUE(R.Verified) << P.Workload << " failed its invariant check";
  EXPECT_GT(R.Commits, 0u);
  EXPECT_EQ(R.ThreadSeconds.size(), P.Threads);
  // Every commit appears in the tuple sequence.
  EXPECT_EQ(R.Tuples.size(), R.Commits);
}

static std::vector<SweepParam> makeSweep() {
  std::vector<SweepParam> Params;
  for (const std::string &Name : stampWorkloadNames())
    for (unsigned Threads : {1u, 2u, 4u, 8u})
      for (uint64_t Seed : {11u, 29u})
        Params.push_back(SweepParam{Name, Threads, Seed});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         ::testing::ValuesIn(makeSweep()), paramName);

TEST(RegistryTest, KnowsSevenWorkloads) {
  EXPECT_EQ(stampWorkloadNames().size(), 7u);
  for (const std::string &Name : stampWorkloadNames()) {
    auto W = createStampWorkload(Name, SizeClass::Small);
    ASSERT_NE(W, nullptr);
    EXPECT_EQ(W->name(), Name);
    EXPECT_GE(W->numTxSites(), 1u);
  }
  EXPECT_EQ(createStampWorkload("bayes", SizeClass::Small), nullptr)
      << "bayes is excluded, as in the paper";
}

TEST(KmeansTest, AccumulatesEveryPointEachRound) {
  KmeansParams P = KmeansParams::forSize(SizeClass::Small);
  KmeansWorkload W(P);
  RunnerConfig Cfg;
  Cfg.Threads = 4;
  RunResult R = runWorkloadOnce(W, Cfg, 5, nullptr);
  EXPECT_TRUE(R.Verified);
  // One transaction per point per round.
  EXPECT_EQ(R.Commits, uint64_t{P.NumPoints} * P.Rounds);
}

TEST(Ssca2Test, EveryEdgeInserted) {
  Ssca2Params P = Ssca2Params::forSize(SizeClass::Small);
  Ssca2Workload W(P);
  RunnerConfig Cfg;
  Cfg.Threads = 4;
  RunResult R = runWorkloadOnce(W, Cfg, 5, nullptr);
  EXPECT_TRUE(R.Verified);
  EXPECT_EQ(R.Commits, P.NumEdges);
}

TEST(Ssca2Test, NearZeroAbortsAtScale) {
  // The property the paper's analyzer exploits: ssca2 barely conflicts.
  Ssca2Params P = Ssca2Params::forSize(SizeClass::Medium);
  Ssca2Workload W(P);
  RunnerConfig Cfg;
  Cfg.Threads = 8;
  RunResult R = runWorkloadOnce(W, Cfg, 7, nullptr);
  EXPECT_TRUE(R.Verified);
  EXPECT_LT(R.Aborts, R.Commits / 10)
      << "ssca2 must be nearly conflict-free";
}

TEST(LabyrinthTest, RoutesDoNotOverlap) {
  LabyrinthParams P = LabyrinthParams::forSize(SizeClass::Small);
  LabyrinthWorkload W(P);
  RunnerConfig Cfg;
  Cfg.Threads = 4;
  RunResult R = runWorkloadOnce(W, Cfg, 3, nullptr);
  EXPECT_TRUE(R.Verified);
  // Random endpoints land on earlier paths, so not every request routes,
  // but a healthy fraction must.
  EXPECT_GE(W.routedCount(), size_t{P.NumPaths} / 4);
}

TEST(YadaTest, RefinementConservesAreaAndAdjacency) {
  YadaParams P = YadaParams::forSize(SizeClass::Small);
  YadaWorkload W(P);
  RunnerConfig Cfg;
  Cfg.Threads = 4;
  RunResult R = runWorkloadOnce(W, Cfg, 3, nullptr);
  EXPECT_TRUE(R.Verified);
  // Refinement must actually have split something.
  EXPECT_GT(W.aliveCountDirect(), size_t{2} * P.Grid * P.Grid);
}

TEST(WorkloadDeterminism, SameSeedSameInputShape) {
  // Two default runs with the same seed must do the same logical work
  // (same commit count) even though interleavings differ.
  for (const char *Name : {"kmeans", "ssca2", "intruder"}) {
    auto W1 = createStampWorkload(Name, SizeClass::Small);
    auto W2 = createStampWorkload(Name, SizeClass::Small);
    RunnerConfig Cfg;
    Cfg.Threads = 2;
    RunResult R1 = runWorkloadOnce(*W1, Cfg, 42, nullptr);
    RunResult R2 = runWorkloadOnce(*W2, Cfg, 42, nullptr);
    EXPECT_EQ(R1.Commits, R2.Commits) << Name;
  }
}
