# Configures, builds, and runs a ThreadSanitizer smoke of the concurrency
# tests in a dedicated sub-build (-DGSTM_ENABLE_TSAN=ON). Invoked by ctest
# via the `tsan_smoke` test registered in tests/CMakeLists.txt:
#
#   cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<build>/tsan-smoke -P TsanSmoke.cmake
#
# The smoke focuses on the racy-by-construction paths: the sharded stats
# subsystem (single-writer relaxed increments, concurrent aggregation) and
# the TL2 runtime's multi-threaded tests. A data race anywhere in those
# paths makes TSan exit non-zero and fails the test.

if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR
      "usage: cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<dir> -P TsanSmoke.cmake")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DGSTM_ENABLE_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE ConfigureRc)
if(NOT ConfigureRc EQUAL 0)
  message(FATAL_ERROR "tsan sub-build configure failed (${ConfigureRc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR}
          --target stats_test tl2_test minivector_test latency_histogram_test
                   tmds_test engine_test shard_test
  RESULT_VARIABLE BuildRc)
if(NOT BuildRc EQUAL 0)
  message(FATAL_ERROR "tsan sub-build compile failed (${BuildRc})")
endif()

# halt_on_error makes the first race fatal instead of a warning, so the
# exit code reflects it even if the test logic would still pass.
set(ENV{TSAN_OPTIONS} "halt_on_error=1")

execute_process(
  COMMAND ${BUILD_DIR}/tests/stats_test
          --gtest_filter=StatsShardTest.*:StatsAttributionTest.*
  RESULT_VARIABLE StatsRc)
if(NOT StatsRc EQUAL 0)
  message(FATAL_ERROR "stats_test failed under tsan (${StatsRc})")
endif()

# The concurrent TL2 tests run with Tl2Config::SingleFenceCommit at its
# default (on), so TSan checks the fence-based commit publication — the
# relaxed stripe-version stores behind one release fence — against real
# racing readers.
execute_process(
  COMMAND ${BUILD_DIR}/tests/tl2_test
          --gtest_filter=Tl2Test.Concurrent*:Tl2Test.BankTransfer*:Tl2Test.Snapshot*:Tl2Test.AbortEvents*
  RESULT_VARIABLE Tl2Rc)
if(NOT Tl2Rc EQUAL 0)
  message(FATAL_ERROR "tl2_test failed under tsan (${Tl2Rc})")
endif()

# The transactional skiplist/B-tree publish pool-allocated nodes through
# STM stores while peers traverse them; the partitioned-mutation test
# races real inserts/removes across threads. The histogram's merge path
# (per-thread recording, post-join merge) rides along — both are exactly
# where an unsynchronized publish would hide.
execute_process(
  COMMAND ${BUILD_DIR}/tests/tmds_test
          --gtest_filter=TmdsTest/*.ConcurrentPartitionedMutationIsExact
  RESULT_VARIABLE TmdsRc)
if(NOT TmdsRc EQUAL 0)
  message(FATAL_ERROR "tmds_test failed under tsan (${TmdsRc})")
endif()

# The engine family's racy-by-construction paths: TLRW's Dekker
# reader/writer handshake and drain loop, orec CAS acquisition against
# racing validators, 2PL's no-wait lock word traffic, and the epoch
# manager's enter/exit vs quiesce protocol.
execute_process(
  COMMAND ${BUILD_DIR}/tests/engine_test
  RESULT_VARIABLE EngineRc)
if(NOT EngineRc EQUAL 0)
  message(FATAL_ERROR "engine_test failed under tsan (${EngineRc})")
endif()
execute_process(
  COMMAND ${BUILD_DIR}/tests/latency_histogram_test
  RESULT_VARIABLE HistRc)
if(NOT HistRc EQUAL 0)
  message(FATAL_ERROR "latency_histogram_test failed under tsan (${HistRc})")
endif()

# The sharded tier's cross-shard 2PC publishes one commit through
# several lock tables and applied clocks behind a single release fence;
# the concurrent-increments test races four real writer threads through
# that path, and the steering listener's SPSC lanes ride along. TSan
# sees the relaxed stripe stores directly against racing validators.
execute_process(
  COMMAND ${BUILD_DIR}/tests/shard_test
          --gtest_filter=TwoShardFixture.*:SteeringTest.*
  RESULT_VARIABLE ShardRc)
if(NOT ShardRc EQUAL 0)
  message(FATAL_ERROR "shard_test failed under tsan (${ShardRc})")
endif()

# Containers are single-owner by design; running their suite under TSan
# asserts that no hidden sharing crept into the grow/clear paths.
execute_process(
  COMMAND ${BUILD_DIR}/tests/minivector_test
  RESULT_VARIABLE MiniRc)
if(NOT MiniRc EQUAL 0)
  message(FATAL_ERROR "minivector_test failed under tsan (${MiniRc})")
endif()

message(STATUS "tsan smoke passed")
