//===- tests/containers_test.cpp - TM container tests ----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/TmHashMap.h"
#include "stamp/TmList.h"
#include "stamp/TmQueue.h"

#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

using namespace gstm;

namespace {
struct ListFixture : ::testing::Test {
  Tl2Stm Stm;
  TmList::Pool Pool{4096};
  TmList List;
  Tl2Txn Txn{Stm, 0};
};
} // namespace

TEST_F(ListFixture, InsertFindRemove) {
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_TRUE(List.insert(Tx, Pool, 5, 50));
    EXPECT_TRUE(List.insert(Tx, Pool, 3, 30));
    EXPECT_TRUE(List.insert(Tx, Pool, 7, 70));
    EXPECT_FALSE(List.insert(Tx, Pool, 5, 99)) << "duplicate key";
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(List.find(Tx, Pool, 3).value(), 30u);
    EXPECT_EQ(List.find(Tx, Pool, 5).value(), 50u);
    EXPECT_FALSE(List.find(Tx, Pool, 4).has_value());
    EXPECT_EQ(List.size(Tx, Pool), 3u);
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(List.remove(Tx, Pool, 5).value(), 50u);
    EXPECT_FALSE(List.remove(Tx, Pool, 5).has_value());
    EXPECT_EQ(List.size(Tx, Pool), 2u);
  });
}

TEST_F(ListFixture, KeepsSortedOrder) {
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K : {9, 1, 5, 3, 7, 2, 8, 4, 6})
      List.insert(Tx, Pool, K, K * 10);
  });
  std::vector<uint64_t> Keys;
  Txn.run(0, [&](Tl2Txn &Tx) {
    List.forEach(Tx, Pool, [&Keys](uint64_t K, uint64_t V) {
      Keys.push_back(K);
      EXPECT_EQ(V, K * 10);
    });
  });
  for (size_t I = 1; I < Keys.size(); ++I)
    EXPECT_LT(Keys[I - 1], Keys[I]);
  EXPECT_EQ(Keys.size(), 9u);
}

TEST_F(ListFixture, InsertOrAssignOverwrites) {
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_TRUE(List.insertOrAssign(Tx, Pool, 1, 10));
    EXPECT_FALSE(List.insertOrAssign(Tx, Pool, 1, 20));
    EXPECT_EQ(List.find(Tx, Pool, 1).value(), 20u);
  });
}

TEST_F(ListFixture, RemoveHeadMiddleTail) {
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K : {1, 2, 3, 4, 5})
      List.insert(Tx, Pool, K, K);
    EXPECT_TRUE(List.remove(Tx, Pool, 1).has_value()); // head
    EXPECT_TRUE(List.remove(Tx, Pool, 3).has_value()); // middle
    EXPECT_TRUE(List.remove(Tx, Pool, 5).has_value()); // tail
    EXPECT_EQ(List.size(Tx, Pool), 2u);
    EXPECT_TRUE(List.find(Tx, Pool, 2).has_value());
    EXPECT_TRUE(List.find(Tx, Pool, 4).has_value());
  });
}

TEST(TmListConcurrency, DisjointInsertsAllLand) {
  Tl2Stm Stm;
  TmList::Pool Pool(8192);
  TmList List;
  constexpr unsigned Threads = 6;
  constexpr unsigned PerThread = 100;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < PerThread; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) {
          List.insert(Tx, Pool, T * PerThread + I, T);
        });
    });
  for (auto &W : Workers)
    W.join();

  size_t Count = 0;
  uint64_t PrevKey = 0;
  bool First = true;
  List.forEachDirect(Pool, [&](uint64_t K, uint64_t) {
    if (!First) {
      EXPECT_GT(K, PrevKey);
    }
    PrevKey = K;
    First = false;
    ++Count;
  });
  EXPECT_EQ(Count, size_t{Threads} * PerThread);
}

TEST(TmListConcurrency, RacingInsertsOfSameKeysOneWinner) {
  Tl2Stm Stm;
  TmList::Pool Pool(8192);
  TmList List;
  constexpr unsigned Threads = 6;
  constexpr unsigned Keys = 50;
  std::atomic<uint64_t> Wins{0};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      uint64_t LocalWins = 0;
      for (unsigned K = 0; K < Keys; ++K) {
        bool Inserted = false;
        Txn.run(0, [&](Tl2Txn &Tx) {
          Inserted = List.insert(Tx, Pool, K, T);
        });
        if (Inserted)
          ++LocalWins;
      }
      Wins.fetch_add(LocalWins);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Wins.load(), Keys) << "exactly one insert per key must win";
}

TEST(TmHashMapTest, BasicOperations) {
  Tl2Stm Stm;
  TmList::Pool Pool(4096);
  TmHashMap Map(16);
  Tl2Txn Txn(Stm, 0);

  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 0; K < 200; ++K)
      EXPECT_TRUE(Map.insert(Tx, Pool, K * 977 + 1, K));
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t K = 0; K < 200; ++K)
      EXPECT_EQ(Map.find(Tx, Pool, K * 977 + 1).value(), K);
    EXPECT_FALSE(Map.find(Tx, Pool, 2).has_value());
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(Map.remove(Tx, Pool, 1).value(), 0u);
    EXPECT_FALSE(Map.find(Tx, Pool, 1).has_value());
  });
}

TEST(TmHashMapTest, PowerOfTwoBucketRounding) {
  TmHashMap M1(1), M5(5), M64(64);
  EXPECT_EQ(M1.numBuckets(), 1u);
  EXPECT_EQ(M5.numBuckets(), 8u);
  EXPECT_EQ(M64.numBuckets(), 64u);
}

TEST(TmHashMapTest, MatchesReferenceUnderRandomOps) {
  Tl2Stm Stm;
  TmList::Pool Pool(16384);
  TmHashMap Map(32);
  Tl2Txn Txn(Stm, 0);
  std::map<uint64_t, uint64_t> Ref;
  SplitMix64 Rng(77);

  for (int Op = 0; Op < 2000; ++Op) {
    uint64_t Key = Rng.nextBounded(256) + 1;
    uint64_t Choice = Rng.nextBounded(3);
    Txn.run(0, [&](Tl2Txn &Tx) {
      if (Choice == 0) {
        bool Inserted = Map.insert(Tx, Pool, Key, Op);
        EXPECT_EQ(Inserted, Ref.find(Key) == Ref.end());
      } else if (Choice == 1) {
        auto Removed = Map.remove(Tx, Pool, Key);
        EXPECT_EQ(Removed.has_value(), Ref.find(Key) != Ref.end());
      } else {
        auto Found = Map.find(Tx, Pool, Key);
        auto It = Ref.find(Key);
        ASSERT_EQ(Found.has_value(), It != Ref.end());
        if (Found) {
          EXPECT_EQ(*Found, It->second);
        }
      }
    });
    // Mirror the committed effect in the reference map.
    if (Choice == 0)
      Ref.emplace(Key, Op);
    else if (Choice == 1)
      Ref.erase(Key);
  }
}

TEST(TmQueueTest, FifoOrder) {
  Tl2Stm Stm;
  TmQueue Q(16);
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t I = 1; I <= 5; ++I)
      EXPECT_TRUE(Q.push(Tx, I * 11));
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    for (uint64_t I = 1; I <= 5; ++I)
      EXPECT_EQ(Q.pop(Tx).value(), I * 11);
    EXPECT_FALSE(Q.pop(Tx).has_value());
  });
}

TEST(TmQueueTest, CapacityEnforced) {
  Tl2Stm Stm;
  TmQueue Q(3);
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_TRUE(Q.push(Tx, 1));
    EXPECT_TRUE(Q.push(Tx, 2));
    EXPECT_TRUE(Q.push(Tx, 3));
    EXPECT_FALSE(Q.push(Tx, 4)) << "full queue must reject";
    EXPECT_EQ(Q.size(Tx), 3u);
  });
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(Q.pop(Tx).value(), 1u);
    EXPECT_TRUE(Q.push(Tx, 4)) << "wrap-around after pop";
  });
}

TEST(TmQueueTest, ConcurrentPopsDrainExactlyOnce) {
  Tl2Stm Stm;
  constexpr uint64_t Items = 500;
  TmQueue Q(Items + 1);
  for (uint64_t I = 0; I < Items; ++I)
    Q.pushDirect(I);

  constexpr unsigned Threads = 6;
  std::vector<std::set<uint64_t>> Seen(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (;;) {
        std::optional<uint64_t> Item;
        Txn.run(0, [&](Tl2Txn &Tx) { Item = Q.pop(Tx); });
        if (!Item)
          break;
        Seen[T].insert(*Item);
      }
    });
  for (auto &W : Workers)
    W.join();

  std::set<uint64_t> All;
  size_t Total = 0;
  for (const auto &S : Seen) {
    Total += S.size();
    All.insert(S.begin(), S.end());
  }
  EXPECT_EQ(Total, Items) << "no item may be popped twice";
  EXPECT_EQ(All.size(), Items) << "every item must be popped";
}
