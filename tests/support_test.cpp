//===- tests/support_test.cpp - support library unit tests ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"
#include "support/Ids.h"
#include "support/Json.h"
#include "support/Options.h"
#include "support/SplitMix64.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

using namespace gstm;

TEST(SplitMix64Test, DeterministicFromSeed) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(SplitMix64Test, BoundedStaysInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBounded(13), 13u);
}

TEST(SplitMix64Test, BoundedCoversRange) {
  SplitMix64 Rng(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(Rng.nextBounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(SplitMix64Test, DoubleInUnitInterval) {
  SplitMix64 Rng(11);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(SplitMix64Test, SplitProducesIndependentStream) {
  SplitMix64 A(5);
  SplitMix64 B = A.split();
  EXPECT_NE(A.next(), B.next());
}

TEST(IdsTest, PackUnpackRoundTrip) {
  for (TxId Tx : {TxId{0}, TxId{1}, TxId{255}, TxId{65535}})
    for (ThreadId T : {ThreadId{0}, ThreadId{7}, ThreadId{65535}}) {
      TxThreadPair P = packPair(Tx, T);
      EXPECT_EQ(pairTx(P), Tx);
      EXPECT_EQ(pairThread(P), T);
    }
}

TEST(IdsTest, DistinctPairsDistinctPacking) {
  EXPECT_NE(packPair(1, 2), packPair(2, 1));
  EXPECT_NE(packPair(0, 1), packPair(1, 0));
}

TEST(RunningStatTest, MeanAndStddev) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Sample stddev of this classic data set is sqrt(32/7).
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(RunningStatTest, DegenerateCases) {
  RunningStat S;
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
  S.add(3.0);
  EXPECT_EQ(S.stddev(), 0.0);
  EXPECT_EQ(S.count(), 1u);
}

TEST(AbortHistogramTest, TailMetricSquaresDistinctCounts) {
  AbortHistogram H;
  H.add(0);
  H.add(0);
  H.add(3);
  H.add(5);
  // Distinct abort counts are {0, 3, 5}: 0 + 9 + 25.
  EXPECT_DOUBLE_EQ(H.tailMetric(), 34.0);
  EXPECT_EQ(H.maxAborts(), 5u);
  EXPECT_EQ(H.totalCommits(), 4u);
  EXPECT_EQ(H.totalAborts(), 8u);
  EXPECT_EQ(H.frequency(0), 2u);
  EXPECT_EQ(H.frequency(1), 0u);
}

TEST(AbortHistogramTest, MergeAddsFrequencies) {
  AbortHistogram A, B;
  A.add(1);
  B.add(1);
  B.add(2);
  A.merge(B);
  EXPECT_EQ(A.frequency(1), 2u);
  EXPECT_EQ(A.frequency(2), 1u);
  EXPECT_EQ(A.totalCommits(), 3u);
}

TEST(RunningStatTest, TrimmedStddevDropsOutliers) {
  RunningStat S;
  for (double X : {10.0, 10.1, 9.9, 10.05, 9.95, 10.02, 9.98, 10.0,
                   10.03, 9.97, 10.01, 9.99, 10.0, 10.0, 10.0, 10.0,
                   10.0, 10.0, 10.0, 500.0}) // one host-noise spike
    S.add(X);
  EXPECT_GT(S.stddev(), 50.0) << "raw stddev is spike-dominated";
  EXPECT_LT(S.trimmedStddev(0.05), 0.1)
      << "trimming 5% per side removes the spike";
}

TEST(RunningStatTest, TrimmedStddevFallsBackOnSmallSamples) {
  RunningStat S;
  S.add(1.0);
  S.add(3.0);
  EXPECT_DOUBLE_EQ(S.trimmedStddev(0.05), S.stddev());
}

TEST(StatsTest, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percentImprovement(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(percentImprovement(10.0, 12.0), -20.0);
  // Zero baseline: 0 -> 0 is "no change"; 0 -> positive has no defined
  // percentage and must not be reported as 0 (it would hide a regression).
  EXPECT_DOUBLE_EQ(percentImprovement(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isnan(percentImprovement(0.0, 5.0)));
}

TEST(OptionsTest, ParsesKeyValueAndFlags) {
  const char *Argv[] = {"prog", "--runs=5", "--size=medium", "--verbose",
                        "positional"};
  Options Opts = Options::parse(5, Argv);
  EXPECT_EQ(Opts.getInt("runs", 0), 5);
  EXPECT_EQ(Opts.getString("size", ""), "medium");
  EXPECT_TRUE(Opts.getBool("verbose", false));
  EXPECT_FALSE(Opts.has("positional"));
  EXPECT_EQ(Opts.getInt("missing", 42), 42);
}

TEST(OptionsTest, MalformedNumbersFallBack) {
  const char *Argv[] = {"prog", "--runs=abc", "--t=1.5x"};
  Options Opts = Options::parse(3, Argv);
  EXPECT_EQ(Opts.getInt("runs", 9), 9);
  EXPECT_EQ(Opts.getDouble("t", 2.5), 2.5);
}

TEST(OptionsTest, BoolFalseSpellings) {
  const char *Argv[] = {"prog", "--a=0", "--b=false", "--c=true"};
  Options Opts = Options::parse(4, Argv);
  EXPECT_FALSE(Opts.getBool("a", true));
  EXPECT_FALSE(Opts.getBool("b", true));
  EXPECT_TRUE(Opts.getBool("c", false));
}

TEST(OptionsTest, CollectsPositionalsInOrder) {
  const char *Argv[] = {"prog", "first", "--k=v", "second"};
  Options Opts = Options::parse(4, Argv);
  ASSERT_EQ(Opts.positionals().size(), 2u);
  EXPECT_EQ(Opts.positionals()[0], "first");
  EXPECT_EQ(Opts.positionals()[1], "second");
  EXPECT_EQ(Opts.keys(), std::vector<std::string>{"k"});
}

TEST(OptionSetTest, ValidatesDeclaredKeys) {
  OptionSet Cli("tool", "does things",
                {{"runs", "N", "number of runs"}, {"verbose", "", "chatty"}});
  std::string Error;

  const char *Good[] = {"tool", "--runs=3", "--verbose"};
  EXPECT_TRUE(Cli.validate(Options::parse(3, Good), Error)) << Error;

  const char *Bad[] = {"tool", "--rnus=3"};
  EXPECT_FALSE(Cli.validate(Options::parse(2, Bad), Error));
  EXPECT_NE(Error.find("rnus"), std::string::npos);
}

TEST(OptionSetTest, UsageListsEveryOption) {
  OptionSet Cli("tool", "does things",
                {{"runs", "N", "number of runs"}, {"verbose", "", "chatty"}},
                "[paths...]");
  std::string U = Cli.usage();
  EXPECT_NE(U.find("does things"), std::string::npos);
  EXPECT_NE(U.find("--runs=N"), std::string::npos);
  EXPECT_NE(U.find("--verbose"), std::string::npos);
  EXPECT_NE(U.find("[paths...]"), std::string::npos);
  EXPECT_NE(U.find("--help"), std::string::npos);
}

TEST(BarrierTest, SynchronizesPhases) {
  constexpr unsigned N = 4;
  Barrier B(N);
  std::atomic<int> Phase0{0}, Phase1{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T)
    Threads.emplace_back([&] {
      Phase0.fetch_add(1);
      B.arriveAndWait();
      // Everyone must have finished phase 0 before any phase 1 work.
      EXPECT_EQ(Phase0.load(), static_cast<int>(N));
      Phase1.fetch_add(1);
      B.arriveAndWait();
      EXPECT_EQ(Phase1.load(), static_cast<int>(N));
    });
  for (auto &T : Threads)
    T.join();
}

TEST(BarrierTest, ReusableManyRounds) {
  constexpr unsigned N = 3;
  Barrier B(N);
  std::atomic<int> Counter{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T)
    Threads.emplace_back([&] {
      for (int Round = 0; Round < 50; ++Round) {
        Counter.fetch_add(1);
        B.arriveAndWait();
        EXPECT_EQ(Counter.load() % (N), 0u);
        B.arriveAndWait();
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Counter.load(), static_cast<int>(N * 50));
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer T;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double Elapsed = T.elapsedSeconds();
  EXPECT_GE(Elapsed, 0.005);
  EXPECT_LT(Elapsed, 5.0);
  T.reset();
  EXPECT_LT(T.elapsedSeconds(), 0.5);
}

// Error paths of the telemetry JSON parser: tools load model/stats
// documents from disk, so hostile or truncated input must be rejected
// (std::nullopt), never crash the process.

TEST(JsonParserTest, MalformedEscapesRejected) {
  EXPECT_FALSE(parseJson("\"\\x\"").has_value());     // unknown escape
  EXPECT_FALSE(parseJson("\"\\u12\"").has_value());   // short \u
  EXPECT_FALSE(parseJson("\"\\u12G4\"").has_value()); // non-hex digit
  EXPECT_FALSE(parseJson("\"\\").has_value());        // backslash at EOF
  EXPECT_FALSE(parseJson("{\"k\\\": 1}").has_value()); // escape eats quote
  // Well-formed escapes still round-trip.
  auto Ok = parseJson("\"a\\n\\t\\\\\\\"\\u0041\"");
  ASSERT_TRUE(Ok.has_value());
  EXPECT_EQ(Ok->Str, "a\n\t\\\"A");
}

TEST(JsonParserTest, TruncatedInputsRejected) {
  const std::string Doc =
      "{\"telemetry\": {\"commits\": 12, \"aborts\": [1, 2.5e3, -4]}, "
      "\"tag\": \"run\\u0031\"}";
  ASSERT_TRUE(parseJson(Doc).has_value());
  // No proper prefix of an object document is a complete document; every
  // one must be rejected gracefully.
  for (size_t Len = 0; Len < Doc.size(); ++Len)
    EXPECT_FALSE(parseJson(std::string_view(Doc).substr(0, Len)).has_value())
        << "prefix length " << Len;
}

TEST(JsonParserTest, DeepNestingRejectedWithoutCrash) {
  // Within the parser's recursion bound: fine.
  std::string Shallow(100, '[');
  Shallow.append(100, ']');
  EXPECT_TRUE(parseJson(Shallow).has_value());
  // Past the bound (even a 100k-bracket bomb): rejected, not a stack
  // overflow.
  std::string Bomb(100000, '[');
  EXPECT_FALSE(parseJson(Bomb).has_value());
  std::string Closed(5000, '[');
  Closed.append(5000, ']');
  EXPECT_FALSE(parseJson(Closed).has_value());
  std::string Mixed;
  for (int I = 0; I < 50000; ++I)
    Mixed += "[{\"k\":";
  EXPECT_FALSE(parseJson(Mixed).has_value());
}

TEST(JsonParserTest, DuplicateKeysNormalizeToFirst) {
  // The writer never emits duplicates; on input the parser keeps all
  // members and find() resolves to the first, so duplicate keys are
  // normalized rather than being an error or a crash.
  auto Doc = parseJson("{\"k\": 1, \"k\": 2, \"other\": 3}");
  ASSERT_TRUE(Doc.has_value());
  ASSERT_NE(Doc->find("k"), nullptr);
  EXPECT_EQ(Doc->find("k")->asU64(), 1u);
  EXPECT_EQ(Doc->Members.size(), 3u);
}

TEST(JsonParserTest, SeededGarbageNeverCrashes) {
  // Fuzz-ish sweep: random strings over a JSON-flavoured alphabet plus
  // random corruptions of a valid document. The parser must terminate
  // with *some* verdict on each; the assertions only consume the result.
  const std::string Alphabet = "{}[]\",:.\\eE+-0123456789truefalsn u\t\n";
  SplitMix64 Rng(0x15eed);
  size_t Accepted = 0;
  for (int Iter = 0; Iter < 2000; ++Iter) {
    std::string Input;
    size_t Len = Rng.nextBounded(64);
    for (size_t I = 0; I < Len; ++I)
      Input += Alphabet[Rng.nextBounded(Alphabet.size())];
    Accepted += parseJson(Input).has_value();
  }
  const std::string Valid =
      "{\"a\": [1, 2, {\"b\": \"c\\n\"}], \"d\": -1.5e2, \"e\": null}";
  for (int Iter = 0; Iter < 2000; ++Iter) {
    std::string Input = Valid;
    Input[Rng.nextBounded(Input.size())] =
        Alphabet[Rng.nextBounded(Alphabet.size())];
    Accepted += parseJson(Input).has_value();
  }
  // Some corruptions (e.g. digit for digit) stay valid; most don't.
  EXPECT_LT(Accepted, 4000u);
}
