//===- tests/shard_test.cpp - Sharded STM tier tests ----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The sharded tier (src/shard) in four tiers: configuration and placement
// plumbing, the ShardedTxn commit protocol against a live runtime
// (single- and cross-shard, applied-clock publication, exact telemetry),
// the steering learner's ingest/drain/build loop, and the mutation
// self-test — the torn-coordinated-publish fault must be flagged by the
// opacity checker, not merely by final-state sums.
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "check/ShardFuzz.h"
#include "shard/ShardConfig.h"
#include "shard/Sharded.h"
#include "shard/Steering.h"
#include "stm/TVar.h"

#include "gtest/gtest.h"

#include <thread>

using namespace gstm;

namespace {

//===----------------------------------------------------------------------===//
// Configuration and placement plumbing
//===----------------------------------------------------------------------===//

TEST(ShardConfigTest, HashNamesRoundTrip) {
  ShardHashKind Kind = ShardHashKind::Mix;
  EXPECT_TRUE(shardHashFromName("fib", Kind));
  EXPECT_EQ(Kind, ShardHashKind::Fibonacci);
  EXPECT_STREQ(shardHashName(Kind), "fib");
  EXPECT_TRUE(shardHashFromName("mix", Kind));
  EXPECT_EQ(Kind, ShardHashKind::Mix);
  EXPECT_STREQ(shardHashName(Kind), "mix");
  EXPECT_FALSE(shardHashFromName("crc", Kind));
}

TEST(ShardPlacementTest, LookupResolvesRangesAndRejectsUnmapped) {
  uint64_t Arr[8] = {};
  ShardPlacement P;
  P.addRange(&Arr[0], &Arr[2], 3);
  P.addRange(&Arr[4], &Arr[6], 1);
  P.finalize();
  EXPECT_EQ(P.lookup(&Arr[0]), 3);
  EXPECT_EQ(P.lookup(&Arr[1]), 3);
  EXPECT_EQ(P.lookup(&Arr[2]), -1); // end is exclusive
  EXPECT_EQ(P.lookup(&Arr[4]), 1);
  EXPECT_EQ(P.lookup(&Arr[7]), -1);
}

TEST(ShardedStmTest, PlacementOverridesAddressHash) {
  ShardConfig SC;
  SC.ShardCount = 4;
  SC.LockTableBits = 8;
  ShardedStm Stm(SC);

  TVar<uint64_t> Cells[4];
  for (TVar<uint64_t> &C : Cells)
    EXPECT_LT(Stm.shardFor(&C.word()), 4u);

  ShardPlacement P;
  P.addRange(&Cells[0], &Cells[2], 2);
  P.finalize();
  Stm.setPlacement(&P);
  EXPECT_EQ(Stm.shardFor(&Cells[0].word()), 2u);
  EXPECT_EQ(Stm.shardFor(&Cells[1].word()), 2u);
  // Unmapped addresses fall back to the hash.
  EXPECT_LT(Stm.shardFor(&Cells[3].word()), 4u);
}

//===----------------------------------------------------------------------===//
// Commit protocol against a live runtime
//===----------------------------------------------------------------------===//

/// Two cells explicitly homed on shards 0 and 1 of a 4-shard runtime.
struct TwoShardFixture : ::testing::Test {
  TwoShardFixture() : Stm(config()) {
    A.storeDirect(10);
    B.storeDirect(20);
    Placement.addRange(&A, &A + 1, 0);
    Placement.addRange(&B, &B + 1, 1);
    Placement.finalize();
    Stm.setPlacement(&Placement);
  }
  static ShardConfig config() {
    ShardConfig SC;
    SC.ShardCount = 4;
    SC.LockTableBits = 8;
    return SC;
  }
  ShardedStm Stm;
  TVar<uint64_t> A, B;
  ShardPlacement Placement;
};

TEST_F(TwoShardFixture, SingleShardCommitDoesNotCountAsCrossShard) {
  ShardedTxn Txn(Stm, 0);
  Txn.run(0, [&](ShardedTxn &Tx) { Tx.store(A, Tx.load(A) + 1); });
  EXPECT_EQ(A.loadDirect(), 11u);

  StatsSnapshot Agg = Stm.stats().aggregate();
  EXPECT_EQ(Agg.Commits, 1u);
  EXPECT_EQ(Agg.CrossShardCommits, 0u);
  EXPECT_TRUE(Agg.consistent());
  // The writer's home shard saw the publish; shard 1 never advanced.
  EXPECT_EQ(Stm.appliedClockOf(0).sample(), Stm.clock().sample());
  EXPECT_EQ(Stm.appliedClockOf(1).sample(), 0u);
}

TEST_F(TwoShardFixture, CrossShardCommitRaisesEveryParticipantClock) {
  ShardedTxn Txn(Stm, 0);
  Txn.run(0, [&](ShardedTxn &Tx) {
    uint64_t VA = Tx.load(A);
    uint64_t VB = Tx.load(B);
    Tx.store(A, VA + VB);
    Tx.store(B, VB + 1);
  });
  EXPECT_EQ(A.loadDirect(), 30u);
  EXPECT_EQ(B.loadDirect(), 21u);

  StatsSnapshot Agg = Stm.stats().aggregate();
  EXPECT_EQ(Agg.Commits, 1u);
  EXPECT_EQ(Agg.CrossShardCommits, 1u);
  EXPECT_TRUE(Agg.consistent());

  // Both participants' applied clocks reached the commit version; the
  // untouched shards stayed at zero.
  uint64_t Wv = Stm.clock().sample();
  ASSERT_GT(Wv, 0u);
  EXPECT_EQ(Stm.appliedClockOf(0).sample(), Wv);
  EXPECT_EQ(Stm.appliedClockOf(1).sample(), Wv);
  EXPECT_EQ(Stm.appliedClockOf(2).sample(), 0u);
  EXPECT_EQ(Stm.appliedClockOf(3).sample(), 0u);

  for (unsigned S = 0; S < 4; ++S)
    EXPECT_TRUE(lockTableQuiescent(Stm.lockTableOf(S))) << "shard " << S;
}

TEST_F(TwoShardFixture, ReadOnlyCrossShardCommitAdvancesNothing) {
  ShardedTxn Txn(Stm, 0);
  uint64_t Sum = 0;
  Txn.run(0, [&](ShardedTxn &Tx) { Sum = Tx.load(A) + Tx.load(B); });
  EXPECT_EQ(Sum, 30u);

  StatsSnapshot Agg = Stm.stats().aggregate();
  EXPECT_EQ(Agg.Commits, 1u);
  EXPECT_EQ(Agg.ReadOnlyCommits, 1u);
  // Read-only commits take no locks and publish nothing, so a span of
  // two shards is not a cross-shard (2PC) commit.
  EXPECT_EQ(Agg.CrossShardCommits, 0u);
  EXPECT_EQ(Stm.clock().sample(), 0u);
}

TEST_F(TwoShardFixture, ConcurrentCrossShardIncrementsAreExact) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 200;

  // Every transaction writes both shards, so every commit is a 2PC
  // commit and the telemetry must say exactly that.
  ShardSteering Steering(Threads, 4);
  Steering.registerGroup(0, &A, &A + 1);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ShardedTxn Txn(Stm, T);
      Txn.setCommitListener(&Steering);
      Txn.setAffinityGroup(0);
      for (uint64_t I = 0; I < PerThread; ++I)
        Txn.run(0, [&](ShardedTxn &Tx) {
          uint64_t VA = Tx.load(A);
          uint64_t VB = Tx.load(B);
          Tx.store(A, VA + 1);
          Tx.store(B, VB + 1);
        });
    });
  for (std::thread &W : Workers)
    W.join();

  constexpr uint64_t Total = uint64_t{Threads} * PerThread;
  EXPECT_EQ(A.loadDirect(), 10u + Total);
  EXPECT_EQ(B.loadDirect(), 20u + Total);

  StatsSnapshot Agg = Stm.stats().aggregate();
  EXPECT_EQ(Agg.Commits, Total);
  EXPECT_EQ(Agg.CrossShardCommits, Total);
  EXPECT_TRUE(Agg.consistent());
  for (unsigned S = 0; S < 4; ++S)
    EXPECT_TRUE(lockTableQuiescent(Stm.lockTableOf(S))) << "shard " << S;

  // The steering listener saw every commit as cross-shard traffic.
  EXPECT_EQ(Steering.drain(), Total);
  SteeringStats SS = Steering.stats();
  EXPECT_EQ(SS.Observed, Total);
  EXPECT_EQ(SS.Dropped, 0u);
  EXPECT_EQ(SS.CrossShardDrained, Total);
}

//===----------------------------------------------------------------------===//
// Steering learner
//===----------------------------------------------------------------------===//

TEST(SteeringTest, DrainBuildsPlacementOnDominantShard) {
  uint64_t GroupA[2] = {}, GroupB[2] = {};
  ShardSteering S(1, 4);
  S.registerGroup(7, &GroupA[0], &GroupA[2]);
  S.registerGroup(9, &GroupB[0], &GroupB[2]);

  // Group 7's commits touch shard 2 in every event (three of them also
  // drag shard 0 along); group 9 lives on shard 0 alone.
  for (int I = 0; I < 3; ++I)
    S.onShardCommit(0, 7, (1u << 2) | (1u << 0), true);
  for (int I = 0; I < 5; ++I)
    S.onShardCommit(0, 7, 1u << 2, false);
  for (int I = 0; I < 2; ++I)
    S.onShardCommit(0, 9, 1u << 0, false);

  EXPECT_EQ(S.drain(), 10u);
  SteeringStats SS = S.stats();
  EXPECT_EQ(SS.Drained, 10u);
  EXPECT_EQ(SS.CrossShardDrained, 3u);
  EXPECT_EQ(SS.Groups, 2u);

  ShardPlacement P = S.buildPlacement();
  EXPECT_EQ(P.lookup(&GroupA[0]), 2);
  EXPECT_EQ(P.lookup(&GroupA[1]), 2);
  EXPECT_EQ(P.lookup(&GroupB[0]), 0);
}

TEST(SteeringTest, UnregisteredGroupYieldsNoPlacementRange) {
  uint64_t Cell = 0;
  ShardSteering S(1, 4);
  S.onShardCommit(0, 42, 1u << 1, false);
  EXPECT_EQ(S.drain(), 1u);
  ShardPlacement P = S.buildPlacement();
  EXPECT_EQ(P.lookup(&Cell), -1);
}

TEST(SteeringTest, FullLaneDropsAndCounts) {
  SteeringConfig Cfg;
  Cfg.RingCapacity = 4;
  ShardSteering S(1, 2, Cfg);
  for (int I = 0; I < 10; ++I)
    S.onShardCommit(0, 1, 1u << 0, false);
  SteeringStats Before = S.stats();
  EXPECT_EQ(Before.Observed, 10u);
  EXPECT_EQ(Before.Dropped, 6u);
  EXPECT_EQ(S.drain(), 4u);
}

//===----------------------------------------------------------------------===//
// Differential fuzz smoke and the mutation self-test
//===----------------------------------------------------------------------===//

TEST(ShardFuzzTest, DifferentialSmokePassesBothCommitOrders) {
  for (bool SingleFence : {true, false})
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      ShardFuzzConfig Cfg;
      Cfg.SingleFenceCommit = SingleFence;
      ShardDifferentialResult D = runShardDifferential(Seed, Cfg);
      EXPECT_TRUE(D.passed())
          << "seed " << Seed << " order "
          << (SingleFence ? "single-fence" : "standard") << ": " << D.Error;
    }
}

TEST(ShardFuzzTest, PlanPredictsCrossShardTraffic) {
  // At least one seed in a small window must exercise the 2PC path, or
  // the smoke above proves nothing about cross-shard commits.
  uint64_t Cross = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    ShardFuzzResult R = runShardFuzzIteration(Seed, ShardFuzzConfig());
    EXPECT_TRUE(R.passed()) << "seed " << Seed << ": " << R.Error;
    EXPECT_EQ(R.CrossShardCommits, R.ExpectedCrossShardCommits);
    Cross += R.CrossShardCommits;
  }
  EXPECT_GT(Cross, 0u);
}

// The fault tears the coordinated publish: the first participating
// shard's stripe versions go live at wv before any shard's data is
// written back. The opacity checker must flag the resulting executions
// (stale value under a fresh version / inconsistent snapshot) within a
// bounded seed window — the clean smoke above proves the same seeds pass
// without the fault.
TEST(ShardMutationSelfTest, TornCoordinatedPublishIsCaught) {
  ShardFuzzConfig Cfg;
  Cfg.Fault.TornCoordinatedPublish = true;
  unsigned Violations = 0;
  uint64_t FirstCaught = 0;
  for (uint64_t Seed = 1; Seed <= 60 && Violations < 3; ++Seed) {
    ShardFuzzResult R = runShardFuzzIteration(Seed, Cfg);
    if (R.Check.violation()) {
      if (!FirstCaught)
        FirstCaught = Seed;
      ++Violations;
    }
  }
  EXPECT_GE(Violations, 3u)
      << "opacity checker failed to flag the torn coordinated publish";
  EXPECT_NE(FirstCaught, 0u);
}

} // namespace
