//===- tests/engine_test.cpp - Policy-templated engine family tests ------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and concurrency tests for the policy-templated engine family
/// (src/engine): the ByteLock table and epoch manager primitives, then a
/// typed suite run identically over orec-eager, TLRW and 2PL-undo —
/// read-own-write, undo-on-abort, read-only commit flagging, exactness
/// under contention, and the gate/observer/contention-manager hook
/// surface the family shares with TL2/LibTm. The differential fuzz
/// matrix (tools/check_fuzz.cpp) is the deep conformance check; this
/// file pins the per-engine semantics a fuzz failure would be hard to
/// localize from.
///
//===----------------------------------------------------------------------===//

#include "engine/Engines.h"

#include "check/Fuzz.h"
#include "core/GuideController.h"
#include "stm/Contention.h"
#include "stm/TVar.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace gstm {
namespace {

// ---------------------------------------------------------------------
// ByteLock / ByteLockTable
// ---------------------------------------------------------------------

TEST(ByteLockTest, LayoutIsOneCacheLinePair) {
  static_assert(sizeof(ByteLock) == 128);
  ByteLock L;
  EXPECT_FALSE(L.heldByAnyone());
  L.Readers[7].store(1, std::memory_order_relaxed);
  EXPECT_TRUE(L.heldByAnyone());
  L.Readers[7].store(0, std::memory_order_relaxed);
  L.Owner.store(LockTable::encodeLocked(packPair(1, 0)),
                std::memory_order_relaxed);
  EXPECT_TRUE(L.heldByAnyone());
}

TEST(ByteLockTest, TableMapsAddressesDeterministically) {
  ByteLockTable Table(/*Bits=*/8);
  EXPECT_EQ(Table.size(), size_t{1} << 8);
  std::atomic<uint64_t> Word{0};
  ByteLock &A = Table.lockFor(&Word);
  ByteLock &B = Table.lockFor(&Word);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(&Table.lockAt(Table.indexFor(&Word)), &A);
}

TEST(ByteLockTest, HashKindsSpreadDifferently) {
  ByteLockTable Mix(/*Bits=*/8, StripeHashKind::Mix);
  ByteLockTable Fib(/*Bits=*/8, StripeHashKind::Fibonacci);
  std::atomic<uint64_t> Words[64];
  bool AnyDiffer = false;
  for (auto &W : Words)
    AnyDiffer |= Mix.indexFor(&W) != Fib.indexFor(&W);
  EXPECT_TRUE(AnyDiffer);
}

// ---------------------------------------------------------------------
// EpochManager
// ---------------------------------------------------------------------

TEST(EpochTest, QuiesceReturnsImmediatelyWhenIdle) {
  EpochManager E;
  EXPECT_FALSE(E.active(0));
  E.quiesce(); // must not block
}

TEST(EpochTest, QuiesceWaitsForInFlightAttempt) {
  EpochManager E;
  std::atomic<bool> Entered{false};
  std::atomic<bool> Release{false};
  std::atomic<bool> Quiesced{false};

  std::thread Worker([&] {
    E.enter(1);
    Entered.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
    E.exit(1);
  });
  while (!Entered.load(std::memory_order_acquire))
    std::this_thread::yield();
  EXPECT_TRUE(E.active(1));

  std::thread Waiter([&] {
    E.quiesce();
    Quiesced.store(true, std::memory_order_release);
  });
  // The worker entered before the quiesce target was taken, so the
  // waiter must not come back while it is still inside.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Quiesced.load(std::memory_order_acquire));

  Release.store(true, std::memory_order_release);
  Worker.join();
  Waiter.join();
  EXPECT_TRUE(Quiesced.load(std::memory_order_acquire));
  EXPECT_FALSE(E.active(1));
}

TEST(EpochTest, AttemptsFromLaterEpochsDoNotBlockQuiesce) {
  EpochManager E;
  uint64_t Before = E.currentEpoch();
  E.quiesce();
  EXPECT_GT(E.currentEpoch(), Before);
}

// ---------------------------------------------------------------------
// Typed per-engine suite
// ---------------------------------------------------------------------

/// Counting gate + observer + access observer, to assert the chassis
/// reports through every hook the family promises.
struct CountingHooks : StartGate, TxEventObserver, TxAccessObserver {
  std::atomic<uint64_t> Starts{0}, Commits{0}, Aborts{0};
  std::atomic<uint64_t> ReadOnlyCommits{0};
  std::atomic<uint64_t> Begins{0}, Loads{0}, BufferedLoads{0}, Stores{0},
      LockAcquires{0};

  void onTxStart(ThreadId, TxId) override { ++Starts; }
  void onCommit(const CommitEvent &E) override {
    ++Commits;
    if (E.ReadOnly)
      ++ReadOnlyCommits;
  }
  void onAbort(const AbortEvent &) override { ++Aborts; }
  void onTxBegin(ThreadId, TxId, uint64_t) override { ++Begins; }
  void onTxLoad(ThreadId, const void *, uint64_t, uint64_t,
                bool Buffered) override {
    ++Loads;
    if (Buffered)
      ++BufferedLoads;
  }
  void onTxStore(ThreadId, const void *, uint64_t) override {
    ++Stores;
  }
  void onLockAcquire(ThreadId, uint64_t) override { ++LockAcquires; }
};

struct CountingCm : ContentionManager {
  std::atomic<uint64_t> Begins{0}, Commits{0}, Aborts{0};
  std::string name() const override { return "counting"; }
  void onTxBegin(ThreadId) override { ++Begins; }
  uint64_t onAbort(ThreadId, TxThreadPair, bool, uint32_t,
                   uint64_t) override {
    ++Aborts;
    return 0;
  }
  void onCommit(ThreadId, uint64_t) override { ++Commits; }
};

template <typename Policy> class EngineFamilyTest : public ::testing::Test {
public:
  using Stm = EngineStm<Policy>;
  using Txn = EngineTxn<Policy>;

  static EngineConfig smallConfig() {
    EngineConfig Cfg;
    Cfg.TableBits = 8; // force aliasing so stripe sharing is exercised
    return Cfg;
  }
};

using EnginePolicies =
    ::testing::Types<OrecEagerPolicy, TlrwPolicy, TwoPlPolicy>;
TYPED_TEST_SUITE(EngineFamilyTest, EnginePolicies);

TYPED_TEST(EngineFamilyTest, NameAndTableDefaultsApply) {
  using Stm = typename TestFixture::Stm;
  Stm S;
  EXPECT_STREQ(Stm::name(), TypeParam::Name);
  EXPECT_EQ(S.table().size(), size_t{1} << TypeParam::DefaultTableBits);
  Stm Small(TestFixture::smallConfig());
  EXPECT_EQ(Small.table().size(), size_t{1} << 8);
}

TYPED_TEST(EngineFamilyTest, SingleThreadIncrementsCommit) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  Stm S;
  TVar<uint64_t> Counter(0);
  Txn T(S, /*Thread=*/0);
  for (int I = 0; I < 64; ++I)
    T.run(/*Tx=*/1, [&](Txn &Tx) { Tx.store(Counter, Tx.load(Counter) + 1); });
  EXPECT_EQ(Counter.loadDirect(), 64u);
  EXPECT_EQ(S.stats().commits(), 64u);
  EXPECT_EQ(S.stats().aborts(), 0u);
}

TYPED_TEST(EngineFamilyTest, ReadOwnWriteSeesUncommittedValue) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  Stm S;
  TVar<uint64_t> V(5);
  Txn T(S, 0);
  uint64_t SeenBefore = 0, SeenAfter = 0;
  T.run(1, [&](Txn &Tx) {
    SeenBefore = Tx.load(V);
    Tx.store(V, 42);
    SeenAfter = Tx.load(V);
  });
  EXPECT_EQ(SeenBefore, 5u);
  EXPECT_EQ(SeenAfter, 42u);
  EXPECT_EQ(V.loadDirect(), 42u);
}

TYPED_TEST(EngineFamilyTest, AbortRollsBackInPlaceWrites) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  Stm S;
  TVar<uint64_t> A(10), B(20);
  Txn T(S, 0);
  int Attempt = 0;
  uint64_t ARestored = 0, BRestored = 0;
  T.run(1, [&](Txn &Tx) {
    // The retry must observe the pre-abort values: the first attempt's
    // in-place writes (including the double write to A) were undone.
    ARestored = Tx.load(A);
    BRestored = Tx.load(B);
    Tx.store(A, 11);
    Tx.store(B, 21);
    Tx.store(A, 12);
    if (Attempt++ == 0)
      Tx.retryAbort();
  });
  EXPECT_EQ(ARestored, 10u);
  EXPECT_EQ(BRestored, 20u);
  EXPECT_EQ(A.loadDirect(), 12u);
  EXPECT_EQ(B.loadDirect(), 21u);
  EXPECT_EQ(S.stats().aborts(), 1u);
  EXPECT_EQ(S.stats().commits(), 1u);
}

TYPED_TEST(EngineFamilyTest, ReadOnlyCommitInstallsNoVersion) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  Stm S;
  CountingHooks Hooks;
  S.setObserver(&Hooks);
  TVar<uint64_t> V(7);
  Txn T(S, 0);
  uint64_t ClockBefore = S.clock().sample();
  uint64_t Seen = 0;
  T.run(1, [&](Txn &Tx) { Seen = Tx.load(V); });
  EXPECT_EQ(Seen, 7u);
  EXPECT_EQ(Hooks.ReadOnlyCommits.load(), 1u);
  // A read-only commit must not advance the shared clock.
  EXPECT_EQ(S.clock().sample(), ClockBefore);
  // ...and must leave no lock residue: a writer from another thread can
  // immediately claim everything the reader touched.
  Txn W(S, 1);
  W.run(2, [&](Txn &Tx) { Tx.store(V, 8); });
  EXPECT_EQ(V.loadDirect(), 8u);
}

TYPED_TEST(EngineFamilyTest, HookSurfaceReportsEveryEvent) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  Stm S;
  CountingHooks Hooks;
  S.setGate(&Hooks);
  S.setObserver(&Hooks);
  S.setAccessObserver(&Hooks);
  TVar<uint64_t> V(0);
  Txn T(S, 0);
  int Attempt = 0;
  T.run(1, [&](Txn &Tx) {
    Tx.store(V, Tx.load(V) + 1);
    uint64_t Again = Tx.load(V); // read-own-write: must report Buffered
    (void)Again;
    if (Attempt++ == 0)
      Tx.retryAbort();
  });
  EXPECT_EQ(Hooks.Starts.load(), 2u);
  EXPECT_EQ(Hooks.Begins.load(), 2u);
  EXPECT_EQ(Hooks.Commits.load(), 1u);
  EXPECT_EQ(Hooks.Aborts.load(), 1u);
  EXPECT_EQ(Hooks.Stores.load(), 2u);
  EXPECT_EQ(Hooks.Loads.load(), 4u);
  EXPECT_EQ(Hooks.BufferedLoads.load(), 2u);
  EXPECT_GE(Hooks.LockAcquires.load(), 2u);
}

TYPED_TEST(EngineFamilyTest, ContentionManagerHooksFire) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  Stm S;
  CountingCm Cm;
  S.setContentionManager(&Cm);
  TVar<uint64_t> V(0);
  Txn T(S, 0);
  int Attempt = 0;
  for (int I = 0; I < 4; ++I)
    T.run(1, [&](Txn &Tx) {
      Tx.store(V, Tx.load(V) + 1);
      if (Attempt++ == 0)
        Tx.retryAbort();
    });
  EXPECT_EQ(Cm.Begins.load(), 4u);
  EXPECT_EQ(Cm.Commits.load(), 4u);
  EXPECT_EQ(Cm.Aborts.load(), 1u);
  EXPECT_EQ(V.loadDirect(), 4u);
}

TYPED_TEST(EngineFamilyTest, ConcurrentIncrementsAreExact) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  EngineConfig Cfg = TestFixture::smallConfig();
  Cfg.PreemptShift = 2; // densify interleavings
  Stm S(Cfg);
  constexpr unsigned Threads = 4;
  constexpr unsigned PerThread = 500;
  TVar<uint64_t> Shared(0);
  TVar<uint64_t> Cross[Threads];

  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      Txn T(S, static_cast<ThreadId>(W));
      for (unsigned I = 0; I < PerThread; ++I)
        T.run(1, [&](Txn &Tx) {
          // Read a neighbor's counter first so read/write conflicts (not
          // just write/write) are part of the mix.
          uint64_t Neighbor = Tx.load(Cross[(W + 1) % Threads]);
          (void)Neighbor;
          Tx.store(Shared, Tx.load(Shared) + 1);
          Tx.store(Cross[W], Tx.load(Cross[W]) + 1);
        });
    });
  for (auto &T : Workers)
    T.join();
  S.quiesce();

  EXPECT_EQ(Shared.loadDirect(), uint64_t{Threads} * PerThread);
  for (unsigned W = 0; W < Threads; ++W)
    EXPECT_EQ(Cross[W].loadDirect(), uint64_t{PerThread});
  EXPECT_EQ(S.stats().commits(), uint64_t{Threads} * PerThread);
}

TYPED_TEST(EngineFamilyTest, WriteWriteConflictsResolveByAbort) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  EngineConfig Cfg = TestFixture::smallConfig();
  Cfg.PreemptShift = 2;
  Stm S(Cfg);
  constexpr unsigned Threads = 3;
  constexpr unsigned PerThread = 400;
  // All threads update the same two variables in opposite orders — the
  // classic deadlock shape. No-wait (2pl) and bounded-drain (tlrw)
  // acquisition must resolve it by abort, never by hanging.
  TVar<uint64_t> X(0), Y(0);
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      Txn T(S, static_cast<ThreadId>(W));
      for (unsigned I = 0; I < PerThread; ++I)
        T.run(1, [&](Txn &Tx) {
          if (W % 2 == 0) {
            Tx.store(X, Tx.load(X) + 1);
            Tx.store(Y, Tx.load(Y) + 1);
          } else {
            Tx.store(Y, Tx.load(Y) + 1);
            Tx.store(X, Tx.load(X) + 1);
          }
        });
    });
  for (auto &T : Workers)
    T.join();
  S.quiesce();
  EXPECT_EQ(X.loadDirect(), uint64_t{Threads} * PerThread);
  EXPECT_EQ(Y.loadDirect(), uint64_t{Threads} * PerThread);
}

TYPED_TEST(EngineFamilyTest, CommitsPublishMonotonicVersions) {
  using Stm = typename TestFixture::Stm;
  using Txn = typename TestFixture::Txn;
  Stm S;
  struct VersionLog : TxEventObserver {
    std::vector<uint64_t> Versions;
    void onCommit(const CommitEvent &E) override {
      if (!E.ReadOnly)
        Versions.push_back(E.Version);
    }
    void onAbort(const AbortEvent &) override {}
  } Log;
  S.setObserver(&Log);
  TVar<uint64_t> V(0);
  Txn T(S, 0);
  for (int I = 0; I < 16; ++I)
    T.run(1, [&](Txn &Tx) { Tx.store(V, Tx.load(V) + 1); });
  ASSERT_EQ(Log.Versions.size(), 16u);
  for (size_t I = 1; I < Log.Versions.size(); ++I)
    EXPECT_LT(Log.Versions[I - 1], Log.Versions[I]);
  EXPECT_GT(Log.Versions.front(), 0u);
}

// ---------------------------------------------------------------------
// GuideController wiring (family-wide gate/observer contract)
// ---------------------------------------------------------------------

TEST(EngineGuideTest, GuideControllerPlugsIntoEngineStm) {
  // An empty model resolves every tuple to Unknown, so the gate passes
  // everything — this pins the wiring (EngineStm accepts the controller
  // as both gate and observer and feeds it commits), not the policy.
  Tsa Model;
  GuidedPolicy Policy(Model, 4.0);
  GuideConfig Cfg;
  GuideController Controller(Policy, Cfg);

  OrecEagerStm S;
  S.setGate(&Controller);
  S.setObserver(&Controller);
  TVar<uint64_t> C(0);
  OrecEagerTxn T(S, 0);
  for (int I = 0; I < 8; ++I)
    T.run(1, [&](OrecEagerTxn &Tx) { Tx.store(C, Tx.load(C) + 1); });
  EXPECT_EQ(C.loadDirect(), 8u);
  EXPECT_GE(Controller.stats().GateChecks, 8u);
}

// ---------------------------------------------------------------------
// Engine mutation self-tests: each per-engine fault knob disables one
// safety mechanism, and the *history checkers* (not merely the analytic
// final-state sum) must flag the resulting executions within a bounded
// seed range. The clean control below proves the same seeds pass with
// the faults off, so detection is attributable to the injected bug.
// ---------------------------------------------------------------------

unsigned checkerViolations(FuzzBackend Backend, const FuzzConfig &Cfg,
                           uint64_t MaxSeed, unsigned Enough) {
  unsigned Violations = 0;
  for (uint64_t Seed = 1; Seed <= MaxSeed && Violations < Enough; ++Seed) {
    FuzzRunResult R = runFuzzIteration(Seed, Backend, Cfg);
    if (R.Check.violation())
      ++Violations;
  }
  return Violations;
}

TEST(EngineMutationSelfTest, CleanEnginesPassTheSameSeeds) {
  FuzzConfig Cfg;
  for (FuzzBackend B :
       {FuzzBackend::OrecEager, FuzzBackend::Tlrw, FuzzBackend::TwoPlUndo})
    for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
      FuzzRunResult R = runFuzzIteration(Seed, B, Cfg);
      EXPECT_TRUE(R.passed()) << fuzzBackendName(B) << " seed " << Seed
                              << ": " << R.Error;
    }
}

TEST(EngineMutationSelfTest, SkippedUndoReplayIsCaughtOnOrecEager) {
  FuzzConfig Cfg;
  Cfg.EngineFault.SkipUndoReplay = true;
  EXPECT_GE(checkerViolations(FuzzBackend::OrecEager, Cfg, 60, 3), 3u)
      << "checker failed to flag the skipped-undo-replay mutant";
}

TEST(EngineMutationSelfTest, SkippedUndoReplayIsCaughtOnTwoPl) {
  FuzzConfig Cfg;
  Cfg.EngineFault.SkipUndoReplay = true;
  EXPECT_GE(checkerViolations(FuzzBackend::TwoPlUndo, Cfg, 60, 3), 3u)
      << "checker failed to flag the skipped-undo-replay mutant";
}

TEST(EngineMutationSelfTest, SkippedReadValidationIsCaughtOnOrecEager) {
  FuzzConfig Cfg;
  Cfg.EngineFault.SkipReadValidation = true;
  EXPECT_GE(checkerViolations(FuzzBackend::OrecEager, Cfg, 120, 3), 3u)
      << "checker failed to flag the skipped-validation mutant";
}

TEST(EngineMutationSelfTest, SkippedReaderDrainIsCaughtOnTlrw) {
  FuzzConfig Cfg;
  Cfg.EngineFault.SkipReaderDrain = true;
  EXPECT_GE(checkerViolations(FuzzBackend::Tlrw, Cfg, 120, 3), 3u)
      << "checker failed to flag the skipped-reader-drain mutant";
}

// The full differential harness across every backend — both hand-written
// runtimes, all three engines, and the serial reference — must agree on
// a handful of seeds (the 1024-seed sweep is check_fuzz --smoke).
TEST(EngineMutationSelfTest, DifferentialMatrixAgreesOnSampleSeeds) {
  FuzzConfig Cfg;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    DifferentialResult D = runDifferential(Seed, Cfg);
    EXPECT_TRUE(D.passed()) << "seed " << Seed << ": " << D.Error;
    EXPECT_EQ(D.PerBackend.size(), std::size(AllFuzzBackends));
  }
}

} // namespace
} // namespace gstm
