//===- tests/synquake_detail_test.cpp - game substrate detail tests ---------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "synquake/Experiment.h"
#include "synquake/Game.h"

#include <gtest/gtest.h>

using namespace gstm;

namespace {
SynQuakeParams tinyParams(QuestPattern Quest = QuestPattern::WorstCase4) {
  SynQuakeParams P;
  P.NumPlayers = 32;
  P.Frames = 8;
  P.Quest = Quest;
  P.PhysicsIterations = 64;
  return P;
}
} // namespace

TEST(SynQuakeDetailTest, SetupPlacesEveryPlayerOnTheGrid) {
  LibTm Tm;
  SynQuakeGame Game(tinyParams());
  Game.setup(Tm, 2, 5);
  EXPECT_TRUE(Game.verify()) << "fresh world must satisfy conservation";
}

TEST(SynQuakeDetailTest, ScoresOnlyGrowAndMatchResources) {
  LibTm Tm;
  SynQuakeParams P = tinyParams();
  P.Frames = 24;
  SynQuakeGame Game(P);
  Game.setup(Tm, 2, 5);
  Game.run(Tm, 2);
  EXPECT_TRUE(Game.verify());
  // WorstCase4 pulls everyone to the center: scoring must happen.
  EXPECT_GT(Game.totalScoreDirect(), 0u);
}

TEST(SynQuakeDetailTest, SameSeedSameSetupAcrossInstances) {
  LibTm Tm1, Tm2;
  SynQuakeGame A(tinyParams()), B(tinyParams());
  A.setup(Tm1, 1, 9);
  B.setup(Tm2, 1, 9);
  // Identical seeds produce identical worlds; a single-threaded run of
  // each must produce identical scores (full determinism at 1 thread).
  A.run(Tm1, 1);
  B.run(Tm2, 1);
  EXPECT_EQ(A.totalScoreDirect(), B.totalScoreDirect());
}

TEST(SynQuakeDetailTest, MovingQuestChangesTargetAcrossFrames) {
  // The 4moving quest orbits: players chase it, so after many frames the
  // population cannot all be parked in one cell (unlike 4worst_case).
  LibTm TmA, TmB;
  SynQuakeParams Worst = tinyParams(QuestPattern::WorstCase4);
  SynQuakeParams Moving = tinyParams(QuestPattern::Moving4);
  Worst.Frames = Moving.Frames = 48;
  SynQuakeGame A(Worst), B(Moving);
  A.setup(TmA, 2, 3);
  B.setup(TmB, 2, 3);
  A.run(TmA, 2);
  B.run(TmB, 2);
  EXPECT_TRUE(A.verify());
  EXPECT_TRUE(B.verify());
}

TEST(SynQuakeDetailTest, CenterSpreadTargetsAreDeterministicPerPlayer) {
  // Two runs with the same player population: the spread offsets are a
  // pure function of the player id, so single-threaded runs coincide.
  LibTm Tm1, Tm2;
  SynQuakeGame A(tinyParams(QuestPattern::CenterSpread6));
  SynQuakeGame B(tinyParams(QuestPattern::CenterSpread6));
  A.setup(Tm1, 1, 21);
  B.setup(Tm2, 1, 21);
  A.run(Tm1, 1);
  B.run(Tm2, 1);
  EXPECT_EQ(A.totalScoreDirect(), B.totalScoreDirect());
}

TEST(SynQuakeDetailTest, ExperimentHonorsThreadAndRunCounts) {
  SynQuakeExperimentConfig Cfg;
  Cfg.Threads = 2;
  Cfg.Game = tinyParams(QuestPattern::Quadrants4);
  Cfg.TrainFrames = 8;
  Cfg.ProfileRunsPerQuest = 1;
  Cfg.MeasureRuns = 3;
  SynQuakeExperimentResult R = runSynQuakeExperiment(Cfg);
  EXPECT_EQ(R.Default.FrameStddev.count(), 3u);
  EXPECT_EQ(R.Guided.FrameStddev.count(), 3u);
  EXPECT_TRUE(R.Default.AllVerified);
  EXPECT_TRUE(R.Guided.AllVerified);
  EXPECT_GT(R.Model.numStates(), 0u);
}

TEST(SynQuakeDetailTest, FrameTimesArePositiveAndOrdered) {
  LibTm Tm;
  SynQuakeGame Game(tinyParams());
  Game.setup(Tm, 2, 7);
  std::vector<double> Frames = Game.run(Tm, 2);
  ASSERT_EQ(Frames.size(), 8u);
  for (double F : Frames) {
    EXPECT_GT(F, 0.0);
    EXPECT_LT(F, 5.0) << "a tiny frame cannot take seconds";
  }
}
