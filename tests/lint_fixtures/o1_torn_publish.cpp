// stm_lint fixture: O1 torn publish. A location under a publish()
// contract may be stored relaxed only behind a dominating release
// fence (the single-fence commit idiom); a bare relaxed store lets
// readers observe the new version before the data it guards.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>
#include <cstdint>

struct Entry {
  // stm-order: publish(Meta) requires release-fence-before
  std::atomic<uint64_t> Meta{0};
  std::atomic<uint64_t> Data{0};
};

Entry E;

void tornPublish(uint64_t V) {
  E.Data.store(V, std::memory_order_relaxed);
  E.Meta.store(V, std::memory_order_relaxed); // expect-diag(O1)
}

void fencedPublish(uint64_t V) {
  E.Data.store(V, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  E.Meta.store(V, std::memory_order_relaxed); // fine: fence dominates
}

void releasePublish(uint64_t V) {
  E.Data.store(V, std::memory_order_relaxed);
  E.Meta.store(V, std::memory_order_release); // fine: release store
}

void branchFence(uint64_t V, bool Fast) {
  if (Fast) {
    std::atomic_thread_fence(std::memory_order_release);
  }
  E.Meta.store(V, std::memory_order_relaxed); // expect-diag(O1)
}
