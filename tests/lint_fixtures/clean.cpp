// stm_lint fixture: negative control. Everything here follows the
// transaction discipline, so the file must lint clean — zero
// expectations, zero diagnostics.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>
#include <cstdio>

struct Tl2Stm;
struct Tl2Txn {
  template <typename F> void run(unsigned, F &&);
};
template <typename T> struct TVar;

std::atomic<unsigned> Stats{0};

unsigned mixBits(unsigned V) { return V ^ (V >> 16); }

/// Transactional context using only the handle API and safe helpers.
void wellBehaved(Tl2Txn &Tx, TVar<unsigned> &X) {
  unsigned V = Tx.load(X);
  Tx.store(X, mixBits(V));
}

/// Handle-passed callees are checked at their own definition, not at the
/// call site.
void delegating(Tl2Txn &Tx, TVar<unsigned> &X) { wellBehaved(Tx, X); }

/// A *driver* takes a descriptor and calls .run() on it; its own body is
/// not transactional context, so pre/post work is unrestricted.
void driver(Tl2Txn &Txn, TVar<unsigned> &X) {
  Stats.fetch_add(1u); // outside any attempt: allowed in a driver
  Txn.run(0, [&](Tl2Txn &Tx) { wellBehaved(Tx, X); });
  std::printf("committed\n"); // after the attempt loop: allowed
}
