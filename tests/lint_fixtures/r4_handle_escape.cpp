// stm_lint fixture: R4 transaction handle escaping its body.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <functional>

struct Tl2Txn {
  template <typename F> void run(unsigned, F &&);
};

Tl2Txn *Leaked;
std::function<void()> Deferred;

void drive() {
  Tl2Txn Txn;
  Txn.run(0, [&](Tl2Txn &Tx) {
    Leaked = &Tx;                                // expect-diag(R4)
    Deferred = [&Tx]() {};                       // expect-diag(R4)
    auto Ok = [](int V) { return V + 1; };       // fine: no handle capture
    (void)Ok;
  });
}
