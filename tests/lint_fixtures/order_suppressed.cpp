// stm_lint fixture: suppression interplay with the ordering pass. O-rule
// findings feed the same allow() machinery as R1-R6: a rationale-bearing
// allow(O2) silences the pairing check, and an allow without a rationale
// still trips S1.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>
#include <cstdint>

// stm-order: pair(Flag) acquire-load release-store
std::atomic<uint64_t> Flag{0};

uint64_t deliberateRelaxed() {
  // stm-lint: allow(O2) monotonic flag observed under an external lock;
  // the acquire is provided by the lock's own ordering.
  return Flag.load(std::memory_order_relaxed);
}

uint64_t undocumentedRelaxed() {
  /* expect-diag(S1) */ // stm-lint: allow(O2)
  return Flag.load(std::memory_order_relaxed);
}
