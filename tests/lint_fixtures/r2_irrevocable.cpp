// stm_lint fixture: R2 irrevocable operations inside transaction bodies.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>

struct Tl2Txn;
struct Node {
  int V;
};

std::mutex M;

char Slab[sizeof(Node)];

void txnBody(Tl2Txn &Tx) {
  Node *N = new Node{1};                       // expect-diag(R2)
  delete N;                                    // expect-diag(R2)
  Node *InPlace = new (Slab) Node{2};          // placement: no diag
  (void)InPlace;
  void *P = std::malloc(16);                   // expect-diag(R2)
  std::free(P);                                // expect-diag(R2)
  std::printf("inside txn\n");                 // expect-diag(R2)
  std::cout << "inside txn";                   // expect-diag(R2)
  std::scoped_lock Guard(M);                   // expect-diag(R2)
  M.lock();                                    // expect-diag(R2)
  M.unlock();                                  // expect-diag(R2)
  std::this_thread::sleep_for(std::chrono::milliseconds(1)); // expect-diag(R2)
  std::exit(1);                                // expect-diag(R2)
  (void)Tx;
}
