// stm_lint fixture: O3 fence contracts. A `fence(seq_cst)
// before(CALLEE)` comment binds the next call to CALLEE in its
// function; the call must be dominated by a seq_cst fence issued at or
// after the contract line. A contract binding no call is itself a
// violation — the annotation drifted from the code it pinned.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>

void validateReadSet();
void writeBack();

void fencedCommit() {
  // stm-order: fence(seq_cst) before(validateReadSet) label(fixture fenced commit)
  std::atomic_thread_fence(std::memory_order_seq_cst);
  validateReadSet();        // fine: fence dominates
  writeBack();
}

void unfencedCommit() {
  // stm-order: fence(seq_cst) before(validateReadSet) label(fixture unfenced commit)
  std::atomic_thread_fence(std::memory_order_acquire);
  validateReadSet();        // expect-diag(O3)
  writeBack();
}

void branchFencedCommit(bool Fast) {
  // stm-order: fence(seq_cst) before(validateReadSet) label(fixture branch-fenced commit)
  if (Fast) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  validateReadSet();        // expect-diag(O3)
}

void driftedCommit() {
  // The contract binds no call, which is itself the violation:
  /* expect-diag(O3) */ // stm-order: fence(seq_cst) before(validateReadSet) label(fixture drifted commit)
  std::atomic_thread_fence(std::memory_order_seq_cst);
  writeBack();
}
