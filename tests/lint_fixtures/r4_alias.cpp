// stm_lint fixture: R4 through a reference alias of the handle. The
// dataflow upgrade tracks `auto &H = Tx;` bindings, so escapes through
// the alias are caught exactly like escapes through the handle itself.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <functional>

struct Tl2Txn {
  template <typename F> void run(unsigned, F &&);
  unsigned load(unsigned *);
};

Tl2Txn *Leaked;
std::function<void()> Deferred;
unsigned *LeakedCount;

void drive() {
  Tl2Txn Txn;
  Txn.run(0, [&](Tl2Txn &Tx) {
    Tl2Txn &Handle = Tx;
    Leaked = &Handle;                          // expect-diag(R4)
    auto &Again = Handle;                      // alias of an alias
    Deferred = [&Again]() {};                  // expect-diag(R4)
    unsigned Count = 0;
    unsigned &Ref = Count;                     // fine: not a handle alias
    LeakedCount = &Ref;
    (void)Tx.load(&Count);
  });
}
