// stm_lint fixture: R3 non-determinism sources inside transaction bodies.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

struct Tl2Stm;
struct Tl2Txn {
  template <typename F> void run(unsigned, F &&);
};

void drive(Tl2Stm &Stm) {
  Tl2Txn Txn;
  Txn.run(0, [&](Tl2Txn &Tx) {
    int R = std::rand();                           // expect-diag(R3)
    std::random_device Rd;                         // expect-diag(R3)
    auto T0 = std::chrono::steady_clock::now();    // expect-diag(R3)
    auto T1 = std::chrono::system_clock::now();    // expect-diag(R3)
    long W = time(nullptr);                        // expect-diag(R3)
    (void)R;
    (void)T0;
    (void)T1;
    (void)W;
    (void)Tx;
  });
}
