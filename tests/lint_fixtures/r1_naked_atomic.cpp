// stm_lint fixture: R1 naked shared access inside transaction bodies.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.
// Every line below annotated with expect-diag(<rule>) MUST produce
// exactly that diagnostic, and no other line may produce any.

#include <atomic>

struct Tl2Stm;
struct Tl2Txn;
template <typename T> struct TVar;

std::atomic<unsigned> Counter{0};
TVar<unsigned> *Shared;
std::atomic_flag Spin;

void txnBody(Tl2Txn &Tx, TVar<unsigned> &X) {
  Tx.load(X);                                  // sanctioned: via handle
  Tx.store(X, 1u);                             // sanctioned: via handle
  Counter.load();                              // expect-diag(R1)
  Counter.store(2u);                           // expect-diag(R1)
  Counter.fetch_add(1u);                       // expect-diag(R1)
  unsigned Expected = 2u;
  Counter.compare_exchange_strong(Expected, 3u); // expect-diag(R1)
  Shared->loadDirect();                        // expect-diag(R1)
  Shared->storeDirect(4u);                     // expect-diag(R1)
  Spin.test_and_set();                         // expect-diag(R1)
}
