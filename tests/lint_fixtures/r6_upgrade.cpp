// stm_lint fixture: R6 read-to-write upgrade hazard. Under the tlrw
// profile (read-locks taken per read), storing to a location the body
// already read risks an upgrade deadlock/abort cycle; the write-lock
// should be taken first by writing before reading, or the read done
// through a to-be-written intent API. Engines without reader-writer
// locks (tl2) are exempt — the same shape is the common read-modify-
// write idiom there.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <cstdint>

struct TlrwTxn {
  uint64_t load(uint64_t *);
  void store(uint64_t *, uint64_t);
};
struct Tl2Txn {
  uint64_t load(uint64_t *);
  void store(uint64_t *, uint64_t);
};

uint64_t A, B, C;

void tlrwBody(TlrwTxn &Tx) {
  uint64_t V = Tx.load(&A);
  Tx.store(&B, V);           // fine: different location
  Tx.store(&A, V + 1);       // expect-diag(R6)
  Tx.store(&C, Tx.load(&C) + 1); // nested form: store precedes load, exempt
}

void tl2Body(Tl2Txn &Tx) {
  uint64_t V = Tx.load(&A);
  Tx.store(&A, V + 1);       // fine: tl2 has no read locks to upgrade
}
