// stm_lint fixture: per-engine R2 profiles. Undo-log engines (orec-
// eager, tlrw, 2pl-undo) apply in-place writes before commit, and the
// executor only unwinds TxAbortException — so `throw <expr>` escaping a
// body leaves undo-logged writes applied. Redo-log engines (tl2, libtm)
// buffer writes, so the same throw merely drops the buffer.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

struct OrecEagerTxn {
  unsigned load(unsigned *);
};
struct TwoPlTxn {
  unsigned load(unsigned *);
};
struct Tl2Txn {
  unsigned load(unsigned *);
};

struct Overflow {};

void orecBody(OrecEagerTxn &Tx) {
  unsigned *P = nullptr;
  if (Tx.load(P) > 7)
    throw Overflow{};        // expect-diag(R2)
}

void twoPlRethrow(TwoPlTxn &Tx) {
  (void)Tx;
  throw;                     // fine: rethrow only exists inside a catch
}

void tl2Body(Tl2Txn &Tx) {
  unsigned *P = nullptr;
  if (Tx.load(P) > 7)
    throw Overflow{};        // fine: redo-log engine, buffer is dropped
}
