// stm_lint fixture: O2 acquire/release pairing. A pair() location must
// be loaded with acquire (or stronger) and stored with release (or
// stronger); a relaxed store is tolerated only behind a dominating
// release fence, the fence-publication form.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>
#include <cstdint>

// stm-order: pair(State) acquire-load release-store
std::atomic<uint64_t> State{0};

uint64_t relaxedLoad() {
  return State.load(std::memory_order_relaxed); // expect-diag(O2)
}

void relaxedStore(uint64_t V) {
  State.store(V, std::memory_order_relaxed);    // expect-diag(O2)
}

uint64_t pairedProperly(uint64_t V) {
  State.store(V, std::memory_order_release);    // fine
  return State.load(std::memory_order_acquire); // fine
}

void fencePublication(uint64_t V) {
  std::atomic_thread_fence(std::memory_order_release);
  State.store(V, std::memory_order_relaxed);    // fine: fence dominates
}

uint64_t rmwExempt() {
  // RMWs are inventoried, not checked: CAS-retry loops make relaxed
  // forms deliberate, reviewed choices.
  return State.fetch_add(1, std::memory_order_relaxed);
}
