// stm_lint fixture: the engine-internal profile. A template-parameter
// handle type (`TxnT`) marks policy plumbing that runs below the
// transactional API: it touches orecs and clocks directly, so R1 naked-
// access and R5 callee propagation are off. The same body over a
// concrete engine handle (Tl2Txn) is user-level code and keeps both.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>
#include <cstdint>

std::atomic<uint64_t> Orec{0};

template <typename TxnT> void policyHelper(TxnT &Tx) {
  (void)Tx;
  Orec.store(1, std::memory_order_release); // fine: engine-internal
}

template <typename TxnT>
  requires(sizeof(TxnT) > 0)
void constrainedPolicyHelper(TxnT &Tx) {
  (void)Tx;
  Orec.store(2, std::memory_order_release); // fine: engine-internal
}

struct Tl2Txn {
  uint64_t load(uint64_t *);
};

void userBody(Tl2Txn &Tx) {
  (void)Tx;
  Orec.store(3, std::memory_order_release); // expect-diag(R1)
}
