// stm_lint fixture: R5 transactional context calling transaction-unsafe
// helpers, including through a call chain.
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>

struct Tl2Txn {
  template <typename F> void run(unsigned, F &&);
};

std::atomic<unsigned> Hits{0};

unsigned bumpHits() { return Hits.fetch_add(1u); } // unsafe root (R1)

unsigned throughChain() { return bumpHits() + 1u; } // unsafe via call

unsigned pureHelper(unsigned V) { return V * 2654435761u; } // safe

void txnParamContext(Tl2Txn &Tx) {
  pureHelper(7u);                              // fine: callee is clean
  bumpHits();                                  // expect-diag(R5)
  (void)Tx;
}

void drive() {
  Tl2Txn Txn;
  Txn.run(0, [&](Tl2Txn &Tx) {
    throughChain();                            // expect-diag(R5)
    (void)Tx;
  });
}
