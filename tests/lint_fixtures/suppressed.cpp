// stm_lint fixture: suppression comments. A rationale-bearing allow()
// silences its rule; an allow() without a rationale trips S1 (and still
// suppresses, so the S1 is the only diagnostic from that line).
// Not built; linted by the lint_test ctest via `stm_lint --expect`.

#include <atomic>
#include <cstdio>

struct Tl2Txn;

std::atomic<unsigned> HighWater{0};

void txnBody(Tl2Txn &Tx) {
  // stm-lint: allow(R1) monotonic watermark; racy reads are fine here.
  HighWater.fetch_add(1u);
  // stm-lint: allow(R2) the rationale may wrap onto the following
  // comment line and must still reach the code underneath.
  std::printf("suppressed\n");
  /* expect-diag(S1) */ // stm-lint: allow(R2)
  std::printf("suppressed but missing a rationale\n");
  (void)Tx;
}
