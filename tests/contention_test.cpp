//===- tests/contention_test.cpp - contention manager tests ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stm/Contention.h"

#include "stm/TVar.h"
#include "stm/Tl2.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace gstm;

TEST(ContentionFactoryTest, CreatesByName) {
  for (const char *Name : {"polite", "karma", "greedy"}) {
    auto Cm = createContentionManager(Name);
    ASSERT_NE(Cm, nullptr) << Name;
    EXPECT_EQ(Cm->name(), Name);
  }
  EXPECT_EQ(createContentionManager("none"), nullptr);
  EXPECT_EQ(createContentionManager("bogus"), nullptr);
}

TEST(PoliteTest, BackoffGrowsWithAttemptsAndStaysBounded) {
  PoliteManager Cm;
  uint64_t EarlyMax = 0, LateMax = 0;
  for (int I = 0; I < 200; ++I) {
    EarlyMax = std::max(EarlyMax, Cm.onAbort(0, 0, false, /*Attempts=*/1, 10));
    LateMax = std::max(LateMax, Cm.onAbort(0, 0, false, /*Attempts=*/10, 10));
  }
  EXPECT_LE(EarlyMax, 200u) << "attempt-1 window is [0, 200) ns";
  EXPECT_GT(LateMax, EarlyMax) << "window must widen with retries";
  EXPECT_LE(LateMax, 100000u) << "capped at ~0.1 ms";
}

TEST(KarmaTest, HigherKarmaRetriesImmediately) {
  KarmaManager Cm;
  // Thread 0 invests lots of work; thread 1 little.
  EXPECT_EQ(Cm.onAbort(/*Thread=*/0, packPair(0, 1), true, 1, /*Opens=*/100),
            0u)
      << "no karma recorded for thread 1 yet: retry now";
  EXPECT_EQ(Cm.karmaOf(0), 100u);

  // Thread 1 conflicts with rich thread 0: must back off.
  uint64_t Backoff = Cm.onAbort(/*Thread=*/1, packPair(0, 0), true, 1,
                                /*Opens=*/5);
  EXPECT_GT(Backoff, 0u);

  // After thread 0 commits its karma resets; thread 1 now outranks it.
  Cm.onCommit(0, 100);
  EXPECT_EQ(Cm.karmaOf(0), 0u);
  EXPECT_EQ(Cm.onAbort(1, packPair(0, 0), true, 2, 5), 0u);
}

TEST(KarmaTest, KarmaAccumulatesAcrossRetries) {
  KarmaManager Cm;
  Cm.onAbort(3, 0, false, 1, 10);
  Cm.onAbort(3, 0, false, 2, 10);
  Cm.onAbort(3, 0, false, 3, 10);
  EXPECT_EQ(Cm.karmaOf(3), 30u)
      << "starved transactions accumulate priority";
}

TEST(GreedyTest, OlderTransactionWins) {
  GreedyManager Cm;
  Cm.onTxBegin(0); // older
  Cm.onTxBegin(1); // younger
  EXPECT_EQ(Cm.onAbort(/*Thread=*/0, packPair(0, 1), true, 1, 10), 0u)
      << "older transaction presses on";
  EXPECT_GT(Cm.onAbort(/*Thread=*/1, packPair(0, 0), true, 1, 10), 0u)
      << "younger transaction defers";

  // A fresh transaction on thread 0 is now younger than thread 1's.
  Cm.onTxBegin(0);
  EXPECT_GT(Cm.onAbort(0, packPair(0, 1), true, 1, 10), 0u);
  EXPECT_EQ(Cm.onAbort(1, packPair(0, 0), true, 1, 10), 0u);
}

TEST(GreedyTest, UnknownEnemyRetriesImmediately) {
  GreedyManager Cm;
  Cm.onTxBegin(2);
  EXPECT_EQ(Cm.onAbort(2, /*Enemy=*/0, false, 1, 10), 0u);
}

namespace {
/// Drives a contended counter under the given manager and checks
/// correctness + progress.
void runCounterUnder(ContentionManager *Cm) {
  Tl2Config Cfg;
  Cfg.PreemptShift = 5;
  Tl2Stm Stm(Cfg);
  Stm.setContentionManager(Cm);
  TVar<uint64_t> X{0};
  constexpr unsigned Threads = 6, PerThread = 200;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < PerThread; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(X.loadDirect(), uint64_t{Threads} * PerThread);
}
} // namespace

TEST(ContentionIntegrationTest, AllManagersPreserveCorrectness) {
  for (const char *Name : {"polite", "karma", "greedy"}) {
    auto Cm = createContentionManager(Name);
    runCounterUnder(Cm.get());
  }
  runCounterUnder(nullptr); // config backoff fallback
}

TEST(ContentionIntegrationTest, ManagersWorkUnderEagerDetection) {
  for (const char *Name : {"polite", "karma", "greedy"}) {
    auto Cm = createContentionManager(Name);
    Tl2Config Cfg;
    Cfg.Detection = ConflictDetection::Eager;
    Cfg.PreemptShift = 5;
    Tl2Stm Stm(Cfg);
    Stm.setContentionManager(Cm.get());
    TVar<uint64_t> X{0};
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < 4; ++T)
      Workers.emplace_back([&, T] {
        Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
        for (unsigned I = 0; I < 150; ++I)
          Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });
      });
    for (auto &W : Workers)
      W.join();
    EXPECT_EQ(X.loadDirect(), 600u) << Name;
  }
}
