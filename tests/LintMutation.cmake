# Mutation self-test for the stm_lint memory-ordering pass (ctest
# lint_mutation). Copies the engine sources into a scratch tree, applies
# one ordering mutant at a time — deleting the seq_cst fence from each
# single-fence commit path, downgrading a version-publish release store
# to relaxed — and asserts stm_lint fails each mutant with the right
# O-rule and path label, while the pristine copy stays clean. This is
# the executable proof that re-removing the 5343567 store-buffering
# fence cannot land silently.
#
# Inputs: -DSTM_LINT=<stm_lint binary> -DSOURCE_DIR=<repo root>
#         -DWORK_DIR=<scratch dir>

foreach(VAR STM_LINT SOURCE_DIR WORK_DIR)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "LintMutation.cmake: ${VAR} not set")
  endif()
endforeach()

# Fresh copy of every directory the ordering contracts live in.
function(reset_tree)
  file(REMOVE_RECURSE ${WORK_DIR}/src)
  file(COPY ${SOURCE_DIR}/src/stm ${SOURCE_DIR}/src/libtm
            ${SOURCE_DIR}/src/engine ${SOURCE_DIR}/src/shard
       DESTINATION ${WORK_DIR}/src)
endfunction()

# Applies one textual mutant; a MATCH that no longer appears in FILE is
# a hard error — the mutation corpus must never rot into no-ops.
function(mutate FILE MATCH REPLACE)
  file(READ ${WORK_DIR}/${FILE} OLD)
  string(REPLACE "${MATCH}" "${REPLACE}" NEW "${OLD}")
  if(NEW STREQUAL OLD)
    message(FATAL_ERROR
      "lint_mutation: pattern not found in ${FILE}: ${MATCH}")
  endif()
  file(WRITE ${WORK_DIR}/${FILE} "${NEW}")
endfunction()

# Runs stm_lint over the scratch tree and asserts exit code + output.
function(run_lint LABEL EXPECT_RC)
  execute_process(
    COMMAND ${STM_LINT} --root=${WORK_DIR} src
    OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE RC)
  if(NOT RC EQUAL ${EXPECT_RC})
    message(FATAL_ERROR "lint_mutation[${LABEL}]: expected exit "
      "${EXPECT_RC}, got ${RC}\n${OUT}${ERR}")
  endif()
  foreach(PATTERN ${ARGN})
    string(FIND "${OUT}" "${PATTERN}" AT)
    if(AT EQUAL -1)
      message(FATAL_ERROR "lint_mutation[${LABEL}]: output lacks "
        "\"${PATTERN}\"\n${OUT}${ERR}")
    endif()
  endforeach()
  message(STATUS "lint_mutation[${LABEL}]: ok")
endfunction()

set(SEQ_FENCE "std::atomic_thread_fence(std::memory_order_seq_cst);")

# Control: the pristine tree must be clean, or every mutant result is
# noise.
reset_tree()
run_lint(pristine 0)

# Fence deletion from each single-fence commit path -> O3 names the path.
reset_tree()
mutate(src/stm/Tl2.cpp "${SEQ_FENCE}" "")
run_lint(tl2-fence-removed 1 "[O3]"
         "Tl2Txn::commitOrThrow single-fence commit")

reset_tree()
mutate(src/libtm/LibTm.cpp "${SEQ_FENCE}" "")
run_lint(libtm-fence-removed 1 "[O3]"
         "LibTxn::commitOrThrow single-fence commit")

reset_tree()
mutate(src/engine/OrecEager.h "${SEQ_FENCE}" "")
run_lint(orec-fence-removed 1 "[O3]"
         "OrecEagerPolicy::commit single-fence commit")

reset_tree()
mutate(src/shard/Sharded.cpp "${SEQ_FENCE}" "")
run_lint(shard-fence-removed 1 "[O3]"
         "ShardedTxn::commitOrThrow cross-shard 2PC")

# Weakening the fence is as fatal as deleting it.
reset_tree()
mutate(src/stm/Tl2.cpp "${SEQ_FENCE}"
       "std::atomic_thread_fence(std::memory_order_acquire);")
run_lint(tl2-fence-weakened 1 "[O3]"
         "Tl2Txn::commitOrThrow single-fence commit")

reset_tree()
mutate(src/shard/Sharded.cpp "${SEQ_FENCE}"
       "std::atomic_thread_fence(std::memory_order_acquire);")
run_lint(shard-fence-weakened 1 "[O3]"
         "ShardedTxn::commitOrThrow cross-shard 2PC")

# Downgrading the coordinated publish's grouped release stripe stores to
# relaxed (the torn-fault and standard walks share the spelling) leaves
# no dominating release fence on the standard path -> O1 via the
# publish(Stripe) contract on the cached stripe pointers.
reset_tree()
mutate(src/shard/Sharded.cpp
       "Acquired[J].Stripe->store(LockTable::encodeVersion(Wv),
                                    std::memory_order_release);"
       "Acquired[J].Stripe->store(LockTable::encodeVersion(Wv),
                                    std::memory_order_relaxed);")
run_lint(shard-torn-publish 1 "[O1]" "Stripe")

# Torn publish: downgrading a standard-path version publish to relaxed
# leaves no dominating release fence -> O1.
reset_tree()
mutate(src/stm/Tl2.cpp
       ".store(LockTable::encodeVersion(Wv), std::memory_order_release)"
       ".store(LockTable::encodeVersion(Wv), std::memory_order_relaxed)")
run_lint(tl2-torn-publish 1 "[O1]" "stripeAt")

reset_tree()
mutate(src/engine/OrecEager.h
       "LockTable::encodeVersion(Wv), std::memory_order_release)"
       "LockTable::encodeVersion(Wv), std::memory_order_relaxed)")
run_lint(orec-torn-publish 1 "[O1]" "stripeAt")

reset_tree()
message(STATUS "lint_mutation: all mutants flagged, pristine clean")
