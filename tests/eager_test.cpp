//===- tests/eager_test.cpp - eager conflict-detection tests ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// The paper argues (Sec. II) that demonstrating guided execution on lazy
// detection implies the eager case; this suite validates our actual eager
// implementation (encounter-time locking, write-through with undo) so the
// ablation bench compares two correct STMs.
//
//===----------------------------------------------------------------------===//

#include "core/Runner.h"
#include "stamp/Registry.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

using namespace gstm;

namespace {
Tl2Config eagerConfig(unsigned PreemptShift = 0) {
  Tl2Config Cfg;
  Cfg.Detection = ConflictDetection::Eager;
  Cfg.PreemptShift = PreemptShift;
  return Cfg;
}
} // namespace

TEST(EagerTest, SingleThreadReadWrite) {
  Tl2Stm Stm(eagerConfig());
  TVar<uint64_t> X{5};
  Tl2Txn Txn(Stm, 0);
  Txn.run(0, [&](Tl2Txn &Tx) {
    EXPECT_EQ(Tx.load(X), 5u);
    Tx.store(X, 9);
    EXPECT_EQ(Tx.load(X), 9u) << "write-through must be readable in-txn";
  });
  EXPECT_EQ(X.loadDirect(), 9u);
}

TEST(EagerTest, AbortUndoesInPlaceWrites) {
  Tl2Stm Stm(eagerConfig());
  TVar<uint64_t> X{1}, Y{2};
  Tl2Txn Txn(Stm, 0);
  int Attempts = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    Tx.store(X, 100);
    Tx.store(Y, 200);
    Tx.store(X, 101); // second write to X: undo must restore the oldest
    if (++Attempts == 1) {
      // The in-place values are visible to ourselves pre-abort.
      EXPECT_EQ(Tx.load(X), 101u);
      Tx.retryAbort();
    }
  });
  EXPECT_EQ(Attempts, 2);
  EXPECT_EQ(X.loadDirect(), 101u);
  EXPECT_EQ(Y.loadDirect(), 200u);
}

TEST(EagerTest, UndoRestoresOriginalOnPermanentFields) {
  // Observe the rollback through a second STM handle after forcing
  // exactly one abort: between the abort and the retry's commit, the
  // stale value must have been restored (checked indirectly: the final
  // committed state reflects exactly one increment).
  Tl2Stm Stm(eagerConfig());
  TVar<uint64_t> X{7};
  Tl2Txn Txn(Stm, 0);
  int Attempts = 0;
  Txn.run(0, [&](Tl2Txn &Tx) {
    Tx.store(X, Tx.load(X) + 1);
    if (++Attempts == 1)
      Tx.retryAbort();
  });
  EXPECT_EQ(X.loadDirect(), 8u) << "rollback then exactly one increment";
}

TEST(EagerTest, WriterBlocksConflictingWriterImmediately) {
  // Two eager writers to the same location: the second must abort at
  // encounter time (detected via the abort cause naming the first).
  Tl2Stm Stm(eagerConfig());
  TVar<uint64_t> X{0};

  struct Probe : TxEventObserver {
    std::atomic<uint64_t> OwnerAborts{0};
    void onCommit(const CommitEvent &) override {}
    void onAbort(const AbortEvent &E) override {
      if (E.Kind == AbortCauseKind::KnownCommitter)
        OwnerAborts.fetch_add(1);
    }
  } Obs;
  Stm.setObserver(&Obs);

  constexpr unsigned Threads = 6;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Config Unused;
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < 200; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) {
          Tx.store(X, Tx.load(X) + 1);
        });
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(X.loadDirect(), 6u * 200u);
}

TEST(EagerTest, CounterUnderPreemptionLosesNothing) {
  Tl2Stm Stm(eagerConfig(/*PreemptShift=*/5));
  TVar<uint64_t> X{0};
  constexpr unsigned Threads = 8, PerThread = 300;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      for (unsigned I = 0; I < PerThread; ++I)
        Txn.run(0, [&](Tl2Txn &Tx) { Tx.store(X, Tx.load(X) + 1); });
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(X.loadDirect(), uint64_t{Threads} * PerThread);
  EXPECT_GT(Stm.stats().aborts(), 0u)
      << "preemption should force real conflicts";
}

TEST(EagerTest, BankConservationUnderContention) {
  Tl2Stm Stm(eagerConfig(/*PreemptShift=*/5));
  constexpr unsigned N = 16;
  std::vector<std::unique_ptr<TVar<int64_t>>> Accounts;
  for (unsigned I = 0; I < N; ++I)
    Accounts.push_back(std::make_unique<TVar<int64_t>>(500));

  constexpr unsigned Threads = 6;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, static_cast<ThreadId>(T));
      SplitMix64 Rng(T + 11);
      for (int I = 0; I < 250; ++I) {
        unsigned From = Rng.nextBounded(N), To = Rng.nextBounded(N);
        int64_t Amt = static_cast<int64_t>(Rng.nextBounded(30));
        Txn.run(0, [&](Tl2Txn &Tx) {
          Tx.store(*Accounts[From], Tx.load(*Accounts[From]) - Amt);
          Tx.store(*Accounts[To], Tx.load(*Accounts[To]) + Amt);
        });
      }
    });
  for (auto &W : Workers)
    W.join();

  int64_t Total = 0;
  for (auto &A : Accounts)
    Total += A->loadDirect();
  EXPECT_EQ(Total, int64_t{N} * 500);
}

TEST(EagerTest, SnapshotIsolationHolds) {
  Tl2Stm Stm(eagerConfig());
  TVar<uint64_t> X{0}, Y{0};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    Tl2Txn Txn(Stm, 0);
    for (unsigned I = 1; I <= 400; ++I)
      Txn.run(0, [&](Tl2Txn &Tx) {
        Tx.store(X, I);
        Tx.store(Y, I);
      });
    Stop.store(true);
  });
  std::thread Reader([&] {
    Tl2Txn Txn(Stm, 1);
    while (!Stop.load()) {
      uint64_t A = 0, B = 0;
      Txn.run(1, [&](Tl2Txn &Tx) {
        A = Tx.load(X);
        B = Tx.load(Y);
      });
      if (A != B)
        Violations.fetch_add(1);
    }
  });
  Writer.join();
  Reader.join();
  EXPECT_EQ(Violations.load(), 0u)
      << "readers must never observe a torn eager write pair";
}

TEST(EagerTest, AllWorkloadsVerifyUnderEagerDetection) {
  // The STAMP ports are detection-agnostic; every invariant must hold
  // under eager locking too.
  for (const std::string &Name : stampWorkloadNames()) {
    auto W = createStampWorkload(Name, SizeClass::Small);
    RunnerConfig Cfg;
    Cfg.Threads = 4;
    Cfg.Stm.Detection = ConflictDetection::Eager;
    RunResult R = runWorkloadOnce(*W, Cfg, 17, nullptr);
    EXPECT_TRUE(R.Verified) << Name << " under eager detection";
    EXPECT_GT(R.Commits, 0u);
  }
}
