//===- tests/controller_test.cpp - guided-execution controller tests -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/GuideController.h"

#include "support/Timer.h"

#include <gtest/gtest.h>

#include <thread>

using namespace gstm;

namespace {

StateTuple makeTuple(TxId CommitTx, ThreadId CommitThread,
                     std::initializer_list<std::pair<TxId, ThreadId>>
                         Aborts = {}) {
  StateTuple S;
  S.Commit = packPair(CommitTx, CommitThread);
  for (auto [Tx, T] : Aborts)
    S.Aborts.push_back(packPair(Tx, T));
  S.canonicalize();
  return S;
}

/// Model with A -> B dominant and A -> D rare; B's tuple contains pair
/// (1,1) and (2,3); D's contains (3,4).
Tsa biasedModel() {
  Tsa Model;
  StateTuple A = makeTuple(0, 0);
  StateTuple B = makeTuple(1, 1, {{2, 3}});
  StateTuple D = makeTuple(3, 4);
  std::vector<StateTuple> Run;
  for (int I = 0; I < 9; ++I) {
    Run.push_back(A);
    Run.push_back(B);
  }
  Run.push_back(A);
  Run.push_back(D);
  Model.addRun(Run);
  return Model;
}

} // namespace

TEST(GuideControllerTest, StartsUnknownAndTracksCommits) {
  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideConfig Cfg;
  GuideController Controller(Policy, Cfg);

  EXPECT_EQ(Controller.currentState(), UnknownState);

  // Commit of (tx 0, thread 0) with no pending aborts forms tuple A.
  Controller.onCommit(CommitEvent{0, 0, 1, 0});
  EXPECT_EQ(Controller.currentState(), Policy.resolve(makeTuple(0, 0)));
  EXPECT_EQ(Controller.stats().KnownStates, 1u);
}

TEST(GuideControllerTest, PendingAbortsFoldIntoNextCommit) {
  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideController Controller(Policy, GuideConfig{});

  Controller.onAbort(AbortEvent{3, 2, AbortCauseKind::UnknownCommitter, 0, 0});
  Controller.onCommit(CommitEvent{1, 1, 2, 0});
  // Tuple {<c3>, <b1>} is state B in the model.
  EXPECT_EQ(Controller.currentState(),
            Policy.resolve(makeTuple(1, 1, {{2, 3}})));
}

TEST(GuideControllerTest, UnknownTupleResetsToUnknown) {
  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideController Controller(Policy, GuideConfig{});

  Controller.onCommit(CommitEvent{9, 9, 1, 0});
  EXPECT_EQ(Controller.currentState(), UnknownState);
  EXPECT_EQ(Controller.stats().UnknownStates, 1u);
}

TEST(GuideControllerTest, AllowedPairPassesImmediately) {
  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideController Controller(Policy, GuideConfig{});
  Controller.onCommit(CommitEvent{0, 0, 1, 0}); // current = A

  Timer T;
  Controller.onTxStart(/*Thread=*/1, /*Tx=*/1); // pair (1,1) is in B
  EXPECT_LT(T.elapsedSeconds(), 0.05);
  GuideStats S = Controller.stats();
  EXPECT_EQ(S.Holds, 0u);
  EXPECT_EQ(S.GateChecks, 1u);
}

TEST(GuideControllerTest, DisallowedPairHeldUntilForcedRelease) {
  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideConfig Cfg;
  Cfg.MaxGateRetries = 5;
  Cfg.GateSleepMicros = 100;
  GuideController Controller(Policy, Cfg);
  Controller.onCommit(CommitEvent{0, 0, 1, 0}); // current = A

  // Pair (3,4) only appears in the rare destination D: must be held and
  // eventually force-released (the k-retry progress guarantee).
  Controller.onTxStart(/*Thread=*/4, /*Tx=*/3);
  GuideStats S = Controller.stats();
  EXPECT_EQ(S.Holds, 1u);
  EXPECT_EQ(S.ForcedReleases, 1u);
}

TEST(GuideControllerTest, ForcedReleaseComesAfterExactlyKRetries) {
  // The paper's k-retry rule, counted precisely: a thread whose pair
  // never appears in any high-probability destination of the current
  // state must re-check the gate exactly MaxGateRetries times — no
  // fewer (it may not give up early) and no more (it may not spin
  // beyond k) — before being force-released.
  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideConfig Cfg;
  Cfg.MaxGateRetries = 7;
  Cfg.GateSleepMicros = 0; // yield-only: retry count is what matters
  GuideController Controller(Policy, Cfg);
  Controller.onCommit(CommitEvent{0, 0, 1, 0}); // current = A

  // Pair (3,4) is only in rare destination D, which the bias threshold
  // prunes; with no concurrent commits the state never changes, so the
  // hold can only end through the retry bound.
  Controller.onTxStart(/*Thread=*/4, /*Tx=*/3);
  GuideStats S = Controller.stats();
  EXPECT_EQ(S.Holds, 1u);
  EXPECT_EQ(S.GateRetries, 7u) << "exactly k re-checks, then release";
  EXPECT_EQ(S.ForcedReleases, 1u);

  // A second gated start doubles the retry count: the counter is
  // cumulative across holds, not a per-hold high-water mark.
  Controller.onTxStart(/*Thread=*/4, /*Tx=*/3);
  EXPECT_EQ(Controller.stats().GateRetries, 14u);
  EXPECT_EQ(Controller.stats().ForcedReleases, 2u);
}

TEST(GuideControllerTest, HeldThreadReleasedByStateChange) {
  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideConfig Cfg;
  Cfg.MaxGateRetries = 10000; // long enough that release must come from
                              // the state change, not the k bound
  Cfg.GateSleepMicros = 100;
  GuideController Controller(Policy, Cfg);
  Controller.onCommit(CommitEvent{0, 0, 1, 0}); // current = A

  std::thread Held(
      [&] { Controller.onTxStart(/*Thread=*/4, /*Tx=*/3); });
  // Move the system to an unknown state, which admits everyone.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Controller.onCommit(CommitEvent{9, 9, 2, 0});
  Held.join();

  GuideStats S = Controller.stats();
  EXPECT_EQ(S.Holds, 1u);
  EXPECT_EQ(S.ForcedReleases, 0u)
      << "release must come from the state change";
}

TEST(GuideControllerTest, ForwardsEventsDownstream) {
  struct Probe : TxEventObserver {
    int Commits = 0, Aborts = 0;
    void onCommit(const CommitEvent &) override { ++Commits; }
    void onAbort(const AbortEvent &) override { ++Aborts; }
  } Downstream;

  Tsa Model = biasedModel();
  GuidedPolicy Policy(Model, 4.0);
  GuideController Controller(Policy, GuideConfig{}, &Downstream);
  Controller.onAbort(AbortEvent{1, 1, AbortCauseKind::Explicit, 0, 0});
  Controller.onCommit(CommitEvent{0, 0, 1, 0});
  EXPECT_EQ(Downstream.Commits, 1);
  EXPECT_EQ(Downstream.Aborts, 1);
}
