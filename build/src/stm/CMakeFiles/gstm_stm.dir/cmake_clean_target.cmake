file(REMOVE_RECURSE
  "libgstm_stm.a"
)
