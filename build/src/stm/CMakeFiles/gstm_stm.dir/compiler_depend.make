# Empty compiler generated dependencies file for gstm_stm.
# This may be replaced when dependencies are built.
