file(REMOVE_RECURSE
  "CMakeFiles/gstm_stm.dir/Contention.cpp.o"
  "CMakeFiles/gstm_stm.dir/Contention.cpp.o.d"
  "CMakeFiles/gstm_stm.dir/Tl2.cpp.o"
  "CMakeFiles/gstm_stm.dir/Tl2.cpp.o.d"
  "libgstm_stm.a"
  "libgstm_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gstm_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
