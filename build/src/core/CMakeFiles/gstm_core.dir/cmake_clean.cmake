file(REMOVE_RECURSE
  "CMakeFiles/gstm_core.dir/Analyzer.cpp.o"
  "CMakeFiles/gstm_core.dir/Analyzer.cpp.o.d"
  "CMakeFiles/gstm_core.dir/Experiment.cpp.o"
  "CMakeFiles/gstm_core.dir/Experiment.cpp.o.d"
  "CMakeFiles/gstm_core.dir/GuideController.cpp.o"
  "CMakeFiles/gstm_core.dir/GuideController.cpp.o.d"
  "CMakeFiles/gstm_core.dir/GuidedPolicy.cpp.o"
  "CMakeFiles/gstm_core.dir/GuidedPolicy.cpp.o.d"
  "CMakeFiles/gstm_core.dir/Replay.cpp.o"
  "CMakeFiles/gstm_core.dir/Replay.cpp.o.d"
  "CMakeFiles/gstm_core.dir/Runner.cpp.o"
  "CMakeFiles/gstm_core.dir/Runner.cpp.o.d"
  "CMakeFiles/gstm_core.dir/Trace.cpp.o"
  "CMakeFiles/gstm_core.dir/Trace.cpp.o.d"
  "CMakeFiles/gstm_core.dir/Tsa.cpp.o"
  "CMakeFiles/gstm_core.dir/Tsa.cpp.o.d"
  "CMakeFiles/gstm_core.dir/Tts.cpp.o"
  "CMakeFiles/gstm_core.dir/Tts.cpp.o.d"
  "libgstm_core.a"
  "libgstm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gstm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
