file(REMOVE_RECURSE
  "libgstm_core.a"
)
