# Empty dependencies file for gstm_core.
# This may be replaced when dependencies are built.
