
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Analyzer.cpp" "src/core/CMakeFiles/gstm_core.dir/Analyzer.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/Analyzer.cpp.o.d"
  "/root/repo/src/core/Experiment.cpp" "src/core/CMakeFiles/gstm_core.dir/Experiment.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/Experiment.cpp.o.d"
  "/root/repo/src/core/GuideController.cpp" "src/core/CMakeFiles/gstm_core.dir/GuideController.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/GuideController.cpp.o.d"
  "/root/repo/src/core/GuidedPolicy.cpp" "src/core/CMakeFiles/gstm_core.dir/GuidedPolicy.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/GuidedPolicy.cpp.o.d"
  "/root/repo/src/core/Replay.cpp" "src/core/CMakeFiles/gstm_core.dir/Replay.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/Replay.cpp.o.d"
  "/root/repo/src/core/Runner.cpp" "src/core/CMakeFiles/gstm_core.dir/Runner.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/Runner.cpp.o.d"
  "/root/repo/src/core/Trace.cpp" "src/core/CMakeFiles/gstm_core.dir/Trace.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/Trace.cpp.o.d"
  "/root/repo/src/core/Tsa.cpp" "src/core/CMakeFiles/gstm_core.dir/Tsa.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/Tsa.cpp.o.d"
  "/root/repo/src/core/Tts.cpp" "src/core/CMakeFiles/gstm_core.dir/Tts.cpp.o" "gcc" "src/core/CMakeFiles/gstm_core.dir/Tts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stm/CMakeFiles/gstm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gstm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
