# Empty dependencies file for gstm_synquake.
# This may be replaced when dependencies are built.
