file(REMOVE_RECURSE
  "libgstm_synquake.a"
)
