file(REMOVE_RECURSE
  "CMakeFiles/gstm_synquake.dir/Experiment.cpp.o"
  "CMakeFiles/gstm_synquake.dir/Experiment.cpp.o.d"
  "CMakeFiles/gstm_synquake.dir/Game.cpp.o"
  "CMakeFiles/gstm_synquake.dir/Game.cpp.o.d"
  "libgstm_synquake.a"
  "libgstm_synquake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gstm_synquake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
