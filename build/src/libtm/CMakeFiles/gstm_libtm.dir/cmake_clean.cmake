file(REMOVE_RECURSE
  "CMakeFiles/gstm_libtm.dir/LibTm.cpp.o"
  "CMakeFiles/gstm_libtm.dir/LibTm.cpp.o.d"
  "libgstm_libtm.a"
  "libgstm_libtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gstm_libtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
