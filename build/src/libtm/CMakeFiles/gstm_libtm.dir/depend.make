# Empty dependencies file for gstm_libtm.
# This may be replaced when dependencies are built.
