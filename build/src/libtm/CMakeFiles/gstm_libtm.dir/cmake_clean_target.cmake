file(REMOVE_RECURSE
  "libgstm_libtm.a"
)
