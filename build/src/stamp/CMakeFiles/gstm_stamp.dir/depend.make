# Empty dependencies file for gstm_stamp.
# This may be replaced when dependencies are built.
