
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stamp/Genome.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Genome.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Genome.cpp.o.d"
  "/root/repo/src/stamp/Intruder.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Intruder.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Intruder.cpp.o.d"
  "/root/repo/src/stamp/Kmeans.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Kmeans.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Kmeans.cpp.o.d"
  "/root/repo/src/stamp/Labyrinth.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Labyrinth.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Labyrinth.cpp.o.d"
  "/root/repo/src/stamp/Registry.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Registry.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Registry.cpp.o.d"
  "/root/repo/src/stamp/Ssca2.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Ssca2.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Ssca2.cpp.o.d"
  "/root/repo/src/stamp/TmHashMap.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/TmHashMap.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/TmHashMap.cpp.o.d"
  "/root/repo/src/stamp/TmList.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/TmList.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/TmList.cpp.o.d"
  "/root/repo/src/stamp/TmRbTree.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/TmRbTree.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/TmRbTree.cpp.o.d"
  "/root/repo/src/stamp/Vacation.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Vacation.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Vacation.cpp.o.d"
  "/root/repo/src/stamp/Yada.cpp" "src/stamp/CMakeFiles/gstm_stamp.dir/Yada.cpp.o" "gcc" "src/stamp/CMakeFiles/gstm_stamp.dir/Yada.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gstm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/gstm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gstm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
