file(REMOVE_RECURSE
  "libgstm_stamp.a"
)
