file(REMOVE_RECURSE
  "CMakeFiles/gstm_stamp.dir/Genome.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Genome.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/Intruder.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Intruder.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/Kmeans.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Kmeans.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/Labyrinth.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Labyrinth.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/Registry.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Registry.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/Ssca2.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Ssca2.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/TmHashMap.cpp.o"
  "CMakeFiles/gstm_stamp.dir/TmHashMap.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/TmList.cpp.o"
  "CMakeFiles/gstm_stamp.dir/TmList.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/TmRbTree.cpp.o"
  "CMakeFiles/gstm_stamp.dir/TmRbTree.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/Vacation.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Vacation.cpp.o.d"
  "CMakeFiles/gstm_stamp.dir/Yada.cpp.o"
  "CMakeFiles/gstm_stamp.dir/Yada.cpp.o.d"
  "libgstm_stamp.a"
  "libgstm_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gstm_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
