file(REMOVE_RECURSE
  "CMakeFiles/gstm_support.dir/Options.cpp.o"
  "CMakeFiles/gstm_support.dir/Options.cpp.o.d"
  "CMakeFiles/gstm_support.dir/Stats.cpp.o"
  "CMakeFiles/gstm_support.dir/Stats.cpp.o.d"
  "libgstm_support.a"
  "libgstm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gstm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
