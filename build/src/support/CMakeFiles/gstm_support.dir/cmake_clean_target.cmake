file(REMOVE_RECURSE
  "libgstm_support.a"
)
