# Empty compiler generated dependencies file for gstm_support.
# This may be replaced when dependencies are built.
