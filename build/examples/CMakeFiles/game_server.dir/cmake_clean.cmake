file(REMOVE_RECURSE
  "CMakeFiles/game_server.dir/game_server.cpp.o"
  "CMakeFiles/game_server.dir/game_server.cpp.o.d"
  "game_server"
  "game_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
