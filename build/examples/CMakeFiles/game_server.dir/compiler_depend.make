# Empty compiler generated dependencies file for game_server.
# This may be replaced when dependencies are built.
