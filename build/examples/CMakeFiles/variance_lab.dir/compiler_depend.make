# Empty compiler generated dependencies file for variance_lab.
# This may be replaced when dependencies are built.
