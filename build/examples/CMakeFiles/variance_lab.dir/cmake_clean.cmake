file(REMOVE_RECURSE
  "CMakeFiles/variance_lab.dir/variance_lab.cpp.o"
  "CMakeFiles/variance_lab.dir/variance_lab.cpp.o.d"
  "variance_lab"
  "variance_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
