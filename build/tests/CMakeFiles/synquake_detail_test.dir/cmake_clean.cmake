file(REMOVE_RECURSE
  "CMakeFiles/synquake_detail_test.dir/synquake_detail_test.cpp.o"
  "CMakeFiles/synquake_detail_test.dir/synquake_detail_test.cpp.o.d"
  "synquake_detail_test"
  "synquake_detail_test.pdb"
  "synquake_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synquake_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
