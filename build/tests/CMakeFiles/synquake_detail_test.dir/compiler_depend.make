# Empty compiler generated dependencies file for synquake_detail_test.
# This may be replaced when dependencies are built.
