file(REMOVE_RECURSE
  "CMakeFiles/synquake_test.dir/synquake_test.cpp.o"
  "CMakeFiles/synquake_test.dir/synquake_test.cpp.o.d"
  "synquake_test"
  "synquake_test.pdb"
  "synquake_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synquake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
