# Empty compiler generated dependencies file for synquake_test.
# This may be replaced when dependencies are built.
