# Empty dependencies file for tl2_test.
# This may be replaced when dependencies are built.
