# Empty dependencies file for libtm_test.
# This may be replaced when dependencies are built.
