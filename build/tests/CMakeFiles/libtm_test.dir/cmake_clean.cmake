file(REMOVE_RECURSE
  "CMakeFiles/libtm_test.dir/libtm_test.cpp.o"
  "CMakeFiles/libtm_test.dir/libtm_test.cpp.o.d"
  "libtm_test"
  "libtm_test.pdb"
  "libtm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libtm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
