# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/tl2_test[1]_include.cmake")
include("/root/repo/build/tests/containers_test[1]_include.cmake")
include("/root/repo/build/tests/rbtree_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/libtm_test[1]_include.cmake")
include("/root/repo/build/tests/synquake_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/eager_test[1]_include.cmake")
include("/root/repo/build/tests/contention_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/synquake_detail_test[1]_include.cmake")
