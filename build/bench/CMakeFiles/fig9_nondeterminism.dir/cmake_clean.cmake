file(REMOVE_RECURSE
  "CMakeFiles/fig9_nondeterminism.dir/fig9_nondeterminism.cpp.o"
  "CMakeFiles/fig9_nondeterminism.dir/fig9_nondeterminism.cpp.o.d"
  "fig9_nondeterminism"
  "fig9_nondeterminism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_nondeterminism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
