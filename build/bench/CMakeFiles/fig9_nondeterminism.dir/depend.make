# Empty dependencies file for fig9_nondeterminism.
# This may be replaced when dependencies are built.
