file(REMOVE_RECURSE
  "CMakeFiles/micro_stm_ops.dir/micro_stm_ops.cpp.o"
  "CMakeFiles/micro_stm_ops.dir/micro_stm_ops.cpp.o.d"
  "micro_stm_ops"
  "micro_stm_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
