# Empty compiler generated dependencies file for fig7_abort_tail_16t.
# This may be replaced when dependencies are built.
