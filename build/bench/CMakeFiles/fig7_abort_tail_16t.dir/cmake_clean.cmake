file(REMOVE_RECURSE
  "CMakeFiles/fig7_abort_tail_16t.dir/fig7_abort_tail_16t.cpp.o"
  "CMakeFiles/fig7_abort_tail_16t.dir/fig7_abort_tail_16t.cpp.o.d"
  "fig7_abort_tail_16t"
  "fig7_abort_tail_16t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_abort_tail_16t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
