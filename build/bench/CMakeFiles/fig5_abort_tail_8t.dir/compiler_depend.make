# Empty compiler generated dependencies file for fig5_abort_tail_8t.
# This may be replaced when dependencies are built.
