file(REMOVE_RECURSE
  "CMakeFiles/fig5_abort_tail_8t.dir/fig5_abort_tail_8t.cpp.o"
  "CMakeFiles/fig5_abort_tail_8t.dir/fig5_abort_tail_8t.cpp.o.d"
  "fig5_abort_tail_8t"
  "fig5_abort_tail_8t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_abort_tail_8t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
