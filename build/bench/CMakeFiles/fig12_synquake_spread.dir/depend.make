# Empty dependencies file for fig12_synquake_spread.
# This may be replaced when dependencies are built.
