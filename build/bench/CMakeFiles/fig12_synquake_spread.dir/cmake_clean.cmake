file(REMOVE_RECURSE
  "CMakeFiles/fig12_synquake_spread.dir/fig12_synquake_spread.cpp.o"
  "CMakeFiles/fig12_synquake_spread.dir/fig12_synquake_spread.cpp.o.d"
  "fig12_synquake_spread"
  "fig12_synquake_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_synquake_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
