
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_eager.cpp" "bench/CMakeFiles/ablation_eager.dir/ablation_eager.cpp.o" "gcc" "bench/CMakeFiles/ablation_eager.dir/ablation_eager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gstm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/synquake/CMakeFiles/gstm_synquake.dir/DependInfo.cmake"
  "/root/repo/build/src/libtm/CMakeFiles/gstm_libtm.dir/DependInfo.cmake"
  "/root/repo/build/src/stamp/CMakeFiles/gstm_stamp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gstm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/gstm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gstm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
