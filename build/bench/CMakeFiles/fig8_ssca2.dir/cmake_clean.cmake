file(REMOVE_RECURSE
  "CMakeFiles/fig8_ssca2.dir/fig8_ssca2.cpp.o"
  "CMakeFiles/fig8_ssca2.dir/fig8_ssca2.cpp.o.d"
  "fig8_ssca2"
  "fig8_ssca2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ssca2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
