# Empty dependencies file for fig8_ssca2.
# This may be replaced when dependencies are built.
