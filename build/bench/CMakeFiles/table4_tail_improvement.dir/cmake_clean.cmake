file(REMOVE_RECURSE
  "CMakeFiles/table4_tail_improvement.dir/table4_tail_improvement.cpp.o"
  "CMakeFiles/table4_tail_improvement.dir/table4_tail_improvement.cpp.o.d"
  "table4_tail_improvement"
  "table4_tail_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_tail_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
