# Empty dependencies file for table4_tail_improvement.
# This may be replaced when dependencies are built.
