# Empty dependencies file for fig11_synquake_quadrants.
# This may be replaced when dependencies are built.
