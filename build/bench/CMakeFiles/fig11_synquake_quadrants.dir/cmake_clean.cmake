file(REMOVE_RECURSE
  "CMakeFiles/fig11_synquake_quadrants.dir/fig11_synquake_quadrants.cpp.o"
  "CMakeFiles/fig11_synquake_quadrants.dir/fig11_synquake_quadrants.cpp.o.d"
  "fig11_synquake_quadrants"
  "fig11_synquake_quadrants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_synquake_quadrants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
