file(REMOVE_RECURSE
  "CMakeFiles/fig10_slowdown.dir/fig10_slowdown.cpp.o"
  "CMakeFiles/fig10_slowdown.dir/fig10_slowdown.cpp.o.d"
  "fig10_slowdown"
  "fig10_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
