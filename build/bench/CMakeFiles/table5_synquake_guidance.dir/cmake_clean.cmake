file(REMOVE_RECURSE
  "CMakeFiles/table5_synquake_guidance.dir/table5_synquake_guidance.cpp.o"
  "CMakeFiles/table5_synquake_guidance.dir/table5_synquake_guidance.cpp.o.d"
  "table5_synquake_guidance"
  "table5_synquake_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_synquake_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
