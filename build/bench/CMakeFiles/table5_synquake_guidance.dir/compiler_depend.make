# Empty compiler generated dependencies file for table5_synquake_guidance.
# This may be replaced when dependencies are built.
