file(REMOVE_RECURSE
  "CMakeFiles/table3_model_states.dir/table3_model_states.cpp.o"
  "CMakeFiles/table3_model_states.dir/table3_model_states.cpp.o.d"
  "table3_model_states"
  "table3_model_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_model_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
