# Empty dependencies file for table3_model_states.
# This may be replaced when dependencies are built.
