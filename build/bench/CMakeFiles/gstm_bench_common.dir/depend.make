# Empty dependencies file for gstm_bench_common.
# This may be replaced when dependencies are built.
