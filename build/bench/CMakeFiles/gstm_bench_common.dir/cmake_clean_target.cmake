file(REMOVE_RECURSE
  "libgstm_bench_common.a"
)
