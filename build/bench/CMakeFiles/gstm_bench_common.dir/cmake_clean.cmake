file(REMOVE_RECURSE
  "CMakeFiles/gstm_bench_common.dir/Common.cpp.o"
  "CMakeFiles/gstm_bench_common.dir/Common.cpp.o.d"
  "libgstm_bench_common.a"
  "libgstm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gstm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
