file(REMOVE_RECURSE
  "CMakeFiles/fig3_kmeans_states.dir/fig3_kmeans_states.cpp.o"
  "CMakeFiles/fig3_kmeans_states.dir/fig3_kmeans_states.cpp.o.d"
  "fig3_kmeans_states"
  "fig3_kmeans_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kmeans_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
