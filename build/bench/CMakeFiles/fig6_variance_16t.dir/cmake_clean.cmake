file(REMOVE_RECURSE
  "CMakeFiles/fig6_variance_16t.dir/fig6_variance_16t.cpp.o"
  "CMakeFiles/fig6_variance_16t.dir/fig6_variance_16t.cpp.o.d"
  "fig6_variance_16t"
  "fig6_variance_16t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_variance_16t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
