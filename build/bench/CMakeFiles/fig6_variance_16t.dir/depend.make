# Empty dependencies file for fig6_variance_16t.
# This may be replaced when dependencies are built.
