# Empty compiler generated dependencies file for ablation_tfactor.
# This may be replaced when dependencies are built.
