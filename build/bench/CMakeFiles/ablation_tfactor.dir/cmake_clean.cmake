file(REMOVE_RECURSE
  "CMakeFiles/ablation_tfactor.dir/ablation_tfactor.cpp.o"
  "CMakeFiles/ablation_tfactor.dir/ablation_tfactor.cpp.o.d"
  "ablation_tfactor"
  "ablation_tfactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tfactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
