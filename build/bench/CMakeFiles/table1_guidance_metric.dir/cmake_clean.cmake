file(REMOVE_RECURSE
  "CMakeFiles/table1_guidance_metric.dir/table1_guidance_metric.cpp.o"
  "CMakeFiles/table1_guidance_metric.dir/table1_guidance_metric.cpp.o.d"
  "table1_guidance_metric"
  "table1_guidance_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_guidance_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
