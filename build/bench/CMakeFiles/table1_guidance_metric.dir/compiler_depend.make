# Empty compiler generated dependencies file for table1_guidance_metric.
# This may be replaced when dependencies are built.
