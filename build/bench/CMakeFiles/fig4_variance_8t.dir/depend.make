# Empty dependencies file for fig4_variance_8t.
# This may be replaced when dependencies are built.
