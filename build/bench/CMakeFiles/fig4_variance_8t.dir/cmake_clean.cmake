file(REMOVE_RECURSE
  "CMakeFiles/fig4_variance_8t.dir/fig4_variance_8t.cpp.o"
  "CMakeFiles/fig4_variance_8t.dir/fig4_variance_8t.cpp.o.d"
  "fig4_variance_8t"
  "fig4_variance_8t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_variance_8t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
