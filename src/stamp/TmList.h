//===- stamp/TmList.h - Transactional sorted linked list -----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transactional sorted singly linked list over (key, value) pairs of
/// 64-bit words, the workhorse of the STAMP ports: hash-map buckets
/// (genome, intruder), per-customer reservation lists (vacation) and
/// adjacency lists (ssca2) all build on it. Every traversal step is a
/// transactional read, so a commit anywhere on the traversed prefix
/// conflicts — the same contention structure as STAMP's list.c.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_TMLIST_H
#define GSTM_STAMP_TMLIST_H

#include "stamp/TmPool.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"

#include <cstdint>
#include <optional>

namespace gstm {

/// Node of a TmList; lives in a TmPool shared by many lists.
struct TmListNode {
  TVar<uint64_t> Key;
  TVar<uint64_t> Value;
  TVar<uint32_t> Next;
};

/// Sorted singly linked list with unique keys.
///
/// The list head is embedded in the object; nodes come from an external
/// pool so thousands of lists (hash buckets) can share one arena.
class TmList {
public:
  using Pool = TmPool<TmListNode>;

  /// Inserts (\p Key, \p Value); returns false when the key was already
  /// present (no update).
  bool insert(Tl2Txn &Tx, Pool &Nodes, uint64_t Key, uint64_t Value);

  /// Inserts or overwrites; returns true when a new node was created.
  bool insertOrAssign(Tl2Txn &Tx, Pool &Nodes, uint64_t Key, uint64_t Value);

  /// Looks \p Key up.
  std::optional<uint64_t> find(Tl2Txn &Tx, Pool &Nodes, uint64_t Key);

  /// Unlinks \p Key; returns its value if present. The node is *not*
  /// recycled (see TmPool memory discipline).
  std::optional<uint64_t> remove(Tl2Txn &Tx, Pool &Nodes, uint64_t Key);

  /// Number of nodes reachable (transactional full traversal).
  uint64_t size(Tl2Txn &Tx, Pool &Nodes);

  /// Applies \p Fn(key, value) to each element in key order; \p Fn may
  /// not modify the list.
  template <typename Fn>
  void forEach(Tl2Txn &Tx, Pool &Nodes, Fn &&Callback) {
    uint32_t Cur = Tx.load(Head);
    while (Cur != Pool::Null) {
      TmListNode &N = Nodes[Cur];
      Callback(Tx.load(N.Key), Tx.load(N.Value));
      Cur = Tx.load(N.Next);
    }
  }

  /// Non-transactional traversal for quiescent verification.
  template <typename Fn> void forEachDirect(Pool &Nodes, Fn &&Callback) {
    uint32_t Cur = Head.loadDirect();
    while (Cur != Pool::Null) {
      TmListNode &N = Nodes[Cur];
      Callback(N.Key.loadDirect(), N.Value.loadDirect());
      Cur = N.Next.loadDirect();
    }
  }

private:
  /// Finds the insertion point: on return Prev is the node before the
  /// first node with key >= \p Key (Null when that is the head) and Cur
  /// that node (Null at end).
  void locate(Tl2Txn &Tx, Pool &Nodes, uint64_t Key, uint32_t &Prev,
              uint32_t &Cur);

  TVar<uint32_t> Head{Pool::Null};
};

} // namespace gstm

#endif // GSTM_STAMP_TMLIST_H
