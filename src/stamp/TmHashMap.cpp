//===- stamp/TmHashMap.cpp -------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/TmHashMap.h"

#include <cassert>

using namespace gstm;

static uint32_t roundUpPow2(uint32_t V) {
  uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

TmHashMap::TmHashMap(uint32_t NumBuckets) {
  assert(NumBuckets > 0 && "hash map needs at least one bucket");
  uint32_t N = roundUpPow2(NumBuckets);
  Mask = N - 1;
  Buckets = std::make_unique<TmList[]>(N);
}
