//===- stamp/TmRbTree.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
//
// CLRS red-black tree with an explicit NIL sentinel. Every shared field
// access inside the transactional operations goes through the Tl2Txn, so
// the STM's commit-time validation makes each operation atomic.
//
//===----------------------------------------------------------------------===//

#include "stamp/TmRbTree.h"

using namespace gstm;

TmRbTree::TmRbTree(Pool &Nodes) : P(Nodes) {
  Nil = P.allocate();
  TmRbNode &N = P[Nil];
  N.Color.storeDirect(Black);
  N.Left.storeDirect(Nil);
  N.Right.storeDirect(Nil);
  N.Parent.storeDirect(Nil);
  Root.storeDirect(Nil);
}

uint32_t TmRbTree::findNode(Tl2Txn &Tx, uint64_t Key) {
  uint32_t Cur = Tx.load(Root);
  while (Cur != Nil) {
    uint64_t K = key(Tx, Cur);
    if (Key == K)
      return Cur;
    Cur = Key < K ? left(Tx, Cur) : right(Tx, Cur);
  }
  return Nil;
}

std::optional<uint64_t> TmRbTree::find(Tl2Txn &Tx, uint64_t Key) {
  uint32_t N = findNode(Tx, Key);
  if (N == Nil)
    return std::nullopt;
  return Tx.load(P[N].Value);
}

bool TmRbTree::update(Tl2Txn &Tx, uint64_t Key, uint64_t Value) {
  uint32_t N = findNode(Tx, Key);
  if (N == Nil)
    return false;
  Tx.store(P[N].Value, Value);
  return true;
}

void TmRbTree::rotateLeft(Tl2Txn &Tx, uint32_t X) {
  uint32_t Y = right(Tx, X);
  uint32_t YL = left(Tx, Y);
  Tx.store(P[X].Right, YL);
  if (YL != Nil)
    Tx.store(P[YL].Parent, X);
  uint32_t XP = parent(Tx, X);
  Tx.store(P[Y].Parent, XP);
  if (XP == Nil)
    Tx.store(Root, Y);
  else if (X == left(Tx, XP))
    Tx.store(P[XP].Left, Y);
  else
    Tx.store(P[XP].Right, Y);
  Tx.store(P[Y].Left, X);
  Tx.store(P[X].Parent, Y);
}

void TmRbTree::rotateRight(Tl2Txn &Tx, uint32_t X) {
  uint32_t Y = left(Tx, X);
  uint32_t YR = right(Tx, Y);
  Tx.store(P[X].Left, YR);
  if (YR != Nil)
    Tx.store(P[YR].Parent, X);
  uint32_t XP = parent(Tx, X);
  Tx.store(P[Y].Parent, XP);
  if (XP == Nil)
    Tx.store(Root, Y);
  else if (X == right(Tx, XP))
    Tx.store(P[XP].Right, Y);
  else
    Tx.store(P[XP].Left, Y);
  Tx.store(P[Y].Right, X);
  Tx.store(P[X].Parent, Y);
}

bool TmRbTree::insert(Tl2Txn &Tx, uint64_t Key, uint64_t Value) {
  uint32_t Y = Nil;
  uint32_t X = Tx.load(Root);
  while (X != Nil) {
    Y = X;
    uint64_t K = key(Tx, X);
    if (Key == K)
      return false;
    X = Key < K ? left(Tx, X) : right(Tx, X);
  }

  uint32_t Z = P.allocate();
  TmRbNode &N = P[Z];
  Tx.store(N.Key, Key);
  Tx.store(N.Value, Value);
  Tx.store(N.Parent, Y);
  Tx.store(N.Left, Nil);
  Tx.store(N.Right, Nil);
  Tx.store(N.Color, Red);
  if (Y == Nil)
    Tx.store(Root, Z);
  else if (Key < key(Tx, Y))
    Tx.store(P[Y].Left, Z);
  else
    Tx.store(P[Y].Right, Z);

  insertFixup(Tx, Z);
  Tx.store(Count, Tx.load(Count) + 1);
  return true;
}

void TmRbTree::insertFixup(Tl2Txn &Tx, uint32_t Z) {
  while (color(Tx, parent(Tx, Z)) == Red) {
    uint32_t ZP = parent(Tx, Z);
    uint32_t ZPP = parent(Tx, ZP);
    if (ZP == left(Tx, ZPP)) {
      uint32_t Uncle = right(Tx, ZPP);
      if (color(Tx, Uncle) == Red) {
        Tx.store(P[ZP].Color, Black);
        Tx.store(P[Uncle].Color, Black);
        Tx.store(P[ZPP].Color, Red);
        Z = ZPP;
      } else {
        if (Z == right(Tx, ZP)) {
          Z = ZP;
          rotateLeft(Tx, Z);
          ZP = parent(Tx, Z);
          ZPP = parent(Tx, ZP);
        }
        Tx.store(P[ZP].Color, Black);
        Tx.store(P[ZPP].Color, Red);
        rotateRight(Tx, ZPP);
      }
    } else {
      uint32_t Uncle = left(Tx, ZPP);
      if (color(Tx, Uncle) == Red) {
        Tx.store(P[ZP].Color, Black);
        Tx.store(P[Uncle].Color, Black);
        Tx.store(P[ZPP].Color, Red);
        Z = ZPP;
      } else {
        if (Z == left(Tx, ZP)) {
          Z = ZP;
          rotateRight(Tx, Z);
          ZP = parent(Tx, Z);
          ZPP = parent(Tx, ZP);
        }
        Tx.store(P[ZP].Color, Black);
        Tx.store(P[ZPP].Color, Red);
        rotateLeft(Tx, ZPP);
      }
    }
  }
  Tx.store(P[Tx.load(Root)].Color, Black);
}

void TmRbTree::transplant(Tl2Txn &Tx, uint32_t U, uint32_t V) {
  uint32_t UP = parent(Tx, U);
  if (UP == Nil)
    Tx.store(Root, V);
  else if (U == left(Tx, UP))
    Tx.store(P[UP].Left, V);
  else
    Tx.store(P[UP].Right, V);
  // CLRS: unconditional, even when V is the sentinel — the delete fixup
  // relies on Nil.Parent being set.
  Tx.store(P[V].Parent, UP);
}

uint32_t TmRbTree::minimum(Tl2Txn &Tx, uint32_t N) {
  uint32_t L = left(Tx, N);
  while (L != Nil) {
    N = L;
    L = left(Tx, N);
  }
  return N;
}

std::optional<uint64_t> TmRbTree::remove(Tl2Txn &Tx, uint64_t Key) {
  uint32_t Z = findNode(Tx, Key);
  if (Z == Nil)
    return std::nullopt;
  uint64_t Removed = Tx.load(P[Z].Value);

  uint32_t Y = Z;
  uint32_t YColor = color(Tx, Y);
  uint32_t X;
  if (left(Tx, Z) == Nil) {
    X = right(Tx, Z);
    transplant(Tx, Z, X);
  } else if (right(Tx, Z) == Nil) {
    X = left(Tx, Z);
    transplant(Tx, Z, X);
  } else {
    Y = minimum(Tx, right(Tx, Z));
    YColor = color(Tx, Y);
    X = right(Tx, Y);
    if (parent(Tx, Y) == Z) {
      Tx.store(P[X].Parent, Y);
    } else {
      transplant(Tx, Y, X);
      uint32_t ZR = right(Tx, Z);
      Tx.store(P[Y].Right, ZR);
      Tx.store(P[ZR].Parent, Y);
    }
    transplant(Tx, Z, Y);
    uint32_t ZL = left(Tx, Z);
    Tx.store(P[Y].Left, ZL);
    Tx.store(P[ZL].Parent, Y);
    Tx.store(P[Y].Color, color(Tx, Z));
  }
  if (YColor == Black)
    removeFixup(Tx, X);

  Tx.store(Count, Tx.load(Count) - 1);
  return Removed;
}

void TmRbTree::removeFixup(Tl2Txn &Tx, uint32_t X) {
  while (X != Tx.load(Root) && color(Tx, X) == Black) {
    uint32_t XP = parent(Tx, X);
    if (X == left(Tx, XP)) {
      uint32_t W = right(Tx, XP);
      if (color(Tx, W) == Red) {
        Tx.store(P[W].Color, Black);
        Tx.store(P[XP].Color, Red);
        rotateLeft(Tx, XP);
        W = right(Tx, XP);
      }
      if (color(Tx, left(Tx, W)) == Black &&
          color(Tx, right(Tx, W)) == Black) {
        Tx.store(P[W].Color, Red);
        X = XP;
      } else {
        if (color(Tx, right(Tx, W)) == Black) {
          uint32_t WL = left(Tx, W);
          Tx.store(P[WL].Color, Black);
          Tx.store(P[W].Color, Red);
          rotateRight(Tx, W);
          W = right(Tx, XP);
        }
        Tx.store(P[W].Color, color(Tx, XP));
        Tx.store(P[XP].Color, Black);
        uint32_t WR = right(Tx, W);
        Tx.store(P[WR].Color, Black);
        rotateLeft(Tx, XP);
        X = Tx.load(Root);
      }
    } else {
      uint32_t W = left(Tx, XP);
      if (color(Tx, W) == Red) {
        Tx.store(P[W].Color, Black);
        Tx.store(P[XP].Color, Red);
        rotateRight(Tx, XP);
        W = left(Tx, XP);
      }
      if (color(Tx, right(Tx, W)) == Black &&
          color(Tx, left(Tx, W)) == Black) {
        Tx.store(P[W].Color, Red);
        X = XP;
      } else {
        if (color(Tx, left(Tx, W)) == Black) {
          uint32_t WR = right(Tx, W);
          Tx.store(P[WR].Color, Black);
          Tx.store(P[W].Color, Red);
          rotateLeft(Tx, W);
          W = left(Tx, XP);
        }
        Tx.store(P[W].Color, color(Tx, XP));
        Tx.store(P[XP].Color, Black);
        uint32_t WL = left(Tx, W);
        Tx.store(P[WL].Color, Black);
        rotateRight(Tx, XP);
        X = Tx.load(Root);
      }
    }
  }
  Tx.store(P[X].Color, Black);
}

int TmRbTree::validateFrom(uint32_t N, uint64_t Lo, uint64_t Hi, bool HasLo,
                           bool HasHi) const {
  if (N == Nil)
    return 1; // sentinel is black

  uint64_t K = P[N].Key.loadDirect();
  if ((HasLo && K <= Lo) || (HasHi && K >= Hi))
    return -1; // ordering violated

  uint32_t C = P[N].Color.loadDirect();
  uint32_t L = P[N].Left.loadDirect();
  uint32_t R = P[N].Right.loadDirect();
  if (C == Red) {
    if ((L != Nil && P[L].Color.loadDirect() == Red) ||
        (R != Nil && P[R].Color.loadDirect() == Red))
      return -1; // red node with red child
  }

  int LeftHeight = validateFrom(L, Lo, K, HasLo, true);
  int RightHeight = validateFrom(R, K, Hi, true, HasHi);
  if (LeftHeight < 0 || RightHeight < 0 || LeftHeight != RightHeight)
    return -1;
  return LeftHeight + (C == Black ? 1 : 0);
}

bool TmRbTree::validateDirect() const {
  uint32_t R = Root.loadDirect();
  if (R == Nil)
    return Count.loadDirect() == 0;
  if (P[R].Color.loadDirect() != Black)
    return false;
  if (validateFrom(R, 0, 0, false, false) < 0)
    return false;
  // Recount the keys against the maintained counter.
  uint64_t Seen = 0;
  forEachDirect([&Seen](uint64_t, uint64_t) { ++Seen; });
  return Seen == Count.loadDirect();
}
