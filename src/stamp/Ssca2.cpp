//===- stamp/Ssca2.cpp -----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Ssca2.h"

#include "support/SplitMix64.h"

#include <algorithm>
#include <atomic>

using namespace gstm;

Ssca2Params Ssca2Params::forSize(SizeClass S) {
  Ssca2Params P;
  switch (S) {
  case SizeClass::Small:
    P.NumVertices = 512;
    P.NumEdges = 2048;
    break;
  case SizeClass::Medium:
    P.NumVertices = 4096;
    P.NumEdges = 16384;
    break;
  case SizeClass::Large:
    P.NumVertices = 16384;
    P.NumEdges = 131072;
    break;
  }
  return P;
}

void Ssca2Workload::setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) {
  (void)Stm;
  Threads = NumThreads;
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 7);

  Edges.resize(Params.NumEdges);
  for (auto &[Src, Dst] : Edges) {
    Src = static_cast<uint32_t>(Rng.nextBounded(Params.NumVertices));
    Dst = static_cast<uint32_t>(Rng.nextBounded(Params.NumVertices));
  }

  Degrees = std::make_unique<TVar<uint64_t>[]>(Params.NumVertices);
  for (uint32_t V = 0; V < Params.NumVertices; ++V)
    Degrees[V].storeDirect(0);
  Adjacency = std::make_unique<TVar<uint32_t>[]>(
      static_cast<size_t>(Params.NumVertices) * Params.MaxDegree);
  DroppedEdges.store(0, std::memory_order_relaxed);
}

void Ssca2Workload::threadBody(Tl2Stm &Stm, ThreadId Thread) {
  Tl2Txn Txn(Stm, Thread);
  uint32_t Chunk = (Params.NumEdges + Threads - 1) / Threads;
  uint32_t Begin = Thread * Chunk;
  uint32_t End = std::min(Params.NumEdges, Begin + Chunk);

  uint64_t LocalDrops = 0;
  for (uint32_t E = Begin; E < End; ++E) {
    auto [Src, Dst] = Edges[E];
    bool Dropped = false;
    Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) {
      Dropped = false; // body re-executes on retry
      uint64_t Degree = Tx.load(Degrees[Src]);
      if (Degree >= Params.MaxDegree) {
        Dropped = true;
        return; // committed read-only no-op
      }
      Tx.store(Adjacency[static_cast<size_t>(Src) * Params.MaxDegree +
                         Degree],
               Dst);
      Tx.store(Degrees[Src], Degree + 1);
    });
    if (Dropped)
      ++LocalDrops;
  }
  DroppedEdges.fetch_add(LocalDrops, std::memory_order_relaxed);
}

bool Ssca2Workload::verify(Tl2Stm &Stm) {
  (void)Stm;
  // Every edge must be represented exactly once (none dropped at the
  // default MaxDegree sizing): total degree equals the edge count.
  uint64_t TotalDegree = 0;
  for (uint32_t V = 0; V < Params.NumVertices; ++V)
    TotalDegree += Degrees[V].loadDirect();
  return TotalDegree + DroppedEdges.load(std::memory_order_relaxed) ==
         Params.NumEdges;
}

