//===- stamp/Intruder.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Intruder.h"

#include "support/SplitMix64.h"

#include <algorithm>
#include <cassert>

using namespace gstm;

/// The signature the detection phase scans for.
static constexpr const char *AttackSignature = "ATTACK";

IntruderParams IntruderParams::forSize(SizeClass S) {
  IntruderParams P;
  switch (S) {
  case SizeClass::Small:
    P.NumFlows = 128;
    P.MaxFragsPerFlow = 6;
    break;
  case SizeClass::Medium:
    P.NumFlows = 1024;
    P.MaxFragsPerFlow = 8;
    break;
  case SizeClass::Large:
    P.NumFlows = 8192;
    P.MaxFragsPerFlow = 8;
    break;
  }
  return P;
}

void IntruderWorkload::setup(Tl2Stm &Stm, unsigned NumThreads,
                             uint64_t Seed) {
  (void)Stm;
  Threads = NumThreads;
  SplitMix64 Rng(Seed * 0xd1b54a32d192ed03ULL + 3);

  static constexpr char Alphabet[] = "abcdefghijklmnopqrstuvwxyz";
  Payloads.assign(Params.NumFlows, {});
  PlantedAttack.assign(Params.NumFlows, false);
  PlantedCount = 0;

  std::vector<uint64_t> Packets;
  for (uint32_t Flow = 0; Flow < Params.NumFlows; ++Flow) {
    std::string &Payload = Payloads[Flow];
    Payload.resize(Params.PayloadBases);
    for (char &C : Payload)
      C = Alphabet[Rng.nextBounded(26)];
    if (Rng.nextBounded(100) < Params.AttackPercent) {
      // Plant the signature at a random offset.
      size_t Span = std::char_traits<char>::length(AttackSignature);
      assert(Payload.size() >= Span && "payload shorter than signature");
      size_t At = Rng.nextBounded(Payload.size() - Span + 1);
      Payload.replace(At, Span, AttackSignature);
      PlantedAttack[Flow] = true;
      ++PlantedCount;
    }
    uint32_t NumFrags =
        1 + static_cast<uint32_t>(Rng.nextBounded(Params.MaxFragsPerFlow));
    for (uint32_t Frag = 0; Frag < NumFrags; ++Frag)
      Packets.push_back(packPacket(Flow, Frag, NumFrags));
  }
  // Interleave the flows' fragments: Fisher-Yates shuffle.
  for (size_t I = Packets.size(); I > 1; --I)
    std::swap(Packets[I - 1], Packets[Rng.nextBounded(I)]);

  PacketQueue = std::make_unique<TmQueue>(Packets.size() + 1);
  for (uint64_t P : Packets)
    PacketQueue->pushDirect(P);
  CompletedQueue = std::make_unique<TmQueue>(Params.NumFlows + 1);
  // One reassembly node per flow plus headroom for nodes leaked by
  // aborted decoder attempts (the decoder is the hot conflict site).
  NodePool = std::make_unique<TmList::Pool>(Params.NumFlows * 6 + 64);
  Reassembly = std::make_unique<TmHashMap>(
      std::max<uint32_t>(32, Params.NumFlows / 4));
  DetectedAttacks.store(0, std::memory_order_relaxed);
}

void IntruderWorkload::threadBody(Tl2Stm &Stm, ThreadId Thread) {
  Tl2Txn Txn(Stm, Thread);
  uint64_t LocalDetected = 0;

  for (;;) {
    // Capture phase: pop one fragment.
    std::optional<uint64_t> Packet;
    Txn.run(/*Tx=*/0,
            [&](Tl2Txn &Tx) { Packet = PacketQueue->pop(Tx); });
    if (!Packet)
      break;

    uint32_t Flow = static_cast<uint32_t>(*Packet >> 32);
    uint32_t NumFrags = static_cast<uint32_t>(*Packet & 0xffff);

    // Decoder phase: account the fragment; completing the flow removes
    // its reassembly entry and publishes it for detection.
    bool Completed = false;
    Txn.run(/*Tx=*/1, [&](Tl2Txn &Tx) {
      Completed = false;
      auto Received = Reassembly->find(Tx, *NodePool, Flow);
      uint64_t Count = Received ? *Received + 1 : 1;
      if (Count == NumFrags) {
        if (Received)
          Reassembly->remove(Tx, *NodePool, Flow);
        CompletedQueue->push(Tx, Flow);
        Completed = true;
        return;
      }
      Reassembly->insertOrAssign(Tx, *NodePool, Flow, Count);
    });

    // Detection phase: pure computation on the immutable payload.
    if (Completed &&
        Payloads[Flow].find(AttackSignature) != std::string::npos)
      ++LocalDetected;
  }
  DetectedAttacks.fetch_add(LocalDetected, std::memory_order_relaxed);
}

bool IntruderWorkload::verify(Tl2Stm &Stm) {
  (void)Stm;
  // Every flow must complete exactly once and every planted attack must
  // be found (random payloads can also contain the signature by chance;
  // with a 6-letter signature that probability is negligible but we
  // still allow >=).
  if (CompletedQueue->sizeDirect() != Params.NumFlows)
    return false;
  size_t Leftover = 0;
  Reassembly->forEachDirect(*NodePool,
                            [&Leftover](uint64_t, uint64_t) { ++Leftover; });
  if (Leftover != 0)
    return false;
  return DetectedAttacks.load(std::memory_order_relaxed) >= PlantedCount;
}

