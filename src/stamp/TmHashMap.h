//===- stamp/TmHashMap.h - Transactional chained hash map ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-bucket chained hash map built from TmList buckets, matching
/// STAMP's hashtable: the bucket array is immutable (no transactional
/// resize), so two transactions conflict only when they touch the same
/// bucket chain. Genome's segment dedup set and intruder's fragment
/// reassembly map use this.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_TMHASHMAP_H
#define GSTM_STAMP_TMHASHMAP_H

#include "stamp/TmList.h"

#include <cstdint>
#include <memory>
#include <optional>

namespace gstm {

/// Chained transactional hash map with a fixed number of buckets.
class TmHashMap {
public:
  /// \p NumBuckets is rounded up to a power of two.
  explicit TmHashMap(uint32_t NumBuckets);

  /// Inserts; returns false when the key already exists.
  bool insert(Tl2Txn &Tx, TmList::Pool &Nodes, uint64_t Key, uint64_t Value) {
    return bucketFor(Key).insert(Tx, Nodes, Key, Value);
  }

  /// Inserts or overwrites; returns true when a new node was created.
  bool insertOrAssign(Tl2Txn &Tx, TmList::Pool &Nodes, uint64_t Key,
                      uint64_t Value) {
    return bucketFor(Key).insertOrAssign(Tx, Nodes, Key, Value);
  }

  std::optional<uint64_t> find(Tl2Txn &Tx, TmList::Pool &Nodes,
                               uint64_t Key) {
    return bucketFor(Key).find(Tx, Nodes, Key);
  }

  std::optional<uint64_t> remove(Tl2Txn &Tx, TmList::Pool &Nodes,
                                 uint64_t Key) {
    return bucketFor(Key).remove(Tx, Nodes, Key);
  }

  uint32_t numBuckets() const { return Mask + 1; }

  /// Non-transactional sweep over all entries (quiescent verification).
  template <typename Fn> void forEachDirect(TmList::Pool &Nodes, Fn &&Cb) {
    for (uint32_t B = 0; B <= Mask; ++B)
      Buckets[B].forEachDirect(Nodes, Cb);
  }

private:
  TmList &bucketFor(uint64_t Key) {
    uint64_t H = Key * 0x9e3779b97f4a7c15ULL;
    return Buckets[(H >> 32) & Mask];
  }

  uint32_t Mask;
  std::unique_ptr<TmList[]> Buckets;
};

} // namespace gstm

#endif // GSTM_STAMP_TMHASHMAP_H
