//===- stamp/Yada.cpp ------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Yada.h"

#include "support/SplitMix64.h"

#include <cassert>
#include <cmath>

using namespace gstm;

YadaParams YadaParams::forSize(SizeClass S) {
  YadaParams P;
  switch (S) {
  case SizeClass::Small:
    P.Grid = 6;
    break;
  case SizeClass::Medium:
    P.Grid = 14;
    break;
  case SizeClass::Large:
    P.Grid = 28;
    break;
  }
  P.MinAngleDeg = 40.0; // jittered right-isoceles cells start near 45deg
  P.MinEdgeLen = 0.35 / P.Grid;
  return P;
}

uint32_t YadaWorkload::newPoint(double X, double Y) {
  // stm-lint: allow(R1) same bump-pointer discipline as TmPool::allocate:
  // aborted refinements leak their point slot, which the capacity budget
  // absorbs; no transactional rollback of the counter is required.
  uint32_t Index = NumPoints.fetch_add(1, std::memory_order_relaxed);
  assert(Index < PointCapacity && "point pool exhausted");
  Xs[Index] = X;
  Ys[Index] = Y;
  return Index;
}

bool YadaWorkload::needsRefinement(uint32_t A, uint32_t B, uint32_t C,
                                   uint32_t &LongestEdge) const {
  const uint32_t V[3] = {A, B, C};
  double Len2[3];
  for (int E = 0; E < 3; ++E) {
    double DX = Xs[V[(E + 1) % 3]] - Xs[V[E]];
    double DY = Ys[V[(E + 1) % 3]] - Ys[V[E]];
    Len2[E] = DX * DX + DY * DY;
  }
  LongestEdge = 0;
  for (int E = 1; E < 3; ++E)
    if (Len2[E] > Len2[LongestEdge])
      LongestEdge = static_cast<uint32_t>(E);
  if (Len2[LongestEdge] <= Params.MinEdgeLen * Params.MinEdgeLen)
    return false; // too small to split: accept as-is

  // Smallest angle is opposite the shortest edge; check all three via the
  // law of cosines: cos(angle at vertex i) over adjacent edges.
  double CosLimit = std::cos(Params.MinAngleDeg * 3.14159265358979 / 180.0);
  for (int I = 0; I < 3; ++I) {
    // Angle at vertex I is between edges I (I -> I+1) and I+2 reversed
    // (I -> I+2).
    double UX = Xs[V[(I + 1) % 3]] - Xs[V[I]];
    double UY = Ys[V[(I + 1) % 3]] - Ys[V[I]];
    double WX = Xs[V[(I + 2) % 3]] - Xs[V[I]];
    double WY = Ys[V[(I + 2) % 3]] - Ys[V[I]];
    double Dot = UX * WX + UY * WY;
    double Norm = std::sqrt((UX * UX + UY * UY) * (WX * WX + WY * WY));
    if (Norm <= 0.0)
      return false; // degenerate; leave alone (verify would flag it)
    if (Dot / Norm > CosLimit)
      return true; // angle below the bound
  }
  return false;
}

void YadaWorkload::setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) {
  (void)Stm;
  Threads = NumThreads;
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 23);

  uint32_t G = Params.Grid;
  uint32_t InitPoints = (G + 1) * (G + 1);
  uint32_t InitTris = 2 * G * G;
  // Each bisection adds <= 1 point and a net 2 triangles; budget ~5x the
  // initial mesh, after which refinement stops (pool guard below).
  PointCapacity = InitPoints + 6 * InitTris;
  Xs = std::make_unique<double[]>(PointCapacity);
  Ys = std::make_unique<double[]>(PointCapacity);
  NumPoints.store(0, std::memory_order_relaxed);

  // Jittered lattice over the unit square; boundary points stay put so
  // the mesh exactly covers the square and area is conserved.
  double Cell = 1.0 / G;
  for (uint32_t J = 0; J <= G; ++J)
    for (uint32_t I = 0; I <= G; ++I) {
      double X = I * Cell;
      double Y = J * Cell;
      // Amplitude 0.28 keeps every initial triangle strictly CCW
      // (flipping needs ~0.35 per-axis displacement) while producing
      // plenty of angles below the refinement bound.
      if (I != 0 && I != G)
        X += (Rng.nextDouble() - 0.5) * 0.28 * Cell;
      if (J != 0 && J != G)
        Y += (Rng.nextDouble() - 0.5) * 0.28 * Cell;
      newPoint(X, Y);
    }

  Triangles = std::make_unique<Pool>(InitTris + 12 * InitTris + 16);
  WorkQueue = std::make_unique<TmQueue>(
      static_cast<uint64_t>(Triangles->capacity()) * 2 + 16);

  // Two CCW triangles per lattice cell, with full adjacency. Index
  // helpers: lattice point (I, J) and the cell's two triangles.
  auto PointAt = [&](uint32_t I, uint32_t J) { return J * (G + 1) + I; };
  std::vector<std::vector<uint32_t>> TriIds(
      G, std::vector<uint32_t>(2 * G, 0));
  for (uint32_t J = 0; J < G; ++J)
    for (uint32_t I = 0; I < G; ++I)
      for (uint32_t K = 0; K < 2; ++K)
        TriIds[J][2 * I + K] = Triangles->allocate();

  for (uint32_t J = 0; J < G; ++J)
    for (uint32_t I = 0; I < G; ++I) {
      uint32_t P00 = PointAt(I, J), P10 = PointAt(I + 1, J);
      uint32_t P01 = PointAt(I, J + 1), P11 = PointAt(I + 1, J + 1);
      uint32_t Lower = TriIds[J][2 * I];     // (P00, P10, P11)
      uint32_t Upper = TriIds[J][2 * I + 1]; // (P00, P11, P01)

      TmTriangle &L = (*Triangles)[Lower];
      L.Vertex[0].storeDirect(P00);
      L.Vertex[1].storeDirect(P10);
      L.Vertex[2].storeDirect(P11);
      // Edges: (P00,P10) bottom row; (P10,P11) right cell; (P11,P00)
      // diagonal shared with Upper.
      L.Neighbor[0].storeDirect(J > 0 ? TriIds[J - 1][2 * I + 1] : 0);
      L.Neighbor[1].storeDirect(I + 1 < G ? TriIds[J][2 * (I + 1) + 1]
                                          : 0);
      L.Neighbor[2].storeDirect(Upper);
      L.Alive.storeDirect(1);

      TmTriangle &U = (*Triangles)[Upper];
      U.Vertex[0].storeDirect(P00);
      U.Vertex[1].storeDirect(P11);
      U.Vertex[2].storeDirect(P01);
      // Edges: (P00,P11) diagonal; (P11,P01) top row; (P01,P00) left.
      U.Neighbor[0].storeDirect(Lower);
      U.Neighbor[1].storeDirect(J + 1 < G ? TriIds[J + 1][2 * I] : 0);
      U.Neighbor[2].storeDirect(I > 0 ? TriIds[J][2 * (I - 1)] : 0);
      U.Alive.storeDirect(1);
    }

  InitialArea = totalAliveAreaDirect();

  // Seed the work queue with every initially bad triangle.
  for (uint32_t J = 0; J < G; ++J)
    for (uint32_t I = 0; I < G; ++I)
      for (uint32_t K = 0; K < 2; ++K) {
        uint32_t Id = TriIds[J][2 * I + K];
        TmTriangle &T = (*Triangles)[Id];
        uint32_t Edge;
        if (needsRefinement(T.Vertex[0].loadDirect(),
                            T.Vertex[1].loadDirect(),
                            T.Vertex[2].loadDirect(), Edge))
          WorkQueue->pushDirect(Id);
      }
}

void YadaWorkload::replaceNeighbor(Tl2Txn &Tx, uint32_t Tri, uint32_t Old,
                                   uint32_t New) {
  if (Tri == 0)
    return;
  TmTriangle &T = (*Triangles)[Tri];
  for (int E = 0; E < 3; ++E)
    if (Tx.load(T.Neighbor[E]) == Old) {
      Tx.store(T.Neighbor[E], New);
      return;
    }
  assert(false && "stale adjacency: neighbor does not link back");
}

bool YadaWorkload::bisect(Tl2Txn &Tx, uint32_t Tri) {
  TmTriangle &T = (*Triangles)[Tri];
  if (Tx.load(T.Alive) == 0)
    return false;

  uint32_t A0 = Tx.load(T.Vertex[0]);
  uint32_t A1 = Tx.load(T.Vertex[1]);
  uint32_t A2 = Tx.load(T.Vertex[2]);
  uint32_t E;
  if (!needsRefinement(A0, A1, A2, E))
    return false;
  // Triangle budget: 4 children per step; the margin covers every worker
  // passing this check simultaneously plus aborted-attempt leakage.
  if (Triangles->used() + 4 * 64 >= Triangles->capacity())
    return false;

  const uint32_t V[3] = {A0, A1, A2};
  uint32_t A = V[E];             // longest edge is (A, B)
  uint32_t B = V[(E + 1) % 3];
  uint32_t C = V[(E + 2) % 3];
  uint32_t NAcross = Tx.load(T.Neighbor[E]);
  uint32_t NLeft = Tx.load(T.Neighbor[(E + 2) % 3]);  // edge (C, A)
  uint32_t NRight = Tx.load(T.Neighbor[(E + 1) % 3]); // edge (B, C)

  uint32_t M = newPoint((Xs[A] + Xs[B]) / 2.0, (Ys[A] + Ys[B]) / 2.0);

  // Children of T: T1 = (A, M, C), T2 = (M, B, C); both CCW.
  uint32_t T1 = Triangles->allocate();
  uint32_t T2 = Triangles->allocate();

  uint32_t N1 = 0, N2 = 0, D = 0, F = 3;
  if (NAcross != 0) {
    // Locate the shared edge in the neighbor: consistently oriented
    // meshes store it as (B, A).
    TmTriangle &N = (*Triangles)[NAcross];
    for (uint32_t I = 0; I < 3; ++I)
      if (Tx.load(N.Vertex[I]) == B &&
          Tx.load(N.Vertex[(I + 1) % 3]) == A) {
        F = I;
        break;
      }
    assert(F < 3 && "neighbor does not share the bisected edge");
    D = Tx.load(N.Vertex[(F + 2) % 3]);
    N1 = Triangles->allocate(); // (M, A, D)
    N2 = Triangles->allocate(); // (B, M, D)
  }

  auto InitTri = [&](uint32_t Id, uint32_t VA, uint32_t VB, uint32_t VC,
                     uint32_t NA, uint32_t NB, uint32_t NC) {
    TmTriangle &X = (*Triangles)[Id];
    Tx.store(X.Vertex[0], VA);
    Tx.store(X.Vertex[1], VB);
    Tx.store(X.Vertex[2], VC);
    Tx.store(X.Neighbor[0], NA);
    Tx.store(X.Neighbor[1], NB);
    Tx.store(X.Neighbor[2], NC);
    Tx.store(X.Alive, uint32_t{1});
  };

  // The midpoint M splits T into (A,M,C) and (M,B,C); when a neighbor
  // shares edge AB, it splits symmetrically around M on the D side.
  InitTri(T1, A, M, C, /*A,M*/ N1, /*M,C*/ T2, /*C,A*/ NLeft);
  InitTri(T2, M, B, C, /*M,B*/ N2, /*B,C*/ NRight, /*C,M*/ T1);
  replaceNeighbor(Tx, NLeft, Tri, T1);
  replaceNeighbor(Tx, NRight, Tri, T2);

  if (NAcross != 0) {
    TmTriangle &N = (*Triangles)[NAcross];
    uint32_t NAD = Tx.load(N.Neighbor[(F + 1) % 3]); // edge (A, D)
    uint32_t NDB = Tx.load(N.Neighbor[(F + 2) % 3]); // edge (D, B)
    InitTri(N1, M, A, D, /*M,A*/ T1, /*A,D*/ NAD, /*D,M*/ N2);
    InitTri(N2, B, M, D, /*B,M*/ T2, /*M,D*/ N1, /*D,B*/ NDB);
    replaceNeighbor(Tx, NAD, NAcross, N1);
    replaceNeighbor(Tx, NDB, NAcross, N2);
    Tx.store(N.Alive, uint32_t{0});
  }
  Tx.store(T.Alive, uint32_t{0});

  // Queue any skinny children for further refinement.
  uint32_t Scratch;
  const uint32_t Children[4] = {T1, T2, N1, N2};
  for (uint32_t Child : Children) {
    if (Child == 0)
      continue;
    TmTriangle &X = (*Triangles)[Child];
    if (needsRefinement(Tx.load(X.Vertex[0]), Tx.load(X.Vertex[1]),
                        Tx.load(X.Vertex[2]), Scratch))
      WorkQueue->push(Tx, Child);
  }
  return true;
}

void YadaWorkload::threadBody(Tl2Stm &Stm, ThreadId Thread) {
  Tl2Txn Txn(Stm, Thread);
  for (;;) {
    std::optional<uint64_t> Work;
    Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) { Work = WorkQueue->pop(Tx); });
    if (!Work)
      break;
    Txn.run(/*Tx=*/1, [&](Tl2Txn &Tx) {
      bisect(Tx, static_cast<uint32_t>(*Work));
    });
  }
}

double YadaWorkload::totalAliveAreaDirect() const {
  double Area = 0.0;
  for (uint32_t Id = 1; Id <= Triangles->used(); ++Id) {
    const TmTriangle &T = (*Triangles)[Id];
    if (T.Alive.loadDirect() == 0)
      continue;
    uint32_t A = T.Vertex[0].loadDirect();
    uint32_t B = T.Vertex[1].loadDirect();
    uint32_t C = T.Vertex[2].loadDirect();
    Area += 0.5 * ((Xs[B] - Xs[A]) * (Ys[C] - Ys[A]) -
                   (Xs[C] - Xs[A]) * (Ys[B] - Ys[A]));
  }
  return Area;
}

size_t YadaWorkload::aliveCountDirect() const {
  size_t Count = 0;
  for (uint32_t Id = 1; Id <= Triangles->used(); ++Id)
    if ((*Triangles)[Id].Alive.loadDirect() != 0)
      ++Count;
  return Count;
}

bool YadaWorkload::verify(Tl2Stm &Stm) {
  (void)Stm;
  // 1. Area conservation: bisection never changes covered area.
  double Area = totalAliveAreaDirect();
  if (std::abs(Area - InitialArea) > 1e-9 * (1.0 + InitialArea))
    return false;

  // 2. Adjacency symmetry: every alive triangle's neighbor is alive,
  //    links back, and shares exactly the claimed edge.
  for (uint32_t Id = 1; Id <= Triangles->used(); ++Id) {
    const TmTriangle &T = (*Triangles)[Id];
    if (T.Alive.loadDirect() == 0)
      continue;
    for (int E = 0; E < 3; ++E) {
      uint32_t N = T.Neighbor[E].loadDirect();
      if (N == 0)
        continue;
      const TmTriangle &M = (*Triangles)[N];
      if (M.Alive.loadDirect() == 0)
        return false;
      uint32_t EA = T.Vertex[E].loadDirect();
      uint32_t EB = T.Vertex[(E + 1) % 3].loadDirect();
      bool Back = false;
      for (int F = 0; F < 3; ++F)
        if (M.Neighbor[F].loadDirect() == Id &&
            M.Vertex[F].loadDirect() == EB &&
            M.Vertex[(F + 1) % 3].loadDirect() == EA)
          Back = true;
      if (!Back)
        return false;
    }
  }
  return true;
}

