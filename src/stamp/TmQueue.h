//===- stamp/TmQueue.h - Transactional bounded FIFO queue ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded FIFO ring whose head/tail cursors are transactional words —
/// the central contention point of intruder (every worker pops the packet
/// queue) and the work-queue of labyrinth and yada. Like STAMP's queue,
/// concurrent pops always conflict on the head cursor, giving these
/// benchmarks their characteristic high abort rates.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_TMQUEUE_H
#define GSTM_STAMP_TMQUEUE_H

#include "stm/TVar.h"
#include "stm/Tl2.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>

namespace gstm {

/// Bounded multi-producer multi-consumer transactional queue of 64-bit
/// items.
class TmQueue {
public:
  /// Creates a queue holding at most \p Capacity items.
  explicit TmQueue(uint64_t Capacity)
      : Cap(Capacity), Slots(std::make_unique<TVar<uint64_t>[]>(Capacity)) {
    assert(Capacity > 0 && "queue capacity must be positive");
  }

  /// Appends \p Value; returns false when full.
  bool push(Tl2Txn &Tx, uint64_t Value) {
    uint64_t T = Tx.load(Tail);
    uint64_t H = Tx.load(Head);
    if (T - H >= Cap)
      return false;
    Tx.store(Slots[T % Cap], Value);
    Tx.store(Tail, T + 1);
    return true;
  }

  /// Removes the oldest item, or nullopt when empty.
  std::optional<uint64_t> pop(Tl2Txn &Tx) {
    uint64_t H = Tx.load(Head);
    uint64_t T = Tx.load(Tail);
    if (H == T)
      return std::nullopt;
    uint64_t Value = Tx.load(Slots[H % Cap]);
    Tx.store(Head, H + 1);
    return Value;
  }

  uint64_t size(Tl2Txn &Tx) { return Tx.load(Tail) - Tx.load(Head); }

  /// Non-transactional accessors for setup / quiescent verification.
  void pushDirect(uint64_t Value) {
    uint64_t T = Tail.loadDirect();
    assert(T - Head.loadDirect() < Cap && "queue overflow in setup");
    Slots[T % Cap].storeDirect(Value);
    Tail.storeDirect(T + 1);
  }
  uint64_t sizeDirect() const {
    return Tail.loadDirect() - Head.loadDirect();
  }

private:
  uint64_t Cap;
  std::unique_ptr<TVar<uint64_t>[]> Slots;
  TVar<uint64_t> Head{0};
  TVar<uint64_t> Tail{0};
};

} // namespace gstm

#endif // GSTM_STAMP_TMQUEUE_H
