//===- stamp/Registry.h - Workload factory ---------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-based factory over the seven STAMP ports so the bench harnesses
/// and examples can iterate "every benchmark in Table I" without
/// hardcoding types. Bayes is absent by design: it seg-faults in the
/// paper's artifact and is excluded from its evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_REGISTRY_H
#define GSTM_STAMP_REGISTRY_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"

#include <memory>
#include <string>
#include <vector>

namespace gstm {

/// Names of all available STAMP workloads, in the paper's table order.
const std::vector<std::string> &stampWorkloadNames();

/// Creates workload \p Name at input size \p Size; nullptr for unknown
/// names.
std::unique_ptr<TlWorkload> createStampWorkload(const std::string &Name,
                                                SizeClass Size);

} // namespace gstm

#endif // GSTM_STAMP_REGISTRY_H
