//===- stamp/Kmeans.cpp ----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Kmeans.h"

#include "support/SplitMix64.h"

#include <cassert>
#include <cmath>

using namespace gstm;

KmeansParams KmeansParams::forSize(SizeClass S) {
  KmeansParams P;
  switch (S) {
  case SizeClass::Small:
    P.NumPoints = 384;
    P.Dim = 4;
    P.NumClusters = 6;
    P.Rounds = 3;
    break;
  case SizeClass::Medium:
    P.NumPoints = 2048;
    P.Dim = 8;
    P.NumClusters = 8;
    P.Rounds = 4;
    break;
  case SizeClass::Large:
    P.NumPoints = 8192;
    P.Dim = 8;
    P.NumClusters = 12;
    P.Rounds = 8;
    break;
  }
  return P;
}

void KmeansWorkload::setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) {
  (void)Stm;
  Threads = NumThreads;
  SplitMix64 Rng(Seed * 0x2545f4914f6cdd1dULL + 1);

  Points.resize(static_cast<size_t>(Params.NumPoints) * Params.Dim);
  for (double &V : Points)
    V = Rng.nextDouble();

  // Initial centers: the first K points, as in classic Forgy seeding.
  Centers.assign(Points.begin(),
                 Points.begin() +
                     static_cast<size_t>(Params.NumClusters) * Params.Dim);

  size_t SumCount = static_cast<size_t>(Params.NumClusters) * Params.Dim;
  Sums = std::make_unique<TVar<double>[]>(SumCount);
  Counts = std::make_unique<TVar<uint64_t>[]>(Params.NumClusters);
  for (size_t I = 0; I < SumCount; ++I)
    Sums[I].storeDirect(0.0);
  for (uint32_t K = 0; K < Params.NumClusters; ++K)
    Counts[K].storeDirect(0);

  RoundBarrier = std::make_unique<Barrier>(NumThreads);
  LastRoundMembers = 0;
}

uint32_t KmeansWorkload::nearestCenter(uint32_t Point) const {
  const double *PV = &Points[static_cast<size_t>(Point) * Params.Dim];
  uint32_t Best = 0;
  double BestDist = 0.0;
  for (uint32_t K = 0; K < Params.NumClusters; ++K) {
    const double *CV = &Centers[static_cast<size_t>(K) * Params.Dim];
    double Dist = 0.0;
    for (uint32_t D = 0; D < Params.Dim; ++D) {
      double Delta = PV[D] - CV[D];
      Dist += Delta * Delta;
    }
    if (K == 0 || Dist < BestDist) {
      Best = K;
      BestDist = Dist;
    }
  }
  return Best;
}

void KmeansWorkload::threadBody(Tl2Stm &Stm, ThreadId Thread) {
  Tl2Txn Txn(Stm, Thread);
  uint32_t Chunk = (Params.NumPoints + Threads - 1) / Threads;
  uint32_t Begin = Thread * Chunk;
  uint32_t End = std::min(Params.NumPoints, Begin + Chunk);

  for (uint32_t Round = 0; Round < Params.Rounds; ++Round) {
    for (uint32_t Pt = Begin; Pt < End; ++Pt) {
      uint32_t K = nearestCenter(Pt);
      const double *PV = &Points[static_cast<size_t>(Pt) * Params.Dim];
      // STAMP kmeans: the accumulator update is the transaction.
      Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) {
        size_t Base = static_cast<size_t>(K) * Params.Dim;
        for (uint32_t D = 0; D < Params.Dim; ++D)
          Tx.store(Sums[Base + D], Tx.load(Sums[Base + D]) + PV[D]);
        Tx.store(Counts[K], Tx.load(Counts[K]) + 1);
      });
    }

    RoundBarrier->arriveAndWait();
    if (Thread == 0) {
      // Quiescent region between barriers: recompute centers directly.
      uint64_t Members = 0;
      for (uint32_t K = 0; K < Params.NumClusters; ++K) {
        uint64_t Count = Counts[K].loadDirect();
        Members += Count;
        size_t Base = static_cast<size_t>(K) * Params.Dim;
        for (uint32_t D = 0; D < Params.Dim; ++D) {
          double Sum = Sums[Base + D].loadDirect();
          if (Count != 0)
            Centers[Base + D] = Sum / static_cast<double>(Count);
          Sums[Base + D].storeDirect(0.0);
        }
        Counts[K].storeDirect(0);
      }
      LastRoundMembers = Members;
    }
    RoundBarrier->arriveAndWait();
  }
}

bool KmeansWorkload::verify(Tl2Stm &Stm) {
  (void)Stm;
  // Every point must have been accumulated exactly once in the final
  // round; a lost transactional update would break the count.
  return LastRoundMembers == Params.NumPoints;
}

