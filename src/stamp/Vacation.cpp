//===- stamp/Vacation.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Vacation.h"

#include <cassert>
#include <vector>

using namespace gstm;

VacationParams VacationParams::forSize(SizeClass S) {
  VacationParams P;
  switch (S) {
  case SizeClass::Small:
    P.NumRelations = 48;
    P.NumCustomers = 48;
    P.OpsPerThread = 96;
    break;
  case SizeClass::Medium:
    P.NumRelations = 128;
    P.NumCustomers = 128;
    P.OpsPerThread = 256;
    break;
  case SizeClass::Large:
    P.NumRelations = 512;
    P.NumCustomers = 512;
    P.OpsPerThread = 1024;
    break;
  }
  return P;
}

void VacationWorkload::setup(Tl2Stm &Stm, unsigned NumThreads,
                             uint64_t Seed) {
  Threads = NumThreads;
  RunSeed = Seed;
  SplitMix64 Rng(Seed ^ 0xabcdef1234567890ULL);

  // Tree nodes: assets + customer (re-)inserts + NIL sentinels. Aborted
  // attempts leak their nodes (TmPool discipline), so budget one node per
  // operation *attempt*: with the observed abort ratios, 2x the operation
  // count is ample headroom.
  uint32_t TotalOps = Params.OpsPerThread * NumThreads;
  uint32_t TreeCapacity = NumTables * Params.NumRelations +
                          Params.NumCustomers + 2 * TotalOps +
                          NumTables + 2;
  TreePool = std::make_unique<TmRbTree::Pool>(TreeCapacity);
  // Reservation nodes: one per reserve attempt (never recycled).
  ListPool = std::make_unique<TmList::Pool>(4 * TotalOps + 64);

  Tables.clear();
  InitialFree.assign(static_cast<size_t>(NumTables) * Params.NumRelations,
                     0);
  // Setup is single-threaded but the trees only expose transactional
  // mutators, so drive them through a local transaction context.
  Tl2Txn Init(Stm, /*Thread=*/0);
  for (uint32_t T = 0; T < NumTables; ++T) {
    Tables.push_back(std::make_unique<TmRbTree>(*TreePool));
    for (uint32_t A = 0; A < Params.NumRelations; ++A) {
      uint32_t Price = 50 + static_cast<uint32_t>(Rng.nextBounded(450));
      uint32_t Free = 1 + static_cast<uint32_t>(Rng.nextBounded(4));
      InitialFree[static_cast<size_t>(T) * Params.NumRelations + A] = Free;
      Init.run(0, [&](Tl2Txn &Tx) {
        Tables[T]->insert(Tx, A, packAsset(Price, Free));
      });
    }
  }
  Customers = std::make_unique<TmRbTree>(*TreePool);
  Reservations = std::make_unique<TmList[]>(Params.NumCustomers);
}

void VacationWorkload::doReserve(Tl2Txn &Txn, SplitMix64 &Rng) {
  uint32_t Customer =
      static_cast<uint32_t>(Rng.nextBounded(Params.NumCustomers));
  uint32_t Table = static_cast<uint32_t>(Rng.nextBounded(NumTables));
  // Pre-draw the probed asset ids so retries replay identical queries.
  std::vector<uint32_t> Probes(Params.QueriesPerReserve);
  for (uint32_t &A : Probes)
    A = static_cast<uint32_t>(Rng.nextBounded(Params.NumRelations));

  Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) {
    // Find the highest-priced probed asset with a free seat (STAMP's
    // "best reservation" rule).
    bool Found = false;
    uint32_t BestAsset = 0;
    uint32_t BestPrice = 0;
    uint64_t BestPacked = 0;
    for (uint32_t A : Probes) {
      auto Packed = Tables[Table]->find(Tx, A);
      if (!Packed || assetFree(*Packed) == 0)
        continue;
      if (!Found || assetPrice(*Packed) > BestPrice) {
        Found = true;
        BestAsset = A;
        BestPrice = assetPrice(*Packed);
        BestPacked = *Packed;
      }
    }
    if (!Found)
      return;

    uint64_t Key = packReservation(Table, BestAsset);
    // One seat per (customer, asset): skip when already reserved.
    if (Reservations[Customer].find(Tx, *ListPool, Key))
      return;
    Tables[Table]->update(
        Tx, BestAsset, packAsset(BestPrice, assetFree(BestPacked) - 1));
    Customers->insert(Tx, Customer, 1); // no-op when already present
    Reservations[Customer].insert(Tx, *ListPool, Key, BestPrice);
  });
}

void VacationWorkload::doDeleteCustomer(Tl2Txn &Txn, SplitMix64 &Rng) {
  uint32_t Customer =
      static_cast<uint32_t>(Rng.nextBounded(Params.NumCustomers));

  Txn.run(/*Tx=*/1, [&](Tl2Txn &Tx) {
    if (!Customers->find(Tx, Customer))
      return;
    // Release every reservation back to its table, then drop the
    // customer record.
    std::vector<uint64_t> Keys;
    Reservations[Customer].forEach(Tx, *ListPool,
                                   [&Keys](uint64_t Key, uint64_t) {
                                     Keys.push_back(Key);
                                   });
    for (uint64_t Key : Keys) {
      uint32_t Table = static_cast<uint32_t>(Key >> 32);
      uint32_t Asset = static_cast<uint32_t>(Key);
      auto Packed = Tables[Table]->find(Tx, Asset);
      assert(Packed && "reservation for a missing asset");
      Tables[Table]->update(
          Tx, Asset, packAsset(assetPrice(*Packed), assetFree(*Packed) + 1));
      Reservations[Customer].remove(Tx, *ListPool, Key);
    }
    Customers->remove(Tx, Customer);
  });
}

void VacationWorkload::doUpdateTables(Tl2Txn &Txn, SplitMix64 &Rng) {
  uint32_t Table = static_cast<uint32_t>(Rng.nextBounded(NumTables));
  std::vector<std::pair<uint32_t, uint32_t>> Updates(
      Params.QueriesPerReserve);
  for (auto &[Asset, Price] : Updates) {
    Asset = static_cast<uint32_t>(Rng.nextBounded(Params.NumRelations));
    Price = 50 + static_cast<uint32_t>(Rng.nextBounded(450));
  }

  Txn.run(/*Tx=*/2, [&](Tl2Txn &Tx) {
    for (auto [Asset, Price] : Updates) {
      auto Packed = Tables[Table]->find(Tx, Asset);
      if (!Packed)
        continue;
      Tables[Table]->update(Tx, Asset,
                            packAsset(Price, assetFree(*Packed)));
    }
  });
}

void VacationWorkload::threadBody(Tl2Stm &Stm, ThreadId Thread) {
  Tl2Txn Txn(Stm, Thread);
  SplitMix64 Rng(RunSeed * 0x100000001b3ULL + Thread + 1);

  for (uint32_t Op = 0; Op < Params.OpsPerThread; ++Op) {
    uint64_t Roll = Rng.nextBounded(100);
    if (Roll < Params.ReservePercent)
      doReserve(Txn, Rng);
    else if (Roll < Params.ReservePercent +
                        (100 - Params.ReservePercent) / 2)
      doDeleteCustomer(Txn, Rng);
    else
      doUpdateTables(Txn, Rng);
  }
}

bool VacationWorkload::verify(Tl2Stm &Stm) {
  (void)Stm;
  // Conservation: for every asset, free seats plus outstanding
  // reservations must equal the initial allocation.
  std::vector<uint32_t> Reserved(
      static_cast<size_t>(NumTables) * Params.NumRelations, 0);
  for (uint32_t C = 0; C < Params.NumCustomers; ++C)
    Reservations[C].forEachDirect(*ListPool,
                                  [&](uint64_t Key, uint64_t) {
                                    uint32_t Table =
                                        static_cast<uint32_t>(Key >> 32);
                                    uint32_t Asset =
                                        static_cast<uint32_t>(Key);
                                    ++Reserved[static_cast<size_t>(Table) *
                                                   Params.NumRelations +
                                               Asset];
                                  });

  for (uint32_t T = 0; T < NumTables; ++T) {
    if (!Tables[T]->validateDirect())
      return false;
    bool Ok = true;
    Tables[T]->forEachDirect([&](uint64_t Asset, uint64_t Packed) {
      size_t Index =
          static_cast<size_t>(T) * Params.NumRelations + Asset;
      if (assetFree(Packed) + Reserved[Index] != InitialFree[Index])
        Ok = false;
    });
    if (!Ok)
      return false;
  }
  return Customers->validateDirect();
}

