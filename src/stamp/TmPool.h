//===- stamp/TmPool.h - Node pool for transactional structures -----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-capacity node arena used by the transactional containers.
///
/// Memory management under speculation follows the STAMP discipline:
/// nodes are allocated with a thread-safe bump pointer (an aborted
/// transaction simply wastes its nodes) and nothing is freed until the
/// concurrent phase ends — freeing a node another speculative reader may
/// still dereference would be a use-after-free, so unlinked nodes stay
/// allocated until teardown. Index 0 is reserved as the null sentinel.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_TMPOOL_H
#define GSTM_STAMP_TMPOOL_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace gstm {

/// Index-addressed arena of default-constructed nodes.
///
/// Containers link nodes by 32-bit pool index rather than raw pointer so
/// links fit in one TVar word alongside tag bits if needed.
template <typename NodeT> class TmPool {
public:
  static constexpr uint32_t Null = 0;

  /// Creates a pool able to hand out \p Capacity nodes (excluding the
  /// null sentinel at index 0).
  explicit TmPool(uint32_t Capacity)
      : CapacityPlusNull(Capacity + 1),
        Nodes(std::make_unique<NodeT[]>(Capacity + 1)), Next(1) {}

  /// Allocates one node; returns its index. Exhaustion is a workload
  /// sizing bug (pools must budget for nodes wasted by aborted
  /// transactions), so it terminates loudly rather than corrupting the
  /// heap: speculative readers may already hold indices near the end.
  uint32_t allocate() {
    // stm-lint: allow(R1) STAMP pool discipline: the bump pointer is
    // monotonic, so an aborted transaction merely leaks its index — no
    // rollback is needed and no other txn can observe a torn state.
    uint32_t Index = Next.fetch_add(1, std::memory_order_relaxed);
    if (Index >= CapacityPlusNull) {
      // stm-lint: allow(R2) exhaustion is a fatal sizing bug; the process
      // terminates here, so irrevocability is moot.
      std::fprintf(stderr,
                   "fatal: TmPool exhausted (capacity %u); size the pool "
                   "from the workload parameters with abort headroom\n",
                   CapacityPlusNull - 1);
      // stm-lint: allow(R2) deliberate loud termination on exhaustion.
      std::abort();
    }
    return Index;
  }

  NodeT &operator[](uint32_t Index) {
    assert(Index != Null && Index < CapacityPlusNull && "bad pool index");
    return Nodes[Index];
  }
  const NodeT &operator[](uint32_t Index) const {
    assert(Index != Null && Index < CapacityPlusNull && "bad pool index");
    return Nodes[Index];
  }

  /// Nodes handed out so far.
  uint32_t used() const {
    // stm-lint: allow(R1) monotonic high-water mark; an approximate read
    // is fine anywhere, including inside a transaction body.
    return Next.load(std::memory_order_relaxed) - 1;
  }
  uint32_t capacity() const { return CapacityPlusNull - 1; }

private:
  uint32_t CapacityPlusNull;
  std::unique_ptr<NodeT[]> Nodes;
  std::atomic<uint32_t> Next;
};

} // namespace gstm

#endif // GSTM_STAMP_TMPOOL_H
