//===- stamp/Genome.cpp ----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Genome.h"

#include "support/SplitMix64.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace gstm;

GenomeParams GenomeParams::forSize(SizeClass S) {
  GenomeParams P;
  switch (S) {
  case SizeClass::Small:
    P.GenomeBases = 2048;
    P.SegmentBases = 16;
    P.NumSegments = 1024;
    break;
  case SizeClass::Medium:
    P.GenomeBases = 16384;
    P.SegmentBases = 16;
    P.NumSegments = 8192;
    break;
  case SizeClass::Large:
    P.GenomeBases = 65536;
    P.SegmentBases = 16;
    P.NumSegments = 49152;
    break;
  }
  return P;
}

uint64_t GenomeWorkload::encode(uint32_t Pos, uint32_t Count) const {
  assert(Pos + Count <= Genome.size() && "segment out of range");
  uint64_t Packed = 0;
  for (uint32_t I = 0; I < Count; ++I)
    Packed = (Packed << 2) | Genome[Pos + I];
  // Set a guard bit above the payload so distinct lengths cannot alias
  // and no segment encodes to the hash maps' "absent" ambiguity of 0.
  return Packed | (uint64_t{1} << (2 * Count));
}

void GenomeWorkload::setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) {
  (void)Stm;
  assert(Params.SegmentBases % 2 == 0 && Params.SegmentBases <= 30 &&
         "segment length must be even and fit the 2-bit packing");
  Threads = NumThreads;
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 11);

  Genome.resize(Params.GenomeBases);
  for (uint8_t &Base : Genome)
    Base = static_cast<uint8_t>(Rng.nextBounded(4));

  Segments.resize(Params.NumSegments);
  std::unordered_set<uint64_t> Reference;
  for (uint64_t &Seg : Segments) {
    uint32_t Pos = static_cast<uint32_t>(
        Rng.nextBounded(Params.GenomeBases - Params.SegmentBases));
    Seg = encode(Pos, Params.SegmentBases);
    Reference.insert(Seg);
  }
  ReferenceUnique = Reference.size();

  // Pool: dedup nodes + prefix nodes + 2 link nodes per unique segment,
  // plus generous headroom for nodes leaked by aborted insert attempts —
  // the counter-contended insert transactions retry several times at
  // high thread counts and each validation-failed attempt strands one
  // node (TmPool discipline).
  NodePool = std::make_unique<TmList::Pool>(
      static_cast<uint32_t>(16 * Params.NumSegments + 4096));
  // Bucket count tuned well below the segment count so dedup inserts
  // contend on chains, as STAMP's genome does on its shared hashtable.
  uint32_t Buckets = std::max<uint32_t>(32, Params.NumSegments / 64);
  SegTable = std::make_unique<TmHashMap>(Buckets);
  PrefixTable = std::make_unique<TmHashMap>(Buckets);
  SuccTable = std::make_unique<TmHashMap>(Buckets);
  PredTable = std::make_unique<TmHashMap>(Buckets);
  PhaseBarrier = std::make_unique<Barrier>(NumThreads);
  UniqueCount.storeDirect(0);
  LinkCount.storeDirect(0);

  OwnedSegments.assign(NumThreads, {});
}

void GenomeWorkload::threadBody(Tl2Stm &Stm, ThreadId Thread) {
  Tl2Txn Txn(Stm, Thread);
  uint32_t Chunk = (Params.NumSegments + Threads - 1) / Threads;
  uint32_t Begin = Thread * Chunk;
  uint32_t End = std::min(Params.NumSegments, Begin + Chunk);

  // Phase 1: deduplicate segments through the shared hash set. The
  // thread whose insert wins owns the segment for phase 2.
  std::vector<uint64_t> &Owned = OwnedSegments[Thread];
  for (uint32_t I = Begin; I < End; ++I) {
    uint64_t Seg = Segments[I];
    bool Inserted = false;
    Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) {
      Inserted = SegTable->insert(Tx, *NodePool, Seg, 1);
      if (Inserted)
        Tx.store(UniqueCount, Tx.load(UniqueCount) + 1);
    });
    if (Inserted)
      Owned.push_back(Seg);
  }
  PhaseBarrier->arriveAndWait();

  // Phase 2a: publish each unique segment under its front half so
  // overlap candidates can find it.
  uint32_t Half = Params.SegmentBases / 2;
  uint64_t HalfMask = (uint64_t{1} << (2 * Half)) - 1;
  uint64_t Guard = uint64_t{1} << (2 * Half);
  auto FrontHalf = [&](uint64_t Seg) {
    return ((Seg >> (2 * Half)) & HalfMask) | Guard;
  };
  auto BackHalf = [&](uint64_t Seg) { return (Seg & HalfMask) | Guard; };

  for (uint64_t Seg : Owned)
    Txn.run(/*Tx=*/1, [&](Tl2Txn &Tx) {
      // First publisher of a shared front half wins, as in STAMP's
      // unique-prefix matching.
      PrefixTable->insert(Tx, *NodePool, FrontHalf(Seg), Seg);
    });
  PhaseBarrier->arriveAndWait();

  // Phase 2b: claim predecessor/successor links atomically.
  for (uint64_t Seg : Owned)
    Txn.run(/*Tx=*/2, [&](Tl2Txn &Tx) {
      auto Succ = PrefixTable->find(Tx, *NodePool, BackHalf(Seg));
      if (!Succ || *Succ == Seg)
        return;
      // Both ends must be unclaimed; the transaction makes the
      // two-table claim atomic.
      if (SuccTable->find(Tx, *NodePool, Seg))
        return;
      if (PredTable->find(Tx, *NodePool, *Succ))
        return;
      SuccTable->insert(Tx, *NodePool, Seg, *Succ);
      PredTable->insert(Tx, *NodePool, *Succ, Seg);
      Tx.store(LinkCount, Tx.load(LinkCount) + 1);
    });
}

bool GenomeWorkload::verify(Tl2Stm &Stm) {
  (void)Stm;
  // Dedup must produce exactly the reference distinct-segment count.
  size_t Unique = 0;
  SegTable->forEachDirect(*NodePool,
                          [&Unique](uint64_t, uint64_t) { ++Unique; });
  if (Unique != ReferenceUnique)
    return false;
  if (UniqueCount.loadDirect() != ReferenceUnique)
    return false; // transactional counter must agree with the table

  // Links must be mutually consistent and unique on both sides: the
  // succ relation is injective and PredTable is exactly its inverse.
  bool Ok = true;
  std::unordered_map<uint64_t, uint64_t> SuccOf;
  std::unordered_set<uint64_t> SeenSucc;
  SuccTable->forEachDirect(*NodePool, [&](uint64_t Seg, uint64_t Succ) {
    SuccOf[Seg] = Succ;
    if (!SeenSucc.insert(Succ).second)
      Ok = false;
  });
  size_t PredCount = 0;
  PredTable->forEachDirect(*NodePool, [&](uint64_t Succ, uint64_t Seg) {
    ++PredCount;
    auto It = SuccOf.find(Seg);
    if (It == SuccOf.end() || It->second != Succ)
      Ok = false;
  });
  return Ok && PredCount == SuccOf.size() &&
         LinkCount.loadDirect() == SuccOf.size();
}

