//===- stamp/Ssca2.h - STAMP ssca2 port (graph construction) -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSCA2 kernel 1 as in STAMP: threads insert the edges of a random
/// multigraph into per-vertex adjacency arrays, each append guarded by a
/// tiny transaction on the vertex's degree counter. With many vertices and
/// short transactions, conflicts are nearly nonexistent — the paper's
/// model analyzer correctly flags ssca2 as non-optimizable (guidance
/// metric 72%/57%, Table I) and guiding it anyway only adds overhead
/// (Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_SSCA2_H
#define GSTM_STAMP_SSCA2_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"
#include "stm/TVar.h"

#include <memory>
#include <vector>

namespace gstm {

/// Input parameters of one ssca2 run.
struct Ssca2Params {
  uint32_t NumVertices = 1024;
  uint32_t NumEdges = 4096;
  /// Per-vertex adjacency capacity; inserts beyond it are dropped
  /// (extremely unlikely with the default sizing).
  uint32_t MaxDegree = 64;

  static Ssca2Params forSize(SizeClass S);
};

/// SSCA2 graph construction on TL2.
class Ssca2Workload : public TlWorkload {
public:
  explicit Ssca2Workload(const Ssca2Params &Params) : Params(Params) {}

  std::string name() const override { return "ssca2"; }
  unsigned numTxSites() const override { return 1; }
  void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) override;
  void threadBody(Tl2Stm &Stm, ThreadId Thread) override;
  bool verify(Tl2Stm &Stm) override;

  /// Degree of \p Vertex after the run (direct read; for tests).
  uint64_t degreeDirect(uint32_t Vertex) const {
    return Degrees[Vertex].loadDirect();
  }

private:
  Ssca2Params Params;
  unsigned Threads = 0;

  /// Edge list (immutable per run): pairs (src, dst).
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  std::unique_ptr<TVar<uint64_t>[]> Degrees;     // NumVertices
  std::unique_ptr<TVar<uint32_t>[]> Adjacency;   // NumVertices x MaxDegree
  std::atomic<uint64_t> DroppedEdges{0};
};

} // namespace gstm

#endif // GSTM_STAMP_SSCA2_H
