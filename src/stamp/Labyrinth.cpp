//===- stamp/Labyrinth.cpp -------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Labyrinth.h"

#include "support/SplitMix64.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace gstm;

LabyrinthParams LabyrinthParams::forSize(SizeClass S) {
  LabyrinthParams P;
  switch (S) {
  case SizeClass::Small:
    P.Width = 32;
    P.Height = 32;
    P.NumPaths = 32;
    break;
  case SizeClass::Medium:
    P.Width = 64;
    P.Height = 64;
    P.NumPaths = 96;
    break;
  case SizeClass::Large:
    P.Width = 128;
    P.Height = 128;
    P.NumPaths = 384;
    break;
  }
  return P;
}

void LabyrinthWorkload::setup(Tl2Stm &Stm, unsigned NumThreads,
                              uint64_t Seed) {
  (void)Stm;
  Threads = NumThreads;
  SplitMix64 Rng(Seed * 0x100000001b3ULL + 17);

  uint32_t Cells = Params.Width * Params.Height;
  Grid = std::make_unique<TVar<uint32_t>[]>(Cells);
  for (uint32_t C = 0; C < Cells; ++C)
    Grid[C].storeDirect(0);

  // Distinct endpoints; the same cell may still serve several requests
  // (second one becomes unroutable), as in the original's input files.
  Requests = std::make_unique<TmQueue>(Params.NumPaths + 1);
  Placed.assign(Params.NumPaths, {});
  for (uint32_t R = 0; R < Params.NumPaths; ++R) {
    uint64_t Src = Rng.nextBounded(Cells);
    uint64_t Dst = Rng.nextBounded(Cells);
    while (Dst == Src)
      Dst = Rng.nextBounded(Cells);
    Requests->pushDirect((static_cast<uint64_t>(R) << 40) | (Src << 20) |
                         Dst);
  }
}

std::vector<uint32_t> LabyrinthWorkload::planPath(uint32_t Src,
                                                  uint32_t Dst) const {
  uint32_t Cells = Params.Width * Params.Height;
  // Snapshot the grid without TM, exactly as STAMP's router copies it.
  std::vector<uint32_t> Owner(Cells);
  for (uint32_t C = 0; C < Cells; ++C)
    Owner[C] = Grid[C].loadDirect();
  if (Owner[Src] != 0 || Owner[Dst] != 0)
    return {};

  std::vector<int32_t> Prev(Cells, -1);
  std::deque<uint32_t> Frontier{Src};
  Prev[Src] = static_cast<int32_t>(Src);
  while (!Frontier.empty()) {
    uint32_t Cur = Frontier.front();
    Frontier.pop_front();
    if (Cur == Dst)
      break;
    uint32_t X = Cur % Params.Width;
    uint32_t Y = Cur / Params.Width;
    const int32_t DX[4] = {1, -1, 0, 0};
    const int32_t DY[4] = {0, 0, 1, -1};
    for (int Dir = 0; Dir < 4; ++Dir) {
      int32_t NX = static_cast<int32_t>(X) + DX[Dir];
      int32_t NY = static_cast<int32_t>(Y) + DY[Dir];
      if (NX < 0 || NY < 0 || NX >= static_cast<int32_t>(Params.Width) ||
          NY >= static_cast<int32_t>(Params.Height))
        continue;
      uint32_t Next = cellIndex(static_cast<uint32_t>(NX),
                                static_cast<uint32_t>(NY));
      if (Prev[Next] != -1 || Owner[Next] != 0)
        continue;
      Prev[Next] = static_cast<int32_t>(Cur);
      Frontier.push_back(Next);
    }
  }
  if (Prev[Dst] == -1)
    return {};

  std::vector<uint32_t> Path;
  for (uint32_t Cur = Dst;; Cur = static_cast<uint32_t>(Prev[Cur])) {
    Path.push_back(Cur);
    if (Cur == Src)
      break;
  }
  std::reverse(Path.begin(), Path.end());
  return Path;
}

void LabyrinthWorkload::threadBody(Tl2Stm &Stm, ThreadId Thread) {
  Tl2Txn Txn(Stm, Thread);

  for (;;) {
    std::optional<uint64_t> Request;
    Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) { Request = Requests->pop(Tx); });
    if (!Request)
      break;

    uint32_t Id = static_cast<uint32_t>(*Request >> 40);
    uint32_t Src = static_cast<uint32_t>((*Request >> 20) & 0xfffff);
    uint32_t Dst = static_cast<uint32_t>(*Request & 0xfffff);
    uint32_t PathId = Id + 1;

    for (uint32_t Attempt = 0; Attempt < Params.MaxPlanAttempts;
         ++Attempt) {
      std::vector<uint32_t> Path = planPath(Src, Dst);
      if (Path.empty())
        break; // unroutable on current grid

      // Claim phase: one transaction validates the whole path is still
      // free and writes the ownership; any stale cell forces a re-plan.
      bool Claimed = false;
      Txn.run(/*Tx=*/1, [&](Tl2Txn &Tx) {
        Claimed = false;
        for (uint32_t Cell : Path)
          if (Tx.load(Grid[Cell]) != 0)
            return; // read-only commit; snapshot was stale
        for (uint32_t Cell : Path)
          Tx.store(Grid[Cell], PathId);
        Claimed = true;
      });
      if (Claimed) {
        Placed[Id] = std::move(Path);
        break;
      }
    }
  }
}

size_t LabyrinthWorkload::routedCount() const {
  size_t Count = 0;
  for (const auto &Path : Placed)
    if (!Path.empty())
      ++Count;
  return Count;
}

bool LabyrinthWorkload::verify(Tl2Stm &Stm) {
  (void)Stm;
  uint32_t Cells = Params.Width * Params.Height;
  std::vector<uint32_t> Expected(Cells, 0);

  for (uint32_t Id = 0; Id < Params.NumPaths; ++Id) {
    const std::vector<uint32_t> &Path = Placed[Id];
    if (Path.empty())
      continue;
    // Endpoint and 4-adjacency structure.
    for (size_t I = 0; I < Path.size(); ++I) {
      uint32_t Cell = Path[I];
      if (Cell >= Cells || Expected[Cell] != 0)
        return false; // overlap between two routed paths
      Expected[Cell] = Id + 1;
      if (I == 0)
        continue;
      uint32_t PrevCell = Path[I - 1];
      uint32_t AX = PrevCell % Params.Width, AY = PrevCell / Params.Width;
      uint32_t BX = Cell % Params.Width, BY = Cell / Params.Width;
      uint32_t Manhattan = (AX > BX ? AX - BX : BX - AX) +
                           (AY > BY ? AY - BY : BY - AY);
      if (Manhattan != 1)
        return false;
    }
  }

  // The grid must agree exactly with the recorded paths.
  for (uint32_t C = 0; C < Cells; ++C)
    if (Grid[C].loadDirect() != Expected[C])
      return false;
  return true;
}

