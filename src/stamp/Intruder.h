//===- stamp/Intruder.h - STAMP intruder port -------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Network intrusion detection as in STAMP: fragmented packet flows
/// arrive in a shared queue; workers pop fragments (capture phase),
/// reassemble flows through a transactional map (decoder phase) and scan
/// completed flows for an attack signature (detection phase, pure
/// computation). The single shared queue plus the reassembly map make
/// intruder the most contended STAMP benchmark — it has by far the most
/// model states in the paper (Table III).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_INTRUDER_H
#define GSTM_STAMP_INTRUDER_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"
#include "stamp/TmHashMap.h"
#include "stamp/TmQueue.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace gstm {

/// Input parameters of one intruder run.
struct IntruderParams {
  uint32_t NumFlows = 192;
  uint32_t MaxFragsPerFlow = 8;
  uint32_t PayloadBases = 24;
  /// Percent of flows carrying the attack signature.
  uint32_t AttackPercent = 10;

  static IntruderParams forSize(SizeClass S);
};

/// Intrusion detection on TL2.
class IntruderWorkload : public TlWorkload {
public:
  explicit IntruderWorkload(const IntruderParams &Params) : Params(Params) {}

  std::string name() const override { return "intruder"; }
  unsigned numTxSites() const override { return 2; }
  void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) override;
  void threadBody(Tl2Stm &Stm, ThreadId Thread) override;
  bool verify(Tl2Stm &Stm) override;

  uint64_t attacksDetected() const {
    return DetectedAttacks.load(std::memory_order_relaxed);
  }

private:
  static uint64_t packPacket(uint32_t Flow, uint32_t Frag,
                             uint32_t NumFrags) {
    return (static_cast<uint64_t>(Flow) << 32) |
           (static_cast<uint64_t>(Frag) << 16) | NumFrags;
  }

  IntruderParams Params;
  unsigned Threads = 0;

  /// Immutable per run: flow payloads and whether each carries an attack.
  std::vector<std::string> Payloads;
  std::vector<bool> PlantedAttack;
  uint64_t PlantedCount = 0;

  std::unique_ptr<TmQueue> PacketQueue;
  std::unique_ptr<TmQueue> CompletedQueue;
  std::unique_ptr<TmList::Pool> NodePool;
  std::unique_ptr<TmHashMap> Reassembly; // flow -> fragments received
  std::atomic<uint64_t> DetectedAttacks{0};
};

} // namespace gstm

#endif // GSTM_STAMP_INTRUDER_H
