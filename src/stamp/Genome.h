//===- stamp/Genome.h - STAMP genome port ----------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gene sequencing as in STAMP: a synthetic genome is sampled into
/// overlapping segments; phase 1 deduplicates the segments through a
/// shared transactional hash set, phase 2 builds the overlap graph by
/// matching each segment's back half against other segments' front halves
/// and atomically claiming unique predecessor/successor links. Barriers
/// separate the phases as in the original.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_GENOME_H
#define GSTM_STAMP_GENOME_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"
#include "stamp/TmHashMap.h"
#include "support/Barrier.h"

#include <memory>
#include <vector>

namespace gstm {

/// Input parameters of one genome run.
struct GenomeParams {
  /// Genome length in bases (A/C/G/T, 2 bits each).
  uint32_t GenomeBases = 4096;
  /// Segment length in bases; must be even and <= 32.
  uint32_t SegmentBases = 16;
  /// Number of (overlapping, duplicated) segments sampled.
  uint32_t NumSegments = 2048;

  static GenomeParams forSize(SizeClass S);
};

/// Genome sequencing on TL2.
class GenomeWorkload : public TlWorkload {
public:
  explicit GenomeWorkload(const GenomeParams &Params) : Params(Params) {}

  std::string name() const override { return "genome"; }
  unsigned numTxSites() const override { return 3; }
  void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) override;
  void threadBody(Tl2Stm &Stm, ThreadId Thread) override;
  bool verify(Tl2Stm &Stm) override;

private:
  /// Encodes bases [Pos, Pos+Count) of the genome into 2-bit packing.
  uint64_t encode(uint32_t Pos, uint32_t Count) const;

  GenomeParams Params;
  unsigned Threads = 0;

  std::vector<uint8_t> Genome;    // base codes 0..3
  std::vector<uint64_t> Segments; // sampled segment encodings
  /// Distinct segments, for verify() (computed at setup).
  size_t ReferenceUnique = 0;

  std::unique_ptr<TmList::Pool> NodePool;
  std::unique_ptr<TmHashMap> SegTable;    // segment -> 1 (dedup set)
  std::unique_ptr<TmHashMap> PrefixTable; // front half -> segment
  std::unique_ptr<TmHashMap> SuccTable;   // segment -> successor
  std::unique_ptr<TmHashMap> PredTable;   // successor -> segment
  std::unique_ptr<Barrier> PhaseBarrier;

  /// Shared transactional counters (as STAMP's genome maintains table
  /// sizes): distinct segments and claimed overlap links.
  TVar<uint64_t> UniqueCount{0};
  TVar<uint64_t> LinkCount{0};

  /// Segments each thread won in the dedup phase.
  std::vector<std::vector<uint64_t>> OwnedSegments;
};

} // namespace gstm

#endif // GSTM_STAMP_GENOME_H
