//===- stamp/Vacation.h - STAMP vacation port ------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vacation as in STAMP: an in-memory travel-reservation database. Three
/// red-black-tree tables (cars, flights, rooms) map asset id to (price,
/// free seats); a fourth tree tracks customers, each owning a linked list
/// of reservations. Client threads issue a pseudo-random mix of
/// make-reservation, delete-customer and update-tables operations, each a
/// transaction spanning tree lookups and updates — the paper notes this
/// client randomness is what makes vacation's 16-thread model weak
/// (Sec. VII).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_VACATION_H
#define GSTM_STAMP_VACATION_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"
#include "stamp/TmList.h"
#include "stamp/TmRbTree.h"
#include "support/SplitMix64.h"

#include <memory>
#include <vector>

namespace gstm {

/// Input parameters of one vacation run.
struct VacationParams {
  /// Assets per table (STAMP's "relations").
  uint32_t NumRelations = 64;
  uint32_t NumCustomers = 64;
  uint32_t OpsPerThread = 128;
  /// Asset ids probed per reservation attempt.
  uint32_t QueriesPerReserve = 4;
  /// Percent of operations that are reservations; the rest split evenly
  /// between delete-customer and update-tables (STAMP -u analogue).
  uint32_t ReservePercent = 80;

  static VacationParams forSize(SizeClass S);
};

/// Vacation travel-reservation system on TL2.
class VacationWorkload : public TlWorkload {
public:
  explicit VacationWorkload(const VacationParams &Params) : Params(Params) {}

  std::string name() const override { return "vacation"; }
  unsigned numTxSites() const override { return 3; }
  void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) override;
  void threadBody(Tl2Stm &Stm, ThreadId Thread) override;
  bool verify(Tl2Stm &Stm) override;

private:
  static constexpr uint32_t NumTables = 3; // cars, flights, rooms

  /// Table values pack (price << 32) | free.
  static uint64_t packAsset(uint32_t Price, uint32_t Free) {
    return (static_cast<uint64_t>(Price) << 32) | Free;
  }
  static uint32_t assetPrice(uint64_t V) {
    return static_cast<uint32_t>(V >> 32);
  }
  static uint32_t assetFree(uint64_t V) {
    return static_cast<uint32_t>(V);
  }
  /// Reservation keys pack (table << 32) | asset.
  static uint64_t packReservation(uint32_t Table, uint32_t Asset) {
    return (static_cast<uint64_t>(Table) << 32) | Asset;
  }

  void doReserve(Tl2Txn &Txn, SplitMix64 &Rng);
  void doDeleteCustomer(Tl2Txn &Txn, SplitMix64 &Rng);
  void doUpdateTables(Tl2Txn &Txn, SplitMix64 &Rng);

  VacationParams Params;
  unsigned Threads = 0;
  uint64_t RunSeed = 0;

  std::unique_ptr<TmRbTree::Pool> TreePool;
  std::unique_ptr<TmList::Pool> ListPool;
  std::vector<std::unique_ptr<TmRbTree>> Tables; // NumTables asset tables
  std::unique_ptr<TmRbTree> Customers;           // custId -> 1 (presence)
  /// Reservation list per customer slot.
  std::unique_ptr<TmList[]> Reservations;
  /// Initial free seats per (table, asset); baseline for verify().
  std::vector<uint32_t> InitialFree;
};

} // namespace gstm

#endif // GSTM_STAMP_VACATION_H
