//===- stamp/Kmeans.h - STAMP kmeans port ---------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-means clustering as in STAMP: threads partition the points; for each
/// point they pick the nearest center (reading the previous round's
/// centers without TM — they are frozen between barriers) and then update
/// the shared per-cluster accumulators inside a transaction. With few
/// clusters and many threads the accumulator transactions conflict
/// heavily, which is why kmeans shows the large abort tails of paper
/// Figures 5c/7c.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_KMEANS_H
#define GSTM_STAMP_KMEANS_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"
#include "stm/TVar.h"
#include "support/Barrier.h"

#include <memory>
#include <vector>

namespace gstm {

/// Input parameters of one kmeans run.
struct KmeansParams {
  uint32_t NumPoints = 512;
  uint32_t Dim = 4;
  uint32_t NumClusters = 8;
  uint32_t Rounds = 3;

  static KmeansParams forSize(SizeClass S);
};

/// STAMP kmeans on TL2.
class KmeansWorkload : public TlWorkload {
public:
  explicit KmeansWorkload(const KmeansParams &Params) : Params(Params) {}

  std::string name() const override { return "kmeans"; }
  unsigned numTxSites() const override { return 1; }
  void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) override;
  void threadBody(Tl2Stm &Stm, ThreadId Thread) override;
  bool verify(Tl2Stm &Stm) override;

  /// Final centers (after the last round); for tests and examples.
  std::vector<double> centers() const { return Centers; }

private:
  uint32_t nearestCenter(uint32_t Point) const;

  KmeansParams Params;
  unsigned Threads = 0;

  std::vector<double> Points;  // NumPoints x Dim, immutable per run
  std::vector<double> Centers; // NumClusters x Dim, frozen between rounds
  /// Shared accumulators, updated transactionally: per-cluster dimension
  /// sums (NumClusters x Dim) and membership counts (NumClusters).
  std::unique_ptr<TVar<double>[]> Sums;
  std::unique_ptr<TVar<uint64_t>[]> Counts;
  std::unique_ptr<Barrier> RoundBarrier;
  uint64_t LastRoundMembers = 0; // filled by thread 0 in the last round
};

} // namespace gstm

#endif // GSTM_STAMP_KMEANS_H
