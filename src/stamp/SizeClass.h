//===- stamp/SizeClass.h - Workload input size classes -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// STAMP inputs come in small/medium/large classes; the paper trains its
/// models on medium inputs and evaluates on other sizes. Each workload
/// maps these classes to its own parameters (scaled to finish in
/// milliseconds-to-seconds on one core; every bench exposes --size).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_SIZECLASS_H
#define GSTM_STAMP_SIZECLASS_H

#include <string>

namespace gstm {

enum class SizeClass { Small, Medium, Large };

inline const char *sizeClassName(SizeClass S) {
  switch (S) {
  case SizeClass::Small:
    return "small";
  case SizeClass::Medium:
    return "medium";
  case SizeClass::Large:
    return "large";
  }
  return "?";
}

/// Parses "small" / "medium" / "large" (defaults to Small on junk).
inline SizeClass parseSizeClass(const std::string &Name) {
  if (Name == "medium")
    return SizeClass::Medium;
  if (Name == "large")
    return SizeClass::Large;
  return SizeClass::Small;
}

} // namespace gstm

#endif // GSTM_STAMP_SIZECLASS_H
