//===- stamp/Registry.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/Registry.h"

#include "stamp/Genome.h"
#include "stamp/Intruder.h"
#include "stamp/Kmeans.h"
#include "stamp/Labyrinth.h"
#include "stamp/Ssca2.h"
#include "stamp/Vacation.h"
#include "stamp/Yada.h"

using namespace gstm;

const std::vector<std::string> &gstm::stampWorkloadNames() {
  static const std::vector<std::string> Names = {
      "genome", "intruder", "kmeans", "labyrinth",
      "ssca2",  "vacation", "yada"};
  return Names;
}

std::unique_ptr<TlWorkload>
gstm::createStampWorkload(const std::string &Name, SizeClass Size) {
  if (Name == "genome")
    return std::make_unique<GenomeWorkload>(GenomeParams::forSize(Size));
  if (Name == "intruder")
    return std::make_unique<IntruderWorkload>(
        IntruderParams::forSize(Size));
  if (Name == "kmeans")
    return std::make_unique<KmeansWorkload>(KmeansParams::forSize(Size));
  if (Name == "labyrinth")
    return std::make_unique<LabyrinthWorkload>(
        LabyrinthParams::forSize(Size));
  if (Name == "ssca2")
    return std::make_unique<Ssca2Workload>(Ssca2Params::forSize(Size));
  if (Name == "vacation")
    return std::make_unique<VacationWorkload>(
        VacationParams::forSize(Size));
  if (Name == "yada")
    return std::make_unique<YadaWorkload>(YadaParams::forSize(Size));
  return nullptr;
}
