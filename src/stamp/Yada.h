//===- stamp/Yada.h - STAMP yada port (mesh refinement) ------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactional mesh refinement in the style of STAMP's yada: workers
/// pull "bad" (skinny) triangles from a shared work queue and repair each
/// inside one transaction that reads and rewrites a local patch of the
/// mesh (the triangle, the neighbor across the refined edge, and the
/// surrounding adjacency links), pushing newly created bad triangles back
/// onto the queue.
///
/// Substitution (documented in DESIGN.md): the original refines via
/// Ruppert's algorithm (circumcenter insertion with Bowyer-Watson cavity
/// retriangulation); we use Rivara-style longest-edge bisection. Both are
/// work-queue driven, both mutate a multi-triangle patch per transaction,
/// and both create new work dynamically — the properties the paper's
/// model and guidance interact with — while bisection admits a compact,
/// exactly-verifiable implementation (triangle area is conserved).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_YADA_H
#define GSTM_STAMP_YADA_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"
#include "stamp/TmPool.h"
#include "stamp/TmQueue.h"
#include "stm/TVar.h"

#include <atomic>
#include <memory>
#include <vector>

namespace gstm {

/// A mesh triangle. Vertices are point indices in CCW order; Neighbor[i]
/// is the triangle sharing edge (Vertex[i], Vertex[(i+1)%3]), 0 when that
/// edge is on the boundary.
struct TmTriangle {
  TVar<uint32_t> Vertex[3];
  TVar<uint32_t> Neighbor[3];
  TVar<uint32_t> Alive{0};
};

/// Input parameters of one yada run.
struct YadaParams {
  /// Initial mesh: a jittered (Grid+1)^2 point lattice over the unit
  /// square, two triangles per cell.
  uint32_t Grid = 8;
  /// A triangle is "bad" when its smallest angle is below this (degrees).
  double MinAngleDeg = 28.0;
  /// Edges at or below this length are never bisected (termination).
  double MinEdgeLen = 0.02;

  static YadaParams forSize(SizeClass S);
};

/// Mesh refinement on TL2.
class YadaWorkload : public TlWorkload {
public:
  explicit YadaWorkload(const YadaParams &Params) : Params(Params) {}

  std::string name() const override { return "yada"; }
  unsigned numTxSites() const override { return 2; }
  void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) override;
  void threadBody(Tl2Stm &Stm, ThreadId Thread) override;
  bool verify(Tl2Stm &Stm) override;

  /// Alive triangles after the run (direct scan; for tests).
  size_t aliveCountDirect() const;

private:
  using Pool = TmPool<TmTriangle>;

  /// Allocates a point slot and writes its coordinates (the index is
  /// private until a commit publishes it through a triangle).
  uint32_t newPoint(double X, double Y);

  /// True when the triangle (by vertex indices) violates the angle bound
  /// and its longest edge is still refinable; \p LongestEdge receives the
  /// local edge index of the longest edge.
  bool needsRefinement(uint32_t A, uint32_t B, uint32_t C,
                       uint32_t &LongestEdge) const;

  /// One refinement step on triangle \p Tri inside transaction \p Tx.
  /// Returns false when the triangle was already dead or acceptable.
  bool bisect(Tl2Txn &Tx, uint32_t Tri);

  /// Replaces \p Old with \p New in \p Tri's neighbor slots.
  void replaceNeighbor(Tl2Txn &Tx, uint32_t Tri, uint32_t Old,
                       uint32_t New);

  double totalAliveAreaDirect() const;

  YadaParams Params;
  unsigned Threads = 0;

  uint32_t PointCapacity = 0;
  std::unique_ptr<double[]> Xs;
  std::unique_ptr<double[]> Ys;
  std::atomic<uint32_t> NumPoints{0};

  std::unique_ptr<Pool> Triangles;
  std::unique_ptr<TmQueue> WorkQueue;
  double InitialArea = 0.0;
};

} // namespace gstm

#endif // GSTM_STAMP_YADA_H
