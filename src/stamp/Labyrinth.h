//===- stamp/Labyrinth.h - STAMP labyrinth port ----------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maze routing as in STAMP's labyrinth (Lee's algorithm): workers pull
/// (source, destination) requests from a shared queue, plan a shortest
/// path over a *non-transactional snapshot* of the grid (the original
/// copies the grid privately for exactly this reason), then atomically
/// validate and claim the path's cells in one long transaction. A racing
/// commit on any claimed cell aborts the claim and forces a re-plan on
/// fresh state — long transactions with medium conflict rates, matching
/// the paper's labyrinth behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_LABYRINTH_H
#define GSTM_STAMP_LABYRINTH_H

#include "core/Workload.h"
#include "stamp/SizeClass.h"
#include "stamp/TmQueue.h"
#include "stm/TVar.h"

#include <memory>
#include <vector>

namespace gstm {

/// Input parameters of one labyrinth run.
struct LabyrinthParams {
  uint32_t Width = 48;
  uint32_t Height = 48;
  uint32_t NumPaths = 48;
  /// Re-plan attempts before a request is abandoned as unroutable.
  uint32_t MaxPlanAttempts = 16;

  static LabyrinthParams forSize(SizeClass S);
};

/// Maze routing on TL2.
class LabyrinthWorkload : public TlWorkload {
public:
  explicit LabyrinthWorkload(const LabyrinthParams &Params)
      : Params(Params) {}

  std::string name() const override { return "labyrinth"; }
  unsigned numTxSites() const override { return 2; }
  void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) override;
  void threadBody(Tl2Stm &Stm, ThreadId Thread) override;
  bool verify(Tl2Stm &Stm) override;

  /// Paths successfully routed (for tests).
  size_t routedCount() const;

private:
  uint32_t cellIndex(uint32_t X, uint32_t Y) const {
    return Y * Params.Width + X;
  }

  /// Breadth-first shortest path over a snapshot of the grid; returns the
  /// cell sequence src..dst or empty when unreachable.
  std::vector<uint32_t> planPath(uint32_t Src, uint32_t Dst) const;

  LabyrinthParams Params;
  unsigned Threads = 0;

  /// Cell owner: 0 = free, else path id (request index + 1).
  std::unique_ptr<TVar<uint32_t>[]> Grid;
  std::unique_ptr<TmQueue> Requests; // packed (src << 32) | dst
  /// Routed path cells, indexed by request; written only by the winning
  /// router after its claim committed.
  std::vector<std::vector<uint32_t>> Placed;
};

} // namespace gstm

#endif // GSTM_STAMP_LABYRINTH_H
