//===- stamp/TmList.cpp ----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stamp/TmList.h"

using namespace gstm;

void TmList::locate(Tl2Txn &Tx, Pool &Nodes, uint64_t Key, uint32_t &Prev,
                    uint32_t &Cur) {
  Prev = Pool::Null;
  Cur = Tx.load(Head);
  while (Cur != Pool::Null) {
    TmListNode &N = Nodes[Cur];
    if (Tx.load(N.Key) >= Key)
      return;
    Prev = Cur;
    Cur = Tx.load(N.Next);
  }
}

bool TmList::insert(Tl2Txn &Tx, Pool &Nodes, uint64_t Key, uint64_t Value) {
  uint32_t Prev, Cur;
  locate(Tx, Nodes, Key, Prev, Cur);
  if (Cur != Pool::Null && Tx.load(Nodes[Cur].Key) == Key)
    return false;

  uint32_t Fresh = Nodes.allocate();
  TmListNode &N = Nodes[Fresh];
  Tx.store(N.Key, Key);
  Tx.store(N.Value, Value);
  Tx.store(N.Next, Cur);
  if (Prev == Pool::Null)
    Tx.store(Head, Fresh);
  else
    Tx.store(Nodes[Prev].Next, Fresh);
  return true;
}

bool TmList::insertOrAssign(Tl2Txn &Tx, Pool &Nodes, uint64_t Key,
                            uint64_t Value) {
  uint32_t Prev, Cur;
  locate(Tx, Nodes, Key, Prev, Cur);
  if (Cur != Pool::Null && Tx.load(Nodes[Cur].Key) == Key) {
    Tx.store(Nodes[Cur].Value, Value);
    return false;
  }

  uint32_t Fresh = Nodes.allocate();
  TmListNode &N = Nodes[Fresh];
  Tx.store(N.Key, Key);
  Tx.store(N.Value, Value);
  Tx.store(N.Next, Cur);
  if (Prev == Pool::Null)
    Tx.store(Head, Fresh);
  else
    Tx.store(Nodes[Prev].Next, Fresh);
  return true;
}

std::optional<uint64_t> TmList::find(Tl2Txn &Tx, Pool &Nodes, uint64_t Key) {
  uint32_t Prev, Cur;
  locate(Tx, Nodes, Key, Prev, Cur);
  if (Cur == Pool::Null || Tx.load(Nodes[Cur].Key) != Key)
    return std::nullopt;
  return Tx.load(Nodes[Cur].Value);
}

std::optional<uint64_t> TmList::remove(Tl2Txn &Tx, Pool &Nodes,
                                       uint64_t Key) {
  uint32_t Prev, Cur;
  locate(Tx, Nodes, Key, Prev, Cur);
  if (Cur == Pool::Null || Tx.load(Nodes[Cur].Key) != Key)
    return std::nullopt;
  uint64_t Value = Tx.load(Nodes[Cur].Value);
  uint32_t After = Tx.load(Nodes[Cur].Next);
  if (Prev == Pool::Null)
    Tx.store(Head, After);
  else
    Tx.store(Nodes[Prev].Next, After);
  return Value;
}

uint64_t TmList::size(Tl2Txn &Tx, Pool &Nodes) {
  uint64_t Count = 0;
  uint32_t Cur = Tx.load(Head);
  while (Cur != Pool::Null) {
    ++Count;
    Cur = Tx.load(Nodes[Cur].Next);
  }
  return Count;
}
