//===- stamp/TmRbTree.h - Transactional red-black tree -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transactional red-black tree (CLRS structure with an explicit NIL
/// sentinel node), the backing store of vacation's reservation tables as
/// in STAMP's rbtree.c. Rebalancing writes several nodes near the root,
/// so concurrent updates to nearby keys conflict — the contention shape
/// that makes vacation interesting for the paper's model.
///
/// Transactions provide atomicity, so the code is the sequential
/// algorithm with every field access routed through the STM.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STAMP_TMRBTREE_H
#define GSTM_STAMP_TMRBTREE_H

#include "stamp/TmPool.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"

#include <cstdint>
#include <optional>

namespace gstm {

/// Node of a TmRbTree. Links are pool indices; Color is 0=black, 1=red.
struct TmRbNode {
  TVar<uint64_t> Key;
  TVar<uint64_t> Value;
  TVar<uint32_t> Left;
  TVar<uint32_t> Right;
  TVar<uint32_t> Parent;
  TVar<uint32_t> Color;
};

/// Transactional ordered map with unique 64-bit keys.
class TmRbTree {
public:
  using Pool = TmPool<TmRbNode>;

  /// Creates an empty tree; allocates its NIL sentinel from \p Nodes.
  /// Single-threaded (uses direct stores).
  explicit TmRbTree(Pool &Nodes);

  /// Inserts (\p Key, \p Value); returns false when the key exists.
  bool insert(Tl2Txn &Tx, uint64_t Key, uint64_t Value);

  /// Returns the value mapped to \p Key, if any.
  std::optional<uint64_t> find(Tl2Txn &Tx, uint64_t Key);

  /// Overwrites the value of an existing key; false when absent.
  bool update(Tl2Txn &Tx, uint64_t Key, uint64_t Value);

  /// Removes \p Key; returns its value if present. Nodes are not
  /// recycled (TmPool memory discipline).
  std::optional<uint64_t> remove(Tl2Txn &Tx, uint64_t Key);

  /// Number of keys (O(1): maintained counter).
  uint64_t size(Tl2Txn &Tx) { return Tx.load(Count); }
  uint64_t sizeDirect() const { return Count.loadDirect(); }

  /// Checks every red-black invariant plus key ordering with direct
  /// (non-transactional) reads. Quiescent use only. Exposed so tests and
  /// workload verify() can assert structural integrity after a run.
  bool validateDirect() const;

  /// In-order traversal with direct reads (quiescent use only).
  template <typename Fn> void forEachDirect(Fn &&Callback) const {
    forEachDirectFrom(Root.loadDirect(), Callback);
  }

private:
  static constexpr uint32_t Black = 0;
  static constexpr uint32_t Red = 1;

  // Transactional field helpers (declared for readability at call sites).
  uint32_t left(Tl2Txn &Tx, uint32_t N) { return Tx.load(P[N].Left); }
  uint32_t right(Tl2Txn &Tx, uint32_t N) { return Tx.load(P[N].Right); }
  uint32_t parent(Tl2Txn &Tx, uint32_t N) { return Tx.load(P[N].Parent); }
  uint32_t color(Tl2Txn &Tx, uint32_t N) { return Tx.load(P[N].Color); }
  uint64_t key(Tl2Txn &Tx, uint32_t N) { return Tx.load(P[N].Key); }

  void rotateLeft(Tl2Txn &Tx, uint32_t X);
  void rotateRight(Tl2Txn &Tx, uint32_t X);
  void insertFixup(Tl2Txn &Tx, uint32_t Z);
  void removeFixup(Tl2Txn &Tx, uint32_t X);
  /// Replaces subtree rooted at \p U with subtree rooted at \p V.
  void transplant(Tl2Txn &Tx, uint32_t U, uint32_t V);
  uint32_t minimum(Tl2Txn &Tx, uint32_t N);
  /// Returns the node holding \p Key or Nil.
  uint32_t findNode(Tl2Txn &Tx, uint64_t Key);

  /// Direct-read recursive validator; returns black height or -1.
  int validateFrom(uint32_t N, uint64_t Lo, uint64_t Hi, bool HasLo,
                   bool HasHi) const;

  template <typename Fn>
  void forEachDirectFrom(uint32_t N, Fn &Callback) const {
    if (N == Nil)
      return;
    forEachDirectFrom(P[N].Left.loadDirect(), Callback);
    Callback(P[N].Key.loadDirect(), P[N].Value.loadDirect());
    forEachDirectFrom(P[N].Right.loadDirect(), Callback);
  }

  Pool &P;
  /// Index of the NIL sentinel (black; its Parent is scratch space for
  /// the CLRS delete fixup).
  uint32_t Nil;
  TVar<uint32_t> Root;
  TVar<uint64_t> Count{0};
};

} // namespace gstm

#endif // GSTM_STAMP_TMRBTREE_H
