//===- synquake/Experiment.h - SynQuake guided-execution pipeline --------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Sec. VIII experiment: train the thread-state-automaton
/// model on the 4worst_case and 4moving quests, validate it with the
/// analyzer (Table V), then compare default and guided execution on a
/// *different* quest (4quadrants or 4center_spread6), reporting frame-
/// rate variance improvement, abort-ratio reduction and slowdown
/// (Figures 11 and 12).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SYNQUAKE_EXPERIMENT_H
#define GSTM_SYNQUAKE_EXPERIMENT_H

#include "core/Analyzer.h"
#include "core/GuideController.h"
#include "core/Tsa.h"
#include "support/Stats.h"
#include "synquake/Game.h"

namespace gstm {

/// Configuration of one SynQuake experiment.
struct SynQuakeExperimentConfig {
  unsigned Threads = 8;
  /// Test-quest parameters; Frames is the measured frame count.
  SynQuakeParams Game;
  /// Frames per training run (paper: 1000 training vs 10000 testing;
  /// scaled down by default).
  uint32_t TrainFrames = 24;
  /// Training runs per training quest (4worst_case and 4moving).
  unsigned ProfileRunsPerQuest = 2;
  unsigned MeasureRuns = 5;
  double Tfactor = 4.0;
  /// Frames are barrier-synchronized and short, so a held thread delays
  /// the whole frame: the gate yields (on our yield-saturated substrate a
  /// yield returns in microseconds) instead of sleeping.
  GuideConfig Guide = {.MaxGateRetries = 8, .GateSleepMicros = 0};
  AnalyzerConfig Analyzer;
  uint64_t ProfileSeedBase = 100;
  uint64_t MeasureSeedBase = 500;
};

/// Aggregates of one side (default or guided).
struct SynQuakeSide {
  /// Per-run standard deviation of frame processing time — the paper's
  /// frame-rate variance.
  RunningStat FrameStddev;
  /// Per-run mean frame processing time.
  RunningStat FrameMean;
  RunningStat TotalSeconds;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  GuideStats Guide;
  bool AllVerified = true;

  double abortRatio() const {
    uint64_t Total = Commits + Aborts;
    return Total ? static_cast<double>(Aborts) / Total : 0.0;
  }
};

/// Outcome of one SynQuake experiment.
struct SynQuakeExperimentResult {
  Tsa Model;
  AnalyzerReport Report;
  SynQuakeSide Default;
  SynQuakeSide Guided;

  /// % improvement in frame-time standard deviation (Fig. 11a / 12a).
  double frameVarianceImprovementPercent() const {
    return percentImprovement(Default.FrameStddev.mean(),
                              Guided.FrameStddev.mean());
  }
  /// % reduction in abort ratio (Fig. 11b / 12b).
  double abortRatioReductionPercent() const {
    return percentImprovement(Default.abortRatio(), Guided.abortRatio());
  }
  /// Guided / default total time (Fig. 11c / 12c; < 1 is a speedup).
  double slowdownFactor() const {
    double Base = Default.TotalSeconds.mean();
    return Base > 0 ? Guided.TotalSeconds.mean() / Base : 1.0;
  }
};

/// Runs the full train/analyze/measure pipeline for the test quest in
/// \p Config.Game.Quest.
SynQuakeExperimentResult
runSynQuakeExperiment(const SynQuakeExperimentConfig &Config);

} // namespace gstm

#endif // GSTM_SYNQUAKE_EXPERIMENT_H
