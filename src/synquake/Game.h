//===- synquake/Game.h - SynQuake game-server simulation -----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reproduction of SynQuake (Lupei et al., PPoPP'10), the 2D Quake 3
/// derivative the paper optimizes on LibTM: a 1024x1024 map partitioned
/// into grid cells, with players attracted to *quests* (high-interest map
/// areas that concentrate the player movement and therefore the
/// transactional contention). Server threads process disjoint player
/// ranges each frame; every player action — movement across cells,
/// resource pickup, combat against the last player seen in the cell — is
/// a transaction over the player and cell objects. Frames are separated
/// by barriers and individually timed; the paper's metric is the variance
/// of this frame processing time.
///
/// The four quest configurations match the paper's Sec. VIII setup:
/// 4worst_case and 4moving for training, 4quadrants and 4center_spread6
/// for testing.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SYNQUAKE_GAME_H
#define GSTM_SYNQUAKE_GAME_H

#include "libtm/LibTm.h"
#include "support/Barrier.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gstm {

/// Player-attraction pattern of one run.
enum class QuestPattern : uint8_t {
  /// All players converge on a single point (training; maximal bias).
  WorstCase4,
  /// A single attraction point orbits the map center (training).
  Moving4,
  /// Four fixed attraction points, one per map quadrant (testing).
  Quadrants4,
  /// Central quest with a per-player spread of up to six cells (testing).
  CenterSpread6,
};

const char *questPatternName(QuestPattern Q);
QuestPattern parseQuestPattern(const std::string &Name);

/// Parameters of one SynQuake simulation.
struct SynQuakeParams {
  uint32_t NumPlayers = 256;
  /// Map is MapSize x MapSize world units.
  uint32_t MapSize = 1024;
  /// Cells are (1 << CellShift) units on a side.
  uint32_t CellShift = 6;
  uint32_t Frames = 48;
  QuestPattern Quest = QuestPattern::Quadrants4;
  /// World units a player covers per frame.
  double MoveSpeed = 24.0;
  /// Distance from the quest target within which players interact.
  double InteractRadius = 96.0;
  /// Iterations of the per-player non-TM "physics" loop per frame —
  /// stands in for the game computation (collision, animation) that real
  /// Quake frames spend outside transactions.
  uint32_t PhysicsIterations = 2000;
};

/// Mutable player state, one TObj each.
struct PlayerState {
  float X = 0;
  float Y = 0;
  int32_t Health = 100;
  uint32_t Score = 0;
};

/// Mutable cell state, one TObj each.
struct CellState {
  int64_t Resource = 0;
  int32_t Occupancy = 0;
  uint32_t LastPlayer = 0; // 1-based; 0 = none
};

/// One SynQuake simulation instance (per run).
class SynQuakeGame {
public:
  explicit SynQuakeGame(const SynQuakeParams &Params) : Params(Params) {}

  /// Two transaction sites: movement and interaction.
  static constexpr unsigned NumTxSites = 2;

  /// Builds the world (single-threaded).
  void setup(LibTm &Tm, unsigned NumThreads, uint64_t Seed);

  /// Runs all frames with \p NumThreads server threads; returns the
  /// processing time of each frame in seconds.
  std::vector<double> run(LibTm &Tm, unsigned NumThreads);

  /// Post-run invariants: occupancy conservation, score/resource
  /// conservation, players in bounds.
  bool verify() const;

  uint32_t cellsPerSide() const { return Params.MapSize >> Params.CellShift; }
  uint64_t totalScoreDirect() const;

private:
  uint32_t cellIndexFor(double X, double Y) const;
  /// Attraction point for \p Player at \p Frame under the active quest.
  void questTarget(uint32_t Player, uint32_t Frame, double &TX,
                   double &TY) const;
  void playerFrame(LibTxn &Txn, uint32_t Player, uint32_t Frame);

  SynQuakeParams Params;
  unsigned Threads = 0;
  uint64_t RunSeed = 0;

  std::unique_ptr<TObj<PlayerState>[]> Players;
  std::unique_ptr<TObj<CellState>[]> Cells;
  int64_t InitialResource = 0;
  std::unique_ptr<Barrier> FrameBarrier;
  std::vector<double> FrameSeconds;
  /// Defeats optimization of the physics loop; never read meaningfully.
  std::atomic<uint64_t> PhysicsSink{0};
};

} // namespace gstm

#endif // GSTM_SYNQUAKE_GAME_H
