//===- synquake/Experiment.cpp ---------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "synquake/Experiment.h"

#include "core/GuidedPolicy.h"
#include "core/Trace.h"
#include "support/Timer.h"

#include <memory>

using namespace gstm;

namespace {

struct OneRun {
  std::vector<double> FrameSeconds;
  std::vector<StateTuple> Tuples;
  double TotalSeconds = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  GuideStats Guide;
  bool Verified = true;
};

OneRun runGameOnce(const SynQuakeParams &Params, unsigned Threads,
                   uint64_t Seed, const GuidedPolicy *Policy,
                   const GuideConfig &GuideCfg) {
  LibTmConfig TmCfg;
  TmCfg.PreemptShift = 5; // scheduler perturbation, as in the TL2 runs
  LibTm Tm(TmCfg);
  TraceCollector Collector(Threads);
  std::unique_ptr<GuideController> Controller;
  if (Policy) {
    Controller =
        std::make_unique<GuideController>(*Policy, GuideCfg, &Collector);
    Tm.setObserver(Controller.get());
    Tm.setGate(Controller.get());
  } else {
    Tm.setObserver(&Collector);
  }

  SynQuakeGame Game(Params);
  Game.setup(Tm, Threads, Seed);

  OneRun R;
  Timer Wall;
  R.FrameSeconds = Game.run(Tm, Threads);
  R.TotalSeconds = Wall.elapsedSeconds();
  R.Commits = Tm.stats().commits();
  R.Aborts = Tm.stats().aborts();
  R.Tuples = groupTuples(Collector.takeTrace(), Grouping::Sequence);
  if (Controller)
    R.Guide = Controller->stats();
  R.Verified = Game.verify();
  return R;
}

void addRunToSide(SynQuakeSide &Side, const OneRun &R) {
  RunningStat Frames;
  for (double F : R.FrameSeconds)
    Frames.add(F);
  // Trim the extreme 5% of frames: on a shared host, rare multi-ms
  // scheduler stalls hit individual frames and would swamp the
  // STM-induced spread the experiment measures.
  Side.FrameStddev.add(Frames.trimmedStddev(0.05));
  Side.FrameMean.add(Frames.mean());
  Side.TotalSeconds.add(R.TotalSeconds);
  Side.Commits += R.Commits;
  Side.Aborts += R.Aborts;
  Side.Guide.GateChecks += R.Guide.GateChecks;
  Side.Guide.Holds += R.Guide.Holds;
  Side.Guide.ForcedReleases += R.Guide.ForcedReleases;
  Side.Guide.UnknownStates += R.Guide.UnknownStates;
  Side.Guide.KnownStates += R.Guide.KnownStates;
  Side.AllVerified = Side.AllVerified && R.Verified;
}

} // namespace

SynQuakeExperimentResult
gstm::runSynQuakeExperiment(const SynQuakeExperimentConfig &Config) {
  SynQuakeExperimentResult Result;

  // Train on the two paper training quests.
  const QuestPattern TrainQuests[2] = {QuestPattern::WorstCase4,
                                       QuestPattern::Moving4};
  uint64_t Seed = Config.ProfileSeedBase;
  for (QuestPattern Quest : TrainQuests)
    for (unsigned Run = 0; Run < Config.ProfileRunsPerQuest; ++Run) {
      SynQuakeParams Train = Config.Game;
      Train.Quest = Quest;
      Train.Frames = Config.TrainFrames;
      OneRun R = runGameOnce(Train, Config.Threads, ++Seed,
                             /*Policy=*/nullptr, Config.Guide);
      Result.Model.addRun(R.Tuples);
    }

  AnalyzerConfig AC = Config.Analyzer;
  AC.Tfactor = Config.Tfactor;
  Result.Report = analyzeModel(Result.Model, AC);

  // Measurement: the same input (fixed seed) replayed with interleaved
  // default/guided runs, so run-to-run spread is speculation
  // non-determinism rather than input or host drift (see
  // core/Experiment.cpp for the rationale).
  GuidedPolicy Policy(Result.Model, Config.Tfactor);
  runGameOnce(Config.Game, Config.Threads, Config.MeasureSeedBase,
              /*Policy=*/nullptr, Config.Guide); // warm-up
  for (unsigned Run = 0; Run < Config.MeasureRuns; ++Run) {
    addRunToSide(Result.Default,
                 runGameOnce(Config.Game, Config.Threads,
                             Config.MeasureSeedBase, nullptr,
                             Config.Guide));
    addRunToSide(Result.Guided,
                 runGameOnce(Config.Game, Config.Threads,
                             Config.MeasureSeedBase, &Policy,
                             Config.Guide));
  }
  return Result;
}
