//===- synquake/Game.cpp ---------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "synquake/Game.h"

#include "support/SplitMix64.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>

using namespace gstm;

const char *gstm::questPatternName(QuestPattern Q) {
  switch (Q) {
  case QuestPattern::WorstCase4:
    return "4worst_case";
  case QuestPattern::Moving4:
    return "4moving";
  case QuestPattern::Quadrants4:
    return "4quadrants";
  case QuestPattern::CenterSpread6:
    return "4center_spread6";
  }
  return "?";
}

QuestPattern gstm::parseQuestPattern(const std::string &Name) {
  if (Name == "4worst_case")
    return QuestPattern::WorstCase4;
  if (Name == "4moving")
    return QuestPattern::Moving4;
  if (Name == "4center_spread6")
    return QuestPattern::CenterSpread6;
  return QuestPattern::Quadrants4;
}

uint32_t SynQuakeGame::cellIndexFor(double X, double Y) const {
  uint32_t Side = cellsPerSide();
  auto Clamp = [&](double V) {
    if (V < 0)
      return uint32_t{0};
    uint32_t C = static_cast<uint32_t>(V) >> Params.CellShift;
    return std::min(C, Side - 1);
  };
  return Clamp(Y) * Side + Clamp(X);
}

void SynQuakeGame::setup(LibTm &Tm, unsigned NumThreads, uint64_t Seed) {
  (void)Tm;
  Threads = NumThreads;
  RunSeed = Seed;
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 31);

  uint32_t Side = cellsPerSide();
  uint32_t NumCells = Side * Side;
  Cells = std::make_unique<TObj<CellState>[]>(NumCells);
  InitialResource = 0;
  for (uint32_t C = 0; C < NumCells; ++C) {
    CellState CS;
    CS.Resource = 1 << 16; // effectively inexhaustible within a run
    Cells[C].storeDirect(CS);
    InitialResource += CS.Resource;
  }

  Players = std::make_unique<TObj<PlayerState>[]>(Params.NumPlayers);
  for (uint32_t P = 0; P < Params.NumPlayers; ++P) {
    PlayerState PS;
    PS.X = static_cast<float>(Rng.nextDouble() * Params.MapSize);
    PS.Y = static_cast<float>(Rng.nextDouble() * Params.MapSize);
    PS.Health = 100;
    PS.Score = 0;
    Players[P].storeDirect(PS);
    uint32_t Cell = cellIndexFor(PS.X, PS.Y);
    CellState CS = Cells[Cell].loadDirect();
    ++CS.Occupancy;
    Cells[Cell].storeDirect(CS);
  }

  FrameBarrier = std::make_unique<Barrier>(NumThreads);
  FrameSeconds.assign(Params.Frames, 0.0);
}

void SynQuakeGame::questTarget(uint32_t Player, uint32_t Frame, double &TX,
                               double &TY) const {
  double Center = Params.MapSize / 2.0;
  switch (Params.Quest) {
  case QuestPattern::WorstCase4:
    TX = Center;
    TY = Center;
    return;
  case QuestPattern::Moving4: {
    double Angle = 0.15 * Frame;
    TX = Center + 0.3 * Params.MapSize * std::cos(Angle);
    TY = Center + 0.3 * Params.MapSize * std::sin(Angle);
    return;
  }
  case QuestPattern::Quadrants4: {
    double Quarter = Params.MapSize / 4.0;
    TX = (Player & 1) ? 3 * Quarter : Quarter;
    TY = (Player & 2) ? 3 * Quarter : Quarter;
    return;
  }
  case QuestPattern::CenterSpread6: {
    // Deterministic per-player offset of up to six cells around the
    // central quest.
    SplitMix64 Hash(Player * 0xd1b54a32d192ed03ULL + 97);
    double Radius =
        Hash.nextDouble() * 6.0 * (uint64_t{1} << Params.CellShift);
    double Angle = Hash.nextDouble() * 6.28318530717958;
    TX = Center + Radius * std::cos(Angle);
    TY = Center + Radius * std::sin(Angle);
    return;
  }
  }
}

void SynQuakeGame::playerFrame(LibTxn &Txn, uint32_t Player,
                               uint32_t Frame) {
  double TX, TY;
  questTarget(Player, Frame, TX, TY);

  // Movement transaction: step toward the quest with crowd avoidance
  // (reading the neighboring cells widens the read set the way
  // SynQuake's area-of-interest queries do), migrating between cells.
  Txn.run(/*Tx=*/0, [&](LibTxn &Tx) {
    PlayerState PS = Tx.read(Players[Player]);
    double DX = TX - PS.X;
    double DY = TY - PS.Y;
    double Dist = std::sqrt(DX * DX + DY * DY);
    uint32_t OldCell = cellIndexFor(PS.X, PS.Y);
    if (Dist > 1e-9) {
      double Step = std::min(Params.MoveSpeed, Dist);
      double NX = PS.X + DX / Dist * Step;
      double NY = PS.Y + DY / Dist * Step;
      // Area-of-interest scan: peek at the destination's four neighbor
      // cells and lean away from the most crowded one.
      uint32_t Side = cellsPerSide();
      uint32_t Dest = cellIndexFor(NX, NY);
      uint32_t DestX = Dest % Side, DestY = Dest / Side;
      int32_t BestOcc = -1;
      double AwayX = 0, AwayY = 0;
      const int32_t NDX[4] = {1, -1, 0, 0}, NDY[4] = {0, 0, 1, -1};
      for (int Dir = 0; Dir < 4; ++Dir) {
        int32_t CX = static_cast<int32_t>(DestX) + NDX[Dir];
        int32_t CY = static_cast<int32_t>(DestY) + NDY[Dir];
        if (CX < 0 || CY < 0 || CX >= static_cast<int32_t>(Side) ||
            CY >= static_cast<int32_t>(Side))
          continue;
        CellState Nb = Tx.read(Cells[CY * Side + CX]);
        if (Nb.Occupancy > BestOcc) {
          BestOcc = Nb.Occupancy;
          AwayX = -NDX[Dir];
          AwayY = -NDY[Dir];
        }
      }
      if (BestOcc > 0) {
        NX += AwayX * Params.MoveSpeed * 0.1;
        NY += AwayY * Params.MoveSpeed * 0.1;
      }
      PS.X = static_cast<float>(NX);
      PS.Y = static_cast<float>(NY);
    }
    uint32_t NewCell = cellIndexFor(PS.X, PS.Y);
    if (NewCell != OldCell) {
      CellState OldCS = Tx.read(Cells[OldCell]);
      --OldCS.Occupancy;
      Tx.write(Cells[OldCell], OldCS);
    }
    CellState NewCS = Tx.read(Cells[NewCell]);
    if (NewCell != OldCell)
      ++NewCS.Occupancy;
    NewCS.LastPlayer = Player + 1;
    Tx.write(Cells[NewCell], NewCS);
    Tx.write(Players[Player], PS);
  });

  // Interaction transaction: near the quest, pick up a resource and
  // fight whoever was last seen in the cell.
  Txn.run(/*Tx=*/1, [&](LibTxn &Tx) {
    PlayerState PS = Tx.read(Players[Player]);
    double DX = TX - PS.X;
    double DY = TY - PS.Y;
    if (DX * DX + DY * DY >
        Params.InteractRadius * Params.InteractRadius)
      return;

    uint32_t Cell = cellIndexFor(PS.X, PS.Y);
    CellState CS = Tx.read(Cells[Cell]);
    if (CS.Resource > 0) {
      --CS.Resource;
      ++PS.Score;
    }
    uint32_t Victim = CS.LastPlayer;
    Tx.write(Cells[Cell], CS);

    if (Victim != 0 && Victim - 1 != Player &&
        Victim - 1 < Params.NumPlayers) {
      PlayerState VS = Tx.read(Players[Victim - 1]);
      VS.Health -= 5;
      if (VS.Health <= 0) {
        // Respawn at a deterministic pseudo-random location.
        SplitMix64 Hash((uint64_t{Victim} << 32) ^ Frame ^ RunSeed);
        VS.X = static_cast<float>(Hash.nextDouble() * Params.MapSize);
        VS.Y = static_cast<float>(Hash.nextDouble() * Params.MapSize);
        VS.Health = 100;
        // Migrate the victim's cell occupancy.
        uint32_t VOld = cellIndexFor(Tx.read(Players[Victim - 1]).X,
                                     Tx.read(Players[Victim - 1]).Y);
        uint32_t VNew = cellIndexFor(VS.X, VS.Y);
        if (VOld != VNew) {
          CellState OldCS = Tx.read(Cells[VOld]);
          --OldCS.Occupancy;
          Tx.write(Cells[VOld], OldCS);
          CellState NewCS = Tx.read(Cells[VNew]);
          ++NewCS.Occupancy;
          Tx.write(Cells[VNew], NewCS);
        }
      }
      Tx.write(Players[Victim - 1], VS);
    }
    Tx.write(Players[Player], PS);
  });

  // Non-TM game computation (collision, animation, scoring cosmetics):
  // keeps the frame's TM share realistic.
  uint64_t Physics = Player * 0x9e3779b97f4a7c15ULL + Frame;
  for (uint32_t I = 0; I < Params.PhysicsIterations; ++I)
    Physics = Physics * 6364136223846793005ULL + 1442695040888963407ULL;
  PhysicsSink.fetch_add(Physics & 1, std::memory_order_relaxed);
}

std::vector<double> SynQuakeGame::run(LibTm &Tm, unsigned NumThreads) {
  assert(NumThreads == Threads &&
         "run() must use the thread count the frame barrier was built "
         "for in setup()");
  std::vector<std::thread> Workers;
  Workers.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      LibTxn Txn(Tm, static_cast<ThreadId>(T));
      uint32_t Chunk = (Params.NumPlayers + NumThreads - 1) / NumThreads;
      uint32_t Begin = T * Chunk;
      uint32_t End = std::min(Params.NumPlayers, Begin + Chunk);

      Timer FrameTimer;
      for (uint32_t Frame = 0; Frame < Params.Frames; ++Frame) {
        FrameBarrier->arriveAndWait();
        if (T == 0)
          FrameTimer.reset();
        for (uint32_t P = Begin; P < End; ++P)
          playerFrame(Txn, P, Frame);
        FrameBarrier->arriveAndWait();
        if (T == 0)
          FrameSeconds[Frame] = FrameTimer.elapsedSeconds();
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  return FrameSeconds;
}

uint64_t SynQuakeGame::totalScoreDirect() const {
  uint64_t Total = 0;
  for (uint32_t P = 0; P < Params.NumPlayers; ++P)
    Total += Players[P].loadDirect().Score;
  return Total;
}

bool SynQuakeGame::verify() const {
  uint32_t Side = cellsPerSide();
  // Occupancy conservation: the cells' occupant counters must sum to the
  // player population and match the players' actual positions.
  std::vector<int64_t> Expected(static_cast<size_t>(Side) * Side, 0);
  for (uint32_t P = 0; P < Params.NumPlayers; ++P) {
    PlayerState PS = Players[P].loadDirect();
    if (PS.X < 0 || PS.Y < 0 || PS.X > Params.MapSize ||
        PS.Y > Params.MapSize)
      return false;
    ++Expected[cellIndexFor(PS.X, PS.Y)];
  }
  int64_t Remaining = 0;
  for (uint32_t C = 0; C < Side * Side; ++C) {
    CellState CS = Cells[C].loadDirect();
    if (CS.Occupancy != Expected[C])
      return false;
    Remaining += CS.Resource;
  }
  // Score/resource conservation: every consumed resource unit scored
  // exactly one point somewhere.
  return static_cast<int64_t>(totalScoreDirect()) ==
         InitialResource - Remaining;
}
