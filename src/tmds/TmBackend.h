//===- tmds/TmBackend.h - STM backend traits for the tmds containers -----===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backend traits that let one transactional container source run on both
/// STM runtimes in this repo. The seed containers in `src/stamp` are
/// hard-wired to Tl2Txn/TVar; the tmds structures are instead templates
/// over a backend policy providing:
///
///  * `Stm` / `Txn` — the runtime and per-thread descriptor types (both
///    runtimes share the `run(TxId, Body)` / `threadId()` shape),
///  * `Cell<T>` — the unit of transactionally shared state (TVar<T> on
///    TL2, TObj<T> on LibTm) with transactional load/store and quiescent
///    loadDirect/storeDirect,
///  * `cellAddr`/`cellRaw` — the address and raw word the runtime's
///    TxAccessObserver reports for that cell, so the check harness can
///    register initial values that match what onTxLoad/onTxStore will
///    carry (TL2 reports &TVar::word() and the encoded word; LibTm
///    reports the TObjBase and payload word 0 — for word-sized payloads
///    the two encodings agree), and
///  * `cellLocked` — per-cell lock residue probe for post-run quiescence
///    checks (TL2 decodes the shared stripe; LibTm decodes the object's
///    embedded metadata word).
///
/// The containers only ever use cells holding trivially copyable values
/// of at most 8 bytes, so one TObj payload word mirrors one TVar word.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_TMDS_TMBACKEND_H
#define GSTM_TMDS_TMBACKEND_H

#include "engine/Engines.h"
#include "libtm/LibTm.h"
#include "stm/LockTable.h"
#include "stm/TVar.h"
#include "stm/Tl2.h"

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace gstm {

/// Word-based TL2 backend: cells are TVar<T>, metadata lives in the
/// runtime's shared stripe table.
struct Tl2Backend {
  using Stm = Tl2Stm;
  using Txn = Tl2Txn;
  template <typename T> using Cell = TVar<T>;

  static constexpr const char *Name = "tl2";

  template <typename T> static T load(Txn &Tx, const Cell<T> &C) {
    return Tx.load(C);
  }
  template <typename T>
  static void store(Txn &Tx, Cell<T> &C, std::type_identity_t<T> Value) {
    Tx.store(C, Value);
  }
  template <typename T> static T loadDirect(const Cell<T> &C) {
    return C.loadDirect();
  }
  template <typename T>
  static void storeDirect(Cell<T> &C, std::type_identity_t<T> Value) {
    C.storeDirect(Value);
  }

  /// Address / raw value as seen by TxAccessObserver callbacks.
  template <typename T> static const void *cellAddr(const Cell<T> &C) {
    return &C.word();
  }
  template <typename T> static uint64_t cellRaw(const Cell<T> &C) {
    return C.word().load(std::memory_order_relaxed);
  }

  /// True when the stripe guarding \p C is still locked (post-run
  /// residue probe; quiescent use only).
  template <typename T> static bool cellLocked(Stm &S, const Cell<T> &C) {
    auto &Word = const_cast<Cell<T> &>(C).word();
    return LockTable::decode(
               S.lockTable().stripeFor(&Word).load(std::memory_order_relaxed))
        .Locked;
  }
};

/// Object-based LibTm backend: cells are single-payload-word TObj<T> with
/// per-object embedded metadata.
struct LibTmBackend {
  using Stm = LibTm;
  using Txn = LibTxn;
  template <typename T> using Cell = TObj<T>;

  static constexpr const char *Name = "libtm";

  template <typename T> static T load(Txn &Tx, const Cell<T> &C) {
    return Tx.read(C);
  }
  template <typename T>
  static void store(Txn &Tx, Cell<T> &C, std::type_identity_t<T> Value) {
    Tx.write(C, Value);
  }
  template <typename T> static T loadDirect(const Cell<T> &C) {
    return C.loadDirect();
  }
  template <typename T>
  static void storeDirect(Cell<T> &C, std::type_identity_t<T> Value) {
    C.storeDirect(Value);
  }

  template <typename T> static const void *cellAddr(const Cell<T> &C) {
    return static_cast<const TObjBase *>(&C);
  }
  template <typename T> static uint64_t cellRaw(const Cell<T> &C) {
    // Payload word 0 — what LibTm's access observer reports; identical
    // to the TVar encoding for word-sized trivially copyable T.
    return const_cast<Cell<T> &>(C).words()[0].load(
        std::memory_order_relaxed);
  }

  template <typename T> static bool cellLocked(Stm &, const Cell<T> &C) {
    return LockTable::decode(const_cast<Cell<T> &>(C).meta().load(
                                 std::memory_order_relaxed))
        .Locked;
  }
};

/// Word-based backend over the policy-templated engine family
/// (src/engine): cells are TVar<T> exactly as on TL2, so cellAddr and
/// cellRaw report the same encoding; only the per-cell residue probe
/// depends on the policy's table type (stripe word vs ByteLock entry).
template <typename Policy> struct EngineBackend {
  using Stm = EngineStm<Policy>;
  using Txn = EngineTxn<Policy>;
  template <typename T> using Cell = TVar<T>;

  static constexpr const char *Name = Policy::Name;

  template <typename T> static T load(Txn &Tx, const Cell<T> &C) {
    return Tx.load(C);
  }
  template <typename T>
  static void store(Txn &Tx, Cell<T> &C, std::type_identity_t<T> Value) {
    Tx.store(C, Value);
  }
  template <typename T> static T loadDirect(const Cell<T> &C) {
    return C.loadDirect();
  }
  template <typename T>
  static void storeDirect(Cell<T> &C, std::type_identity_t<T> Value) {
    C.storeDirect(Value);
  }

  template <typename T> static const void *cellAddr(const Cell<T> &C) {
    return &C.word();
  }
  template <typename T> static uint64_t cellRaw(const Cell<T> &C) {
    return C.word().load(std::memory_order_relaxed);
  }

  /// Post-run residue probe (quiescent use only). A ByteLock entry is
  /// residue-held when its Owner word or any reader byte survives; a
  /// stripe word when its lock bit does.
  template <typename T> static bool cellLocked(Stm &S, const Cell<T> &C) {
    auto &Word = const_cast<Cell<T> &>(C).word();
    if constexpr (std::is_same_v<typename Policy::Table, ByteLockTable>)
      return S.table().lockFor(&Word).heldByAnyone();
    else
      return LockTable::decode(S.table().stripeFor(&Word).load(
                                   std::memory_order_relaxed))
          .Locked;
  }
};

using OrecEagerBackend = EngineBackend<OrecEagerPolicy>;
using TlrwBackend = EngineBackend<TlrwPolicy>;
using TwoPlBackend = EngineBackend<TwoPlPolicy>;

} // namespace gstm

#endif // GSTM_TMDS_TMBACKEND_H
