//===- tmds/TmBTree.h - Transactional B-tree map -------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transactional B-tree map (CLRS structure: keys and values in every
/// node, minimum degree MinDegree) with unique 64-bit keys — the
/// database-shaped index of the OLTP tier. Wide nodes mean short
/// traversals and multi-key nodes shared by many keys, so unrelated keys
/// that land in one node conflict — a coarser, more write-clustered
/// contention shape than the skiplist's pointer chains.
///
/// Transactions provide atomicity, so the code is the sequential
/// algorithm — preemptive-split top-down insert, full CLRS delete with
/// borrow/merge — with every field access routed through the backend
/// policy (tmds/TmBackend.h); the same source instantiates over TL2 and
/// LibTm. Merged-away nodes are unlinked but never recycled (TmPool
/// discipline: a speculative reader may still hold their indices).
///
/// The element count lives in per-thread stripes, as in TmSkipList and
/// for the same reason: one global counter cell would serialize every
/// mutating transaction through a single stripe.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_TMDS_TMBTREE_H
#define GSTM_TMDS_TMBTREE_H

#include "stamp/TmPool.h"
#include "tmds/TmBackend.h"

#include <cstddef>
#include <cstdint>
#include <optional>

namespace gstm {

/// Node of a TmBTree. Children are pool indices; leaves keep them Null.
template <typename B, unsigned MaxKeysN> struct TmBTreeNode {
  typename B::template Cell<uint32_t> NumKeys;
  typename B::template Cell<uint32_t> Leaf; // 0 / 1
  typename B::template Cell<uint64_t> Keys[MaxKeysN];
  typename B::template Cell<uint64_t> Vals[MaxKeysN];
  typename B::template Cell<uint32_t> Children[MaxKeysN + 1];
};

/// Transactional ordered map with unique 64-bit keys, templated over an
/// STM backend policy (Tl2Backend / LibTmBackend).
template <typename B> class TmBTree {
public:
  /// CLRS minimum degree: nodes hold MinDegree-1 .. 2*MinDegree-1 keys
  /// (root exempt below the minimum).
  static constexpr unsigned MinDegree = 8;
  static constexpr unsigned MaxKeys = 2 * MinDegree - 1;
  /// Size-counter stripes (power of two; threads map on modulo).
  static constexpr unsigned SizeStripes = 64;

  using Txn = typename B::Txn;
  using Node = TmBTreeNode<B, MaxKeys>;
  using Pool = TmPool<Node>;

  /// Creates an empty tree; allocates its root leaf from \p Nodes.
  /// Single-threaded (uses direct stores).
  explicit TmBTree(Pool &Nodes) : P(Nodes) {
    uint32_t R = P.allocate();
    B::storeDirect(P[R].NumKeys, uint32_t{0});
    B::storeDirect(P[R].Leaf, uint32_t{1});
    B::storeDirect(Root, R);
  }

  /// Returns the value mapped to \p Key, if any.
  std::optional<uint64_t> find(Txn &Tx, uint64_t Key) {
    uint32_t N = B::load(Tx, Root);
    for (;;) {
      uint32_t K = B::load(Tx, P[N].NumKeys);
      uint32_t I = 0;
      while (I < K && B::load(Tx, P[N].Keys[I]) < Key)
        ++I;
      if (I < K && B::load(Tx, P[N].Keys[I]) == Key)
        return B::load(Tx, P[N].Vals[I]);
      if (B::load(Tx, P[N].Leaf))
        return std::nullopt;
      N = B::load(Tx, P[N].Children[I]);
    }
  }

  bool contains(Txn &Tx, uint64_t Key) { return find(Tx, Key).has_value(); }

  /// Inserts (\p Key, \p Value); returns false when the key exists.
  /// A duplicate probe may still split full nodes on the way down
  /// (preemptive-split discipline) — contents are unchanged either way.
  bool insert(Txn &Tx, uint64_t Key, uint64_t Value) {
    uint32_t R = B::load(Tx, Root);
    if (B::load(Tx, P[R].NumKeys) == MaxKeys) {
      uint32_t NewRoot = P.allocate();
      B::store(Tx, P[NewRoot].NumKeys, uint32_t{0});
      B::store(Tx, P[NewRoot].Leaf, uint32_t{0});
      B::store(Tx, P[NewRoot].Children[0], R);
      splitChild(Tx, NewRoot, 0, R);
      B::store(Tx, Root, NewRoot);
      R = NewRoot;
    }
    if (!insertNonFull(Tx, R, Key, Value))
      return false;
    bumpSize(Tx, uint64_t{1});
    return true;
  }

  /// Overwrites the value of an existing key; false when absent.
  bool update(Txn &Tx, uint64_t Key, uint64_t Value) {
    uint32_t N = B::load(Tx, Root);
    for (;;) {
      uint32_t K = B::load(Tx, P[N].NumKeys);
      uint32_t I = 0;
      while (I < K && B::load(Tx, P[N].Keys[I]) < Key)
        ++I;
      if (I < K && B::load(Tx, P[N].Keys[I]) == Key) {
        B::store(Tx, P[N].Vals[I], Value);
        return true;
      }
      if (B::load(Tx, P[N].Leaf))
        return false;
      N = B::load(Tx, P[N].Children[I]);
    }
  }

  /// Removes \p Key; returns its value if present.
  std::optional<uint64_t> remove(Txn &Tx, uint64_t Key) {
    uint32_t R = B::load(Tx, Root);
    std::optional<uint64_t> Removed = removeRec(Tx, R, Key);
    // Shrink an emptied non-leaf root (its single child absorbed a
    // root-level merge).
    R = B::load(Tx, Root);
    if (B::load(Tx, P[R].NumKeys) == 0 && !B::load(Tx, P[R].Leaf))
      B::store(Tx, Root, B::load(Tx, P[R].Children[0]));
    if (Removed)
      bumpSize(Tx, ~uint64_t{0}); // -1 in wrap-around arithmetic
    return Removed;
  }

  /// Range scan: visits up to \p MaxCount entries with key >= \p Start in
  /// ascending order, accumulating their values into \p ValueSum.
  /// Returns the number visited.
  size_t scan(Txn &Tx, uint64_t Start, size_t MaxCount, uint64_t &ValueSum) {
    size_t Taken = 0;
    scanRec(Tx, B::load(Tx, Root), Start, MaxCount, Taken, ValueSum);
    return Taken;
  }

  /// Number of keys: sum of the size stripes (reads all of them — use
  /// sparingly inside transactions).
  uint64_t size(Txn &Tx) {
    uint64_t Total = 0;
    for (unsigned I = 0; I < SizeStripes; ++I)
      Total += B::load(Tx, Stripes[I]);
    return Total;
  }
  uint64_t sizeDirect() const {
    uint64_t Total = 0;
    for (unsigned I = 0; I < SizeStripes; ++I)
      Total += B::loadDirect(Stripes[I]);
    return Total;
  }

  /// Checks every structural invariant with direct reads (quiescent use
  /// only): in-node and cross-subtree key ordering, occupancy bounds
  /// (root exempt), uniform leaf depth, and stripe total == key count.
  bool validateDirect() const {
    uint32_t R = B::loadDirect(Root);
    uint64_t Count = 0;
    int LeafDepth = -1;
    if (!validateFrom(R, 0, ~uint64_t{0}, /*IsRoot=*/true, 0, LeafDepth,
                      Count))
      return false;
    return sizeDirect() == Count;
  }

  /// Ascending (key, value) traversal with direct reads (quiescent use
  /// only).
  template <typename Fn> void forEachDirect(Fn &&Callback) const {
    forEachDirectFrom(B::loadDirect(Root), Callback);
  }

  /// Visits (observer address, raw word) of every cell the structure
  /// owns — root link, size stripes, and every pool node handed out so
  /// far. Quiescent use only; lets the check harness register initials.
  template <typename Fn> void forEachCellDirect(Fn &&Callback) const {
    Callback(B::cellAddr(Root), B::cellRaw(Root));
    for (unsigned I = 0; I < SizeStripes; ++I)
      Callback(B::cellAddr(Stripes[I]), B::cellRaw(Stripes[I]));
    for (uint32_t N = 1; N <= P.used(); ++N) {
      Callback(B::cellAddr(P[N].NumKeys), B::cellRaw(P[N].NumKeys));
      Callback(B::cellAddr(P[N].Leaf), B::cellRaw(P[N].Leaf));
      for (unsigned I = 0; I < MaxKeys; ++I) {
        Callback(B::cellAddr(P[N].Keys[I]), B::cellRaw(P[N].Keys[I]));
        Callback(B::cellAddr(P[N].Vals[I]), B::cellRaw(P[N].Vals[I]));
      }
      for (unsigned I = 0; I <= MaxKeys; ++I)
        Callback(B::cellAddr(P[N].Children[I]),
                 B::cellRaw(P[N].Children[I]));
    }
  }

  /// Post-run lock-residue probe over every owned cell (quiescent use
  /// only): true when some cell's lock metadata is still held.
  bool anyCellLockedDirect(typename B::Stm &S) const {
    bool Residue = B::cellLocked(S, Root);
    for (unsigned I = 0; I < SizeStripes; ++I)
      Residue |= B::cellLocked(S, Stripes[I]);
    for (uint32_t N = 1; N <= P.used(); ++N) {
      Residue |= B::cellLocked(S, P[N].NumKeys);
      Residue |= B::cellLocked(S, P[N].Leaf);
      for (unsigned I = 0; I < MaxKeys; ++I) {
        Residue |= B::cellLocked(S, P[N].Keys[I]);
        Residue |= B::cellLocked(S, P[N].Vals[I]);
      }
      for (unsigned I = 0; I <= MaxKeys; ++I)
        Residue |= B::cellLocked(S, P[N].Children[I]);
    }
    return Residue;
  }

private:
  // Transactional field helpers (declared for readability at call sites).
  uint32_t nk(Txn &Tx, uint32_t N) { return B::load(Tx, P[N].NumKeys); }
  bool leaf(Txn &Tx, uint32_t N) {
    return B::load(Tx, P[N].Leaf) != 0;
  }
  uint64_t key(Txn &Tx, uint32_t N, uint32_t I) {
    return B::load(Tx, P[N].Keys[I]);
  }
  uint64_t val(Txn &Tx, uint32_t N, uint32_t I) {
    return B::load(Tx, P[N].Vals[I]);
  }
  uint32_t child(Txn &Tx, uint32_t N, uint32_t I) {
    return B::load(Tx, P[N].Children[I]);
  }

  /// Splits the full child \p Y (= child \p I of \p X, MaxKeys keys)
  /// around its median, which moves up into \p X.
  void splitChild(Txn &Tx, uint32_t X, uint32_t I, uint32_t Y) {
    uint32_t Z = P.allocate();
    bool YLeaf = leaf(Tx, Y);
    B::store(Tx, P[Z].Leaf, uint32_t{YLeaf ? 1u : 0u});
    B::store(Tx, P[Z].NumKeys, uint32_t{MinDegree - 1});
    for (uint32_t J = 0; J < MinDegree - 1; ++J) {
      B::store(Tx, P[Z].Keys[J], key(Tx, Y, J + MinDegree));
      B::store(Tx, P[Z].Vals[J], val(Tx, Y, J + MinDegree));
    }
    if (!YLeaf)
      for (uint32_t J = 0; J < MinDegree; ++J)
        B::store(Tx, P[Z].Children[J], child(Tx, Y, J + MinDegree));
    B::store(Tx, P[Y].NumKeys, uint32_t{MinDegree - 1});

    uint32_t XK = nk(Tx, X);
    for (uint32_t J = XK; J > I; --J)
      B::store(Tx, P[X].Children[J + 1], child(Tx, X, J));
    B::store(Tx, P[X].Children[I + 1], Z);
    for (uint32_t J = XK; J > I; --J) {
      B::store(Tx, P[X].Keys[J], key(Tx, X, J - 1));
      B::store(Tx, P[X].Vals[J], val(Tx, X, J - 1));
    }
    B::store(Tx, P[X].Keys[I], key(Tx, Y, MinDegree - 1));
    B::store(Tx, P[X].Vals[I], val(Tx, Y, MinDegree - 1));
    B::store(Tx, P[X].NumKeys, XK + 1);
  }

  /// Top-down insert into a node guaranteed non-full; false on duplicate.
  bool insertNonFull(Txn &Tx, uint32_t N, uint64_t Key, uint64_t Value) {
    for (;;) {
      uint32_t K = nk(Tx, N);
      uint32_t I = K;
      while (I > 0 && key(Tx, N, I - 1) > Key)
        --I;
      if (I > 0 && key(Tx, N, I - 1) == Key)
        return false;
      if (leaf(Tx, N)) {
        for (uint32_t J = K; J > I; --J) {
          B::store(Tx, P[N].Keys[J], key(Tx, N, J - 1));
          B::store(Tx, P[N].Vals[J], val(Tx, N, J - 1));
        }
        B::store(Tx, P[N].Keys[I], Key);
        B::store(Tx, P[N].Vals[I], Value);
        B::store(Tx, P[N].NumKeys, K + 1);
        return true;
      }
      uint32_t C = child(Tx, N, I);
      if (nk(Tx, C) == MaxKeys) {
        splitChild(Tx, N, I, C);
        uint64_t Mid = key(Tx, N, I);
        if (Mid == Key)
          return false;
        if (Key > Mid)
          ++I;
        C = child(Tx, N, I);
      }
      N = C;
    }
  }

  /// CLRS delete from the subtree rooted at \p N, which is guaranteed to
  /// hold at least MinDegree keys unless it is the root.
  std::optional<uint64_t> removeRec(Txn &Tx, uint32_t N, uint64_t Key) {
    for (;;) {
      uint32_t K = nk(Tx, N);
      uint32_t I = 0;
      while (I < K && key(Tx, N, I) < Key)
        ++I;
      bool Hit = I < K && key(Tx, N, I) == Key;
      bool IsLeaf = leaf(Tx, N);
      if (Hit && IsLeaf) {
        uint64_t Old = val(Tx, N, I);
        for (uint32_t J = I; J + 1 < K; ++J) {
          B::store(Tx, P[N].Keys[J], key(Tx, N, J + 1));
          B::store(Tx, P[N].Vals[J], val(Tx, N, J + 1));
        }
        B::store(Tx, P[N].NumKeys, K - 1);
        return Old;
      }
      if (Hit) {
        uint32_t C = child(Tx, N, I);     // predecessor subtree
        uint32_t D = child(Tx, N, I + 1); // successor subtree
        if (nk(Tx, C) >= MinDegree) {
          // Replace with the in-order predecessor and delete it below.
          auto [Pk, Pv] = maxOf(Tx, C);
          uint64_t Old = val(Tx, N, I);
          B::store(Tx, P[N].Keys[I], Pk);
          B::store(Tx, P[N].Vals[I], Pv);
          removeRec(Tx, C, Pk);
          return Old;
        }
        if (nk(Tx, D) >= MinDegree) {
          auto [Sk, Sv] = minOf(Tx, D);
          uint64_t Old = val(Tx, N, I);
          B::store(Tx, P[N].Keys[I], Sk);
          B::store(Tx, P[N].Vals[I], Sv);
          removeRec(Tx, D, Sk);
          return Old;
        }
        // Both minimal: merge around key I, then delete from the merged
        // child (root shrink, if this emptied the root, happens in
        // remove()).
        mergeChildren(Tx, N, I);
        N = C;
        continue;
      }
      if (IsLeaf)
        return std::nullopt; // absent
      uint32_t C = child(Tx, N, I);
      if (nk(Tx, C) == MinDegree - 1)
        C = fillChild(Tx, N, I);
      N = C;
    }
  }

  /// (key, value) of the largest entry in the subtree at \p N.
  std::pair<uint64_t, uint64_t> maxOf(Txn &Tx, uint32_t N) {
    while (!leaf(Tx, N))
      N = child(Tx, N, nk(Tx, N));
    uint32_t K = nk(Tx, N);
    return {key(Tx, N, K - 1), val(Tx, N, K - 1)};
  }

  /// (key, value) of the smallest entry in the subtree at \p N.
  std::pair<uint64_t, uint64_t> minOf(Txn &Tx, uint32_t N) {
    while (!leaf(Tx, N))
      N = child(Tx, N, 0);
    return {key(Tx, N, 0), val(Tx, N, 0)};
  }

  /// Grows child \p I of \p N (at MinDegree-1 keys) to at least
  /// MinDegree keys by borrowing from a sibling or merging; returns the
  /// node to descend into.
  uint32_t fillChild(Txn &Tx, uint32_t N, uint32_t I) {
    uint32_t K = nk(Tx, N);
    if (I > 0 && nk(Tx, child(Tx, N, I - 1)) >= MinDegree) {
      borrowFromLeft(Tx, N, I);
      return child(Tx, N, I);
    }
    if (I < K && nk(Tx, child(Tx, N, I + 1)) >= MinDegree) {
      borrowFromRight(Tx, N, I);
      return child(Tx, N, I);
    }
    if (I < K) {
      uint32_t C = child(Tx, N, I);
      mergeChildren(Tx, N, I);
      return C;
    }
    uint32_t C = child(Tx, N, I - 1);
    mergeChildren(Tx, N, I - 1);
    return C;
  }

  /// Rotates one entry through the separator: left sibling's last entry
  /// moves up into \p N, the separator moves down into child \p I.
  void borrowFromLeft(Txn &Tx, uint32_t N, uint32_t I) {
    uint32_t C = child(Tx, N, I);
    uint32_t L = child(Tx, N, I - 1);
    uint32_t CK = nk(Tx, C);
    uint32_t LK = nk(Tx, L);
    for (uint32_t J = CK; J > 0; --J) {
      B::store(Tx, P[C].Keys[J], key(Tx, C, J - 1));
      B::store(Tx, P[C].Vals[J], val(Tx, C, J - 1));
    }
    B::store(Tx, P[C].Keys[0], key(Tx, N, I - 1));
    B::store(Tx, P[C].Vals[0], val(Tx, N, I - 1));
    if (!leaf(Tx, C)) {
      for (uint32_t J = CK + 1; J > 0; --J)
        B::store(Tx, P[C].Children[J], child(Tx, C, J - 1));
      B::store(Tx, P[C].Children[0], child(Tx, L, LK));
    }
    B::store(Tx, P[N].Keys[I - 1], key(Tx, L, LK - 1));
    B::store(Tx, P[N].Vals[I - 1], val(Tx, L, LK - 1));
    B::store(Tx, P[L].NumKeys, LK - 1);
    B::store(Tx, P[C].NumKeys, CK + 1);
  }

  /// Mirror of borrowFromLeft for the right sibling.
  void borrowFromRight(Txn &Tx, uint32_t N, uint32_t I) {
    uint32_t C = child(Tx, N, I);
    uint32_t R = child(Tx, N, I + 1);
    uint32_t CK = nk(Tx, C);
    uint32_t RK = nk(Tx, R);
    B::store(Tx, P[C].Keys[CK], key(Tx, N, I));
    B::store(Tx, P[C].Vals[CK], val(Tx, N, I));
    B::store(Tx, P[N].Keys[I], key(Tx, R, 0));
    B::store(Tx, P[N].Vals[I], val(Tx, R, 0));
    for (uint32_t J = 0; J + 1 < RK; ++J) {
      B::store(Tx, P[R].Keys[J], key(Tx, R, J + 1));
      B::store(Tx, P[R].Vals[J], val(Tx, R, J + 1));
    }
    if (!leaf(Tx, C)) {
      B::store(Tx, P[C].Children[CK + 1], child(Tx, R, 0));
      for (uint32_t J = 0; J < RK; ++J)
        B::store(Tx, P[R].Children[J], child(Tx, R, J + 1));
    }
    B::store(Tx, P[R].NumKeys, RK - 1);
    B::store(Tx, P[C].NumKeys, CK + 1);
  }

  /// Merges child \p I, separator key \p I, and child \p I+1 into child
  /// \p I (both children hold MinDegree-1 keys). The right child is
  /// unlinked but not recycled.
  void mergeChildren(Txn &Tx, uint32_t N, uint32_t I) {
    uint32_t C = child(Tx, N, I);
    uint32_t D = child(Tx, N, I + 1);
    uint32_t K = nk(Tx, N);
    B::store(Tx, P[C].Keys[MinDegree - 1], key(Tx, N, I));
    B::store(Tx, P[C].Vals[MinDegree - 1], val(Tx, N, I));
    for (uint32_t J = 0; J < MinDegree - 1; ++J) {
      B::store(Tx, P[C].Keys[J + MinDegree], key(Tx, D, J));
      B::store(Tx, P[C].Vals[J + MinDegree], val(Tx, D, J));
    }
    if (!leaf(Tx, C))
      for (uint32_t J = 0; J < MinDegree; ++J)
        B::store(Tx, P[C].Children[J + MinDegree], child(Tx, D, J));
    B::store(Tx, P[C].NumKeys, uint32_t{MaxKeys});
    for (uint32_t J = I; J + 1 < K; ++J) {
      B::store(Tx, P[N].Keys[J], key(Tx, N, J + 1));
      B::store(Tx, P[N].Vals[J], val(Tx, N, J + 1));
    }
    for (uint32_t J = I + 1; J < K; ++J)
      B::store(Tx, P[N].Children[J], child(Tx, N, J + 1));
    B::store(Tx, P[N].NumKeys, K - 1);
  }

  void scanRec(Txn &Tx, uint32_t N, uint64_t Start, size_t MaxCount,
               size_t &Taken, uint64_t &ValueSum) {
    if (N == Pool::Null || Taken >= MaxCount)
      return;
    uint32_t K = nk(Tx, N);
    bool IsLeaf = leaf(Tx, N);
    for (uint32_t I = 0; I < K && Taken < MaxCount; ++I) {
      uint64_t Ki = key(Tx, N, I);
      // Child I holds keys below Ki; skip it when the whole subtree is
      // below the scan start.
      if (!IsLeaf && Ki >= Start)
        scanRec(Tx, child(Tx, N, I), Start, MaxCount, Taken, ValueSum);
      if (Taken >= MaxCount)
        return;
      if (Ki >= Start) {
        ValueSum += val(Tx, N, I);
        ++Taken;
      }
    }
    if (!IsLeaf && Taken < MaxCount)
      scanRec(Tx, child(Tx, N, K), Start, MaxCount, Taken, ValueSum);
  }

  void bumpSize(Txn &Tx, uint64_t Delta) {
    auto &Stripe =
        Stripes[static_cast<size_t>(Tx.threadId()) & (SizeStripes - 1)];
    B::store(Tx, Stripe, B::load(Tx, Stripe) + Delta);
  }

  /// Direct-read recursive validator. Keys of the subtree at \p N must
  /// lie in [\p Lo, \p Hi]; \p LeafDepth pins the uniform leaf depth;
  /// \p Count accumulates keys seen.
  bool validateFrom(uint32_t N, uint64_t Lo, uint64_t Hi, bool IsRoot,
                    int Depth, int &LeafDepth, uint64_t &Count) const {
    if (N == Pool::Null)
      return false;
    uint32_t K = B::loadDirect(P[N].NumKeys);
    bool IsLeaf = B::loadDirect(P[N].Leaf) != 0;
    if (K > MaxKeys)
      return false;
    if (!IsRoot && K < MinDegree - 1)
      return false;
    if (IsRoot && !IsLeaf && K == 0)
      return false; // non-leaf root must separate something
    uint64_t Prev = Lo;
    bool HavePrev = false;
    for (uint32_t I = 0; I < K; ++I) {
      uint64_t Ki = B::loadDirect(P[N].Keys[I]);
      if (Ki < Lo || Ki > Hi)
        return false;
      if ((HavePrev || I > 0) && Ki <= Prev)
        return false;
      Prev = Ki;
      HavePrev = true;
    }
    Count += K;
    if (IsLeaf) {
      if (LeafDepth < 0)
        LeafDepth = Depth;
      return LeafDepth == Depth;
    }
    for (uint32_t I = 0; I <= K; ++I) {
      // Child I's keys sit strictly between the neighbouring separators.
      uint64_t CLo = I == 0 ? Lo : B::loadDirect(P[N].Keys[I - 1]) + 1;
      uint64_t CHi = I == K ? Hi : B::loadDirect(P[N].Keys[I]) - 1;
      if (!validateFrom(B::loadDirect(P[N].Children[I]), CLo, CHi,
                        /*IsRoot=*/false, Depth + 1, LeafDepth, Count))
        return false;
    }
    return true;
  }

  template <typename Fn>
  void forEachDirectFrom(uint32_t N, Fn &Callback) const {
    if (N == Pool::Null)
      return;
    uint32_t K = B::loadDirect(P[N].NumKeys);
    bool IsLeaf = B::loadDirect(P[N].Leaf) != 0;
    for (uint32_t I = 0; I < K; ++I) {
      if (!IsLeaf)
        forEachDirectFrom(B::loadDirect(P[N].Children[I]), Callback);
      Callback(B::loadDirect(P[N].Keys[I]), B::loadDirect(P[N].Vals[I]));
    }
    if (!IsLeaf)
      forEachDirectFrom(B::loadDirect(P[N].Children[K]), Callback);
  }

  Pool &P;
  typename B::template Cell<uint32_t> Root;
  typename B::template Cell<uint64_t> Stripes[SizeStripes];
};

} // namespace gstm

#endif // GSTM_TMDS_TMBTREE_H
