//===- tmds/TmSkipList.h - Transactional skiplist map --------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transactional skiplist map with unique 64-bit keys, the pointer-chain
/// counterpart of the OLTP tier's B-tree: long traversal read sets, writes
/// confined to the tower being linked/unlinked, so read-write conflicts
/// dominate and hot-key skew concentrates them — the contention shape the
/// paper's commit-latency model cares about.
///
/// Transactions provide atomicity, so the code is the sequential algorithm
/// with every field access routed through the backend policy
/// (tmds/TmBackend.h); the same source instantiates over TL2 and LibTm.
///
/// Two deliberate departures from a textbook skiplist:
///  * Tower heights are a deterministic hash of the key (geometric via
///    the trailing-ones count of a splitmix64 mix), not drawn from an
///    RNG: txn bodies must be replay-deterministic (stm-lint R3), and a
///    key-derived height makes the final structure independent of thread
///    schedule and insertion order — which is what lets the fuzz harness
///    compare structures across backends byte-for-byte.
///  * The element count lives in per-thread stripes indexed by
///    Txn::threadId(), not one global counter cell: a shared counter
///    would serialize every mutating transaction through one stripe and
///    drown the data-structure contention the tier exists to measure.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_TMDS_TMSKIPLIST_H
#define GSTM_TMDS_TMSKIPLIST_H

#include "stamp/TmPool.h"
#include "tmds/TmBackend.h"

#include <cstddef>
#include <cstdint>
#include <optional>

namespace gstm {

/// Mixer for deterministic tower heights (Vigna's splitmix64 finalizer).
inline uint64_t tmdsMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Node of a TmSkipList: key/value plus a fixed-size tower of forward
/// links (pool indices; Null = past-the-end at every level).
template <typename B, unsigned MaxLevelN> struct TmSkipNode {
  typename B::template Cell<uint64_t> Key;
  typename B::template Cell<uint64_t> Value;
  typename B::template Cell<uint32_t> Height;
  typename B::template Cell<uint32_t> Next[MaxLevelN];
};

/// Transactional ordered map with unique 64-bit keys, templated over an
/// STM backend policy (Tl2Backend / LibTmBackend).
template <typename B> class TmSkipList {
public:
  /// Tower levels. 2^16 expected elements per extra level keeps million-
  /// key OLTP keyspaces at their optimal height.
  static constexpr unsigned MaxLevel = 16;
  /// Size-counter stripes (power of two; threads map on modulo).
  static constexpr unsigned SizeStripes = 64;

  using Txn = typename B::Txn;
  using Node = TmSkipNode<B, MaxLevel>;
  using Pool = TmPool<Node>;

  /// Deterministic tower height of \p Key: 1 + trailing ones of the
  /// mixed key, capped at MaxLevel (geometric, p = 1/2).
  static uint32_t towerHeight(uint64_t Key) {
    uint64_t H = tmdsMix64(Key);
    uint32_t Height = 1;
    while ((H & 1) != 0 && Height < MaxLevel) {
      ++Height;
      H >>= 1;
    }
    return Height;
  }

  /// Creates an empty list; allocates its head sentinel from \p Nodes.
  /// Single-threaded (uses direct stores).
  explicit TmSkipList(Pool &Nodes) : P(Nodes) {
    Head = P.allocate();
    B::storeDirect(P[Head].Key, uint64_t{0}); // sentinel; never compared
    B::storeDirect(P[Head].Value, uint64_t{0});
    B::storeDirect(P[Head].Height, uint32_t{MaxLevel});
    for (unsigned L = 0; L < MaxLevel; ++L)
      B::storeDirect(P[Head].Next[L], Pool::Null);
  }

  /// Returns the value mapped to \p Key, if any.
  std::optional<uint64_t> find(Txn &Tx, uint64_t Key) {
    uint32_t N = descend(Tx, Key, nullptr);
    if (N != Pool::Null && B::load(Tx, P[N].Key) == Key)
      return B::load(Tx, P[N].Value);
    return std::nullopt;
  }

  bool contains(Txn &Tx, uint64_t Key) {
    return find(Tx, Key).has_value();
  }

  /// Inserts (\p Key, \p Value); returns false when the key exists.
  bool insert(Txn &Tx, uint64_t Key, uint64_t Value) {
    uint32_t Preds[MaxLevel];
    uint32_t N = descend(Tx, Key, Preds);
    if (N != Pool::Null && B::load(Tx, P[N].Key) == Key)
      return false;
    uint32_t H = towerHeight(Key);
    // Allocation inside the body: an aborted attempt leaks its node
    // (TmPool discipline — pools budget headroom for that).
    uint32_t Fresh = P.allocate();
    B::store(Tx, P[Fresh].Key, Key);
    B::store(Tx, P[Fresh].Value, Value);
    B::store(Tx, P[Fresh].Height, H);
    for (uint32_t L = 0; L < H; ++L) {
      B::store(Tx, P[Fresh].Next[L], B::load(Tx, P[Preds[L]].Next[L]));
      B::store(Tx, P[Preds[L]].Next[L], Fresh);
    }
    bumpSize(Tx, uint64_t{1});
    return true;
  }

  /// Overwrites the value of an existing key; false when absent.
  bool update(Txn &Tx, uint64_t Key, uint64_t Value) {
    uint32_t N = descend(Tx, Key, nullptr);
    if (N == Pool::Null || B::load(Tx, P[N].Key) != Key)
      return false;
    B::store(Tx, P[N].Value, Value);
    return true;
  }

  /// Removes \p Key; returns its value if present. Nodes are not
  /// recycled (TmPool memory discipline).
  std::optional<uint64_t> remove(Txn &Tx, uint64_t Key) {
    uint32_t Preds[MaxLevel];
    uint32_t N = descend(Tx, Key, Preds);
    if (N == Pool::Null || B::load(Tx, P[N].Key) != Key)
      return std::nullopt;
    uint64_t Old = B::load(Tx, P[N].Value);
    uint32_t H = B::load(Tx, P[N].Height);
    // Keys are unique, so for every linked level the predecessor's next
    // is exactly N.
    for (uint32_t L = 0; L < H; ++L)
      B::store(Tx, P[Preds[L]].Next[L], B::load(Tx, P[N].Next[L]));
    bumpSize(Tx, ~uint64_t{0}); // -1 in wrap-around arithmetic
    return Old;
  }

  /// Range scan: visits up to \p MaxCount entries with key >= \p Start in
  /// ascending order, accumulating their values into \p ValueSum.
  /// Returns the number visited.
  size_t scan(Txn &Tx, uint64_t Start, size_t MaxCount, uint64_t &ValueSum) {
    uint32_t N = descend(Tx, Start, nullptr);
    size_t Taken = 0;
    while (N != Pool::Null && Taken < MaxCount) {
      ValueSum += B::load(Tx, P[N].Value);
      ++Taken;
      N = B::load(Tx, P[N].Next[0]);
    }
    return Taken;
  }

  /// Number of keys: sum of the size stripes (reads all of them — use
  /// sparingly inside transactions).
  uint64_t size(Txn &Tx) {
    uint64_t Total = 0;
    for (unsigned I = 0; I < SizeStripes; ++I)
      Total += B::load(Tx, Stripes[I]);
    return Total;
  }
  uint64_t sizeDirect() const {
    uint64_t Total = 0;
    for (unsigned I = 0; I < SizeStripes; ++I)
      Total += B::loadDirect(Stripes[I]);
    return Total;
  }

  /// Checks every structural invariant with direct reads (quiescent use
  /// only): strictly increasing level-0 keys, per-key deterministic
  /// heights, every level-l chain exactly the subsequence of level-0
  /// nodes with height > l (in order), and stripe total == node count.
  bool validateDirect() const {
    // Level 0: full ordered walk.
    uint64_t Count0 = 0;
    uint32_t Prev = Pool::Null;
    for (uint32_t N = B::loadDirect(P[Head].Next[0]); N != Pool::Null;
         N = B::loadDirect(P[N].Next[0])) {
      uint64_t Key = B::loadDirect(P[N].Key);
      if (Prev != Pool::Null && B::loadDirect(P[Prev].Key) >= Key)
        return false; // order / duplicate violation
      if (B::loadDirect(P[N].Height) != towerHeight(Key))
        return false;
      Prev = N;
      ++Count0;
      if (Count0 > P.used())
        return false; // cycle
    }
    if (sizeDirect() != Count0)
      return false;
    // Upper levels: each must be exactly the level-0 nodes with height
    // > L, in the same order.
    for (unsigned L = 1; L < MaxLevel; ++L) {
      uint32_t Expect = B::loadDirect(P[Head].Next[0]);
      for (uint32_t N = B::loadDirect(P[Head].Next[L]); N != Pool::Null;
           N = B::loadDirect(P[N].Next[L])) {
        while (Expect != Pool::Null &&
               B::loadDirect(P[Expect].Height) <= L)
          Expect = B::loadDirect(P[Expect].Next[0]);
        if (Expect != N)
          return false; // wrong node (or not on level 0 at all)
        Expect = B::loadDirect(P[Expect].Next[0]);
      }
      while (Expect != Pool::Null) {
        if (B::loadDirect(P[Expect].Height) > L)
          return false; // tall node missing from level L
        Expect = B::loadDirect(P[Expect].Next[0]);
      }
    }
    return true;
  }

  /// Ascending (key, value) traversal with direct reads (quiescent use
  /// only).
  template <typename Fn> void forEachDirect(Fn &&Callback) const {
    for (uint32_t N = B::loadDirect(P[Head].Next[0]); N != Pool::Null;
         N = B::loadDirect(P[N].Next[0]))
      Callback(B::loadDirect(P[N].Key), B::loadDirect(P[N].Value));
  }

  /// Visits (observer address, raw word) of every cell the structure
  /// owns — the size stripes plus every pool node handed out so far.
  /// Quiescent use only; lets the check harness register initial values.
  template <typename Fn> void forEachCellDirect(Fn &&Callback) const {
    for (unsigned I = 0; I < SizeStripes; ++I)
      Callback(B::cellAddr(Stripes[I]), B::cellRaw(Stripes[I]));
    for (uint32_t N = 1; N <= P.used(); ++N) {
      Callback(B::cellAddr(P[N].Key), B::cellRaw(P[N].Key));
      Callback(B::cellAddr(P[N].Value), B::cellRaw(P[N].Value));
      Callback(B::cellAddr(P[N].Height), B::cellRaw(P[N].Height));
      for (unsigned L = 0; L < MaxLevel; ++L)
        Callback(B::cellAddr(P[N].Next[L]), B::cellRaw(P[N].Next[L]));
    }
  }

  /// Post-run lock-residue probe over every owned cell (quiescent use
  /// only): true when some cell's lock metadata is still held.
  bool anyCellLockedDirect(typename B::Stm &S) const {
    bool Residue = false;
    forEachLockProbe(S, Residue);
    return Residue;
  }

private:
  /// Descends towards \p Key, returning the first level-0 node with
  /// key >= \p Key (or Null); when \p Preds is non-null, fills it with
  /// the strict predecessor at every level.
  uint32_t descend(Txn &Tx, uint64_t Key, uint32_t *Preds) {
    uint32_t Cur = Head;
    for (int L = MaxLevel - 1; L >= 0; --L) {
      uint32_t Next = B::load(Tx, P[Cur].Next[L]);
      while (Next != Pool::Null && B::load(Tx, P[Next].Key) < Key) {
        Cur = Next;
        Next = B::load(Tx, P[Next].Next[L]);
      }
      if (Preds)
        Preds[L] = Cur;
    }
    return B::load(Tx, P[Cur].Next[0]);
  }

  void bumpSize(Txn &Tx, uint64_t Delta) {
    auto &Stripe =
        Stripes[static_cast<size_t>(Tx.threadId()) & (SizeStripes - 1)];
    B::store(Tx, Stripe, B::load(Tx, Stripe) + Delta);
  }

  void forEachLockProbe(typename B::Stm &S, bool &Residue) const {
    for (unsigned I = 0; I < SizeStripes; ++I)
      Residue |= B::cellLocked(S, Stripes[I]);
    for (uint32_t N = 1; N <= P.used(); ++N) {
      Residue |= B::cellLocked(S, P[N].Key);
      Residue |= B::cellLocked(S, P[N].Value);
      Residue |= B::cellLocked(S, P[N].Height);
      for (unsigned L = 0; L < MaxLevel; ++L)
        Residue |= B::cellLocked(S, P[N].Next[L]);
    }
  }

  Pool &P;
  uint32_t Head;
  typename B::template Cell<uint64_t> Stripes[SizeStripes];
};

} // namespace gstm

#endif // GSTM_TMDS_TMSKIPLIST_H
