//===- model/Drift.h - Drift detection over the live guidance metric -----===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the lifecycle loop: the analyzer's accept/reject decision
/// (paper Sec. IV) is a one-shot, offline judgment, but a model that was
/// discriminating when trained can stop discriminating when the workload
/// drifts — at which point gating only costs slowdown (the paper's ssca2
/// result: forcing guidance onto a >= ~50% metric *degrades* execution,
/// Fig. 8). The drift detector recomputes the guidance metric over each
/// fresh model snapshot the online learner produces and drives
/// GuideController::setGatingEnabled:
///
///   * metric's sliding-window mean rises above DisableAbove  -> disarm
///   * it falls back below EnableBelow                        -> re-arm
///
/// The two thresholds are deliberately separated (hysteresis): a metric
/// hovering at the boundary must cross the full gap to flip the gate
/// again, so guidance does not flap on sampling noise. Degenerate
/// snapshots (fewer states than MinStates, or no transitions) count as
/// non-discriminating — an empty model must never keep the gate armed.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_MODEL_DRIFT_H
#define GSTM_MODEL_DRIFT_H

#include "core/Analyzer.h"
#include "core/Tsa.h"

#include <cstdint>
#include <vector>

namespace gstm {

/// Tunables of the drift detector.
struct DriftConfig {
  /// Sliding-window length, in observe() calls.
  size_t Window = 8;
  /// Windowed metric above this disarms guidance (the analyzer's reject
  /// threshold is the natural choice).
  double DisableAbove = 50.0;
  /// Windowed metric must fall below this to re-arm. Must be <=
  /// DisableAbove; the gap is the hysteresis band.
  double EnableBelow = 40.0;
  /// Tfactor used to recompute the guidance metric (match the policy's).
  double Tfactor = 4.0;
  /// Snapshots with fewer states are scored as non-discriminating
  /// (metric 100) rather than analyzed.
  size_t MinStates = 4;
};

/// Sliding-window drift detector. Single-threaded: call observe() from
/// the same control thread that drains the learner, then push the
/// decision into the controller (setGatingEnabled).
class DriftDetector {
public:
  explicit DriftDetector(const DriftConfig &Config = {});

  /// Scores \p Snapshot, folds it into the window, updates the decision
  /// and returns it (true = guidance should be armed).
  bool observe(const Tsa &Snapshot);

  /// Current decision without observing.
  bool guidanceEnabled() const { return Enabled; }

  /// Mean guidance metric over the current window (100 until the first
  /// observation).
  double windowedMetric() const;

  /// Metric computed from the most recent observe() call.
  double lastMetric() const { return Last; }

  /// Number of armed<->disarmed transitions so far.
  uint64_t flips() const { return Flips; }

  size_t observations() const { return Count; }

private:
  DriftConfig Cfg;
  /// Circular metric window; Count trails until the window fills.
  std::vector<double> Ring;
  size_t Next = 0;
  size_t Count = 0;
  double Last = 100.0;
  bool Enabled = true;
  uint64_t Flips = 0;
};

} // namespace gstm

#endif // GSTM_MODEL_DRIFT_H
