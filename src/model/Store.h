//===- model/Store.h - On-disk registry of trained models ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directory-backed registry that lets guided execution warm-start from
/// a model trained in an earlier process. Models are keyed by what makes
/// a TSA transferable — the workload, the thread count, and a hash of the
/// engine/experiment configuration — because a model trained under a
/// different key describes a different state space (the paper trains per
/// application per thread count; Sec. VI).
///
/// Layout under the store root:
///
///   <root>/manifest.json      index of every entry (id, key, sizes)
///   <root>/<id>.model         key-stamped container per entry
///
/// Each container embeds its full key ahead of the serialized model and
/// load() refuses a key mismatch with a typed error, so a renamed or
/// hand-copied file can never silently guide the wrong workload.
/// Publication is crash-safe: save() stages to a temporary in the same
/// directory and renames into place, so readers only ever observe either
/// the old complete file or the new complete file, and the manifest is
/// rewritten the same way.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_MODEL_STORE_H
#define GSTM_MODEL_STORE_H

#include "model/Serialize.h"

#include <string>
#include <string_view>
#include <vector>

namespace gstm {

/// Identity of a stored model: the coordinates under which a TSA is
/// valid. Two runs with equal keys may share a model; any difference
/// means retrain.
struct ModelKey {
  /// Workload name as registered (e.g. "counter-hot", "ssca2").
  std::string Workload;
  /// Worker-thread count the model was trained with. TTS tuples encode
  /// thread ids, so a model does not transfer across thread counts.
  unsigned Threads = 0;
  /// Hash of the engine/experiment configuration that shaped the state
  /// space (see hashConfigString); 0 is a valid hash, not a sentinel.
  uint64_t ConfigHash = 0;

  bool operator==(const ModelKey &O) const {
    return Workload == O.Workload && Threads == O.Threads &&
           ConfigHash == O.ConfigHash;
  }

  /// Filesystem-safe identity, e.g. "vacation-t8-1a2b3c4d5e6f7788".
  /// Characters outside [A-Za-z0-9_-] in the workload name are mapped to
  /// '_' (the embedded key, not the filename, is authoritative).
  std::string id() const;
};

/// FNV-1a 64 of a canonical configuration rendering. Callers fold the
/// fields that change the trained state space (grouping mode, Tfactor,
/// PreemptShift, ...) into one string; equal strings <=> equal hashes.
uint64_t hashConfigString(std::string_view Canonical);

/// One manifest row.
struct StoreEntry {
  ModelKey Key;
  uint64_t NumStates = 0;
  uint64_t NumTransitions = 0;
  /// Container filename relative to the store root.
  std::string File;
};

/// Directory-backed model registry. Instances are cheap views over the
/// root path; all state lives on disk.
class ModelStore {
public:
  /// Uses \p Root as the store directory; created on first save().
  explicit ModelStore(std::string Root) : Root(std::move(Root)) {}

  const std::string &root() const { return Root; }

  /// Serializes \p Model into a key-stamped container, publishes it
  /// atomically (temp + rename) and updates the manifest. Overwrites an
  /// existing entry with the same key.
  ModelIoStatus save(const ModelKey &Key, const Tsa &Model,
                     std::string *Detail = nullptr);

  /// Loads the model stored under \p Key. FileNotFound when the store
  /// has no such entry; KeyMismatch when the container at the key's path
  /// was stamped for a different key (e.g. a file renamed by hand); any
  /// Serialize.h failure otherwise.
  ModelLoadResult load(const ModelKey &Key) const;

  /// True when a container for \p Key exists and its embedded key
  /// matches (content is not validated — use load() for that).
  bool contains(const ModelKey &Key) const;

  /// Manifest contents; empty for a missing or unreadable store.
  std::vector<StoreEntry> list() const;

  /// Absolute container path save()/load() use for \p Key.
  std::string pathFor(const ModelKey &Key) const;

private:
  std::string Root;
};

/// Reads the key stamped into the container at \p Path without decoding
/// the model. Status is Ok with \p KeyOut filled, or the failure.
ModelIoStatus readContainerKey(const std::string &Path, ModelKey &KeyOut,
                               std::string *Detail = nullptr);

} // namespace gstm

#endif // GSTM_MODEL_STORE_H
