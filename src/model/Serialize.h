//===- model/Serialize.h - Versioned, checksummed TSA persistence --------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk persistence for the thread state automaton, the first stage of
/// the model lifecycle (profile once, reuse forever). Two interchange
/// formats share one in-memory decoder surface:
///
///  * A little-endian binary container: magic + format version, a header
///    with the state/edge counts and an FNV-1a 64 checksum of the
///    payload, then the payload itself — every state tuple followed by
///    every state's outbound edge list in the canonical successor order
///    of core/ModelMath.h. Only raw *frequencies* are stored;
///    probabilities are derived on load (they are a pure function of the
///    frequencies, so persisting them could only introduce skew).
///    Because edge order is deterministic, serialize -> load ->
///    serialize is byte-identical, which tests pin.
///
///  * A JSON document (same content, self-describing field names) for
///    interchange with external tooling. TxThreadPair is 32-bit, so JSON
///    double-backed numbers are exact.
///
/// Loading is defensive: every read is bounds-checked, counts are
/// validated against the header, state tuples must be canonical and
/// unique, edge destinations must be in range, and the checksum must
/// match. A corrupt, truncated or version-skewed file yields a typed
/// ModelIoStatus — never UB, never a partially populated model.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_MODEL_SERIALIZE_H
#define GSTM_MODEL_SERIALIZE_H

#include "core/Tsa.h"

#include <optional>
#include <string>
#include <string_view>

namespace gstm {

/// Binary container magic: "GSTMTSA\0" read as a little-endian u64.
inline constexpr uint64_t ModelFileMagic = 0x0041535454534D47ULL;

/// Current binary format version. Bumped on any layout change; readers
/// reject other versions with BadVersion (no silent reinterpretation).
inline constexpr uint32_t ModelFormatVersion = 1;

/// Typed outcome of a model load/save. Every failure mode a hostile or
/// damaged file can exhibit maps to exactly one of these.
enum class ModelIoStatus : uint8_t {
  Ok = 0,
  /// The path does not exist or could not be opened for reading.
  FileNotFound,
  /// The file ends before the structure it promised (header or payload).
  Truncated,
  /// The leading magic is not a GSTM model container.
  BadMagic,
  /// The container is from a different format version.
  BadVersion,
  /// Payload bytes do not hash to the header checksum (bit rot, partial
  /// overwrite, deliberate tamper).
  ChecksumMismatch,
  /// Structurally invalid content behind a valid checksum: counts that
  /// disagree with the header, out-of-range edge destinations,
  /// non-canonical or duplicate state tuples, malformed JSON fields.
  Corrupt,
  /// Filesystem-level write/read failure.
  IoError,
  /// Store-level refusal: the container's embedded key does not match the
  /// requested (workload, threads, config) key (model/Store.h).
  KeyMismatch,
};

/// Stable lower-case name for messages and tool output.
const char *modelIoStatusName(ModelIoStatus Status);

/// Outcome of a load: a status, a human-readable detail for non-Ok
/// statuses, and the model itself on success (and only on success).
struct ModelLoadResult {
  ModelIoStatus Status = ModelIoStatus::Ok;
  /// What exactly was wrong, e.g. "edge 3 of state 7: dest 912 out of
  /// range". Empty on success.
  std::string Detail;
  std::optional<Tsa> Model;

  bool ok() const { return Status == ModelIoStatus::Ok; }
};

/// Encodes \p Model into the binary container format (in memory).
std::string serializeModel(const Tsa &Model);

/// Decodes a binary container produced by serializeModel. Validates
/// structure exhaustively; see ModelIoStatus for the failure taxonomy.
ModelLoadResult deserializeModel(std::string_view Bytes);

/// Writes the binary container to \p Path (directly — for atomic
/// publication into a registry use ModelStore, which stages to a
/// temporary and renames). Returns Ok or IoError (detail in \p Detail
/// when non-null).
ModelIoStatus saveModel(const Tsa &Model, const std::string &Path,
                        std::string *Detail = nullptr);

/// Reads and decodes the binary container at \p Path.
ModelLoadResult loadModel(const std::string &Path);

/// Renders \p Model as a self-describing JSON document (states with
/// commit/abort pairs, edges with raw counts). Probabilities are not
/// emitted — consumers derive them exactly as successors() does.
std::string modelToJson(const Tsa &Model);

/// Parses a document produced by modelToJson. Same validation rigor as
/// the binary path; malformed JSON or out-of-range fields yield Corrupt.
ModelLoadResult modelFromJson(std::string_view Text);

} // namespace gstm

#endif // GSTM_MODEL_SERIALIZE_H
