//===- model/Drift.cpp -----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "model/Drift.h"

#include <cassert>

using namespace gstm;

DriftDetector::DriftDetector(const DriftConfig &Config) : Cfg(Config) {
  assert(Cfg.Window > 0 && "window needs at least one slot");
  assert(Cfg.EnableBelow <= Cfg.DisableAbove &&
         "hysteresis band inverted: EnableBelow must be <= DisableAbove");
  Ring.assign(Cfg.Window, 0.0);
}

bool DriftDetector::observe(const Tsa &Snapshot) {
  double Metric;
  if (Snapshot.numStates() < Cfg.MinStates ||
      Snapshot.numTransitions() == 0) {
    // Too little structure to discriminate — the worst possible score,
    // same verdict the offline analyzer gives an unfit model.
    Metric = 100.0;
  } else {
    AnalyzerConfig AC;
    AC.Tfactor = Cfg.Tfactor;
    AC.MinStates = Cfg.MinStates;
    Metric = analyzeModel(Snapshot, AC).GuidanceMetricPercent;
  }

  Last = Metric;
  Ring[Next] = Metric;
  Next = (Next + 1) % Ring.size();
  if (Count < Ring.size())
    ++Count;

  double Mean = windowedMetric();
  bool Was = Enabled;
  // Hysteresis: inside the (EnableBelow, DisableAbove] band the previous
  // decision stands, so a metric oscillating around one threshold cannot
  // flap the gate.
  if (Enabled && Mean > Cfg.DisableAbove)
    Enabled = false;
  else if (!Enabled && Mean < Cfg.EnableBelow)
    Enabled = true;
  if (Enabled != Was)
    ++Flips;
  return Enabled;
}

double DriftDetector::windowedMetric() const {
  if (Count == 0)
    return 100.0;
  double Sum = 0.0;
  for (size_t I = 0; I < Count; ++I)
    Sum += Ring[I];
  return Sum / static_cast<double>(Count);
}
