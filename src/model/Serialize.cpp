//===- model/Serialize.cpp -------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "model/Serialize.h"

#include "support/Json.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <unordered_set>

using namespace gstm;

const char *gstm::modelIoStatusName(ModelIoStatus Status) {
  switch (Status) {
  case ModelIoStatus::Ok:
    return "ok";
  case ModelIoStatus::FileNotFound:
    return "file-not-found";
  case ModelIoStatus::Truncated:
    return "truncated";
  case ModelIoStatus::BadMagic:
    return "bad-magic";
  case ModelIoStatus::BadVersion:
    return "bad-version";
  case ModelIoStatus::ChecksumMismatch:
    return "checksum-mismatch";
  case ModelIoStatus::Corrupt:
    return "corrupt";
  case ModelIoStatus::IoError:
    return "io-error";
  case ModelIoStatus::KeyMismatch:
    return "key-mismatch";
  }
  return "unknown";
}

namespace {

/// FNV-1a 64 over a byte range. Chosen for the payload checksum because
/// it is trivially portable, has no alignment requirements, and detects
/// the realistic failure modes (bit rot, truncation splice, partial
/// overwrite) this guard exists for; it is not a cryptographic MAC.
uint64_t fnv1a64(const unsigned char *Data, size_t Len) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < Len; ++I) {
    Hash ^= Data[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

void appendU32(std::string &Out, uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<char>((V >> Shift) & 0xffu));
}

void appendU64(std::string &Out, uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<char>((V >> Shift) & 0xffu));
}

/// Bounds-checked little-endian reader over an in-memory buffer.
struct Cursor {
  const unsigned char *Data;
  size_t Size;
  size_t Off = 0;

  size_t remaining() const { return Size - Off; }

  bool readU32(uint32_t &Out) {
    if (remaining() < 4)
      return false;
    Out = 0;
    for (int I = 0; I < 4; ++I)
      Out |= static_cast<uint32_t>(Data[Off + I]) << (8 * I);
    Off += 4;
    return true;
  }

  bool readU64(uint64_t &Out) {
    if (remaining() < 8)
      return false;
    Out = 0;
    for (int I = 0; I < 8; ++I)
      Out |= static_cast<uint64_t>(Data[Off + I]) << (8 * I);
    Off += 8;
    return true;
  }
};

ModelLoadResult fail(ModelIoStatus Status, std::string Detail) {
  ModelLoadResult R;
  R.Status = Status;
  R.Detail = std::move(Detail);
  return R;
}

/// Payload encoder shared by the checksum computation and the writer:
/// states first (commit pair, abort set), then every state's outbound
/// edges in the canonical successor order so equal models always encode
/// to equal bytes.
std::string encodePayload(const Tsa &Model, uint64_t &NumEdgesOut) {
  std::string Payload;
  size_t N = Model.numStates();
  NumEdgesOut = 0;
  for (StateId Id = 0; Id < N; ++Id) {
    const StateTuple &S = Model.state(Id);
    appendU32(Payload, S.Commit);
    appendU32(Payload, static_cast<uint32_t>(S.Aborts.size()));
    for (TxThreadPair P : S.Aborts)
      appendU32(Payload, P);
  }
  for (StateId Id = 0; Id < N; ++Id) {
    std::vector<TsaEdge> Edges = Model.successors(Id);
    appendU32(Payload, static_cast<uint32_t>(Edges.size()));
    for (const TsaEdge &E : Edges) {
      appendU32(Payload, E.Dest);
      appendU64(Payload, E.Count);
    }
    NumEdgesOut += Edges.size();
  }
  return Payload;
}

/// Structured content validated out of either decoder before a Tsa is
/// built, so binary and JSON share one reconstruction + validation path.
struct DecodedModel {
  std::vector<StateTuple> States;
  /// Per-state outbound edges, file order preserved.
  std::vector<std::vector<std::pair<StateId, uint64_t>>> Edges;
  uint64_t DeclaredTransitions = 0;
};

/// Validates \p D (canonical unique states, in-range unique destinations,
/// non-zero counts, declared totals) and reconstructs the Tsa via the
/// intern/addTransition surface. Returns Corrupt with a located detail on
/// the first violation.
ModelLoadResult rebuild(DecodedModel &&D) {
  size_t N = D.States.size();
  Tsa Model;
  for (size_t I = 0; I < N; ++I) {
    StateTuple &S = D.States[I];
    for (size_t A = 0; A + 1 < S.Aborts.size(); ++A)
      if (S.Aborts[A] >= S.Aborts[A + 1])
        return fail(ModelIoStatus::Corrupt,
                    "state " + std::to_string(I) +
                        ": abort set not canonical (must be strictly "
                        "ascending)");
    StateId Id = Model.internState(S);
    if (Id != static_cast<StateId>(I))
      return fail(ModelIoStatus::Corrupt,
                  "state " + std::to_string(I) + ": duplicate of state " +
                      std::to_string(Id));
  }

  uint64_t TotalCount = 0;
  for (size_t From = 0; From < N; ++From) {
    std::unordered_set<StateId> Seen;
    for (size_t E = 0; E < D.Edges[From].size(); ++E) {
      auto [Dest, Count] = D.Edges[From][E];
      std::string Where = "edge " + std::to_string(E) + " of state " +
                          std::to_string(From) + ": ";
      if (Dest >= N)
        return fail(ModelIoStatus::Corrupt,
                    Where + "dest " + std::to_string(Dest) +
                        " out of range (" + std::to_string(N) + " states)");
      if (Count == 0)
        return fail(ModelIoStatus::Corrupt, Where + "zero frequency");
      if (!Seen.insert(Dest).second)
        return fail(ModelIoStatus::Corrupt,
                    Where + "duplicate dest " + std::to_string(Dest));
      uint64_t Sum;
      if (__builtin_add_overflow(TotalCount, Count, &Sum))
        return fail(ModelIoStatus::Corrupt,
                    Where + "frequency sum overflows");
      TotalCount = Sum;
      Model.addTransition(static_cast<StateId>(From), Dest, Count);
    }
  }
  if (TotalCount != D.DeclaredTransitions)
    return fail(ModelIoStatus::Corrupt,
                "declared " + std::to_string(D.DeclaredTransitions) +
                    " transitions, edges sum to " +
                    std::to_string(TotalCount));

  ModelLoadResult R;
  R.Model.emplace(std::move(Model));
  return R;
}

} // namespace

std::string gstm::serializeModel(const Tsa &Model) {
  uint64_t NumEdges = 0;
  std::string Payload = encodePayload(Model, NumEdges);

  std::string Out;
  Out.reserve(8 + 4 + 5 * 8 + Payload.size());
  appendU64(Out, ModelFileMagic);
  appendU32(Out, ModelFormatVersion);
  appendU64(Out, Model.numStates());
  appendU64(Out, NumEdges);
  appendU64(Out, Model.numTransitions());
  appendU64(Out, Payload.size());
  appendU64(Out, fnv1a64(
                     reinterpret_cast<const unsigned char *>(Payload.data()),
                     Payload.size()));
  Out += Payload;
  return Out;
}

ModelLoadResult gstm::deserializeModel(std::string_view Bytes) {
  Cursor C{reinterpret_cast<const unsigned char *>(Bytes.data()),
           Bytes.size()};

  uint64_t Magic;
  if (!C.readU64(Magic))
    return fail(ModelIoStatus::Truncated, "shorter than the magic");
  if (Magic != ModelFileMagic)
    return fail(ModelIoStatus::BadMagic, "not a GSTM model container");
  uint32_t Version;
  if (!C.readU32(Version))
    return fail(ModelIoStatus::Truncated, "ends inside the version field");
  if (Version != ModelFormatVersion)
    return fail(ModelIoStatus::BadVersion,
                "format version " + std::to_string(Version) +
                    ", reader supports " +
                    std::to_string(ModelFormatVersion));

  uint64_t NumStates, NumEdges, TotalTransitions, PayloadSize, Checksum;
  if (!C.readU64(NumStates) || !C.readU64(NumEdges) ||
      !C.readU64(TotalTransitions) || !C.readU64(PayloadSize) ||
      !C.readU64(Checksum))
    return fail(ModelIoStatus::Truncated, "ends inside the header");

  if (C.remaining() < PayloadSize)
    return fail(ModelIoStatus::Truncated,
                "payload promises " + std::to_string(PayloadSize) +
                    " bytes, " + std::to_string(C.remaining()) + " left");
  if (C.remaining() > PayloadSize)
    return fail(ModelIoStatus::Corrupt,
                std::to_string(C.remaining() - PayloadSize) +
                    " trailing bytes after the payload");

  uint64_t Actual = fnv1a64(C.Data + C.Off, PayloadSize);
  if (Actual != Checksum)
    return fail(ModelIoStatus::ChecksumMismatch,
                "payload checksum does not match the header");

  // Counts below are cross-checked against these header fields, so a
  // header that lies about them cannot smuggle a short payload through
  // (the checksum already binds the payload bytes themselves).
  if (NumStates > PayloadSize / 8 + 1)
    return fail(ModelIoStatus::Corrupt,
                "state count exceeds what the payload could hold");

  DecodedModel D;
  D.DeclaredTransitions = TotalTransitions;
  D.States.resize(NumStates);
  for (uint64_t I = 0; I < NumStates; ++I) {
    StateTuple &S = D.States[I];
    uint32_t AbortCount;
    if (!C.readU32(S.Commit) || !C.readU32(AbortCount))
      return fail(ModelIoStatus::Corrupt,
                  "payload ends inside state " + std::to_string(I));
    if (static_cast<uint64_t>(AbortCount) * 4 > C.remaining())
      return fail(ModelIoStatus::Corrupt,
                  "state " + std::to_string(I) + ": abort count " +
                      std::to_string(AbortCount) + " overruns the payload");
    S.Aborts.resize(AbortCount);
    for (uint32_t A = 0; A < AbortCount; ++A)
      C.readU32(S.Aborts[A]); // bounds pre-checked above
  }

  D.Edges.resize(NumStates);
  uint64_t EdgesSeen = 0;
  for (uint64_t From = 0; From < NumStates; ++From) {
    uint32_t EdgeCount;
    if (!C.readU32(EdgeCount))
      return fail(ModelIoStatus::Corrupt,
                  "payload ends at the edge list of state " +
                      std::to_string(From));
    if (static_cast<uint64_t>(EdgeCount) * 12 > C.remaining())
      return fail(ModelIoStatus::Corrupt,
                  "state " + std::to_string(From) + ": edge count " +
                      std::to_string(EdgeCount) + " overruns the payload");
    D.Edges[From].resize(EdgeCount);
    for (uint32_t E = 0; E < EdgeCount; ++E) {
      C.readU32(D.Edges[From][E].first);
      C.readU64(D.Edges[From][E].second);
    }
    EdgesSeen += EdgeCount;
  }
  if (EdgesSeen != NumEdges)
    return fail(ModelIoStatus::Corrupt,
                "header declares " + std::to_string(NumEdges) +
                    " edges, payload holds " + std::to_string(EdgesSeen));
  if (C.remaining() != 0)
    return fail(ModelIoStatus::Corrupt,
                std::to_string(C.remaining()) +
                    " undeclared bytes at the end of the payload");

  return rebuild(std::move(D));
}

ModelIoStatus gstm::saveModel(const Tsa &Model, const std::string &Path,
                              std::string *Detail) {
  std::string Bytes = serializeModel(Model);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Detail)
      *Detail = "cannot open " + Path + " for writing";
    return ModelIoStatus::IoError;
  }
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.flush();
  if (!Out) {
    if (Detail)
      *Detail = "short write to " + Path;
    return ModelIoStatus::IoError;
  }
  return ModelIoStatus::Ok;
}

ModelLoadResult gstm::loadModel(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(ModelIoStatus::FileNotFound, "cannot open " + Path);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (In.bad())
    return fail(ModelIoStatus::IoError, "read error on " + Path);
  return deserializeModel(Bytes);
}

std::string gstm::modelToJson(const Tsa &Model) {
  JsonWriter W;
  W.beginObject();
  W.key("format").value("gstm-tsa");
  W.key("version").value(ModelFormatVersion);
  W.key("total_transitions").value(Model.numTransitions());
  W.key("states").beginArray();
  for (StateId Id = 0; Id < Model.numStates(); ++Id) {
    const StateTuple &S = Model.state(Id);
    W.beginObject();
    W.key("commit").value(static_cast<uint64_t>(S.Commit));
    W.key("aborts").beginArray();
    for (TxThreadPair P : S.Aborts)
      W.value(static_cast<uint64_t>(P));
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("edges").beginArray();
  for (StateId Id = 0; Id < Model.numStates(); ++Id) {
    W.beginArray();
    for (const TsaEdge &E : Model.successors(Id)) {
      W.beginObject();
      W.key("dest").value(static_cast<uint64_t>(E.Dest));
      W.key("count").value(E.Count);
      W.endObject();
    }
    W.endArray();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

namespace {

/// Strict numeric field read: present, a JSON number, integral,
/// non-negative and within \p Max.
bool readBoundedU64(const JsonValue &Obj, std::string_view Name,
                    uint64_t Max, uint64_t &Out) {
  const JsonValue *V = Obj.find(Name);
  if (!V || !V->isNumber() || V->Num < 0 ||
      V->Num != std::floor(V->Num) ||
      V->Num > static_cast<double>(Max))
    return false;
  Out = static_cast<uint64_t>(V->Num);
  return true;
}

bool elementU32(const JsonValue &V, uint32_t &Out) {
  if (!V.isNumber() || V.Num < 0 || V.Num != std::floor(V.Num) ||
      V.Num > static_cast<double>(UINT32_MAX))
    return false;
  Out = static_cast<uint32_t>(V.Num);
  return true;
}

} // namespace

ModelLoadResult gstm::modelFromJson(std::string_view Text) {
  std::optional<JsonValue> Doc = parseJson(Text);
  if (!Doc || !Doc->isObject())
    return fail(ModelIoStatus::Corrupt, "not a JSON object");

  const JsonValue *Format = Doc->find("format");
  if (!Format || Format->K != JsonValue::Kind::String ||
      Format->Str != "gstm-tsa")
    return fail(ModelIoStatus::BadMagic, "format field is not gstm-tsa");
  uint64_t Version;
  if (!readBoundedU64(*Doc, "version", UINT32_MAX, Version))
    return fail(ModelIoStatus::Corrupt, "missing/invalid version field");
  if (Version != ModelFormatVersion)
    return fail(ModelIoStatus::BadVersion,
                "format version " + std::to_string(Version) +
                    ", reader supports " +
                    std::to_string(ModelFormatVersion));

  DecodedModel D;
  // 2^53: the largest count JSON's double-backed numbers carry exactly.
  if (!readBoundedU64(*Doc, "total_transitions", 1ULL << 53,
                      D.DeclaredTransitions))
    return fail(ModelIoStatus::Corrupt,
                "missing/invalid total_transitions field");

  const JsonValue *States = Doc->find("states");
  const JsonValue *Edges = Doc->find("edges");
  if (!States || !States->isArray() || !Edges || !Edges->isArray())
    return fail(ModelIoStatus::Corrupt,
                "states/edges arrays missing or mistyped");
  if (States->Items.size() != Edges->Items.size())
    return fail(ModelIoStatus::Corrupt,
                "states and edges arrays differ in length");

  size_t N = States->Items.size();
  D.States.resize(N);
  for (size_t I = 0; I < N; ++I) {
    const JsonValue &SV = States->Items[I];
    std::string Where = "state " + std::to_string(I) + ": ";
    uint64_t Commit;
    if (!SV.isObject() || !readBoundedU64(SV, "commit", UINT32_MAX, Commit))
      return fail(ModelIoStatus::Corrupt, Where + "invalid commit field");
    D.States[I].Commit = static_cast<TxThreadPair>(Commit);
    const JsonValue *Aborts = SV.find("aborts");
    if (!Aborts || !Aborts->isArray())
      return fail(ModelIoStatus::Corrupt, Where + "invalid aborts field");
    D.States[I].Aborts.resize(Aborts->Items.size());
    for (size_t A = 0; A < Aborts->Items.size(); ++A)
      if (!elementU32(Aborts->Items[A], D.States[I].Aborts[A]))
        return fail(ModelIoStatus::Corrupt,
                    Where + "abort " + std::to_string(A) +
                        " is not a 32-bit pair");
  }

  D.Edges.resize(N);
  for (size_t From = 0; From < N; ++From) {
    const JsonValue &EV = Edges->Items[From];
    std::string Where = "edge list of state " + std::to_string(From) + ": ";
    if (!EV.isArray())
      return fail(ModelIoStatus::Corrupt, Where + "not an array");
    D.Edges[From].resize(EV.Items.size());
    for (size_t E = 0; E < EV.Items.size(); ++E) {
      const JsonValue &Edge = EV.Items[E];
      uint64_t Dest, Count;
      if (!Edge.isObject() ||
          !readBoundedU64(Edge, "dest", UINT32_MAX, Dest) ||
          !readBoundedU64(Edge, "count", 1ULL << 53, Count))
        return fail(ModelIoStatus::Corrupt,
                    Where + "edge " + std::to_string(E) +
                        " has invalid dest/count");
      D.Edges[From][E] = {static_cast<StateId>(Dest), Count};
    }
  }

  return rebuild(std::move(D));
}
