//===- model/Store.cpp -----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "model/Store.h"

#include "core/JsonExport.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <unistd.h>

using namespace gstm;

namespace {

/// Store container magic: "GSTMSTR\0" as a little-endian u64. Distinct
/// from the bare-model magic so the two container kinds cannot be
/// confused (feeding one to the other's reader is BadMagic, not UB).
constexpr uint64_t StoreMagic = 0x0052545354534D47ULL;
constexpr uint32_t StoreVersion = 1;
/// Upper bound on the embedded workload-name length; anything larger is
/// a corrupt length field, not a real name.
constexpr uint32_t MaxWorkloadNameLen = 4096;

void appendU32(std::string &Out, uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<char>((V >> Shift) & 0xffu));
}

void appendU64(std::string &Out, uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<char>((V >> Shift) & 0xffu));
}

struct Cursor {
  const unsigned char *Data;
  size_t Size;
  size_t Off = 0;

  size_t remaining() const { return Size - Off; }

  bool readU32(uint32_t &Out) {
    if (remaining() < 4)
      return false;
    Out = 0;
    for (int I = 0; I < 4; ++I)
      Out |= static_cast<uint32_t>(Data[Off + I]) << (8 * I);
    Off += 4;
    return true;
  }

  bool readU64(uint64_t &Out) {
    if (remaining() < 8)
      return false;
    Out = 0;
    for (int I = 0; I < 8; ++I)
      Out |= static_cast<uint64_t>(Data[Off + I]) << (8 * I);
    Off += 8;
    return true;
  }
};

std::string hexU64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Key-stamped container: wrapper header + the Serialize.h model bytes.
std::string encodeContainer(const ModelKey &Key, const Tsa &Model) {
  std::string Out;
  appendU64(Out, StoreMagic);
  appendU32(Out, StoreVersion);
  appendU32(Out, static_cast<uint32_t>(Key.Workload.size()));
  Out += Key.Workload;
  appendU32(Out, Key.Threads);
  appendU64(Out, Key.ConfigHash);
  Out += serializeModel(Model);
  return Out;
}

/// Parses the wrapper header of \p Bytes into \p KeyOut. On Ok,
/// \p ModelOffset is the start of the embedded model container.
ModelIoStatus parseContainerKey(std::string_view Bytes, ModelKey &KeyOut,
                                size_t &ModelOffset, std::string &Detail) {
  Cursor C{reinterpret_cast<const unsigned char *>(Bytes.data()),
           Bytes.size()};
  uint64_t Magic;
  if (!C.readU64(Magic)) {
    Detail = "shorter than the store magic";
    return ModelIoStatus::Truncated;
  }
  if (Magic != StoreMagic) {
    Detail = "not a GSTM store container";
    return ModelIoStatus::BadMagic;
  }
  uint32_t Version;
  if (!C.readU32(Version)) {
    Detail = "ends inside the store version field";
    return ModelIoStatus::Truncated;
  }
  if (Version != StoreVersion) {
    Detail = "store version " + std::to_string(Version) +
             ", reader supports " + std::to_string(StoreVersion);
    return ModelIoStatus::BadVersion;
  }
  uint32_t NameLen;
  if (!C.readU32(NameLen)) {
    Detail = "ends inside the workload-name length";
    return ModelIoStatus::Truncated;
  }
  if (NameLen > MaxWorkloadNameLen) {
    Detail = "workload-name length " + std::to_string(NameLen) +
             " exceeds the format bound";
    return ModelIoStatus::Corrupt;
  }
  if (C.remaining() < NameLen) {
    Detail = "ends inside the workload name";
    return ModelIoStatus::Truncated;
  }
  KeyOut.Workload.assign(Bytes.data() + C.Off, NameLen);
  C.Off += NameLen;
  uint32_t Threads;
  if (!C.readU32(Threads) || !C.readU64(KeyOut.ConfigHash)) {
    Detail = "ends inside the key fields";
    return ModelIoStatus::Truncated;
  }
  KeyOut.Threads = Threads;
  ModelOffset = C.Off;
  return ModelIoStatus::Ok;
}

std::string describeKey(const ModelKey &K) {
  return K.Workload + " t" + std::to_string(K.Threads) + " cfg " +
         hexU64(K.ConfigHash);
}

/// Writes \p Content to \p FinalPath via a same-directory temporary and
/// rename, so concurrent readers never observe a partial file.
bool publishFile(const std::string &FinalPath, const std::string &Content,
                 std::string &Detail) {
  std::string Tmp =
      FinalPath + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Detail = "cannot open " + Tmp + " for writing";
      return false;
    }
    Out.write(Content.data(), static_cast<std::streamsize>(Content.size()));
    Out.flush();
    if (!Out) {
      Detail = "short write to " + Tmp;
      return false;
    }
  }
  std::error_code Ec;
  std::filesystem::rename(Tmp, FinalPath, Ec);
  if (Ec) {
    Detail = "rename " + Tmp + " -> " + FinalPath + ": " + Ec.message();
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  return true;
}

} // namespace

uint64_t gstm::hashConfigString(std::string_view Canonical) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (char Ch : Canonical) {
    Hash ^= static_cast<unsigned char>(Ch);
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

std::string ModelKey::id() const {
  std::string Safe;
  Safe.reserve(Workload.size());
  for (char Ch : Workload) {
    bool Keep = (Ch >= 'a' && Ch <= 'z') || (Ch >= 'A' && Ch <= 'Z') ||
                (Ch >= '0' && Ch <= '9') || Ch == '_' || Ch == '-';
    Safe.push_back(Keep ? Ch : '_');
  }
  return Safe + "-t" + std::to_string(Threads) + "-" + hexU64(ConfigHash);
}

std::string ModelStore::pathFor(const ModelKey &Key) const {
  return Root + "/" + Key.id() + ".model";
}

ModelIoStatus ModelStore::save(const ModelKey &Key, const Tsa &Model,
                               std::string *Detail) {
  std::error_code Ec;
  std::filesystem::create_directories(Root, Ec);
  if (Ec) {
    if (Detail)
      *Detail = "cannot create store root " + Root + ": " + Ec.message();
    return ModelIoStatus::IoError;
  }

  std::string Local;
  std::string &D = Detail ? *Detail : Local;
  if (!publishFile(pathFor(Key), encodeContainer(Key, Model), D))
    return ModelIoStatus::IoError;

  // Rebuild the manifest row set: drop any row with this id, append the
  // fresh one. The manifest is a convenience index — the containers are
  // authoritative — so a crash between the two renames only costs a
  // stale row, never a wrong model.
  std::vector<StoreEntry> Entries = list();
  std::string Id = Key.id();
  std::erase_if(Entries,
                [&](const StoreEntry &E) { return E.Key.id() == Id; });
  StoreEntry Fresh;
  Fresh.Key = Key;
  Fresh.NumStates = Model.numStates();
  Fresh.NumTransitions = Model.numTransitions();
  Fresh.File = Id + ".model";
  Entries.push_back(std::move(Fresh));

  JsonWriter W;
  W.beginObject();
  W.key("version").value(uint64_t{1});
  W.key("entries").beginArray();
  for (const StoreEntry &E : Entries) {
    W.beginObject();
    W.key("id").value(E.Key.id());
    W.key("workload").value(E.Key.Workload);
    W.key("threads").value(static_cast<uint64_t>(E.Key.Threads));
    // Hex string: a u64 hash can exceed the 2^53 range JSON numbers
    // carry exactly.
    W.key("config_hash").value(hexU64(E.Key.ConfigHash));
    W.key("file").value(E.File);
    W.key("states").value(E.NumStates);
    W.key("transitions").value(E.NumTransitions);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  if (!publishFile(Root + "/manifest.json", W.take(), D))
    return ModelIoStatus::IoError;
  return ModelIoStatus::Ok;
}

ModelLoadResult ModelStore::load(const ModelKey &Key) const {
  std::string Path = pathFor(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    ModelLoadResult R;
    R.Status = ModelIoStatus::FileNotFound;
    R.Detail = "no entry for " + describeKey(Key) + " (" + Path + ")";
    return R;
  }
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (In.bad()) {
    ModelLoadResult R;
    R.Status = ModelIoStatus::IoError;
    R.Detail = "read error on " + Path;
    return R;
  }

  ModelKey Embedded;
  size_t ModelOffset = 0;
  std::string Detail;
  ModelIoStatus St =
      parseContainerKey(Bytes, Embedded, ModelOffset, Detail);
  if (St != ModelIoStatus::Ok) {
    ModelLoadResult R;
    R.Status = St;
    R.Detail = std::move(Detail);
    return R;
  }
  if (!(Embedded == Key)) {
    ModelLoadResult R;
    R.Status = ModelIoStatus::KeyMismatch;
    R.Detail = "container stamped for " + describeKey(Embedded) +
               ", requested " + describeKey(Key);
    return R;
  }
  return deserializeModel(std::string_view(Bytes).substr(ModelOffset));
}

bool ModelStore::contains(const ModelKey &Key) const {
  ModelKey Embedded;
  if (readContainerKey(pathFor(Key), Embedded) != ModelIoStatus::Ok)
    return false;
  return Embedded == Key;
}

std::vector<StoreEntry> ModelStore::list() const {
  std::vector<StoreEntry> Entries;
  std::optional<std::string> Text = readTextFile(Root + "/manifest.json");
  if (!Text)
    return Entries;
  std::optional<JsonValue> Doc = parseJson(*Text);
  if (!Doc || !Doc->isObject())
    return Entries;
  const JsonValue *Rows = Doc->find("entries");
  if (!Rows || !Rows->isArray())
    return Entries;
  for (const JsonValue &Row : Rows->Items) {
    if (!Row.isObject())
      continue;
    StoreEntry E;
    if (const JsonValue *V = Row.find("workload"))
      E.Key.Workload = V->Str;
    if (const JsonValue *V = Row.find("threads"))
      E.Key.Threads = static_cast<unsigned>(V->asU64());
    if (const JsonValue *V = Row.find("config_hash"))
      E.Key.ConfigHash = std::strtoull(V->Str.c_str(), nullptr, 16);
    if (const JsonValue *V = Row.find("file"))
      E.File = V->Str;
    if (const JsonValue *V = Row.find("states"))
      E.NumStates = V->asU64();
    if (const JsonValue *V = Row.find("transitions"))
      E.NumTransitions = V->asU64();
    Entries.push_back(std::move(E));
  }
  return Entries;
}

ModelIoStatus gstm::readContainerKey(const std::string &Path,
                                     ModelKey &KeyOut,
                                     std::string *Detail) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Detail)
      *Detail = "cannot open " + Path;
    return ModelIoStatus::FileNotFound;
  }
  // The wrapper header is tiny; reading the bounded prefix avoids
  // pulling a whole model in just to answer "whose is this".
  std::string Bytes(8 + 4 + 4 + MaxWorkloadNameLen + 4 + 8, '\0');
  In.read(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Bytes.resize(static_cast<size_t>(In.gcount()));
  size_t ModelOffset = 0;
  std::string Local;
  ModelIoStatus St = parseContainerKey(Bytes, KeyOut, ModelOffset,
                                       Detail ? *Detail : Local);
  return St;
}
