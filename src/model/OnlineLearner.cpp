//===- model/OnlineLearner.cpp ---------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "model/OnlineLearner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace gstm;

OnlineLearner::OnlineLearner(unsigned Threads, const LearnerConfig &Config)
    : Cfg(Config), Lanes(Threads ? Threads : 1) {
  assert(Cfg.RingCapacity > 0 && "ring needs at least one slot");
  assert(Cfg.DecayFactor > 0.0 && Cfg.DecayFactor <= 1.0 &&
         "decay factor must be in (0, 1]");
  for (Lane &L : Lanes) {
    L.Slots.resize(Cfg.RingCapacity);
    // First-use abort vectors would otherwise allocate on the commit
    // path; give every slot a little capacity up front.
    for (Slot &S : L.Slots)
      S.Tuple.Aborts.reserve(8);
  }
}

void OnlineLearner::observeTuple(ThreadId Thread, uint64_t Seq,
                                 const StateTuple &Tuple) {
  assert(static_cast<size_t>(Thread) < Lanes.size() &&
         "thread id outside the lanes allocated at construction");
  Lane &L = Lanes[Thread];
  L.Observed.fetch_add(1, std::memory_order_relaxed);
  uint64_t Head = L.Head.load(std::memory_order_relaxed);
  uint64_t Tail = L.Tail.load(std::memory_order_acquire);
  if (Head - Tail >= L.Slots.size()) {
    // Backpressure by omission: the drainer is behind, and stalling a
    // commit to wait for it would put a lock back on the path the whole
    // design keeps lock-free. Sample loss only slows learning.
    L.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot &S = L.Slots[Head % L.Slots.size()];
  S.Seq = Seq;
  S.Tuple.Commit = Tuple.Commit;
  // assign() reuses the slot vector's capacity — allocation-free once
  // the slot has seen an abort set this large before.
  S.Tuple.Aborts.assign(Tuple.Aborts.begin(), Tuple.Aborts.end());
  // Publish the slot to the drainer *after* its contents are written.
  L.Head.store(Head + 1, std::memory_order_release);
}

StateId OnlineLearner::internLocal(const StateTuple &S) {
  auto It = Index.find(S);
  if (It != Index.end())
    return It->second;
  StateId Id = static_cast<StateId>(States.size());
  States.push_back(S);
  Index.emplace(S, Id);
  Weights.emplace_back();
  return Id;
}

size_t OnlineLearner::drain() {
  Batch.clear();
  for (Lane &L : Lanes) {
    uint64_t Tail = L.Tail.load(std::memory_order_relaxed);
    uint64_t Head = L.Head.load(std::memory_order_acquire);
    for (uint64_t I = Tail; I != Head; ++I)
      Batch.push_back(L.Slots[I % L.Slots.size()]);
    // Release the consumed slots back to the producer only after the
    // copies above are complete.
    L.Tail.store(Head, std::memory_order_release);
  }
  if (Batch.empty())
    return 0;

  // Per-thread buffering scrambles global order; the controller's dense
  // formation sequence restores it, so the transition chain replayed
  // here matches what a single serialized observer would have seen
  // (minus dropped samples, which leave a gap but no wrong edge order).
  std::sort(Batch.begin(), Batch.end(),
            [](const Slot &A, const Slot &B) { return A.Seq < B.Seq; });

  for (const Slot &S : Batch) {
    StateId Cur = internLocal(S.Tuple);
    if (LastId != UnknownState)
      Weights[LastId][Cur] += 1.0;
    LastId = Cur;
  }
  DrainedCount += Batch.size();
  return Batch.size();
}

void OnlineLearner::decay() {
  for (auto &EdgeMap : Weights) {
    for (auto It = EdgeMap.begin(); It != EdgeMap.end();) {
      It->second *= Cfg.DecayFactor;
      if (It->second < Cfg.PruneBelow)
        It = EdgeMap.erase(It);
      else
        ++It;
    }
  }
  ++Epochs;
}

Tsa OnlineLearner::snapshotModel() const {
  Tsa Model;
  for (const StateTuple &S : States)
    Model.internState(S);
  for (StateId From = 0; From < Weights.size(); ++From) {
    for (const auto &[Dest, Weight] : Weights[From]) {
      // Quantize to integer frequencies. The scale cancels out of every
      // probability ratio; edges that decayed to less than half a
      // quantum vanish from the snapshot.
      auto Count = static_cast<uint64_t>(
          std::llround(Weight * Cfg.CountScale));
      if (Count > 0)
        Model.addTransition(From, Dest, Count);
    }
  }
  return Model;
}

std::shared_ptr<const GuidedPolicy>
OnlineLearner::compilePolicy(double Tfactor) const {
  return std::make_shared<const GuidedPolicy>(snapshotModel(), Tfactor);
}

LearnerStats OnlineLearner::stats() const {
  LearnerStats S;
  for (const Lane &L : Lanes) {
    S.Observed += L.Observed.load(std::memory_order_relaxed);
    S.Dropped += L.Dropped.load(std::memory_order_relaxed);
  }
  S.Drained = DrainedCount;
  S.States = States.size();
  for (const auto &EdgeMap : Weights)
    S.Edges += EdgeMap.size();
  S.DecayEpochs = Epochs;
  return S;
}
