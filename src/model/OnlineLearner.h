//===- model/OnlineLearner.h - Commit-time incremental TSA learning ------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online half of the model lifecycle: instead of freezing the TSA after
/// offline profiling, the learner ingests the guided run's own commit
/// stream and re-estimates transition frequencies continuously, so the
/// model can track a drifting workload.
///
/// Hot-path discipline mirrors stm/StatsShard.h: the committing worker
/// (the only writer of its lane) appends the observed tuple to a
/// per-thread single-producer/single-consumer ring — two relaxed-ish
/// atomic ops and a buffer copy, no locks, no shared cache line with
/// other producers. When a ring is full the observation is *dropped* and
/// counted; learning tolerates sample loss, the commit path must never
/// block (TtsSink contract).
///
/// A control thread periodically drain()s the rings off the hot path.
/// Tuples carry the dense formation sequence number stamped by
/// GuideController, so the drain merges all lanes and replays them in
/// true formation order before forming transitions — per-thread buffering
/// does not scramble the chain the TSA is built from. Edge weights are
/// doubles aged by decay() (exponential forgetting: each epoch multiplies
/// every weight by the decay factor, so recent behavior dominates with an
/// effective horizon of 1/(1-factor) epochs). snapshotModel() quantizes
/// the weights into a fresh immutable Tsa, and compilePolicy() wraps it
/// for GuideController::publishPolicy — the atomically swapped snapshot
/// readers consume without locking.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_MODEL_ONLINELEARNER_H
#define GSTM_MODEL_ONLINELEARNER_H

#include "core/GuideController.h"
#include "core/GuidedPolicy.h"
#include "core/Tsa.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace gstm {

/// Tunables of the online learner.
struct LearnerConfig {
  /// Slots per per-thread ingest ring. A full ring drops (and counts)
  /// new observations until the drainer catches up.
  size_t RingCapacity = 4096;
  /// Multiplier applied to every edge weight per decay() epoch, in
  /// (0, 1]; 1.0 disables forgetting (pure accumulation).
  double DecayFactor = 0.9;
  /// Weights below this after decay are pruned so long-dead edges do not
  /// accumulate without bound.
  double PruneBelow = 1e-3;
  /// Scale used by snapshotModel() to quantize double weights into the
  /// Tsa's integer frequencies (probabilities are ratios, so the scale
  /// cancels; it only sets the rounding resolution).
  double CountScale = 1024.0;
};

/// Counters describing learner activity. Exact only when workers have
/// quiesced.
struct LearnerStats {
  /// Tuples offered by the commit path.
  uint64_t Observed = 0;
  /// Tuples rejected because a ring was full.
  uint64_t Dropped = 0;
  /// Tuples consumed by drain() so far.
  uint64_t Drained = 0;
  /// States interned by the accumulator.
  uint64_t States = 0;
  /// Directed edges currently carrying weight.
  uint64_t Edges = 0;
  /// decay() epochs applied.
  uint64_t DecayEpochs = 0;
};

/// Incremental TSA estimator fed by GuideController's TtsSink hook.
///
/// Concurrency contract: observeTuple() is called concurrently by worker
/// threads, each writing only its own lane. drain(), decay(),
/// snapshotModel(), compilePolicy() and stats() must be called from one
/// control thread (they are not synchronized against each other).
class OnlineLearner : public TtsSink {
public:
  /// \p Threads lanes are allocated up front; ThreadIds seen by
  /// observeTuple must be < Threads.
  OnlineLearner(unsigned Threads, const LearnerConfig &Config = {});

  // TtsSink: wait-free append to the caller's lane (or counted drop).
  void observeTuple(ThreadId Thread, uint64_t Seq,
                    const StateTuple &Tuple) override;

  /// Consumes every buffered observation, replays them in formation
  /// order (Seq) and folds the transitions into the edge weights.
  /// Returns the number of tuples consumed.
  size_t drain();

  /// Applies one exponential-forgetting epoch to all edge weights and
  /// prunes the ones that decayed away.
  void decay();

  /// Quantizes the current weights into an immutable Tsa snapshot.
  Tsa snapshotModel() const;

  /// snapshotModel() compiled into a policy ready for
  /// GuideController::publishPolicy.
  std::shared_ptr<const GuidedPolicy>
  compilePolicy(double Tfactor) const;

  LearnerStats stats() const;

private:
  struct Slot {
    uint64_t Seq = 0;
    StateTuple Tuple;
  };

  /// One SPSC lane. Head is bumped only by the owning worker, Tail only
  /// by the drainer; both are plain indexes into a fixed slot array.
  /// Padded so two lanes never share a cache line (same reasoning as the
  /// telemetry shards).
  struct alignas(64) Lane {
    std::vector<Slot> Slots;
    std::atomic<uint64_t> Head{0};
    std::atomic<uint64_t> Tail{0};
    std::atomic<uint64_t> Dropped{0};
    std::atomic<uint64_t> Observed{0};
  };

  StateId internLocal(const StateTuple &S);

  LearnerConfig Cfg;
  std::vector<Lane> Lanes;

  // Accumulator state (control-thread only).
  std::vector<StateTuple> States;
  std::unordered_map<StateTuple, StateId, StateTupleHash> Index;
  /// Weights[s]: dest -> EWMA-aged observation weight.
  std::vector<std::unordered_map<StateId, double>> Weights;
  /// Last state of the replayed chain, carried across drains so the
  /// transition spanning two drain batches is not lost.
  StateId LastId = UnknownState;
  uint64_t DrainedCount = 0;
  uint64_t Epochs = 0;
  /// Merge scratch reused across drains.
  std::vector<Slot> Batch;
};

} // namespace gstm

#endif // GSTM_MODEL_ONLINELEARNER_H
