//===- engine/Epoch.h - Per-thread epoch quiescence ----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based quiescence for the engine family (zardoshti-style
/// `epochs.h` lineage). Every transaction attempt enters the current
/// global epoch before touching shared state and leaves it on
/// commit/abort; `quiesce()` advances the global epoch and waits until no
/// thread is still inside an older one. The runtimes use it to give
/// harness code (residue checks, table reconfiguration, teardown) a
/// point at which no attempt from before the call can still be mid-flight
/// with locks or in-place writes outstanding.
///
/// The cost on the attempt path is two stores into a thread-private
/// cache line; quiesce() is the only scanning (and only blocking) side.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_EPOCH_H
#define GSTM_ENGINE_EPOCH_H

#include "support/Ids.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>

namespace gstm {

/// Per-thread epoch slots plus a global epoch counter. One instance per
/// engine runtime; thread slots are indexed by worker ThreadId.
class EpochManager {
public:
  static constexpr size_t MaxThreads = 64;

  /// Marks \p Thread as active in the current global epoch. Called at
  /// attempt begin; must be paired with exit().
  void enter(ThreadId Thread) {
    assert(Thread < MaxThreads && "thread id out of epoch range");
    Slots[Thread].E.store(Global.load(std::memory_order_acquire),
                          std::memory_order_release);
    // Order the slot publication before the attempt's subsequent shared
    // loads so a concurrent quiesce() scan cannot miss an attempt that
    // then observes pre-quiesce state.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Marks \p Thread as quiescent. Called at attempt end (commit or
  /// abort), after all locks are released and undo is replayed.
  void exit(ThreadId Thread) {
    assert(Thread < MaxThreads && "thread id out of epoch range");
    Slots[Thread].E.store(0, std::memory_order_release);
  }

  /// True when \p Thread is currently inside an attempt.
  bool active(ThreadId Thread) const {
    return Slots[Thread].E.load(std::memory_order_acquire) != 0;
  }

  /// Advances the global epoch and blocks until every thread that was
  /// active in an older epoch has exited (or re-entered in the new one).
  /// Threads entering after the advance do not block the caller.
  void quiesce() {
    uint64_t Target =
        Global.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (size_t I = 0; I < MaxThreads; ++I) {
      unsigned Spins = 0;
      for (;;) {
        uint64_t E = Slots[I].E.load(std::memory_order_acquire);
        if (E == 0 || E >= Target)
          break;
        if (++Spins >= 64) {
          std::this_thread::yield();
          Spins = 0;
        }
      }
    }
  }

  /// Number of completed quiesce() rounds plus one (exposed for tests).
  uint64_t currentEpoch() const {
    return Global.load(std::memory_order_acquire);
  }

private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> E{0};
  };

  /// Starts at 1 so an active slot is never 0 (0 = quiescent).
  // stm-order: pair(Global) acquire-load release-store
  std::atomic<uint64_t> Global{1};
  // stm-order: pair(Slots) acquire-load release-store
  Slot Slots[MaxThreads];
};

} // namespace gstm

#endif // GSTM_ENGINE_EPOCH_H
