//===- engine/Engines.h - The policy-templated engine family -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the engine family: include this to get every
/// policy plus the name registry the tools use to spell engines on the
/// command line. The hand-written TL2 (src/stm) and LibTm (src/libtm)
/// runtimes are the other members of the family — they share the
/// executor, clock, ring, stats, and observer surfaces but keep their
/// own descriptors; see DESIGN.md §4i for the full matrix.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_ENGINES_H
#define GSTM_ENGINE_ENGINES_H

#include "engine/OrecEager.h"
#include "engine/Tlrw.h"
#include "engine/TwoPl.h"

#include <type_traits>

namespace gstm {

/// Command-line names of the policy-templated engines, in the order the
/// tools enumerate them.
inline constexpr const char *EngineFamilyNames[] = {
    OrecEagerPolicy::Name, // "orec-eager"
    TlrwPolicy::Name,      // "tlrw"
    TwoPlPolicy::Name,     // "2pl-undo"
};

/// Applies \p Fn to each policy type (as a std::type_identity tag), for
/// code that iterates the family generically:
/// `forEachEnginePolicy([&](auto Tag) {
///    using Policy = typename decltype(Tag)::type; ... });`
template <typename FnT> void forEachEnginePolicy(FnT &&Fn) {
  Fn(std::type_identity<OrecEagerPolicy>{});
  Fn(std::type_identity<TlrwPolicy>{});
  Fn(std::type_identity<TwoPlPolicy>{});
}

} // namespace gstm

#endif // GSTM_ENGINE_ENGINES_H
