//===- engine/TxnExecutor.h - Shared transaction retry loop --------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retry loop every engine in the family shares. Before this header
/// existed, `Tl2Txn::run` and `LibTxn::run` each hand-rolled the same
/// machinery — start gate, contention-manager hooks, attempt-latency
/// tracking, abort catch, backoff, scheduler perturbation — and the two
/// copies had already drifted (LibTm lacked contention-manager support
/// entirely). TxnExecutor is the single CRTP implementation; a descriptor
/// derives from `TxnExecutor<Self>` and provides:
///
///   stm()                 - the runtime, exposing gate(),
///                           contentionManager(), and config() with
///                           Backoff / PreemptShift / TrackAttemptLatency
///   shard()               - this thread's StatsShard*
///   threadId()            - the worker's ThreadId
///   begin(TxId)           - reset per-attempt state, sample rv
///   commitOrThrow(uint32_t) - commit or throw TxAbortException
///   opensCount()          - locations the attempt opened (CM currency)
///
/// The loop's contract with commitOrThrow/abort paths: on abort the
/// descriptor must have already rolled back (undo, lock release) and
/// reported the event before throwing — the executor only times, backs
/// off, and retries. The protected LastEnemy/LastEnemyKnown/LastOpens
/// fields are what the descriptor's abort path records for the contention
/// manager.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_TXNEXECUTOR_H
#define GSTM_ENGINE_TXNEXECUTOR_H

#include "stm/Contention.h"
#include "stm/Observer.h"
#include "stm/StatsShard.h"
#include "support/Ids.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace gstm {

/// Internal control-flow token thrown on transaction abort and caught by
/// TxnExecutor::run's retry loop. Never escapes the STM; user code must
/// not catch it.
struct TxAbortException {};

/// Retry back-off policy applied after an abort (when no contention
/// manager is installed; an installed manager overrides it).
enum class BackoffKind : uint8_t {
  /// Retry immediately.
  None,
  /// Yield the CPU once; avoids burning a scheduling quantum re-aborting
  /// against a descheduled lock holder (we run more threads than cores).
  Yield,
  /// Exponentially growing sleep, capped.
  Exponential,
};

/// CRTP base implementing the engine-family retry loop. See the file
/// comment for the Derived contract.
template <typename Derived> class TxnExecutor {
public:
  /// Executes \p Body transactionally at static site \p Tx, retrying on
  /// conflict until the transaction commits. \p Body receives the derived
  /// descriptor and must funnel every shared access through it.
  template <typename BodyFn> void run(TxId Tx, BodyFn &&Body) {
    Derived &D = derived();
    ContentionManager *Cm = D.stm().contentionManager();
    if (Cm)
      Cm->onTxBegin(D.threadId());
    const bool TrackLatency = D.stm().config().TrackAttemptLatency;
    uint32_t Attempts = 0;
    for (;;) {
      if (StartGate *G = D.stm().gate())
        G->onTxStart(D.threadId(), Tx);
      std::chrono::steady_clock::time_point AttemptStart;
      if (TrackLatency)
        AttemptStart = std::chrono::steady_clock::now();
      D.begin(Tx);
      try {
        Body(D);
        D.commitOrThrow(Attempts);
        if (TrackLatency)
          recordAttemptLatency(AttemptStart);
        if (Cm)
          Cm->onCommit(D.threadId(), D.opensCount());
        return;
      } catch (const TxAbortException &) {
        // Cause already reported; locks already released.
        if (TrackLatency)
          recordAttemptLatency(AttemptStart);
      }
      ++Attempts;
      if (Cm) {
        uint64_t Ns = Cm->onAbort(D.threadId(), LastEnemy, LastEnemyKnown,
                                  Attempts, LastOpens);
        if (Ns > 0)
          std::this_thread::sleep_for(std::chrono::nanoseconds(Ns));
      } else {
        backoff(Attempts);
      }
    }
  }

protected:
  explicit TxnExecutor(ThreadId Thread)
      : PreemptLcg(0x2545f4914f6cdd1dULL ^
                   (uint64_t{Thread} * 0x9e3779b97f4a7c15ULL)) {}

  /// Scheduler perturbation: when the config's PreemptShift is non-zero,
  /// yields the CPU with probability 2^-PreemptShift per call. On a
  /// machine with fewer cores than worker threads, transactions otherwise
  /// execute back-to-back within a scheduling quantum and almost never
  /// overlap, which would suppress the conflicts/aborts whose
  /// non-determinism the paper studies; random yield points restore
  /// multicore-like interleaving density (see DESIGN.md, substitutions).
  void maybePreempt() {
    unsigned Shift = derived().stm().config().PreemptShift;
    if (Shift == 0)
      return;
    PreemptLcg = PreemptLcg * 6364136223846793005ULL +
                 1442695040888963407ULL;
    if (((PreemptLcg >> 33) & ((uint64_t{1} << Shift) - 1)) == 0)
      std::this_thread::yield();
  }

  void backoff(uint32_t Attempts) {
    switch (derived().stm().config().Backoff) {
    case BackoffKind::None:
      return;
    case BackoffKind::Yield:
      std::this_thread::yield();
      return;
    case BackoffKind::Exponential: {
      unsigned Shift = std::min(Attempts, 10u);
      std::this_thread::sleep_for(std::chrono::nanoseconds(50ull << Shift));
      return;
    }
    }
  }

  void recordAttemptLatency(std::chrono::steady_clock::time_point Start) {
    derived().shard()->recordAttempt(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count()));
  }

  /// Conflicting transaction of the most recent abort and the aborted
  /// attempt's read+write set size, recorded by the derived abort path
  /// for the contention manager.
  TxThreadPair LastEnemy = 0;
  bool LastEnemyKnown = false;
  uint64_t LastOpens = 0;

private:
  Derived &derived() { return static_cast<Derived &>(*this); }
  const Derived &derived() const {
    return static_cast<const Derived &>(*this);
  }

  uint64_t PreemptLcg;
};

} // namespace gstm

#endif // GSTM_ENGINE_TXNEXECUTOR_H
