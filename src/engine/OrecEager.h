//===- engine/OrecEager.h - Orec-based eager undo-log engine -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The orec-eager policy (zardoshti `stm_algs/orec_eager.h` lineage):
/// invisible optimistic reads against TL2-style ownership records, but
/// writes acquire the orec at *encounter time* and go in place, with the
/// chassis undo log holding the displaced values. Commit therefore has no
/// writeback — it revalidates the read set (reads are invisible, so a
/// commit that landed after one of our reads must be caught here),
/// stamps a new version from the shared clock, and releases the held
/// orecs at that version.
///
/// Safety argument (the undo-on-abort visibility story, DESIGN.md §4i):
/// an in-place write is only visible through a word whose orec we hold
/// exclusively. Readers who hit the orec abort (or, pre-lock, validated
/// a version <= their rv taken *before* our acquisition); so uncommitted
/// values can only be observed by their own transaction. On abort the
/// chassis replays the undo log *before* the orecs are released
/// (onAbortCleanup order below) — by the time any other thread can get
/// past the orec, the old values are back and the orec still carries its
/// pre-lock version.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_ORECEAGER_H
#define GSTM_ENGINE_ORECEAGER_H

#include "engine/Core.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace gstm {

struct OrecEagerPolicy {
  using Table = LockTable;
  static constexpr const char *Name = "orec-eager";
  static constexpr unsigned DefaultTableBits = 20;

  /// An orec this attempt locked at encounter time, with its pre-lock
  /// word for release-on-abort and self-read validation.
  struct Held {
    size_t StripeIndex;
    uint64_t PreviousWord;
  };

  struct TxnState {
    /// Orecs of invisible reads, revalidated at commit.
    MiniVector<const std::atomic<uint64_t> *, 64> ReadSet;
    /// Encounter-time write locks; sorted by index at commit so the
    /// validation slow pass can binary-search self-held orecs.
    MiniVector<Held, 32> Acquired;

    void clear() {
      ReadSet.clear();
      Acquired.clear();
    }
    size_t opens() const { return ReadSet.size(); }
  };

  template <typename TxnT> static void onBegin(TxnT &) {}

  template <typename TxnT>
  static uint64_t load(TxnT &Tx, const std::atomic<uint64_t> &Word) {
    auto &S = Tx.rt();
    std::atomic<uint64_t> &Stripe = S.table().stripeFor(&Word);
    uint64_t Pre = Stripe.load(std::memory_order_acquire);
    StripeState PreState = LockTable::decode(Pre);
    if (PreState.Locked) {
      // A self-held orec is safe to read through directly: its version
      // was validated against rv at acquisition and nobody else can
      // touch it. Reported as buffered — the value may be our own
      // uncommitted in-place write.
      if (PreState.Owner == Tx.self()) {
        uint64_t Own = Word.load(std::memory_order_relaxed);
        Tx.noteLoad(&Word, Own, /*Version=*/0, /*Buffered=*/true);
        return Own;
      }
      Tx.abortOnOwner(PreState.Owner, AbortSite::Read);
    }

    uint64_t Value = Word.load(std::memory_order_acquire);

    uint64_t Post = Stripe.load(std::memory_order_acquire);
    if (Post != Pre) {
      StripeState PostState = LockTable::decode(Post);
      if (PostState.Locked)
        Tx.abortOnOwner(PostState.Owner, AbortSite::Read);
      Tx.abortOnVersion(PostState.Version, AbortSite::Read);
    }
    if (PreState.Version > Tx.rv())
      Tx.abortOnVersion(PreState.Version, AbortSite::Read);

    Tx.state().ReadSet.push_back(&Stripe);
    Tx.noteLoad(&Word, Value, PreState.Version, /*Buffered=*/false);
    return Value;
  }

  template <typename TxnT>
  static void store(TxnT &Tx, std::atomic<uint64_t> &Word,
                    uint64_t Value) {
    auto &S = Tx.rt();
    TxThreadPair Self = Tx.self();
    std::atomic<uint64_t> &Stripe = S.table().stripeFor(&Word);
    uint64_t Old = Stripe.load(std::memory_order_relaxed);
    for (;;) {
      StripeState OldState = LockTable::decode(Old);
      if (OldState.Locked) {
        if (OldState.Owner == Self)
          break; // orec already ours from an earlier write
        Tx.abortOnOwner(OldState.Owner, AbortSite::LockAcquire);
      }
      // Acquiring an orec newer than our snapshot would let the attempt
      // mix pre- and post-conflict state; abort instead.
      if (OldState.Version > Tx.rv())
        Tx.abortOnVersion(OldState.Version, AbortSite::LockAcquire);
      if (Stripe.compare_exchange_weak(Old, LockTable::encodeLocked(Self),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        size_t Index = S.table().indexFor(&Word);
        Tx.state().Acquired.push_back(Held{Index, Old});
        Tx.noteLockAcquire(Index);
        break;
      }
    }
    Tx.noteStore(&Word, Value);
    Tx.undoLog().emplace_back(&Word,
                              Word.load(std::memory_order_relaxed));
    Word.store(Value, std::memory_order_release);
  }

  template <typename TxnT> static uint64_t commit(TxnT &Tx) {
    auto &S = Tx.rt();
    TxnState &St = Tx.state();

    // Read-only: every read was validated against rv when it happened,
    // so the snapshot is consistent and nothing needs publishing.
    if (St.Acquired.empty())
      return 0;

    // validate's slow pass binary-searches Acquired by orec address;
    // encounter-time acquisition happens in program order, so normalize.
    std::sort(St.Acquired.begin(), St.Acquired.end(),
              [](const Held &A, const Held &B) {
                return A.StripeIndex < B.StripeIndex;
              });

    const EngineConfig &Cfg = S.config();
    uint64_t Wv;
    if (Cfg.SingleFenceCommit) {
      // Single-fence ordering (the TL2 lineage's SINGLEFENCEOPT): the
      // seq_cst fence globally orders our encounter-time orec CASes
      // before the validation loads — without it, store-buffering lets
      // two cyclically conflicting writers each miss the other's lock
      // and both commit (see the matching fence in Tl2Txn). Validation
      // is unconditional here: the wv==rv+1 elision reasons about the
      // clock advance sitting between acquisition and validation, and
      // this ordering moves the advance after it.
      // stm-order: fence(seq_cst) before(validate) label(OrecEagerPolicy::commit single-fence commit)
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!Cfg.Fault.SkipReadValidation)
        validate(Tx);
      std::atomic_thread_fence(std::memory_order_release);
      Wv = S.clock().advance();
      // Publish attribution before the new version becomes visible so a
      // victim observing Wv can already resolve the committer.
      S.commitRing().record(Wv, Tx.self());
      for (const Held &L : St.Acquired)
        S.table().stripeAt(L.StripeIndex).store(
            LockTable::encodeVersion(Wv), std::memory_order_relaxed);
    } else {
      Wv = S.clock().advance();
      // TL2 elision, sound in eager mode too: wv == rv+1 means no other
      // transaction committed between our rv sample and our advance,
      // and only commits can change an orec version out from under a
      // validated read (aborting writers restore the pre-lock word).
      if (Wv != Tx.rv() + 1 && !Cfg.Fault.SkipReadValidation)
        validate(Tx);
      S.commitRing().record(Wv, Tx.self());
      for (const Held &L : St.Acquired)
        S.table().stripeAt(L.StripeIndex).store(
            LockTable::encodeVersion(Wv), std::memory_order_release);
    }
    St.Acquired.clear();
    Tx.undoLog().clear();
    return Wv;
  }

  /// Abort rollback: replay the undo log while the orecs are still held
  /// (so nobody can observe the dirty values going away), then restore
  /// the pre-lock orec words.
  template <typename TxnT> static void onAbortCleanup(TxnT &Tx) {
    Tx.undoWrites();
    auto &S = Tx.rt();
    TxnState &St = Tx.state();
    for (auto It = St.Acquired.rbegin(); It != St.Acquired.rend(); ++It)
      S.table().stripeAt(It->StripeIndex)
          .store(It->PreviousWord, std::memory_order_release);
    St.Acquired.clear();
  }

private:
  /// Commit-time read-set revalidation, structured exactly like
  /// Tl2Txn::validateReadSet: a branch-free OR-reduction fast pass, and
  /// an attribution slow pass only when something is locked or too new.
  /// Self-held orecs validate against their pre-lock word.
  template <typename TxnT> static void validate(TxnT &Tx) {
    TxnState &St = Tx.state();
    const std::atomic<uint64_t> *const *Stripes = St.ReadSet.data();
    const size_t N = St.ReadSet.size();
    const uint64_t Snapshot = Tx.rv();
    uint64_t Suspicious = 0;
    for (size_t I = 0; I < N; ++I) {
      uint64_t W = Stripes[I]->load(std::memory_order_acquire);
      Suspicious |=
          (W & 1) | static_cast<uint64_t>((W >> 1) > Snapshot);
    }
    if (Suspicious == 0)
      return;

    auto &S = Tx.rt();
    TxThreadPair Self = Tx.self();
    for (const std::atomic<uint64_t> *Stripe : St.ReadSet) {
      uint64_t Word = Stripe->load(std::memory_order_acquire);
      StripeState State = LockTable::decode(Word);
      if (State.Locked) {
        if (State.Owner != Self)
          Tx.abortOnOwner(State.Owner, AbortSite::CommitValidate);
        auto It = std::lower_bound(
            St.Acquired.begin(), St.Acquired.end(), Stripe,
            [&S](const Held &L, const std::atomic<uint64_t> *Ptr) {
              return &S.table().stripeAt(L.StripeIndex) < Ptr;
            });
        assert(It != St.Acquired.end() &&
               &S.table().stripeAt(It->StripeIndex) == Stripe &&
               "self-locked orec missing from the acquired list");
        StripeState PreLock = LockTable::decode(It->PreviousWord);
        if (PreLock.Version > Tx.rv())
          Tx.abortOnVersion(PreLock.Version, AbortSite::CommitValidate);
        continue;
      }
      if (State.Version > Tx.rv())
        Tx.abortOnVersion(State.Version, AbortSite::CommitValidate);
    }
  }
};

/// Engine-family aliases; OrecEagerTxn is a transactional context for
/// stm_lint.
using OrecEagerStm = EngineStm<OrecEagerPolicy>;
using OrecEagerTxn = EngineTxn<OrecEagerPolicy>;

} // namespace gstm

#endif // GSTM_ENGINE_ORECEAGER_H
