//===- engine/Tlrw.h - TLRW-style visible-reader bytelock engine ---------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TLRW policy (Dice & Shavit SPAA'10; zardoshti `tlrw_eager.h`
/// lineage): pessimistic read/write locking over ByteLock entries
/// (engine/ByteLock.h). A reader publishes itself by setting its per
/// thread byte before reading and keeps it set until the transaction
/// ends; a writer claims the exclusive Owner word at encounter time,
/// spin-drains every other reader byte (bounded; timeout = self-abort),
/// and then writes in place with the chassis undo log holding displaced
/// values. Because every read is protected by a held byte for the rest
/// of the attempt, nothing a live transaction observed can change under
/// it — so commit has NO read validation at all; it just stamps held
/// entries with a fresh clock version and releases everything.
///
/// Checker compatibility: unlike stock TLRW, entries keep a version word
/// published from the shared VersionClock, readers sample rv at begin
/// and refuse entries newer than rv (conservative — a stock TLRW reader
/// would block or wait — but it keeps every execution inside the
/// invariant/opacity model the harness checks for all engines, and the
/// engine stays honestly pessimistic: no validation, visible readers,
/// writer-drains-readers).
///
/// Safety argument for undo-on-abort (DESIGN.md §4i): a writer's
/// in-place values sit behind the Owner word; readers that arrive abort
/// on seeing Owner, and readers that were already there are exactly what
/// the drain waited out — so only the owning transaction can observe its
/// own dirty values. Abort replays the undo log *before* dropping Owner.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_TLRW_H
#define GSTM_ENGINE_TLRW_H

#include "engine/Core.h"

#include <atomic>
#include <cassert>
#include <thread>

namespace gstm {

struct TlrwPolicy {
  using Table = ByteLockTable;
  static constexpr const char *Name = "tlrw";
  /// ByteLock entries are 16x a stripe word, so default 16 bits
  /// (8 MiB table) where the orec engines default to 20.
  static constexpr unsigned DefaultTableBits = 16;

  struct TxnState {
    /// Entries where this attempt's reader byte is set.
    MiniVector<ByteLock *, 64> ReadHeld;
    /// Entries where this attempt holds the exclusive Owner word.
    MiniVector<ByteLock *, 32> WriteHeld;

    void clear() {
      ReadHeld.clear();
      WriteHeld.clear();
    }
    size_t opens() const { return ReadHeld.size(); }
  };

  template <typename TxnT> static void onBegin(TxnT &) {}

  template <typename TxnT>
  static uint64_t load(TxnT &Tx, const std::atomic<uint64_t> &Word) {
    auto &S = Tx.rt();
    ByteLock &L = S.table().lockFor(&Word);
    const TxThreadPair SelfPacked = Tx.self();
    const uint64_t SelfOwner = LockTable::encodeLocked(SelfPacked);
    const ThreadId T = Tx.threadId();
    assert(T < ByteLock::MaxReaderSlots && "thread id exceeds reader slots");

    // Read-own-write: an entry we write-own is ours alone; the word may
    // carry our uncommitted in-place value, so report it buffered.
    if (L.Owner.load(std::memory_order_acquire) == SelfOwner) {
      uint64_t Own = Word.load(std::memory_order_relaxed);
      Tx.noteLoad(&Word, Own, /*Version=*/0, /*Buffered=*/true);
      return Own;
    }

    if (L.Readers[T].load(std::memory_order_relaxed) == 0) {
      // First touch: publish the reader byte, then check for a writer —
      // the Dekker handshake with the writer's CAS-then-scan (both
      // sides seq_cst; see ByteLock.h).
      L.Readers[T].store(1, std::memory_order_seq_cst);
      uint64_t OwnerW = L.Owner.load(std::memory_order_seq_cst);
      if (OwnerW != 0) {
        L.Readers[T].store(0, std::memory_order_release);
        Tx.abortOnOwner(LockTable::decode(OwnerW).Owner, AbortSite::Read);
      }
      uint64_t V = L.Version.load(std::memory_order_acquire);
      if (V > Tx.rv()) {
        L.Readers[T].store(0, std::memory_order_release);
        Tx.abortOnVersion(V, AbortSite::Read);
      }
      Tx.state().ReadHeld.push_back(&L);
      uint64_t Value = Word.load(std::memory_order_acquire);
      Tx.noteLoad(&Word, Value, V, /*Buffered=*/false);
      return Value;
    }

    // Re-read under a byte we already hold: no writer can have drained
    // us, so the entry's version (validated <= rv at first touch) and
    // every word under it are stable.
    // stm-lint: allow(O2) our held reader byte excludes writers, so this
    // Version cannot change concurrently — the relaxed re-read observes
    // the same value the first-touch acquire load already synchronized
    // with, and the hot read path skips an unneeded acquire.
    uint64_t V = L.Version.load(std::memory_order_relaxed);
    uint64_t Value = Word.load(std::memory_order_relaxed);
    Tx.noteLoad(&Word, Value, V, /*Buffered=*/false);
    return Value;
  }

  template <typename TxnT>
  static void store(TxnT &Tx, std::atomic<uint64_t> &Word,
                    uint64_t Value) {
    auto &S = Tx.rt();
    ByteLock &L = S.table().lockFor(&Word);
    const uint64_t SelfOwner = LockTable::encodeLocked(Tx.self());
    const ThreadId T = Tx.threadId();

    uint64_t OwnerW = L.Owner.load(std::memory_order_relaxed);
    if (OwnerW != SelfOwner) {
      if (OwnerW != 0)
        Tx.abortOnOwner(LockTable::decode(OwnerW).Owner,
                        AbortSite::LockAcquire);
      uint64_t V = L.Version.load(std::memory_order_acquire);
      if (V > Tx.rv())
        Tx.abortOnVersion(V, AbortSite::LockAcquire);
      uint64_t Expected = 0;
      if (!L.Owner.compare_exchange_strong(Expected, SelfOwner,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed))
        Tx.abortOnOwner(LockTable::decode(Expected).Owner,
                        AbortSite::LockAcquire);
      // Version is stable now that we own the entry; re-check in case a
      // commit slid in between the load above and the CAS.
      V = L.Version.load(std::memory_order_acquire);
      if (V > Tx.rv()) {
        L.Owner.store(0, std::memory_order_release);
        Tx.abortOnVersion(V, AbortSite::LockAcquire);
      }
      // Drain every *other* reader byte before touching data: visible
      // readers are the engine's whole safety story. Bounded spin —
      // a reader keeps its byte for its entire attempt, so give up and
      // self-abort past the bound rather than block unboundedly (the
      // bytes carry no identity, hence abortUnknown). The
      // SkipReaderDrain mutant omits exactly this loop.
      if (!S.config().Fault.SkipReaderDrain) {
        const unsigned Bound = S.config().LockSpinBound;
        for (size_t Slot = 0; Slot < ByteLock::MaxReaderSlots; ++Slot) {
          if (Slot == T)
            continue;
          unsigned Spins = 0;
          while (L.Readers[Slot].load(std::memory_order_seq_cst) != 0) {
            if (++Spins > Bound) {
              L.Owner.store(0, std::memory_order_release);
              Tx.abortUnknown(AbortSite::LockAcquire);
            }
            if ((Spins & 7) == 0)
              std::this_thread::yield();
          }
        }
      }
      Tx.state().WriteHeld.push_back(&L);
      Tx.noteLockAcquire(S.table().indexFor(&Word));
    }

    Tx.noteStore(&Word, Value);
    Tx.undoLog().emplace_back(&Word,
                              Word.load(std::memory_order_relaxed));
    Word.store(Value, std::memory_order_release);
  }

  /// No validation: every read is still protected by a held byte, every
  /// write by the Owner word. Stamp written entries with a fresh version
  /// and release everything.
  template <typename TxnT> static uint64_t commit(TxnT &Tx) {
    auto &S = Tx.rt();
    TxnState &St = Tx.state();
    const ThreadId T = Tx.threadId();

    if (St.WriteHeld.empty()) {
      for (ByteLock *L : St.ReadHeld)
        L->Readers[T].store(0, std::memory_order_release);
      St.ReadHeld.clear();
      return 0;
    }

    uint64_t Wv = S.clock().advance();
    S.commitRing().record(Wv, Tx.self());
    for (ByteLock *L : St.WriteHeld) {
      // Release stores: a reader whose acquire load sees Version == Wv
      // (or Owner == 0) synchronizes with us and sees the in-place data.
      L->Version.store(Wv, std::memory_order_release);
      L->Owner.store(0, std::memory_order_release);
    }
    St.WriteHeld.clear();
    for (ByteLock *L : St.ReadHeld)
      L->Readers[T].store(0, std::memory_order_release);
    St.ReadHeld.clear();
    Tx.undoLog().clear();
    return Wv;
  }

  /// Abort rollback: undo the in-place writes while Owner is still held,
  /// then drop the write locks (versions untouched — nothing committed)
  /// and clear the reader bytes.
  template <typename TxnT> static void onAbortCleanup(TxnT &Tx) {
    Tx.undoWrites();
    TxnState &St = Tx.state();
    const ThreadId T = Tx.threadId();
    for (auto It = St.WriteHeld.rbegin(); It != St.WriteHeld.rend(); ++It)
      (*It)->Owner.store(0, std::memory_order_release);
    St.WriteHeld.clear();
    for (ByteLock *L : St.ReadHeld)
      L->Readers[T].store(0, std::memory_order_release);
    St.ReadHeld.clear();
  }
};

/// Engine-family aliases; TlrwTxn is a transactional context for
/// stm_lint.
using TlrwStm = EngineStm<TlrwPolicy>;
using TlrwTxn = EngineTxn<TlrwPolicy>;

} // namespace gstm

#endif // GSTM_ENGINE_TLRW_H
