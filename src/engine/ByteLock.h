//===- engine/ByteLock.h - TLRW-style reader-writer byte locks -----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The visible-reader lock table behind the TLRW-style engine (Dice &
/// Shavit, SPAA'10 "TLRW: return of the read/write lock"). Where TL2's
/// stripe word packs lock-or-version into one word and keeps readers
/// invisible, a ByteLock spends a cache line per stripe to make readers
/// *visible*: each worker thread owns one byte it sets before reading and
/// clears when its transaction ends. A writer first claims the exclusive
/// Owner word, then spin-drains every other reader byte to zero before
/// touching data — after which no commit-time read validation is needed
/// anywhere in the engine, because nothing a live reader depends on can
/// change under it.
///
/// Layout (one 128-byte entry = two cache lines):
///   Owner   — 0 when free, else the writer's TxThreadPair in
///             LockTable::encodeLocked() encoding (pair << 1 | 1, so a
///             held word is never 0)
///   Version — version of the last commit that wrote any word mapping to
///             this entry; published by the shared VersionClock so the
///             history checkers can validate reads against rv exactly as
///             they do for TL2 stripes
///   Readers — one byte per thread slot
///
/// The reader-vs-writer handshake is a Dekker pattern: readers store
/// their byte then load Owner, writers CAS Owner then load the bytes;
/// both sides use seq_cst on those four accesses so the "both miss each
/// other" interleaving is excluded by the single total order.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_BYTELOCK_H
#define GSTM_ENGINE_BYTELOCK_H

#include "stm/LockTable.h"
#include "support/Ids.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace gstm {

/// One reader-writer byte-lock entry. See the file comment for the
/// protocol; the entry itself is a passive bag of atomics.
struct alignas(128) ByteLock {
  /// Worker-thread slots. Matches StatsShard::MaxThreads with room to
  /// spare; the two-cache-line layout leaves 112 bytes after Owner and
  /// Version.
  static constexpr size_t MaxReaderSlots = 112;

  std::atomic<uint64_t> Owner{0};
  // Readers validate against Version; writers republish it at commit.
  // stm-order: pair(Version) acquire-load release-store
  std::atomic<uint64_t> Version{0};
  std::atomic<uint8_t> Readers[MaxReaderSlots] = {};

  /// True when any thread currently holds the entry in any mode; used by
  /// the harness's post-run residue check.
  bool heldByAnyone() const {
    if (Owner.load(std::memory_order_acquire) != 0)
      return true;
    for (size_t I = 0; I < MaxReaderSlots; ++I)
      if (Readers[I].load(std::memory_order_acquire) != 0)
        return true;
    return false;
  }
};

static_assert(sizeof(ByteLock) == 128, "ByteLock must fill two lines");

/// Fixed-size table of ByteLocks indexed by address hash — the
/// visible-reader analogue of LockTable, sharing its StripeHashKind
/// address mapping so engine families hash identically.
class ByteLockTable {
public:
  explicit ByteLockTable(unsigned Bits = 16,
                         StripeHashKind Hash = StripeHashKind::Mix)
      : BitCount(Bits), Mask((size_t{1} << Bits) - 1), Kind(Hash),
        Entries(new ByteLock[size_t{1} << Bits]) {
    assert(Bits >= 4 && Bits <= 24 && "unreasonable byte-lock table size");
  }

  size_t size() const { return Mask + 1; }

  ByteLock &lockFor(const void *Addr) { return Entries[indexFor(Addr)]; }

  ByteLock &lockAt(size_t Index) {
    assert(Index <= Mask && "byte-lock index out of range");
    return Entries[Index];
  }

  /// Same address-to-index mapping as LockTable::indexFor so the two
  /// table families shard identically under either hash kind.
  size_t indexFor(const void *Addr) const {
    uint64_t Key = reinterpret_cast<uintptr_t>(Addr) >> 3;
    if (Kind == StripeHashKind::Mix) {
      Key ^= Key >> 33;
      Key *= 0xff51afd7ed558ccdULL;
      Key ^= Key >> 29;
      Key *= 0xc4ceb9fe1a85ec53ULL;
      Key ^= Key >> 32;
      return static_cast<size_t>(Key) & Mask;
    }
    return (Key * 0x9e3779b97f4a7c15ULL >> (64 - BitCount)) & Mask;
  }

  StripeHashKind hashKind() const { return Kind; }

private:
  unsigned BitCount;
  size_t Mask;
  StripeHashKind Kind;
  std::unique_ptr<ByteLock[]> Entries;
};

} // namespace gstm

#endif // GSTM_ENGINE_BYTELOCK_H
