//===- engine/TwoPl.h - Two-phase-locking undo-log engine ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 2PL-undo policy: strict two-phase locking over the TL2 stripe
/// table with *exclusive* encounter-time locks for reads AND writes.
/// Nothing is optimistic — there is no read set and no validation,
/// anywhere: once a stripe is held, neither its version nor any word
/// under it can change until we release it, so everything the attempt
/// observed stays true by construction. Writes go in place with the
/// chassis undo log holding displaced values. Deadlock is impossible
/// because a transaction never waits for a lock: a held stripe (or one
/// versioned past rv) means immediate self-abort and retry — no
/// hold-and-wait, hence no cycle (the 2PLSF lineage's "no-wait" flavor).
///
/// Commit stamps stripes that were actually written with a fresh clock
/// version; stripes held only for reading are restored to their
/// pre-lock word, so a pure reader leaves no version trace (and its
/// reads report the pre-lock version <= rv, keeping the checkers'
/// invariant model intact). Read-your-own-write granularity note: lock
/// words are stripe-granular but buffered-ness is *address*-granular —
/// a read of an address this attempt wrote reports Buffered (the value
/// is uncommitted), while a clean address that merely aliases into a
/// held stripe reports the stripe's pre-lock version.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_TWOPL_H
#define GSTM_ENGINE_TWOPL_H

#include "engine/Core.h"

#include <atomic>
#include <cassert>

namespace gstm {

struct TwoPlPolicy {
  using Table = LockTable;
  static constexpr const char *Name = "2pl-undo";
  static constexpr unsigned DefaultTableBits = 20;

  /// A stripe this attempt holds exclusively. Dirty marks stripes with
  /// at least one in-place write (they get the new version at commit;
  /// clean ones get their pre-lock word back).
  struct Held {
    size_t StripeIndex;
    uint64_t PreviousWord;
    bool Dirty;
  };

  struct TxnState {
    MiniVector<Held, 64> HeldLocks;
    /// stripe word address -> index into HeldLocks, so re-touching a
    /// held stripe is O(1) instead of a scan.
    PtrIndexMap<uint32_t, 6> HeldIndex;
    /// Addresses this attempt wrote (bloom filter + exact map): decides
    /// Buffered-ness of read-own-write, per address not per stripe.
    PtrIndexMap<uint32_t, 6> WrittenIndex;
    uint64_t WrittenFilter = 0;

    void clear() {
      HeldLocks.clear();
      HeldIndex.clear();
      WrittenIndex.clear();
      WrittenFilter = 0;
    }
    size_t opens() const { return HeldLocks.size(); }
  };

  template <typename TxnT> static void onBegin(TxnT &) {}

  template <typename TxnT>
  static uint64_t load(TxnT &Tx, const std::atomic<uint64_t> &Word) {
    TxnState &St = Tx.state();
    const Held &H = acquire(Tx, &Word);
    // We hold the stripe exclusively: the word is stable, and our own
    // CAS acquire synchronized with the previous committer's release.
    uint64_t Value = Word.load(std::memory_order_relaxed);
    if ((St.WrittenFilter & filterSignature(&Word)) != 0 &&
        St.WrittenIndex.find(&Word)) {
      Tx.noteLoad(&Word, Value, /*Version=*/0, /*Buffered=*/true);
    } else {
      Tx.noteLoad(&Word, Value, LockTable::decode(H.PreviousWord).Version,
                  /*Buffered=*/false);
    }
    return Value;
  }

  template <typename TxnT>
  static void store(TxnT &Tx, std::atomic<uint64_t> &Word,
                    uint64_t Value) {
    TxnState &St = Tx.state();
    Held &H = acquire(Tx, &Word);
    H.Dirty = true;
    Tx.noteStore(&Word, Value);
    uint64_t Sig = filterSignature(&Word);
    if ((St.WrittenFilter & Sig) == 0 || !St.WrittenIndex.find(&Word)) {
      St.WrittenFilter |= Sig;
      St.WrittenIndex.insert(&Word, 1);
    }
    Tx.undoLog().emplace_back(&Word,
                              Word.load(std::memory_order_relaxed));
    Word.store(Value, std::memory_order_release);
  }

  /// No validation (see file comment). Written stripes get the new
  /// version; read-only stripes get their pre-lock word back.
  template <typename TxnT> static uint64_t commit(TxnT &Tx) {
    auto &S = Tx.rt();
    TxnState &St = Tx.state();

    if (Tx.undoLog().empty()) {
      for (auto It = St.HeldLocks.rbegin(); It != St.HeldLocks.rend();
           ++It)
        S.table().stripeAt(It->StripeIndex)
            .store(It->PreviousWord, std::memory_order_release);
      St.HeldLocks.clear();
      St.HeldIndex.clear();
      return 0;
    }

    uint64_t Wv = S.clock().advance();
    S.commitRing().record(Wv, Tx.self());
    for (const Held &H : St.HeldLocks)
      // A reader acquiring the released stripe synchronizes with this
      // release store and therefore sees our in-place data.
      S.table().stripeAt(H.StripeIndex)
          .store(H.Dirty ? LockTable::encodeVersion(Wv) : H.PreviousWord,
                 std::memory_order_release);
    St.HeldLocks.clear();
    St.HeldIndex.clear();
    Tx.undoLog().clear();
    return Wv;
  }

  /// Abort rollback: replay undo while the stripes are still held, then
  /// restore every pre-lock word.
  template <typename TxnT> static void onAbortCleanup(TxnT &Tx) {
    Tx.undoWrites();
    auto &S = Tx.rt();
    TxnState &St = Tx.state();
    for (auto It = St.HeldLocks.rbegin(); It != St.HeldLocks.rend(); ++It)
      S.table().stripeAt(It->StripeIndex)
          .store(It->PreviousWord, std::memory_order_release);
    St.HeldLocks.clear();
    St.HeldIndex.clear();
    St.WrittenIndex.clear();
    St.WrittenFilter = 0;
  }

private:
  /// Ensures the stripe covering \p Addr is held, acquiring it no-wait
  /// (held-by-other or version past rv = immediate abort). Returns the
  /// Held entry; the reference stays valid for the duration of the call
  /// chain (HeldLocks only grows within an attempt).
  template <typename TxnT>
  static Held &acquire(TxnT &Tx,
                       const std::atomic<uint64_t> *Addr) {
    auto &S = Tx.rt();
    TxnState &St = Tx.state();
    std::atomic<uint64_t> &Stripe =
        S.table().stripeFor(Addr);
    if (const uint32_t *Pos = St.HeldIndex.find(&Stripe))
      return St.HeldLocks[*Pos];

    uint64_t Old = Stripe.load(std::memory_order_relaxed);
    for (;;) {
      StripeState OldState = LockTable::decode(Old);
      // Not in HeldIndex, so a locked stripe is someone else's: no-wait
      // self-abort, never block (deadlock freedom).
      if (OldState.Locked)
        Tx.abortOnOwner(OldState.Owner, AbortSite::LockAcquire);
      if (OldState.Version > Tx.rv())
        Tx.abortOnVersion(OldState.Version, AbortSite::LockAcquire);
      if (Stripe.compare_exchange_weak(Old,
                                       LockTable::encodeLocked(Tx.self()),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
        break;
    }
    size_t Index = S.table().indexFor(Addr);
    St.HeldIndex.insert(&Stripe,
                        static_cast<uint32_t>(St.HeldLocks.size()));
    St.HeldLocks.push_back(Held{Index, Old, /*Dirty=*/false});
    Tx.noteLockAcquire(Index);
    return St.HeldLocks.back();
  }

  static uint64_t filterSignature(const void *Addr) {
    auto Key = reinterpret_cast<uintptr_t>(Addr) >> 3;
    return uint64_t{1} << ((Key * 0x9e3779b97f4a7c15ULL) >> 58);
  }
};

/// Engine-family aliases; TwoPlTxn is a transactional context for
/// stm_lint.
using TwoPlStm = EngineStm<TwoPlPolicy>;
using TwoPlTxn = EngineTxn<TwoPlPolicy>;

} // namespace gstm

#endif // GSTM_ENGINE_TWOPL_H
