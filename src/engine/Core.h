//===- engine/Core.h - Policy-templated STM engine chassis ---------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared chassis of the policy-templated engine family (SNIPPETS.md
/// Snippet 2 / zardoshti lineage): `EngineStm<Policy>` owns everything
/// every engine needs — version clock, lock table (the policy picks the
/// type), commit ring, epoch manager, observer/gate/contention-manager
/// hooks, sharded stats — and `EngineTxn<Policy>` is the per-thread
/// descriptor gluing the shared retry loop (engine/TxnExecutor.h), the
/// shared undo log, and the shared abort-reporting path to the policy's
/// algorithm. A policy contributes exactly the algorithm:
///
///   using Table = LockTable | ByteLockTable;
///   static constexpr const char *Name;
///   static constexpr unsigned DefaultTableBits;
///   struct TxnState { void clear(); size_t opens() const; ... };
///   static onBegin(TxnT&);            // per-attempt state reset
///   static load(TxnT&, Word) -> u64;  // transactional read
///   static store(TxnT&, Word, u64);   // transactional write
///   static commit(TxnT&) -> u64;      // wv, or 0 for read-only
///   static onAbortCleanup(TxnT&);     // undo replay + lock release
///
/// Policies never talk to StatsShard, TxEventObserver or the contention
/// manager directly — the chassis owns event reporting, so telemetry,
/// GuideController gating, fault attribution through the CommitRing, and
/// the checker-facing TxAccessObserver hooks behave identically across
/// the whole family (and identically to the hand-written TL2/LibTm
/// engines the harness already knows how to judge).
///
/// All engines in this family keep TL2-compatible version discipline —
/// rv sampled from the shared VersionClock at begin, reads rejected past
/// rv, commits stamped by clock.advance() and published into per-entry
/// version words — so the history checkers (src/check/Checker.h) apply
/// to every policy without weakening. See DESIGN.md §4i.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_ENGINE_CORE_H
#define GSTM_ENGINE_CORE_H

#include "engine/ByteLock.h"
#include "engine/Epoch.h"
#include "engine/TxnExecutor.h"
#include "stm/CommitRing.h"
#include "stm/Contention.h"
#include "stm/LockTable.h"
#include "stm/Observer.h"
#include "stm/StatsShard.h"
#include "stm/TVar.h"
#include "stm/VersionClock.h"
#include "support/Ids.h"
#include "support/MiniVector.h"
#include "support/PtrIndexMap.h"

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace gstm {

/// Deliberately broken engine behavior for the correctness harness's
/// mutation self-test (tests/engine_test.cpp): each knob disables one
/// safety mechanism of one engine so the history checkers can prove they
/// flag the resulting executions. Never enable outside the self-test.
struct EngineFaultInjection {
  /// Undo-log engines (orec-eager, 2pl-undo): an aborting attempt leaves
  /// its in-place writes behind — uncommitted state becomes visible to
  /// everyone (dirty reads, phantom final state).
  bool SkipUndoReplay = false;
  /// TLRW: a writer stops draining reader bytes before writing in place —
  /// live readers observe torn snapshots under an unchanged version.
  bool SkipReaderDrain = false;
  /// orec-eager: commit skips read-set validation — a commit that
  /// interleaved after this attempt's reads goes undetected (lost
  /// updates). The pessimistic engines (tlrw, 2pl-undo) have no
  /// validation step to skip: their reads are protected by held locks,
  /// which is exactly the property this knob exists to break elsewhere.
  bool SkipReadValidation = false;
};

/// Construction-time configuration shared by every engine in the family.
struct EngineConfig {
  /// log2 of the lock-table size; 0 = the policy's DefaultTableBits
  /// (byte-lock entries are 16x the size of stripe words, so TLRW
  /// defaults smaller).
  unsigned TableBits = 0;
  unsigned CommitRingBits = 13;
  /// Address-to-entry hash, as Tl2Config::StripeHash.
  StripeHashKind StripeHash = StripeHashKind::Mix;
  /// Single-fence commit publication where the policy has a validation
  /// step to order (orec-eager; see OrecEagerPolicy::commit). Policies
  /// without commit validation publish identically either way.
  bool SingleFenceCommit = true;
  BackoffKind Backoff = BackoffKind::Yield;
  /// Scheduler perturbation, as Tl2Config::PreemptShift. 0 = off.
  unsigned PreemptShift = 0;
  /// Bounded spin (iterations) a TLRW writer waits for reader bytes to
  /// drain before giving up and aborting itself; bounds the blocking a
  /// visible-reader engine can do while holding a write lock, so
  /// cross-held reader/writer cycles resolve by abort, not deadlock.
  unsigned LockSpinBound = 128;
  /// Accumulate per-attempt wall-clock latency into the stats shards
  /// (see Tl2Config::TrackAttemptLatency).
  bool TrackAttemptLatency = false;
  /// Fault injection for the checker self-test; all off by default.
  EngineFaultInjection Fault;
};

template <typename Policy> class EngineTxn;

/// One engine-family runtime instance: shared state plus instrumentation
/// hooks, mirroring Tl2Stm's surface so GuideController, StatsShard
/// export, and the check harness plug in unchanged.
template <typename Policy> class EngineStm {
public:
  using Table = typename Policy::Table;
  using Txn = EngineTxn<Policy>;

  explicit EngineStm(const EngineConfig &Config = EngineConfig())
      : Cfg(Config),
        Locks(Config.TableBits ? Config.TableBits
                               : Policy::DefaultTableBits,
              Config.StripeHash),
        Ring(Config.CommitRingBits) {}

  EngineStm(const EngineStm &) = delete;
  EngineStm &operator=(const EngineStm &) = delete;

  static constexpr const char *name() { return Policy::Name; }

  /// Installs \p Obs as the event observer (nullptr to disable). Must not
  /// be called while transactions are running; same rule for the other
  /// hook setters below.
  void setObserver(TxEventObserver *Obs) { Observer = Obs; }
  void setGate(StartGate *G) { Gate = G; }
  void setContentionManager(ContentionManager *M) { Cm = M; }
  void setAccessObserver(TxAccessObserver *Obs) { AccessObs = Obs; }

  const EngineConfig &config() const { return Cfg; }
  Table &table() { return Locks; }
  VersionClock &clock() { return Clock; }
  CommitRing &commitRing() { return Ring; }
  EpochManager &epochs() { return Epochs; }
  TxEventObserver *observer() const { return Observer; }
  StartGate *gate() const { return Gate; }
  ContentionManager *contentionManager() const { return Cm; }
  TxAccessObserver *accessObserver() const { return AccessObs; }
  /// Sharded per-thread telemetry (see stm/StatsShard.h).
  Tl2Stats &stats() { return Counters; }
  const Tl2Stats &stats() const { return Counters; }

  /// Blocks until every attempt that began before this call has
  /// committed or aborted (see EpochManager::quiesce). Residue checks
  /// and teardown call this instead of guessing at join order.
  void quiesce() { Epochs.quiesce(); }

private:
  EngineConfig Cfg;
  VersionClock Clock;
  Table Locks;
  CommitRing Ring;
  EpochManager Epochs;
  TxEventObserver *Observer = nullptr;
  StartGate *Gate = nullptr;
  ContentionManager *Cm = nullptr;
  TxAccessObserver *AccessObs = nullptr;
  Tl2Stats Counters;
};

/// Per-thread transaction descriptor of the engine family. The policy
/// supplies the algorithm (load/store/commit/rollback); this class
/// supplies everything around it — retry loop, undo log, epoch
/// bracketing, abort reporting, stats, observer events. Reused across
/// transactions; not thread-safe: one descriptor per worker thread.
template <typename Policy>
class EngineTxn : public TxnExecutor<EngineTxn<Policy>> {
public:
  using Stm = EngineStm<Policy>;
  using State = typename Policy::TxnState;

  EngineTxn(Stm &Stm_, ThreadId Thread)
      : TxnExecutor<EngineTxn>(Thread), S(Stm_), Thread(Thread),
        Shard(&Stm_.stats().shard(Thread)) {}

  EngineTxn(const EngineTxn &) = delete;
  EngineTxn &operator=(const EngineTxn &) = delete;

  /// Transactional read of a raw 64-bit word.
  uint64_t loadWord(const std::atomic<uint64_t> &Word) {
    this->maybePreempt();
    return Policy::load(*this, Word);
  }

  /// Transactional write of a raw 64-bit word (in place, under the
  /// policy's encounter-time lock; the undo log holds the old value).
  void storeWord(std::atomic<uint64_t> &Word, uint64_t Value) {
    this->maybePreempt();
    Policy::store(*this, Word, Value);
  }

  /// Typed transactional read of a TVar.
  template <typename T> T load(const TVar<T> &Var) {
    return TVar<T>::decode(loadWord(Var.word()));
  }

  /// Typed transactional write of a TVar. The value type is non-deduced
  /// so integer literals convert to the variable's type.
  template <typename T>
  void store(TVar<T> &Var, std::type_identity_t<T> Value) {
    storeWord(Var.word(), TVar<T>::encode(Value));
  }

  /// Explicitly aborts and retries the current transaction attempt.
  [[noreturn]] void retryAbort() {
    reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                   AbortCauseKind::Explicit,
                                   /*Cause=*/0, /*CauseVersion=*/0,
                                   AbortSite::Explicit});
  }

  ThreadId threadId() const { return Thread; }
  TxId txId() const { return CurrentTx; }
  /// Read version of the attempt in flight (exposed for tests).
  uint64_t readVersion() const { return Rv; }

  // -- Policy-facing surface ------------------------------------------
  // (Public so policy statics and tests can reach it; user code goes
  // through load/store above.)

  Stm &rt() { return S; }
  State &state() { return PS; }
  TxThreadPair self() const { return packPair(CurrentTx, Thread); }
  uint64_t rv() const { return Rv; }
  MiniVector<std::pair<std::atomic<uint64_t> *, uint64_t>, 32> &
  undoLog() {
    return Undo;
  }

  /// Reverts in-place writes of an aborting attempt (newest first, so
  /// double-written addresses end at the oldest value). The
  /// SkipUndoReplay mutant leaves the dirty values in place but still
  /// clears the log — exactly the "forgot to roll back" bug the
  /// checkers must catch.
  void undoWrites() {
    if (!S.config().Fault.SkipUndoReplay)
      for (auto It = Undo.rbegin(); It != Undo.rend(); ++It)
        It->first->store(It->second, std::memory_order_release);
    Undo.clear();
  }

  /// Reports an abort caused by a known conflicting committer and
  /// throws; \p Site tags where in the attempt the conflict surfaced.
  [[noreturn]] void abortOnOwner(TxThreadPair Owner, AbortSite Site) {
    reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                   AbortCauseKind::KnownCommitter, Owner,
                                   /*CauseVersion=*/0, Site});
  }

  /// Reports an abort caused by a too-new version and throws;
  /// attribution goes through the commit ring.
  [[noreturn]] void abortOnVersion(uint64_t Version, AbortSite Site) {
    TxThreadPair Committer;
    bool Hit = S.commitRing().lookup(Version, Committer);
    Shard->recordCommitRingLookup(Hit);
    if (Hit)
      reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                     AbortCauseKind::KnownCommitter,
                                     Committer, Version, Site});
    reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                   AbortCauseKind::UnknownCommitter,
                                   /*Cause=*/0, Version, Site});
  }

  /// Abort with no attributable enemy (e.g. a TLRW writer timing out on
  /// anonymous reader bytes).
  [[noreturn]] void abortUnknown(AbortSite Site) {
    reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                   AbortCauseKind::UnknownCommitter,
                                   /*Cause=*/0, /*CauseVersion=*/0, Site});
  }

  /// Observer shorthands for policies (single null test, as the
  /// TxAccessObserver contract requires).
  void noteLoad(const std::atomic<uint64_t> *Addr, uint64_t Value,
                uint64_t Version, bool Buffered) {
    if (TxAccessObserver *A = S.accessObserver())
      A->onTxLoad(Thread, Addr, Value, Version, Buffered);
  }
  void noteStore(const std::atomic<uint64_t> *Addr, uint64_t Value) {
    if (TxAccessObserver *A = S.accessObserver())
      A->onTxStore(Thread, Addr, Value);
  }
  void noteLockAcquire(uint64_t LockIndex) {
    if (TxAccessObserver *A = S.accessObserver())
      A->onLockAcquire(Thread, LockIndex);
  }

private:
  friend class TxnExecutor<EngineTxn>;
  friend Policy;

  /// Executor contract (engine/TxnExecutor.h).
  Stm &stm() { return S; }
  StatsShard *shard() { return Shard; }
  uint64_t opensCount() const { return PS.opens() + Undo.size(); }

  void begin(TxId Tx) {
    CurrentTx = Tx;
    Rv = S.clock().sample();
    Undo.clear();
    PS.clear();
    S.epochs().enter(Thread);
    Policy::onBegin(*this);
    if (TxAccessObserver *A = S.accessObserver())
      A->onTxBegin(Thread, Tx, Rv);
  }

  void commitOrThrow(uint32_t PriorAborts) {
    uint64_t Wv = Policy::commit(*this);
    S.epochs().exit(Thread);
    const bool ReadOnly = Wv == 0;
    Shard->recordCommit(PriorAborts, ReadOnly);
    if (TxEventObserver *Obs = S.observer())
      Obs->onCommit(
          CommitEvent{Thread, CurrentTx, Wv, PriorAborts, ReadOnly});
  }

  [[noreturn]] void reportAbortAndThrow(const AbortEvent &E) {
    // Opens must be counted before the rollback clears the logs.
    this->LastOpens = opensCount();
    Policy::onAbortCleanup(*this);
    S.epochs().exit(Thread);
    this->LastEnemyKnown = E.Kind == AbortCauseKind::KnownCommitter;
    this->LastEnemy = this->LastEnemyKnown ? E.Cause : 0;
    Shard->recordAbort(E.Kind, E.Site);
    if (TxEventObserver *Obs = S.observer())
      Obs->onAbort(E);
    throw TxAbortException{};
  }

  Stm &S;
  ThreadId Thread;
  /// This thread's telemetry shard, resolved once at construction.
  StatsShard *Shard;
  TxId CurrentTx = 0;
  uint64_t Rv = 0;
  /// (address, previous value) pairs, restored in reverse on abort.
  /// Shared across policies; inline capacity for the same reasons as
  /// Tl2Txn's logs.
  MiniVector<std::pair<std::atomic<uint64_t> *, uint64_t>, 32> Undo;
  State PS;
};

} // namespace gstm

#endif // GSTM_ENGINE_CORE_H
