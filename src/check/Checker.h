//===- check/Checker.h - History-based STM safety checkers ---------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Safety checkers over recorded transactional histories (check/History.h).
/// Guided commit optimization, replay gating and contention management all
/// reorder and throttle commits; these checkers are the harness that
/// proves such reordering never bought performance with correctness.
///
/// Three layers, cheapest first:
///
///  * checkInvariants — always-on assertions that need no search: commit
///    versions unique, above the committing attempt's rv and per-thread
///    monotonic; every validated read version within the attempt's
///    snapshot; no value observed that only an aborted attempt ever
///    wrote.
///  * checkOpacity — every attempt, *including aborted ones*, must have
///    observed a consistent snapshot: the value-intervals of its reads
///    (derived from the committed-writer timeline per location) must
///    share a common point. This is the operative part of opacity that
///    TL2-style rv validation exists to guarantee.
///  * checkCommittedSerializable — searches for a total order of the
///    committed transactions consistent with every observed read value
///    (read-from + no intervening writer), the recorded real-time order,
///    and acyclicity: graph reachability for propagation plus bounded
///    backtracking over the residual writer-placement choices. Sound and
///    complete for histories whose read-from mapping is unambiguous
///    (which the fuzz workloads guarantee by writing unique values);
///    returns Inconclusive rather than guessing when the search budget
///    is exhausted.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CHECK_CHECKER_H
#define GSTM_CHECK_CHECKER_H

#include "check/History.h"
#include "engine/ByteLock.h"
#include "stm/LockTable.h"

#include <cstdint>
#include <string>

namespace gstm {

/// Outcome of one checker pass.
enum class Verdict : uint8_t {
  /// No violation found.
  Ok,
  /// The history provably violates the property.
  Violation,
  /// The checker could not decide (search budget exhausted or the
  /// history's values were too ambiguous to attribute reads).
  Inconclusive,
};

/// Verdict plus a human-readable description of the first problem found.
struct CheckResult {
  Verdict V = Verdict::Ok;
  std::string Reason;

  bool ok() const { return V == Verdict::Ok; }
  bool violation() const { return V == Verdict::Violation; }
};

/// Tunables of the checkers.
struct CheckerConfig {
  /// The workload writes values that are unique per (location, history)
  /// — the fuzz harness's chained-sum updates make duplicate values
  /// vanishingly unlikely. Value-based read attribution (and with it the
  /// aborted-write-visible and serializability checks) needs this; with
  /// ambiguous values those checks degrade to Inconclusive instead of
  /// guessing.
  bool ValuesAreUnique = true;
  /// Enforce real-time order between committed transactions (an attempt
  /// that ended before another began must serialize first). All shipped
  /// backends promise strict serializability, so on by default.
  bool RealTimeOrder = true;
  /// Backtracking budget for the serialization search, in graph-node
  /// visits. Exhaustion yields Inconclusive, never a false verdict.
  uint64_t SearchBudget = 1 << 20;
};

/// Cheap, search-free invariants. See file comment.
CheckResult checkInvariants(const History &H,
                            const CheckerConfig &Cfg = CheckerConfig());

/// Snapshot consistency of every attempt (committed and aborted).
CheckResult checkOpacity(const History &H,
                         const CheckerConfig &Cfg = CheckerConfig());

/// Final-state serializability of the committed transactions.
CheckResult
checkCommittedSerializable(const History &H,
                           const CheckerConfig &Cfg = CheckerConfig());

/// Runs all three checkers, returning the first non-Ok result (violations
/// beat inconclusives).
CheckResult checkAll(const History &H,
                     const CheckerConfig &Cfg = CheckerConfig());

/// Quiescence invariant: no stripe of \p Locks may still be locked once
/// all workers have joined. \p Why receives the offending stripe on
/// failure when non-null.
bool lockTableQuiescent(LockTable &Locks, std::string *Why = nullptr);

/// ByteLock analogue for the TLRW engine family member: no entry may
/// still carry an Owner word or a set reader byte once all workers have
/// joined (a leaked reader byte is residue too — it would stall every
/// later writer's drain).
bool byteLockTableQuiescent(ByteLockTable &Locks,
                            std::string *Why = nullptr);

} // namespace gstm

#endif // GSTM_CHECK_CHECKER_H
