//===- check/ShardFuzz.h - Differential fuzz for the sharded tier --------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-shard companion to the word-level fuzzer in check/Fuzz.h: the
/// same seeded read-modify-write plans (makeFuzzPlan — unique write
/// deltas, schedule-independent expected final state), but executed on a
/// ShardedStm whose cells are *explicitly placed* round-robin across the
/// shard contexts via a ShardPlacement. With the variables scattered
/// shard-by-shard, a transaction touching two variables almost always
/// spans two orec partitions, so every seed exercises the cross-shard
/// prepare/publish 2PC; plans analytically predict exactly how many
/// commits must be cross-shard, and the run fails unless the runtime's
/// CrossShardCommits counter agrees — the telemetry is under test along
/// with the protocol.
///
/// Each seed is judged like the rmw fuzzer (opacity/serializability
/// checkers over the recorded history, final state vs the analytic
/// expectation, per-shard lock-table quiescence, commit accounting) and
/// differentially: the concurrent sharded run, a shards=1 degenerate run
/// and a serial reference execution of the same plan must all pass and
/// agree on the final state.
///
/// Fault injection: ShardFaultInjection::TornCoordinatedPublish breaks
/// the coordinated publish on purpose; the self-test requires the
/// checkers (or the final-state comparison) to flag such runs, proving
/// the harness would catch a real 2PC ordering bug.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CHECK_SHARDFUZZ_H
#define GSTM_CHECK_SHARDFUZZ_H

#include "check/Fuzz.h"
#include "shard/ShardConfig.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gstm {

/// Shape of the sharded fuzz workloads. Plan generation reuses
/// makeFuzzPlan, so (Seed, Threads, TxnsPerThread, Vars, MaxOpsPerTxn)
/// expand exactly as in the rmw workload.
struct ShardFuzzConfig {
  unsigned Threads = 3;
  unsigned TxnsPerThread = 8;
  /// Cells, placed round-robin: variable v lives on shard v % ShardCount.
  unsigned Vars = 12;
  unsigned MaxOpsPerTxn = 4;
  /// Shard contexts (power of two); 1 degenerates to unsharded TL2
  /// semantics over the sharded chassis.
  unsigned ShardCount = 4;
  unsigned PreemptShift = 2;
  unsigned PerturbShift = 2;
  /// Commit ordering, as FuzzConfig::SingleFenceCommit; CI sweeps both.
  bool SingleFenceCommit = true;
  /// Fault injection (checker self-test only).
  ShardFaultInjection Fault;
  CheckerConfig Checker;
};

/// Outcome of one (seed, variant) sharded execution.
struct ShardFuzzResult {
  /// Empty when the run passed; otherwise the first failure, prefixed
  /// with its class (checker / final-state / lock-residue / accounting /
  /// coverage).
  std::string Error;
  CheckResult Check;
  std::vector<uint64_t> Final;
  std::vector<uint64_t> Expected;
  size_t Attempts = 0;
  size_t Committed = 0;
  uint64_t PerturbYields = 0;
  /// Runtime telemetry after the run (aggregated over all shard groups).
  uint64_t CrossShardCommits = 0;
  uint64_t CrossShardAborts = 0;
  uint64_t PrepareRetries = 0;
  /// Cross-shard writer commits the plan analytically requires.
  uint64_t ExpectedCrossShardCommits = 0;

  bool passed() const { return Error.empty(); }
};

/// Runs the plan expanded from \p Seed on a ShardedStm and judges it.
/// \p Serial executes the plan by one worker thread-major (the reference
/// interleaving the checkers must accept).
ShardFuzzResult runShardFuzzIteration(uint64_t Seed,
                                      const ShardFuzzConfig &Cfg,
                                      bool Serial = false);

/// One seed across the sharded variants: concurrent at Cfg.ShardCount,
/// concurrent degenerate shards=1, and the serial reference; all must
/// pass and agree on the final state.
struct ShardDifferentialResult {
  std::vector<std::pair<std::string, ShardFuzzResult>> PerVariant;
  std::string Error;

  bool passed() const { return Error.empty(); }
};

ShardDifferentialResult runShardDifferential(uint64_t Seed,
                                             const ShardFuzzConfig &Cfg);

} // namespace gstm

#endif // GSTM_CHECK_SHARDFUZZ_H
