//===- check/History.h - Transactional history recording -----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recording layer of the correctness harness (src/check/). The model-
/// checking and starvation-freedom literature the harness follows
/// (Wehrheim's small-model work, Juyal et al.) treats the *history* — the
/// interleaved sequence of reads, writes, commits and aborts — as the
/// object over which STM safety is defined; this file captures it.
///
/// HistoryRecorder plugs into both hook surfaces of the runtimes: the
/// per-access TxAccessObserver (read value + validated version, write,
/// lock acquire, attempt begin) and the per-outcome TxEventObserver
/// (commit with version, abort with cause). Each worker thread appends to
/// its own cache-line-padded log, so recording perturbs the schedule as
/// little as a mostly-thread-local instrument can; a global atomic stamps
/// attempt boundaries so the merged history carries a real-time order the
/// checkers (check/Checker.h) can lean on.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CHECK_HISTORY_H
#define GSTM_CHECK_HISTORY_H

#include "stm/Observer.h"
#include "support/Ids.h"

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gstm {

/// One recorded transactional access inside an attempt, in program order.
struct AccessRecord {
  enum class Kind : uint8_t { Load, Store, LockAcquire };
  Kind K;
  /// Memory location: TVar word address for TL2, TObjBase address for
  /// LibTm. For LockAcquire this is null and LockId holds the identity.
  const void *Addr = nullptr;
  uint64_t Value = 0;
  /// Loads only: the stripe/object version the read validated against
  /// (0 for buffered reads).
  uint64_t Version = 0;
  /// Loads only: served from the attempt's own write set / owned stripe.
  bool Buffered = false;
  /// LockAcquire only: stripe index (TL2) or object address (LibTm).
  uint64_t LockId = 0;
};

/// How one recorded attempt ended.
enum class AttemptOutcome : uint8_t { Committed, Aborted, InFlight };

/// One transaction attempt: begin, its accesses, and its outcome.
struct AttemptRecord {
  ThreadId Thread = 0;
  TxId Tx = 0;
  /// Read version (rv) the attempt started from.
  uint64_t ReadVersion = 0;
  /// Global order stamps: BeginSeq at onTxBegin, EndSeq at commit/abort.
  /// Stamps of different threads are totally ordered; an attempt with
  /// EndSeq < another's BeginSeq finished before the other started.
  uint64_t BeginSeq = 0;
  uint64_t EndSeq = 0;
  AttemptOutcome Outcome = AttemptOutcome::InFlight;
  /// Commit-only: write version installed (0 when ReadOnly).
  uint64_t CommitVersion = 0;
  bool ReadOnly = false;
  std::vector<AccessRecord> Accesses;

  bool committed() const { return Outcome == AttemptOutcome::Committed; }

  /// First non-buffered read value per address (buffered reads observed no
  /// global state). Insertion order = program order of first reads.
  std::vector<std::pair<const void *, uint64_t>> globalReads() const;
  /// Last value written per address — what a commit installs.
  std::vector<std::pair<const void *, uint64_t>> finalWrites() const;
};

/// A complete recorded run: the quiescent initial values of every location
/// the workload uses, plus every attempt of every thread.
struct History {
  std::unordered_map<const void *, uint64_t> Initial;
  /// All attempts, merged across threads, sorted by BeginSeq.
  std::vector<AttemptRecord> Attempts;

  size_t committedCount() const;
};

/// Records the full transactional history of one run.
///
/// Attach to a runtime with both setAccessObserver(&R) and
/// setObserver(&R) (or hang it off an observer tee when another observer
/// is also needed). Initial values must be registered before the run via
/// noteInitial(); take() merges the per-thread logs after workers joined.
class HistoryRecorder : public TxAccessObserver, public TxEventObserver {
public:
  explicit HistoryRecorder(unsigned NumThreads) : PerThread(NumThreads) {}

  /// Registers the quiescent pre-run value of \p Addr.
  void noteInitial(const void *Addr, uint64_t Value) {
    Initial[Addr] = Value;
  }

  // TxAccessObserver.
  void onTxBegin(ThreadId Thread, TxId Tx, uint64_t ReadVersion) override;
  void onTxLoad(ThreadId Thread, const void *Addr, uint64_t Value,
                uint64_t Version, bool Buffered) override;
  void onTxStore(ThreadId Thread, const void *Addr, uint64_t Value) override;
  void onLockAcquire(ThreadId Thread, uint64_t LockId) override;

  // TxEventObserver.
  void onCommit(const CommitEvent &E) override;
  void onAbort(const AbortEvent &E) override;

  /// Merges the per-thread logs into one history ordered by BeginSeq.
  /// Call after all workers joined; leaves the recorder reusable.
  History take();

private:
  struct alignas(64) ThreadLog {
    std::vector<AttemptRecord> Done;
    AttemptRecord Open;
    bool HasOpen = false;
  };

  void finish(ThreadId Thread, AttemptOutcome Outcome, uint64_t Version,
              bool ReadOnly);

  std::atomic<uint64_t> NextSeq{0};
  std::vector<ThreadLog> PerThread;
  std::unordered_map<const void *, uint64_t> Initial;
};

} // namespace gstm

#endif // GSTM_CHECK_HISTORY_H
