//===- check/TmdsFuzz.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "check/TmdsFuzz.h"

#include "check/Perturb.h"
#include "support/SplitMix64.h"
#include "tmds/TmBTree.h"
#include "tmds/TmSkipList.h"

#include <map>
#include <sstream>
#include <thread>

using namespace gstm;

const char *gstm::tmdsStructureName(TmdsStructure S) {
  switch (S) {
  case TmdsStructure::SkipList:
    return "skiplist";
  case TmdsStructure::BTree:
    return "btree";
  }
  return "?";
}

bool gstm::tmdsStructureFromName(const std::string &Name,
                                 TmdsStructure &Out) {
  for (TmdsStructure S : {TmdsStructure::SkipList, TmdsStructure::BTree})
    if (Name == tmdsStructureName(S)) {
      Out = S;
      return true;
    }
  return false;
}

std::vector<std::pair<uint64_t, uint64_t>> TmdsPlan::expectedFinal() const {
  std::map<uint64_t, uint64_t> M(Prepopulate.begin(), Prepopulate.end());
  for (const auto &Txns : PerThread)
    for (const TmdsTxn &T : Txns)
      for (const TmdsOp &Op : T.Ops)
        switch (Op.K) {
        case TmdsOp::Kind::Insert:
          M.emplace(Op.Key, Op.Value); // no overwrite: insert() rejects dups
          break;
        case TmdsOp::Kind::Update:
          if (auto It = M.find(Op.Key); It != M.end())
            It->second = Op.Value;
          break;
        case TmdsOp::Kind::Remove:
          M.erase(Op.Key);
          break;
        case TmdsOp::Kind::Find:
        case TmdsOp::Kind::Scan:
        case TmdsOp::Kind::Size:
          break;
        }
  return {M.begin(), M.end()};
}

TmdsPlan gstm::makeTmdsPlan(uint64_t Seed, const TmdsFuzzConfig &Cfg) {
  // Different multiplier stream than makeFuzzPlan so the two fuzzers
  // explore uncorrelated workloads for the same seed range.
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  TmdsPlan Plan;

  for (uint64_t K = 1; K <= Cfg.Keys; ++K)
    if ((Rng.next() & 1) != 0)
      Plan.Prepopulate.emplace_back(K, Rng.next());

  // Mutation-key partition: thread T owns the keys congruent to T, which
  // is what makes the std::map oracle schedule-independent.
  std::vector<std::vector<uint64_t>> Owned(Cfg.Threads);
  for (uint64_t K = 1; K <= Cfg.Keys; ++K)
    Owned[K % Cfg.Threads].push_back(K);

  Plan.PerThread.resize(Cfg.Threads);
  for (unsigned T = 0; T < Cfg.Threads; ++T) {
    Plan.PerThread[T].resize(Cfg.TxnsPerThread);
    const bool HasOwned = !Owned[T].empty();
    for (unsigned X = 0; X < Cfg.TxnsPerThread; ++X) {
      TmdsTxn &Txn = Plan.PerThread[T][X];
      unsigned NumOps = 1 + static_cast<unsigned>(Rng.nextBounded(
                                Cfg.OpsPerTxn ? Cfg.OpsPerTxn : 1));
      Txn.Ops.resize(NumOps);
      for (TmdsOp &Op : Txn.Ops) {
        uint64_t Roll = Rng.nextBounded(8);
        auto OwnedKey = [&] {
          return Owned[T][Rng.nextBounded(Owned[T].size())];
        };
        auto AnyKey = [&] {
          // Deliberately probes just past the keyspace too.
          return 1 + Rng.nextBounded(Cfg.Keys + 2);
        };
        if (Roll <= 1 && HasOwned) {
          Op.K = TmdsOp::Kind::Insert;
          Op.Key = OwnedKey();
          Op.Value = Rng.next();
        } else if (Roll == 2 && HasOwned) {
          Op.K = TmdsOp::Kind::Update;
          Op.Key = OwnedKey();
          Op.Value = Rng.next();
        } else if (Roll == 3 && HasOwned) {
          Op.K = TmdsOp::Kind::Remove;
          Op.Key = OwnedKey();
        } else if (Roll == 6) {
          Op.K = TmdsOp::Kind::Scan;
          Op.Key = AnyKey();
          Op.Count = 1 + static_cast<uint32_t>(Rng.nextBounded(6));
        } else if (Roll == 7) {
          Op.K = TmdsOp::Kind::Size;
        } else {
          Op.K = TmdsOp::Kind::Find;
          Op.Key = AnyKey();
        }
      }
    }
  }
  return Plan;
}

namespace {

/// Node budget: prepopulation plus every possible insert, with generous
/// headroom for nodes leaked by aborted attempts (TmPool discipline) and
/// for B-tree splits. Exhaustion is a loud abort, not a silent wrap.
uint32_t poolCapacity(const TmdsFuzzConfig &Cfg, size_t Prepop) {
  size_t Inserts =
      size_t{Cfg.Threads} * Cfg.TxnsPerThread * Cfg.OpsPerTxn;
  return static_cast<uint32_t>(Prepop + Inserts * 16 + 128);
}

template <typename DS>
void applyOp(DS &Ds, typename DS::Txn &Tx, const TmdsOp &Op) {
  switch (Op.K) {
  case TmdsOp::Kind::Insert:
    Ds.insert(Tx, Op.Key, Op.Value);
    break;
  case TmdsOp::Kind::Update:
    Ds.update(Tx, Op.Key, Op.Value);
    break;
  case TmdsOp::Kind::Remove:
    Ds.remove(Tx, Op.Key);
    break;
  case TmdsOp::Kind::Find:
    Ds.find(Tx, Op.Key);
    break;
  case TmdsOp::Kind::Scan: {
    uint64_t Sum = 0;
    Ds.scan(Tx, Op.Key, Op.Count, Sum);
    break;
  }
  case TmdsOp::Kind::Size:
    Ds.size(Tx);
    break;
  }
}

std::string
describeDivergence(const std::vector<std::pair<uint64_t, uint64_t>> &Got,
                   const std::vector<std::pair<uint64_t, uint64_t>> &Want) {
  std::ostringstream Err;
  size_t I = 0;
  while (I < Got.size() && I < Want.size() && Got[I] == Want[I])
    ++I;
  Err << "contents: ";
  if (I < Got.size() && I < Want.size())
    Err << "entry " << I << " is (" << Got[I].first << ", "
        << Got[I].second << "), expected (" << Want[I].first << ", "
        << Want[I].second << ") (lost, phantom or misordered update)";
  else
    Err << Got.size() << " entries, expected " << Want.size();
  return Err.str();
}

/// Shared run skeleton: prepopulate unobserved, register every owned
/// cell's quiescent value, execute the plan (concurrently or serially for
/// the reference interleaving), then apply every verdict.
template <typename B, template <typename> class DSTmpl, typename ResidueFn>
TmdsRunResult runOn(typename B::Stm &Stm, const TmdsPlan &Plan,
                    uint64_t Seed, const TmdsFuzzConfig &Cfg, bool Serial,
                    ResidueFn &&Residue) {
  using DS = DSTmpl<B>;
  TmdsRunResult R;
  R.Expected = Plan.expectedFinal();

  typename DS::Pool Nodes(poolCapacity(Cfg, Plan.Prepopulate.size()));
  DS Ds(Nodes);

  // Prepopulation runs before the observers attach, so it is invisible to
  // the history (its effect lands in the registered initial values).
  {
    typename B::Txn Tx0(Stm, 0);
    Tx0.run(static_cast<TxId>(0), [&](typename B::Txn &Tx) {
      for (const auto &[K, V] : Plan.Prepopulate)
        Ds.insert(Tx, K, V);
    });
  }

  const unsigned RecThreads = Serial ? 1 : Cfg.Threads;
  HistoryRecorder Rec(RecThreads);
  Ds.forEachCellDirect([&](const void *Addr, uint64_t Raw) {
    Rec.noteInitial(Addr, Raw);
  });
  SchedulePerturber Perturb(RecThreads, Seed, &Rec, Cfg.PerturbShift);
  // The serial reference wants the reference interleaving, not a
  // perturbed one — record accesses directly.
  Stm.setAccessObserver(Serial ? static_cast<TxAccessObserver *>(&Rec)
                               : &Perturb);
  Stm.setObserver(&Rec);

  if (Serial) {
    typename B::Txn Txn(Stm, 0);
    for (unsigned T = 0; T < Cfg.Threads; ++T)
      for (size_t K = 0; K < Plan.PerThread[T].size(); ++K)
        Txn.run(static_cast<TxId>(K), [&](typename B::Txn &Tx) {
          for (const TmdsOp &Op : Plan.PerThread[T][K].Ops)
            applyOp(Ds, Tx, Op);
        });
  } else {
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < Cfg.Threads; ++T)
      Workers.emplace_back([&, T] {
        typename B::Txn Txn(Stm, T);
        const std::vector<TmdsTxn> &Txns = Plan.PerThread[T];
        for (size_t K = 0; K < Txns.size(); ++K)
          Txn.run(static_cast<TxId>(K), [&](typename B::Txn &Tx) {
            for (const TmdsOp &Op : Txns[K].Ops)
              applyOp(Ds, Tx, Op);
          });
      });
    for (std::thread &W : Workers)
      W.join();
  }

  Stm.setAccessObserver(nullptr);
  Stm.setObserver(nullptr);
  R.PerturbYields = Perturb.yieldCount();

  Ds.forEachDirect(
      [&](uint64_t K, uint64_t V) { R.Final.emplace_back(K, V); });
  const std::string ResidueMsg = Residue(Stm, Ds);
  const bool StructureOk = Ds.validateDirect();

  History H = Rec.take();
  R.Attempts = H.Attempts.size();
  R.Committed = H.committedCount();
  // Map values are payload data, not the unique tokens the rmw fuzzer
  // plants; with duplicates possible the checkers degrade ambiguous read
  // attribution to Inconclusive instead of a false Violation.
  CheckerConfig CC = Cfg.Checker;
  CC.ValuesAreUnique = false;
  R.Check = checkAll(H, CC);

  const size_t ExpectedCommits = size_t{Cfg.Threads} * Cfg.TxnsPerThread;
  std::ostringstream Err;
  if (R.Check.violation())
    Err << "checker: " << R.Check.Reason;
  else if (!ResidueMsg.empty())
    Err << "lock-residue: " << ResidueMsg;
  else if (!StructureOk)
    Err << "structure: validateDirect failed (ordering, occupancy or "
           "size-stripe invariant broken)";
  else if (R.Final != R.Expected)
    Err << describeDivergence(R.Final, R.Expected);
  else if (R.Committed != ExpectedCommits)
    Err << "accounting: " << R.Committed << " commits recorded, expected "
        << ExpectedCommits;
  R.Error = Err.str();
  return R;
}

template <template <typename> class DSTmpl>
TmdsRunResult runTl2Ds(const TmdsPlan &Plan, uint64_t Seed,
                       ConflictDetection Detection,
                       const TmdsFuzzConfig &Cfg, bool Serial) {
  Tl2Config C;
  C.LockTableBits = 10; // small table: deliberate stripe aliasing pressure
  C.Detection = Detection;
  C.PreemptShift = Cfg.PreemptShift;
  C.SingleFenceCommit = Cfg.SingleFenceCommit;
  Tl2Stm Stm(C);
  return runOn<Tl2Backend, DSTmpl>(
      Stm, Plan, Seed, Cfg, Serial, [](Tl2Stm &S, auto &) {
        std::string Why;
        lockTableQuiescent(S.lockTable(), &Why);
        return Why;
      });
}

template <template <typename> class DSTmpl>
TmdsRunResult runLibTmDs(const TmdsPlan &Plan, uint64_t Seed,
                         const TmdsFuzzConfig &Cfg) {
  LibTmConfig C;
  C.PreemptShift = Cfg.PreemptShift;
  C.SingleFenceCommit = Cfg.SingleFenceCommit;
  LibTm Tm(C);
  return runOn<LibTmBackend, DSTmpl>(
      Tm, Plan, Seed, Cfg, /*Serial=*/false,
      [](LibTm &S, auto &Ds) -> std::string {
        if (Ds.anyCellLockedDirect(S))
          return "an object cell is still locked at quiescence";
        return "";
      });
}

/// One runner for the three policy-templated engines; the engine table's
/// residue probe is the whole-table quiescence check matching the
/// policy's table type.
template <typename Policy, template <typename> class DSTmpl>
TmdsRunResult runEngineDs(const TmdsPlan &Plan, uint64_t Seed,
                          const TmdsFuzzConfig &Cfg) {
  EngineConfig C;
  C.TableBits = 10; // small table: deliberate entry aliasing pressure
  C.PreemptShift = Cfg.PreemptShift;
  C.SingleFenceCommit = Cfg.SingleFenceCommit;
  EngineStm<Policy> Stm(C);
  return runOn<EngineBackend<Policy>, DSTmpl>(
      Stm, Plan, Seed, Cfg, /*Serial=*/false,
      [](EngineStm<Policy> &S, auto &) {
        std::string Why;
        if constexpr (std::is_same_v<typename Policy::Table,
                                     ByteLockTable>)
          byteLockTableQuiescent(S.table(), &Why);
        else
          lockTableQuiescent(S.table(), &Why);
        return Why;
      });
}

template <template <typename> class DSTmpl>
TmdsRunResult runForStructure(const TmdsPlan &Plan, uint64_t Seed,
                              FuzzBackend Backend,
                              const TmdsFuzzConfig &Cfg) {
  switch (Backend) {
  case FuzzBackend::Tl2Lazy:
    return runTl2Ds<DSTmpl>(Plan, Seed, ConflictDetection::Lazy, Cfg,
                            /*Serial=*/false);
  case FuzzBackend::Tl2Eager:
    return runTl2Ds<DSTmpl>(Plan, Seed, ConflictDetection::Eager, Cfg,
                            /*Serial=*/false);
  case FuzzBackend::LibTm:
    return runLibTmDs<DSTmpl>(Plan, Seed, Cfg);
  case FuzzBackend::OrecEager:
    return runEngineDs<OrecEagerPolicy, DSTmpl>(Plan, Seed, Cfg);
  case FuzzBackend::Tlrw:
    return runEngineDs<TlrwPolicy, DSTmpl>(Plan, Seed, Cfg);
  case FuzzBackend::TwoPlUndo:
    return runEngineDs<TwoPlPolicy, DSTmpl>(Plan, Seed, Cfg);
  case FuzzBackend::Reference:
    // Ground truth: the same plan on the TL2-backed structure, executed
    // by one worker thread-major — a genuinely serial interleaving whose
    // history the checkers must accept.
    return runTl2Ds<DSTmpl>(Plan, Seed, ConflictDetection::Lazy, Cfg,
                            /*Serial=*/true);
  }
  return TmdsRunResult{};
}

} // namespace

TmdsRunResult gstm::runTmdsFuzzIteration(uint64_t Seed,
                                         FuzzBackend Backend,
                                         const TmdsFuzzConfig &Cfg) {
  TmdsPlan Plan = makeTmdsPlan(Seed, Cfg);
  if (Cfg.Structure == TmdsStructure::SkipList)
    return runForStructure<TmSkipList>(Plan, Seed, Backend, Cfg);
  return runForStructure<TmBTree>(Plan, Seed, Backend, Cfg);
}

TmdsDifferentialResult
gstm::runTmdsDifferential(uint64_t Seed, const TmdsFuzzConfig &Cfg) {
  TmdsDifferentialResult D;
  std::ostringstream Err;
  for (FuzzBackend B : AllFuzzBackends) {
    TmdsRunResult R = runTmdsFuzzIteration(Seed, B, Cfg);
    if (!R.passed() && Err.str().empty())
      Err << fuzzBackendName(B) << ": " << R.Error;
    D.PerBackend.emplace_back(B, std::move(R));
  }
  // Cross-backend: identical final contents everywhere (each already
  // matched the oracle when it passed; compare directly anyway so an
  // oracle bug cannot mask divergence).
  if (Err.str().empty())
    for (size_t I = 1; I < D.PerBackend.size(); ++I)
      if (D.PerBackend[I].second.Final != D.PerBackend[0].second.Final) {
        Err << "divergence: " << fuzzBackendName(D.PerBackend[I].first)
            << " disagrees with " << fuzzBackendName(D.PerBackend[0].first)
            << " on the final contents";
        break;
      }
  D.Error = Err.str();
  return D;
}
