//===- check/ShardFuzz.cpp -------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "check/ShardFuzz.h"

#include "check/Perturb.h"
#include "shard/Sharded.h"
#include "stm/TVar.h"

#include <sstream>
#include <thread>

using namespace gstm;

namespace {

/// Cross-shard writer commits the plan analytically requires under the
/// round-robin placement: one per transaction whose write variables span
/// >= 2 shards. Every planned transaction commits exactly once and its
/// commit-time write mask is exactly its write variables' home shards, so
/// the runtime's CrossShardCommits counter must match this — the plan
/// predicts the telemetry, not just the final state.
uint64_t expectedCrossShardCommits(const FuzzPlan &Plan,
                                   unsigned ShardCount) {
  uint64_t Cross = 0;
  for (const auto &Txns : Plan.PerThread)
    for (const FuzzTxn &T : Txns) {
      uint64_t Mask = 0;
      for (const FuzzOp &Op : T.Ops)
        if (Op.IsWrite)
          Mask |= uint64_t{1} << (Op.Var % ShardCount);
      if ((Mask & (Mask - 1)) != 0)
        ++Cross;
    }
  return Cross;
}

} // namespace

ShardFuzzResult gstm::runShardFuzzIteration(uint64_t Seed,
                                            const ShardFuzzConfig &Cfg,
                                            bool Serial) {
  // Same plan space as the rmw workload: unique deltas, analytic final
  // state. Only the runtime underneath differs.
  FuzzConfig PlanCfg;
  PlanCfg.Threads = Cfg.Threads;
  PlanCfg.TxnsPerThread = Cfg.TxnsPerThread;
  PlanCfg.Vars = Cfg.Vars;
  PlanCfg.MaxOpsPerTxn = Cfg.MaxOpsPerTxn;
  FuzzPlan Plan = makeFuzzPlan(Seed, PlanCfg);

  ShardFuzzResult R;
  R.Expected = Plan.expectedFinal();
  R.ExpectedCrossShardCommits =
      expectedCrossShardCommits(Plan, Cfg.ShardCount);

  ShardConfig SC;
  SC.ShardCount = Cfg.ShardCount;
  SC.LockTableBits = 10; // small tables: deliberate stripe aliasing
  SC.PreemptShift = Cfg.PreemptShift;
  SC.SingleFenceCommit = Cfg.SingleFenceCommit;
  SC.Fault = Cfg.Fault;
  ShardedStm Stm(SC);

  std::vector<TVar<uint64_t>> Cells(Cfg.Vars);
  for (unsigned V = 0; V < Cfg.Vars; ++V)
    Cells[V].storeDirect(Plan.Initial[V]);

  // Round-robin explicit placement: variable v's home is shard
  // v % ShardCount regardless of the address hash, so which transactions
  // cross shards is a property of the plan, not of where the vector
  // landed in memory.
  ShardPlacement Placement;
  for (unsigned V = 0; V < Cfg.Vars; ++V)
    Placement.addRange(&Cells[V], &Cells[V] + 1, V % Cfg.ShardCount);
  Placement.finalize();
  Stm.setPlacement(&Placement);

  const unsigned RecThreads = Serial ? 1 : Cfg.Threads;
  HistoryRecorder Rec(RecThreads);
  for (unsigned V = 0; V < Cfg.Vars; ++V)
    Rec.noteInitial(&Cells[V].word(), Plan.Initial[V]);
  SchedulePerturber Perturb(RecThreads, Seed, &Rec, Cfg.PerturbShift);
  Stm.setAccessObserver(Serial ? static_cast<TxAccessObserver *>(&Rec)
                               : &Perturb);
  Stm.setObserver(&Rec);

  auto Body = [&](const FuzzTxn &T) {
    return [&Cells, &T](ShardedTxn &Tx) {
      for (const FuzzOp &Op : T.Ops) {
        uint64_t V = Tx.load(Cells[Op.Var]);
        if (Op.IsWrite)
          Tx.store(Cells[Op.Var], V + Op.Delta);
      }
    };
  };

  if (Serial) {
    ShardedTxn Txn(Stm, 0);
    for (unsigned T = 0; T < Cfg.Threads; ++T)
      for (size_t K = 0; K < Plan.PerThread[T].size(); ++K)
        Txn.run(static_cast<TxId>(K), Body(Plan.PerThread[T][K]));
  } else {
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < Cfg.Threads; ++T)
      Workers.emplace_back([&, T] {
        ShardedTxn Txn(Stm, T);
        const std::vector<FuzzTxn> &Txns = Plan.PerThread[T];
        for (size_t K = 0; K < Txns.size(); ++K)
          Txn.run(static_cast<TxId>(K), Body(Txns[K]));
      });
    for (std::thread &W : Workers)
      W.join();
  }

  Stm.setAccessObserver(nullptr);
  Stm.setObserver(nullptr);
  R.PerturbYields = Perturb.yieldCount();

  for (unsigned V = 0; V < Cfg.Vars; ++V)
    R.Final.push_back(Cells[V].loadDirect());

  std::string ResidueMsg;
  for (unsigned S = 0; S < Cfg.ShardCount && ResidueMsg.empty(); ++S) {
    std::string Why;
    lockTableQuiescent(Stm.lockTableOf(S), &Why);
    if (!Why.empty()) {
      std::ostringstream Os;
      Os << "shard " << S << ": " << Why;
      ResidueMsg = Os.str();
    }
  }

  StatsSnapshot Agg = Stm.stats().aggregate();
  R.CrossShardCommits = Agg.CrossShardCommits;
  R.CrossShardAborts = Agg.CrossShardAborts;
  R.PrepareRetries = Agg.PrepareRetries;

  History H = Rec.take();
  R.Attempts = H.Attempts.size();
  R.Committed = H.committedCount();
  R.Check = checkAll(H, Cfg.Checker);

  const size_t ExpectedCommits = size_t{Cfg.Threads} * Cfg.TxnsPerThread;
  std::ostringstream Err;
  if (R.Check.violation())
    Err << "checker: " << R.Check.Reason;
  else if (!ResidueMsg.empty())
    Err << "lock-residue: " << ResidueMsg;
  else if (R.Final != R.Expected) {
    size_t V = 0;
    while (V < R.Final.size() && R.Final[V] == R.Expected[V])
      ++V;
    Err << "final-state: var " << V << " = " << R.Final[V] << ", expected "
        << R.Expected[V];
  } else if (R.Committed != ExpectedCommits)
    Err << "accounting: " << R.Committed << " commits recorded, expected "
        << ExpectedCommits;
  else if (!Agg.consistent())
    Err << "accounting: stats breakdowns inconsistent with totals";
  else if (R.CrossShardCommits != R.ExpectedCrossShardCommits)
    Err << "coverage: " << R.CrossShardCommits
        << " cross-shard commits recorded, plan requires "
        << R.ExpectedCrossShardCommits;
  R.Error = Err.str();
  return R;
}

ShardDifferentialResult
gstm::runShardDifferential(uint64_t Seed, const ShardFuzzConfig &Cfg) {
  ShardDifferentialResult D;
  std::ostringstream Err;

  ShardFuzzResult Sharded = runShardFuzzIteration(Seed, Cfg);
  if (!Sharded.passed())
    Err << "sharded: " << Sharded.Error;
  D.PerVariant.emplace_back("sharded", std::move(Sharded));

  // shards=1 degenerate: the same chassis with every variable homed on
  // the single context — must behave exactly like unsharded TL2.
  ShardFuzzConfig One = Cfg;
  One.ShardCount = 1;
  ShardFuzzResult Single = runShardFuzzIteration(Seed, One);
  if (!Single.passed() && Err.str().empty())
    Err << "sharded-1: " << Single.Error;
  D.PerVariant.emplace_back("sharded-1", std::move(Single));

  ShardFuzzResult Ref = runShardFuzzIteration(Seed, Cfg, /*Serial=*/true);
  if (!Ref.passed() && Err.str().empty())
    Err << "ref: " << Ref.Error;
  D.PerVariant.emplace_back("ref", std::move(Ref));

  if (Err.str().empty())
    for (size_t I = 1; I < D.PerVariant.size(); ++I)
      if (D.PerVariant[I].second.Final != D.PerVariant[0].second.Final) {
        Err << "divergence: " << D.PerVariant[I].first
            << " disagrees with " << D.PerVariant[0].first
            << " on the final state";
        break;
      }
  D.Error = Err.str();
  return D;
}
