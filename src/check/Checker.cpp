//===- check/Checker.cpp ---------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace gstm;

namespace {

std::string describeAttempt(const AttemptRecord &A) {
  std::ostringstream Os;
  Os << "tx " << A.Tx << " on thread " << A.Thread << " (begin seq "
     << A.BeginSeq << ", "
     << (A.committed() ? "committed" : "not committed");
  if (A.committed() && !A.ReadOnly)
    Os << " at version " << A.CommitVersion;
  Os << ")";
  return Os.str();
}

CheckResult violation(std::string Reason) {
  return CheckResult{Verdict::Violation, std::move(Reason)};
}

CheckResult inconclusive(std::string Reason) {
  return CheckResult{Verdict::Inconclusive, std::move(Reason)};
}

} // namespace

//===----------------------------------------------------------------------===//
// Invariants
//===----------------------------------------------------------------------===//

CheckResult gstm::checkInvariants(const History &H,
                                  const CheckerConfig &Cfg) {
  // Commit-version sanity: unique, above the attempt's own rv, and
  // monotonically increasing per thread (the global clock never moves
  // backwards for any observer).
  std::unordered_map<uint64_t, const AttemptRecord *> ByVersion;
  std::unordered_map<ThreadId, uint64_t> LastVersionOfThread;
  for (const AttemptRecord &A : H.Attempts) {
    for (const AccessRecord &Acc : A.Accesses)
      if (Acc.K == AccessRecord::Kind::Load && !Acc.Buffered &&
          Acc.Version > A.ReadVersion)
        return violation("read validated against version " +
                         std::to_string(Acc.Version) +
                         " newer than the attempt's rv " +
                         std::to_string(A.ReadVersion) + " in " +
                         describeAttempt(A));
    if (!A.committed() || A.ReadOnly)
      continue;
    if (A.CommitVersion <= A.ReadVersion)
      return violation("commit version not above rv in " +
                       describeAttempt(A));
    auto [It, Fresh] = ByVersion.emplace(A.CommitVersion, &A);
    if (!Fresh)
      return violation("commit version " + std::to_string(A.CommitVersion) +
                       " installed twice: " + describeAttempt(*It->second) +
                       " and " + describeAttempt(A));
    auto [LastIt, FirstCommit] =
        LastVersionOfThread.emplace(A.Thread, A.CommitVersion);
    if (!FirstCommit) {
      if (A.CommitVersion <= LastIt->second)
        return violation("per-thread commit versions not monotonic on "
                         "thread " +
                         std::to_string(A.Thread));
      LastIt->second = A.CommitVersion;
    }
  }

  if (!Cfg.ValuesAreUnique)
    return CheckResult{};

  // Aborted-write visibility: every observed read value must have been
  // installed by a committed transaction or be the location's initial
  // value. A value only an aborted attempt ever wrote leaking into any
  // read is the classic isolation bug.
  std::unordered_map<const void *, std::unordered_set<uint64_t>> Committed;
  std::unordered_map<const void *, std::unordered_set<uint64_t>> Aborted;
  for (const AttemptRecord &A : H.Attempts) {
    if (A.committed()) {
      for (const auto &[Addr, Value] : A.finalWrites())
        Committed[Addr].insert(Value);
    } else {
      for (const AccessRecord &Acc : A.Accesses)
        if (Acc.K == AccessRecord::Kind::Store)
          Aborted[Acc.Addr].insert(Acc.Value);
    }
  }
  for (const AttemptRecord &A : H.Attempts) {
    for (const auto &[Addr, Value] : A.globalReads()) {
      auto InitIt = H.Initial.find(Addr);
      if (InitIt != H.Initial.end() && InitIt->second == Value)
        continue;
      auto CIt = Committed.find(Addr);
      if (CIt != Committed.end() && CIt->second.count(Value))
        continue;
      if (InitIt == H.Initial.end())
        continue; // unknown base value: cannot judge this location
      auto AIt = Aborted.find(Addr);
      if (AIt != Aborted.end() && AIt->second.count(Value))
        return violation("aborted transaction's write (value " +
                         std::to_string(Value) + ") observed by " +
                         describeAttempt(A));
      return violation("read of value " + std::to_string(Value) +
                       " that no transaction ever committed, in " +
                       describeAttempt(A));
    }
  }
  return CheckResult{};
}

//===----------------------------------------------------------------------===//
// Opacity: snapshot consistency of every attempt
//===----------------------------------------------------------------------===//

namespace {

/// Value \p Value was current on its location over [From, To).
struct Segment {
  uint64_t Value;
  uint64_t From;
  uint64_t To;
};

/// Per-location value timelines derived from the committed writers,
/// ordered by commit version (whose integrity checkInvariants vouches
/// for).
std::unordered_map<const void *, std::vector<Segment>>
buildTimelines(const History &H) {
  std::unordered_map<const void *, std::vector<std::pair<uint64_t, uint64_t>>>
      Writers; // addr -> (version, value)
  for (const AttemptRecord &A : H.Attempts) {
    if (!A.committed() || A.ReadOnly)
      continue;
    for (const auto &[Addr, Value] : A.finalWrites())
      Writers[Addr].emplace_back(A.CommitVersion, Value);
  }
  std::unordered_map<const void *, std::vector<Segment>> Timelines;
  constexpr uint64_t Inf = std::numeric_limits<uint64_t>::max();
  for (auto &[Addr, List] : Writers) {
    std::sort(List.begin(), List.end());
    std::vector<Segment> &Segs = Timelines[Addr];
    auto InitIt = H.Initial.find(Addr);
    if (InitIt != H.Initial.end())
      Segs.push_back(Segment{InitIt->second, 0, List.front().first});
    for (size_t I = 0; I < List.size(); ++I)
      Segs.push_back(Segment{List[I].second, List[I].first,
                             I + 1 < List.size() ? List[I + 1].first : Inf});
  }
  // Locations nobody committed to still have their initial segment.
  for (const auto &[Addr, Value] : H.Initial)
    if (!Timelines.count(Addr))
      Timelines[Addr].push_back(Segment{Value, 0, Inf});
  return Timelines;
}

} // namespace

CheckResult gstm::checkOpacity(const History &H, const CheckerConfig &Cfg) {
  (void)Cfg;
  auto Timelines = buildTimelines(H);
  for (const AttemptRecord &A : H.Attempts) {
    auto Reads = A.globalReads();
    if (Reads.empty())
      continue;
    // Candidate segments per read: the intervals over which the observed
    // value was current. Each read also carries the stripe/object version
    // it validated against; that version must fall inside the value's
    // interval (stripe versions only grow and data is written back before
    // the version is published, so a validated version at or past the
    // interval's end means the reader saw stale data under a fresher
    // version — exactly what a torn publish produces). Stripe aliasing
    // can only push the validated version later *within* the interval,
    // never outside it.
    std::vector<std::vector<const Segment *>> Candidates;
    for (const auto &[Addr, Value] : Reads) {
      auto TlIt = Timelines.find(Addr);
      if (TlIt == Timelines.end())
        continue; // never initialized nor committed to: no basis to judge
      uint64_t Validated = 0;
      for (const AccessRecord &Acc : A.Accesses)
        if (Acc.K == AccessRecord::Kind::Load && !Acc.Buffered &&
            Acc.Addr == Addr) {
          Validated = Acc.Version;
          break;
        }
      std::vector<const Segment *> Segs;
      bool ValueKnown = false;
      for (const Segment &S : TlIt->second)
        if (S.Value == Value) {
          ValueKnown = true;
          if (S.From <= Validated && Validated < S.To)
            Segs.push_back(&S);
        }
      if (!ValueKnown) {
        if (!H.Initial.count(Addr))
          continue; // could be the unknown initial value
        return violation("read of " + std::to_string(Value) +
                         " which was never current on its location, in " +
                         describeAttempt(A));
      }
      if (Segs.empty())
        return violation(
            "stale read: value " + std::to_string(Value) +
            " was already overwritten at the version the read "
            "validated against (" +
            std::to_string(Validated) + "), in " + describeAttempt(A));
      Candidates.push_back(std::move(Segs));
    }
    if (Candidates.empty())
      continue;
    // A consistent snapshot exists iff some point lies in one candidate
    // segment of every read. Only segment start points need testing.
    bool Consistent = false;
    for (const auto &PointSegs : Candidates) {
      for (const Segment *P : PointSegs) {
        uint64_t T = P->From;
        bool All = true;
        for (const auto &Segs : Candidates) {
          bool Hit = false;
          for (const Segment *S : Segs)
            if (S->From <= T && T < S->To) {
              Hit = true;
              break;
            }
          if (!Hit) {
            All = false;
            break;
          }
        }
        if (All) {
          Consistent = true;
          break;
        }
      }
      if (Consistent)
        break;
    }
    if (!Consistent)
      return violation("inconsistent snapshot: no point in time explains "
                       "all reads of " +
                       describeAttempt(A));
  }
  return CheckResult{};
}

//===----------------------------------------------------------------------===//
// Final-state serializability of the committed transactions
//===----------------------------------------------------------------------===//

namespace {

/// Constraint from a read: the other writer \p Other of the same location
/// must serialize either before the read's source \p Source or after the
/// reader \p Reader (never in between).
struct PlacementChoice {
  int Other;
  int Source;
  int Reader;
};

/// Acyclic digraph under construction; node 0 is the virtual initial
/// transaction. Edges are only added when they provably do not close a
/// cycle, so acyclicity is an invariant.
class OrderGraph {
public:
  explicit OrderGraph(int N, uint64_t Budget)
      : Adj(N), Mark(N, 0), Budget(Budget) {}

  bool budgetExhausted() const { return Exhausted; }

  /// True when a path From ->* To exists under the current edges.
  bool reaches(int From, int To) {
    if (From == To)
      return true;
    ++Epoch;
    return dfs(From, To);
  }

  /// Adds From -> To unless it would close a cycle; returns false then.
  bool addEdge(int From, int To) {
    if (reaches(To, From))
      return false;
    Adj[From].push_back(To);
    Trail.push_back(From);
    return true;
  }

  size_t mark() const { return Trail.size(); }
  void rewindTo(size_t M) {
    while (Trail.size() > M) {
      Adj[Trail.back()].pop_back();
      Trail.pop_back();
    }
  }

private:
  bool dfs(int At, int To) {
    if (Budget == 0) {
      Exhausted = true;
      return true; // claim reachability: callers then refuse the edge,
                   // which can only lead to Inconclusive, never Ok
    }
    --Budget;
    Mark[At] = Epoch;
    for (int Next : Adj[At]) {
      if (Next == To)
        return true;
      if (Mark[Next] != Epoch && dfs(Next, To))
        return true;
    }
    return false;
  }

  std::vector<std::vector<int>> Adj;
  std::vector<uint64_t> Mark;
  std::vector<int> Trail;
  uint64_t Epoch = 0;
  uint64_t Budget;
  bool Exhausted = false;
};

enum class Sat : uint8_t { Yes, No, Unknown };

Sat searchPlacements(OrderGraph &G,
                     const std::vector<PlacementChoice> &Choices,
                     size_t Idx) {
  if (G.budgetExhausted())
    return Sat::Unknown;
  if (Idx == Choices.size())
    return Sat::Yes;
  const PlacementChoice &C = Choices[Idx];
  // Already satisfied? Paths only grow, so once a disjunct holds it holds
  // in every extension.
  if (G.reaches(C.Other, C.Source) || G.reaches(C.Reader, C.Other))
    return searchPlacements(G, Choices, Idx + 1);
  bool SawUnknown = false;
  // Option A: Other before Source.
  size_t M = G.mark();
  if (G.addEdge(C.Other, C.Source)) {
    Sat R = searchPlacements(G, Choices, Idx + 1);
    if (R == Sat::Yes)
      return R;
    if (R == Sat::Unknown)
      SawUnknown = true;
    G.rewindTo(M);
  }
  // Option B: Reader before Other.
  if (G.addEdge(C.Reader, C.Other)) {
    Sat R = searchPlacements(G, Choices, Idx + 1);
    if (R == Sat::Yes)
      return R;
    if (R == Sat::Unknown)
      SawUnknown = true;
    G.rewindTo(M);
  }
  if (G.budgetExhausted() || SawUnknown)
    return Sat::Unknown;
  return Sat::No;
}

} // namespace

CheckResult gstm::checkCommittedSerializable(const History &H,
                                             const CheckerConfig &Cfg) {
  std::vector<const AttemptRecord *> Txns;
  for (const AttemptRecord &A : H.Attempts)
    if (A.committed())
      Txns.push_back(&A);
  const int N = static_cast<int>(Txns.size()) + 1; // node 0 = Init

  // Index the committed writers per location by written value.
  std::unordered_map<const void *, std::vector<std::pair<uint64_t, int>>>
      WritersOf; // addr -> (value, node)
  for (int I = 0; I < N - 1; ++I)
    for (const auto &[Addr, Value] : Txns[I]->finalWrites())
      WritersOf[Addr].emplace_back(Value, I + 1);

  OrderGraph G(N, Cfg.SearchBudget);
  // Real-time order: an attempt that ended before another began must
  // serialize before it.
  if (Cfg.RealTimeOrder)
    for (int I = 0; I < N - 1; ++I)
      for (int J = 0; J < N - 1; ++J)
        if (Txns[I]->EndSeq < Txns[J]->BeginSeq)
          if (!G.addEdge(I + 1, J + 1))
            return violation("real-time order of commits is cyclic "
                             "(corrupt history stamps)");

  std::vector<PlacementChoice> Choices;
  for (int I = 0; I < N - 1; ++I) {
    const int Reader = I + 1;
    for (const auto &[Addr, Value] : Txns[I]->globalReads()) {
      // Resolve the read to the transaction that produced the value.
      int Source = -1;
      bool Ambiguous = false;
      auto WIt = WritersOf.find(Addr);
      if (WIt != WritersOf.end())
        for (const auto &[WValue, WNode] : WIt->second) {
          if (WValue != Value || WNode == Reader)
            continue;
          if (Source >= 0)
            Ambiguous = true;
          Source = WNode;
        }
      auto InitIt = H.Initial.find(Addr);
      if (InitIt != H.Initial.end() && InitIt->second == Value) {
        if (Source >= 0)
          Ambiguous = true;
        else
          Source = 0;
      }
      if (Ambiguous)
        return Cfg.ValuesAreUnique
                   ? inconclusive("read value produced by several writers; "
                                  "cannot attribute the read")
                   : inconclusive("workload values not unique; skipping "
                                  "serializability");
      if (Source < 0) {
        if (InitIt == H.Initial.end())
          continue; // unknown initial value: read carries no constraint
        return violation("committed " + describeAttempt(*Txns[I]) +
                         " read value " + std::to_string(Value) +
                         " that no committed transaction wrote");
      }
      // Source must precede Reader...
      if (Source != 0 && !G.reaches(Source, Reader))
        if (!G.addEdge(Source, Reader))
          return violation("read-from order contradicts the established "
                           "commit order: " +
                           describeAttempt(*Txns[I]) + " read from " +
                           describeAttempt(*Txns[Source - 1]));
      // ...and no other writer of the location may fall in between.
      if (WIt != WritersOf.end())
        for (const auto &[WValue, WNode] : WIt->second) {
          if (WNode == Source || WNode == Reader)
            continue;
          if (Source == 0) {
            // Nothing precedes Init: the other writer must follow Reader.
            if (!G.addEdge(Reader, WNode))
              return violation(
                  "writer must follow a reader of the initial value but "
                  "is already ordered before it: " +
                  describeAttempt(*Txns[WNode - 1]) + " vs " +
                  describeAttempt(*Txns[I]));
          } else {
            Choices.push_back(PlacementChoice{WNode, Source, Reader});
          }
        }
    }
  }
  if (G.budgetExhausted())
    return inconclusive("serialization search budget exhausted");

  switch (searchPlacements(G, Choices, 0)) {
  case Sat::Yes:
    return CheckResult{};
  case Sat::Unknown:
    return inconclusive("serialization search budget exhausted");
  case Sat::No:
    return violation("no serialization of the committed transactions is "
                     "consistent with the observed read values");
  }
  return CheckResult{};
}

CheckResult gstm::checkAll(const History &H, const CheckerConfig &Cfg) {
  CheckResult Inv = checkInvariants(H, Cfg);
  if (Inv.violation())
    return Inv;
  CheckResult Op = checkOpacity(H, Cfg);
  if (Op.violation())
    return Op;
  CheckResult Ser = checkCommittedSerializable(H, Cfg);
  if (Ser.violation())
    return Ser;
  for (const CheckResult *R : {&Inv, &Op, &Ser})
    if (!R->ok())
      return *R;
  return CheckResult{};
}

bool gstm::lockTableQuiescent(LockTable &Locks, std::string *Why) {
  for (size_t I = 0, E = Locks.size(); I != E; ++I) {
    StripeState S = LockTable::decode(
        Locks.stripeAt(I).load(std::memory_order_acquire));
    if (S.Locked) {
      if (Why)
        *Why = "stripe " + std::to_string(I) +
               " still locked at quiescence (owner pair " +
               std::to_string(S.Owner) + ")";
      return false;
    }
  }
  return true;
}

bool gstm::byteLockTableQuiescent(ByteLockTable &Locks, std::string *Why) {
  for (size_t I = 0, E = Locks.size(); I != E; ++I) {
    ByteLock &L = Locks.lockAt(I);
    uint64_t Owner = L.Owner.load(std::memory_order_acquire);
    if (Owner != 0) {
      if (Why)
        *Why = "bytelock " + std::to_string(I) +
               " still write-owned at quiescence (owner word " +
               std::to_string(Owner) + ")";
      return false;
    }
    for (size_t Slot = 0; Slot < ByteLock::MaxReaderSlots; ++Slot)
      if (L.Readers[Slot].load(std::memory_order_acquire) != 0) {
        if (Why)
          *Why = "bytelock " + std::to_string(I) + " reader byte " +
                 std::to_string(Slot) + " still set at quiescence";
        return false;
      }
  }
  return true;
}
