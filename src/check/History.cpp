//===- check/History.cpp ---------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "check/History.h"

#include <algorithm>
#include <cassert>

using namespace gstm;

std::vector<std::pair<const void *, uint64_t>>
AttemptRecord::globalReads() const {
  std::vector<std::pair<const void *, uint64_t>> Reads;
  for (const AccessRecord &A : Accesses) {
    if (A.K != AccessRecord::Kind::Load || A.Buffered)
      continue;
    bool Seen = false;
    for (const auto &[Addr, Value] : Reads)
      if (Addr == A.Addr) {
        Seen = true;
        break;
      }
    if (!Seen)
      Reads.emplace_back(A.Addr, A.Value);
  }
  return Reads;
}

std::vector<std::pair<const void *, uint64_t>>
AttemptRecord::finalWrites() const {
  std::vector<std::pair<const void *, uint64_t>> Writes;
  for (const AccessRecord &A : Accesses) {
    if (A.K != AccessRecord::Kind::Store)
      continue;
    bool Updated = false;
    for (auto &[Addr, Value] : Writes)
      if (Addr == A.Addr) {
        Value = A.Value;
        Updated = true;
        break;
      }
    if (!Updated)
      Writes.emplace_back(A.Addr, A.Value);
  }
  return Writes;
}

size_t History::committedCount() const {
  size_t N = 0;
  for (const AttemptRecord &A : Attempts)
    N += A.committed();
  return N;
}

void HistoryRecorder::onTxBegin(ThreadId Thread, TxId Tx,
                                uint64_t ReadVersion) {
  assert(Thread < PerThread.size() && "thread id out of range");
  ThreadLog &Log = PerThread[Thread];
  // A begin while an attempt is open means the previous attempt's outcome
  // event was suppressed (should not happen with both observers attached);
  // close it as in-flight rather than losing it.
  if (Log.HasOpen)
    finish(Thread, AttemptOutcome::InFlight, 0, false);
  Log.Open = AttemptRecord{};
  Log.Open.Thread = Thread;
  Log.Open.Tx = Tx;
  Log.Open.ReadVersion = ReadVersion;
  Log.Open.BeginSeq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  Log.HasOpen = true;
}

void HistoryRecorder::onTxLoad(ThreadId Thread, const void *Addr,
                               uint64_t Value, uint64_t Version,
                               bool Buffered) {
  ThreadLog &Log = PerThread[Thread];
  if (!Log.HasOpen)
    return;
  AccessRecord A;
  A.K = AccessRecord::Kind::Load;
  A.Addr = Addr;
  A.Value = Value;
  A.Version = Version;
  A.Buffered = Buffered;
  Log.Open.Accesses.push_back(A);
}

void HistoryRecorder::onTxStore(ThreadId Thread, const void *Addr,
                                uint64_t Value) {
  ThreadLog &Log = PerThread[Thread];
  if (!Log.HasOpen)
    return;
  AccessRecord A;
  A.K = AccessRecord::Kind::Store;
  A.Addr = Addr;
  A.Value = Value;
  Log.Open.Accesses.push_back(A);
}

void HistoryRecorder::onLockAcquire(ThreadId Thread, uint64_t LockId) {
  ThreadLog &Log = PerThread[Thread];
  if (!Log.HasOpen)
    return;
  AccessRecord A;
  A.K = AccessRecord::Kind::LockAcquire;
  A.LockId = LockId;
  Log.Open.Accesses.push_back(A);
}

void HistoryRecorder::onCommit(const CommitEvent &E) {
  finish(E.Thread, AttemptOutcome::Committed, E.Version, E.ReadOnly);
}

void HistoryRecorder::onAbort(const AbortEvent &E) {
  finish(E.Thread, AttemptOutcome::Aborted, 0, false);
}

void HistoryRecorder::finish(ThreadId Thread, AttemptOutcome Outcome,
                             uint64_t Version, bool ReadOnly) {
  assert(Thread < PerThread.size() && "thread id out of range");
  ThreadLog &Log = PerThread[Thread];
  if (!Log.HasOpen)
    return; // outcome without a recorded begin (observer attached late)
  Log.Open.Outcome = Outcome;
  Log.Open.CommitVersion = Version;
  Log.Open.ReadOnly = ReadOnly;
  Log.Open.EndSeq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  Log.Done.push_back(std::move(Log.Open));
  Log.Open = AttemptRecord{};
  Log.HasOpen = false;
}

History HistoryRecorder::take() {
  History H;
  H.Initial = Initial;
  size_t Total = 0;
  for (const ThreadLog &Log : PerThread)
    Total += Log.Done.size() + (Log.HasOpen ? 1 : 0);
  H.Attempts.reserve(Total);
  for (ThreadLog &Log : PerThread) {
    for (AttemptRecord &A : Log.Done)
      H.Attempts.push_back(std::move(A));
    Log.Done.clear();
    if (Log.HasOpen) {
      // A worker died mid-attempt (or the run was cut short): keep the
      // partial attempt so the invariant checkers can still see it.
      Log.Open.EndSeq = NextSeq.load(std::memory_order_relaxed);
      H.Attempts.push_back(std::move(Log.Open));
      Log.Open = AttemptRecord{};
      Log.HasOpen = false;
    }
  }
  NextSeq.store(0, std::memory_order_relaxed);
  std::sort(H.Attempts.begin(), H.Attempts.end(),
            [](const AttemptRecord &A, const AttemptRecord &B) {
              return A.BeginSeq < B.BeginSeq;
            });
  return H;
}
