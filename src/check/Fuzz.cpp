//===- check/Fuzz.cpp ------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "check/Fuzz.h"

#include "check/Perturb.h"
#include "engine/Engines.h"
#include "libtm/LibTm.h"
#include "stm/TVar.h"
#include "support/SplitMix64.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <sstream>
#include <thread>

using namespace gstm;

const char *gstm::fuzzBackendName(FuzzBackend B) {
  switch (B) {
  case FuzzBackend::Tl2Lazy:
    return "tl2-lazy";
  case FuzzBackend::Tl2Eager:
    return "tl2-eager";
  case FuzzBackend::LibTm:
    return "libtm";
  case FuzzBackend::OrecEager:
    return OrecEagerPolicy::Name;
  case FuzzBackend::Tlrw:
    return TlrwPolicy::Name;
  case FuzzBackend::TwoPlUndo:
    return TwoPlPolicy::Name;
  case FuzzBackend::Reference:
    return "ref";
  }
  return "?";
}

bool gstm::fuzzBackendFromName(const std::string &Name, FuzzBackend &Out) {
  for (FuzzBackend B : AllFuzzBackends)
    if (Name == fuzzBackendName(B)) {
      Out = B;
      return true;
    }
  return false;
}

std::vector<uint64_t> FuzzPlan::expectedFinal() const {
  std::vector<uint64_t> Final = Initial;
  for (const auto &Txns : PerThread)
    for (const FuzzTxn &T : Txns)
      for (const FuzzOp &Op : T.Ops)
        if (Op.IsWrite)
          Final[Op.Var] += Op.Delta;
  return Final;
}

FuzzPlan gstm::makeFuzzPlan(uint64_t Seed, const FuzzConfig &Cfg) {
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  FuzzPlan Plan;
  Plan.Initial.resize(Cfg.Vars);
  for (uint64_t &V : Plan.Initial)
    V = Rng.next();

  std::vector<unsigned> VarOrder(Cfg.Vars);
  std::iota(VarOrder.begin(), VarOrder.end(), 0u);

  Plan.PerThread.resize(Cfg.Threads);
  for (unsigned T = 0; T < Cfg.Threads; ++T) {
    Plan.PerThread[T].resize(Cfg.TxnsPerThread);
    for (unsigned K = 0; K < Cfg.TxnsPerThread; ++K) {
      FuzzTxn &Txn = Plan.PerThread[T][K];
      unsigned MaxOps = std::min<unsigned>(Cfg.MaxOpsPerTxn, Cfg.Vars);
      unsigned NumOps = 1 + static_cast<unsigned>(
                                Rng.nextBounded(MaxOps ? MaxOps : 1));
      NumOps = std::min(NumOps, Cfg.Vars);
      // Partial Fisher-Yates: the first NumOps entries become a uniform
      // sample of distinct variables.
      for (unsigned I = 0; I < NumOps; ++I) {
        unsigned J = I + static_cast<unsigned>(
                             Rng.nextBounded(Cfg.Vars - I));
        std::swap(VarOrder[I], VarOrder[J]);
      }
      Txn.Ops.resize(NumOps);
      for (unsigned I = 0; I < NumOps; ++I) {
        FuzzOp &Op = Txn.Ops[I];
        Op.Var = VarOrder[I];
        Op.IsWrite = (Rng.next() & 1) != 0;
        // Unique full-width deltas make every intermediate value of a
        // variable distinct (whp), which the checkers' value-based read
        // attribution needs. Zero would alias consecutive values.
        if (Op.IsWrite)
          do {
            Op.Delta = Rng.next();
          } while (Op.Delta == 0);
      }
    }
  }
  return Plan;
}

namespace {

/// Applies the per-run verdicts shared by every backend.
void judge(FuzzRunResult &R, const History &H, const FuzzConfig &Cfg,
           size_t ExpectedCommits, const std::string &LockResidue) {
  R.Attempts = H.Attempts.size();
  R.Committed = H.committedCount();
  R.Check = checkAll(H, Cfg.Checker);

  std::ostringstream Err;
  if (R.Check.violation())
    Err << "checker: " << R.Check.Reason;
  else if (!LockResidue.empty())
    Err << "lock-residue: " << LockResidue;
  else if (R.Final != R.Expected) {
    size_t Bad = 0;
    while (Bad < R.Final.size() && R.Final[Bad] == R.Expected[Bad])
      ++Bad;
    Err << "final-state: var " << Bad << " is " << R.Final[Bad]
        << ", expected " << R.Expected[Bad]
        << " (lost or phantom update)";
  } else if (R.Committed != ExpectedCommits)
    Err << "accounting: " << R.Committed << " commits recorded, expected "
        << ExpectedCommits;
  R.Error = Err.str();
}

FuzzRunResult runTl2(const FuzzPlan &Plan, uint64_t Seed,
                     ConflictDetection Detection, const FuzzConfig &Cfg) {
  FuzzRunResult R;
  R.Expected = Plan.expectedFinal();

  Tl2Config C;
  C.LockTableBits = 10; // small table: deliberate stripe aliasing pressure
  C.Detection = Detection;
  C.PreemptShift = Cfg.PreemptShift;
  C.SingleFenceCommit = Cfg.SingleFenceCommit;
  C.Fault = Cfg.Fault;
  Tl2Stm Stm(C);

  std::deque<TVar<uint64_t>> Vars;
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    Vars.emplace_back(Plan.Initial[I]);

  HistoryRecorder Rec(Cfg.Threads);
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    Rec.noteInitial(&Vars[I].word(), Plan.Initial[I]);
  SchedulePerturber Perturb(Cfg.Threads, Seed, &Rec, Cfg.PerturbShift);
  Stm.setAccessObserver(&Perturb);
  Stm.setObserver(&Rec);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    Workers.emplace_back([&, T] {
      Tl2Txn Txn(Stm, T);
      const std::vector<FuzzTxn> &Txns = Plan.PerThread[T];
      for (size_t K = 0; K < Txns.size(); ++K)
        Txn.run(static_cast<TxId>(K), [&](Tl2Txn &Tx) {
          for (const FuzzOp &Op : Txns[K].Ops) {
            uint64_t V = Tx.load(Vars[Op.Var]);
            if (Op.IsWrite)
              Tx.store(Vars[Op.Var], V + Op.Delta);
          }
        });
    });
  for (std::thread &W : Workers)
    W.join();

  Stm.setAccessObserver(nullptr);
  Stm.setObserver(nullptr);
  R.PerturbYields = Perturb.yieldCount();

  R.Final.resize(Cfg.Vars);
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    R.Final[I] = Vars[I].loadDirect();

  std::string Residue;
  lockTableQuiescent(Stm.lockTable(), &Residue);
  judge(R, Rec.take(), Cfg,
        size_t{Cfg.Threads} * Cfg.TxnsPerThread, Residue);
  return R;
}

/// One runner covers all three policy-templated engines: the chassis
/// mirrors Tl2Stm's observer/stats surface, so only the table type (and
/// hence the residue probe) varies per policy.
template <typename Policy>
FuzzRunResult runEngine(const FuzzPlan &Plan, uint64_t Seed,
                        const FuzzConfig &Cfg) {
  FuzzRunResult R;
  R.Expected = Plan.expectedFinal();

  EngineConfig C;
  C.TableBits = 10; // small table: deliberate entry aliasing pressure
  C.PreemptShift = Cfg.PreemptShift;
  C.SingleFenceCommit = Cfg.SingleFenceCommit;
  C.Fault = Cfg.EngineFault;
  EngineStm<Policy> Stm(C);

  std::deque<TVar<uint64_t>> Vars;
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    Vars.emplace_back(Plan.Initial[I]);

  HistoryRecorder Rec(Cfg.Threads);
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    Rec.noteInitial(&Vars[I].word(), Plan.Initial[I]);
  SchedulePerturber Perturb(Cfg.Threads, Seed, &Rec, Cfg.PerturbShift);
  Stm.setAccessObserver(&Perturb);
  Stm.setObserver(&Rec);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    Workers.emplace_back([&, T] {
      EngineTxn<Policy> Txn(Stm, T);
      const std::vector<FuzzTxn> &Txns = Plan.PerThread[T];
      for (size_t K = 0; K < Txns.size(); ++K)
        Txn.run(static_cast<TxId>(K), [&](EngineTxn<Policy> &Tx) {
          for (const FuzzOp &Op : Txns[K].Ops) {
            uint64_t V = Tx.load(Vars[Op.Var]);
            if (Op.IsWrite)
              Tx.store(Vars[Op.Var], V + Op.Delta);
          }
        });
    });
  for (std::thread &W : Workers)
    W.join();

  Stm.setAccessObserver(nullptr);
  Stm.setObserver(nullptr);
  R.PerturbYields = Perturb.yieldCount();

  R.Final.resize(Cfg.Vars);
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    R.Final[I] = Vars[I].loadDirect();

  std::string Residue;
  if constexpr (std::is_same_v<typename Policy::Table, ByteLockTable>)
    byteLockTableQuiescent(Stm.table(), &Residue);
  else
    lockTableQuiescent(Stm.table(), &Residue);
  judge(R, Rec.take(), Cfg,
        size_t{Cfg.Threads} * Cfg.TxnsPerThread, Residue);
  return R;
}

FuzzRunResult runLibTm(const FuzzPlan &Plan, uint64_t Seed,
                       const FuzzConfig &Cfg) {
  FuzzRunResult R;
  R.Expected = Plan.expectedFinal();

  LibTmConfig C;
  C.PreemptShift = Cfg.PreemptShift;
  C.SingleFenceCommit = Cfg.SingleFenceCommit;
  LibTm Tm(C);

  std::deque<TObj<uint64_t>> Objs;
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    Objs.emplace_back(Plan.Initial[I]);

  HistoryRecorder Rec(Cfg.Threads);
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    Rec.noteInitial(&Objs[I], Plan.Initial[I]);
  SchedulePerturber Perturb(Cfg.Threads, Seed, &Rec, Cfg.PerturbShift);
  Tm.setAccessObserver(&Perturb);
  Tm.setObserver(&Rec);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    Workers.emplace_back([&, T] {
      LibTxn Txn(Tm, T);
      const std::vector<FuzzTxn> &Txns = Plan.PerThread[T];
      for (size_t K = 0; K < Txns.size(); ++K)
        Txn.run(static_cast<TxId>(K), [&](LibTxn &Tx) {
          for (const FuzzOp &Op : Txns[K].Ops) {
            uint64_t V = Tx.read(Objs[Op.Var]);
            if (Op.IsWrite)
              Tx.write(Objs[Op.Var], V + Op.Delta);
          }
        });
    });
  for (std::thread &W : Workers)
    W.join();

  Tm.setAccessObserver(nullptr);
  Tm.setObserver(nullptr);
  R.PerturbYields = Perturb.yieldCount();

  R.Final.resize(Cfg.Vars);
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    R.Final[I] = Objs[I].loadDirect();

  std::string Residue;
  for (unsigned I = 0; I < Cfg.Vars; ++I) {
    StripeState S = LockTable::decode(
        Objs[I].meta().load(std::memory_order_acquire));
    if (S.Locked) {
      Residue = "object " + std::to_string(I) +
                " still locked at quiescence";
      break;
    }
  }
  judge(R, Rec.take(), Cfg,
        size_t{Cfg.Threads} * Cfg.TxnsPerThread, Residue);
  return R;
}

/// Serial ground truth: interprets the plan thread-by-thread on a plain
/// array while synthesizing the corresponding single-threaded history
/// through the recorder, so the checkers see a well-formed input whose
/// verdict must be Ok. Doubles as the known-good state for the
/// differential comparison and as a self-test of the checker pipeline.
FuzzRunResult runReference(const FuzzPlan &Plan, const FuzzConfig &Cfg) {
  FuzzRunResult R;
  R.Expected = Plan.expectedFinal();

  std::vector<uint64_t> Values = Plan.Initial;
  std::vector<uint64_t> VarVersion(Cfg.Vars, 0);

  HistoryRecorder Rec(1);
  for (unsigned I = 0; I < Cfg.Vars; ++I)
    Rec.noteInitial(&Values[I], Plan.Initial[I]);

  uint64_t Clock = 0;
  for (unsigned T = 0; T < Cfg.Threads; ++T)
    for (size_t K = 0; K < Plan.PerThread[T].size(); ++K) {
      const FuzzTxn &Txn = Plan.PerThread[T][K];
      Rec.onTxBegin(0, static_cast<TxId>(K), Clock);
      std::vector<std::pair<unsigned, uint64_t>> Writes;
      for (const FuzzOp &Op : Txn.Ops) {
        Rec.onTxLoad(0, &Values[Op.Var], Values[Op.Var],
                     VarVersion[Op.Var], /*Buffered=*/false);
        if (Op.IsWrite) {
          uint64_t New = Values[Op.Var] + Op.Delta;
          Rec.onTxStore(0, &Values[Op.Var], New);
          Writes.emplace_back(Op.Var, New);
        }
      }
      bool ReadOnly = Writes.empty();
      uint64_t Wv = 0;
      if (!ReadOnly) {
        Wv = ++Clock;
        for (const auto &[Var, New] : Writes) {
          Values[Var] = New;
          VarVersion[Var] = Wv;
        }
      }
      Rec.onCommit(CommitEvent{0, static_cast<TxId>(K), Wv, 0, ReadOnly});
    }

  R.Final = Values;
  judge(R, Rec.take(), Cfg,
        size_t{Cfg.Threads} * Cfg.TxnsPerThread, /*LockResidue=*/"");
  return R;
}

} // namespace

FuzzRunResult gstm::runFuzzIteration(uint64_t Seed, FuzzBackend Backend,
                                     const FuzzConfig &Cfg) {
  FuzzPlan Plan = makeFuzzPlan(Seed, Cfg);
  switch (Backend) {
  case FuzzBackend::Tl2Lazy:
    return runTl2(Plan, Seed, ConflictDetection::Lazy, Cfg);
  case FuzzBackend::Tl2Eager:
    return runTl2(Plan, Seed, ConflictDetection::Eager, Cfg);
  case FuzzBackend::LibTm:
    return runLibTm(Plan, Seed, Cfg);
  case FuzzBackend::OrecEager:
    return runEngine<OrecEagerPolicy>(Plan, Seed, Cfg);
  case FuzzBackend::Tlrw:
    return runEngine<TlrwPolicy>(Plan, Seed, Cfg);
  case FuzzBackend::TwoPlUndo:
    return runEngine<TwoPlPolicy>(Plan, Seed, Cfg);
  case FuzzBackend::Reference:
    return runReference(Plan, Cfg);
  }
  return FuzzRunResult{};
}

DifferentialResult gstm::runDifferential(uint64_t Seed,
                                         const FuzzConfig &Cfg) {
  DifferentialResult D;
  std::ostringstream Err;
  for (FuzzBackend B : AllFuzzBackends) {
    FuzzRunResult R = runFuzzIteration(Seed, B, Cfg);
    if (!R.passed() && Err.str().empty())
      Err << fuzzBackendName(B) << ": " << R.Error;
    D.PerBackend.emplace_back(B, std::move(R));
  }
  // Cross-backend: every backend must land in the same final state (each
  // already equals the analytic expectation when it passed, but compare
  // directly so a bug in the expectation itself cannot mask divergence).
  if (Err.str().empty())
    for (size_t I = 1; I < D.PerBackend.size(); ++I)
      if (D.PerBackend[I].second.Final != D.PerBackend[0].second.Final) {
        Err << "divergence: " << fuzzBackendName(D.PerBackend[I].first)
            << " disagrees with "
            << fuzzBackendName(D.PerBackend[0].first)
            << " on the final state";
        break;
      }
  D.Error = Err.str();
  return D;
}
