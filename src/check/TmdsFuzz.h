//===- check/TmdsFuzz.h - Differential fuzz for the tmds containers ------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structure-level companion to the word-level fuzzer in check/Fuzz.h:
/// instead of read-modify-write transactions over a flat array, each seed
/// expands into a randomized map workload (insert/update/remove/find/
/// scan/size) over a transactional skiplist or B-tree (src/tmds), run
/// under the same backend matrix — TL2 lazy, TL2 eager, LibTm, the
/// policy-templated engines (orec-eager, tlrw, 2pl-undo), and a
/// serial reference execution — with seeded schedule perturbation and
/// full history checking.
///
/// Mutating operations are key-partitioned: thread T only inserts,
/// updates or removes keys congruent to T modulo the thread count. Reads
/// roam the whole keyspace. Under any serializable execution each key's
/// final value is then determined by its owner thread's program order
/// alone, so a plain std::map oracle yields the schedule-independent
/// expected final contents every backend must agree on.
///
/// Verdicts per run: the opacity/serializability checkers must not find a
/// Violation (Inconclusive is acceptable — node addresses churn, so the
/// checkers run with ValuesAreUnique=false), no lock residue may survive
/// quiescence, the structure's own validateDirect() must hold, the final
/// contents must equal the oracle, and the commit count must match the
/// plan. The differential driver additionally requires all backends to
/// agree on the final contents.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CHECK_TMDSFUZZ_H
#define GSTM_CHECK_TMDSFUZZ_H

#include "check/Fuzz.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gstm {

/// Which tmds container a fuzz run drives.
enum class TmdsStructure : uint8_t { SkipList, BTree };

const char *tmdsStructureName(TmdsStructure S);
bool tmdsStructureFromName(const std::string &Name, TmdsStructure &Out);

/// One map operation inside a transaction.
struct TmdsOp {
  enum class Kind : uint8_t { Insert, Update, Remove, Find, Scan, Size };
  Kind K = Kind::Find;
  uint64_t Key = 0;
  uint64_t Value = 0;   // Insert/Update payload
  uint32_t Count = 0;   // Scan length
};

/// One transaction: its operations in program order.
struct TmdsTxn {
  std::vector<TmdsOp> Ops;
};

/// A fully expanded workload: quiescent prepopulation plus per-thread
/// transaction sequences with thread-partitioned mutation keys.
struct TmdsPlan {
  /// Sorted, unique (key, value) pairs inserted before the timed run.
  std::vector<std::pair<uint64_t, uint64_t>> Prepopulate;
  std::vector<std::vector<TmdsTxn>> PerThread;

  /// Oracle: final sorted (key, value) contents under any serializable
  /// execution (valid because mutations are key-partitioned by thread).
  std::vector<std::pair<uint64_t, uint64_t>> expectedFinal() const;
};

/// Workload shape knobs; Checker.ValuesAreUnique is forced off by the
/// runners (distinct map entries may legitimately carry equal values and
/// node cells are recycled across keys between runs).
struct TmdsFuzzConfig {
  TmdsStructure Structure = TmdsStructure::SkipList;
  unsigned Threads = 3;
  unsigned TxnsPerThread = 6;
  unsigned OpsPerTxn = 3;
  /// Keyspace is [1, Keys]; reads may also probe just past it.
  unsigned Keys = 32;
  unsigned PreemptShift = 2;
  unsigned PerturbShift = 2;
  bool SingleFenceCommit = true;
  CheckerConfig Checker;
};

/// Deterministically expands \p Seed into a workload plan.
TmdsPlan makeTmdsPlan(uint64_t Seed, const TmdsFuzzConfig &Cfg);

/// Outcome of one structure run under one backend.
struct TmdsRunResult {
  /// Empty when the run passed; otherwise the first verdict violated.
  std::string Error;
  CheckResult Check;
  /// Final sorted (key, value) contents read back quiescently.
  std::vector<std::pair<uint64_t, uint64_t>> Final;
  std::vector<std::pair<uint64_t, uint64_t>> Expected;
  size_t Attempts = 0;
  size_t Committed = 0;
  size_t PerturbYields = 0;

  bool passed() const { return Error.empty(); }
};

/// Runs one seed under one backend (Reference = serial execution of the
/// same plan on the TL2-backed structure).
TmdsRunResult runTmdsFuzzIteration(uint64_t Seed, FuzzBackend Backend,
                                   const TmdsFuzzConfig &Cfg);

/// One seed across all backends plus cross-backend agreement on the
/// final contents.
struct TmdsDifferentialResult {
  std::vector<std::pair<FuzzBackend, TmdsRunResult>> PerBackend;
  std::string Error;

  bool passed() const { return Error.empty(); }
};

TmdsDifferentialResult runTmdsDifferential(uint64_t Seed,
                                           const TmdsFuzzConfig &Cfg);

} // namespace gstm

#endif // GSTM_CHECK_TMDSFUZZ_H
