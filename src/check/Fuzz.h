//===- check/Fuzz.h - Differential STM fuzzing ----------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, reproducible STM fuzzing: a seed expands into a FuzzPlan — a
/// fixed population of read-modify-write transactions over a small TVar
/// array — which runs under any backend configuration (TL2 lazy, TL2
/// eager, LibTm, the three policy-templated engines from src/engine, and
/// a single-threaded reference interpreter) with schedule perturbation
/// and full history recording. Each run is judged three ways:
///
///  * the recorded history must pass the checkers (check/Checker.h),
///  * the final memory state must equal the plan's analytic expectation
///    (every write adds a unique delta to the value it read, so any
///    serializable execution ends at initial + sum of deltas), and
///  * the runtime's locks must be quiescent after the workers join.
///
/// Because the expected final state is schedule-independent, the same
/// plan's outcome is directly comparable across backends: that is the
/// differential test (runDifferential). A failing seed reproduces with
/// `check_fuzz --seed <S> --backend <B>`.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CHECK_FUZZ_H
#define GSTM_CHECK_FUZZ_H

#include "check/Checker.h"
#include "check/History.h"
#include "engine/Core.h"
#include "stm/Tl2.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gstm {

/// Backend configuration a fuzz plan can execute under.
enum class FuzzBackend : uint8_t {
  /// TL2, commit-time (lazy) conflict detection — the paper's default.
  Tl2Lazy,
  /// TL2, encounter-time (eager) locking with undo log.
  Tl2Eager,
  /// Object-based LibTm, one TObj<uint64_t> per variable.
  LibTm,
  /// Policy-templated engines (src/engine): orec-based encounter-time
  /// locking with undo log and commit-time read validation,
  OrecEager,
  /// TLRW-style visible-reader bytelocks (no commit validation),
  Tlrw,
  /// and no-wait strict two-phase locking over the stripe table.
  TwoPlUndo,
  /// Single-threaded reference interpreter: executes the plan serially
  /// and synthesizes the history by hand. Known-good ground truth for
  /// both the differential comparison and the checkers themselves.
  Reference,
};

/// Short stable name ("tl2-lazy", ...) for reports and --backend flags.
const char *fuzzBackendName(FuzzBackend B);
/// Inverse of fuzzBackendName; returns false when \p Name is unknown.
bool fuzzBackendFromName(const std::string &Name, FuzzBackend &Out);

/// Every backend, in fuzzBackendName order: the two hand-written
/// runtimes in their modes, the three policy-templated engines, and the
/// serial reference.
inline constexpr FuzzBackend AllFuzzBackends[] = {
    FuzzBackend::Tl2Lazy,   FuzzBackend::Tl2Eager, FuzzBackend::LibTm,
    FuzzBackend::OrecEager, FuzzBackend::Tlrw,     FuzzBackend::TwoPlUndo,
    FuzzBackend::Reference};

/// Shape of the generated workloads. The defaults are sized for a
/// single-core CI host: small enough that a thousand iterations run in
/// seconds, contended enough (few variables, several threads) that
/// conflicts and aborts actually happen.
struct FuzzConfig {
  unsigned Threads = 3;
  unsigned TxnsPerThread = 8;
  unsigned Vars = 6;
  /// Operations per transaction are drawn from [1, MaxOpsPerTxn], each on
  /// a distinct variable; roughly half become read-modify-writes.
  unsigned MaxOpsPerTxn = 4;
  /// STM-internal random preemption (Tl2Config/LibTmConfig PreemptShift).
  unsigned PreemptShift = 2;
  /// Observer-level perturbation (SchedulePerturber yield shift).
  unsigned PerturbShift = 2;
  /// Commit ordering for the TL2/LibTm backends: true exercises the
  /// single-fence writeback path (the runtime default), false the
  /// standard advance-then-validate-then-publish ordering. CI smoke runs
  /// sweep both (tools/check_fuzz.cpp).
  bool SingleFenceCommit = true;
  /// Fault injection for the TL2 backends (mutation self-test only).
  Tl2FaultInjection Fault;
  /// Fault injection for the policy-templated engine backends (mutation
  /// self-test only; see EngineFaultInjection for the per-engine knobs).
  EngineFaultInjection EngineFault;
  CheckerConfig Checker;
};

/// One generated operation: read variable Var; when IsWrite, write back
/// the value read plus Delta.
struct FuzzOp {
  unsigned Var = 0;
  bool IsWrite = false;
  uint64_t Delta = 0;
};

/// One generated transaction (one run() body).
struct FuzzTxn {
  std::vector<FuzzOp> Ops;
};

/// A fully expanded seed: initial values plus each thread's transaction
/// list. Deterministic function of (Seed, Cfg shape).
struct FuzzPlan {
  std::vector<uint64_t> Initial;
  std::vector<std::vector<FuzzTxn>> PerThread;

  /// Schedule-independent expected final state: Initial[v] plus the sum
  /// of every write delta targeting v.
  std::vector<uint64_t> expectedFinal() const;
};

/// Expands \p Seed into a plan. Write deltas are drawn from the full
/// 64-bit space, making every intermediate value of a variable unique with
/// overwhelming probability — the property the checkers' value-based read
/// attribution rests on.
FuzzPlan makeFuzzPlan(uint64_t Seed, const FuzzConfig &Cfg);

/// Outcome of one (seed, backend) execution.
struct FuzzRunResult {
  /// Empty when the run passed; otherwise the first failure, prefixed
  /// with its class (checker / final-state / lock-residue / accounting).
  std::string Error;
  /// Checker verdict over the recorded history.
  CheckResult Check;
  std::vector<uint64_t> Final;
  std::vector<uint64_t> Expected;
  /// Attempts recorded (committed + aborted) and committed transactions.
  size_t Attempts = 0;
  size_t Committed = 0;
  /// Yields injected by the perturber (schedule-pressure telemetry).
  uint64_t PerturbYields = 0;

  bool passed() const { return Error.empty(); }
};

/// Runs the plan expanded from \p Seed under \p Backend and judges it.
FuzzRunResult runFuzzIteration(uint64_t Seed, FuzzBackend Backend,
                               const FuzzConfig &Cfg = FuzzConfig());

/// Outcome of one seed across all backends.
struct DifferentialResult {
  std::vector<std::pair<FuzzBackend, FuzzRunResult>> PerBackend;
  /// Empty when every backend passed and all final states agree.
  std::string Error;

  bool passed() const { return Error.empty(); }
};

/// Runs \p Seed under every backend and cross-compares the final states.
DifferentialResult runDifferential(uint64_t Seed,
                                   const FuzzConfig &Cfg = FuzzConfig());

} // namespace gstm

#endif // GSTM_CHECK_FUZZ_H
