//===- check/Perturb.h - Seeded schedule perturbation ---------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SchedulePerturber rides the TxAccessObserver hook surface to inject
/// seeded, deterministic-per-thread yield points at every instrumented STM
/// event (attempt begin, load, store, lock acquire). On hosts with fewer
/// cores than worker threads this is what actually explores distinct
/// interleavings: the OS alone would run each transaction to completion
/// within its scheduling quantum and the fuzzer would only ever see the
/// serial schedule. Different seeds displace the yields to different
/// accesses, so iterating seeds sweeps the schedule space.
///
/// The perturber tees: it forwards every event to a downstream observer
/// (normally the HistoryRecorder) after the optional yield, so recording
/// and perturbation stack without the runtimes knowing about either.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CHECK_PERTURB_H
#define GSTM_CHECK_PERTURB_H

#include "stm/Observer.h"
#include "support/Ids.h"
#include "support/SplitMix64.h"

#include <thread>
#include <vector>

namespace gstm {

/// Injects seeded yields at instrumented STM points, then forwards to a
/// downstream TxAccessObserver.
class SchedulePerturber : public TxAccessObserver {
public:
  /// Each access yields with probability 2^-YieldShift; per-thread RNG
  /// streams are derived from \p Seed so a seed fully determines where
  /// the kicks land (modulo OS scheduling).
  SchedulePerturber(unsigned NumThreads, uint64_t Seed,
                    TxAccessObserver *Next = nullptr,
                    unsigned YieldShift = 2)
      : Next(Next), Mask((uint64_t{1} << YieldShift) - 1) {
    Streams.reserve(NumThreads);
    SplitMix64 Root(Seed ^ 0x5bf03635d1a2b1ffULL);
    for (unsigned I = 0; I < NumThreads; ++I)
      Streams.emplace_back(Root.split());
  }

  void onTxBegin(ThreadId Thread, TxId Tx, uint64_t ReadVersion) override {
    maybeYield(Thread);
    if (Next)
      Next->onTxBegin(Thread, Tx, ReadVersion);
  }
  void onTxLoad(ThreadId Thread, const void *Addr, uint64_t Value,
                uint64_t Version, bool Buffered) override {
    maybeYield(Thread);
    if (Next)
      Next->onTxLoad(Thread, Addr, Value, Version, Buffered);
  }
  void onTxStore(ThreadId Thread, const void *Addr,
                 uint64_t Value) override {
    maybeYield(Thread);
    if (Next)
      Next->onTxStore(Thread, Addr, Value);
  }
  void onLockAcquire(ThreadId Thread, uint64_t LockId) override {
    maybeYield(Thread);
    if (Next)
      Next->onLockAcquire(Thread, LockId);
  }

  uint64_t yieldCount() const {
    uint64_t N = 0;
    for (const Stream &S : Streams)
      N += S.Yields;
    return N;
  }

private:
  struct alignas(64) Stream {
    explicit Stream(SplitMix64 Rng) : Rng(Rng) {}
    SplitMix64 Rng;
    uint64_t Yields = 0;
  };

  void maybeYield(ThreadId Thread) {
    Stream &S = Streams[Thread];
    if ((S.Rng.next() & Mask) == 0) {
      ++S.Yields;
      std::this_thread::yield();
    }
  }

  TxAccessObserver *Next;
  uint64_t Mask;
  std::vector<Stream> Streams;
};

} // namespace gstm

#endif // GSTM_CHECK_PERTURB_H
