//===- lint/Lexer.cpp -----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "lint/Lexer.h"

#include <array>
#include <cctype>
#include <string>

using namespace gstm;
using namespace gstm::lint;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Multi-character punctuators, longest first within each leading char.
/// Only operators the analyzer distinguishes need to be here; anything
/// else falls back to a single character, which is fine for scanning.
constexpr std::array<std::string_view, 25> MultiPuncts = {
    "...", "->*", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",  ".*"};

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  TokenStream run() {
    while (Pos < Src.size())
      next();
    Out.Tokens.push_back({Token::Kind::End, {}, Line});
    return std::move(Out);
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  void advance() {
    if (Src[Pos] == '\n')
      ++Line;
    ++Pos;
  }

  void emit(Token::Kind K, size_t Begin, uint32_t AtLine) {
    Out.Tokens.push_back({K, Src.substr(Begin, Pos - Begin), AtLine});
  }

  void next() {
    char C = peek();
    if (C == '\n' || std::isspace(static_cast<unsigned char>(C))) {
      advance();
      return;
    }
    if (C == '/' && peek(1) == '/') {
      lineComment();
      return;
    }
    if (C == '/' && peek(1) == '*') {
      blockComment();
      return;
    }
    // Preprocessor directive: only when '#' is the first non-whitespace
    // character of the line; consume through any backslash continuations.
    if (C == '#' && AtLineStart()) {
      skipDirective();
      return;
    }
    if (isIdentStart(C)) {
      identifierOrLiteralPrefix();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      number();
      return;
    }
    if (C == '"') {
      stringLiteral();
      return;
    }
    if (C == '\'') {
      charLiteral();
      return;
    }
    punct();
  }

  bool AtLineStart() const {
    for (size_t I = Pos; I > 0; --I) {
      char P = Src[I - 1];
      if (P == '\n')
        return true;
      if (P != ' ' && P != '\t')
        return false;
    }
    return true;
  }

  void lineComment() {
    uint32_t AtLine = Line;
    Pos += 2;
    size_t Begin = Pos;
    while (Pos < Src.size() && peek() != '\n')
      advance();
    Out.Comments.push_back({AtLine, Src.substr(Begin, Pos - Begin)});
  }

  void blockComment() {
    uint32_t AtLine = Line;
    Pos += 2;
    size_t Begin = Pos;
    while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
      advance();
    Out.Comments.push_back({AtLine, Src.substr(Begin, Pos - Begin)});
    if (Pos < Src.size())
      Pos += 2;
  }

  void skipDirective() {
    while (Pos < Src.size()) {
      if (peek() == '\\' && (peek(1) == '\n' ||
                             (peek(1) == '\r' && peek(2) == '\n'))) {
        advance(); // backslash
        while (peek() != '\n' && Pos < Src.size())
          advance();
        if (Pos < Src.size())
          advance(); // the continued newline
        continue;
      }
      if (peek() == '\n')
        return; // leave the newline for the main loop
      // Comments may follow a directive on the same line.
      if (peek() == '/' && peek(1) == '/') {
        lineComment();
        return;
      }
      if (peek() == '/' && peek(1) == '*') {
        blockComment();
        continue;
      }
      advance();
    }
  }

  void identifierOrLiteralPrefix() {
    size_t Begin = Pos;
    uint32_t AtLine = Line;
    while (isIdentChar(peek()))
      advance();
    std::string_view Text = Src.substr(Begin, Pos - Begin);
    // Raw / prefixed string literals: R"(..)", u8"..", L'x', etc.
    if (peek() == '"') {
      if (Text == "R" || Text == "u8R" || Text == "uR" || Text == "UR" ||
          Text == "LR") {
        rawString(Begin, AtLine);
        return;
      }
      if (Text == "u8" || Text == "u" || Text == "U" || Text == "L") {
        stringLiteral(Begin, AtLine);
        return;
      }
    }
    if (peek() == '\'' &&
        (Text == "u8" || Text == "u" || Text == "U" || Text == "L")) {
      charLiteral(Begin, AtLine);
      return;
    }
    emit(Token::Kind::Identifier, Begin, AtLine);
  }

  void number() {
    size_t Begin = Pos;
    uint32_t AtLine = Line;
    // Good enough for scanning: consume digits, idents (suffixes, hex),
    // dots, and exponent signs.
    while (isIdentChar(peek()) || peek() == '.' ||
           ((peek() == '+' || peek() == '-') &&
            (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E' ||
             Src[Pos - 1] == 'p' || Src[Pos - 1] == 'P')))
      advance();
    emit(Token::Kind::Number, Begin, AtLine);
  }

  void stringLiteral() { stringLiteral(Pos, Line); }
  void stringLiteral(size_t Begin, uint32_t AtLine) {
    advance(); // opening quote
    while (Pos < Src.size() && peek() != '"' && peek() != '\n') {
      if (peek() == '\\' && Pos + 1 < Src.size())
        advance();
      advance();
    }
    if (Pos < Src.size() && peek() == '"')
      advance();
    emit(Token::Kind::String, Begin, AtLine);
  }

  void rawString(size_t Begin, uint32_t AtLine) {
    advance(); // opening quote
    size_t DelimBegin = Pos;
    while (Pos < Src.size() && peek() != '(')
      advance();
    std::string_view Delim = Src.substr(DelimBegin, Pos - DelimBegin);
    if (Pos < Src.size())
      advance(); // '('
    std::string Close = ")" + std::string(Delim) + "\"";
    while (Pos < Src.size() &&
           Src.compare(Pos, Close.size(), Close) != 0)
      advance();
    for (size_t I = 0; I < Close.size() && Pos < Src.size(); ++I)
      advance();
    emit(Token::Kind::String, Begin, AtLine);
  }

  void charLiteral() { charLiteral(Pos, Line); }
  void charLiteral(size_t Begin, uint32_t AtLine) {
    advance(); // opening quote
    while (Pos < Src.size() && peek() != '\'' && peek() != '\n') {
      if (peek() == '\\' && Pos + 1 < Src.size())
        advance();
      advance();
    }
    if (Pos < Src.size() && peek() == '\'')
      advance();
    emit(Token::Kind::Char, Begin, AtLine);
  }

  void punct() {
    size_t Begin = Pos;
    uint32_t AtLine = Line;
    std::string_view Rest = Src.substr(Pos);
    for (std::string_view Op : MultiPuncts) {
      if (Rest.rfind(Op, 0) == 0) {
        Pos += Op.size();
        emit(Token::Kind::Punct, Begin, AtLine);
        return;
      }
    }
    advance();
    emit(Token::Kind::Punct, Begin, AtLine);
  }

  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  TokenStream Out;
};

} // namespace

TokenStream gstm::lint::lex(std::string_view Source) {
  return Lexer(Source).run();
}
