//===- lint/Rules.h - Transaction-safety rules for stm_lint --------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule set enforced inside transaction bodies (see DESIGN.md §4e):
///
///   R1 naked shared access   — std::atomic / TVar / TObj accessed
///                              without going through the txn handle
///   R2 irrevocable operation — heap allocation outside TmPool, I/O,
///                              sleep, mutex use: cannot be undone when
///                              the attempt aborts and re-executes
///   R3 non-determinism       — rand/random_device/clock reads: attempts
///                              re-execute, so results diverge and TSA
///                              replay breaks
///   R4 handle escape         — storing/capturing the Tl2Txn&/LibTxn&
///                              beyond the transaction body (directly or
///                              through a tracked `auto &Alias = Tx;`)
///   R5 unsafe callee         — calling a function that (transitively)
///                              trips R1–R4, without passing the handle
///   R6 upgrade hazard        — writing a location the body already read
///                              through the handle, on engines where the
///                              read took a shared lock that the write
///                              must upgrade (visible-reader TLRW)
///   S1 bad suppression       — `// stm-lint: allow(...)` without a
///                              rationale
///
/// and the memory-ordering discipline rules checked against `stm-order:`
/// contracts (lint/OrderRules.h):
///
///   O1 torn publish          — relaxed store to a publish()-contracted
///                              variable with no dominating release fence
///   O2 pairing violation     — relaxed access to a pair()-contracted
///                              acquire-load/release-store variable
///   O3 fence contract        — a fence(seq_cst) before(callee) contract
///                              whose anchor call is not dominated by a
///                              seq_cst fence (the 5343567 store-buffering
///                              fix, kept restored by construction)
///
/// Which of R1/R2/R6 apply — and how strictly — depends on the engine the
/// transaction handle belongs to; RuleProfile carries that per-engine
/// configuration, keyed by the handle's type name (matching the policy
/// names in src/engine/Engines.h).
///
/// scanRange() performs the statement-level detection of R1–R4 and R6 and
/// records the call sites the analysis layer resolves for R5.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_LINT_RULES_H
#define GSTM_LINT_RULES_H

#include "lint/Lexer.h"

#include <string>
#include <vector>

namespace gstm::lint {

enum class Rule : uint8_t {
  NakedAccess,    // R1
  Irrevocable,    // R2
  NonDeterminism, // R3
  HandleEscape,   // R4
  UnsafeCallee,   // R5
  UpgradeHazard,  // R6
  BadSuppression, // S1
  TornPublish,    // O1
  AcquireRelease, // O2
  FenceContract,  // O3
};
inline constexpr size_t NumRules = 10;

/// Stable diagnostic id ("R1".."R6", "S1", "O1".."O3").
const char *ruleId(Rule R);

/// One-line fix hint shown with every diagnostic of the rule.
const char *ruleHint(Rule R);

/// Parses "R1" etc.; returns false for unknown ids.
bool ruleFromId(std::string_view Id, Rule &Out);

/// Per-engine rule configuration, selected by the transaction handle's
/// type name. The names mirror src/engine/Engines.h policy names.
struct RuleProfile {
  /// Profile name used in diagnostics ("tl2", "tlrw", "2pl-undo", ...).
  const char *Name = "generic";
  /// R1 applies. Off for engine-internal bodies (policy statics taking a
  /// template-parameter handle): raw atomics *are* the engine there, and
  /// the ordering pass owns their discipline instead.
  bool CheckNakedAccess = true;
  /// R5 applies. Off for engine-internal bodies, whose calls into the
  /// runtime machinery (clock advance, commit-ring record, epoch slots)
  /// legitimately touch raw atomics.
  bool CheckCallees = true;
  /// R6 applies: the engine takes visible shared read locks that a
  /// subsequent write to the same location must upgrade (TLRW).
  bool UpgradeHazard = false;
  /// Stricter R2: the engine writes in place with an undo log, and the
  /// retry loop catches only TxAbortException — a user `throw` unwinds
  /// past the undo replay and leaves partial writes applied.
  bool InPlaceUndo = false;
};

/// Profile for a handle of type \p HandleType (empty/unknown → generic).
/// Template-parameter handle types (e.g. `TxnT` in the policy statics)
/// map to the engine-internal profile.
const RuleProfile &profileForHandleType(std::string_view HandleType);

/// A rule violation found by the token scan, before suppression
/// processing and call-graph resolution.
struct RawViolation {
  Rule R;
  uint32_t Line = 0;
  std::string Message;
};

/// A call site recorded for R5 resolution.
struct CallSite {
  std::string_view Name;
  uint32_t Line = 0;
  /// Receiver identifier for `Recv.name(...)` / `Recv->name(...)`, empty
  /// for free or chained calls.
  std::string_view Receiver;
  /// The call's receiver is the transaction handle (sanctioned STM API).
  bool ReceiverIsHandle = false;
  /// The handle is forwarded as an argument: transactional context
  /// propagates and the callee is checked at its own definition.
  bool HandlePassed = false;
  /// The call was method-style (had a '.'/'->' receiver).
  bool MethodStyle = false;
};

struct ScanResult {
  std::vector<RawViolation> Violations;
  std::vector<CallSite> Calls;
};

/// Token sub-ranges to skip while scanning (nested transaction lambdas,
/// which are analyzed as their own regions).
using SkipRanges = std::vector<std::pair<size_t, size_t>>;

/// Scans tokens [Begin, End) as transactional context with handle name
/// \p Handle (empty when scanning a plain function for its would-be
/// violations — then every atomic access is naked by definition) under
/// the per-engine rule configuration \p Profile.
ScanResult scanRange(const std::vector<Token> &Tokens, size_t Begin,
                     size_t End, std::string_view Handle,
                     const RuleProfile &Profile, const SkipRanges &Skip);

} // namespace gstm::lint

#endif // GSTM_LINT_RULES_H
