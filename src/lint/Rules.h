//===- lint/Rules.h - Transaction-safety rules for stm_lint --------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule set enforced inside transaction bodies (see DESIGN.md §4e):
///
///   R1 naked shared access   — std::atomic / TVar / TObj accessed
///                              without going through the txn handle
///   R2 irrevocable operation — heap allocation outside TmPool, I/O,
///                              sleep, mutex use: cannot be undone when
///                              the attempt aborts and re-executes
///   R3 non-determinism       — rand/random_device/clock reads: attempts
///                              re-execute, so results diverge and TSA
///                              replay breaks
///   R4 handle escape         — storing/capturing the Tl2Txn&/LibTxn&
///                              beyond the transaction body
///   R5 unsafe callee         — calling a function that (transitively)
///                              trips R1–R4, without passing the handle
///   S1 bad suppression       — `// stm-lint: allow(...)` without a
///                              rationale
///
/// scanRange() performs the token-level detection of R1–R4 and records
/// the call sites the analysis layer resolves for R5.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_LINT_RULES_H
#define GSTM_LINT_RULES_H

#include "lint/Lexer.h"

#include <string>
#include <vector>

namespace gstm::lint {

enum class Rule : uint8_t {
  NakedAccess,    // R1
  Irrevocable,    // R2
  NonDeterminism, // R3
  HandleEscape,   // R4
  UnsafeCallee,   // R5
  BadSuppression, // S1
};
inline constexpr size_t NumRules = 6;

/// Stable diagnostic id ("R1".."R5", "S1").
const char *ruleId(Rule R);

/// One-line fix hint shown with every diagnostic of the rule.
const char *ruleHint(Rule R);

/// Parses "R1" etc.; returns false for unknown ids.
bool ruleFromId(std::string_view Id, Rule &Out);

/// A rule violation found by the token scan, before suppression
/// processing and call-graph resolution.
struct RawViolation {
  Rule R;
  uint32_t Line = 0;
  std::string Message;
};

/// A call site recorded for R5 resolution.
struct CallSite {
  std::string_view Name;
  uint32_t Line = 0;
  /// Receiver identifier for `Recv.name(...)` / `Recv->name(...)`, empty
  /// for free or chained calls.
  std::string_view Receiver;
  /// The call's receiver is the transaction handle (sanctioned STM API).
  bool ReceiverIsHandle = false;
  /// The handle is forwarded as an argument: transactional context
  /// propagates and the callee is checked at its own definition.
  bool HandlePassed = false;
  /// The call was method-style (had a '.'/'->' receiver).
  bool MethodStyle = false;
};

struct ScanResult {
  std::vector<RawViolation> Violations;
  std::vector<CallSite> Calls;
};

/// Token sub-ranges to skip while scanning (nested transaction lambdas,
/// which are analyzed as their own regions).
using SkipRanges = std::vector<std::pair<size_t, size_t>>;

/// Scans tokens [Begin, End) as transactional context with handle name
/// \p Handle (empty when scanning a plain function for its would-be
/// violations — then every atomic access is naked by definition).
ScanResult scanRange(const std::vector<Token> &Tokens, size_t Begin,
                     size_t End, std::string_view Handle,
                     const SkipRanges &Skip);

} // namespace gstm::lint

#endif // GSTM_LINT_RULES_H
