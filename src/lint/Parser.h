//===- lint/Parser.h - Function / region extraction for stm_lint ---------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight structural pass over the token stream that recovers what
/// the transaction-safety rules need — no AST, no types, no template
/// instantiation:
///
///  * every function definition (free, member, out-of-class), with its
///    body token range, qualified name, and whether it takes a
///    transactional-handle parameter (`Tl2Txn &` / `LibTxn &` /
///    `LibTmTxn &`, pointer forms included) — such a function body is
///    transactional context propagated over the call graph;
///  * every lambda whose parameter list declares a transactional handle
///    (the `Txn.run(tx, [&](Tl2Txn &Tx) {...})` bodies), with its body
///    token range.
///
/// The parser tracks namespace/class/function brace nesting so inline
/// member definitions in headers are attributed to their class, and
/// constructor member-initializer braces are not mistaken for bodies.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_LINT_PARSER_H
#define GSTM_LINT_PARSER_H

#include "lint/Lexer.h"

#include <string>
#include <vector>

namespace gstm::lint {

/// One function definition. Body range [BodyBegin, BodyEnd) indexes the
/// token stream and excludes the outer braces.
struct FunctionDef {
  std::string Qualified;    ///< e.g. "TmRbTree::rotateLeft" or "main"
  std::string_view Name;    ///< last component
  bool IsMethod = false;    ///< defined inside a class/struct, or
                            ///< out-of-class with a Class:: qualifier
  bool HasTxnParam = false; ///< takes a Tl2Txn&/LibTxn& style parameter
  std::string_view Handle;  ///< the handle parameter's name, if any
  /// The handle parameter's type name ("Tl2Txn", "TlrwTxn", ...; a
  /// template-parameter name like "TxnT" for the policy statics).
  /// Selects the engine rule profile (lint/Rules.h).
  std::string_view HandleType;
  uint32_t Line = 0;        ///< line of the function name
  size_t BodyBegin = 0;
  size_t BodyEnd = 0;
};

/// One lambda with a transactional-handle parameter (a transaction body).
struct TxnLambda {
  std::string_view Handle;
  std::string_view HandleType;
  uint32_t Line = 0; ///< line of the '[' introducer
  size_t BodyBegin = 0;
  size_t BodyEnd = 0;
  /// Index into ParsedFile::Functions of the enclosing function, or
  /// SIZE_MAX when the lambda sits in a non-function scope (e.g. a
  /// namespace-scope initializer).
  size_t EnclosingFunction = SIZE_MAX;
};

/// Structural parse of one file's token stream. Views point into the
/// stream's source buffer.
struct ParsedFile {
  std::vector<FunctionDef> Functions;
  std::vector<TxnLambda> TxnLambdas;
};

/// Names accepted as transactional-handle types. Template-parameter
/// names containing "Txn" (the `template <typename TxnT> static` policy
/// statics in src/engine) are additionally accepted per declaration; see
/// the parser's template-group scan.
bool isTxnHandleType(std::string_view TypeName);

/// Runs the structural pass over \p TS.
ParsedFile parse(const TokenStream &TS);

} // namespace gstm::lint

#endif // GSTM_LINT_PARSER_H
