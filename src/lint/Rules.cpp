//===- lint/Rules.cpp -----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "lint/Rules.h"

#include <algorithm>
#include <array>

using namespace gstm;
using namespace gstm::lint;

const char *gstm::lint::ruleId(Rule R) {
  switch (R) {
  case Rule::NakedAccess:
    return "R1";
  case Rule::Irrevocable:
    return "R2";
  case Rule::NonDeterminism:
    return "R3";
  case Rule::HandleEscape:
    return "R4";
  case Rule::UnsafeCallee:
    return "R5";
  case Rule::UpgradeHazard:
    return "R6";
  case Rule::BadSuppression:
    return "S1";
  case Rule::TornPublish:
    return "O1";
  case Rule::AcquireRelease:
    return "O2";
  case Rule::FenceContract:
    return "O3";
  }
  return "?";
}

const char *gstm::lint::ruleHint(Rule R) {
  switch (R) {
  case Rule::NakedAccess:
    return "route the access through the handle (Tx.load/Tx.store, "
           "Tx.read/Tx.write)";
  case Rule::Irrevocable:
    return "hoist the side effect out of the transaction body; allocate "
           "through TmPool";
  case Rule::NonDeterminism:
    return "draw randomness/time before the transaction and capture the "
           "value";
  case Rule::HandleEscape:
    return "pass the handle down by reference; never store or capture it";
  case Rule::UnsafeCallee:
    return "make the callee transaction-safe, or pass the txn handle so "
           "it is checked as transactional context";
  case Rule::UpgradeHazard:
    return "write the location before reading it back, or run the body "
           "on an engine whose reads already take exclusive locks "
           "(2pl-undo)";
  case Rule::BadSuppression:
    return "write `// stm-lint: allow(<rule>) <why this is safe>`";
  case Rule::TornPublish:
    return "store with memory_order_release, or keep a release fence "
           "between the data writes and this publish";
  case Rule::AcquireRelease:
    return "use load(acquire)/store(release) on this variable, per its "
           "declared pair() contract";
  case Rule::FenceContract:
    return "restore the std::atomic_thread_fence(std::memory_order_"
           "seq_cst) the contract requires before its anchor call";
  }
  return "";
}

bool gstm::lint::ruleFromId(std::string_view Id, Rule &Out) {
  for (Rule R :
       {Rule::NakedAccess, Rule::Irrevocable, Rule::NonDeterminism,
        Rule::HandleEscape, Rule::UnsafeCallee, Rule::UpgradeHazard,
        Rule::BadSuppression, Rule::TornPublish, Rule::AcquireRelease,
        Rule::FenceContract}) {
    if (Id == ruleId(R)) {
      Out = R;
      return true;
    }
  }
  return false;
}

const RuleProfile &
gstm::lint::profileForHandleType(std::string_view HandleType) {
  // Lazy TL2-lineage engines: writes buffer until commit, so a user
  // exception unwinds with no shared state touched, and reads take no
  // visible locks.
  static const RuleProfile Generic{"generic", true, true, false, false};
  static const RuleProfile Tl2{"tl2", true, true, false, false};
  static const RuleProfile LibTm{"libtm", true, true, false, false};
  // In-place engines (src/engine): encounter-time writes + undo log. The
  // executor catches only TxAbortException, so R2 additionally forbids
  // user throws (the undo log would never replay).
  static const RuleProfile OrecEager{"orec-eager", true, true, false, true};
  static const RuleProfile TwoPl{"2pl-undo", true, true, false, true};
  // TLRW's visible reader bytes make read→write upgrades an abort-storm
  // hazard (two readers of the same entry can never both upgrade): R6.
  static const RuleProfile Tlrw{"tlrw", true, true, true, true};
  // Policy statics taking a template-parameter handle (`TxnT &Tx`): the
  // body *is* the engine. Raw atomics and runtime-machinery calls are
  // the point (the ordering pass owns their discipline), but R2/R3/R4
  // still apply — engines must not allocate, block, or stash handles.
  static const RuleProfile EngineInternal{"engine-internal", false, false,
                                          false, false};

  if (HandleType == "Tl2Txn")
    return Tl2;
  if (HandleType == "LibTxn" || HandleType == "LibTmTxn")
    return LibTm;
  if (HandleType == "OrecEagerTxn")
    return OrecEager;
  if (HandleType == "TlrwTxn")
    return Tlrw;
  if (HandleType == "TwoPlTxn")
    return TwoPl;
  if (HandleType == "Txn" || HandleType == "EngineTxn" ||
      HandleType.empty())
    return Generic;
  // Any other accepted handle type came from a template parameter list
  // (Parser.cpp collects `typename TxnT`-style names containing "Txn").
  return EngineInternal;
}

namespace {

bool contains(std::initializer_list<std::string_view> L,
              std::string_view S) {
  return std::find(L.begin(), L.end(), S) != L.end();
}

/// R1: member functions of std::atomic / TVar / TObj that read or write
/// shared state when invoked on anything but the transaction handle.
bool isAtomicAccessMethod(std::string_view N) {
  return contains({"load", "store", "exchange", "fetch_add", "fetch_sub",
                   "fetch_and", "fetch_or", "fetch_xor",
                   "compare_exchange_weak", "compare_exchange_strong",
                   "test_and_set", "loadDirect", "storeDirect", "loadWord",
                   "storeWord", "read", "write"},
                  N);
}

/// R6: handle methods that read a location (and, on visible-reader
/// engines, leave a shared lock behind) vs. methods that write one.
bool isHandleReadMethod(std::string_view N) {
  return contains({"load", "read", "loadWord"}, N);
}
bool isHandleWriteMethod(std::string_view N) {
  return contains({"store", "write", "storeWord"}, N);
}

/// R2: allocation / I/O / process-control calls that cannot be rolled
/// back when the attempt aborts.
bool isIrrevocableCall(std::string_view N) {
  return contains(
      {"malloc",   "calloc",    "realloc",  "free",     "aligned_alloc",
       "posix_memalign",        "strdup",   "printf",   "fprintf",
       "vprintf",  "vfprintf",  "puts",     "putc",     "putchar",
       "fputs",    "fputc",     "fopen",    "fclose",   "fread",
       "fwrite",   "fgets",     "fgetc",    "fflush",   "getline",
       "scanf",    "fscanf",    "perror",   "system",   "exit",
       "_Exit",    "quick_exit", "abort",   "terminate", "sleep",
       "usleep",   "nanosleep", "sleep_for", "sleep_until"},
      N);
}

/// R2: lock types whose construction/locking inside a body would deadlock
/// or serialize against re-execution.
bool isLockType(std::string_view N) {
  return contains({"lock_guard", "unique_lock", "scoped_lock",
                   "shared_lock", "mutex", "shared_mutex",
                   "recursive_mutex", "timed_mutex", "condition_variable"},
                  N);
}

bool isLockMethod(std::string_view N) {
  return contains({"lock", "unlock", "try_lock", "try_lock_for",
                   "try_lock_until", "lock_shared", "unlock_shared"},
                  N);
}

/// R3: non-deterministic sources; attempts re-execute, so these diverge
/// between attempts and between runs (and break TSA replay).
bool isNonDeterministicCall(std::string_view N) {
  return contains({"rand", "srand", "rand_r", "random", "srandom",
                   "drand48", "lrand48", "mrand48", "getrandom",
                   "getentropy", "gettimeofday", "clock_gettime"},
                  N);
}

bool isClockType(std::string_view N) {
  return contains({"steady_clock", "system_clock", "high_resolution_clock",
                   "file_clock", "utc_clock"},
                  N);
}

/// Keywords and call-shaped constructs that are not function calls.
bool isNonCallKeyword(std::string_view N) {
  return contains({"if", "for", "while", "switch", "catch", "return",
                   "sizeof", "alignof", "alignas", "decltype", "noexcept",
                   "static_assert", "assert", "defined", "throw",
                   "co_await", "co_yield", "co_return"},
                  N);
}

/// Namespace qualifiers whose functions are never repo-defined; calls
/// qualified with these are skipped for R5 resolution (the deny lists
/// above still see them by name).
bool isStdQualifier(std::string_view N) {
  return contains({"std", "chrono", "this_thread", "filesystem", "ranges",
                   "numeric", "gtest", "testing", "internal"},
                  N);
}

/// Scans one body as a sequence of statements: tracks handle aliases
/// declared earlier in the body, the locations the handle has read
/// (for R6), and applies the token-level checks for R1–R4 and R6 under
/// the body's engine profile.
class RangeScanner {
public:
  RangeScanner(const std::vector<Token> &T, size_t Begin, size_t End,
               std::string_view Handle, const RuleProfile &Profile,
               const SkipRanges &Skip)
      : T(T), Begin(Begin), End(End), Handle(Handle), Profile(Profile),
        Skip(Skip) {}

  ScanResult run() {
    for (size_t I = Begin; I < End && I < T.size(); ++I) {
      if (skipIfNestedRegion(I))
        continue;
      scanToken(I);
    }
    return std::move(Out);
  }

private:
  bool skipIfNestedRegion(size_t &I) {
    for (const auto &[B, E] : Skip) {
      if (I >= B && I < E && !(B <= Begin && End <= E)) {
        I = E - 1; // loop increment moves past the sub-region
        return true;
      }
    }
    return false;
  }

  const Token &at(size_t I) const {
    static const Token EndTok{Token::Kind::End, {}, 0};
    return I < T.size() ? T[I] : EndTok;
  }

  void report(Rule R, uint32_t Line, std::string Msg) {
    Out.Violations.push_back({R, Line, std::move(Msg)});
  }

  /// The handle itself, or any reference alias bound to it earlier in
  /// the body (`auto &H2 = Tx;`).
  bool isHandle(std::string_view Name) const {
    if (Handle.empty())
      return false;
    if (Name == Handle)
      return true;
    return std::find(Aliases.begin(), Aliases.end(), Name) !=
           Aliases.end();
  }

  /// Dataflow step: `<type> & X = <handle-or-alias> ;` binds X as a new
  /// name for the handle. Everything downstream (R1 sanctioning, R4
  /// escape checks, handle-passing) then treats X like the handle.
  bool maybeRecordAlias(size_t I) {
    if (Handle.empty())
      return false;
    const Token &Prev = I > Begin ? at(I - 1) : Token{};
    if (!Prev.isPunct("&") || !at(I + 1).isPunct("="))
      return false;
    if (!at(I + 2).is(Token::Kind::Identifier) ||
        !isHandle(at(I + 2).Text) || !at(I + 3).isPunct(";"))
      return false;
    Aliases.push_back(T[I].Text);
    return true;
  }

  void scanToken(size_t I) {
    const Token &Tk = T[I];
    if (Tk.is(Token::Kind::Punct)) {
      if (Tk.Text == "&")
        checkAddressOfHandle(I);
      else if (Tk.Text == "[")
        checkLambdaCapture(I);
      return;
    }
    if (!Tk.is(Token::Kind::Identifier))
      return;

    std::string_view N = Tk.Text;
    const Token &Prev = I > Begin ? at(I - 1) : Token{};
    const Token &Next = at(I + 1);

    if (maybeRecordAlias(I))
      return;

    // R2: keyword-form allocation. Placement syntax (`new (addr) T`,
    // recognized by the `(` right after the keyword) constructs into
    // storage the caller already owns — no allocation to leak on abort —
    // so it is exempt; the transaction-log containers (MiniVector) build
    // elements that way on their hot path. The nothrow form rides the
    // same exemption, an accepted blind spot: it is placement syntax
    // lexically and vanishingly rare in transactional code.
    if (N == "new" && !Prev.isIdent("operator") && !Next.isPunct("(")) {
      report(Rule::Irrevocable, Tk.Line,
             "heap allocation ('new') inside transaction body; aborted "
             "attempts leak or double-construct");
      return;
    }
    if (N == "delete" && !Prev.isIdent("operator") && !Prev.isPunct("=")) {
      report(Rule::Irrevocable, Tk.Line,
             "heap deallocation ('delete') inside transaction body; a "
             "concurrent speculative reader may still dereference it");
      return;
    }
    // Strict R2 for in-place undo-log engines: the retry loop catches
    // only TxAbortException, so a user exception unwinds past the undo
    // replay with encounter-time writes still applied (and locks held).
    // The bare rethrow form `throw;` only appears inside catch blocks
    // re-raising what was already in flight; only `throw <expr>` is the
    // hazard introduced by the body.
    if (N == "throw" && Profile.InPlaceUndo && !Next.isPunct(";") &&
        !Prev.isIdent("operator")) {
      report(Rule::Irrevocable, Tk.Line,
             std::string("'throw' inside an in-place-update transaction "
                         "('") +
                 Profile.Name +
                 "'): the retry loop catches only TxAbortException, so "
                 "unwinding leaves undo-logged writes applied");
      return;
    }
    // R2: stream objects (operator<< chains start at the stream name).
    if (contains({"cout", "cerr", "clog", "cin"}, N)) {
      report(Rule::Irrevocable, Tk.Line,
             "console I/O ('" + std::string(N) +
                 "') inside transaction body re-executes on every retry");
      return;
    }
    // R2: lock types used as declarations/constructions.
    if (isLockType(N) && !Next.isPunct("(")) {
      report(Rule::Irrevocable, Tk.Line,
             "blocking synchronization ('" + std::string(N) +
                 "') inside transaction body can deadlock against the "
                 "STM's own commit locks");
      return;
    }
    // R3: type-form non-determinism.
    if (N == "random_device") {
      report(Rule::NonDeterminism, Tk.Line,
             "'std::random_device' inside transaction body: attempts "
             "re-execute with different values (breaks TSA replay)");
      return;
    }

    if (!Next.isPunct("("))
      return;

    // ---- call-shaped tokens from here on ----
    bool Method = Prev.isPunct(".") || Prev.isPunct("->");
    std::string_view Receiver;
    if (Method && I >= Begin + 2 && at(I - 2).is(Token::Kind::Identifier))
      Receiver = at(I - 2).Text;

    if (isAtomicAccessMethod(N) && Method) {
      if (isHandle(Receiver)) {
        checkUpgradeHazard(I, N);
      } else if (Profile.CheckNakedAccess) {
        std::string Recv =
            Receiver.empty() ? std::string("<expr>") : std::string(Receiver);
        report(Rule::NakedAccess, Tk.Line,
               "naked shared access '" + Recv + "." + std::string(N) +
                   "()' bypasses the transaction handle" +
                   (Handle.empty()
                        ? ""
                        : " '" + std::string(Handle) + "'"));
      }
      return; // handle-API calls are sanctioned, not R5 call sites
    }
    if (isLockMethod(N) && Method && !isHandle(Receiver)) {
      report(Rule::Irrevocable, Tk.Line,
             "mutex operation '." + std::string(N) +
                 "()' inside transaction body");
      return;
    }
    if (isIrrevocableCall(N)) {
      report(Rule::Irrevocable, Tk.Line,
             "irrevocable call '" + std::string(N) +
                 "()' inside transaction body");
      return;
    }
    if (isNonDeterministicCall(N)) {
      report(Rule::NonDeterminism, Tk.Line,
             "non-deterministic call '" + std::string(N) +
                 "()' inside transaction body (breaks TSA replay)");
      return;
    }
    if (N == "now" && Prev.isPunct("::") && I >= Begin + 2 &&
        isClockType(at(I - 2).Text)) {
      report(Rule::NonDeterminism, Tk.Line,
             "clock read '" + std::string(at(I - 2).Text) +
                 "::now()' inside transaction body (breaks TSA replay)");
      return;
    }
    if (N == "time" && !Method && !Prev.isPunct("::")) {
      report(Rule::NonDeterminism, Tk.Line,
             "wall-clock read 'time()' inside transaction body (breaks "
             "TSA replay)");
      return;
    }

    recordCallSite(I, N, Method, Receiver);
  }

  /// First argument of the call whose '(' is at \p LParen, normalized to
  /// the concatenation of its token texts (so `Arr [ i ]` and `Arr[i]`
  /// compare equal regardless of spacing).
  std::string firstArgKey(size_t LParen) const {
    std::string Key;
    int Depth = 0;
    for (size_t J = LParen; J < End && J < T.size(); ++J) {
      if (at(J).isPunct("(") || at(J).isPunct("[") || at(J).isPunct("{")) {
        if (++Depth == 1)
          continue;
      } else if (at(J).isPunct(")") || at(J).isPunct("]") ||
                 at(J).isPunct("}")) {
        if (--Depth == 0)
          break;
      } else if (Depth == 1 && at(J).isPunct(",")) {
        break;
      }
      if (Depth >= 1)
        Key += at(J).Text;
    }
    return Key;
  }

  /// R6: on visible-reader engines, a handle write to a location the
  /// body has already read through the handle upgrades the read lock
  /// the read left behind — two transactions doing the same thing can
  /// never both upgrade, so the pattern degenerates into abort storms.
  /// Reads are tracked in statement order; a nested
  /// `Tx.store(X, Tx.load(X) + 1)` is a single expression whose store
  /// token precedes its load and is deliberately not flagged.
  void checkUpgradeHazard(size_t I, std::string_view N) {
    if (isHandleReadMethod(N)) {
      std::string Key = firstArgKey(I + 1);
      if (!Key.empty() &&
          std::none_of(ReadLocs.begin(), ReadLocs.end(),
                       [&](const auto &P) { return P.first == Key; }))
        ReadLocs.emplace_back(std::move(Key), T[I].Line);
      return;
    }
    if (!Profile.UpgradeHazard || !isHandleWriteMethod(N))
      return;
    std::string Key = firstArgKey(I + 1);
    for (const auto &[Loc, Line] : ReadLocs) {
      if (Loc != Key)
        continue;
      report(Rule::UpgradeHazard, T[I].Line,
             "write to '" + Key + "' upgrades the shared read lock " +
                 "taken by the read at line " + std::to_string(Line) +
                 " ('" + Profile.Name +
                 "' takes visible reader locks; concurrent upgraders "
                 "abort-storm)");
      return;
    }
  }

  void recordCallSite(size_t I, std::string_view N, bool Method,
                      std::string_view Receiver) {
    if (isNonCallKeyword(N))
      return;
    const Token &Prev = I > Begin ? at(I - 1) : Token{};
    if (Prev.isPunct("::")) {
      // Skip std-qualified calls; keep repo-namespace qualified ones.
      if (I >= Begin + 2 && isStdQualifier(at(I - 2).Text))
        return;
    }
    if (Method && isHandle(Receiver)) {
      CallSite C{N, T[I].Line, Receiver, true, false, true};
      Out.Calls.push_back(C);
      return;
    }
    CallSite C;
    C.Name = N;
    C.Line = T[I].Line;
    C.Receiver = Receiver;
    C.MethodStyle = Method;
    C.HandlePassed = handleInArgs(I + 1);
    Out.Calls.push_back(C);
  }

  /// True when the transaction handle (or an alias) appears at any depth
  /// inside the call's argument list starting at the '(' token \p LParen.
  bool handleInArgs(size_t LParen) const {
    if (Handle.empty())
      return false;
    int Depth = 0;
    for (size_t J = LParen; J < End && J < T.size(); ++J) {
      if (at(J).isPunct("("))
        ++Depth;
      else if (at(J).isPunct(")")) {
        if (--Depth == 0)
          return false;
      } else if (at(J).is(Token::Kind::Identifier) && isHandle(at(J).Text))
        return true;
    }
    return false;
  }

  /// R4 part 1: taking the handle's (or an alias's) address in
  /// expression position.
  void checkAddressOfHandle(size_t I) {
    if (Handle.empty() || !at(I + 1).is(Token::Kind::Identifier) ||
        !isHandle(at(I + 1).Text))
      return;
    const Token &Prev = I > Begin ? at(I - 1) : Token{};
    if (Prev.isPunct("=") || Prev.isPunct("(") || Prev.isPunct(",") ||
        Prev.isPunct("{") || Prev.isIdent("return"))
      report(Rule::HandleEscape, T[I].Line,
             "address of transaction handle '&" +
                 std::string(at(I + 1).Text) +
                 "' escapes the transaction body");
  }

  /// R4 part 2: the handle (or an alias) named in a nested lambda's
  /// capture list.
  void checkLambdaCapture(size_t I) {
    if (Handle.empty())
      return;
    // Find the matching ']' nearby; require '(' or '{' after it so this
    // is a lambda introducer, not a subscript.
    int Depth = 0;
    size_t Close = SIZE_MAX;
    for (size_t J = I; J < End && J < T.size() && J < I + 64; ++J) {
      if (at(J).isPunct("["))
        ++Depth;
      else if (at(J).isPunct("]") && --Depth == 0) {
        Close = J;
        break;
      }
    }
    if (Close == SIZE_MAX ||
        !(at(Close + 1).isPunct("(") || at(Close + 1).isPunct("{")))
      return;
    for (size_t J = I + 1; J < Close; ++J)
      if (at(J).is(Token::Kind::Identifier) && isHandle(at(J).Text)) {
        report(Rule::HandleEscape, at(J).Line,
               "transaction handle '" + std::string(at(J).Text) +
                   "' captured by a nested lambda; the lambda may outlive "
                   "the transaction body");
        return;
      }
  }

  const std::vector<Token> &T;
  size_t Begin, End;
  std::string_view Handle;
  const RuleProfile &Profile;
  const SkipRanges &Skip;
  /// Reference aliases of the handle, in declaration order.
  std::vector<std::string_view> Aliases;
  /// Locations read through the handle: (normalized first-arg, line).
  std::vector<std::pair<std::string, uint32_t>> ReadLocs;
  ScanResult Out;
};

} // namespace

ScanResult gstm::lint::scanRange(const std::vector<Token> &Tokens,
                                 size_t Begin, size_t End,
                                 std::string_view Handle,
                                 const RuleProfile &Profile,
                                 const SkipRanges &Skip) {
  return RangeScanner(Tokens, Begin, End, Handle, Profile, Skip).run();
}
