//===- lint/Parser.cpp ----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "lint/Parser.h"

#include <algorithm>
#include <unordered_map>

using namespace gstm;
using namespace gstm::lint;

bool gstm::lint::isTxnHandleType(std::string_view TypeName) {
  // "Txn" is the backend-traits alias (src/tmds/TmBackend.h): templated
  // structures take `typename B::Txn &`, which lexes as a plain `Txn`
  // parameter. Treating it as a handle classifies those bodies as
  // transactional contexts, same as their concrete instantiations.
  // The policy-engine family (src/engine) contributes the per-policy
  // aliases plus the generic chassis name: `EngineTxn<P> &` lexes as
  // `EngineTxn` once the template group is stripped.
  return TypeName == "Tl2Txn" || TypeName == "LibTxn" ||
         TypeName == "LibTmTxn" || TypeName == "Txn" ||
         TypeName == "OrecEagerTxn" || TypeName == "TlrwTxn" ||
         TypeName == "TwoPlTxn" || TypeName == "EngineTxn";
}

namespace {

const Token &tok(const std::vector<Token> &T, size_t I) {
  static const Token EndTok{Token::Kind::End, {}, 0};
  return I < T.size() ? T[I] : EndTok;
}

/// Index of the punctuator matching the opener at \p Open ('(' / '{' /
/// '['), or the end of the stream when unbalanced.
size_t matchForward(const std::vector<Token> &T, size_t Open) {
  std::string_view O = T[Open].Text;
  std::string_view C = O == "(" ? ")" : O == "{" ? "}" : "]";
  int Depth = 0;
  for (size_t I = Open; I < T.size(); ++I) {
    if (T[I].isPunct(O))
      ++Depth;
    else if (T[I].isPunct(C) && --Depth == 0)
      return I;
  }
  return T.size();
}

/// Matches a template angle group starting at \p Open ('<'). ">>" closes
/// two levels. Returns the index of the closing token.
size_t matchAngles(const std::vector<Token> &T, size_t Open) {
  int Depth = 0;
  for (size_t I = Open; I < T.size(); ++I) {
    if (T[I].isPunct("<"))
      ++Depth;
    else if (T[I].isPunct(">") && --Depth == 0)
      return I;
    else if (T[I].isPunct(">>") && (Depth -= 2) <= 0)
      return I;
    else if (T[I].isPunct(";") || T[I].isPunct("{"))
      return I; // malformed; bail before swallowing the body
  }
  return T.size();
}

struct ParamScan {
  size_t RParen = 0;
  bool HasTxnParam = false;
  std::string_view Handle;
  std::string_view HandleType;
};

/// Names of the declaration's own template parameters that are accepted
/// as handle types in its parameter list (the `template <typename TxnT>
/// static void store(TxnT &Tx, ...)` policy statics in src/engine).
using TemplateHandleTypes = std::vector<std::string_view>;

/// Scans a parameter list starting at the '(' token \p LParen.
ParamScan scanParams(const std::vector<Token> &T, size_t LParen,
                     const TemplateHandleTypes *TemplateHandles = nullptr) {
  auto IsHandleType = [&](std::string_view Name) {
    if (isTxnHandleType(Name))
      return true;
    return TemplateHandles &&
           std::find(TemplateHandles->begin(), TemplateHandles->end(),
                     Name) != TemplateHandles->end();
  };
  ParamScan PS;
  PS.RParen = matchForward(T, LParen);
  size_t ParamBegin = LParen + 1;
  int Depth = 0;
  for (size_t I = LParen + 1; I <= PS.RParen && I < T.size(); ++I) {
    bool AtEnd = I == PS.RParen;
    if (T[I].isPunct("(") || T[I].isPunct("[") || T[I].isPunct("{"))
      ++Depth;
    else if (T[I].isPunct(")") || T[I].isPunct("]") || T[I].isPunct("}"))
      --Depth;
    if (!(AtEnd || (Depth == 0 && T[I].isPunct(","))))
      continue;
    // One parameter: [ParamBegin, I).
    bool IsTxnType = false, HasRef = false;
    std::string_view LastIdent, TypeName;
    for (size_t J = ParamBegin; J < I; ++J) {
      if (T[J].is(Token::Kind::Identifier)) {
        LastIdent = T[J].Text;
        if (IsHandleType(T[J].Text)) {
          IsTxnType = true;
          TypeName = T[J].Text;
        }
      } else if (T[J].isPunct("&") || T[J].isPunct("*")) {
        HasRef = true;
      }
    }
    if (IsTxnType && HasRef && !LastIdent.empty() &&
        LastIdent != TypeName && !PS.HasTxnParam) {
      PS.HasTxnParam = true;
      PS.Handle = LastIdent;
      PS.HandleType = TypeName;
    }
    ParamBegin = I + 1;
  }
  return PS;
}

class StructuralParser {
public:
  explicit StructuralParser(const TokenStream &TS) : T(TS.Tokens) {}

  ParsedFile run() {
    for (size_t I = 0; I < T.size(); ++I)
      step(I);
    // Close any ranges left open by unbalanced input.
    for (const Scope &S : Stack) {
      if (S.Kind == Scope::Function)
        Out.Functions[S.Index].BodyEnd = T.size();
      else if (S.Kind == Scope::Lambda)
        Out.TxnLambdas[S.Index].BodyEnd = T.size();
    }
    return std::move(Out);
  }

private:
  struct Scope {
    enum K { Namespace, Class, Function, Lambda, Block } Kind;
    std::string Name;  // Namespace/Class
    size_t Index = 0;  // Function/Lambda: index into Out vectors
  };

  bool atDeclScope() const {
    return Stack.empty() || Stack.back().Kind == Scope::Namespace ||
           Stack.back().Kind == Scope::Class;
  }

  size_t enclosingFunction() const {
    for (size_t I = Stack.size(); I > 0; --I)
      if (Stack[I - 1].Kind == Scope::Function)
        return Stack[I - 1].Index;
    return SIZE_MAX;
  }

  void step(size_t &I) {
    const Token &Tk = T[I];
    if (Tk.isPunct("}")) {
      closeBrace(I);
      return;
    }
    if (atDeclScope()) {
      if (Tk.isPunct(";")) {
        StmtStart = I + 1;
        return;
      }
      if (Tk.is(Token::Kind::Identifier) &&
          (Tk.Text == "public" || Tk.Text == "private" ||
           Tk.Text == "protected") &&
          tok(T, I + 1).isPunct(":")) {
        ++I;
        StmtStart = I + 1;
        return;
      }
      if (Tk.isPunct("{"))
        openDeclBrace(I); // may advance I past member-init braces
      return;
    }
    // Inside a function / lambda / block body.
    if (Tk.isPunct("{")) {
      auto It = PendingLambda.find(I);
      if (It != PendingLambda.end())
        Stack.push_back({Scope::Lambda, {}, It->second});
      else
        Stack.push_back({Scope::Block, {}, 0});
      return;
    }
    if (Tk.isPunct("["))
      maybeTxnLambda(I);
  }

  void closeBrace(size_t I) {
    if (Stack.empty())
      return;
    Scope S = Stack.back();
    Stack.pop_back();
    if (S.Kind == Scope::Function)
      Out.Functions[S.Index].BodyEnd = I;
    else if (S.Kind == Scope::Lambda)
      Out.TxnLambdas[S.Index].BodyEnd = I;
    if (atDeclScope())
      StmtStart = I + 1;
  }

  /// Collects the declaration's own template-parameter names that should
  /// be accepted as handle types: `typename`/`class` introducers (plain,
  /// defaulted, or template-template) whose name contains "Txn". The
  /// src/engine policy statics all spell their handle parameter
  /// `template <typename TxnT> static ... f(TxnT &Tx, ...)`.
  void collectTemplateHandles(size_t Open, size_t Close,
                              TemplateHandleTypes &Out) const {
    for (size_t J = Open + 1; J < Close && J < T.size(); ++J) {
      if (!(tok(T, J).isIdent("typename") || tok(T, J).isIdent("class")))
        continue;
      const Token &Name = tok(T, J + 1);
      if (Name.is(Token::Kind::Identifier) &&
          Name.Text.find("Txn") != std::string_view::npos)
        Out.push_back(Name.Text);
    }
  }

  /// Skips a leading requires-clause (`requires C1<T> && (C2<T> || ...)`)
  /// between the template group and the declaration head, so constrained
  /// members do not degrade into opaque blocks. Requires-expressions
  /// (`requires requires { ... }`) are out of scope for the structural
  /// pass; the loop bails before swallowing a brace.
  size_t skipRequiresClause(size_t I) const {
    for (;;) {
      bool Consumed = false;
      if (tok(T, I).isPunct("(")) {
        I = matchForward(T, I) + 1;
        Consumed = true;
      } else {
        while (tok(T, I).is(Token::Kind::Identifier) ||
               tok(T, I).isPunct("::") || tok(T, I).isPunct("!")) {
          if (tok(T, I).isIdent("requires"))
            return I; // nested requires-expression: stop before it
          ++I;
          Consumed = true;
        }
        if (Consumed && tok(T, I).isPunct("<"))
          I = matchAngles(T, I) + 1;
      }
      if (!Consumed)
        return I;
      if (tok(T, I).isPunct("&&") || tok(T, I).isPunct("||")) {
        ++I;
        continue;
      }
      return I;
    }
  }

  /// Classifies a '{' seen at namespace/class scope using the declaration
  /// head tokens [StmtStart, BraceIdx).
  void openDeclBrace(size_t &BraceIdx) {
    size_t Head = StmtStart;
    TemplateHandleTypes TemplateHandles;
    while (tok(T, Head).isIdent("template") &&
           tok(T, Head + 1).isPunct("<")) {
      size_t Close = matchAngles(T, Head + 1);
      collectTemplateHandles(Head + 1, Close, TemplateHandles);
      Head = Close + 1;
    }
    if (tok(T, Head).isIdent("requires"))
      Head = skipRequiresClause(Head + 1);

    // enum first: "enum class" must not be classified as a class.
    for (size_t J = Head; J < BraceIdx; ++J) {
      if (tok(T, J).isIdent("enum")) {
        Stack.push_back({Scope::Block, {}, 0});
        return;
      }
      if (tok(T, J).isIdent("namespace")) {
        std::string Name;
        if (tok(T, J + 1).is(Token::Kind::Identifier))
          Name = std::string(tok(T, J + 1).Text);
        Stack.push_back({Scope::Namespace, Name, 0});
        StmtStart = BraceIdx + 1;
        return;
      }
      if (tok(T, J).isIdent("class") || tok(T, J).isIdent("struct") ||
          tok(T, J).isIdent("union")) {
        std::string Name;
        if (tok(T, J + 1).is(Token::Kind::Identifier))
          Name = std::string(tok(T, J + 1).Text);
        Stack.push_back({Scope::Class, Name, 0});
        StmtStart = BraceIdx + 1;
        return;
      }
      if (tok(T, J).isPunct("(")) {
        openFunctionOrBlock(J, BraceIdx, TemplateHandles);
        return;
      }
    }
    Stack.push_back({Scope::Block, {}, 0});
  }

  /// Declaration head contains a '(' at \p FirstLParen: either a function
  /// definition whose body starts at \p BraceIdx, a constructor whose
  /// member-init braces precede the body, or something we treat as an
  /// opaque block.
  void openFunctionOrBlock(size_t FirstLParen, size_t &BraceIdx,
                           const TemplateHandleTypes &TemplateHandles) {
    size_t LParen = FirstLParen;
    // operator(): the parameter list is the second '(' group.
    if (LParen >= 1 && tok(T, LParen - 1).isIdent("operator") &&
        tok(T, LParen + 1).isPunct(")") && tok(T, LParen + 2).isPunct("("))
      LParen = LParen + 2;

    // Member-initializer braces: `Ctor() : A{1}, B{2} {` — a '{' directly
    // preceded by an identifier while a top-level ':' follows the
    // parameter list is an init brace, not the body. Skip it and let the
    // main loop find the real body brace.
    size_t RParen = matchForward(T, LParen);
    if (tok(T, BraceIdx - 1).is(Token::Kind::Identifier) &&
        hasTopLevelColon(RParen + 1, BraceIdx)) {
      size_t Close = matchForward(T, BraceIdx);
      BraceIdx = Close; // caller's loop continues after the init brace
      return;
    }

    // Function name: identifier chain directly before the '(' (possibly
    // qualified, possibly a destructor).
    size_t NameIdx = LParen - 1;
    bool IsOperator = false;
    if (tok(T, NameIdx).isIdent("operator")) {
      IsOperator = true;
    } else if (tok(T, NameIdx).is(Token::Kind::Punct) &&
               NameIdx >= 1 && tok(T, NameIdx - 1).isIdent("operator")) {
      IsOperator = true;
      NameIdx = NameIdx - 1;
    }
    if (!IsOperator && !tok(T, NameIdx).is(Token::Kind::Identifier)) {
      Stack.push_back({Scope::Block, {}, 0});
      return;
    }

    FunctionDef FD;
    FD.Line = tok(T, NameIdx).Line;
    if (IsOperator) {
      FD.Name = tok(T, NameIdx).Text; // "operator"
      FD.Qualified = "operator";
    } else {
      FD.Name = tok(T, NameIdx).Text;
      std::string Qual(FD.Name);
      size_t K = NameIdx;
      if (K >= 1 && tok(T, K - 1).isPunct("~"))
        Qual = "~" + Qual;
      while (K >= 2 && tok(T, K - 1).isPunct("::") &&
             tok(T, K - 2).is(Token::Kind::Identifier)) {
        Qual = std::string(tok(T, K - 2).Text) + "::" + Qual;
        FD.IsMethod = true;
        K -= 2;
      }
      // Prefix enclosing class scopes (inline member definitions).
      for (const Scope &S : Stack)
        if (S.Kind == Scope::Class) {
          Qual = S.Name + "::" + Qual;
          FD.IsMethod = true;
        }
      FD.Qualified = Qual;
    }

    ParamScan PS = scanParams(T, LParen, &TemplateHandles);
    FD.HasTxnParam = PS.HasTxnParam;
    FD.Handle = PS.Handle;
    FD.HandleType = PS.HandleType;
    FD.BodyBegin = BraceIdx + 1;
    FD.BodyEnd = BraceIdx + 1; // fixed at closing brace
    Out.Functions.push_back(FD);
    Stack.push_back({Scope::Function, {}, Out.Functions.size() - 1});
  }

  bool hasTopLevelColon(size_t Begin, size_t End) const {
    int Depth = 0;
    for (size_t J = Begin; J < End && J < T.size(); ++J) {
      if (T[J].isPunct("(") || T[J].isPunct("[") || T[J].isPunct("{") ||
          T[J].isPunct("<"))
        ++Depth;
      else if (T[J].isPunct(")") || T[J].isPunct("]") ||
               T[J].isPunct("}") || T[J].isPunct(">"))
        --Depth;
      else if (Depth == 0 && T[J].isPunct(":"))
        return true;
    }
    return false;
  }

  /// '[' inside a body: if it introduces a lambda whose parameters
  /// declare a transactional handle, register the lambda body.
  void maybeTxnLambda(size_t LBracket) {
    size_t RBracket = matchForward(T, LBracket);
    if (RBracket >= T.size() || !tok(T, RBracket + 1).isPunct("("))
      return;
    ParamScan PS = scanParams(T, RBracket + 1);
    if (!PS.HasTxnParam)
      return;
    // Find the body '{' after the parameter list, skipping specifiers
    // (mutable, noexcept, trailing return). Bail on anything that shows
    // this is not a lambda after all.
    size_t B = PS.RParen + 1;
    for (unsigned Guard = 0; Guard < 32 && B < T.size(); ++Guard, ++B) {
      if (tok(T, B).isPunct("{"))
        break;
      if (tok(T, B).isPunct(";") || tok(T, B).isPunct(")") ||
          tok(T, B).isPunct("}"))
        return;
    }
    if (B >= T.size() || !tok(T, B).isPunct("{"))
      return;

    TxnLambda L;
    L.Handle = PS.Handle;
    L.HandleType = PS.HandleType;
    L.Line = T[LBracket].Line;
    L.BodyBegin = B + 1;
    L.BodyEnd = B + 1; // fixed at closing brace
    L.EnclosingFunction = enclosingFunction();
    Out.TxnLambdas.push_back(L);
    PendingLambda[B] = Out.TxnLambdas.size() - 1;
  }

  const std::vector<Token> &T;
  std::vector<Scope> Stack;
  size_t StmtStart = 0;
  std::unordered_map<size_t, size_t> PendingLambda;
  ParsedFile Out;
};

} // namespace

ParsedFile gstm::lint::parse(const TokenStream &TS) {
  return StructuralParser(TS).run();
}
