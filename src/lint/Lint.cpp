//===- lint/Lint.cpp ------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "lint/Lexer.h"
#include "lint/OrderRules.h"
#include "lint/Parser.h"
#include "support/Json.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

using namespace gstm;
using namespace gstm::lint;

namespace {

//===----------------------------------------------------------------------===//
// Suppressions and expectation annotations (comment side channel)
//===----------------------------------------------------------------------===//

struct Suppression {
  uint32_t Line = 0;     ///< line of the stm-lint: comment itself
  uint32_t LastLine = 0; ///< last line of its consecutive comment block
  bool AllRules = false;
  std::vector<Rule> Rules;
  bool HasRationale = false;

  /// A suppression covers its own comment block (rationales may wrap onto
  /// continuation lines) plus the first line after it, and code sharing
  /// the comment's line.
  bool covers(uint32_t AtLine, Rule R) const {
    if (AtLine < Line || AtLine > LastLine + 1)
      return false;
    return AllRules || std::find(Rules.begin(), Rules.end(), R) != Rules.end();
  }
};

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

/// Parses a comma-separated rule list inside "...(R1, R2)..." starting at
/// the '(' position \p Open. Returns the position past ')'.
size_t parseRuleList(std::string_view Text, size_t Open, bool &All,
                     std::vector<Rule> &Rules) {
  size_t Close = Text.find(')', Open);
  if (Close == std::string_view::npos)
    return Text.size();
  std::string_view Inner = Text.substr(Open + 1, Close - Open - 1);
  size_t Pos = 0;
  while (Pos <= Inner.size()) {
    size_t Comma = Inner.find(',', Pos);
    std::string_view Item =
        trim(Inner.substr(Pos, Comma == std::string_view::npos
                                   ? std::string_view::npos
                                   : Comma - Pos));
    if (Item == "all")
      All = true;
    else {
      Rule R;
      if (ruleFromId(Item, R))
        Rules.push_back(R);
    }
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  return Close + 1;
}

std::vector<Suppression> parseSuppressions(const TokenStream &TS) {
  std::vector<Suppression> Out;
  for (size_t I = 0; I < TS.Comments.size(); ++I) {
    const Comment &C = TS.Comments[I];
    size_t Key = C.Text.find("stm-lint:");
    if (Key == std::string_view::npos)
      continue;
    size_t Allow = C.Text.find("allow", Key);
    if (Allow == std::string_view::npos)
      continue;
    size_t Open = C.Text.find('(', Allow);
    if (Open == std::string_view::npos)
      continue;
    Suppression S;
    S.Line = C.Line;
    size_t After = parseRuleList(C.Text, Open, S.AllRules, S.Rules);
    S.HasRationale = !trim(C.Text.substr(After)).empty();
    // The rationale may wrap: extend through directly following comment
    // lines so the suppression still reaches the code underneath.
    S.LastLine = C.Line;
    for (size_t J = I + 1; J < TS.Comments.size(); ++J) {
      uint32_t L = TS.Comments[J].Line;
      if (L != S.LastLine && L != S.LastLine + 1)
        break;
      if (TS.Comments[J].Text.find("stm-lint:") != std::string_view::npos)
        break; // a new suppression takes over from its own line
      S.LastLine = L;
    }
    Out.push_back(S);
  }
  return Out;
}

struct Expectation {
  uint32_t Line = 0;
  Rule R = Rule::NakedAccess;
  bool Matched = false;
};

std::vector<Expectation> parseExpectations(const TokenStream &TS) {
  std::vector<Expectation> Out;
  for (const Comment &C : TS.Comments) {
    size_t Pos = 0;
    while ((Pos = C.Text.find("expect-diag", Pos)) !=
           std::string_view::npos) {
      size_t Open = C.Text.find('(', Pos);
      if (Open == std::string_view::npos)
        break;
      bool All = false;
      std::vector<Rule> Rules;
      Pos = parseRuleList(C.Text, Open, All, Rules);
      for (Rule R : Rules)
        Out.push_back({C.Line, R, false});
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Per-file analysis unit
//===----------------------------------------------------------------------===//

struct FileUnit {
  const SourceFile *Src = nullptr;
  TokenStream TS;
  ParsedFile PF;
  std::vector<Suppression> Sups;
  /// Token ranges of txn lambdas, excluded when scanning any enclosing
  /// range (they are their own regions).
  SkipRanges LambdaRanges;
  /// This file's fence(seq_cst) contracts, bound during the order pass.
  std::vector<FenceContract> Fences;
  /// O1/O2/O3 violations found by the order pass, pre-suppression.
  std::vector<RawViolation> OrderViolations;
};

/// A scanned body: a function (possibly transactional context) or a txn
/// lambda.
struct ScannedBody {
  size_t File = 0;
  /// Index into PF.Functions, or SIZE_MAX for a lambda body.
  size_t FnIndex = SIZE_MAX;
  size_t LambdaIndex = SIZE_MAX;
  std::string_view Name;   ///< function name; lambdas use the enclosing fn
  std::string ClassName;   ///< enclosing class for methods ("" otherwise)
  bool IsMethod = false;
  bool IsTxnContext = false; ///< reports diagnostics directly
  bool IsDriver = false;     ///< takes a handle but only calls .run() on it
  /// Engine rule configuration for this body (from its handle type).
  const RuleProfile *Profile = nullptr;
  uint32_t Line = 0;
  ScanResult Scan;
  /// R5 state (plain bodies only): why this body is transaction-unsafe.
  bool Unsafe = false;
  Rule UnsafeRoot = Rule::Irrevocable;
  std::string UnsafeWhy; ///< "performs X at file:line" / "calls 'g' ..."
};

/// True when the body's token range contains `Handle . run (` — the
/// parameter is a transaction *descriptor* being driven, not an open
/// transactional context (e.g. VacationWorkload::doReserve).
/// Class qualifier of a method's qualified name ("" for free functions).
std::string classOf(const FunctionDef &FD) {
  if (!FD.IsMethod)
    return {};
  size_t Sep = FD.Qualified.rfind("::");
  return Sep == std::string::npos ? std::string() : FD.Qualified.substr(0, Sep);
}

bool callsRunOnHandle(const ScanResult &Scan) {
  for (const CallSite &C : Scan.Calls)
    if (C.ReceiverIsHandle && C.Name == "run")
      return true;
  return false;
}

class Analysis {
public:
  explicit Analysis(const std::vector<SourceFile> &Files) : Files(Files) {}

  LintResult run() {
    for (const SourceFile &SF : Files)
      parseFile(SF);
    scanBodies();
    propagateUnsafe();
    orderPass();
    emitDiagnostics();
    finish();
    return std::move(Result);
  }

private:
  void parseFile(const SourceFile &SF) {
    FileUnit U;
    U.Src = &SF;
    U.TS = lex(SF.Text);
    U.PF = parse(U.TS);
    U.Sups = parseSuppressions(U.TS);
    for (const TxnLambda &L : U.PF.TxnLambdas)
      U.LambdaRanges.push_back({L.BodyBegin, L.BodyEnd});
    Units.push_back(std::move(U));
  }

  void scanBodies() {
    for (size_t F = 0; F < Units.size(); ++F) {
      FileUnit &U = Units[F];
      for (size_t I = 0; I < U.PF.Functions.size(); ++I) {
        const FunctionDef &FD = U.PF.Functions[I];
        ScannedBody B;
        B.File = F;
        B.FnIndex = I;
        B.Name = FD.Name;
        B.ClassName = classOf(FD);
        B.IsMethod = FD.IsMethod;
        B.Line = FD.Line;
        B.Profile = &profileForHandleType(FD.HandleType);
        B.Scan = scanRange(U.TS.Tokens, FD.BodyBegin, FD.BodyEnd,
                           FD.Handle, *B.Profile, U.LambdaRanges);
        if (FD.HasTxnParam) {
          B.IsDriver = callsRunOnHandle(B.Scan);
          B.IsTxnContext = !B.IsDriver;
        }
        Bodies.push_back(std::move(B));
      }
      for (size_t I = 0; I < U.PF.TxnLambdas.size(); ++I) {
        const TxnLambda &L = U.PF.TxnLambdas[I];
        ScannedBody B;
        B.File = F;
        B.LambdaIndex = I;
        B.Line = L.Line;
        if (L.EnclosingFunction != SIZE_MAX) {
          // Unqualified calls in the lambda bind like the enclosing
          // member function's would.
          B.Name = U.PF.Functions[L.EnclosingFunction].Name;
          B.ClassName = classOf(U.PF.Functions[L.EnclosingFunction]);
        }
        B.Profile = &profileForHandleType(L.HandleType);
        B.Scan = scanRange(U.TS.Tokens, L.BodyBegin, L.BodyEnd, L.Handle,
                           *B.Profile, U.LambdaRanges);
        B.IsTxnContext = !callsRunOnHandle(B.Scan);
        Bodies.push_back(std::move(B));
      }
      Result.Stats.Functions += U.PF.Functions.size();
    }
    // Name -> plain bodies, for R5 resolution. Transactional-context
    // bodies are excluded: they are checked at their own definition.
    for (size_t I = 0; I < Bodies.size(); ++I) {
      const ScannedBody &B = Bodies[I];
      if (B.FnIndex == SIZE_MAX || B.IsTxnContext || B.IsDriver)
        continue;
      if (B.Name == "main" || B.Name == "TEST" || B.Name == "TEST_F")
        continue;
      PlainByName[std::string(B.Name)].push_back(I);
    }
  }

  /// Unsuppressed would-be violations of a body.
  std::vector<const RawViolation *>
  activeViolations(const ScannedBody &B) {
    std::vector<const RawViolation *> Out;
    for (const RawViolation &V : B.Scan.Violations)
      if (!isSuppressed(B.File, V.Line, V.R, /*Count=*/false))
        Out.push_back(&V);
    return Out;
  }

  bool isSuppressed(size_t File, uint32_t Line, Rule R, bool Count) {
    for (const Suppression &S : Units[File].Sups) {
      if (S.covers(Line, R)) {
        if (Count)
          ++Result.Stats.Suppressed;
        return true;
      }
    }
    return false;
  }

  /// Fixpoint: a plain body is transaction-unsafe when it has active
  /// violations or calls (by name) another unsafe plain body.
  void propagateUnsafe() {
    for (ScannedBody &B : Bodies) {
      if (B.IsTxnContext)
        continue;
      auto Active = activeViolations(B);
      if (!Active.empty()) {
        B.Unsafe = true;
        B.UnsafeRoot = Active.front()->R;
        B.UnsafeWhy = Active.front()->Message + " (" +
                      Units[B.File].Src->Path + ":" +
                      std::to_string(Active.front()->Line) + ")";
      }
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (ScannedBody &B : Bodies) {
        if (B.Unsafe || B.IsTxnContext)
          continue;
        for (const CallSite &C : B.Scan.Calls) {
          const ScannedBody *Callee = resolveUnsafe(C, B.ClassName);
          if (!Callee)
            continue;
          B.Unsafe = true;
          B.UnsafeRoot = Callee->UnsafeRoot;
          B.UnsafeWhy = "calls '" + std::string(C.Name) + "', which is " +
                        Callee->UnsafeWhy;
          Changed = true;
          break;
        }
      }
    }
  }

  /// Resolves a call site to an unsafe plain body, or nullptr. Method
  /// calls only match methods; free calls match anything (unqualified
  /// member calls look free inside a class). Unqualified calls from
  /// within a method bind to that class's own members first — only when
  /// the class has no member with the name does the match widen, which
  /// keeps `next()` in SplitMix64 from resolving to every other `next`
  /// in the tree.
  const ScannedBody *resolveUnsafe(const CallSite &C,
                                   const std::string &CallerClass) const {
    if (C.ReceiverIsHandle || C.HandlePassed)
      return nullptr;
    auto It = PlainByName.find(std::string(C.Name));
    if (It == PlainByName.end())
      return nullptr;
    if (!C.MethodStyle && !CallerClass.empty()) {
      bool SameClass = false;
      const ScannedBody *SameClassUnsafe = nullptr;
      for (size_t I : It->second) {
        const ScannedBody &B = Bodies[I];
        if (B.ClassName != CallerClass)
          continue;
        SameClass = true;
        if (B.Unsafe && !SameClassUnsafe)
          SameClassUnsafe = &B;
      }
      if (SameClass)
        return SameClassUnsafe;
    }
    for (size_t I : It->second) {
      const ScannedBody &B = Bodies[I];
      if (C.MethodStyle && !B.IsMethod)
        continue;
      if (B.Unsafe)
        return &B;
    }
    return nullptr;
  }

  /// Memory-ordering discipline (lint/OrderRules.h): contracts are
  /// global across the file set (a publish() declared at the LockTable
  /// covers the commit paths in Tl2.cpp and OrecEager.h); fence
  /// contracts bind inside their own function body. Every function body
  /// is walked — commit paths are plain methods, not transaction
  /// regions — plus lambdas outside any function.
  void orderPass() {
    OrderContracts Contracts;
    for (FileUnit &U : Units)
      parseOrderContracts(U.TS, Contracts, U.Fences);
    OrderStats OS;
    for (FileUnit &U : Units) {
      Result.Stats.OrderContracts += U.Fences.size();
      for (const FunctionDef &FD : U.PF.Functions)
        checkOrder(U.TS.Tokens, FD.BodyBegin, FD.BodyEnd, Contracts,
                   U.Fences, OS, U.OrderViolations);
      for (const TxnLambda &L : U.PF.TxnLambdas)
        if (L.EnclosingFunction == SIZE_MAX)
          checkOrder(U.TS.Tokens, L.BodyBegin, L.BodyEnd, Contracts,
                     U.Fences, OS, U.OrderViolations);
      for (const FenceContract &FC : U.Fences)
        if (!FC.Bound)
          U.OrderViolations.push_back(
              {Rule::FenceContract, FC.Line,
               "stm-order fence contract '" + FC.Label +
                   "' binds no call to '" + FC.Callee +
                   "' in its function — the annotation drifted from "
                   "the code"});
    }
    Result.Stats.OrderContracts +=
        Contracts.Publish.size() + Contracts.Pair.size();
    Result.Stats.AtomicOps = OS.AtomicOps;
    Result.Stats.Fences = OS.Fences;
  }

  void emitDiagnostics() {
    for (const ScannedBody &B : Bodies) {
      if (!B.IsTxnContext)
        continue;
      ++Result.Stats.Regions;
      const std::string &Path = Units[B.File].Src->Path;
      for (const RawViolation &V : B.Scan.Violations) {
        if (isSuppressed(B.File, V.Line, V.R, /*Count=*/true))
          continue;
        Result.Diags.push_back({Path, V.Line, V.R, V.Message});
      }
      if (!B.Profile->CheckCallees)
        continue;
      for (const CallSite &C : B.Scan.Calls) {
        const ScannedBody *Callee = resolveUnsafe(C, B.ClassName);
        if (!Callee)
          continue;
        if (isSuppressed(B.File, C.Line, Rule::UnsafeCallee, /*Count=*/true))
          continue;
        Result.Diags.push_back(
            {Path, C.Line, Rule::UnsafeCallee,
             "call to transaction-unsafe '" + std::string(C.Name) +
                 "' [" + std::string(ruleId(Callee->UnsafeRoot)) +
                 "]: " + Callee->UnsafeWhy});
      }
    }
    // O1/O2/O3: per-file order-pass violations (not tied to regions).
    for (size_t F = 0; F < Units.size(); ++F)
      for (const RawViolation &V : Units[F].OrderViolations) {
        if (isSuppressed(F, V.Line, V.R, /*Count=*/true))
          continue;
        Result.Diags.push_back(
            {Units[F].Src->Path, V.Line, V.R, V.Message});
      }
    // S1: every suppression must carry a rationale.
    for (size_t F = 0; F < Units.size(); ++F)
      for (const Suppression &S : Units[F].Sups)
        if (!S.HasRationale)
          Result.Diags.push_back(
              {Units[F].Src->Path, S.Line, Rule::BadSuppression,
               "stm-lint suppression without a rationale; say why the "
               "operation is transaction-safe"});
  }

  void finish() {
    Result.Stats.Files = Units.size();
    std::sort(Result.Diags.begin(), Result.Diags.end(),
              [](const Diag &A, const Diag &B) {
                if (A.File != B.File)
                  return A.File < B.File;
                if (A.Line != B.Line)
                  return A.Line < B.Line;
                return static_cast<int>(A.R) < static_cast<int>(B.R);
              });
    // Identical (file, line, rule, message) duplicates can arise when a
    // line trips the same rule twice; keep the first.
    Result.Diags.erase(
        std::unique(Result.Diags.begin(), Result.Diags.end(),
                    [](const Diag &A, const Diag &B) {
                      return A.File == B.File && A.Line == B.Line &&
                             A.R == B.R && A.Message == B.Message;
                    }),
        Result.Diags.end());
  }

  const std::vector<SourceFile> &Files;
  std::vector<FileUnit> Units;
  std::vector<ScannedBody> Bodies;
  std::unordered_map<std::string, std::vector<size_t>> PlainByName;
  LintResult Result;
};

} // namespace

LintResult gstm::lint::lintSources(const std::vector<SourceFile> &Files) {
  return Analysis(Files).run();
}

//===----------------------------------------------------------------------===//
// File collection
//===----------------------------------------------------------------------===//

namespace {

bool isLintableFile(const std::filesystem::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".cpp" || Ext == ".cc" || Ext == ".h" || Ext == ".hpp";
}

bool isSkippedDir(const std::filesystem::path &P) {
  std::string Name = P.filename().string();
  return Name.rfind("build", 0) == 0 || Name.rfind(".", 0) == 0 ||
         Name == "lint_fixtures";
}

bool readFile(const std::filesystem::path &P, std::string &Out) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

} // namespace

bool gstm::lint::collectSources(const std::string &Root,
                                const std::vector<std::string> &Paths,
                                std::vector<SourceFile> &Out,
                                std::string &Error) {
  namespace fs = std::filesystem;
  for (const std::string &P : Paths) {
    fs::path Abs = fs::path(P).is_absolute() ? fs::path(P)
                                             : fs::path(Root) / P;
    std::error_code EC;
    if (fs::is_directory(Abs, EC)) {
      std::vector<fs::path> Found;
      for (fs::recursive_directory_iterator
               It(Abs, fs::directory_options::skip_permission_denied, EC),
           End;
           It != End; It.increment(EC)) {
        if (EC) {
          Error = "cannot walk '" + Abs.string() + "': " + EC.message();
          return false;
        }
        if (It->is_directory() && isSkippedDir(It->path())) {
          It.disable_recursion_pending();
          continue;
        }
        if (It->is_regular_file() && isLintableFile(It->path()))
          Found.push_back(It->path());
      }
      std::sort(Found.begin(), Found.end());
      for (const fs::path &F : Found) {
        SourceFile SF;
        SF.Path = fs::relative(F, Root, EC).string();
        if (SF.Path.empty())
          SF.Path = F.string();
        if (!readFile(F, SF.Text)) {
          Error = "cannot read '" + F.string() + "'";
          return false;
        }
        Out.push_back(std::move(SF));
      }
    } else if (fs::is_regular_file(Abs, EC)) {
      SourceFile SF;
      SF.Path = P;
      if (!readFile(Abs, SF.Text)) {
        Error = "cannot read '" + Abs.string() + "'";
        return false;
      }
      Out.push_back(std::move(SF));
    } else {
      Error = "no such file or directory: '" + Abs.string() + "'";
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string gstm::lint::toText(const LintResult &R) {
  std::ostringstream Out;
  for (const Diag &D : R.Diags)
    Out << D.File << ":" << D.Line << ": [" << ruleId(D.R) << "] "
        << D.Message << "\n  hint: " << ruleHint(D.R) << "\n";
  Out << "stm_lint: " << R.Stats.Files << " file(s), "
      << R.Stats.Functions << " function(s), " << R.Stats.Regions
      << " transaction region(s), " << R.Stats.AtomicOps
      << " atomic op(s), " << R.Stats.Fences << " fence(s), "
      << R.Stats.OrderContracts << " order contract(s): "
      << R.Diags.size() << " diagnostic(s), " << R.Stats.Suppressed
      << " suppressed, " << R.Stats.BaselineWaived
      << " baseline-waived\n";
  return Out.str();
}

std::string gstm::lint::toJson(const LintResult &R) {
  JsonWriter W;
  W.beginObject();
  W.key("tool").value("stm_lint");
  W.key("version").value(uint64_t{1});
  W.key("files").value(static_cast<uint64_t>(R.Stats.Files));
  W.key("functions").value(static_cast<uint64_t>(R.Stats.Functions));
  W.key("regions").value(static_cast<uint64_t>(R.Stats.Regions));
  W.key("suppressed").value(static_cast<uint64_t>(R.Stats.Suppressed));
  W.key("atomic_ops").value(static_cast<uint64_t>(R.Stats.AtomicOps));
  W.key("fences").value(static_cast<uint64_t>(R.Stats.Fences));
  W.key("order_contracts")
      .value(static_cast<uint64_t>(R.Stats.OrderContracts));
  W.key("baseline_waived")
      .value(static_cast<uint64_t>(R.Stats.BaselineWaived));
  W.key("diagnostics").beginArray();
  for (const Diag &D : R.Diags) {
    W.beginObject();
    W.key("file").value(D.File);
    W.key("line").value(static_cast<uint64_t>(D.Line));
    W.key("rule").value(ruleId(D.R));
    W.key("message").value(D.Message);
    W.key("hint").value(ruleHint(D.R));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string gstm::lint::toSarif(const LintResult &R) {
  JsonWriter W;
  W.beginObject();
  W.key("$schema").value(
      "https://json.schemastore.org/sarif-2.1.0.json");
  W.key("version").value("2.1.0");
  W.key("runs").beginArray();
  W.beginObject();
  W.key("tool").beginObject();
  W.key("driver").beginObject();
  W.key("name").value("stm_lint");
  W.key("informationUri")
      .value("https://github.com/gstm/gstm/blob/main/DESIGN.md");
  W.key("rules").beginArray();
  for (size_t I = 0; I < NumRules; ++I) {
    Rule Ru = static_cast<Rule>(I);
    W.beginObject();
    W.key("id").value(ruleId(Ru));
    W.key("shortDescription").beginObject();
    W.key("text").value(ruleHint(Ru));
    W.endObject();
    W.key("defaultConfiguration").beginObject();
    W.key("level").value("error");
    W.endObject();
    W.endObject();
  }
  W.endArray(); // rules
  W.endObject(); // driver
  W.endObject(); // tool
  W.key("results").beginArray();
  for (const Diag &D : R.Diags) {
    W.beginObject();
    W.key("ruleId").value(ruleId(D.R));
    W.key("ruleIndex").value(static_cast<uint64_t>(D.R));
    W.key("level").value("error");
    W.key("message").beginObject();
    W.key("text").value(D.Message);
    W.endObject();
    W.key("locations").beginArray();
    W.beginObject();
    W.key("physicalLocation").beginObject();
    W.key("artifactLocation").beginObject();
    W.key("uri").value(D.File);
    W.endObject();
    W.key("region").beginObject();
    W.key("startLine").value(static_cast<uint64_t>(D.Line));
    W.endObject();
    W.endObject(); // physicalLocation
    W.endObject();
    W.endArray(); // locations
    W.endObject();
  }
  W.endArray(); // results
  W.endObject(); // run
  W.endArray(); // runs
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Baseline
//===----------------------------------------------------------------------===//

Baseline gstm::lint::parseBaseline(std::string_view Text) {
  Baseline B;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Text.size();
    std::string_view Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line.empty() || Line.front() == '#')
      continue;
    size_t Tab1 = Line.find('\t');
    if (Tab1 == std::string_view::npos)
      continue;
    size_t Tab2 = Line.find('\t', Tab1 + 1);
    if (Tab2 == std::string_view::npos)
      continue;
    BaselineEntry E;
    E.RuleId = std::string(Line.substr(0, Tab1));
    E.File = std::string(Line.substr(Tab1 + 1, Tab2 - Tab1 - 1));
    E.Message = std::string(Line.substr(Tab2 + 1));
    B.Entries.push_back(std::move(E));
  }
  return B;
}

std::string gstm::lint::baselineText(const LintResult &R) {
  std::ostringstream Out;
  Out << "# stm_lint baseline — accepted legacy findings.\n"
      << "# One tab-separated entry per line: ruleId\tfile\tmessage.\n"
      << "# Line numbers are deliberately omitted so unrelated edits do\n"
      << "# not resurrect a waived finding. Each entry waives at most one\n"
      << "# diagnostic; remove entries as the findings are fixed.\n";
  for (const Diag &D : R.Diags)
    Out << ruleId(D.R) << "\t" << D.File << "\t" << D.Message << "\n";
  return Out.str();
}

void gstm::lint::applyBaseline(LintResult &R, const Baseline &B,
                               std::vector<BaselineEntry> &Stale) {
  std::vector<bool> Waived(R.Diags.size(), false);
  for (const BaselineEntry &E : B.Entries) {
    bool Matched = false;
    for (size_t I = 0; I < R.Diags.size(); ++I) {
      const Diag &D = R.Diags[I];
      if (!Waived[I] && E.RuleId == ruleId(D.R) && E.File == D.File &&
          E.Message == D.Message) {
        Waived[I] = true;
        Matched = true;
        break;
      }
    }
    if (!Matched)
      Stale.push_back(E);
  }
  std::vector<Diag> Kept;
  Kept.reserve(R.Diags.size());
  for (size_t I = 0; I < R.Diags.size(); ++I) {
    if (Waived[I])
      ++R.Stats.BaselineWaived;
    else
      Kept.push_back(std::move(R.Diags[I]));
  }
  R.Diags = std::move(Kept);
}

//===----------------------------------------------------------------------===//
// Fixture expectation checking
//===----------------------------------------------------------------------===//

ExpectOutcome
gstm::lint::checkExpectations(const std::vector<SourceFile> &Files) {
  ExpectOutcome Out;
  for (const SourceFile &SF : Files) {
    TokenStream TS = lex(SF.Text);
    std::vector<Expectation> Expected = parseExpectations(TS);
    Out.Expected += Expected.size();

    std::vector<SourceFile> One{SF};
    LintResult R = lintSources(One);

    for (const Diag &D : R.Diags) {
      bool Matched = false;
      for (Expectation &E : Expected) {
        if (!E.Matched && E.Line == D.Line && E.R == D.R) {
          E.Matched = true;
          Matched = true;
          ++Out.Matched;
          break;
        }
      }
      if (!Matched)
        Out.Failures.push_back("unexpected diagnostic " + SF.Path + ":" +
                               std::to_string(D.Line) + " [" +
                               ruleId(D.R) + "] " + D.Message);
    }
    for (const Expectation &E : Expected)
      if (!E.Matched)
        Out.Failures.push_back(
            "missed expectation " + SF.Path + ":" +
            std::to_string(E.Line) + " [" + ruleId(E.R) +
            "]: rule did not fire");
  }
  return Out;
}
