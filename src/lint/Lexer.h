//===- lint/Lexer.h - C++ token stream for stm_lint ----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free C++ lexer sized for the transaction-safety analyzer
/// (src/lint/): it produces identifiers, literals and punctuators with
/// line numbers, strips preprocessor directives, and records comments in
/// a side channel so the analyzer can honour `// stm-lint: allow(...)`
/// suppressions and the fixtures' `// expect-diag(...)` annotations.
///
/// The lexer is deliberately not a full phase-3 translator: it does not
/// expand macros, splice trigraphs, or evaluate conditional compilation.
/// Tokens reference the source buffer via string_view; the buffer must
/// outlive the stream.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_LINT_LEXER_H
#define GSTM_LINT_LEXER_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace gstm::lint {

/// One lexical token. Keywords are Identifier tokens; the parser decides
/// by text.
struct Token {
  enum class Kind : uint8_t {
    Identifier,
    Number,
    String, // string literal, including raw strings
    Char,   // character literal
    Punct,  // operator / punctuator, longest-match (e.g. "::", "->")
    End,    // sentinel appended after the last real token
  };

  Kind K = Kind::End;
  std::string_view Text;
  uint32_t Line = 0;

  bool is(Kind Want) const { return K == Want; }
  bool isPunct(std::string_view P) const {
    return K == Kind::Punct && Text == P;
  }
  bool isIdent(std::string_view Name) const {
    return K == Kind::Identifier && Text == Name;
  }
};

/// A comment, kept out of the token stream. Line is the line the comment
/// starts on; Text excludes the delimiters (`//`, `/*`, `*/`).
struct Comment {
  uint32_t Line = 0;
  std::string_view Text;
};

/// The lexed form of one source file.
struct TokenStream {
  std::vector<Token> Tokens;   // always ends with one Kind::End token
  std::vector<Comment> Comments;
};

/// Lexes \p Source. Never fails: unterminated literals/comments are
/// closed at end of input, unknown bytes become single-char punctuators.
TokenStream lex(std::string_view Source);

} // namespace gstm::lint

#endif // GSTM_LINT_LEXER_H
