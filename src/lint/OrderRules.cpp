//===- lint/OrderRules.cpp ------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "lint/OrderRules.h"

#include <algorithm>
#include <cctype>

using namespace gstm;
using namespace gstm::lint;

namespace {

std::string_view trimWs(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

/// Returns the trimmed contents of the first "keyword(...)" group at or
/// after \p From, or empty when absent. \p End receives the position
/// past the closing ')'.
std::string_view parenArg(std::string_view Text, std::string_view Keyword,
                          size_t From, size_t &End) {
  End = From;
  size_t Key = Text.find(Keyword, From);
  if (Key == std::string_view::npos)
    return {};
  size_t Open = Key + Keyword.size();
  while (Open < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Open])))
    ++Open;
  if (Open >= Text.size() || Text[Open] != '(')
    return {};
  size_t Close = Text.find(')', Open);
  if (Close == std::string_view::npos)
    return {};
  End = Close + 1;
  return trimWs(Text.substr(Open + 1, Close - Open - 1));
}

enum class MemOrder : uint8_t {
  Default, // no memory_order argument: seq_cst
  Relaxed,
  Consume,
  Acquire,
  Release,
  AcqRel,
  SeqCst,
};

MemOrder orderFromIdent(std::string_view N) {
  if (N == "memory_order_relaxed")
    return MemOrder::Relaxed;
  if (N == "memory_order_consume")
    return MemOrder::Consume;
  if (N == "memory_order_acquire")
    return MemOrder::Acquire;
  if (N == "memory_order_release")
    return MemOrder::Release;
  if (N == "memory_order_acq_rel")
    return MemOrder::AcqRel;
  if (N == "memory_order_seq_cst")
    return MemOrder::SeqCst;
  return MemOrder::Default;
}

bool isAtomicLoad(std::string_view N) { return N == "load"; }
bool isAtomicStore(std::string_view N) { return N == "store"; }
bool isAtomicRmw(std::string_view N) {
  static constexpr std::string_view Rmw[] = {
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "test_and_set",  "compare_exchange_weak",
      "compare_exchange_strong"};
  return std::find(std::begin(Rmw), std::end(Rmw), N) != std::end(Rmw);
}

/// Fence knowledge at one brace depth. Entering a block inherits the
/// parent's state; leaving it discards whatever the block established —
/// a fence inside an `if` branch does not dominate code after it.
struct FenceState {
  bool Release = false; ///< a release/acq_rel/seq_cst fence dominates
  uint32_t SeqCstLine = 0; ///< line of the dominating seq_cst fence, or 0
};

class OrderWalker {
public:
  OrderWalker(const std::vector<Token> &T, size_t Begin, size_t End,
              const OrderContracts &Contracts,
              std::vector<FenceContract> &Fences, OrderStats &Stats,
              std::vector<RawViolation> &Out)
      : T(T), Begin(Begin), End(End), Contracts(Contracts), Fences(Fences),
        Stats(Stats), Out(Out) {}

  void run() {
    if (Begin >= End || Begin >= T.size())
      return;
    BodyFirstLine = T[Begin].Line;
    BodyLastLine = T[std::min(End, T.size()) - 1].Line;
    Dom.push_back({});
    for (size_t I = Begin; I < End && I < T.size(); ++I)
      step(I);
  }

private:
  const Token &at(size_t I) const {
    static const Token EndTok{Token::Kind::End, {}, 0};
    return I < T.size() ? T[I] : EndTok;
  }

  void step(size_t I) {
    const Token &Tk = T[I];
    if (Tk.isPunct("{")) {
      Dom.push_back(Dom.back());
      return;
    }
    if (Tk.isPunct("}")) {
      if (Dom.size() > 1)
        Dom.pop_back();
      return;
    }
    if (!Tk.is(Token::Kind::Identifier) || !at(I + 1).isPunct("("))
      return;

    std::string_view N = Tk.Text;
    if (N == "atomic_thread_fence") {
      ++Stats.Fences;
      switch (argOrder(I + 1)) {
      case MemOrder::Release:
      case MemOrder::AcqRel:
        Dom.back().Release = true;
        break;
      case MemOrder::SeqCst:
      case MemOrder::Default:
        Dom.back().Release = true;
        Dom.back().SeqCstLine = Tk.Line;
        break;
      default:
        break; // acquire/consume/relaxed fences publish nothing
      }
      return;
    }

    bool Method = I > Begin && (at(I - 1).isPunct(".") ||
                                at(I - 1).isPunct("->"));
    if (Method && (isAtomicLoad(N) || isAtomicStore(N) || isAtomicRmw(N))) {
      ++Stats.AtomicOps;
      if (isAtomicRmw(N))
        return; // inventoried; relaxed RMWs are reviewed choices
      checkAccess(I, isAtomicStore(N));
      return;
    }

    bindFenceContracts(I, N);
  }

  /// Last depth-1 memory_order_* identifier in the argument list whose
  /// '(' is at \p LParen (nested calls keep their own orders).
  MemOrder argOrder(size_t LParen) const {
    MemOrder O = MemOrder::Default;
    int Depth = 0;
    for (size_t J = LParen; J < End && J < T.size(); ++J) {
      if (at(J).isPunct("(")) {
        ++Depth;
      } else if (at(J).isPunct(")")) {
        if (--Depth == 0)
          break;
      } else if (Depth == 1 && at(J).is(Token::Kind::Identifier)) {
        MemOrder Cand = orderFromIdent(at(J).Text);
        if (Cand != MemOrder::Default)
          O = Cand;
      }
    }
    return O;
  }

  /// Index of the opener matching the closer at \p Close, or SIZE_MAX.
  size_t matchBackward(size_t Close) const {
    std::string_view C = T[Close].Text;
    std::string_view O = C == ")" ? "(" : "[";
    int Depth = 0;
    for (size_t J = Close + 1; J-- > Begin;) {
      if (T[J].isPunct(C))
        ++Depth;
      else if (T[J].isPunct(O) && --Depth == 0)
        return J;
    }
    return SIZE_MAX;
  }

  /// Identifiers of the postfix chain left of the '.'/'->' at \p DotIdx:
  /// `S.lockTable().stripeAt(L.I).store(..)` → {stripeAt, lockTable, S}.
  /// Subscript indexes are not collected (`Slots[T].E` → {E, Slots}).
  std::vector<std::string_view> receiverChain(size_t DotIdx) const {
    std::vector<std::string_view> Chain;
    size_t J = DotIdx;
    for (unsigned Guard = 0; Guard < 32 && J > Begin; ++Guard) {
      const Token &Tk = at(J - 1);
      if (Tk.is(Token::Kind::Identifier)) {
        Chain.push_back(Tk.Text);
        size_t K = J - 1;
        if (K > Begin && (at(K - 1).isPunct(".") || at(K - 1).isPunct("->") ||
                          at(K - 1).isPunct("::"))) {
          J = K - 1;
          continue;
        }
        break;
      }
      if (Tk.isPunct(")") || Tk.isPunct("]")) {
        size_t Open = matchBackward(J - 1);
        if (Open == SIZE_MAX || Open <= Begin)
          break;
        J = Open;
        continue;
      }
      break;
    }
    return Chain;
  }

  const std::string *
  firstContractName(const std::vector<std::string_view> &Chain,
                    const std::vector<std::string> &Names) const {
    for (std::string_view Link : Chain)
      for (const std::string &Name : Names)
        if (Link == Name)
          return &Name;
    return nullptr;
  }

  void checkAccess(size_t I, bool IsStore) {
    std::vector<std::string_view> Chain = receiverChain(I - 1);
    if (Chain.empty())
      return;
    MemOrder O = argOrder(I + 1);
    const FenceState &D = Dom.back();

    if (IsStore) {
      bool Relaxed = O == MemOrder::Relaxed;
      if (Relaxed && !D.Release) {
        if (const std::string *Name =
                firstContractName(Chain, Contracts.Publish))
          Out.push_back(
              {Rule::TornPublish, T[I].Line,
               "relaxed store publishes '" + *Name +
                   "' with no dominating release fence on this path "
                   "(contract: publish(" + *Name +
                   ") requires release-fence-before) — readers can "
                   "observe the new version before the data it guards"});
        if (const std::string *Name =
                firstContractName(Chain, Contracts.Pair))
          Out.push_back(
              {Rule::AcquireRelease, T[I].Line,
               "store to '" + *Name +
                   "' is neither release nor behind a release fence "
                   "(contract: pair(" + *Name +
                   ") acquire-load release-store)"});
      }
      return;
    }
    // Loads: only the pair() contract constrains them.
    if (O == MemOrder::Relaxed || O == MemOrder::Consume) {
      if (const std::string *Name = firstContractName(Chain, Contracts.Pair))
        Out.push_back(
            {Rule::AcquireRelease, T[I].Line,
             "relaxed load of '" + *Name +
                 "' breaks its acquire-load/release-store pairing "
                 "(contract: pair(" + *Name + "))"});
    }
  }

  void bindFenceContracts(size_t I, std::string_view N) {
    for (FenceContract &FC : Fences) {
      if (FC.Bound || FC.Callee != N)
        continue;
      // Only contracts declared inside this body, lexically before the
      // call, are candidates.
      if (FC.Line + 1 < BodyFirstLine || FC.Line > BodyLastLine ||
          T[I].Line < FC.Line)
        continue;
      FC.Bound = true;
      const FenceState &D = Dom.back();
      if (D.SeqCstLine == 0 || D.SeqCstLine < FC.Line)
        Out.push_back(
            {Rule::FenceContract, T[I].Line,
             "call to '" + FC.Callee + "()' on the '" + FC.Label +
                 "' path is not dominated by a seq_cst fence — "
                 "store-buffering window: two committers can each miss "
                 "the other's freshly taken locks and both commit"});
    }
  }

  const std::vector<Token> &T;
  size_t Begin, End;
  const OrderContracts &Contracts;
  std::vector<FenceContract> &Fences;
  OrderStats &Stats;
  std::vector<RawViolation> &Out;
  std::vector<FenceState> Dom;
  uint32_t BodyFirstLine = 0, BodyLastLine = 0;
};

} // namespace

void gstm::lint::parseOrderContracts(const TokenStream &TS,
                                     OrderContracts &Global,
                                     std::vector<FenceContract> &Fences) {
  for (const Comment &C : TS.Comments) {
    size_t Key = C.Text.find("stm-order:");
    if (Key == std::string_view::npos)
      continue;
    // Only comments that *begin* with the marker declare contracts;
    // documentation quoting the grammar (e.g. `///   // stm-order: ...`
    // in OrderRules.h) has a doc-comment `/` or nested `//` before it.
    if (C.Text.find_first_not_of(" \t") != Key)
      continue;
    size_t After = Key;
    std::string_view Name = parenArg(C.Text, "publish", Key, After);
    if (!Name.empty()) {
      Global.Publish.emplace_back(Name);
      continue;
    }
    Name = parenArg(C.Text, "pair", Key, After);
    if (!Name.empty()) {
      Global.Pair.emplace_back(Name);
      continue;
    }
    std::string_view Kind = parenArg(C.Text, "fence", Key, After);
    if (Kind != "seq_cst")
      continue; // only seq_cst fence contracts are defined
    size_t Pos = After;
    std::string_view Callee = parenArg(C.Text, "before", Pos, After);
    if (Callee.empty())
      continue;
    Pos = After;
    std::string_view Label = parenArg(C.Text, "label", Pos, After);
    FenceContract FC;
    FC.Line = C.Line;
    FC.Callee = std::string(Callee);
    FC.Label = Label.empty() ? FC.Callee : std::string(Label);
    Fences.push_back(std::move(FC));
  }
}

void gstm::lint::checkOrder(const std::vector<Token> &Tokens, size_t Begin,
                            size_t End, const OrderContracts &Contracts,
                            std::vector<FenceContract> &Fences,
                            OrderStats &Stats,
                            std::vector<RawViolation> &Out) {
  OrderWalker(Tokens, Begin, End, Contracts, Fences, Stats, Out).run();
}
